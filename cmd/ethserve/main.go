// Command ethserve is the campaign server: a long-running daemon that
// accepts campaign and sweep jobs over HTTP/JSON, multiplexes them
// over a bounded worker pool, streams live progress, and checkpoints
// in-flight campaigns so a killed server resumes them on restart.
//
//	ethserve -addr :8080 -data ./ethserve-data -jobs 2
//
// Endpoints (see internal/serve):
//
//	POST   /v1/jobs              submit {"kind":"campaign",...}
//	GET    /v1/jobs              list
//	GET    /v1/jobs/{id}         status
//	GET    /v1/jobs/{id}/stream  NDJSON progress stream
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/catalog           registered scenarios + protocols
//	GET    /v1/version           build identity
//
// On SIGINT/SIGTERM the daemon drains: running jobs stop at their next
// checkpoint-safe point and are requeued, so the next start resumes
// them from their last checkpoint instead of restarting from zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ethmeasure/internal/cliutil"
	"ethmeasure/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		dataDir      = flag.String("data", "ethserve-data", "job state directory (persists across restarts)")
		maxJobs      = flag.Int("jobs", 2, "max concurrently running jobs")
		sweepWorkers = flag.Int("sweep-workers", 0, "campaign workers per sweep job (0 = GOMAXPROCS)")
		version      = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.VersionLine("ethserve"))
		return
	}
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("ethserve: ")

	if err := run(*addr, *dataDir, *maxJobs, *sweepWorkers); err != nil {
		log.Fatal(err)
	}
}

func run(addr, dataDir string, maxJobs, sweepWorkers int) error {
	m, err := serve.Open(serve.Options{
		Dir:          dataDir,
		MaxJobs:      maxJobs,
		SweepWorkers: sweepWorkers,
		Logf:         log.Printf,
	})
	if err != nil {
		return err
	}

	// Listen before announcing: with -addr :0 the kernel picks the
	// port, and scripts (the CI smoke test) read it from this line.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on http://%s (data: %s, jobs: %d)", ln.Addr(), dataDir, maxJobs)

	srv := &http.Server{
		Handler:           serve.NewServer(m),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		m.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, checkpoint-and-requeue running
	// jobs, then exit. A second signal aborts the wait.
	log.Printf("signal received, draining")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	m.Close()
	log.Printf("bye")
	return nil
}
