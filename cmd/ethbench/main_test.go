package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-profile", "bogus"},
		{"-scales", "abc"},
		{"-scales", "40"},
		{"-scales", "40:x"},
		{"-scales", "4:10"}, // too few nodes
		{"-scales", ","},
	}
	for _, args := range cases {
		if err := run(append(args, "-out", ""), &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseScales(t *testing.T) {
	scales, err := parseScales("150:8, 1000:2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(scales) != 2 || scales[0].nodes != 150 || scales[1].nodes != 1000 {
		t.Fatalf("scales = %+v", scales)
	}
	if scales[1].virtual.Seconds() != 150 {
		t.Errorf("2.5 virtual minutes parsed as %v", scales[1].virtual)
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []string{"short", "ci", "full"} {
		scales, err := profileScales(p)
		if err != nil || len(scales) == 0 {
			t.Errorf("profile %s: %v (%d scales)", p, err, len(scales))
		}
	}
}

// TestRunTinyCampaignWritesReport exercises the whole harness on a
// deliberately tiny scale and checks the report invariants.
func TestRunTinyCampaignWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-scales", "40:1", "-skip-engine", "-skip-dispatch", "-skip-logs", "-out", out}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 {
		t.Fatalf("entries = %+v", rep.Entries)
	}
	e := rep.Entries[0]
	if e.Name != "campaign/40" || e.Events == 0 || e.NsPerOp <= 0 || e.EventsPerSec <= 0 {
		t.Fatalf("implausible entry %+v", e)
	}

	// Self-comparison must pass...
	if err := run([]string{"-scales", "40:1", "-skip-engine", "-skip-dispatch", "-skip-logs", "-out", "", "-baseline", out, "-threshold", "100"}, &buf); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, buf.String())
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Report{Entries: []Entry{
		{Name: "campaign/150", NsPerOp: 1000, AllocsPerOp: 1.0},
		{Name: "engine/selfschedule", NsPerOp: 50, AllocsPerOp: 0},
	}}
	var buf bytes.Buffer

	ok := &Report{Entries: []Entry{
		{Name: "campaign/150", NsPerOp: 1100, AllocsPerOp: 1.05},
		{Name: "engine/selfschedule", NsPerOp: 55, AllocsPerOp: 0},
		{Name: "campaign/9999", NsPerOp: 1, AllocsPerOp: 0}, // not in baseline: skipped
	}}
	if err := compare(ok, base, 0.15, false, &buf); err != nil {
		t.Fatalf("within-threshold run flagged: %v\n%s", err, buf.String())
	}

	slow := &Report{Entries: []Entry{{Name: "campaign/150", NsPerOp: 1300, AllocsPerOp: 1.0}}}
	if err := compare(slow, base, 0.15, false, &buf); err == nil {
		t.Fatal("30% ns regression not flagged")
	}
	// ...unless ns gating is off for cross-hardware baselines.
	if err := compare(slow, base, 0.15, true, &buf); err != nil {
		t.Fatalf("-allocs-only still failed on ns drift: %v", err)
	}
	leaky := &Report{Entries: []Entry{{Name: "campaign/150", NsPerOp: 1000, AllocsPerOp: 1.5}}}
	if err := compare(leaky, base, 0.15, false, &buf); err == nil {
		t.Fatal("50% alloc regression not flagged")
	}
	if err := compare(leaky, base, 0.15, true, &buf); err == nil {
		t.Fatal("alloc regression must fail even under -allocs-only")
	}
	// Zero-alloc baselines tolerate the absolute epsilon but not real leaks.
	tiny := &Report{Entries: []Entry{{Name: "engine/selfschedule", NsPerOp: 50, AllocsPerOp: 0.005}}}
	if err := compare(tiny, base, 0.15, false, &buf); err != nil {
		t.Fatalf("epsilon-level alloc noise flagged: %v", err)
	}
	leak := &Report{Entries: []Entry{{Name: "engine/selfschedule", NsPerOp: 50, AllocsPerOp: 0.5}}}
	if err := compare(leak, base, 0.15, false, &buf); err == nil {
		t.Fatal("real alloc leak on zero baseline not flagged")
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Error("regression output missing marker")
	}
}

// TestCompareAnalysisGates covers the analysis-phase regression gates:
// ns/record follows the ns rules (hard fail unless -allocs-only),
// peak heap fails beyond threshold + 32 MB regardless of -allocs-only.
func TestCompareAnalysisGates(t *testing.T) {
	base := &Report{Entries: []Entry{{
		Name: "campaign/150", NsPerOp: 1000, AllocsPerOp: 1.0,
		AnalysisNsPerRecord: 100, AnalysisPeakHeapBytes: 100 << 20,
	}}}
	var buf bytes.Buffer

	ok := &Report{Entries: []Entry{{
		Name: "campaign/150", NsPerOp: 1000, AllocsPerOp: 1.0,
		AnalysisNsPerRecord: 110, AnalysisPeakHeapBytes: 120 << 20, // within 15% + 32 MB
	}}}
	if err := compare(ok, base, 0.15, false, &buf); err != nil {
		t.Fatalf("within-threshold analysis metrics flagged: %v\n%s", err, buf.String())
	}

	slowAnalysis := &Report{Entries: []Entry{{
		Name: "campaign/150", NsPerOp: 1000, AllocsPerOp: 1.0,
		AnalysisNsPerRecord: 200, AnalysisPeakHeapBytes: 100 << 20,
	}}}
	if err := compare(slowAnalysis, base, 0.15, false, &buf); err == nil {
		t.Fatal("2x analysis ns/record not flagged")
	}
	if err := compare(slowAnalysis, base, 0.15, true, &buf); err != nil {
		t.Fatalf("-allocs-only still failed on analysis ns drift: %v", err)
	}

	fatHeap := &Report{Entries: []Entry{{
		Name: "campaign/150", NsPerOp: 1000, AllocsPerOp: 1.0,
		AnalysisNsPerRecord: 100, AnalysisPeakHeapBytes: 200 << 20,
	}}}
	if err := compare(fatHeap, base, 0.15, false, &buf); err == nil {
		t.Fatal("2x analysis peak heap not flagged")
	}
	if err := compare(fatHeap, base, 0.15, true, &buf); err == nil {
		t.Fatal("analysis heap regression must fail even under -allocs-only")
	}

	// Entries without analysis fields (e.g. microbenchmarks) never trip
	// the analysis gates.
	legacy := &Report{Entries: []Entry{{
		Name: "campaign/150", NsPerOp: 1000, AllocsPerOp: 1.0,
		AnalysisNsPerRecord: 500, AnalysisPeakHeapBytes: 1 << 30,
	}}}
	noAnalysisBase := &Report{Entries: []Entry{{Name: "campaign/150", NsPerOp: 1000, AllocsPerOp: 1.0}}}
	if err := compare(legacy, noAnalysisBase, 0.15, false, &buf); err != nil {
		t.Fatalf("baseline without analysis fields must not gate: %v", err)
	}
}
