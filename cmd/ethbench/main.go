// Command ethbench runs calibrated campaign benchmarks at increasing
// network scales and emits machine-readable BENCH_*.json so engine
// performance is measured, not asserted. It is the performance gate
// behind the CI `bench` job: compare a fresh run against the committed
// BENCH_baseline.json and fail on regression.
//
// Usage:
//
//	ethbench -profile ci -out BENCH_ci.json -baseline BENCH_baseline.json
//	ethbench -profile full -out BENCH_full.json
//	ethbench -scales 1000:10 -out BENCH_1k.json
//
// Each campaign entry reports the simulation phase (ns/event,
// allocs/event, events/sec, peak heap) and the analysis phase
// (records/sec, ns/record, wall, peak heap during analysis — the
// streaming record pipeline's cost) for a fixed-seed run, plus
// scheduler microbenchmarks (engine/selfschedule on a near-empty
// queue, engine/schedule-churn under a 4096-event standing
// population), a delivery-path pair (simnet/deliver with and without
// coalescing on a tie-heavy fan-in) and two chain protocol-dispatch
// microbenchmarks (per-import fork choice, uncle-candidate sweep —
// the hot paths that call through the consensus.Protocol interface)
// via testing.Benchmark.
// Campaigns run in bounded-memory mode by default (-retain restores
// record retention, for before/after comparisons of the two modes).
// A warm-run pooling benchmark (reuse/<nodes>/cold vs /warm) measures
// campaign state recycling through core.Pool — per-run wall and
// allocs/run, gated like every other entry — and -cpuprofile /
// -memprofile capture pprof profiles of the whole run.
// Regression checks compare ns_per_event, ns_per_op, analysis
// ns/record and allocs within a fractional threshold, and analysis
// peak heap within the threshold plus a 32 MB epsilon; simulation peak
// heap and events/sec are informational.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/chain"
	"ethmeasure/internal/cliutil"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/core"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/scenario"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/types"
)

// Entry is one benchmark measurement. Campaign entries fill every
// field; microbenchmark entries only the ns/allocs pair.
type Entry struct {
	Name string `json:"name"`

	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	Nodes          int     `json:"nodes,omitempty"`
	VirtualMinutes float64 `json:"virtual_minutes,omitempty"`
	Events         uint64  `json:"events,omitempty"`
	Messages       uint64  `json:"messages,omitempty"`
	WallMs         float64 `json:"wall_ms,omitempty"`
	EventsPerSec   float64 `json:"events_per_sec,omitempty"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes,omitempty"`

	// Analysis-phase profile: one streaming pass over the records the
	// campaign produced, finalized into every per-figure result.
	Records               uint64  `json:"records,omitempty"`
	AnalysisWallMs        float64 `json:"analysis_wall_ms,omitempty"`
	AnalysisNsPerRecord   float64 `json:"analysis_ns_per_record,omitempty"`
	AnalysisRecordsPerSec float64 `json:"analysis_records_per_sec,omitempty"`
	AnalysisPeakHeapBytes uint64  `json:"analysis_peak_heap_bytes,omitempty"`

	// RetainRecords marks entries measured with raw-record retention
	// (the batch-compatible mode) rather than the bounded default.
	RetainRecords bool `json:"retain_records,omitempty"`

	// VantagePeers records a non-default vantage adjacency
	// (-vantage-peers), which drives record volume.
	VantagePeers int `json:"vantage_peers,omitempty"`

	// Shards records a non-serial engine configuration (-shards). Such
	// entries are name-suffixed so they never gate against the serial
	// baseline.
	Shards int `json:"shards,omitempty"`

	// Warm-run reuse profile (reuse/* entries): repeated identical
	// campaigns, cold-built versus recycled through one core.Pool. For
	// these entries NsPerOp is wall per run and AllocsPerOp is allocs
	// per run, so the standard regression gate covers pooling.
	Runs       int     `json:"runs,omitempty"`
	BuildMs    float64 `json:"build_ms,omitempty"`
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Schema    int     `json:"schema"`
	GoVersion string  `json:"go_version"`
	Profile   string  `json:"profile"`
	NumCPU    int     `json:"num_cpu,omitempty"`
	Entries   []Entry `json:"entries"`
}

type scale struct {
	nodes   int
	virtual time.Duration
}

func profileScales(profile string) ([]scale, error) {
	switch profile {
	case "short":
		return []scale{{150, 8 * time.Minute}}, nil
	case "ci":
		return []scale{{150, 8 * time.Minute}, {1000, 3 * time.Minute}}, nil
	case "full":
		return []scale{{150, 20 * time.Minute}, {1000, 10 * time.Minute}, {5000, 4 * time.Minute}}, nil
	default:
		return nil, fmt.Errorf("unknown profile %q (short|ci|full)", profile)
	}
}

func parseScales(spec string) ([]scale, error) {
	var out []scale
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nodesStr, minStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("scale %q not in nodes:virtualMinutes form", part)
		}
		nodes, err := strconv.Atoi(strings.TrimSpace(nodesStr))
		if err != nil || nodes < 10 {
			return nil, fmt.Errorf("bad node count in scale %q", part)
		}
		minutes, err := strconv.ParseFloat(strings.TrimSpace(minStr), 64)
		if err != nil || minutes <= 0 {
			return nil, fmt.Errorf("bad virtual minutes in scale %q", part)
		}
		out = append(out, scale{nodes, time.Duration(minutes * float64(time.Minute))})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scale list %q is empty", spec)
	}
	return out, nil
}

// campaignConfig builds the calibrated benchmark campaign for a scale:
// the default pool population and vantages over an s.nodes-node
// network, transaction workload on, fixed seed so runs are comparable.
// vantagePeers > 0 re-peers the primary vantages with that many nodes
// (the paper's vantages ran "unlimited peers"; record volume scales
// with vantage adjacency, so this is the knob for record-bound
// analysis benchmarks). The default caps peers at 50 to keep the
// simulation-phase numbers comparable across PRs.
func campaignConfig(s scale, seed int64, vantagePeers int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = s.virtual
	cfg.NumNodes = s.nodes
	cfg.OutDegree = 8
	for i := range cfg.Vantages {
		if vantagePeers > 0 && !cfg.Vantages[i].Auxiliary {
			cfg.Vantages[i].Peers = vantagePeers
		} else if cfg.Vantages[i].Peers > 50 {
			cfg.Vantages[i].Peers = 50
		}
	}
	core.ApplyCapacity(&cfg)
	return cfg
}

// heapSampler polls HeapAlloc until stopped and records the maximum.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startHeapSampler() *heapSampler {
	hs := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hs.done)
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-hs.stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > hs.peak.Load() {
					hs.peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return hs
}

func (hs *heapSampler) Stop() uint64 {
	close(hs.stop)
	<-hs.done
	return hs.peak.Load()
}

func runCampaignEntry(s scale, retain bool, vantagePeers, shards int, proto consensus.Spec, scens []scenario.Spec, w io.Writer) (Entry, error) {
	cfg := campaignConfig(s, 1, vantagePeers)
	cfg.RetainRecords = retain
	cfg.Protocol = proto
	cfg.Scenarios = scens
	cfg.Shards = shards
	campaign, err := core.NewCampaign(cfg)
	if err != nil {
		return Entry{}, fmt.Errorf("build %d-node campaign: %w", s.nodes, err)
	}
	name := fmt.Sprintf("campaign/%d", s.nodes)
	if retain {
		name += "/retain"
	}
	if shards != 1 {
		// Sharded entries gate separately: a parallel run trades
		// allocs/event for wall time, so comparing it against the
		// serial baseline would flag the wrong thing.
		name += fmt.Sprintf("/shards=%d", cfg.ResolveShards())
	}
	if tag := cfg.ProtocolTag(); tag != consensus.DefaultName {
		// Non-default-protocol entries are named apart so they never
		// gate against (or pollute) the ethereum baseline.
		name += "/protocol:" + tag
	}
	for _, tag := range campaign.ScenarioTags() {
		// Scenario-composed entries are named apart so they never gate
		// against (or pollute) the vanilla baseline.
		name += "/" + tag
	}

	// Simulation phase.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sampler := startHeapSampler()

	start := time.Now()
	simErr := campaign.Simulate()
	wall := time.Since(start)

	peak := sampler.Stop()
	if simErr != nil {
		return Entry{}, fmt.Errorf("run %d-node campaign: %w", s.nodes, simErr)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	// Analysis phase: release the dead simulation graph and GC-fence
	// first, so the phase's peak heap reflects record-pipeline state —
	// the arrival index, the chain registry, and (in retained mode)
	// the raw record slices — not the network or simulation garbage.
	campaign.ReleaseNetwork()
	runtime.GC()
	analysisSampler := startHeapSampler()
	analysisStart := time.Now()
	res, err := campaign.Analyze()
	analysisWall := time.Since(analysisStart)
	analysisPeak := analysisSampler.Stop()
	if err != nil {
		return Entry{}, fmt.Errorf("analyze %d-node campaign: %w", s.nodes, err)
	}
	// Short analyses finish between sampler ticks; the post-phase
	// HeapAlloc is a lower bound on the true peak.
	var postAnalysis runtime.MemStats
	runtime.ReadMemStats(&postAnalysis)
	if postAnalysis.HeapAlloc > analysisPeak {
		analysisPeak = postAnalysis.HeapAlloc
	}

	events := res.Stats.Events
	if events == 0 {
		return Entry{}, fmt.Errorf("%d-node campaign executed no events", s.nodes)
	}
	records := uint64(res.Stats.BlockRecords) + uint64(res.Stats.TxRecords)
	if records == 0 {
		return Entry{}, fmt.Errorf("%d-node campaign produced no records", s.nodes)
	}
	allocs := after.Mallocs - before.Mallocs
	e := Entry{
		Name:           name,
		Nodes:          s.nodes,
		VirtualMinutes: s.virtual.Minutes(),
		Events:         events,
		Messages:       res.Stats.Messages,
		WallMs:         float64(wall.Nanoseconds()) / 1e6,
		NsPerOp:        float64(wall.Nanoseconds()) / float64(events),
		AllocsPerOp:    float64(allocs) / float64(events),
		EventsPerSec:   float64(events) / wall.Seconds(),
		PeakHeapBytes:  peak,

		Records:               records,
		AnalysisWallMs:        float64(analysisWall.Nanoseconds()) / 1e6,
		AnalysisNsPerRecord:   float64(analysisWall.Nanoseconds()) / float64(records),
		AnalysisRecordsPerSec: float64(records) / analysisWall.Seconds(),
		AnalysisPeakHeapBytes: analysisPeak,
		RetainRecords:         retain,
		VantagePeers:          vantagePeers,
	}
	if shards != 1 {
		e.Shards = cfg.ResolveShards()
	}
	fmt.Fprintf(w, "%-22s %9.1f ns/event %8.3f allocs/event %12.0f events/s  peak heap %6.1f MB  (%d events, wall %v)\n",
		e.Name, e.NsPerOp, e.AllocsPerOp, e.EventsPerSec, float64(peak)/(1<<20), events, wall.Round(time.Millisecond))
	fmt.Fprintf(w, "%-22s %9.1f ns/record %*s %12.0f records/s  peak heap %6.1f MB  (%d records, wall %v)\n",
		"  analysis", e.AnalysisNsPerRecord, 21, "", e.AnalysisRecordsPerSec,
		float64(analysisPeak)/(1<<20), records, analysisWall.Round(time.Millisecond))
	return e, nil
}

// reuseEntries measures warm-run campaign pooling: the same campaign
// executed `runs` times cold (fresh construction every time) and
// `runs` times through one core.Pool (state recycled run to run, the
// way a sweep worker executes). Per-run wall lands in NsPerOp and
// allocs/run in AllocsPerOp, so compare() gates pooling regressions
// with the same threshold as every other entry; build wall and
// runs/sec ride along informationally. The first warm run is excluded
// from the warm averages — it populates the pool and is really a cold
// run. Every run's key metrics are checked against the first cold
// run's: the benchmark doubles as an end-to-end cold≡warm check.
func reuseEntries(s scale, runs int, w io.Writer) ([]Entry, error) {
	cfg := campaignConfig(s, 1, 0)
	cfg.RetainRecords = false

	mallocs := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.Mallocs
	}

	type sample struct {
		build time.Duration
		total time.Duration
		alloc uint64
	}
	var reference analysis.KeyMetrics
	oneRun := func(pool *core.Pool) (sample, error) {
		var sm sample
		start := time.Now()
		before := mallocs()
		var campaign *core.Campaign
		var err error
		if pool != nil {
			campaign, err = pool.NewCampaign(cfg)
		} else {
			campaign, err = core.NewCampaign(cfg)
		}
		if err != nil {
			return sm, fmt.Errorf("build %d-node reuse campaign: %w", s.nodes, err)
		}
		sm.build = time.Since(start)
		res, err := campaign.Run()
		if err != nil {
			return sm, fmt.Errorf("run %d-node reuse campaign: %w", s.nodes, err)
		}
		sm.total = time.Since(start)
		sm.alloc = mallocs() - before
		km := res.KeyMetrics()
		if pool != nil {
			pool.Recycle(campaign)
		}
		if reference == nil {
			reference = km
		} else if len(km) != len(reference) {
			return sm, fmt.Errorf("reuse: run diverged from cold reference (%d vs %d metrics)", len(km), len(reference))
		} else {
			for k, v := range reference {
				if km[k] != v {
					return sm, fmt.Errorf("reuse: warm/cold divergence on %s: %v vs %v", k, km[k], v)
				}
			}
		}
		return sm, nil
	}

	entry := func(kind string, samples []sample) Entry {
		var build, total time.Duration
		var alloc uint64
		for _, sm := range samples {
			build += sm.build
			total += sm.total
			alloc += sm.alloc
		}
		n := len(samples)
		e := Entry{
			Name:           fmt.Sprintf("reuse/%d/%s", s.nodes, kind),
			Nodes:          s.nodes,
			VirtualMinutes: s.virtual.Minutes(),
			Runs:           n,
			NsPerOp:        float64(total.Nanoseconds()) / float64(n),
			AllocsPerOp:    float64(alloc) / float64(n),
			BuildMs:        float64(build.Nanoseconds()) / 1e6 / float64(n),
			RunsPerSec:     float64(n) / total.Seconds(),
		}
		fmt.Fprintf(w, "%-22s %9.1f ms/run  %12.0f allocs/run  build %6.1f ms  %6.2f runs/s  (%d runs)\n",
			e.Name, e.NsPerOp/1e6, e.AllocsPerOp, e.BuildMs, e.RunsPerSec, n)
		return e
	}

	runtime.GC()
	cold := make([]sample, 0, runs)
	for i := 0; i < runs; i++ {
		sm, err := oneRun(nil)
		if err != nil {
			return nil, err
		}
		cold = append(cold, sm)
	}

	pool := core.NewPool()
	runtime.GC()
	warm := make([]sample, 0, runs)
	for i := 0; i < runs+1; i++ {
		sm, err := oneRun(pool)
		if err != nil {
			return nil, err
		}
		if i > 0 { // run 0 builds cold and only populates the pool
			warm = append(warm, sm)
		}
	}
	if st := pool.Stats(); st.NodesReused == 0 {
		return nil, fmt.Errorf("reuse: pool never engaged (%+v)", st)
	}

	return []Entry{entry("cold", cold), entry("warm", warm)}, nil
}

// engineEntry microbenchmarks the scheduler's dominant pattern: events
// scheduling their successors.
func engineEntry(w io.Writer) Entry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(1)
		remaining := b.N
		var tick func()
		tick = func() {
			if remaining > 0 {
				remaining--
				e.After(time.Microsecond, tick)
			}
		}
		e.After(0, tick)
		b.ResetTimer()
		if _, err := e.Run(time.Duration(1<<62 - 1)); err != nil {
			b.Fatal(err)
		}
	})
	e := Entry{
		Name:        "engine/selfschedule",
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: float64(res.AllocsPerOp()),
	}
	fmt.Fprintf(w, "%-16s %9.1f ns/op    %8.3f allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	return e
}

// churnHandler drives the schedule-churn benchmark: each fired event
// reschedules itself after an exponential hold plus a bimodal offset
// (intra-region ~8ms vs inter-continental ~120ms), the simulator's
// real scheduling-key distribution.
type churnHandler struct {
	e         *sim.Engine
	rng       *rand.Rand
	remaining int
}

func (c *churnHandler) HandleSimEvent(arg sim.Arg) {
	if c.remaining <= 0 {
		return
	}
	c.remaining--
	hold := sim.ExpDuration(c.rng, 25*time.Millisecond)
	if c.rng.Intn(2) == 0 {
		hold += 8 * time.Millisecond
	} else {
		hold += 120 * time.Millisecond
	}
	c.e.AfterArg(hold, c, arg)
}

// churnEntry microbenchmarks scheduling under a standing population of
// 4096 pending events — the regime where a binary heap pays O(log n)
// per operation and the ladder queue pays amortized O(1). This is the
// engine's cost profile mid-campaign, as opposed to the near-empty
// queue engine/selfschedule measures.
func churnEntry(w io.Writer) Entry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(1)
		tick := &churnHandler{e: e, rng: sim.NewStream(1, "bench-churn", 0), remaining: b.N}
		for i := 0; i < 4096; i++ {
			e.AfterArg(time.Duration(i)*50*time.Microsecond, tick, sim.Arg{})
		}
		b.ResetTimer()
		if _, err := e.Run(time.Duration(1<<62 - 1)); err != nil {
			b.Fatal(err)
		}
	})
	e := Entry{
		Name:        "engine/schedule-churn",
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: float64(res.AllocsPerOp()),
	}
	fmt.Fprintf(w, "%-22s %9.1f ns/op    %8.3f allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	return e
}

// benchSink is the do-nothing delivery sink for the simnet
// microbenchmarks.
type benchSink struct{ delivered uint64 }

func (s *benchSink) DeliverEnvelope(env simnet.Envelope) { s.delivered++ }

// deliverEntries microbenchmarks the network delivery path on a
// tie-heavy fan-in (64 senders flooding one destination over a
// zero-jitter link, so every burst lands at one instant), once plain
// and once with delivery coalescing, quantifying what the coalesced
// path saves in scheduled events per delivery.
func deliverEntries(w io.Writer) []Entry {
	const fanIn = 64
	bench := func(coalesce bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			engine := sim.NewEngine(1)
			net := simnet.New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
			if coalesce {
				net.EnableCoalescing()
			}
			senders := make([]*simnet.Node, fanIn)
			for i := range senders {
				ep, err := net.AddNode(geo.NorthAmerica, 1e9)
				if err != nil {
					b.Fatal(err)
				}
				senders[i] = ep
			}
			dst, err := net.AddNode(geo.NorthAmerica, 1e9)
			if err != nil {
				b.Fatal(err)
			}
			sink := &benchSink{}
			round := func(n int) {
				for i := 0; i < n; i++ {
					net.Send(senders[i], dst, 600, sink, simnet.Envelope{Kind: 1, Num: uint64(i)})
				}
				if _, err := engine.Run(engine.Now() + time.Second); err != nil {
					b.Fatal(err)
				}
			}
			// Warm the batch slab and the scheduler's ring buckets so the
			// timed region measures steady state, not first-touch growth.
			for i := 0; i < 512; i++ {
				round(fanIn)
			}
			b.ResetTimer()
			for sent := 0; sent < b.N; sent += fanIn {
				n := fanIn
				if rem := b.N - sent; rem < n {
					n = rem
				}
				round(n)
			}
			b.StopTimer()
			if coalesce && net.CoalescedBatches() == 0 {
				b.Fatal("coalesced benchmark never batched")
			}
		})
	}
	plain, coal := bench(false), bench(true)
	entries := []Entry{
		{Name: "simnet/deliver", NsPerOp: float64(plain.NsPerOp()), AllocsPerOp: float64(plain.AllocsPerOp())},
		{Name: "simnet/deliver/coalesce", NsPerOp: float64(coal.NsPerOp()), AllocsPerOp: float64(coal.AllocsPerOp())},
	}
	for _, e := range entries {
		fmt.Fprintf(w, "%-22s %9.1f ns/op    %8.3f allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}
	return entries
}

// chainDispatchEntries microbenchmarks the chain/mining hot paths that
// now dispatch through the consensus.Protocol interface: the per-node
// block import (fork choice) and the miner's uncle-candidate sweep
// (reference validity). These mirror BenchmarkViewImport and
// BenchmarkUncleCandidates in internal/chain, and gate the dispatch
// cost of the pluggable-protocol refactor against the pre-refactor
// baseline.
func chainDispatchEntries(w io.Writer) []Entry {
	// A fixed-length chain keeps the per-import cost independent of
	// b.N (a b.N-sized chain would make ns/op drift with the iteration
	// count the harness happens to pick): the loop imports the same
	// 4096 blocks into a fresh view every cycle, amortizing the view
	// construction across the cycle.
	const chainLen = 4096
	runtime.GC()
	importRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		issuer := types.NewHashIssuer(1)
		reg := chain.NewRegistry(0, issuer)
		parent := reg.Genesis()
		blocks := make([]*types.Block, chainLen)
		for i := range blocks {
			blk := &types.Block{
				Hash:       issuer.Next(),
				Number:     parent.Number + 1,
				ParentHash: parent.Hash,
				Miner:      1,
			}
			if err := reg.Add(blk); err != nil {
				b.Fatal(err)
			}
			blocks[i] = blk
			parent = blk
		}
		var v *chain.View
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % chainLen
			if j == 0 {
				v = chain.NewView(reg)
			}
			v.Import(blocks[j])
		}
	})
	runtime.GC()
	unclesRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		issuer := types.NewHashIssuer(1)
		reg := chain.NewRegistry(0, issuer)
		v := chain.NewView(reg)
		parent := reg.Genesis()
		for i := 0; i < 64; i++ {
			blk := &types.Block{Hash: issuer.Next(), Number: parent.Number + 1, ParentHash: parent.Hash, Miner: 1}
			if err := reg.Add(blk); err != nil {
				b.Fatal(err)
			}
			v.Import(blk)
			sib := &types.Block{Hash: issuer.Next(), Number: parent.Number + 1, ParentHash: parent.Hash, Miner: 2}
			if err := reg.Add(sib); err != nil {
				b.Fatal(err)
			}
			v.Import(sib)
			parent = blk
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.UncleCandidates(2)
		}
	})
	entries := []Entry{
		{Name: "chain/viewimport", NsPerOp: float64(importRes.NsPerOp()), AllocsPerOp: float64(importRes.AllocsPerOp())},
		{Name: "chain/unclecandidates", NsPerOp: float64(unclesRes.NsPerOp()), AllocsPerOp: float64(unclesRes.AllocsPerOp())},
	}
	for _, e := range entries {
		fmt.Fprintf(w, "%-22s %9.1f ns/op    %8.3f allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}
	return entries
}

// benchRecords builds a deterministic synthetic record corpus with the
// field distribution of a real campaign spill: a handful of vantages,
// mostly compact-kind block records with an occasional announce and
// fetched, zig-zag-sensitive signed fields (negative NTP-skewed
// arrival offsets near the epoch, Miner -1 for unattributed blocks).
func benchRecords(n int) ([]measure.BlockRecord, []measure.TxRecord) {
	vantages := []string{"NA", "EA", "WE", "CE"}
	kinds := []string{"block", "block", "block", "announce", "fetched"}
	rng := rand.New(rand.NewSource(42))
	blocks := make([]measure.BlockRecord, n)
	for i := range blocks {
		miner := int64(rng.Intn(32))
		if i%97 == 0 {
			miner = -1
		}
		blocks[i] = measure.BlockRecord{
			Vantage: vantages[rng.Intn(len(vantages))],
			At:      time.Duration(rng.Int63n(int64(20*time.Minute))) - time.Minute,
			Hash:    types.Hash(rng.Uint64()),
			Number:  uint64(i / 4),
			Miner:   types.PoolID(miner),
			Parent:  types.Hash(rng.Uint64()),
			From:    types.NodeID(rng.Intn(2000) - 1),
			Kind:    kinds[rng.Intn(len(kinds))],
			NTxs:    rng.Intn(200),
			Size:    500 + rng.Intn(30000),
		}
	}
	txs := make([]measure.TxRecord, n)
	for i := range txs {
		txs[i] = measure.TxRecord{
			Vantage: vantages[rng.Intn(len(vantages))],
			At:      time.Duration(rng.Int63n(int64(20 * time.Minute))),
			Hash:    types.Hash(rng.Uint64()),
			Sender:  types.AccountID(rng.Intn(500)),
			Nonce:   uint64(rng.Intn(4000)),
			From:    types.NodeID(rng.Intn(2000) - 1),
		}
	}
	return blocks, txs
}

// encodeLog writes the whole corpus once in the given format and
// returns the serialized bytes (decode-benchmark input).
func encodeLog(format logs.Format, blocks []measure.BlockRecord, txs []measure.TxRecord) ([]byte, error) {
	var buf bytes.Buffer
	lw := logs.NewWriterFormat(&buf, format)
	for i := range blocks {
		lw.RecordBlock(blocks[i])
		lw.RecordTx(txs[i])
	}
	if err := lw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// bestOf reruns a benchmark and keeps the fastest result. The JSONL
// codec paths allocate enough per record that a single
// testing.Benchmark sample jitters with GC timing beyond the 15% CI
// gate; the minimum across five samples is the standard stable
// estimator for that.
func bestOf(n int, bench func() testing.BenchmarkResult) testing.BenchmarkResult {
	best := bench()
	for i := 1; i < n; i++ {
		if r := bench(); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// logsEntries microbenchmarks the record pipeline itself: spill
// encoding (binary vs JSONL, ns and allocs per record — the per-record
// cost every bounded-memory campaign pays), decoding (the re-analysis
// read path), the record fingerprinter (paid per record on every
// checkpointed run), and analysis/stream (decode + collector fold, the
// full ethanalyze inner loop). All gate against BENCH_baseline.json
// like every other entry; the binary encoder additionally has a
// 0 allocs/record pin in internal/logs.
func logsEntries(w io.Writer) ([]Entry, error) {
	const n = 4096
	blocks, txs := benchRecords(n)

	encode := func(format logs.Format) testing.BenchmarkResult {
		return bestOf(5, func() testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				lw := logs.NewWriterFormat(io.Discard, format)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j := i % n
					if i%2 == 0 {
						lw.RecordBlock(blocks[j])
					} else {
						lw.RecordTx(txs[j])
					}
				}
				b.StopTimer()
				if err := lw.Flush(); err != nil {
					b.Fatal(err)
				}
			})
		})
	}

	binData, err := encodeLog(logs.FormatBinary, blocks, txs)
	if err != nil {
		return nil, err
	}
	jsonlData, err := encodeLog(logs.FormatJSONL, blocks, txs)
	if err != nil {
		return nil, err
	}
	decode := func(format logs.Format, data []byte) testing.BenchmarkResult {
		return bestOf(5, func() testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				r := logs.NewReaderFormat(bytes.NewReader(data), format)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e, err := r.Next()
					if err == io.EOF {
						r = logs.NewReaderFormat(bytes.NewReader(data), format)
						e, err = r.Next()
					}
					if err != nil {
						b.Fatal(err)
					}
					if e.Kind != logs.KindBlock && e.Kind != logs.KindTx {
						b.Fatalf("unexpected entry kind %q", e.Kind)
					}
				}
			})
		})
	}

	fingerprint := bestOf(5, func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fp := logs.NewRecordFingerprinter()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % n
				if i%2 == 0 {
					fp.RecordBlock(blocks[j])
				} else {
					fp.RecordTx(txs[j])
				}
			}
			b.StopTimer()
			if fp.Blocks()+fp.Txs() == 0 {
				b.Fatal("fingerprinter consumed no records")
			}
		})
	})

	// analysis/stream: the ethanalyze inner loop — decode a binary
	// frame, fold the record into the streaming collector.
	stream := bestOf(5, func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			ds := &analysis.Dataset{Vantages: []string{"NA", "EA", "WE", "CE"}, InterBlock: 13300 * time.Millisecond}
			collector := analysis.NewCollector(ds, "")
			r := logs.NewReaderFormat(bytes.NewReader(binData), logs.FormatBinary)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := r.Next()
				if err == io.EOF {
					r = logs.NewReaderFormat(bytes.NewReader(binData), logs.FormatBinary)
					e, err = r.Next()
				}
				if err != nil {
					b.Fatal(err)
				}
				switch e.Kind {
				case logs.KindBlock:
					collector.RecordBlock(*e.Block)
				case logs.KindTx:
					collector.RecordTx(*e.Tx)
				}
			}
			b.StopTimer()
			if collector.BlockRecords()+collector.TxRecords() == 0 {
				b.Fatal("collector folded no records")
			}
		})
	})

	binEnc, jsonlEnc := encode(logs.FormatBinary), encode(logs.FormatJSONL)
	entries := []Entry{
		{Name: "logs/encode", NsPerOp: float64(binEnc.NsPerOp()), AllocsPerOp: float64(binEnc.AllocsPerOp())},
		{Name: "logs/encode/jsonl", NsPerOp: float64(jsonlEnc.NsPerOp()), AllocsPerOp: float64(jsonlEnc.AllocsPerOp())},
	}
	binDec, jsonlDec := decode(logs.FormatBinary, binData), decode(logs.FormatJSONL, jsonlData)
	entries = append(entries,
		Entry{Name: "logs/decode", NsPerOp: float64(binDec.NsPerOp()), AllocsPerOp: float64(binDec.AllocsPerOp())},
		Entry{Name: "logs/decode/jsonl", NsPerOp: float64(jsonlDec.NsPerOp()), AllocsPerOp: float64(jsonlDec.AllocsPerOp())},
		Entry{Name: "logs/fingerprint", NsPerOp: float64(fingerprint.NsPerOp()), AllocsPerOp: float64(fingerprint.AllocsPerOp())},
		Entry{Name: "analysis/stream", NsPerOp: float64(stream.NsPerOp()), AllocsPerOp: float64(stream.AllocsPerOp())},
	)
	for _, e := range entries {
		fmt.Fprintf(w, "%-22s %9.1f ns/op    %8.3f allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}
	return entries, nil
}

// compare checks fresh entries against a baseline report. ns and
// allocs may regress by at most threshold (fractionally); allocs get a
// small absolute epsilon so a 0-alloc baseline does not flag noise.
// With allocsOnly, ns differences are reported but never fail: the
// allocation budget is machine-independent while wall time is not, so
// this is the right gate when the baseline was recorded on different
// hardware or a different toolchain than the run under test.
func compare(fresh, baseline *Report, threshold float64, allocsOnly bool, w io.Writer) error {
	base := make(map[string]Entry, len(baseline.Entries))
	for _, e := range baseline.Entries {
		base[e.Name] = e
	}
	var failures []string
	for _, e := range fresh.Entries {
		b, ok := base[e.Name]
		if !ok {
			fmt.Fprintf(w, "compare: %s not in baseline, skipping\n", e.Name)
			continue
		}
		if limit := b.NsPerOp * (1 + threshold); e.NsPerOp > limit {
			msg := fmt.Sprintf("%s: ns/op %.1f exceeds baseline %.1f by more than %.0f%%",
				e.Name, e.NsPerOp, b.NsPerOp, threshold*100)
			if allocsOnly {
				fmt.Fprintf(w, "note (informational, -allocs-only): %s\n", msg)
			} else {
				failures = append(failures, msg)
			}
		}
		if limit := b.AllocsPerOp*(1+threshold) + 0.01; e.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.3f exceeds baseline %.3f by more than %.0f%%",
				e.Name, e.AllocsPerOp, b.AllocsPerOp, threshold*100))
		}
		if limit := b.AnalysisNsPerRecord * (1 + threshold); b.AnalysisNsPerRecord > 0 && e.AnalysisNsPerRecord > limit {
			msg := fmt.Sprintf("%s: analysis ns/record %.1f exceeds baseline %.1f by more than %.0f%%",
				e.Name, e.AnalysisNsPerRecord, b.AnalysisNsPerRecord, threshold*100)
			if allocsOnly {
				fmt.Fprintf(w, "note (informational, -allocs-only): %s\n", msg)
			} else {
				failures = append(failures, msg)
			}
		}
		// Analysis peak heap is near machine-independent (it tracks
		// pipeline state, not timing); gate it with a small absolute
		// epsilon so tiny campaigns do not flag GC noise.
		if b.AnalysisPeakHeapBytes > 0 {
			if limit := float64(b.AnalysisPeakHeapBytes)*(1+threshold) + 32*(1<<20); float64(e.AnalysisPeakHeapBytes) > limit {
				failures = append(failures, fmt.Sprintf("%s: analysis peak heap %.1f MB exceeds baseline %.1f MB by more than %.0f%% + 32 MB",
					e.Name, float64(e.AnalysisPeakHeapBytes)/(1<<20), float64(b.AnalysisPeakHeapBytes)/(1<<20), threshold*100))
			}
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Fprintf(w, "REGRESSION %s\n", f)
		}
		return fmt.Errorf("%d performance regression(s) against baseline", len(failures))
	}
	fmt.Fprintf(w, "compare: no regressions beyond %.0f%% against baseline\n", threshold*100)
	return nil
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &r, nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ethbench", flag.ContinueOnError)
	fs.SetOutput(w)
	profile := fs.String("profile", "short", "scale profile: short, ci or full")
	scalesSpec := fs.String("scales", "", "override scales as nodes:virtualMinutes[,...] (e.g. 1000:10)")
	out := fs.String("out", "BENCH_results.json", "output JSON path (empty to skip writing)")
	baselinePath := fs.String("baseline", "", "baseline JSON to compare against; exits non-zero on regression")
	threshold := fs.Float64("threshold", 0.15, "max fractional ns/allocs regression against the baseline")
	allocsOnly := fs.Bool("allocs-only", false, "gate only on allocs/op; report ns drift without failing (for cross-hardware baselines)")
	skipEngine := fs.Bool("skip-engine", false, "skip the scheduler microbenchmark")
	retain := fs.Bool("retain", false, "run campaigns with raw-record retention (batch-compatible mode) instead of the bounded-memory default")
	bothModes := fs.Bool("both-modes", false, "run every scale in bounded AND retained modes (before/after memory comparison)")
	vantagePeers := fs.Int("vantage-peers", 0, "re-peer primary vantages with this many nodes (0 = default 50 cap); raises record volume for analysis-phase benchmarks")
	shards := fs.Int("shards", 1, "event-engine shards (1 = serial, the baseline-comparable default; 0 = one per geo region up to GOMAXPROCS; non-serial entries are name-suffixed)")
	skipDispatch := fs.Bool("skip-dispatch", false, "skip the chain protocol-dispatch microbenchmarks")
	skipLogs := fs.Bool("skip-logs", false, "skip the record-pipeline microbenchmarks (logs/* and analysis/stream entries)")
	skipReuse := fs.Bool("skip-reuse", false, "skip the warm-run pooling benchmark (reuse/* entries)")
	reuseRuns := fs.Int("reuse-runs", 4, "averaged runs per mode in the warm-run pooling benchmark")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole benchmark run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (post-GC, end of run) to this file")
	protocol := fs.String("protocol", "", "consensus protocol for the benchmark campaigns: name[:key=val,...] (default ethereum; non-default entries are name-suffixed)")
	version := fs.Bool("version", false, "print build version and exit")
	var scenFlags cliutil.StringList
	fs.Var(&scenFlags, "scenario", "compose a scenario into the benchmark campaign: name[:key=val,...] (repeatable; measures a scenario's perf cost)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(w, cliutil.VersionLine("ethbench"))
		return nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	var proto consensus.Spec
	if *protocol != "" {
		spec, err := consensus.Parse(*protocol)
		if err != nil {
			return err
		}
		if err := consensus.Validate(spec); err != nil {
			return err
		}
		proto = spec
	}
	var scens []scenario.Spec
	for _, raw := range scenFlags {
		spec, err := scenario.Parse(raw)
		if err != nil {
			return err
		}
		if err := scenario.Validate(spec); err != nil {
			return err
		}
		scens = append(scens, spec)
	}
	scales, err := profileScales(*profile)
	if err != nil {
		return err
	}
	if *scalesSpec != "" {
		if scales, err = parseScales(*scalesSpec); err != nil {
			return err
		}
	}

	report := &Report{Schema: 1, GoVersion: runtime.Version(), Profile: *profile, NumCPU: runtime.NumCPU()}
	if !*skipEngine {
		report.Entries = append(report.Entries, engineEntry(w), churnEntry(w))
		report.Entries = append(report.Entries, deliverEntries(w)...)
	}
	if !*skipDispatch {
		report.Entries = append(report.Entries, chainDispatchEntries(w)...)
	}
	if !*skipLogs {
		entries, err := logsEntries(w)
		if err != nil {
			return err
		}
		report.Entries = append(report.Entries, entries...)
	}
	for _, s := range scales {
		modes := []bool{*retain}
		if *bothModes {
			modes = []bool{false, true}
		}
		for _, mode := range modes {
			entry, err := runCampaignEntry(s, mode, *vantagePeers, *shards, proto, scens, w)
			if err != nil {
				return err
			}
			report.Entries = append(report.Entries, entry)
		}
	}
	// Warm-run pooling profile: runs at its own fixed scale, so only
	// with the named profiles (a -scales override is a targeted
	// experiment) and only in the vanilla configuration, so reuse
	// entries always gate against the vanilla baseline.
	if !*skipReuse && *scalesSpec == "" && *protocol == "" && len(scens) == 0 && !*retain && !*bothModes {
		entries, err := reuseEntries(scale{150, 2 * time.Minute}, *reuseRuns, w)
		if err != nil {
			return err
		}
		report.Entries = append(report.Entries, entries...)
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // profile live heap, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		fmt.Fprintf(w, "wrote %s\n", *memprofile)
	}
	if *baselinePath != "" {
		baseline, err := loadReport(*baselinePath)
		if err != nil {
			return fmt.Errorf("load baseline: %w", err)
		}
		if err := compare(report, baseline, *threshold, *allocsOnly, w); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ethbench:", err)
		os.Exit(1)
	}
}
