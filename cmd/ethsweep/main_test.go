package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-preset", "bogus"},
		{"-seeds", "0"},
		{"-vary", "nodes"},
		{"-vary", "nodes=abc"},
		{"-vary", "discovery=maybe"},
		{"-vary", "pools=bogus"},
		{"-vary", "churn=bogus"},
		{"-vary", "txrate=x"},
		{"-vary", "duration=x"},
		{"-vary", "unknown=1"},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseAxis(t *testing.T) {
	ax, err := parseAxis("nodes=60, 120")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "nodes" || len(ax.Variants) != 2 || ax.Variants[1].Name != "120" {
		t.Errorf("axis = %+v", ax)
	}
	ax, err = parseAxis("duration=10m,1h")
	if err != nil {
		t.Fatal(err)
	}
	if len(ax.Variants) != 2 || ax.Variants[0].Name != "10m0s" {
		t.Errorf("duration axis = %+v", ax)
	}
}

func TestRunTinySweepWithJSON(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "agg.json")
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "quick", "-duration", "2m", "-nodes", "45", "-no-tx",
		"-seeds", "2", "-quiet", "-json", jsonPath,
		"-vary", "discovery=off,on",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	for _, want := range []string{"4 runs", "scenario discovery=off", "scenario discovery=on", "± "} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Scenarios []struct {
			Scenario string  `json:"scenario"`
			Seeds    []int64 `json:"seeds"`
			Metrics  []struct {
				Metric string  `json:"metric"`
				N      int     `json:"n"`
				Mean   float64 `json:"mean"`
				CI95   float64 `json:"ci95"`
			} `json:"metrics"`
		} `json:"scenarios"`
		Runs   int `json:"runs"`
		Failed int `json:"failed"`
	}
	if err := json.Unmarshal(data, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 4 || agg.Failed != 0 || len(agg.Scenarios) != 2 {
		t.Fatalf("aggregate = %+v", agg)
	}
	found := false
	for _, m := range agg.Scenarios[0].Metrics {
		if m.Metric == "propagation_median_ms" {
			found = true
			if m.N != 2 || m.Mean <= 0 {
				t.Errorf("propagation summary = %+v", m)
			}
		}
	}
	if !found {
		t.Error("propagation_median_ms missing from JSON")
	}
	if len(agg.Scenarios[0].Seeds) != 2 || agg.Scenarios[0].Seeds[0] != 1 {
		t.Errorf("seeds = %v", agg.Scenarios[0].Seeds)
	}
}

func TestRunSeedBaseOffset(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "quick", "-duration", "90s", "-nodes", "45", "-no-tx",
		"-seeds", "1", "-seed", "42", "-quiet", "-json", "-",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "42") {
		t.Errorf("seed base not honored:\n%s", buf.String())
	}
}

func TestSplitSpecsTrimsAndDropsEmpties(t *testing.T) {
	got := splitSpecs("partition:a=EA,start=1m,dur=1m; relayoverlay;  ;")
	want := []string{"partition:a=EA,start=1m,dur=1m", "relayoverlay"}
	if len(got) != len(want) {
		t.Fatalf("splitSpecs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitSpecs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if got := splitSpecs(";;"); len(got) != 0 {
		t.Fatalf("splitSpecs(\";;\") = %v, want empty", got)
	}
}

// TestRunAcceptsPaddedSpecLists: specs with spaces after the
// semicolons and a trailing separator must parse — the padded form
// used to fail on the untrimmed " churnburst..." item and the
// phantom empty spec.
func TestRunAcceptsPaddedSpecLists(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "quick", "-duration", "90s", "-nodes", "45", "-no-tx",
		"-seeds", "1", "-quiet",
		"-scenarios", "none; churnburst:count=5,start=30s;",
		"-protocols", "ethereum; bitcoin;",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// 1 seed x 2 scenarios x 2 protocols.
	if !strings.Contains(buf.String(), "4 runs") {
		t.Errorf("padded spec lists did not expand to 4 runs:\n%s", buf.String())
	}
}

func TestRunRejectsBadShards(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-shards", "-1"}, &buf); err == nil {
		t.Error("-shards -1 accepted")
	}
}

func TestRunRejectsBadScenarios(t *testing.T) {
	var buf bytes.Buffer
	for _, spec := range []string{"no-such", "partition", "churn:interval=x"} {
		if err := run([]string{"-scenarios", spec}, &buf); err == nil {
			t.Errorf("-scenarios %q accepted", spec)
		}
	}
}

func TestRunTinyScenarioSweep(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "scn.json")
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "quick", "-duration", "2m", "-nodes", "45", "-no-tx",
		"-seeds", "2", "-quiet", "-json", jsonPath,
		"-scenarios", "none;churnburst:count=5,start=30s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Scenarios []struct {
			Scenario string `json:"scenario"`
			Metrics  []struct {
				Metric string  `json:"metric"`
				N      int     `json:"n"`
				Mean   float64 `json:"mean"`
			} `json:"metrics"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &agg); err != nil {
		t.Fatal(err)
	}
	if len(agg.Scenarios) != 2 {
		t.Fatalf("aggregate has %d scenarios, want 2", len(agg.Scenarios))
	}
	found := false
	for _, s := range agg.Scenarios {
		if !strings.Contains(s.Scenario, "churnburst") {
			continue
		}
		for _, m := range s.Metrics {
			if m.Metric == "scenario_churnburst_restarts" {
				found = true
				if m.N != 2 || m.Mean != 5 {
					t.Errorf("restarts aggregated as n=%d mean=%v, want n=2 mean=5", m.N, m.Mean)
				}
			}
		}
	}
	if !found {
		t.Errorf("scenario metric not aggregated: %s", data)
	}
}

func TestRunRejectsBadProtocols(t *testing.T) {
	var buf bytes.Buffer
	for _, spec := range []string{"no-such", "ethereum;tendermint", "ghost-inclusive:decay=5"} {
		if err := run([]string{"-preset", "quick", "-seeds", "1", "-protocols", spec}, &buf); err == nil {
			t.Errorf("-protocols %q accepted", spec)
		}
	}
}

func TestRunTinyProtocolSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	jsonPath := filepath.Join(t.TempDir(), "agg.json")
	var buf bytes.Buffer
	err := run([]string{
		"-preset", "quick", "-duration", "2m", "-nodes", "45", "-no-tx",
		"-seeds", "2", "-quiet", "-json", jsonPath,
		"-protocols", "ethereum;bitcoin",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"4 runs", "scenario protocol=ethereum", "scenario protocol=bitcoin"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Scenarios []struct {
			Scenario string `json:"scenario"`
			Metrics  []struct {
				Metric string `json:"metric"`
			} `json:"metrics"`
		} `json:"scenarios"`
		Failed int `json:"failed"`
	}
	if err := json.Unmarshal(data, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Failed != 0 || len(agg.Scenarios) != 2 {
		t.Fatalf("aggregate = %+v", agg)
	}
	// The bitcoin variant must aggregate without uncle metrics.
	for _, sc := range agg.Scenarios {
		hasUncle := false
		for _, m := range sc.Metrics {
			if m.Metric == "fork_recognized_share" {
				hasUncle = true
			}
		}
		switch sc.Scenario {
		case "protocol=ethereum":
			if !hasUncle {
				t.Error("ethereum aggregate lacks fork_recognized_share")
			}
		case "protocol=bitcoin":
			if hasUncle {
				t.Error("bitcoin aggregate carries fork_recognized_share")
			}
		default:
			t.Errorf("unexpected scenario %q", sc.Scenario)
		}
	}
}
