// Command ethsweep runs a parallel multi-seed campaign sweep and
// reports cross-seed aggregate statistics (mean ± 95% CI) instead of
// the single-run point estimates of cmd/ethmeasure. This is the
// methodology the paper could not apply to its one-month live
// deployment: rerun the experiment many times, vary the scenario, and
// quantify the spread.
//
// Usage:
//
//	ethsweep [-preset quick|default|paper] [-seeds N] [-seed BASE]
//	         [-vary axis=v1,v2,...]... [-scenarios spec;spec;...]
//	         [-protocols spec;spec;...]
//	         [-workers N] [-json PATH]
//	         [-duration D] [-nodes N] [-no-tx] [-shards N] [-quiet]
//
// Axes accepted by -vary (repeatable, one axis each):
//
//	nodes=100,500,1000      regular node count
//	discovery=off,on        topology construction (random | devp2p discovery)
//	pools=paper,uniform,equal,majority
//	                        pool population / hash-rate split
//	churn=none,default,heavy
//	                        node turnover profile
//	txrate=0.5,2            transaction workload rate (tx/s)
//	duration=30m,2h         virtual campaign length
//
// -scenarios adds a scenario axis: semicolon-separated scenario specs
// ("name[:key=val,...]", see ethsim -list-scenarios for the catalog),
// each sweeping as its own variant; "none" is the unmodified base.
//
// -protocols adds a consensus-protocol axis: semicolon-separated
// protocol specs ("ethereum", "bitcoin", "ghost-inclusive:depth=10",
// see ethsim -list-protocols), each sweeping as its own variant with
// per-protocol cross-seed aggregates.
//
// Examples:
//
//	ethsweep -preset quick -seeds 8 -vary nodes=100,500 -json out.json
//	ethsweep -preset quick -seeds 8 \
//	    -scenarios "none;partition:a=EA+SEA,start=5m,dur=10m;relayoverlay"
//	ethsweep -preset quick -seeds 8 -protocols "ethereum;bitcoin"
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"ethmeasure/internal/cliutil"
	"ethmeasure/internal/core"
	"ethmeasure/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ethsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ethsweep", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "quick", "base configuration preset: quick | default | paper")
		seeds    = fs.Int("seeds", 8, "number of seeds per scenario")
		seedBase = fs.Int64("seed", 1, "first seed (seeds are BASE..BASE+N-1)")
		workers  = fs.Int("workers", 0, "concurrent campaigns (0 = GOMAXPROCS)")
		jsonPath = fs.String("json", "", "write the aggregate as JSON to this file ('-' for stdout)")
		duration = fs.Duration("duration", 0, "override the base virtual campaign duration")
		nodes    = fs.Int("nodes", 0, "override the base regular node count")
		noTx     = fs.Bool("no-tx", false, "disable the transaction workload")
		quiet    = fs.Bool("quiet", false, "suppress per-run progress on stderr")
		scens    = fs.String("scenarios", "", "scenario axis: semicolon-separated specs (name[:key=val,...]; 'none' = base)")
		protos   = fs.String("protocols", "", "consensus-protocol axis: semicolon-separated specs (ethereum;bitcoin;...)")
		shards   = fs.Int("shards", 0, "event-engine shards per campaign (0 = one per geo region up to GOMAXPROCS, 1 = serial)")
		version  = fs.Bool("version", false, "print build version and exit")
		vary     cliutil.StringList
	)
	fs.Var(&vary, "vary", "axis=v1,v2,... (repeatable; axes: nodes, discovery, pools, churn, txrate, duration)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, cliutil.VersionLine("ethsweep"))
		return nil
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be at least 1, got %d", *seeds)
	}

	var base core.Config
	switch *preset {
	case "quick":
		base = core.QuickConfig()
	case "default":
		base = core.DefaultConfig()
	case "paper":
		base = core.PaperScaleConfig()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if *duration > 0 {
		base.Duration = *duration
	}
	if *nodes > 0 {
		base.NumNodes = *nodes
	}
	if *noTx {
		base.EnableTxWorkload = false
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}
	base.Shards = *shards

	matrix := &sweep.Matrix{
		Base:  base,
		Seeds: sweep.Seeds(*seedBase, *seeds),
	}
	for _, spec := range vary {
		axis, err := parseAxis(spec)
		if err != nil {
			return err
		}
		matrix.Axes = append(matrix.Axes, axis)
	}
	if *scens != "" {
		axis, err := sweep.Scenarios(splitSpecs(*scens)...)
		if err != nil {
			return err
		}
		matrix.Axes = append(matrix.Axes, axis)
	}
	if *protos != "" {
		axis, err := sweep.Protocols(splitSpecs(*protos)...)
		if err != nil {
			return err
		}
		matrix.Axes = append(matrix.Axes, axis)
	}

	// Ctrl-C cancels the sweep but still aggregates completed runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	total := matrix.NumRuns()
	fmt.Fprintf(stdout, "sweeping %s preset: %d scenarios x %d seeds = %d runs (%v virtual each)\n",
		*preset, total / *seeds, *seeds, total, base.Duration)

	runner := &sweep.Runner{Workers: *workers}
	if !*quiet {
		runner.OnResult = func(done, total int, r *sweep.RunResult) {
			status := "ok"
			if r.Err != nil {
				status = "FAILED: " + r.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "run %d/%d scenario=%s seed=%d %s (%v)\n",
				done, total, r.Run.Scenario, r.Run.Seed, status, r.Wall.Round(time.Millisecond))
		}
	}

	start := time.Now()
	results, runErr := runner.Run(ctx, matrix)
	if runErr != nil && results == nil {
		return runErr
	}
	agg := sweep.Aggregate(results)
	wall := time.Since(start)

	fmt.Fprintf(stdout, "\ncompleted %d/%d runs in %v wall time\n",
		agg.Runs-agg.Failed, agg.Runs, wall.Round(time.Millisecond))
	agg.WriteText(stdout)

	if *jsonPath != "" {
		if *jsonPath == "-" {
			if err := agg.WriteJSON(stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			if err := agg.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote JSON aggregate to %s\n", *jsonPath)
		}
	}
	if runErr != nil {
		return fmt.Errorf("sweep interrupted: %w", runErr)
	}
	if agg.Failed > 0 {
		return fmt.Errorf("%d of %d runs failed", agg.Failed, agg.Runs)
	}
	return nil
}

// parseAxis turns one -vary occurrence ("nodes=100,500") into a sweep
// axis.
func parseAxis(spec string) (sweep.Axis, error) {
	key, vals, ok := strings.Cut(spec, "=")
	if !ok || vals == "" {
		return sweep.Axis{}, fmt.Errorf("-vary %q: want axis=v1,v2,...", spec)
	}
	parts := strings.Split(vals, ",")
	switch key {
	case "nodes":
		ns := make([]int, 0, len(parts))
		for _, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("-vary nodes: bad count %q", p)
			}
			ns = append(ns, n)
		}
		return sweep.Nodes(ns...), nil
	case "discovery":
		bs := make([]bool, 0, len(parts))
		for _, p := range parts {
			switch strings.TrimSpace(p) {
			case "on", "true":
				bs = append(bs, true)
			case "off", "false":
				bs = append(bs, false)
			default:
				return sweep.Axis{}, fmt.Errorf("-vary discovery: want on/off, got %q", p)
			}
		}
		return sweep.Discovery(bs...), nil
	case "pools":
		return sweep.PoolSplits(trimAll(parts)...)
	case "churn":
		return sweep.ChurnProfiles(trimAll(parts)...)
	case "txrate":
		rs := make([]float64, 0, len(parts))
		for _, p := range parts {
			r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("-vary txrate: bad rate %q", p)
			}
			rs = append(rs, r)
		}
		return sweep.TxRates(rs...), nil
	case "duration":
		ds := make([]time.Duration, 0, len(parts))
		for _, p := range parts {
			d, err := time.ParseDuration(strings.TrimSpace(p))
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("-vary duration: bad duration %q", p)
			}
			ds = append(ds, d)
		}
		return sweep.Durations(ds...), nil
	default:
		return sweep.Axis{}, fmt.Errorf("-vary: unknown axis %q (want nodes|discovery|pools|churn|txrate|duration)", key)
	}
}

func trimAll(parts []string) []string {
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

// splitSpecs splits a semicolon-separated spec list the way -vary
// values are treated: each item trimmed, empty items dropped. Without
// this, "partition; eclipse;" used to produce a " eclipse" spec (the
// parser rejects the leading space) and a phantom empty variant from
// the trailing semicolon.
func splitSpecs(s string) []string {
	parts := strings.Split(s, ";")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
