package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRequiresOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -out accepted")
	}
}

func TestRunRejectsUnknownPreset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.jsonl")
	if err := run([]string{"-out", out, "-preset", "bogus"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunWritesLogs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "campaign.jsonl")
	err := run([]string{
		"-out", out, "-preset", "quick",
		"-duration", "5m", "-nodes", "60", "-no-tx", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("log file empty")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
