package main

import (
	"os"
	"path/filepath"
	"testing"

	"ethmeasure/internal/logs"
	"ethmeasure/internal/types"
)

func TestRunRequiresOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -out accepted")
	}
}

func TestRunRejectsUnknownPreset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.jsonl")
	if err := run([]string{"-out", out, "-preset", "bogus"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunWritesLogs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "campaign.jsonl")
	err := run([]string{
		"-out", out, "-preset", "quick",
		"-duration", "5m", "-nodes", "60", "-no-tx", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("log file empty")
	}
}

// TestRunStreamMatchesBatch writes the same campaign both ways and
// requires identical file contents: the spill path is the batch file,
// produced without retaining records. (Byte-identity holds here
// because -no-tx leaves a single record kind; with transactions the
// spill interleaves kinds in arrival order while WriteLogs groups
// them — same per-kind order, which is all the analyzers read.)
func TestRunStreamMatchesBatch(t *testing.T) {
	dir := t.TempDir()
	batch := filepath.Join(dir, "batch.jsonl")
	stream := filepath.Join(dir, "stream.jsonl")
	args := []string{"-preset", "quick", "-duration", "5m", "-nodes", "60", "-no-tx", "-seed", "3"}
	if err := run(append([]string{"-out", batch}, args...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-out", stream, "-stream"}, args...)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(batch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || string(a) != string(b) {
		t.Fatalf("streamed file differs from batch file (%d vs %d bytes)", len(a), len(b))
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestListScenarios(t *testing.T) {
	// -list-scenarios needs no -out and must not simulate anything.
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadScenario(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.jsonl")
	for _, spec := range []string{"no-such", "partition", "eclipse:attackers=0"} {
		if err := run([]string{"-out", out, "-scenario", spec}); err == nil {
			t.Errorf("-scenario %q accepted", spec)
		}
	}
}

func TestRunWithScenarioWritesTaggedLogs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "scenario.jsonl")
	err := run([]string{
		"-out", out, "-preset", "quick",
		"-duration", "5m", "-nodes", "60", "-no-tx", "-seed", "3",
		"-scenario", "relayoverlay",
		"-scenario", "churnburst:count=5,start=2m",
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := logs.ReadCampaignFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"relayoverlay", "churnburst:count=5,start=2m"}
	if len(c.Meta.Scenarios) != 2 || c.Meta.Scenarios[0] != want[0] || c.Meta.Scenarios[1] != want[1] {
		t.Errorf("log meta scenarios = %v, want %v", c.Meta.Scenarios, want)
	}
}

func TestListProtocols(t *testing.T) {
	// -list-protocols needs no -out and must not simulate anything.
	if err := run([]string{"-list-protocols"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadProtocol(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.jsonl")
	for _, spec := range []string{"no-such", "bitcoin:reward=-1", "ghost-inclusive:depth=oops"} {
		if err := run([]string{"-out", out, "-protocol", spec}); err == nil {
			t.Errorf("-protocol %q accepted", spec)
		}
	}
}

func TestRunWithProtocolWritesTaggedLogs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bitcoin.jsonl")
	err := run([]string{
		"-out", out, "-preset", "quick",
		"-duration", "5m", "-nodes", "60", "-no-tx", "-seed", "3",
		"-protocol", "bitcoin",
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := logs.ReadCampaignFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta.Protocol != "bitcoin" {
		t.Errorf("log meta protocol = %q, want bitcoin", c.Meta.Protocol)
	}
	// The rebuilt registry applies the logged protocol and the chain
	// carries no uncle references.
	if got := c.Chain.Protocol().Name(); got != "bitcoin" {
		t.Errorf("rebuilt registry protocol = %q", got)
	}
	c.Chain.Blocks(func(b *types.Block) bool {
		if len(b.Uncles) != 0 {
			t.Errorf("block %s carries uncles under bitcoin", b.Hash)
		}
		return true
	})
}
