// Command ethsim runs the network simulation and writes the raw
// measurement logs (plus the chain dump) to a campaign log file — the
// simulated equivalent of the paper's instrumented Geth deployment,
// producing the dataset that cmd/ethanalyze post-processes. The log
// encodes as compact binary ethlog frames by default; -format jsonl
// selects JSON Lines for interop.
//
// Usage:
//
//	ethsim -out logs.ethlog [-preset quick|default|paper] [-seed N]
//	       [-duration D] [-nodes N] [-no-tx] [-shards N] [-stream] [-progress]
//	       [-format binary|jsonl]
//	       [-protocol name[:key=val,...]]
//	       [-scenario name[:key=val,...]]...
//	ethsim -list-scenarios
//	ethsim -list-protocols
//
// With -stream the campaign runs in bounded-memory mode: records spill
// straight to the output file as they are produced instead of
// accumulating in RAM first — the mode for paper-scale durations.
//
// -protocol selects the consensus rule set the chain runs under
// (fork choice, uncle policy, reward schedule): "ethereum" (default),
// "bitcoin", "ghost-inclusive", with optional parameters. Run
// -list-protocols for the catalog.
//
// -scenario (repeatable) composes a registered intervention into the
// campaign: a regional partition, a relay overlay, an eclipse attack,
// a withholding pool, ... Run -list-scenarios for the catalog.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ethmeasure"
	"ethmeasure/internal/cliutil"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ethsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethsim", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "output log file (required)")
		format     = fs.String("format", "", "log encoding: binary | jsonl (default binary)")
		preset     = fs.String("preset", "quick", "configuration preset: quick | default | paper")
		seed       = fs.Int64("seed", 1, "simulation seed")
		duration   = fs.Duration("duration", 0, "override virtual campaign duration")
		nodes      = fs.Int("nodes", 0, "override regular node count")
		noTx       = fs.Bool("no-tx", false, "disable the transaction workload")
		shards     = fs.Int("shards", 0, "event-engine shards (0 = one per geo region up to GOMAXPROCS, 1 = serial)")
		stream     = fs.Bool("stream", false, "bounded-memory mode: spill records to -out during the run instead of retaining them")
		progress   = fs.Bool("progress", false, "print live progress lines during the run")
		listScens  = fs.Bool("list-scenarios", false, "print the scenario catalog and exit")
		listProtos = fs.Bool("list-protocols", false, "print the consensus-protocol catalog and exit")
		version    = fs.Bool("version", false, "print build version and exit")
		protocol   = fs.String("protocol", "", "consensus protocol: name[:key=val,...] (default ethereum; see -list-protocols)")
		scens      cliutil.StringList
	)
	fs.Var(&scens, "scenario", "compose a scenario: name[:key=val,...] (repeatable; see -list-scenarios)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionLine("ethsim"))
		return nil
	}
	if *listScens {
		printScenarioCatalog(os.Stdout)
		return nil
	}
	if *listProtos {
		printProtocolCatalog(os.Stdout)
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var cfg ethmeasure.Config
	switch *preset {
	case "quick":
		cfg = ethmeasure.QuickConfig()
	case "default":
		cfg = ethmeasure.DefaultConfig()
	case "paper":
		cfg = ethmeasure.PaperScaleConfig()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	cfg.Seed = *seed
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *nodes > 0 {
		cfg.NumNodes = *nodes
	}
	if *noTx {
		cfg.EnableTxWorkload = false
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}
	cfg.Shards = *shards
	spillFormat, err := logs.ParseFormat(*format)
	if err != nil {
		return err
	}
	cfg.SpillFormat = spillFormat
	if *stream {
		cfg.RetainRecords = false
		cfg.SpillPath = *out
	}
	if *protocol != "" {
		spec, err := ethmeasure.ParseProtocol(*protocol)
		if err != nil {
			return err
		}
		cfg.Protocol = spec
	}
	for _, raw := range scens {
		spec, err := ethmeasure.ParseScenario(raw)
		if err != nil {
			return err
		}
		cfg.Scenarios = append(cfg.Scenarios, spec)
	}

	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulating %v over %d nodes (seed %d, protocol %s)...\n",
		cfg.Duration, cfg.NumNodes, cfg.Seed, cfg.ProtocolTag())
	if tags := campaign.ScenarioTags(); len(tags) > 0 {
		fmt.Printf("scenarios: %s\n", strings.Join(tags, "; "))
	}
	start := time.Now()
	var opts ethmeasure.RunOptions
	if *progress {
		// ~20 lines across the run, at least one per virtual minute.
		interval := cfg.Duration / 20
		if interval < time.Minute {
			interval = time.Minute
		}
		opts.ProgressInterval = interval
		opts.Progress = func(p ethmeasure.RunProgress) {
			pct := 100 * float64(p.SimTime) / float64(p.Duration)
			fmt.Printf("  %5.1f%%  t=%-8v  %d events, %d blocks, %d block records, %d tx records\n",
				pct, p.SimTime.Round(time.Second), p.Events, p.Blocks, p.BlockRecords, p.TxRecords)
		}
	}
	results, err := campaign.RunContext(context.Background(), opts)
	if err != nil {
		return err
	}
	st := results.Stats
	fmt.Printf("done in %v: %d blocks, %d txs, %d messages\n",
		time.Since(start).Round(time.Millisecond), st.BlocksCreated, st.TxsCreated, st.Messages)
	if results.Scenarios != nil {
		for _, name := range results.Scenarios.Metrics.Names() {
			fmt.Printf("  %s = %g\n", name, results.Scenarios.Metrics[name])
		}
	}

	if !*stream {
		if err := campaign.WriteLogs(*out); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d block records, %d tx records and the chain dump to %s\n",
		st.BlockRecords, st.TxRecords, *out)
	fmt.Println("analyze with: ethanalyze -logs", *out)
	return nil
}

// printScenarioCatalog renders the registry for -list-scenarios.
func printScenarioCatalog(w *os.File) {
	fmt.Fprintln(w, "Registered scenarios (compose with -scenario name[:key=val,...]):")
	fmt.Fprintln(w)
	for _, reg := range scenario.Catalog() {
		fmt.Fprintf(w, "  %-14s %s\n", reg.Name, reg.Desc)
		fmt.Fprintf(w, "  %-14s usage: %s\n", "", reg.Usage)
	}
}

// printProtocolCatalog renders the registry for -list-protocols.
func printProtocolCatalog(w *os.File) {
	fmt.Fprintln(w, "Registered consensus protocols (select with -protocol name[:key=val,...]):")
	fmt.Fprintln(w)
	for _, reg := range consensus.Catalog() {
		fmt.Fprintf(w, "  %-16s %s\n", reg.Name, reg.Desc)
		fmt.Fprintf(w, "  %-16s usage: %s\n", "", reg.Usage)
	}
}
