// Command ethsim runs the network simulation and writes the raw
// measurement logs (plus the chain dump) to a JSONL file — the
// simulated equivalent of the paper's instrumented Geth deployment,
// producing the dataset that cmd/ethanalyze post-processes.
//
// Usage:
//
//	ethsim -out logs.jsonl [-preset quick|default|paper] [-seed N]
//	       [-duration D] [-nodes N] [-no-tx] [-stream]
//
// With -stream the campaign runs in bounded-memory mode: records spill
// straight to the output file as they are produced instead of
// accumulating in RAM first — the mode for paper-scale durations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ethmeasure"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ethsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethsim", flag.ContinueOnError)
	var (
		out      = fs.String("out", "", "output JSONL file (required)")
		preset   = fs.String("preset", "quick", "configuration preset: quick | default | paper")
		seed     = fs.Int64("seed", 1, "simulation seed")
		duration = fs.Duration("duration", 0, "override virtual campaign duration")
		nodes    = fs.Int("nodes", 0, "override regular node count")
		noTx     = fs.Bool("no-tx", false, "disable the transaction workload")
		stream   = fs.Bool("stream", false, "bounded-memory mode: spill records to -out during the run instead of retaining them")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var cfg ethmeasure.Config
	switch *preset {
	case "quick":
		cfg = ethmeasure.QuickConfig()
	case "default":
		cfg = ethmeasure.DefaultConfig()
	case "paper":
		cfg = ethmeasure.PaperScaleConfig()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	cfg.Seed = *seed
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *nodes > 0 {
		cfg.NumNodes = *nodes
	}
	if *noTx {
		cfg.EnableTxWorkload = false
	}
	if *stream {
		cfg.RetainRecords = false
		cfg.SpillPath = *out
	}

	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulating %v over %d nodes (seed %d)...\n", cfg.Duration, cfg.NumNodes, cfg.Seed)
	start := time.Now()
	results, err := campaign.Run()
	if err != nil {
		return err
	}
	st := results.Stats
	fmt.Printf("done in %v: %d blocks, %d txs, %d messages\n",
		time.Since(start).Round(time.Millisecond), st.BlocksCreated, st.TxsCreated, st.Messages)

	if !*stream {
		if err := campaign.WriteLogs(*out); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d block records, %d tx records and the chain dump to %s\n",
		st.BlockRecords, st.TxRecords, *out)
	fmt.Println("analyze with: ethanalyze -logs", *out)
	return nil
}
