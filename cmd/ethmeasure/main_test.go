package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownPreset(t *testing.T) {
	if err := run([]string{"-preset", "bogus"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunPrintInfra(t *testing.T) {
	if err := run([]string{"-print-infra"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickCampaignWithLogs(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "out.jsonl")
	err := run([]string{
		"-preset", "quick", "-duration", "5m", "-nodes", "60",
		"-no-tx", "-logs", logPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(logPath); err != nil || info.Size() == 0 {
		t.Fatalf("log file not written: %v", err)
	}
}

func TestRunTxRateOverride(t *testing.T) {
	err := run([]string{
		"-preset", "quick", "-duration", "3m", "-nodes", "60", "-txrate", "0.2",
	})
	if err != nil {
		t.Fatal(err)
	}
}
