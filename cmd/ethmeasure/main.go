// Command ethmeasure runs an end-to-end measurement campaign on the
// simulated Ethereum network and prints the paper's tables and
// figures. It is the one-command equivalent of the paper's month-long
// deployment plus offline analysis.
//
// Usage:
//
//	ethmeasure [-preset quick|default|paper] [-seed N] [-duration D]
//	           [-nodes N] [-txrate R] [-shards N] [-progress]
//	           [-print-infra] [-logs PATH] [-format binary|jsonl]
//	           [-protocol name[:key=val,...]]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ethmeasure"
	"ethmeasure/internal/cliutil"
	"ethmeasure/internal/core"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ethmeasure:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethmeasure", flag.ContinueOnError)
	var (
		preset     = fs.String("preset", "default", "configuration preset: quick | default | paper")
		seed       = fs.Int64("seed", 1, "simulation seed")
		duration   = fs.Duration("duration", 0, "override virtual campaign duration")
		nodes      = fs.Int("nodes", 0, "override regular node count")
		txRate     = fs.Float64("txrate", 0, "override transaction rate (tx/s)")
		noTx       = fs.Bool("no-tx", false, "disable the transaction workload")
		shards     = fs.Int("shards", 0, "event-engine shards (0 = one per geo region up to GOMAXPROCS, 1 = serial)")
		progress   = fs.Bool("progress", false, "print live progress lines during the run")
		printInfra = fs.Bool("print-infra", false, "print Table I (infrastructure) and exit")
		logPath    = fs.String("logs", "", "write measurement logs + chain dump to this file")
		format     = fs.String("format", "", "log encoding for -logs: binary | jsonl (default binary)")
		protocol   = fs.String("protocol", "", "consensus protocol: name[:key=val,...] (default ethereum; see ethsim -list-protocols)")
		version    = fs.Bool("version", false, "print build version and exit")
		scens      cliutil.StringList
	)
	fs.Var(&scens, "scenario", "compose a scenario: name[:key=val,...] (repeatable; see ethsim -list-scenarios)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *version {
		fmt.Println(cliutil.VersionLine("ethmeasure"))
		return nil
	}
	if *printInfra {
		report.TableI(os.Stdout, measure.PaperInfrastructure())
		return nil
	}

	var cfg ethmeasure.Config
	switch *preset {
	case "quick":
		cfg = ethmeasure.QuickConfig()
	case "default":
		cfg = ethmeasure.DefaultConfig()
	case "paper":
		cfg = ethmeasure.PaperScaleConfig()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	cfg.Seed = *seed
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *nodes > 0 {
		cfg.NumNodes = *nodes
	}
	if *txRate > 0 {
		cfg.TxGen.Rate = *txRate
		core.ApplyCapacity(&cfg)
	}
	if *noTx {
		cfg.EnableTxWorkload = false
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}
	cfg.Shards = *shards
	spillFormat, err := logs.ParseFormat(*format)
	if err != nil {
		return err
	}
	cfg.SpillFormat = spillFormat
	if *protocol != "" {
		spec, err := ethmeasure.ParseProtocol(*protocol)
		if err != nil {
			return err
		}
		cfg.Protocol = spec
	}
	for _, raw := range scens {
		spec, err := ethmeasure.ParseScenario(raw)
		if err != nil {
			return err
		}
		cfg.Scenarios = append(cfg.Scenarios, spec)
	}

	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("running %s campaign: %d nodes, %v virtual time, seed %d, protocol %s\n",
		*preset, cfg.NumNodes, cfg.Duration, cfg.Seed, cfg.ProtocolTag())
	if tags := campaign.ScenarioTags(); len(tags) > 0 {
		fmt.Printf("scenarios: %s\n", strings.Join(tags, "; "))
	}
	fmt.Println()
	var opts ethmeasure.RunOptions
	if *progress {
		// ~20 lines across the run, at least one per virtual minute —
		// the same cadence as ethsim -progress.
		interval := cfg.Duration / 20
		if interval < time.Minute {
			interval = time.Minute
		}
		opts.ProgressInterval = interval
		opts.Progress = func(p ethmeasure.RunProgress) {
			pct := 100 * float64(p.SimTime) / float64(p.Duration)
			fmt.Printf("  %5.1f%%  t=%-8v  %d events, %d blocks, %d block records, %d tx records\n",
				pct, p.SimTime.Round(time.Second), p.Events, p.Blocks, p.BlockRecords, p.TxRecords)
		}
	}
	results, err := campaign.RunContext(context.Background(), opts)
	if err != nil {
		return err
	}

	st := results.Stats
	fmt.Printf("simulated %v in %v wall time: %d events, %d messages, %d blocks, %d txs\n",
		st.VirtualDuration, st.WallDuration.Round(time.Millisecond),
		st.Events, st.Messages, st.BlocksCreated, st.TxsCreated)
	fmt.Printf("record pipeline: %d block records, %d tx records streamed\n\n",
		st.BlockRecords, st.TxRecords)
	ethmeasure.WriteReport(os.Stdout, results)

	if *logPath != "" {
		if err := campaign.WriteLogs(*logPath); err != nil {
			return err
		}
		fmt.Printf("wrote measurement logs to %s\n", *logPath)
	}
	return nil
}
