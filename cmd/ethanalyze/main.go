// Command ethanalyze post-processes a measurement log written by
// ethsim (or ethmeasure -logs) and prints the paper's tables and
// figures — the simulated equivalent of the paper's pandas/NumPy
// pipeline over 600 GB of raw Geth logs.
//
// Usage:
//
//	ethanalyze -logs logs.jsonl [-top 15]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ethanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethanalyze", flag.ContinueOnError)
	var (
		logPath = fs.String("logs", "", "campaign JSONL log file (required)")
		topN    = fs.Int("top", 15, "pools to list individually in per-pool breakdowns")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("-logs is required")
	}

	campaign, err := logs.ReadCampaignFile(*logPath)
	if err != nil {
		return err
	}
	if campaign.Chain == nil {
		return fmt.Errorf("log file has no chain dump; analysis needs it")
	}
	dataset := &analysis.Dataset{
		Blocks: campaign.Blocks,
		Txs:    campaign.Txs,
		Chain:  campaign.Chain,
	}
	networkSize := 0
	redundancyVantage := ""
	if meta := campaign.Meta; meta != nil {
		dataset.Vantages = meta.Vantages
		dataset.PoolNames = meta.PoolNames
		dataset.InterBlock = time.Duration(meta.InterBlockNs)
		dataset.Duration = time.Duration(meta.DurationNs)
		networkSize = meta.NetworkSize
		redundancyVantage = meta.RedundancyVantage
	} else {
		// Legacy log without metadata: infer vantages from records.
		dataset.Vantages = inferVantages(campaign.Blocks)
		dataset.InterBlock = 13300 * time.Millisecond
	}
	fmt.Printf("loaded %d block records, %d tx records, %d chain blocks from %s\n\n",
		len(campaign.Blocks), len(campaign.Txs), campaign.Chain.Len(), *logPath)

	report.TableI(os.Stdout, measure.PaperInfrastructure())
	fmt.Println()

	prop, err := analysis.BlockPropagation(dataset)
	if err != nil {
		return err
	}
	report.Figure1(os.Stdout, prop)
	fmt.Println()

	if redundancyVantage != "" {
		red, err := analysis.Redundancy(dataset, redundancyVantage, networkSize)
		if err != nil {
			return err
		}
		report.TableII(os.Stdout, red)
		fmt.Println()
	}

	report.Figure2(os.Stdout, analysis.FirstObservation(dataset))
	fmt.Println()
	report.Figure3(os.Stdout, analysis.PoolGeography(dataset, *topN))
	fmt.Println()

	if len(campaign.Txs) > 0 {
		report.Figure4(os.Stdout, analysis.CommitTimes(dataset))
		fmt.Println()
		report.Figure5(os.Stdout, analysis.TransactionOrdering(dataset))
		fmt.Println()
	}

	report.Figure6(os.Stdout, analysis.EmptyBlocks(dataset, *topN))
	fmt.Println()
	forks := analysis.Forks(dataset)
	report.TableIII(os.Stdout, forks)
	fmt.Println()
	report.OneMinerForks(os.Stdout, analysis.OneMinerForks(dataset, forks))
	fmt.Println()
	report.Figure7(os.Stdout, analysis.Sequences(dataset, 6))
	if len(campaign.Txs) > 0 {
		fmt.Println()
		report.TxPropagation(os.Stdout, analysis.TxPropagation(dataset))
	}
	return nil
}

// inferVantages extracts vantage names from records, for logs written
// without a metadata entry. The default-peers node cannot be identified
// without metadata, so all vantages are treated as primary.
func inferVantages(blocks []measure.BlockRecord) []string {
	seen := make(map[string]bool)
	var names []string
	for i := range blocks {
		if !seen[blocks[i].Vantage] {
			seen[blocks[i].Vantage] = true
			names = append(names, blocks[i].Vantage)
		}
	}
	sort.Strings(names)
	return names
}
