// Command ethanalyze post-processes a measurement log written by
// ethsim (or ethmeasure -logs) and prints the paper's tables and
// figures — the simulated equivalent of the paper's pandas/NumPy
// pipeline over 600 GB of raw Geth logs.
//
// The log is processed as a stream: each record is folded into the
// analysis collector's incremental state as it is parsed, so memory is
// bounded by distinct blocks and transactions, never by file size.
// Both log encodings (binary ethlog and JSONL) are auto-detected;
// -format pins the decoder when auto-detection must be bypassed.
//
// Usage:
//
//	ethanalyze -logs logs.ethlog [-top 15] [-format binary|jsonl]
//	ethanalyze -logs logs.jsonl -convert logs.ethlog [-to binary|jsonl]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/cliutil"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ethanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethanalyze", flag.ContinueOnError)
	var (
		logPath     = fs.String("logs", "", "campaign log file, binary or JSONL (required)")
		topN        = fs.Int("top", 15, "pools to list individually in per-pool breakdowns")
		format      = fs.String("format", "", "input encoding: binary | jsonl (default: auto-detect)")
		convertPath = fs.String("convert", "", "transcode the log to this path instead of analyzing")
		convertTo   = fs.String("to", "", "target encoding for -convert: binary | jsonl (default: the opposite of the input)")
		version     = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionLine("ethanalyze"))
		return nil
	}
	if *logPath == "" {
		return fmt.Errorf("-logs is required")
	}
	inFormat, err := logs.ParseFormat(*format)
	if err != nil {
		return err
	}
	if *convertPath != "" {
		outFormat, err := logs.ParseFormat(*convertTo)
		if err != nil {
			return err
		}
		return convert(*logPath, *convertPath, inFormat, outFormat)
	}
	if *convertTo != "" {
		return fmt.Errorf("-to only makes sense with -convert")
	}

	f, err := os.Open(*logPath)
	if err != nil {
		return fmt.Errorf("logs: open: %w", err)
	}
	defer f.Close()
	reader := logs.NewReaderFormat(f, inFormat)

	first, err := reader.Next()
	if err == io.EOF {
		return fmt.Errorf("log file %s is empty", *logPath)
	}
	if err != nil {
		return err
	}

	dataset := &analysis.Dataset{}
	networkSize := 0
	redundancyVantage := ""
	var scenarioTags []string
	protocolTag := ""
	var builder logs.ChainBuilder
	if first.Kind == logs.KindMeta && first.Meta != nil {
		meta := first.Meta
		dataset.Vantages = meta.Vantages
		dataset.PoolNames = meta.PoolNames
		dataset.InterBlock = time.Duration(meta.InterBlockNs)
		dataset.Duration = time.Duration(meta.DurationNs)
		networkSize = meta.NetworkSize
		redundancyVantage = meta.RedundancyVantage
		scenarioTags = meta.Scenarios
		// Re-analysis applies the original campaign's consensus rules
		// (protocol-less logs predate pluggable consensus: ethereum).
		proto, err := logs.ProtocolFromMeta(meta)
		if err != nil {
			return err
		}
		builder.Protocol = proto
		protocolTag = proto.Name()
		if meta.Protocol != "" {
			protocolTag = meta.Protocol
		}
	} else {
		// Legacy log without metadata: a cheap prescan collects the
		// vantage roster (records are decoded but never retained), then
		// the main pass restarts from the top. The default-peers node
		// cannot be identified without metadata, so all vantages are
		// treated as primary.
		names, err := scanVantages(*logPath, inFormat)
		if err != nil {
			return err
		}
		dataset.Vantages = names
		dataset.InterBlock = 13300 * time.Millisecond
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		reader = logs.NewReaderFormat(f, inFormat)
	}

	if len(dataset.Vantages) > analysis.MaxVantages {
		return fmt.Errorf("log file lists %d primary vantages; at most %d supported",
			len(dataset.Vantages), analysis.MaxVantages)
	}

	// One streaming pass: records fold into the collector, chain
	// entries rebuild the registry incrementally.
	collector := analysis.NewCollector(dataset, redundancyVantage)
	for {
		e, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch e.Kind {
		case logs.KindBlock:
			if e.Block != nil {
				collector.RecordBlock(*e.Block)
			}
		case logs.KindTx:
			if e.Tx != nil {
				collector.RecordTx(*e.Tx)
			}
		case logs.KindChain:
			if e.Chain != nil {
				if err := builder.Add(e.Chain); err != nil {
					return err
				}
			}
		case logs.KindMeta:
			// Leading meta was already consumed; ignore duplicates.
		}
	}
	dataset.Chain = builder.Registry()
	if dataset.Chain == nil {
		return fmt.Errorf("log file has no chain dump; analysis needs it")
	}
	fmt.Printf("streamed %d block records, %d tx records, %d chain blocks from %s\n",
		collector.BlockRecords(), collector.TxRecords(), dataset.Chain.Len(), *logPath)
	if protocolTag != "" {
		fmt.Printf("consensus protocol: %s\n", protocolTag)
	}
	if len(scenarioTags) > 0 {
		fmt.Printf("campaign scenarios: %s\n", strings.Join(scenarioTags, "; "))
	}
	fmt.Println()

	report.TableI(os.Stdout, measure.PaperInfrastructure())
	fmt.Println()

	prop, err := collector.Propagation()
	if err != nil {
		return err
	}
	report.Figure1(os.Stdout, prop)
	fmt.Println()

	if redundancyVantage != "" {
		red, err := collector.Redundancy(networkSize)
		if err != nil {
			return err
		}
		report.TableII(os.Stdout, red)
		fmt.Println()
	}

	report.Figure2(os.Stdout, collector.FirstObservation())
	fmt.Println()
	report.Figure3(os.Stdout, collector.PoolGeography(*topN))
	fmt.Println()

	hasTxs := collector.TxRecords() > 0
	if hasTxs {
		report.Figure4(os.Stdout, collector.Commit())
		fmt.Println()
		report.Figure5(os.Stdout, collector.Ordering())
		fmt.Println()
	}

	report.Figure6(os.Stdout, analysis.EmptyBlocks(dataset, *topN))
	fmt.Println()
	forks := analysis.Forks(dataset)
	report.TableIII(os.Stdout, forks)
	fmt.Println()
	report.OneMinerForks(os.Stdout, analysis.OneMinerForks(dataset, forks))
	fmt.Println()
	report.Figure7(os.Stdout, analysis.Sequences(dataset, 6))
	if hasTxs {
		fmt.Println()
		report.TxPropagation(os.Stdout, collector.TxPropagation())
	}
	return nil
}

// convert transcodes a campaign log between encodings. The default
// target is the opposite of the (detected) input encoding, so plain
// `-convert out` migrates a JSONL spill to binary and extracts a
// binary spill back to JSONL for external tooling.
func convert(src, dst string, inFormat, outFormat logs.Format) (err error) {
	f, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("logs: open: %w", err)
	}
	defer f.Close()
	reader := logs.NewReaderFormat(f, inFormat)

	// Sniff before creating the output so the default target can be
	// "whatever the input is not".
	first, ferr := reader.Next()
	if ferr != nil && ferr != io.EOF {
		return ferr
	}
	if outFormat == "" {
		outFormat = logs.FormatBinary
		if reader.Format() == logs.FormatBinary {
			outFormat = logs.FormatJSONL
		}
	}
	w, err := logs.CreateFileFormat(dst, outFormat)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}()
	if ferr == io.EOF {
		fmt.Printf("converted 0 entries (%s -> %s) to %s\n", reader.Format(), outFormat, dst)
		return nil
	}
	w.Write(first)
	for {
		e, rerr := reader.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return rerr
		}
		w.Write(e)
		if werr := w.Err(); werr != nil {
			return werr
		}
	}
	fmt.Printf("converted %d entries (%s -> %s) to %s\n", w.Entries(), reader.Format(), outFormat, dst)
	return nil
}

// scanVantages streams a legacy (metadata-less) log once, collecting
// the vantage names that appear in block records, sorted.
func scanVantages(path string, format logs.Format) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logs: open: %w", err)
	}
	defer f.Close()
	reader := logs.NewReaderFormat(f, format)
	seen := make(map[string]bool)
	var names []string
	for {
		e, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if e.Kind != logs.KindBlock || e.Block == nil {
			continue
		}
		if !seen[e.Block.Vantage] {
			seen[e.Block.Vantage] = true
			names = append(names, e.Block.Vantage)
		}
	}
	sort.Strings(names)
	return names, nil
}
