package main

import (
	"path/filepath"
	"testing"
	"time"

	"ethmeasure"
	"ethmeasure/internal/measure"
)

func TestRunRequiresLogs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -logs accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-logs", filepath.Join(t.TempDir(), "absent.jsonl")}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunAnalyzesCampaignFile(t *testing.T) {
	cfg := ethmeasure.QuickConfig()
	cfg.Duration = 5 * time.Minute
	cfg.NumNodes = 60
	cfg.OutDegree = 5
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > 20 {
			cfg.Vantages[i].Peers = 20
		}
	}
	cfg.TxGen.Rate = 0.3
	cfg.TxGen.NumAccounts = 50
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	if err := campaign.WriteLogs(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-logs", path}); err != nil {
		t.Fatal(err)
	}
}

func TestInferVantages(t *testing.T) {
	records := []measure.BlockRecord{
		{Vantage: "WE"}, {Vantage: "EA"}, {Vantage: "WE"}, {Vantage: "NA"},
	}
	got := inferVantages(records)
	if len(got) != 3 || got[0] != "EA" || got[1] != "NA" || got[2] != "WE" {
		t.Errorf("inferred %v", got)
	}
}
