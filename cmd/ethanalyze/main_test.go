package main

import (
	"path/filepath"
	"testing"
	"time"

	"ethmeasure"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
)

func analyzerConfig() ethmeasure.Config {
	cfg := ethmeasure.QuickConfig()
	cfg.Duration = 5 * time.Minute
	cfg.NumNodes = 60
	cfg.OutDegree = 5
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > 20 {
			cfg.Vantages[i].Peers = 20
		}
	}
	cfg.TxGen.Rate = 0.3
	cfg.TxGen.NumAccounts = 50
	return cfg
}

func TestRunRequiresLogs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -logs accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-logs", filepath.Join(t.TempDir(), "absent.jsonl")}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunAnalyzesCampaignFile(t *testing.T) {
	cfg := analyzerConfig()
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	if err := campaign.WriteLogs(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-logs", path}); err != nil {
		t.Fatal(err)
	}
}

// TestRunAnalyzesSpillFile streams a bounded-memory campaign's spill
// file — the records were never materialized, neither by the campaign
// nor by the analyzer.
func TestRunAnalyzesSpillFile(t *testing.T) {
	cfg := analyzerConfig()
	cfg.RetainRecords = false
	cfg.SpillPath = filepath.Join(t.TempDir(), "spill.jsonl")
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-logs", cfg.SpillPath}); err != nil {
		t.Fatal(err)
	}
}

// writeLegacyFile emits a metadata-less log, the pre-metadata format.
func writeLegacyFile(t *testing.T, path string) {
	t.Helper()
	campaign, err := ethmeasure.NewCampaign(analyzerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	rec := campaign.Recorder()
	if err := logs.WriteFile(path, rec.Blocks, rec.Txs, campaign.Registry()); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyzesLegacyFileWithoutMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	writeLegacyFile(t, path)
	if err := run([]string{"-logs", path}); err != nil {
		t.Fatal(err)
	}
}

func TestScanVantages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	blocks := []measure.BlockRecord{
		{Vantage: "WE", Hash: 1}, {Vantage: "EA", Hash: 1},
		{Vantage: "WE", Hash: 2}, {Vantage: "NA", Hash: 2},
	}
	if err := logs.WriteFile(path, blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := scanVantages(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "EA" || got[1] != "NA" || got[2] != "WE" {
		t.Errorf("scanned %v", got)
	}
}
