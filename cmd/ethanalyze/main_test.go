package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ethmeasure"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
)

func analyzerConfig() ethmeasure.Config {
	cfg := ethmeasure.QuickConfig()
	cfg.Duration = 5 * time.Minute
	cfg.NumNodes = 60
	cfg.OutDegree = 5
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > 20 {
			cfg.Vantages[i].Peers = 20
		}
	}
	cfg.TxGen.Rate = 0.3
	cfg.TxGen.NumAccounts = 50
	return cfg
}

func TestRunRequiresLogs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -logs accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-logs", filepath.Join(t.TempDir(), "absent.jsonl")}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunAnalyzesCampaignFile(t *testing.T) {
	cfg := analyzerConfig()
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	if err := campaign.WriteLogs(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-logs", path}); err != nil {
		t.Fatal(err)
	}
}

// TestRunAnalyzesSpillFile streams a bounded-memory campaign's spill
// file — the records were never materialized, neither by the campaign
// nor by the analyzer.
func TestRunAnalyzesSpillFile(t *testing.T) {
	cfg := analyzerConfig()
	cfg.RetainRecords = false
	cfg.SpillPath = filepath.Join(t.TempDir(), "spill.jsonl")
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-logs", cfg.SpillPath}); err != nil {
		t.Fatal(err)
	}
}

// writeLegacyFile emits a metadata-less log, the pre-metadata format.
func writeLegacyFile(t *testing.T, path string) {
	t.Helper()
	campaign, err := ethmeasure.NewCampaign(analyzerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	rec := campaign.Recorder()
	if err := logs.WriteFile(path, rec.Blocks, rec.Txs, campaign.Registry()); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyzesLegacyFileWithoutMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	writeLegacyFile(t, path)
	if err := run([]string{"-logs", path}); err != nil {
		t.Fatal(err)
	}
}

// captureRun executes run() with stdout captured, normalizing the log
// path out of the output so reports over differently named files
// compare byte-for-byte.
func captureRun(t *testing.T, args []string, paths ...string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	out, readErr := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	s := string(out)
	for _, p := range paths {
		s = strings.ReplaceAll(s, p, "LOG")
	}
	return s
}

// TestGoldenCrossFormatAnalysis is the end-to-end golden test: the
// same campaign analyzed from a binary log and from its JSONL
// transcription must print byte-identical reports (every table,
// figure and key metric), and converting back to binary must
// reproduce the original file byte-for-byte.
func TestGoldenCrossFormatAnalysis(t *testing.T) {
	cfg := analyzerConfig()
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath := filepath.Join(dir, "campaign.ethlog")
	if err := campaign.WriteLogs(binPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[0] == '{' {
		t.Fatal("WriteLogs default format is not binary")
	}

	// Transcode binary -> JSONL -> binary.
	jsonlPath := filepath.Join(dir, "campaign.jsonl")
	captureRun(t, []string{"-logs", binPath, "-convert", jsonlPath}, binPath, jsonlPath)
	jraw, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if jraw[0] != '{' {
		t.Fatal("default convert target for a binary log must be JSONL")
	}
	backPath := filepath.Join(dir, "back.ethlog")
	captureRun(t, []string{"-logs", jsonlPath, "-convert", backPath}, jsonlPath, backPath)
	braw, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, braw) {
		t.Errorf("binary -> jsonl -> binary round trip not byte-identical (%d vs %d bytes)", len(raw), len(braw))
	}

	// All three logs must analyze to byte-identical reports.
	outBin := captureRun(t, []string{"-logs", binPath}, binPath)
	outJSONL := captureRun(t, []string{"-logs", jsonlPath}, jsonlPath)
	outBack := captureRun(t, []string{"-logs", backPath}, backPath)
	if outBin != outJSONL {
		t.Errorf("binary and JSONL analyses diverge:\n--- binary ---\n%.400s\n--- jsonl ---\n%.400s", outBin, outJSONL)
	}
	if outBin != outBack {
		t.Error("round-tripped binary analysis diverges from the original")
	}

	// -format pins the decoder: the right pin works, the wrong pin is
	// an explicit error rather than garbage output.
	_ = captureRun(t, []string{"-logs", jsonlPath, "-format", "jsonl"}, jsonlPath)
	if err := run([]string{"-logs", jsonlPath, "-format", "binary"}); err == nil {
		t.Error("-format binary accepted a JSONL file")
	}
	if err := run([]string{"-logs", binPath, "-format", "bogus"}); err == nil {
		t.Error("bogus -format accepted")
	}
	if err := run([]string{"-logs", binPath, "-to", "jsonl"}); err == nil {
		t.Error("-to without -convert accepted")
	}
}

func TestScanVantages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	blocks := []measure.BlockRecord{
		{Vantage: "WE", Hash: 1}, {Vantage: "EA", Hash: 1},
		{Vantage: "WE", Hash: 2}, {Vantage: "NA", Hash: 2},
	}
	if err := logs.WriteFile(path, blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := scanVantages(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "EA" || got[1] != "NA" || got[2] != "WE" {
		t.Errorf("scanned %v", got)
	}
}
