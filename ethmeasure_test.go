package ethmeasure

import (
	"context"
	"strings"
	"testing"
	"time"
)

func smallConfig() Config {
	cfg := QuickConfig()
	cfg.Duration = 10 * time.Minute
	cfg.NumNodes = 60
	cfg.OutDegree = 5
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > 20 {
			cfg.Vantages[i].Peers = 20
		}
	}
	cfg.TxGen.Rate = 0.3
	cfg.TxGen.NumAccounts = 100
	return cfg
}

func TestPublicAPIEndToEnd(t *testing.T) {
	campaign, err := NewCampaign(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	results, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteReport(&sb, results)
	out := sb.String()
	for _, want := range []string{
		"Table I", "Figure 1", "Table II", "Figure 2", "Figure 3",
		"Figure 4", "Figure 5", "Figure 6", "Table III",
		"One-miner forks", "Figure 7", "Transaction propagation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

func TestPublicPoolPresets(t *testing.T) {
	pools := PaperPools()
	if len(pools) != 16 {
		t.Errorf("PaperPools = %d entries", len(pools))
	}
	uniform := UniformGatewayPools()
	if len(uniform) != len(pools) {
		t.Error("uniform pools must mirror the paper population")
	}
	if len(PaperInfrastructure()) != 4 {
		t.Error("PaperInfrastructure must list 4 machines")
	}
}

func TestRegionConstantsExposed(t *testing.T) {
	regions := []Region{
		NorthAmerica, EasternAsia, WesternEurope, CentralEurope,
		EasternEurope, SoutheastAsia, SouthAmerica, Oceania,
	}
	seen := make(map[Region]bool)
	for _, r := range regions {
		if seen[r] {
			t.Fatalf("duplicate region constant %v", r)
		}
		seen[r] = true
	}
}

func TestPresetsExposed(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default": DefaultConfig(),
		"quick":   QuickConfig(),
		"paper":   PaperScaleConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunSweepFacade(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 2 * time.Minute
	cfg.EnableTxWorkload = false
	m := &SweepMatrix{
		Base:  cfg,
		Seeds: SweepSeeds(1, 2),
		Axes:  []SweepAxis{SweepDiscovery(false, true)},
	}
	agg, results, err := RunSweep(context.Background(), m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || agg.Runs != 4 || agg.Failed != 0 {
		t.Fatalf("sweep = %d results, agg %+v", len(results), agg)
	}
	if len(agg.Scenarios) != 2 {
		t.Fatalf("scenarios = %d", len(agg.Scenarios))
	}
	for _, s := range agg.Scenarios {
		found := false
		for _, met := range s.Metrics {
			if met.Metric == "propagation_median_ms" && met.N == 2 && met.Mean > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("scenario %s lacks propagation summary: %+v", s.Scenario, s.Metrics)
		}
	}

	poolAxis, err := SweepPoolSplits("paper", "equal")
	if err != nil {
		t.Fatal(err)
	}
	churnAxis, err := SweepChurnProfiles("none", "default")
	if err != nil {
		t.Fatal(err)
	}
	nodeAxis := SweepNodes(60, 120)
	if len(poolAxis.Variants) != 2 || len(churnAxis.Variants) != 2 || len(nodeAxis.Variants) != 2 {
		t.Error("axis helpers returned wrong variant counts")
	}
}
