// Quickstart: run a scaled-down version of the paper's measurement
// campaign end-to-end and print every table and figure.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"ethmeasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// QuickConfig simulates ~30 virtual minutes of the Ethereum
	// mainnet: ~120 nodes, the April-2019 mining-pool population, four
	// measurement vantages (NA, EA, WE, CE) plus the default-peers
	// redundancy node.
	cfg := ethmeasure.QuickConfig()
	cfg.Seed = 42

	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulating %v of Ethereum (%d nodes, %d pools)...\n\n",
		cfg.Duration, cfg.NumNodes, len(cfg.Pools))

	results, err := campaign.Run()
	if err != nil {
		return err
	}
	st := results.Stats
	fmt.Printf("done in %v wall time: %d blocks, %d txs, %d messages\n\n",
		st.WallDuration.Round(time.Millisecond), st.BlocksCreated, st.TxsCreated, st.Messages)

	ethmeasure.WriteReport(os.Stdout, results)
	return nil
}
