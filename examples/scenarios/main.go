// Command scenarios contrasts campaign conditions through the
// pluggable scenario engine: the same network under no intervention, a
// mid-run regional partition, and a bloXroute-style relay overlay.
//
//	go run ./examples/scenarios
//
// The partition splits Asia from the rest of the world for a window —
// pool gateways on both sides keep mining, so forks climb. The relay
// overlay gives every pool gateway a fast backbone hub, which pulls
// propagation delays down.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"ethmeasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run() error {
	base := ethmeasure.QuickConfig()
	base.Duration = 40 * time.Minute
	base.EnableTxWorkload = false
	base.RetainRecords = false // streaming mode; no raw records needed

	variants := []struct {
		label string
		specs []string
	}{
		{"base", nil},
		{"partition", []string{"partition:a=EA+SEA,start=10m,dur=20m"}},
		{"relayoverlay", []string{"relayoverlay:hubs=2"}},
	}

	fmt.Printf("%-14s %12s %12s %10s %s\n", "scenario", "median ms", "p95 ms", "fork rate", "scenario metrics")
	for _, v := range variants {
		cfg := base
		cfg.Scenarios = nil
		for _, raw := range v.specs {
			spec, err := ethmeasure.ParseScenario(raw)
			if err != nil {
				return err
			}
			cfg.Scenarios = append(cfg.Scenarios, spec)
		}
		campaign, err := ethmeasure.NewCampaign(cfg)
		if err != nil {
			return err
		}
		res, err := campaign.Run()
		if err != nil {
			return err
		}
		var notes []string
		if res.Scenarios != nil {
			for _, name := range res.Scenarios.Metrics.Names() {
				notes = append(notes, fmt.Sprintf("%s=%g", name, res.Scenarios.Metrics[name]))
			}
		}
		fmt.Printf("%-14s %12.1f %12.1f %10.4f %s\n",
			v.label, res.Propagation.MedianMs, res.Propagation.P95Ms,
			1-res.Forks.MainShare, strings.Join(notes, " "))
	}
	fmt.Println("\nfull catalog: go run ./cmd/ethsim -list-scenarios")
	return nil
}
