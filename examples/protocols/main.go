// Command protocols contrasts consensus rule sets on the same
// simulated network: the identical topology, latency model and mining
// population run under Ethereum's uncle-paying rules, Bitcoin-style
// longest-chain rules, and an inclusive-GHOST variant with a deep
// reference window.
//
//	go run ./examples/protocols
//
// Forks originate in propagation latency, but the protocols both
// resolve and shape them differently: Ethereum recycles most fork
// losers as paid uncles, Bitcoin wastes every one of them (and its
// miners keep publishing race siblings only while the fork is live, so
// its fork profile differs too), and ghost-inclusive recycles even
// deeper stragglers. The waste and uncle-share lines below are the
// protocol-conditional KeyMetrics a cross-protocol ethsweep
// aggregates.
package main

import (
	"fmt"
	"os"
	"time"

	"ethmeasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "protocols:", err)
		os.Exit(1)
	}
}

func run() error {
	protocols := []string{"ethereum", "bitcoin", "ghost-inclusive:depth=10,cap=3"}

	fmt.Println("protocol comparison: one network, three consensus rule sets")
	fmt.Println()
	fmt.Printf("%-32s %10s %12s %12s %12s\n", "protocol", "fork rate", "uncle share", "wasted", "total coin")
	for _, raw := range protocols {
		spec, err := ethmeasure.ParseProtocol(raw)
		if err != nil {
			return err
		}
		cfg := ethmeasure.QuickConfig()
		cfg.Duration = 40 * time.Minute
		cfg.EnableTxWorkload = false
		cfg.RetainRecords = false // streaming mode; no raw records needed
		cfg.Protocol = spec

		campaign, err := ethmeasure.NewCampaign(cfg)
		if err != nil {
			return err
		}
		res, err := campaign.Run()
		if err != nil {
			return err
		}

		forks := res.Forks
		rewards := res.Rewards
		uncleShare := "n/a"
		if rewards.References {
			uncleShare = fmt.Sprintf("%.2f%%", 100*rewards.UncleETH/rewards.TotalETH)
		}
		fmt.Printf("%-32s %9.2f%% %12s %11.2f%% %12.1f\n",
			res.Protocol,
			100*(1-forks.MainShare),
			uncleShare,
			100*rewards.WastedShare,
			rewards.TotalETH)
	}
	fmt.Println()
	fmt.Println("sweep the axis with cross-seed confidence intervals:")
	fmt.Println("  ethsweep -preset quick -seeds 8 -protocols \"ethereum;bitcoin\"")
	return nil
}
