// Selfishmining reproduces the paper's §III-C3/§III-C5/§V study of
// selfish pool behaviours — empty blocks and one-miner forks — and
// quantifies the paper's warning: what happens to the platform if these
// behaviours spread. It runs the same campaign twice, once with the
// measured April-2019 behaviour rates and once with every pool mining
// empty blocks and sibling forks aggressively.
//
//	go run ./examples/selfishmining
package main

import (
	"fmt"
	"os"
	"time"

	"ethmeasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "selfishmining:", err)
		os.Exit(1)
	}
}

type outcome struct {
	emptyShare   float64
	oneMinerEvts int
	mainShare    float64
	median12     float64
	committed    int
}

func run() error {
	base := ethmeasure.QuickConfig()
	base.Seed = 11
	base.Duration = 90 * time.Minute

	fmt.Println("=== Campaign A: paper-measured behaviour rates ===")
	honest, err := measure(base)
	if err != nil {
		return err
	}

	greedy := base
	greedy.Pools = ethmeasure.PaperPools()
	for i := range greedy.Pools {
		// The paper's dystopia: empty blocks and uncle farming pay off
		// and every pool adopts them aggressively.
		greedy.Pools[i].EmptyRate = 0.25
		greedy.Pools[i].SiblingRate = 0.10
	}
	fmt.Println("=== Campaign B: selfish behaviours adopted network-wide ===")
	selfish, err := measure(greedy)
	if err != nil {
		return err
	}

	fmt.Println("=== Impact of generalized selfish behaviour ===")
	fmt.Printf("%-28s %12s %12s\n", "metric", "measured", "selfish")
	fmt.Printf("%-28s %11.2f%% %11.2f%%\n", "empty main blocks", honest.emptyShare*100, selfish.emptyShare*100)
	fmt.Printf("%-28s %12d %12d\n", "one-miner fork events", honest.oneMinerEvts, selfish.oneMinerEvts)
	fmt.Printf("%-28s %11.2f%% %11.2f%%\n", "blocks on main chain", honest.mainShare*100, selfish.mainShare*100)
	fmt.Printf("%-28s %11.0fs %11.0fs\n", "median 12-conf commit", honest.median12, selfish.median12)
	fmt.Println()
	fmt.Println("(paper §V: empty blocks and one-miner forks waste mining power and")
	fmt.Println(" network capacity; ~1% of the platform's resources already go to")
	fmt.Println(" mining forks, and the incentive distortion invites escalation)")
	return nil
}

func measure(cfg ethmeasure.Config) (outcome, error) {
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		return outcome{}, err
	}
	results, err := campaign.Run()
	if err != nil {
		return outcome{}, err
	}
	o := outcome{
		emptyShare:   results.Empty.EmptyShare,
		oneMinerEvts: results.OneMiner.Events,
		mainShare:    results.Forks.MainShare,
		committed:    results.Commit.CommittedTxs,
		median12:     results.Commit.Median12Sec,
	}
	fmt.Printf("blocks=%d (main %.1f%%)  empty=%.2f%%  one-miner events=%d  committed txs=%d\n\n",
		results.Forks.TotalBlocks, o.mainShare*100, o.emptyShare*100, o.oneMinerEvts, o.committed)
	return o, nil
}
