// Geoimpact reproduces the paper's §III-B study: the influence of
// geographic position and mining-pool gateway placement on block
// first-observation, and shows — by re-running the same campaign with
// geographically uniform gateways — that the Eastern-Asia advantage of
// Figure 2 is caused by gateway placement, not by the protocol.
//
//	go run ./examples/geoimpact
package main

import (
	"fmt"
	"os"
	"time"

	"ethmeasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geoimpact:", err)
		os.Exit(1)
	}
}

func run() error {
	base := ethmeasure.QuickConfig()
	base.Seed = 7
	base.Duration = time.Hour
	base.EnableTxWorkload = false // geography needs only blocks

	fmt.Println("=== Campaign A: paper gateway placement (April 2019) ===")
	paperShares, err := firstObservationShares(base)
	if err != nil {
		return err
	}

	uniform := base
	uniform.Pools = ethmeasure.UniformGatewayPools()
	fmt.Println("=== Campaign B: gateways spread uniformly across regions ===")
	uniformShares, err := firstObservationShares(uniform)
	if err != nil {
		return err
	}

	fmt.Println("=== Gateway-placement effect on first observations ===")
	fmt.Printf("%-16s %12s %12s\n", "Vantage", "paper", "uniform")
	for _, v := range []string{"NA", "EA", "WE", "CE"} {
		fmt.Printf("%-16s %11.1f%% %11.1f%%\n", v, paperShares[v]*100, uniformShares[v]*100)
	}
	fmt.Println()
	advPaper := paperShares["EA"] / paperShares["NA"]
	advUniform := uniformShares["EA"] / uniformShares["NA"]
	fmt.Printf("EA/NA advantage: %.1fx with paper gateways vs %.1fx with uniform gateways\n",
		advPaper, advUniform)
	fmt.Println("(paper §III-B: EA observes first ~40% of the time, ~4x NA, because")
	fmt.Println(" several prominent pools operate their gateways from Asia)")
	return nil
}

func firstObservationShares(cfg ethmeasure.Config) (map[string]float64, error) {
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	results, err := campaign.Run()
	if err != nil {
		return nil, err
	}
	fmt.Printf("blocks observed: %d  within-NTP ties: %.1f%%\n",
		results.FirstObs.Blocks, results.FirstObs.UncertainShare*100)
	for _, v := range results.FirstObs.Vantages {
		fmt.Printf("  %-4s first %5.1f%%\n", v, results.FirstObs.Shares[v]*100)
	}
	fmt.Println()
	return results.FirstObs.Shares, nil
}
