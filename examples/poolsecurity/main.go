// Poolsecurity reproduces the paper's §III-D security analysis: how
// long a single mining pool can keep producing consecutive main-chain
// blocks — and therefore temporarily censor transactions or threaten
// the 12-block finality rule.
//
// It runs two chain-level fast simulations:
//
//  1. a one-month sequence under the April-2019 pool distribution
//     (Figure 7: Ethermine reached 8-block runs, Sparkpool 9);
//
//  2. the whole 7.68M-block history under evolving concentration
//     (the paper found 102/41/4/1 runs of ≥10/11/12/14 blocks,
//     including Ethermine's record 14-block run).
//
//     go run ./examples/poolsecurity
package main

import (
	"fmt"
	"os"
	"sort"

	"ethmeasure"
)

const (
	interBlockSec  = 13.3
	blocksPerMonth = 201_086 // paper: main-chain blocks in the campaign
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "poolsecurity:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := monthStudy(); err != nil {
		return err
	}
	fmt.Println()
	return historyStudy()
}

func monthStudy() error {
	winners, names, err := ethmeasure.FastWinners(ethmeasure.PaperPools(), blocksPerMonth, 2019)
	if err != nil {
		return err
	}
	res := ethmeasure.AnalyzeSequences(winners, names, interBlockSec, 6)
	ethmeasure.WriteSequences(os.Stdout, res)

	fmt.Println()
	fmt.Println("Observed vs theoretical (n*p^k, the paper's §III-D estimate):")
	for _, row := range res.Rows {
		if row.MaxRun < 5 {
			continue
		}
		observed := 0
		for length, count := range row.RunCounts {
			if length >= row.MaxRun {
				observed += count
			}
		}
		expect := ethmeasure.ExpectedSequences(row.PowerShare, row.MaxRun, res.MainBlocks)
		fmt.Printf("  %-16s longest run %d: observed %d, expected %.2f\n",
			row.Pool, row.MaxRun, observed, expect)
	}
	fmt.Printf("\nlongest censorship window this month: %.0f seconds (%s)\n",
		res.CensorWindowSec, res.LongestPool)
	fmt.Println("(paper: pools regularly censor >2 minutes; 3-minute events recorded)")
	return nil
}

func historyStudy() error {
	fmt.Println("=== Whole-blockchain scan (7.68M blocks, evolving concentration) ===")
	winners, names, err := ethmeasure.HistoricalWinners(ethmeasure.DefaultHistory(), 99)
	if err != nil {
		return err
	}
	thresholds := []int{10, 11, 12, 14}
	counts := ethmeasure.HistoricalSequenceCounts(winners, thresholds)
	paper := map[int]int{10: 102, 11: 41, 12: 4, 14: 1}
	sort.Ints(thresholds)
	fmt.Printf("%-12s %10s %10s\n", "run length", "measured", "paper")
	for _, k := range thresholds {
		fmt.Printf(">= %-9d %10d %10d\n", k, counts[k], paper[k])
	}
	fmt.Println()
	if counts[12] > 0 {
		fmt.Println("sequences of 12+ blocks occurred: a single pool could rewrite a")
		fmt.Println("\"final\" 12-confirmation suffix — the paper's §III-D conclusion that")
		fmt.Println("the 12-block rule underestimates pooled mining power.")
	}
	_ = names
	return nil
}
