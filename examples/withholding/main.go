// Withholding demonstrates the §III-D forensic the paper applied to
// Sparkpool's 9-block sequences: an honest network shows sequences
// arriving at mining pace, while a pool running the selfish
// block-withholding strategy (Eyal-Sirer) releases its private chain
// "all together" and is flagged by publication-timing analysis.
//
//	go run ./examples/withholding
package main

import (
	"fmt"
	"os"
	"time"

	"ethmeasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "withholding:", err)
		os.Exit(1)
	}
}

func run() error {
	base := ethmeasure.QuickConfig()
	base.Seed = 23
	base.Duration = 90 * time.Minute
	base.EnableTxWorkload = false

	fmt.Println("=== Campaign A: all pools honest (the paper's finding) ===")
	if err := runForensic(base); err != nil {
		return err
	}

	attack := base
	attack.WithholdingPool = "Ethermine"
	attack.WithholdDepth = 3
	fmt.Println("=== Campaign B: Ethermine withholds blocks (depth 3) ===")
	return runForensic(attack)
}

func runForensic(cfg ethmeasure.Config) error {
	campaign, err := ethmeasure.NewCampaign(cfg)
	if err != nil {
		return err
	}
	results, err := campaign.Run()
	if err != nil {
		return err
	}
	fmt.Printf("blocks=%d  main-chain share=%.1f%%\n",
		results.Forks.TotalBlocks, results.Forks.MainShare*100)
	for _, row := range results.Withholding.Rows {
		fmt.Printf("  %-16s sequences=%2d  burst releases=%2d  mean intra-gap=%5.1fs\n",
			row.Pool, row.Sequences, row.BurstSequences, row.MeanIntraGapSec)
	}
	if len(results.Withholding.Suspects) == 0 {
		fmt.Println("verdict: no withholding signature (sequences arrive at mining pace)")
	} else {
		fmt.Printf("verdict: WITHHOLDING SUSPECTS %v\n", results.Withholding.Suspects)
	}
	fmt.Println()
	return nil
}
