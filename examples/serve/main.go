// Serve client: submit a quick campaign job to a running ethserve and
// follow its NDJSON stream until it finishes.
//
//	go run ./cmd/ethserve &        # in one terminal
//	go run ./examples/serve        # in another
//	go run ./examples/serve -server http://localhost:8080 -duration 30m
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

// jobSpec mirrors the POST /v1/jobs body (internal/serve.JobSpec).
type jobSpec struct {
	Kind     string `json:"kind"`
	Preset   string `json:"preset,omitempty"`
	Duration string `json:"duration,omitempty"`
	Nodes    int    `json:"nodes,omitempty"`
}

// job is the subset of the server's job snapshot this client renders.
type job struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Progress *struct {
		SimTime  time.Duration `json:"sim_time"`
		Duration time.Duration `json:"duration"`
		Blocks   int           `json:"blocks"`
	} `json:"progress,omitempty"`
	Checkpoint *struct {
		SimTimeNs int64 `json:"sim_time_ns"`
	} `json:"checkpoint,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-client:", err)
		os.Exit(1)
	}
}

func run() error {
	server := flag.String("server", "http://localhost:8080", "ethserve base URL")
	duration := flag.String("duration", "15m", "virtual campaign duration")
	nodes := flag.Int("nodes", 60, "regular node count")
	flag.Parse()

	// Submit.
	body, err := json.Marshal(jobSpec{
		Kind:     "campaign",
		Preset:   "quick",
		Duration: *duration,
		Nodes:    *nodes,
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(*server+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("submit: %s: %s", resp.Status, e.Error)
	}
	var submitted job
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		return err
	}
	fmt.Printf("submitted job %s (%s over %d nodes)\n", submitted.ID, *duration, *nodes)

	// Follow the stream: one whole job snapshot per line.
	stream, err := http.Get(*server + "/v1/jobs/" + submitted.ID + "/stream")
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: %s", stream.Status)
	}
	var last job
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			return fmt.Errorf("stream decode: %w", err)
		}
		switch {
		case last.Progress != nil && last.Progress.Duration > 0:
			pct := 100 * float64(last.Progress.SimTime) / float64(last.Progress.Duration)
			ck := ""
			if last.Checkpoint != nil {
				ck = fmt.Sprintf(" (checkpointed at %v)", time.Duration(last.Checkpoint.SimTimeNs))
			}
			fmt.Printf("  %s %5.1f%%  t=%v  %d blocks%s\n",
				last.State, pct, last.Progress.SimTime.Round(time.Second), last.Progress.Blocks, ck)
		default:
			fmt.Printf("  %s\n", last.State)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	switch last.State {
	case "done":
		fmt.Println("job done; key metrics:")
		for _, k := range []string{"propagation_median_ms", "fork_rate", "commit_median12_sec"} {
			if v, ok := last.Metrics[k]; ok {
				fmt.Printf("  %-24s %g\n", k, v)
			}
		}
		return nil
	case "failed":
		return fmt.Errorf("job failed: %s", last.Error)
	default:
		return fmt.Errorf("job ended %s", last.State)
	}
}
