// Seedsweep: rerun the paper's campaign across many seeds and two
// topology mechanisms, then report cross-seed mean ± 95% CI for the
// headline metrics — the confidence-interval methodology a one-shot
// live deployment cannot apply. Campaigns execute in parallel (one
// goroutine per campaign, GOMAXPROCS workers) and the aggregate is
// provably identical to running them one by one.
//
//	go run ./examples/seedsweep
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"ethmeasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seedsweep:", err)
		os.Exit(1)
	}
}

func run() error {
	// A scaled-down campaign so the whole fleet finishes in seconds:
	// each run simulates 10 virtual minutes over ~60 nodes.
	cfg := ethmeasure.QuickConfig()
	cfg.Duration = 10 * time.Minute
	cfg.NumNodes = 60
	cfg.OutDegree = 5
	cfg.EnableTxWorkload = false

	matrix := &ethmeasure.SweepMatrix{
		Base:  cfg,
		Seeds: ethmeasure.SweepSeeds(1, 6),
		Axes: []ethmeasure.SweepAxis{
			ethmeasure.SweepDiscovery(false, true),
		},
	}
	fmt.Printf("sweeping %d campaigns (%d scenarios x %d seeds)...\n",
		matrix.NumRuns(), matrix.NumRuns()/len(matrix.Seeds), len(matrix.Seeds))

	start := time.Now()
	agg, results, err := ethmeasure.RunSweep(context.Background(), matrix, 0)
	if err != nil {
		return err
	}

	var serial time.Duration
	for i := range results {
		serial += results[i].Wall
	}
	fmt.Printf("done: %v wall time (%v of campaign compute)\n\n",
		time.Since(start).Round(time.Millisecond), serial.Round(time.Millisecond))

	agg.WriteText(os.Stdout)
	return nil
}
