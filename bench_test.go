// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§III), plus ablations over the design choices DESIGN.md
// calls out. Each benchmark runs a full scaled-down campaign and
// reports the headline statistics of its table/figure as custom
// metrics, so `go test -bench=.` regenerates every row/series the
// paper reports. EXPERIMENTS.md records paper-vs-measured values.
//
// Absolute numbers come from a simulated substrate, so the comparison
// target is the paper's *shape*: who wins, by what factor, where the
// distributions sit.
package ethmeasure

import (
	"testing"
	"time"

	"ethmeasure/internal/core"
)

// benchBlocksConfig is the campaign for block-centric experiments
// (Figures 1-3, Tables II-III): no transaction workload, one virtual
// hour, mid-size network.
func benchBlocksConfig(seed int64) Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = time.Hour
	cfg.NumNodes = 150
	cfg.OutDegree = 7
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > 50 {
			cfg.Vantages[i].Peers = 50
		}
	}
	cfg.EnableTxWorkload = false
	return cfg
}

// benchTxConfig is the campaign for transaction-centric experiments
// (Figures 4-6): smaller network, with workload.
func benchTxConfig(seed int64) Config {
	cfg := core.QuickConfig()
	cfg.Seed = seed
	cfg.Duration = time.Hour
	cfg.NumNodes = 100
	cfg.OutDegree = 6
	return cfg
}

func runCampaign(b *testing.B, cfg Config) *Results {
	b.Helper()
	campaign, err := NewCampaign(cfg)
	if err != nil {
		b.Fatal(err)
	}
	results, err := campaign.Run()
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkTableIInfrastructure regenerates Table I (the measurement
// machine specifications) — configuration rendering only.
func BenchmarkTableIInfrastructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs := PaperInfrastructure()
		if len(specs) != 4 {
			b.Fatal("infrastructure must list 4 machines")
		}
	}
	b.ReportMetric(4, "machines")
}

// BenchmarkFigure1BlockPropagationDelay regenerates Figure 1: the
// distribution of block propagation delays across vantages.
// Paper: median 74 ms, mean 109 ms, p95 211 ms, p99 317 ms.
func BenchmarkFigure1BlockPropagationDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, benchBlocksConfig(int64(i)+1))
		p := res.Propagation
		b.ReportMetric(p.MedianMs, "ms-median")
		b.ReportMetric(p.MeanMs, "ms-mean")
		b.ReportMetric(p.P95Ms, "ms-p95")
		b.ReportMetric(p.P99Ms, "ms-p99")
		if p.MedianMs <= 0 || p.MedianMs > 1000 {
			b.Fatalf("median %f ms outside plausible range", p.MedianMs)
		}
		// Shape: propagation orders of magnitude below inter-block time.
		if p.InterBlockRatio < 20 {
			b.Fatalf("inter-block ratio %f too small", p.InterBlockRatio)
		}
	}
}

// BenchmarkTableIIRedundancy regenerates Table II: redundant block
// receptions at a default-peers (25) node.
// Paper: announcements 2.585 avg, whole blocks 7.043, combined 9.11;
// whole blocks dominate announcements.
func BenchmarkTableIIRedundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, benchBlocksConfig(int64(i)+1))
		r := res.Redundancy
		b.ReportMetric(r.Announcements.Avg, "announces-avg")
		b.ReportMetric(r.WholeBlocks.Avg, "fullblocks-avg")
		b.ReportMetric(r.Combined.Avg, "combined-avg")
		if r.WholeBlocks.Avg <= r.Announcements.Avg {
			b.Fatal("shape violated: direct pushes must dominate announcements")
		}
		if r.Combined.Avg < 4 || r.Combined.Avg > 16 {
			b.Fatalf("combined redundancy %f outside paper's regime", r.Combined.Avg)
		}
	}
}

// BenchmarkFigure2FirstObservation regenerates Figure 2: first new
// block observations per vantage.
// Paper: EA ≈ 40%, NA ≈ 4x less, WE/CE between.
func BenchmarkFigure2FirstObservation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, benchBlocksConfig(int64(i)+1))
		f := res.FirstObs
		b.ReportMetric(f.Shares["EA"]*100, "EA-first-%")
		b.ReportMetric(f.Shares["NA"]*100, "NA-first-%")
		b.ReportMetric(f.Shares["WE"]*100, "WE-first-%")
		b.ReportMetric(f.Shares["CE"]*100, "CE-first-%")
		if f.Shares["EA"] <= f.Shares["NA"] {
			b.Fatal("shape violated: EA must observe first more often than NA")
		}
	}
}

// BenchmarkFigure3PoolGeography regenerates Figure 3: per-pool
// first-observation affinity. Paper: Asian pools' blocks observed
// first in EA with strong affinity; Ethermine/Nanopool in Europe.
func BenchmarkFigure3PoolGeography(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, benchBlocksConfig(int64(i)+1))
		var sparkEA, etherEU float64
		for _, row := range res.PoolGeo.Rows {
			switch row.Pool {
			case "Sparkpool":
				sparkEA = row.Shares["EA"]
			case "Ethermine":
				etherEU = row.Shares["WE"] + row.Shares["CE"]
			}
		}
		b.ReportMetric(sparkEA*100, "Sparkpool-EA-%")
		b.ReportMetric(etherEU*100, "Ethermine-EU-%")
		if sparkEA < 0.4 {
			b.Fatalf("Sparkpool EA affinity %.2f too weak", sparkEA)
		}
		if etherEU < 0.3 {
			b.Fatalf("Ethermine EU affinity %.2f too weak", etherEU)
		}
	}
}

// BenchmarkFigure4CommitTime regenerates Figure 4: transaction
// inclusion and k-confirmation commit CDFs.
// Paper: median 12-confirmation commit 189 s.
func BenchmarkFigure4CommitTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, benchTxConfig(int64(i)+1))
		c := res.Commit
		b.ReportMetric(c.InclusionSec.MustQuantile(0.5), "s-inclusion-p50")
		b.ReportMetric(c.ConfirmSec[3].MustQuantile(0.5), "s-3conf-p50")
		b.ReportMetric(c.Median12Sec, "s-12conf-p50")
		b.ReportMetric(c.ConfirmSec[36].MustQuantile(0.5), "s-36conf-p50")
		// Shape: ~12 inter-block times plus inclusion ≈ 160-260 s.
		if c.Median12Sec < 150 || c.Median12Sec > 280 {
			b.Fatalf("12-conf median %f s outside paper regime (189 s)", c.Median12Sec)
		}
	}
}

// BenchmarkFigure5TransactionOrdering regenerates Figure 5: commit
// delay split by nonce-order of reception.
// Paper: 11.54% out-of-order; OOO commits slower (192/325 vs 189/292 s).
func BenchmarkFigure5TransactionOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, benchTxConfig(int64(i)+1))
		o := res.Ordering
		b.ReportMetric(o.OutOfOrderShare*100, "out-of-order-%")
		b.ReportMetric(o.InOrderP50, "s-inorder-p50")
		b.ReportMetric(o.OutOfOrderP50, "s-ooo-p50")
		if o.OutOfOrderShare < 0.03 || o.OutOfOrderShare > 0.30 {
			b.Fatalf("out-of-order share %.2f%% outside paper regime (11.54%%)", o.OutOfOrderShare*100)
		}
	}
}

// BenchmarkFigure6EmptyBlocks regenerates Figure 6: empty blocks per
// mining pool. Paper: 1.45% of main blocks empty, concentrated in
// specific pools (Zhizhu > 25%).
func BenchmarkFigure6EmptyBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchTxConfig(int64(i) + 1)
		cfg.Duration = 2 * time.Hour // more blocks for a rate statistic
		res := runCampaign(b, cfg)
		e := res.Empty
		b.ReportMetric(e.EmptyShare*100, "empty-%")
		b.ReportMetric(float64(e.EmptyBlocks), "empty-blocks")
		if e.EmptyShare > 0.08 {
			b.Fatalf("empty share %.2f%% far above paper's 1.45%%", e.EmptyShare*100)
		}
	}
}

// BenchmarkTableIIIForks regenerates Table III: fork lengths and
// recognition. Paper: 92.81% main / 6.97% recognized uncles / 0.22%
// unrecognized; length-1 forks dominate and are almost always
// recognized; no fork ≥ 2 ever recognized.
func BenchmarkTableIIIForks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchBlocksConfig(int64(i) + 1)
		cfg.Duration = 3 * time.Hour // fork statistics need volume
		res := runCampaign(b, cfg)
		f := res.Forks
		b.ReportMetric(f.MainShare*100, "main-%")
		b.ReportMetric(f.RecognizedShare*100, "recognized-%")
		b.ReportMetric(float64(f.TotalForks), "forks")
		if f.MainShare < 0.85 || f.MainShare > 0.99 {
			b.Fatalf("main share %.3f outside paper regime (0.9281)", f.MainShare)
		}
		for _, row := range f.Rows {
			if row.Length >= 2 && row.Recognized > 0 {
				b.Fatal("shape violated: forks of length ≥ 2 must never be recognized")
			}
		}
	}
}

// BenchmarkOneMinerForks regenerates §III-C5: single miners producing
// several blocks at one height. Paper: 1,750 pairs + 25 triples per
// month (~0.9% of blocks), rewarded as uncles in 98% of cases, 56%
// with identical transaction sets.
func BenchmarkOneMinerForks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchBlocksConfig(int64(i) + 1)
		cfg.Duration = 4 * time.Hour
		res := runCampaign(b, cfg)
		om := res.OneMiner
		b.ReportMetric(float64(om.Events), "events")
		b.ReportMetric(om.RecognizedShare*100, "recognized-%")
		b.ReportMetric(om.SameTxShare*100, "same-txset-%")
		if om.Events == 0 {
			b.Fatal("no one-miner forks observed over 4 virtual hours")
		}
	}
}

// BenchmarkFigure7MinerSequences regenerates Figure 7 and the §III-D
// security analysis via the chain-level fast simulator at full paper
// scale (201,086 main blocks) plus the 7.68M-block history scan.
// Paper: 8-block Ethermine runs ≈4x/month (matching n·p^k), Sparkpool
// 9-block runs, historical 102/41/4/1 runs of ≥10/11/12/14.
func BenchmarkFigure7MinerSequences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		winners, names, err := FastWinners(PaperPools(), 201_086, int64(i)+2019)
		if err != nil {
			b.Fatal(err)
		}
		res := AnalyzeSequences(winners, names, 13.3, 6)
		b.ReportMetric(float64(res.LongestRun), "longest-run")
		b.ReportMetric(res.CensorWindowSec, "censor-window-s")
		if res.LongestRun < 7 || res.LongestRun > 13 {
			b.Fatalf("longest run %d outside paper regime (8-9)", res.LongestRun)
		}

		hist, _, err := HistoricalWinners(DefaultHistory(), int64(i)+99)
		if err != nil {
			b.Fatal(err)
		}
		counts := HistoricalSequenceCounts(hist, []int{10, 11, 12, 14})
		b.ReportMetric(float64(counts[10]), "hist-runs-ge10")
		b.ReportMetric(float64(counts[12]), "hist-runs-ge12")
		b.ReportMetric(float64(counts[14]), "hist-runs-ge14")
		if counts[10] < 20 || counts[10] > 400 {
			b.Fatalf("historical ≥10 runs = %d, outside paper's order of magnitude (102)", counts[10])
		}
	}
}

// BenchmarkTransactionPropagation regenerates §III-A1: transaction
// first observations show no meaningful geographic skew, unlike blocks.
func BenchmarkTransactionPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, benchTxConfig(int64(i)+1))
		tp := res.TxProp
		b.ReportMetric(tp.FirstShareSpread*100, "tx-share-spread-%")
		b.ReportMetric(res.FirstObs.Shares["EA"]*100-res.FirstObs.Shares["NA"]*100, "block-EA-NA-gap-%")
		// Shape: tx spread far below the block-observation spread.
		blockSpread := res.FirstObs.Shares["EA"] - res.FirstObs.Shares["NA"]
		if tp.FirstShareSpread > blockSpread {
			b.Fatal("shape violated: tx geography skew should be below block skew")
		}
	}
}

// --- Ablations (design decisions called out in DESIGN.md §4) ---

// BenchmarkAblationAnnounceOnly disables Geth's sqrt direct push,
// leaving pure announce-and-fetch gossip: propagation slows by roughly
// the fetcher's arrive-timeout and whole-block receptions vanish —
// showing the push-before-import design is what makes Table II's
// full-block column dominate.
func BenchmarkAblationAnnounceOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchBlocksConfig(int64(i) + 1)
		cfg.Duration = 30 * time.Minute
		cfg.P2P.SqrtPush = false
		res := runCampaign(b, cfg)
		b.ReportMetric(res.Propagation.MedianMs, "ms-median")
		b.ReportMetric(res.Redundancy.WholeBlocks.Avg, "fullblocks-avg")
		b.ReportMetric(res.Redundancy.Announcements.Avg, "announces-avg")
		if res.Redundancy.WholeBlocks.Avg > res.Redundancy.Announcements.Avg {
			b.Fatal("announce-only gossip cannot have push-dominated redundancy")
		}
	}
}

// BenchmarkAblationUniformGateways spreads every pool's gateways
// across all regions: the Eastern-Asia first-observation advantage of
// Figure 2 collapses, demonstrating it is caused by gateway geography.
func BenchmarkAblationUniformGateways(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchBlocksConfig(int64(i) + 1)
		cfg.Duration = 30 * time.Minute
		cfg.Pools = UniformGatewayPools()
		res := runCampaign(b, cfg)
		ea, na := res.FirstObs.Shares["EA"], res.FirstObs.Shares["NA"]
		b.ReportMetric(ea*100, "EA-first-%")
		b.ReportMetric(na*100, "NA-first-%")
		if na > 0 && ea/na > 2.5 {
			b.Fatalf("EA/NA advantage %.1fx survived uniform gateways", ea/na)
		}
	}
}

// BenchmarkAblationValidationDelay sweeps the block import cost: the
// fork rate (Table III) tracks the effective propagation+validation
// delay, the mechanism §III-C4 attributes fork-rate growth to.
func BenchmarkAblationValidationDelay(b *testing.B) {
	for _, importBase := range []time.Duration{100 * time.Millisecond, 450 * time.Millisecond, 1200 * time.Millisecond} {
		importBase := importBase
		b.Run(importBase.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchBlocksConfig(int64(i) + 1)
				cfg.Duration = 90 * time.Minute
				cfg.P2P.ImportBase = importBase
				res := runCampaign(b, cfg)
				b.ReportMetric((1-res.Forks.MainShare)*100, "fork-blocks-%")
			}
		})
	}
}

// BenchmarkAblationChurn enables node churn over the regular
// population: the relay protocol's redundancy (sqrt push + announce +
// fetch) keeps propagation delays close to the churn-free baseline,
// which is why the paper could measure a stable network despite the
// high peer turnover real deployments see.
func BenchmarkAblationChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchBlocksConfig(int64(i) + 1)
		cfg.Duration = 30 * time.Minute
		cfg.Churn = core.DefaultChurnConfig()
		cfg.Churn.Interval = 20 * time.Second // ~25% of nodes cycling/hour
		res := runCampaign(b, cfg)
		b.ReportMetric(res.Propagation.MedianMs, "ms-median")
		b.ReportMetric(res.Propagation.P99Ms, "ms-p99")
		b.ReportMetric((1-res.Forks.MainShare)*100, "fork-blocks-%")
		if res.Propagation.MedianMs > 500 {
			b.Fatalf("churn degraded median propagation to %.0fms", res.Propagation.MedianMs)
		}
	}
}

// BenchmarkExtensionFinality sweeps the k-block rule against the
// paper's pool distribution at month scale: single-pool windows exist
// at k=8-9 (the paper's observed runs) while the theoretical i.i.d.
// expectation says k=12 "should" be safe — the §III-D tension.
func BenchmarkExtensionFinality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		winners, names, err := FastWinners(PaperPools(), 201_086, int64(i)+7)
		if err != nil {
			b.Fatal(err)
		}
		res := AnalyzeFinality(winners, names, 14)
		b.ReportMetric(float64(res.TwelveBlockViolations), "12-block-violations")
		var at8, at9 int
		for _, row := range res.Rows {
			switch row.Depth {
			case 8:
				at8 = row.SinglePoolWindows
			case 9:
				at9 = row.SinglePoolWindows
			}
		}
		// Paper: Ethermine produced four 8-block runs in the month
		// (matching n·p^k ≈ 4); 9-block runs are borderline events.
		b.ReportMetric(float64(at8), "8-block-windows")
		b.ReportMetric(float64(at9), "9-block-windows")
		if at8 == 0 {
			b.Log("note: no 8-block single-pool window this seed (expectation ≈4-5)")
		}
	}
}

// BenchmarkExtensionWithholding runs the selfish block-withholding
// attack (Eyal-Sirer) on the largest pool and confirms the forensic
// the paper applied to Sparkpool's 9-block runs (§III-D): an actual
// attacker releases sequences "all together" and gets flagged, and its
// revenue share can exceed its power share.
func BenchmarkExtensionWithholding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchBlocksConfig(int64(i) + 1)
		cfg.Duration = 2 * time.Hour
		cfg.WithholdingPool = "Ethermine"
		cfg.WithholdDepth = 3
		res := runCampaign(b, cfg)
		var burst, seq int
		for _, row := range res.Withholding.Rows {
			if row.Pool == "Ethermine" {
				burst, seq = row.BurstSequences, row.Sequences
			}
		}
		b.ReportMetric(float64(seq), "attacker-sequences")
		b.ReportMetric(float64(burst), "burst-releases")
		b.ReportMetric((1-res.Forks.MainShare)*100, "fork-blocks-%")
		if burst == 0 {
			b.Fatal("withholding attack left no burst signature")
		}
	}
}

// BenchmarkAblationHeadSwitch sweeps the pools' internal job-switch
// latency, the other half of the effective delay that sets the fork
// rate.
func BenchmarkAblationHeadSwitch(b *testing.B) {
	for _, headSwitch := range []time.Duration{100 * time.Millisecond, 600 * time.Millisecond, 2 * time.Second} {
		headSwitch := headSwitch
		b.Run(headSwitch.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchBlocksConfig(int64(i) + 1)
				cfg.Duration = 90 * time.Minute
				cfg.Mining.HeadSwitchMean = headSwitch
				res := runCampaign(b, cfg)
				b.ReportMetric((1-res.Forks.MainShare)*100, "fork-blocks-%")
			}
		})
	}
}
