// Package stats provides the statistical primitives the analysis
// pipeline needs: streaming summaries, quantiles, histograms and
// empirical CDFs. It replaces the pandas/NumPy post-processing the
// paper used (§II) with pure-Go equivalents.
package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested from an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds streaming moments computed with Welford's algorithm,
// plus min/max. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge combines another summary into s (parallel Welford merge).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the two-sided 95% confidence interval
// of the mean, using the Student-t critical value for n-1 degrees of
// freedom. Cross-seed campaign sweeps report their aggregates as
// mean ± CI95. Zero for fewer than two observations.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return TCritical95(s.n-1) * s.StdErr()
}

// tTable95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom: exact table values up to df=30, then
// the conventional anchors at 40/60/120. Between anchors the value
// for the next-LOWER tabulated df applies (standard table practice):
// critical values shrink as df grows, so rounding df down keeps the
// reported intervals conservative rather than narrower than nominal.
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return math.NaN()
	case df <= len(tTable95):
		return tTable95[df-1]
	case df < 40:
		return tTable95[len(tTable95)-1] // 2.042 (df=30)
	case df < 60:
		return 2.021 // df=40
	case df < 120:
		return 2.000 // df=60
	default:
		return 1.980 // df=120; within 1% of the normal limit 1.960
	}
}

// Sample is an accumulating collection of float64 observations that
// supports exact quantiles. It keeps all points; use it for the sample
// sizes this project deals with (≤ tens of millions).
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// FromSlice wraps a copy of xs in a Sample.
func FromSlice(xs []float64) *Sample {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	return &Sample{xs: cp}
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations in insertion order when the
// sample has never been sorted, otherwise in ascending order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// MarshalJSON emits the observations as a plain array, in their
// current order (insertion order until the first quantile query sorts
// the sample). Two samples built by identical pipelines therefore
// marshal identically bit for bit — the property the streaming-vs-
// batch equivalence suite asserts.
func (s *Sample) MarshalJSON() ([]byte, error) { return json.Marshal(s.xs) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear
// interpolation between closest ranks (the same method as NumPy's
// default "linear" interpolation).
func (s *Sample) Quantile(q float64) (float64, error) {
	if len(s.xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %f out of range [0,1]", q)
	}
	s.ensureSorted()
	if len(s.xs) == 1 {
		return s.xs[0], nil
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo], nil
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac, nil
}

// MustQuantile is Quantile but returns 0 on an empty sample. Convenient
// in report rendering where an empty series prints as zeros.
func (s *Sample) MustQuantile(q float64) float64 {
	v, err := s.Quantile(q)
	if err != nil {
		return 0
	}
	return v
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() (float64, error) { return s.Quantile(0.5) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() (float64, error) {
	if len(s.xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs)), nil
}

// Min returns the smallest observation.
func (s *Sample) Min() (float64, error) {
	if len(s.xs) == 0 {
		return 0, ErrEmpty
	}
	s.ensureSorted()
	return s.xs[0], nil
}

// Max returns the largest observation.
func (s *Sample) Max() (float64, error) {
	if len(s.xs) == 0 {
		return 0, ErrEmpty
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1], nil
}

// CountAtMost returns how many observations are ≤ x.
func (s *Sample) CountAtMost(x float64) int {
	s.ensureSorted()
	return sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
}

// FractionAtMost returns the empirical CDF evaluated at x.
func (s *Sample) FractionAtMost(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return float64(s.CountAtMost(x)) / float64(len(s.xs))
}

// Histogram is a fixed-width bucketed histogram over [Lo, Hi). Values
// outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []int
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram creates a histogram over [lo, hi) with n buckets.
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket, got %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%f,%f) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.Underflow++
		return
	}
	if x >= h.Hi {
		h.Overflow++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i >= len(h.Buckets) { // guard against float rounding at the edge
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + float64(i)*width, h.Lo + float64(i+1)*width
}

// Density returns the fraction of all observations in bucket i (the PDF
// value the paper plots in Figure 1).
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}

// CDF is an empirical cumulative distribution function built from a
// sample, queryable at arbitrary points and exportable as plot series.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from a copy of xs.
func NewCDF(xs []float64) *CDF {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return &CDF{sorted: cp}
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// InverseAt returns the smallest x with P(X ≤ x) ≥ p.
func (c *CDF) InverseAt(p float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	if p <= 0 {
		return c.sorted[0], nil
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1], nil
	}
	idx := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx], nil
}

// N returns the number of points backing the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// Series samples the CDF at n evenly spaced x positions across the data
// range, returning (xs, ps) suitable for text plotting.
func (c *CDF) Series(n int) ([]float64, []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	xs := make([]float64, n)
	ps := make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		ps[i] = c.At(x)
	}
	return xs, ps
}
