package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %f, want 5", s.Mean())
	}
	// Known population variance 4 → sample variance 32/7.
	if got, want := s.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %f, want %f", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %f/%f", s.Min(), s.Max())
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("stddev = %f", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestSummaryMergeMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var bulk, a, b Summary
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		bulk.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != bulk.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), bulk.N())
	}
	if math.Abs(a.Mean()-bulk.Mean()) > 1e-9 {
		t.Errorf("merged mean %f vs bulk %f", a.Mean(), bulk.Mean())
	}
	if math.Abs(a.Variance()-bulk.Variance()) > 1e-9 {
		t.Errorf("merged variance %f vs bulk %f", a.Variance(), bulk.Variance())
	}
	if a.Min() != bulk.Min() || a.Max() != bulk.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Merge(&b) // both empty: no-op
	if a.N() != 0 {
		t.Fatal("merging empties changed N")
	}
	b.Add(3)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := FromSlice([]float64{10, 20, 30, 40})
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{1, 40},
		{0.5, 25}, // linear interpolation between 20 and 30
		{0.25, 17.5},
		{1.0 / 3.0, 20},
	}
	for _, tt := range tests {
		got, err := s.Quantile(tt.q)
		if err != nil {
			t.Fatalf("Quantile(%f): %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%f) = %f, want %f", tt.q, got, tt.want)
		}
	}
}

func TestSampleQuantileErrors(t *testing.T) {
	s := NewSample(0)
	if _, err := s.Quantile(0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty quantile err = %v, want ErrEmpty", err)
	}
	s.Add(1)
	if _, err := s.Quantile(-0.1); err == nil {
		t.Error("q<0 must error")
	}
	if _, err := s.Quantile(1.1); err == nil {
		t.Error("q>1 must error")
	}
	if got := s.MustQuantile(0.5); got != 1 {
		t.Errorf("MustQuantile = %f", got)
	}
	if got := NewSample(0).MustQuantile(0.5); got != 0 {
		t.Errorf("MustQuantile on empty = %f, want 0", got)
	}
}

func TestSampleSingleValue(t *testing.T) {
	s := FromSlice([]float64{7})
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if got, _ := s.Quantile(q); got != 7 {
			t.Errorf("Quantile(%f) = %f", q, got)
		}
	}
}

func TestSampleMinMaxMeanMedian(t *testing.T) {
	s := FromSlice([]float64{5, 1, 9, 3})
	if got, _ := s.Min(); got != 1 {
		t.Errorf("min %f", got)
	}
	if got, _ := s.Max(); got != 9 {
		t.Errorf("max %f", got)
	}
	if got, _ := s.Mean(); got != 4.5 {
		t.Errorf("mean %f", got)
	}
	if got, _ := s.Median(); got != 4 {
		t.Errorf("median %f", got)
	}
	var empty Sample
	for _, fn := range []func() (float64, error){empty.Min, empty.Max, empty.Mean, empty.Median} {
		if _, err := fn(); !errors.Is(err, ErrEmpty) {
			t.Error("empty sample stats must return ErrEmpty")
		}
	}
}

func TestSampleCounts(t *testing.T) {
	s := FromSlice([]float64{1, 2, 2, 3, 10})
	if got := s.CountAtMost(2); got != 3 {
		t.Errorf("CountAtMost(2) = %d, want 3", got)
	}
	if got := s.CountAtMost(0.5); got != 0 {
		t.Errorf("CountAtMost(0.5) = %d", got)
	}
	if got := s.FractionAtMost(3); got != 0.8 {
		t.Errorf("FractionAtMost(3) = %f", got)
	}
	var empty Sample
	if got := empty.FractionAtMost(1); got != 0 {
		t.Errorf("empty FractionAtMost = %f", got)
	}
}

func TestSampleValuesIsCopy(t *testing.T) {
	s := FromSlice([]float64{1, 2, 3})
	v := s.Values()
	v[0] = 99
	if got, _ := s.Min(); got != 1 {
		t.Error("Values() must not alias internal storage")
	}
}

func TestHistogramPlacement(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)   // underflow
	h.Add(0)    // bucket 0
	h.Add(9.99) // bucket 0
	h.Add(10)   // bucket 1
	h.Add(99.9) // bucket 9
	h.Add(100)  // overflow
	h.Add(250)  // overflow
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/overflow = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[9] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	lo, hi := h.BucketBounds(3)
	if lo != 30 || hi != 40 {
		t.Errorf("BucketBounds(3) = %f,%f", lo, hi)
	}
}

func TestHistogramDensitySumsToOne(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64() * 10)
	}
	sum := 0.0
	for i := range h.Buckets {
		sum += h.Density(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("densities sum to %f", sum)
	}
}

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets must error")
	}
	if _, err := NewHistogram(10, 10, 4); err == nil {
		t.Error("empty range must error")
	}
	if _, err := NewHistogram(10, 5, 4); err == nil {
		t.Error("inverted range must error")
	}
}

func TestHistogramEmptyDensity(t *testing.T) {
	h, _ := NewHistogram(0, 10, 2)
	if h.Density(0) != 0 {
		t.Error("empty histogram density should be 0")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Errorf("At(%f) = %f, want %f", tt.x, got, tt.want)
		}
	}
	if NewCDF(nil).At(1) != 0 {
		t.Error("empty CDF At should be 0")
	}
}

func TestCDFInverse(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.75, 30}, {1, 40},
	}
	for _, tt := range tests {
		got, err := c.InverseAt(tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("InverseAt(%f) = %f, want %f", tt.p, got, tt.want)
		}
	}
	if _, err := NewCDF(nil).InverseAt(0.5); !errors.Is(err, ErrEmpty) {
		t.Error("empty inverse must return ErrEmpty")
	}
}

func TestCDFSeries(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	xs, ps := c.Series(11)
	if len(xs) != 11 || len(ps) != 11 {
		t.Fatalf("series lengths %d/%d", len(xs), len(ps))
	}
	if xs[0] != 0 || xs[10] != 10 {
		t.Errorf("x range [%f, %f]", xs[0], xs[10])
	}
	if ps[10] != 1 {
		t.Errorf("final p = %f", ps[10])
	}
	if xs2, _ := NewCDF(nil).Series(5); xs2 != nil {
		t.Error("empty CDF series should be nil")
	}
}

// Property: quantiles are monotonic in q and bracketed by min/max.
func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		s := FromSlice(raw)
		v1, err1 := s.Quantile(q1)
		v2, err2 := s.Quantile(q2)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, _ := s.Min()
		hi, _ := s.Max()
		return v1 <= v2 && v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the empirical CDF is nondecreasing and within [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		c := NewCDF(raw)
		sort.Float64s(probes)
		prev := 0.0
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summary.Merge is order-insensitive for mean and N.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			var out []float64
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var s1, s2, t1, t2 Summary
		for _, x := range a {
			s1.Add(x)
			t2.Add(x)
		}
		for _, x := range b {
			s2.Add(x)
			t1.Add(x)
		}
		s1.Merge(&s2) // a then b
		t1.Merge(&t2) // b then a
		if s1.N() != t1.N() {
			return false
		}
		if s1.N() == 0 {
			return true
		}
		return math.Abs(s1.Mean()-t1.Mean()) < 1e-6*(1+math.Abs(s1.Mean()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {7, 2.365}, {30, 2.042},
		// Between anchors the next-lower tabulated df applies, so the
		// interval never under-covers.
		{35, 2.042}, {40, 2.021}, {50, 2.021}, {60, 2.000},
		{100, 2.000}, {120, 1.980}, {1000, 1.980},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("TCritical95(0) must be NaN")
	}
	// Critical values must decrease monotonically toward the normal
	// limit as degrees of freedom grow.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := TCritical95(df)
		if v > prev {
			t.Fatalf("TCritical95 not monotone at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if prev < 1.980 {
		t.Errorf("limit %v below the df=120 anchor", prev)
	}
}

func TestSummaryCI95(t *testing.T) {
	var s Summary
	if s.CI95() != 0 {
		t.Error("empty summary must have zero CI")
	}
	s.Add(10)
	if s.CI95() != 0 {
		t.Error("single observation must have zero CI")
	}
	for _, x := range []float64{12, 14, 16} {
		s.Add(x)
	}
	// {10,12,14,16}: sd = sqrt(20/3), se = sd/2, t(3) = 3.182.
	sd := math.Sqrt(20.0 / 3.0)
	if got := s.StdErr(); math.Abs(got-sd/2) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", got, sd/2)
	}
	want := 3.182 * sd / 2
	if got := s.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}
