package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkSampleQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewSample(100_000)
	for i := 0; i < 100_000; i++ {
		s.Add(rng.Float64() * 1000)
	}
	s.MustQuantile(0.5) // force the sort outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.MustQuantile(0.99)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h, err := NewHistogram(0, 500, 50)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 600))
	}
}

func BenchmarkCDFAt(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	c := NewCDF(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.At(float64(i%7) - 3)
	}
}
