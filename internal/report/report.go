// Package report renders analysis results as text tables and plots —
// the same rows and series the paper's tables and figures present, in
// terminal-friendly form.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/stats"
)

const barWidth = 40

// Table renders rows with aligned columns and a header rule.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	total := len(headers) - 1
	for _, width := range widths {
		total += width + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range rows {
		line(row)
	}
}

// bar renders a proportional bar for a fraction in [0,1].
func bar(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*barWidth + 0.5)
	return strings.Repeat("#", n)
}

// TableI renders the measurement infrastructure specification.
func TableI(w io.Writer, specs []measure.MachineSpec) {
	fmt.Fprintln(w, "Table I: Specifications of the measurement infrastructure")
	rows := make([][]string, 0, len(specs))
	for _, s := range specs {
		rows = append(rows, []string{
			s.Location, s.CPU,
			fmt.Sprintf("%d", s.RAMGB),
			fmt.Sprintf("%d", s.BandwidthGbps),
		})
	}
	Table(w, []string{"Location", "CPU", "RAM(GB)", "Bandwidth(Gbps)"}, rows)
}

// Figure1 renders the block propagation delay analysis.
func Figure1(w io.Writer, r *analysis.PropagationResult) {
	fmt.Fprintln(w, "Figure 1: Histogram of times since the first block announcement")
	fmt.Fprintf(w, "blocks=%d  samples=%d\n", r.Blocks, r.DelaysMs.N())
	fmt.Fprintf(w, "median=%.0fms  mean=%.0fms  p95=%.0fms  p99=%.0fms  (paper: 74/109/211/317)\n",
		r.MedianMs, r.MeanMs, r.P95Ms, r.P99Ms)
	fmt.Fprintf(w, "inter-block time is %.0fx the mean propagation delay\n", r.InterBlockRatio)
	h := r.Histogram
	maxDensity := 0.0
	for i := range h.Buckets {
		if d := h.Density(i); d > maxDensity {
			maxDensity = d
		}
	}
	if maxDensity == 0 {
		return
	}
	for i := range h.Buckets {
		lo, hi := h.BucketBounds(i)
		d := h.Density(i)
		if d == 0 && lo > 350 {
			continue
		}
		fmt.Fprintf(w, "%4.0f-%4.0fms %5.1f%% %s\n", lo, hi, d*100, bar(d/maxDensity))
	}
	if h.Overflow > 0 {
		fmt.Fprintf(w, "   >%4.0fms %5.1f%%\n", h.Hi, float64(h.Overflow)/float64(h.Total())*100)
	}
}

// TableII renders the block-reception redundancy analysis.
func TableII(w io.Writer, r *analysis.RedundancyResult) {
	fmt.Fprintln(w, "Table II: Redundant block receptions (default-peer node)")
	fmt.Fprintf(w, "vantage=%s  blocks=%d  gossip-optimal ln(n)=%.2f\n", r.Vantage, r.Blocks, r.OptimalLn)
	rows := [][]string{}
	for _, row := range []analysis.RedundancyRow{r.Announcements, r.WholeBlocks, r.Combined} {
		rows = append(rows, []string{
			row.MessageType,
			fmt.Sprintf("%.3f", row.Avg),
			fmt.Sprintf("%.0f", row.Median),
			fmt.Sprintf("%.0f", row.Top10),
			fmt.Sprintf("%.0f", row.Top1),
		})
	}
	Table(w, []string{"Message Type", "Avg.", "Med.", "Top 10%", "Top 1%"}, rows)
	fmt.Fprintln(w, "(paper: announcements 2.585/2/5/7, whole blocks 7.043/7/10/12, combined 9.11/9/12/15)")
}

// Figure2 renders first-observation shares per vantage.
func Figure2(w io.Writer, r *analysis.FirstObservationResult) {
	fmt.Fprintln(w, "Figure 2: First new block observations per vantage")
	fmt.Fprintf(w, "blocks=%d  within-NTP-error ties=%.1f%%\n", r.Blocks, r.UncertainShare*100)
	for _, v := range r.Vantages {
		share := r.Shares[v]
		fmt.Fprintf(w, "%-16s %5.1f%% %s\n", v, share*100, bar(share))
	}
	fmt.Fprintln(w, "(paper: Eastern Asia ~40%, North America ~4x less)")
}

// Figure3 renders per-pool first-observation shares per vantage.
func Figure3(w io.Writer, r *analysis.PoolGeographyResult) {
	fmt.Fprintln(w, "Figure 3: First new block observation by origin mining pool")
	headers := append([]string{"Pool (power)"}, r.Vantages...)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%s (%.2f%%)", row.Pool, row.PowerShare*100)}
		for _, v := range r.Vantages {
			cells = append(cells, fmt.Sprintf("%5.1f%%", row.Shares[v]*100))
		}
		rows = append(rows, cells)
	}
	Table(w, headers, rows)
}

// Figure4 renders transaction inclusion and confirmation CDFs.
func Figure4(w io.Writer, r *analysis.CommitTimeResult) {
	fmt.Fprintln(w, "Figure 4: Transaction inclusion and commit times (seconds)")
	fmt.Fprintf(w, "committed txs=%d  median 12-conf=%.0fs (paper: 189s)\n", r.CommittedTxs, r.Median12Sec)
	headers := []string{"Percentile", "inclusion"}
	levels := append([]int(nil), analysis.ConfirmationLevels...)
	sort.Ints(levels)
	for _, k := range levels {
		headers = append(headers, fmt.Sprintf("%d conf", k))
	}
	var rows [][]string
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		cells := []string{fmt.Sprintf("p%.0f", q*100)}
		cells = append(cells, fmt.Sprintf("%.0f", r.InclusionSec.MustQuantile(q)))
		for _, k := range levels {
			cells = append(cells, fmt.Sprintf("%.0f", r.ConfirmSec[k].MustQuantile(q)))
		}
		rows = append(rows, cells)
	}
	Table(w, headers, rows)
}

// Figure5 renders commit delay split by reception order.
func Figure5(w io.Writer, r *analysis.OrderingResult) {
	fmt.Fprintln(w, "Figure 5: Commit delay by transaction reception order (seconds)")
	fmt.Fprintf(w, "committed=%d  out-of-order=%d (%.2f%%, paper: 11.54%%)\n",
		r.CommittedTxs, r.OutOfOrderTxs, r.OutOfOrderShare*100)
	rows := [][]string{
		{"in-order", fmt.Sprintf("%.0f", r.InOrderP50), fmt.Sprintf("%.0f", r.InOrderP90)},
		{"out-of-order", fmt.Sprintf("%.0f", r.OutOfOrderP50), fmt.Sprintf("%.0f", r.OutOfOrderP90)},
	}
	Table(w, []string{"Ordering", "p50", "p90"}, rows)
	fmt.Fprintln(w, "(paper: in-order 189/292s, out-of-order <192/<325s)")
}

// Figure6 renders empty blocks per pool.
func Figure6(w io.Writer, r *analysis.EmptyBlocksResult) {
	fmt.Fprintln(w, "Figure 6: Empty blocks per mining pool")
	fmt.Fprintf(w, "main blocks=%d  empty=%d (%.2f%%, paper: 1.45%%)\n",
		r.MainBlocks, r.EmptyBlocks, r.EmptyShare*100)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Pool,
			fmt.Sprintf("%d", row.EmptyBlocks),
			fmt.Sprintf("%d", row.TotalBlocks),
			fmt.Sprintf("%.2f%%", row.EmptyRate*100),
		})
	}
	Table(w, []string{"Pool", "Empty", "Total", "Empty rate"}, rows)
}

// TableIII renders fork classification.
func TableIII(w io.Writer, r *analysis.ForksResult) {
	fmt.Fprintln(w, "Table III: Fork types and lengths")
	fmt.Fprintf(w, "blocks=%d  main=%.2f%%  recognized uncles=%.2f%%  unrecognized=%.2f%%\n",
		r.TotalBlocks, r.MainShare*100, r.RecognizedShare*100, r.UnrecognizedShare*100)
	fmt.Fprintln(w, "(paper: 92.81% / 6.97% / 0.22%)")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Length),
			fmt.Sprintf("%d", row.Total),
			fmt.Sprintf("%d", row.Recognized),
			fmt.Sprintf("%d", row.Unrecognized),
		})
	}
	Table(w, []string{"Fork Length", "Total", "Recognized", "Unrecognized"}, rows)
	fmt.Fprintln(w, "(paper: len-1 15,171 (15,100 rec.), len-2 404 (0 rec.), len-3 10 (0 rec.))")
}

// OneMinerForks renders the §III-C5 analysis.
func OneMinerForks(w io.Writer, r *analysis.OneMinerForksResult) {
	fmt.Fprintln(w, "One-miner forks (single miner, several blocks at one height)")
	fmt.Fprintf(w, "events=%d  sibling blocks=%d  recognized-as-uncle=%.0f%% (paper: 98%%)\n",
		r.Events, r.SiblingBlocks, r.RecognizedShare*100)
	fmt.Fprintf(w, "same-tx-set events=%.0f%% (paper: 56%%)  share of all forks=%.1f%% (paper: >11%%)\n",
		r.SameTxShare*100, r.ShareOfAllForks*100)
	rows := make([][]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		rows = append(rows, []string{fmt.Sprintf("%d-tuple", t.Size), fmt.Sprintf("%d", t.Count)})
	}
	Table(w, []string{"Tuple size", "Count"}, rows)
	fmt.Fprintln(w, "(paper: 1,750 pairs, 25 triples, one 4-tuple, one 7-tuple)")
}

// Figure7 renders consecutive-block sequences per pool.
func Figure7(w io.Writer, r *analysis.SequencesResult) {
	fmt.Fprintln(w, "Figure 7: Consecutive main-chain blocks mined by a single pool")
	fmt.Fprintf(w, "main blocks=%d  longest run=%d by %s  censorship window=%.0fs\n",
		r.MainBlocks, r.LongestRun, r.LongestPool, r.CensorWindowSec)
	headers := []string{"Pool (power)", "runs", "max"}
	for _, q := range []float64{0.9, 0.99, 0.999} {
		headers = append(headers, fmt.Sprintf("len@%.3g", q))
	}
	headers = append(headers, "E[runs>=max] (n*p^k)")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{
			fmt.Sprintf("%s (%.1f%%)", row.Pool, row.PowerShare*100),
			fmt.Sprintf("%d", row.Runs),
			fmt.Sprintf("%d", row.MaxRun),
		}
		for _, q := range []float64{0.9, 0.99, 0.999} {
			cells = append(cells, fmt.Sprintf("%d", lengthAtQuantile(row, q)))
		}
		cells = append(cells, fmt.Sprintf("%.2f", row.TheoreticalAtMax))
		rows = append(rows, cells)
	}
	Table(w, headers, rows)
}

// lengthAtQuantile finds the smallest run length L with CDF(L) ≥ q.
func lengthAtQuantile(row analysis.PoolSequenceRow, q float64) int {
	for l := 1; l <= row.MaxRun; l++ {
		if row.CDF(l) >= q {
			return l
		}
	}
	return row.MaxRun
}

// TxPropagation renders the transaction-geography analysis.
func TxPropagation(w io.Writer, r *analysis.TxPropagationResult) {
	fmt.Fprintln(w, "Transaction propagation by geography (paper §III-A1)")
	fmt.Fprintf(w, "txs=%d  first-observation share spread=%.1f%%\n", r.Txs, r.FirstShareSpread*100)
	rows := make([][]string, 0, len(r.Vantages))
	for _, v := range r.Vantages {
		rows = append(rows, []string{
			v,
			fmt.Sprintf("%.1f%%", r.FirstShares[v]*100),
			fmt.Sprintf("%.0fms", r.MedianDelayMs[v]),
		})
	}
	Table(w, []string{"Vantage", "First share", "Median delay"}, rows)
	fmt.Fprintln(w, "(paper: no geographic effect within NTP measurement error)")
}

// CDFPlot renders a sample's CDF as a small text plot.
func CDFPlot(w io.Writer, title, unit string, s *stats.Sample) {
	fmt.Fprintln(w, title)
	if s.N() == 0 {
		fmt.Fprintln(w, "(no samples)")
		return
	}
	for _, q := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} {
		v := s.MustQuantile(q)
		fmt.Fprintf(w, "%3.0f%% <= %8.1f%s %s\n", q*100, v, unit, bar(q))
	}
}
