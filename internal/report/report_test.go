package report

import (
	"strings"
	"testing"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/stats"
)

func render(fn func(*strings.Builder)) string {
	var sb strings.Builder
	fn(&sb)
	return sb.String()
}

func TestTableAlignment(t *testing.T) {
	out := render(func(sb *strings.Builder) {
		Table(sb, []string{"Name", "Value"}, [][]string{
			{"short", "1"},
			{"a-much-longer-name", "22"},
		})
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule = %q", lines[1])
	}
	// The value column must start at the same offset in both rows.
	idx2 := strings.Index(lines[2], "1")
	idx3 := strings.Index(lines[3], "22")
	if idx3 > idx2 {
		t.Errorf("columns misaligned: %q vs %q", lines[2], lines[3])
	}
}

func TestTableI(t *testing.T) {
	out := render(func(sb *strings.Builder) { TableI(sb, measure.PaperInfrastructure()) })
	for _, want := range []string{"Table I", "NA", "EA", "CE", "WE", "RAM(GB)", "40x Intel Xeon"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFigure1Rendering(t *testing.T) {
	sample := stats.FromSlice([]float64{50, 74, 74, 90, 200})
	hist, _ := stats.NewHistogram(0, 500, 50)
	for _, v := range sample.Values() {
		hist.Add(v)
	}
	r := &analysis.PropagationResult{
		DelaysMs:  sample,
		Histogram: hist,
		MedianMs:  74, MeanMs: 97.6, P95Ms: 178, P99Ms: 195.6,
		Blocks: 3, InterBlockRatio: 136,
	}
	out := render(func(sb *strings.Builder) { Figure1(sb, r) })
	for _, want := range []string{"Figure 1", "median=74ms", "paper: 74/109/211/317", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure1EmptyHistogram(t *testing.T) {
	hist, _ := stats.NewHistogram(0, 500, 10)
	r := &analysis.PropagationResult{DelaysMs: stats.NewSample(0), Histogram: hist}
	out := render(func(sb *strings.Builder) { Figure1(sb, r) })
	if !strings.Contains(out, "Figure 1") {
		t.Error("empty result should still render a header")
	}
}

func TestTableIIRendering(t *testing.T) {
	r := &analysis.RedundancyResult{
		Vantage: "WE-default", Blocks: 500, OptimalLn: 9.62,
		Announcements: analysis.RedundancyRow{MessageType: "Announcements", Avg: 2.585, Median: 2, Top10: 5, Top1: 7},
		WholeBlocks:   analysis.RedundancyRow{MessageType: "Whole Blocks", Avg: 7.043, Median: 7, Top10: 10, Top1: 12},
		Combined:      analysis.RedundancyRow{MessageType: "Both combined", Avg: 9.11, Median: 9, Top10: 12, Top1: 15},
	}
	out := render(func(sb *strings.Builder) { TableII(sb, r) })
	for _, want := range []string{"Table II", "2.585", "7.043", "9.110", "ln(n)=9.62"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure2Rendering(t *testing.T) {
	r := &analysis.FirstObservationResult{
		Vantages: []string{"NA", "EA"},
		Shares:   map[string]float64{"NA": 0.1, "EA": 0.4},
		Counts:   map[string]int{"NA": 10, "EA": 40},
		Blocks:   100, UncertainShare: 0.15,
	}
	out := render(func(sb *strings.Builder) { Figure2(sb, r) })
	for _, want := range []string{"Figure 2", "EA", "40.0%", "ties=15.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 missing %q", want)
		}
	}
}

func TestFigure3Rendering(t *testing.T) {
	r := &analysis.PoolGeographyResult{
		Vantages: []string{"NA", "EA"},
		Rows: []analysis.PoolGeographyRow{{
			Pool: "Sparkpool", PowerShare: 0.2288, Blocks: 100,
			Shares: map[string]float64{"NA": 0.05, "EA": 0.8},
		}},
		Blocks: 100,
	}
	out := render(func(sb *strings.Builder) { Figure3(sb, r) })
	for _, want := range []string{"Figure 3", "Sparkpool (22.88%)", "80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 3 missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure4And5Rendering(t *testing.T) {
	commit := &analysis.CommitTimeResult{
		InclusionSec: stats.FromSlice([]float64{10, 20}),
		ConfirmSec: map[int]*stats.Sample{
			3:  stats.FromSlice([]float64{50, 60}),
			12: stats.FromSlice([]float64{180, 190}),
			15: stats.FromSlice([]float64{220, 230}),
			36: stats.FromSlice([]float64{500, 510}),
		},
		CommittedTxs: 2, Median12Sec: 185,
	}
	out := render(func(sb *strings.Builder) { Figure4(sb, commit) })
	for _, want := range []string{"Figure 4", "12 conf", "36 conf", "185", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 4 missing %q in:\n%s", want, out)
		}
	}
	ordering := &analysis.OrderingResult{
		InOrderSec:    stats.FromSlice([]float64{189}),
		OutOfOrderSec: stats.FromSlice([]float64{192}),
		CommittedTxs:  100, OutOfOrderTxs: 11, OutOfOrderShare: 0.1154,
		InOrderP50: 189, InOrderP90: 292, OutOfOrderP50: 192, OutOfOrderP90: 325,
	}
	out = render(func(sb *strings.Builder) { Figure5(sb, ordering) })
	for _, want := range []string{"Figure 5", "11.54%", "out-of-order", "292"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 5 missing %q", want)
		}
	}
}

func TestFigure6Rendering(t *testing.T) {
	r := &analysis.EmptyBlocksResult{
		Rows: []analysis.EmptyBlocksRow{
			{Pool: "Zhizhu", EmptyBlocks: 440, TotalBlocks: 1700, EmptyRate: 0.2588},
		},
		MainBlocks: 201086, EmptyBlocks: 2921, EmptyShare: 0.0145,
	}
	out := render(func(sb *strings.Builder) { Figure6(sb, r) })
	for _, want := range []string{"Figure 6", "Zhizhu", "25.88%", "1.45%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 6 missing %q", want)
		}
	}
}

func TestTableIIIRendering(t *testing.T) {
	r := &analysis.ForksResult{
		Rows: []analysis.ForkLengthRow{
			{Length: 1, Total: 15171, Recognized: 15100, Unrecognized: 71},
			{Length: 2, Total: 404, Recognized: 0, Unrecognized: 404},
		},
		TotalBlocks: 216671, MainBlocks: 201086,
		MainShare: 0.9281, RecognizedShare: 0.0697, UnrecognizedShare: 0.0022,
		TotalForks: 15575,
	}
	out := render(func(sb *strings.Builder) { TableIII(sb, r) })
	for _, want := range []string{"Table III", "15171", "404", "92.81%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}

func TestOneMinerForksRendering(t *testing.T) {
	r := &analysis.OneMinerForksResult{
		Tuples: []analysis.OneMinerTupleRow{{Size: 2, Count: 1750}, {Size: 7, Count: 1}},
		Events: 1777, SiblingBlocks: 1800,
		RecognizedShare: 0.98, SameTxShare: 0.56, ShareOfAllForks: 0.115,
		TopPoolEvents: map[string]int{"Ethermine": 500},
	}
	out := render(func(sb *strings.Builder) { OneMinerForks(sb, r) })
	for _, want := range []string{"2-tuple", "7-tuple", "98%", "56%", "11.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("one-miner render missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure7Rendering(t *testing.T) {
	counts := map[int]int{1: 100, 2: 30, 8: 4}
	r := &analysis.SequencesResult{
		Rows: []analysis.PoolSequenceRow{{
			Pool: "Ethermine", PowerShare: 0.259, Runs: 134, MaxRun: 8,
			RunCounts: counts,
			CDF: func(l int) float64 {
				c := 0
				for k, v := range counts {
					if k <= l {
						c += v
					}
				}
				return float64(c) / 134
			},
			TheoreticalAtMax: 4.05,
		}},
		MainBlocks: 201086, LongestRun: 9, LongestPool: "Sparkpool",
		CensorWindowSec: 120,
	}
	out := render(func(sb *strings.Builder) { Figure7(sb, r) })
	for _, want := range []string{"Figure 7", "Ethermine (25.9%)", "censorship window=120s", "4.05"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 7 missing %q in:\n%s", want, out)
		}
	}
}

func TestTxPropagationRendering(t *testing.T) {
	r := &analysis.TxPropagationResult{
		Vantages:         []string{"NA", "EA"},
		FirstShares:      map[string]float64{"NA": 0.26, "EA": 0.24},
		MedianDelayMs:    map[string]float64{"NA": 8, "EA": 9},
		DelaysMs:         stats.FromSlice([]float64{8, 9}),
		Txs:              1000,
		FirstShareSpread: 0.02,
	}
	out := render(func(sb *strings.Builder) { TxPropagation(sb, r) })
	for _, want := range []string{"Transaction propagation", "NA", "8ms", "no geographic effect"} {
		if !strings.Contains(out, want) {
			t.Errorf("tx propagation missing %q", want)
		}
	}
}

func TestCDFPlot(t *testing.T) {
	out := render(func(sb *strings.Builder) {
		CDFPlot(sb, "commit", "s", stats.FromSlice([]float64{1, 2, 3, 4, 5}))
	})
	if !strings.Contains(out, "50%") || !strings.Contains(out, "commit") {
		t.Errorf("CDF plot output:\n%s", out)
	}
	out = render(func(sb *strings.Builder) { CDFPlot(sb, "empty", "s", stats.NewSample(0)) })
	if !strings.Contains(out, "no samples") {
		t.Error("empty CDF plot should say so")
	}
}

func TestLengthAtQuantile(t *testing.T) {
	row := analysis.PoolSequenceRow{
		MaxRun: 3,
		CDF: func(l int) float64 {
			switch {
			case l >= 3:
				return 1
			case l == 2:
				return 0.9
			default:
				return 0.5
			}
		},
	}
	if got := lengthAtQuantile(row, 0.9); got != 2 {
		t.Errorf("lengthAtQuantile(0.9) = %d", got)
	}
	if got := lengthAtQuantile(row, 0.99); got != 3 {
		t.Errorf("lengthAtQuantile(0.99) = %d", got)
	}
}
