package report

import (
	"fmt"
	"io"

	"ethmeasure/internal/analysis"
)

// Rewards renders the per-pool reward accounting, including the
// one-miner-fork profit the paper's §V discusses.
func Rewards(w io.Writer, r *analysis.RewardsResult) {
	fmt.Fprintln(w, "Reward accounting (Constantinople rules: 2 ETH block, (8-d)/8*2 uncle, 1/16-per-2 nephew)")
	fmt.Fprintf(w, "total=%.2f ETH  uncle rewards=%.2f ETH  from one-miner forks=%.2f ETH (%.0f%% of uncle rewards)\n",
		r.TotalETH, r.UncleETH, r.SiblingUncleETH, r.SiblingShare*100)
	fmt.Fprintf(w, "wasted side blocks (no reward): %d (%.2f%% of mining power)\n",
		r.WastedBlocks, r.WastedShare*100)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Pool,
			fmt.Sprintf("%d", row.MainBlocks),
			fmt.Sprintf("%d", row.UncleBlocks),
			fmt.Sprintf("%d", row.OrphanBlocks),
			fmt.Sprintf("%.2f", row.BlockRewardETH),
			fmt.Sprintf("%.2f", row.UncleRewardETH),
			fmt.Sprintf("%.3f", row.NephewRewardETH),
			fmt.Sprintf("%.2f", row.SiblingUncleETH),
			fmt.Sprintf("%.2f", row.TotalETH),
		})
	}
	Table(w, []string{"Pool", "Main", "Uncles", "Orphans", "Block ETH", "Uncle ETH", "Nephew ETH", "Sibling ETH", "Total ETH"}, rows)
	fmt.Fprintln(w, "(paper §V: the uncle mechanism lets powerful pools profit from one-miner forks)")
}

// Finality renders the k-block confirmation-rule analysis.
func Finality(w io.Writer, r *analysis.FinalityResult) {
	fmt.Fprintln(w, "Finality under pooled mining (paper §III-D)")
	fmt.Fprintf(w, "main blocks=%d  top pool=%s (%.1f%% of blocks)\n",
		r.MainBlocks, r.TopPool, r.TopShare*100)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Depth),
			fmt.Sprintf("%d", row.SinglePoolWindows),
			fmt.Sprintf("%.4f%%", row.SinglePoolShare*100),
			fmt.Sprintf("%.2e", row.TopPoolTheory),
			fmt.Sprintf("%.2e", row.NakamotoCatchup),
		})
	}
	Table(w, []string{"Depth k", "1-pool windows", "share", "theory p^(k-1)", "catch-up (q/p)^k"}, rows)
	if r.TwelveBlockViolations > 0 {
		fmt.Fprintf(w, "WARNING: %d twelve-block windows were controlled by a single pool —\n", r.TwelveBlockViolations)
		fmt.Fprintln(w, "the default 12-confirmation rule called suffixes final that one entity could replace.")
	}
	fmt.Fprintln(w, "(paper: 8- and 9-block single-pool runs every month; 14 historically)")
}

// Throughput renders the §V resource-waste analysis.
func Throughput(w io.Writer, r *analysis.ThroughputResult) {
	fmt.Fprintln(w, "Platform throughput and wasted resources (paper §V)")
	rows := [][]string{
		{"blocks total / main / side", fmt.Sprintf("%d / %d / %d", r.TotalBlocks, r.MainBlocks, r.SideBlocks)},
		{"mining power on forks", fmt.Sprintf("%.2f%% (paper: ~1%% + uncles)", r.SidePowerShare*100)},
		{"committed transactions", fmt.Sprintf("%d (%.2f tx/s)", r.CommittedTxs, r.CommittedTxPS)},
		{"capacity lost to empty blocks", fmt.Sprintf("%.0f txs", r.EmptyBlockCapacityLoss)},
		{"effective utilization", fmt.Sprintf("%.1f%%", r.EffectiveUtilization*100)},
		{"duplicate fork inclusions", fmt.Sprintf("%d", r.DuplicateTxInclusions)},
	}
	Table(w, []string{"Metric", "Value"}, rows)
}

// Withholding renders the §III-D publication-timing forensic.
func Withholding(w io.Writer, r *analysis.WithholdingResult) {
	fmt.Fprintln(w, "Block-withholding forensic (paper §III-D: honest sequences arrive at")
	fmt.Fprintln(w, "mining pace; a selfish miner's private chain arrives 'all together')")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Pool,
			fmt.Sprintf("%d", row.Sequences),
			fmt.Sprintf("%d", row.BurstSequences),
			fmt.Sprintf("%.1fs", row.MeanIntraGapSec),
		})
	}
	Table(w, []string{"Pool", "Sequences>=2", "Burst releases", "Mean intra-gap"}, rows)
	if len(r.Suspects) == 0 {
		fmt.Fprintln(w, "no pool shows the withholding signature (the paper's conclusion for Sparkpool)")
	} else {
		fmt.Fprintf(w, "WITHHOLDING SUSPECTS: %v\n", r.Suspects)
	}
}

// GeoDelay renders per-vantage lag distributions (Figure 1 drill-down).
func GeoDelay(w io.Writer, r *analysis.GeoDelayResult) {
	fmt.Fprintln(w, "Per-vantage reception lag behind the first observer (Figure 1 drill-down)")
	rows := make([][]string, 0, len(r.Vantages))
	for _, v := range r.Vantages {
		rows = append(rows, []string{
			v,
			fmt.Sprintf("%d", r.Samples[v]),
			fmt.Sprintf("%.0fms", r.MedianMs[v]),
			fmt.Sprintf("%.0fms", r.P90Ms[v]),
		})
	}
	Table(w, []string{"Vantage", "Lagging obs", "Median lag", "p90 lag"}, rows)
}

// FeeMarket renders inclusion latency per gas-price band.
func FeeMarket(w io.Writer, r *analysis.FeeMarketResult) {
	fmt.Fprintln(w, "Fee market: inclusion delay by gas-price band")
	rows := make([][]string, 0, len(r.Bands))
	for _, band := range r.Bands {
		rows = append(rows, []string{
			band.Label,
			fmt.Sprintf("%d", band.Txs),
			fmt.Sprintf("%.0fs", band.InclusionP50),
			fmt.Sprintf("%.0fs", band.InclusionP90),
		})
	}
	Table(w, []string{"Band", "Txs", "Inclusion p50", "p90"}, rows)
	if r.MedianTrendDecreasing {
		fmt.Fprintln(w, "higher fees commit faster — the miner price-selection mechanism at work")
	}
}

// InterBlock renders the block-interval statistics.
func InterBlock(w io.Writer, r *analysis.InterBlockResult) {
	fmt.Fprintln(w, "Inter-block time (paper §III-C1: 13.3s mean, down from 14.3s in 2017)")
	fmt.Fprintf(w, "gaps=%d  mean=%.1fs  median=%.1fs  p95=%.1fs  CV=%.2f (1.0 = memoryless PoW)\n",
		r.Blocks, r.MeanSec, r.MedianSec, r.P95Sec, r.CoeffVar)
}
