package report

import (
	"strings"
	"testing"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/stats"
)

func TestRewardsRendering(t *testing.T) {
	r := &analysis.RewardsResult{
		Rows: []analysis.PoolRewardRow{{
			Pool: "Sparkpool", MainBlocks: 104, UncleBlocks: 10,
			BlockRewardETH: 208, UncleRewardETH: 17.5, NephewRewardETH: 0.5625,
			SiblingUncleETH: 3.5, TotalETH: 226.06,
		}},
		TotalETH: 1034, UncleETH: 69.5, SiblingUncleETH: 5,
		SiblingShare: 0.072, WastedBlocks: 2, WastedShare: 0.0038,
	}
	out := render(func(sb *strings.Builder) { Rewards(sb, r) })
	for _, want := range []string{"Sparkpool", "226.06", "1034.00 ETH", "3.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("rewards missing %q in:\n%s", want, out)
		}
	}
}

func TestFinalityRendering(t *testing.T) {
	r := &analysis.FinalityResult{
		Rows: []analysis.FinalityRow{
			{Depth: 12, SinglePoolWindows: 3, SinglePoolShare: 1.5e-5, TopPoolTheory: 3.5e-7, NakamotoCatchup: 2.9e-6},
		},
		MainBlocks: 201086, TopPool: "Ethermine", TopShare: 0.2532,
		TwelveBlockViolations: 3,
	}
	out := render(func(sb *strings.Builder) { Finality(sb, r) })
	for _, want := range []string{"Ethermine", "25.3%", "WARNING", "12"} {
		if !strings.Contains(out, want) {
			t.Errorf("finality missing %q in:\n%s", want, out)
		}
	}
	r.TwelveBlockViolations = 0
	out = render(func(sb *strings.Builder) { Finality(sb, r) })
	if strings.Contains(out, "WARNING") {
		t.Error("warning printed without violations")
	}
}

func TestThroughputRendering(t *testing.T) {
	r := &analysis.ThroughputResult{
		TotalBlocks: 523, MainBlocks: 481, SideBlocks: 42,
		SidePowerShare: 0.0803, CommittedTxs: 12795, CommittedTxPS: 1.78,
		EmptyBlockCapacityLoss: 189, EffectiveUtilization: 0.985,
		DuplicateTxInclusions: 1134,
	}
	out := render(func(sb *strings.Builder) { Throughput(sb, r) })
	for _, want := range []string{"8.03%", "12795", "1134", "98.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("throughput missing %q in:\n%s", want, out)
		}
	}
}

func TestInterBlockRendering(t *testing.T) {
	r := &analysis.InterBlockResult{
		GapsSec: stats.FromSlice([]float64{13, 14}),
		MeanSec: 15.0, MedianSec: 11.0, P95Sec: 41.7, CoeffVar: 0.90, Blocks: 480,
	}
	out := render(func(sb *strings.Builder) { InterBlock(sb, r) })
	for _, want := range []string{"mean=15.0s", "CV=0.90", "13.3s"} {
		if !strings.Contains(out, want) {
			t.Errorf("interblock missing %q in:\n%s", want, out)
		}
	}
}

func TestWithholdingRendering(t *testing.T) {
	r := &analysis.WithholdingResult{
		Rows: []analysis.WithholdingRow{
			{Pool: "Ethermine", Sequences: 12, BurstSequences: 10, MeanIntraGapSec: 0.4},
			{Pool: "Sparkpool", Sequences: 8, BurstSequences: 0, MeanIntraGapSec: 13.5},
		},
		Suspects: []string{"Ethermine"},
	}
	out := render(func(sb *strings.Builder) { Withholding(sb, r) })
	for _, want := range []string{"WITHHOLDING SUSPECTS", "Ethermine", "13.5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("withholding missing %q in:\n%s", want, out)
		}
	}
	r.Suspects = nil
	out = render(func(sb *strings.Builder) { Withholding(sb, r) })
	if !strings.Contains(out, "no pool shows the withholding signature") {
		t.Error("clean verdict not rendered")
	}
}

func TestGeoDelayRendering(t *testing.T) {
	r := &analysis.GeoDelayResult{
		Vantages: []string{"NA", "EA"},
		MedianMs: map[string]float64{"NA": 95, "EA": 20},
		P90Ms:    map[string]float64{"NA": 180, "EA": 60},
		Samples:  map[string]int{"NA": 400, "EA": 120},
		Blocks:   500,
	}
	out := render(func(sb *strings.Builder) { GeoDelay(sb, r) })
	for _, want := range []string{"95ms", "180ms", "NA", "drill-down"} {
		if !strings.Contains(out, want) {
			t.Errorf("geodelay missing %q in:\n%s", want, out)
		}
	}
}

func TestFeeMarketRendering(t *testing.T) {
	r := &analysis.FeeMarketResult{
		Bands: []analysis.FeeBandRow{
			{Label: "reservoir (1-3)", Txs: 100, InclusionP50: 90, InclusionP90: 300},
			{Label: "premium (40+)", Txs: 50, InclusionP50: 7, InclusionP90: 20},
		},
		MedianTrendDecreasing: true,
	}
	out := render(func(sb *strings.Builder) { FeeMarket(sb, r) })
	for _, want := range []string{"reservoir (1-3)", "premium (40+)", "90s", "higher fees commit faster"} {
		if !strings.Contains(out, want) {
			t.Errorf("feemarket missing %q in:\n%s", want, out)
		}
	}
}
