// Package logs implements the on-disk log pipeline, mirroring how the
// paper's instrumented Geth wrote each observation to a dedicated log
// with a local timestamp and post-processed the files offline.
//
// Two encodings are supported. The default is ethlog v1 (see
// binary.go): a compact binary framing whose record encoder allocates
// nothing in steady state, built for the bounded-memory spill path
// and fast re-analysis. JSON Lines (one JSON object per line) is
// retained for interop with external tooling. Readers sniff the
// format from the first bytes, so every load path accepts either.
package logs

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

// Entry is one log line: a tagged union of record types.
type Entry struct {
	Kind  string               `json:"kind"` // "meta" | "block" | "tx" | "chain"
	Meta  *Meta                `json:"meta,omitempty"`
	Block *measure.BlockRecord `json:"block,omitempty"`
	Tx    *measure.TxRecord    `json:"tx,omitempty"`
	Chain *ChainBlock          `json:"chain,omitempty"`
}

// Entry kinds.
const (
	KindMeta  = "meta"
	KindBlock = "block"
	KindTx    = "tx"
	KindChain = "chain"
)

// Meta carries campaign metadata the analysis pipeline needs beyond the
// raw records: pool-name mapping, vantage roles and timing parameters.
type Meta struct {
	PoolNames         []string `json:"pools"`
	Vantages          []string `json:"vantages"` // primary, presentation order
	RedundancyVantage string   `json:"redundancyVantage,omitempty"`
	InterBlockNs      int64    `json:"interBlockNs"`
	DurationNs        int64    `json:"durationNs"`
	NetworkSize       int      `json:"networkSize"`
	Seed              int64    `json:"seed"`
	// Scenarios lists the canonical tags of the interventions composed
	// into the campaign (empty for vanilla runs and pre-scenario logs).
	Scenarios []string `json:"scenarios,omitempty"`
	// Protocol is the canonical tag of the consensus protocol the
	// campaign ran under. Empty in pre-protocol logs, which were all
	// ethereum.
	Protocol string `json:"protocol,omitempty"`
}

// ChainBlock is the serialized form of a registry block (the "chain
// dump" the analysis needs to classify forks and uncles).
type ChainBlock struct {
	Hash      types.Hash   `json:"h"`
	Number    uint64       `json:"n"`
	Parent    types.Hash   `json:"p"`
	Miner     types.PoolID `json:"m"`
	TxHashes  []types.Hash `json:"x,omitempty"`
	Uncles    []types.Hash `json:"u,omitempty"`
	TotalDiff uint64       `json:"d"`
	MinedAtNs int64        `json:"t"`
	Size      int          `json:"s"`
}

// EntryWriter is the format-independent log sink: both the JSONL
// Writer and the ethlog BinaryWriter satisfy it, so spill plumbing is
// agnostic to the encoding.
type EntryWriter interface {
	measure.Recorder
	Write(e *Entry)
	Entries() int
	Err() error
	Flush() error
}

// NewWriterFormat creates an entry writer for the requested encoding
// ("" means the default, binary).
func NewWriterFormat(w io.Writer, format Format) EntryWriter {
	if format.Resolve() == FormatJSONL {
		return NewWriter(w)
	}
	return NewBinaryWriter(w)
}

// Writer streams entries to an io.Writer as JSON Lines. It implements
// measure.Recorder, so a vantage can log straight to disk.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
	n   int
}

var _ measure.Recorder = (*Writer)(nil)
var _ EntryWriter = (*Writer)(nil)

// NewWriter wraps w in a JSONL log writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write emits one entry.
func (w *Writer) Write(e *Entry) {
	if w.err != nil {
		return
	}
	if err := w.enc.Encode(e); err != nil {
		w.err = fmt.Errorf("logs: encode entry: %w", err)
		return
	}
	w.n++
}

// RecordBlock implements measure.Recorder.
func (w *Writer) RecordBlock(r measure.BlockRecord) {
	w.Write(&Entry{Kind: KindBlock, Block: &r})
}

// RecordTx implements measure.Recorder.
func (w *Writer) RecordTx(r measure.TxRecord) {
	w.Write(&Entry{Kind: KindTx, Tx: &r})
}

// Entries returns how many entries were written.
func (w *Writer) Entries() int { return w.n }

// Err returns the first write error seen, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains buffered output and returns the first error seen.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("logs: flush: %w", err)
	}
	return w.err
}

// WriteChain dumps every block in the registry (including genesis) to w.
func WriteChain(w EntryWriter, reg *chain.Registry) {
	reg.Blocks(func(b *types.Block) bool {
		w.Write(&Entry{Kind: KindChain, Chain: &ChainBlock{
			Hash:      b.Hash,
			Number:    b.Number,
			Parent:    b.ParentHash,
			Miner:     b.Miner,
			TxHashes:  b.TxHashes,
			Uncles:    b.Uncles,
			TotalDiff: b.TotalDiff,
			MinedAtNs: int64(b.MinedAt),
			Size:      b.Size,
		}})
		return true
	})
}

// FileWriter couples an entry writer with its backing file, for
// streaming a campaign's records to disk as they are produced
// (bounded-memory spill) instead of materializing them first.
type FileWriter struct {
	EntryWriter
	f *os.File
}

// CreateFile opens path (creating parent directories) for streaming
// log output in the default (binary) encoding.
func CreateFile(path string) (*FileWriter, error) {
	return CreateFileFormat(path, FormatBinary)
}

// CreateFileFormat opens path (creating parent directories) for
// streaming log output in the requested encoding.
func CreateFileFormat(path string, format Format) (*FileWriter, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("logs: mkdir: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("logs: create: %w", err)
	}
	return &FileWriter{EntryWriter: NewWriterFormat(f, format), f: f}, nil
}

// Close flushes buffered output and closes the file, returning the
// first error seen.
func (fw *FileWriter) Close() error {
	err := fw.Flush()
	if cerr := fw.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("logs: close: %w", cerr)
	}
	return err
}

// Reader streams entries from an io.Reader, auto-detecting the
// encoding from the first bytes: the ethlog magic header selects the
// binary decoder, anything else is treated as JSONL. JSONL lines are
// read through an explicitly growing buffer, so entries larger than
// any fixed scanner token limit (big chain-dump lines) decode fine.
type Reader struct {
	br      *bufio.Reader
	format  Format
	sniffed bool
	line    int               // JSONL line counter (error context)
	frame   int               // binary frame counter (error context)
	buf     []byte            // reusable line / frame-payload buffer
	intern  map[string]string // decoded-string interning table
}

// NewReader wraps r in a format-sniffing log reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// NewReaderFormat wraps r in a log reader pinned to the given
// encoding ("" sniffs, like NewReader). A pinned binary reader still
// requires the magic header; a pinned JSONL reader skips sniffing
// entirely and parses every line as JSON.
func NewReaderFormat(r io.Reader, format Format) *Reader {
	rd := NewReader(r)
	if format != "" {
		rd.format = format
		rd.sniffed = format == FormatJSONL // binary must still consume the magic
	}
	return rd
}

// Format returns the detected (or pinned) encoding. Before the first
// Next call on a sniffing reader it may be empty.
func (r *Reader) Format() Format { return r.format }

// sniff determines the stream encoding from its first bytes and, for
// binary streams, consumes the magic header.
func (r *Reader) sniff() error {
	r.sniffed = true
	head, err := r.br.Peek(len(binaryMagic))
	if r.format == FormatBinary {
		// Pinned binary: the header is mandatory.
		if err != nil || [8]byte(head) != binaryMagic {
			return fmt.Errorf("logs: not an ethlog stream (missing magic header)")
		}
		_, err = r.br.Discard(len(binaryMagic))
		return err
	}
	if err == nil && [8]byte(head) == binaryMagic {
		r.format = FormatBinary
		_, err = r.br.Discard(len(binaryMagic))
		return err
	}
	// Short or non-magic prefix: JSONL (including the empty stream).
	r.format = FormatJSONL
	return nil
}

// Next returns the next entry, or io.EOF when exhausted.
func (r *Reader) Next() (*Entry, error) {
	if !r.sniffed {
		if err := r.sniff(); err != nil {
			return nil, err
		}
	}
	if r.format == FormatBinary {
		return r.nextBinary()
	}
	return r.nextJSONL()
}

// nextJSONL reads one JSON line, growing r.buf as needed — there is
// no upper bound on line length.
func (r *Reader) nextJSONL() (*Entry, error) {
	for {
		r.buf = r.buf[:0]
		for {
			chunk, err := r.br.ReadSlice('\n')
			r.buf = append(r.buf, chunk...)
			if err == bufio.ErrBufferFull {
				continue
			}
			if err == io.EOF {
				if len(r.buf) == 0 {
					return nil, io.EOF
				}
				break
			}
			if err != nil {
				return nil, fmt.Errorf("logs: read: %w", err)
			}
			break
		}
		r.line++
		raw := r.buf
		for len(raw) > 0 && (raw[len(raw)-1] == '\n' || raw[len(raw)-1] == '\r') {
			raw = raw[:len(raw)-1]
		}
		if len(raw) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("logs: line %d: %w", r.line, err)
		}
		return &e, nil
	}
}

// nextBinary reads one length-prefixed frame and decodes it.
func (r *Reader) nextBinary() (*Entry, error) {
	n, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("logs: frame %d length: %w", r.frame+1, err)
	}
	if n == 0 || n > maxFrameLen {
		return nil, fmt.Errorf("logs: frame %d: invalid length %d", r.frame+1, n)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("logs: frame %d: %w", r.frame+1, err)
	}
	r.frame++
	if r.intern == nil {
		r.intern = make(map[string]string, 16)
	}
	e, err := decodeBinaryEntry(r.buf, r.intern)
	if err != nil {
		return nil, fmt.Errorf("logs: frame %d: %w", r.frame, err)
	}
	return e, nil
}

// Campaign is a fully loaded log file.
type Campaign struct {
	Meta   *Meta
	Blocks []measure.BlockRecord
	Txs    []measure.TxRecord
	Chain  *chain.Registry
}

// ChainBuilder incrementally reconstructs a block registry from
// streamed chain entries. Dumps are written in creation order, so the
// first entry is genesis and parents always precede children; feed
// entries in file order.
type ChainBuilder struct {
	// Protocol, when non-nil, is installed on the rebuilt registry so
	// re-analysis applies the original campaign's consensus rules
	// (resolve it from Meta.Protocol). Nil keeps the registry default
	// (ethereum), matching pre-protocol logs.
	Protocol consensus.Protocol

	reg *chain.Registry
}

// Add incorporates one chain entry.
func (b *ChainBuilder) Add(cb *ChainBlock) error {
	if b.reg == nil {
		b.reg = chain.NewRegistryWithGenesis(cb.Number, cb.Hash)
		if b.Protocol != nil {
			b.reg.SetProtocol(b.Protocol)
		}
		return nil
	}
	blk := &types.Block{
		Hash:       cb.Hash,
		Number:     cb.Number,
		ParentHash: cb.Parent,
		Miner:      cb.Miner,
		TxHashes:   cb.TxHashes,
		Uncles:     cb.Uncles,
		Difficulty: 1,
		MinedAt:    time.Duration(cb.MinedAtNs),
		Size:       cb.Size,
	}
	if err := b.reg.Add(blk); err != nil {
		return fmt.Errorf("logs: rebuild chain: %w", err)
	}
	return nil
}

// Registry returns the reconstructed registry, or nil when no chain
// entries were fed.
func (b *ChainBuilder) Registry() *chain.Registry { return b.reg }

// ProtocolFromMeta resolves the consensus protocol a log's metadata
// names. Logs without a protocol tag predate pluggable consensus and
// resolve to ethereum.
func ProtocolFromMeta(m *Meta) (consensus.Protocol, error) {
	if m == nil || m.Protocol == "" {
		return consensus.Ethereum(), nil
	}
	spec, err := consensus.Parse(m.Protocol)
	if err != nil {
		return nil, fmt.Errorf("logs: meta protocol: %w", err)
	}
	proto, err := consensus.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("logs: meta protocol: %w", err)
	}
	return proto, nil
}

// Load reads a whole log stream into memory, reconstructing a registry
// from chain entries when present. The chain dump is in creation
// order, so parents always precede children.
func Load(r io.Reader) (blocks []measure.BlockRecord, txs []measure.TxRecord, reg *chain.Registry, err error) {
	c, err := LoadCampaign(r)
	if err != nil {
		return nil, nil, nil, err
	}
	return c.Blocks, c.Txs, c.Chain, nil
}

// LoadCampaign reads a whole log stream including metadata.
func LoadCampaign(r io.Reader) (*Campaign, error) {
	reader := NewReader(r)
	c := &Campaign{}
	var builder ChainBuilder
	for {
		e, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch e.Kind {
		case KindMeta:
			c.Meta = e.Meta
			if e.Meta != nil && e.Meta.Protocol != "" && builder.Registry() == nil {
				proto, err := ProtocolFromMeta(e.Meta)
				if err != nil {
					return nil, err
				}
				builder.Protocol = proto
			}
		case KindBlock:
			if e.Block != nil {
				c.Blocks = append(c.Blocks, *e.Block)
			}
		case KindTx:
			if e.Tx != nil {
				c.Txs = append(c.Txs, *e.Tx)
			}
		case KindChain:
			if e.Chain != nil {
				if err := builder.Add(e.Chain); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("logs: unknown entry kind %q", e.Kind)
		}
	}
	c.Chain = builder.Registry()
	return c, nil
}

// WriteFile writes records and a chain dump to path (creating parent
// directories) in the default (binary) encoding, one campaign per
// file.
func WriteFile(path string, blocks []measure.BlockRecord, txs []measure.TxRecord, reg *chain.Registry) error {
	return WriteCampaignFile(path, nil, blocks, txs, reg)
}

// WriteCampaignFile is WriteFile with a leading metadata entry.
func WriteCampaignFile(path string, meta *Meta, blocks []measure.BlockRecord, txs []measure.TxRecord, reg *chain.Registry) error {
	return WriteCampaignFileFormat(path, "", meta, blocks, txs, reg)
}

// WriteCampaignFileFormat is WriteCampaignFile with an explicit
// encoding ("" means the default, binary).
func WriteCampaignFileFormat(path string, format Format, meta *Meta, blocks []measure.BlockRecord, txs []measure.TxRecord, reg *chain.Registry) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("logs: mkdir: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("logs: create: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("logs: close: %w", cerr)
		}
	}()
	w := NewWriterFormat(f, format)
	if meta != nil {
		w.Write(&Entry{Kind: KindMeta, Meta: meta})
	}
	for i := range blocks {
		w.RecordBlock(blocks[i])
	}
	for i := range txs {
		w.RecordTx(txs[i])
	}
	if reg != nil {
		WriteChain(w, reg)
	}
	return w.Flush()
}

// ReadFile loads a campaign log file written by WriteFile.
func ReadFile(path string) ([]measure.BlockRecord, []measure.TxRecord, *chain.Registry, error) {
	c, err := ReadCampaignFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	return c.Blocks, c.Txs, c.Chain, nil
}

// ReadCampaignFile loads a campaign log file including metadata.
func ReadCampaignFile(path string) (*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logs: open: %w", err)
	}
	defer f.Close()
	return LoadCampaign(f)
}
