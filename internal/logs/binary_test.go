package logs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

// binarySample covers the encoder's edge cases: negative timestamps
// (NTP offsets perturb At below zero near the epoch), every coded
// Kind string plus the inline fallback, and empty vantages.
func binarySample() ([]measure.BlockRecord, []measure.TxRecord) {
	blocks := []measure.BlockRecord{
		{Vantage: "EA", At: -3 * time.Millisecond, Hash: 5, Number: 101, Miner: 1, Parent: 4, From: 7, Kind: "block", NTxs: 3, Size: 870},
		{Vantage: "NA", At: 180 * time.Millisecond, Hash: 5, Number: 101, Miner: -1, From: 8, Kind: "announce", Size: 48},
		{Vantage: "WE-default", At: 200 * time.Millisecond, Hash: 6, Number: 102, From: 9, Kind: "fetched", NTxs: 1, Size: 900},
		{Vantage: "", At: 0, Hash: 0, Kind: "exotic-kind", NTxs: -1, Size: -2},
	}
	txs := []measure.TxRecord{
		{Vantage: "EA", At: -50 * time.Millisecond, Hash: 21, Sender: 3, Nonce: 0, From: 7},
		{Vantage: "WE", At: 70 * time.Millisecond, Hash: 21, Sender: 3, Nonce: 9, From: 9},
	}
	return blocks, txs
}

func TestBinaryRoundTripInMemory(t *testing.T) {
	blocks, txs := binarySample()
	reg := sampleRegistry(t)
	meta := &Meta{Vantages: []string{"EA", "NA"}, Seed: 7, NetworkSize: 42}

	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(&Entry{Kind: KindMeta, Meta: meta})
	for _, r := range blocks {
		w.RecordBlock(r)
	}
	for _, r := range txs {
		w.RecordTx(r)
	}
	WriteChain(w, reg)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Entries() != 1+len(blocks)+len(txs)+reg.Len() {
		t.Errorf("entries = %d", w.Entries())
	}
	if !bytes.HasPrefix(buf.Bytes(), binaryMagic[:]) {
		t.Fatal("stream does not start with the ethlog magic")
	}

	c, err := LoadCampaign(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta == nil || c.Meta.Seed != 7 || c.Meta.NetworkSize != 42 {
		t.Errorf("meta = %+v", c.Meta)
	}
	if len(c.Blocks) != len(blocks) {
		t.Fatalf("blocks = %d, want %d", len(c.Blocks), len(blocks))
	}
	for i := range blocks {
		if c.Blocks[i] != blocks[i] {
			t.Errorf("block %d = %+v, want %+v", i, c.Blocks[i], blocks[i])
		}
	}
	for i := range txs {
		if c.Txs[i] != txs[i] {
			t.Errorf("tx %d = %+v, want %+v", i, c.Txs[i], txs[i])
		}
	}
	if c.Chain == nil || c.Chain.Len() != reg.Len() {
		t.Fatalf("chain not rebuilt: %v", c.Chain)
	}
	if c.Chain.Head().Hash != reg.Head().Hash {
		t.Error("rebuilt head differs")
	}
	if len(c.Chain.UncleRefs()) != 1 {
		t.Error("uncle refs lost in binary round trip")
	}
}

func TestBinaryMatchesJSONLSemantics(t *testing.T) {
	blocks, txs := binarySample()
	reg := sampleRegistry(t)
	meta := &Meta{Vantages: []string{"EA"}, Seed: 3}

	dir := t.TempDir()
	jpath := filepath.Join(dir, "log.jsonl")
	bpath := filepath.Join(dir, "log.ethlog")
	if err := WriteCampaignFileFormat(jpath, FormatJSONL, meta, blocks, txs, reg); err != nil {
		t.Fatal(err)
	}
	if err := WriteCampaignFileFormat(bpath, FormatBinary, meta, blocks, txs, reg); err != nil {
		t.Fatal(err)
	}
	cj, err := ReadCampaignFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := ReadCampaignFile(bpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(cj.Blocks) != len(cb.Blocks) || len(cj.Txs) != len(cb.Txs) {
		t.Fatalf("record counts diverge: %d/%d vs %d/%d", len(cj.Blocks), len(cj.Txs), len(cb.Blocks), len(cb.Txs))
	}
	for i := range cj.Blocks {
		if cj.Blocks[i] != cb.Blocks[i] {
			t.Errorf("block %d: jsonl %+v vs binary %+v", i, cj.Blocks[i], cb.Blocks[i])
		}
	}
	for i := range cj.Txs {
		if cj.Txs[i] != cb.Txs[i] {
			t.Errorf("tx %d: jsonl %+v vs binary %+v", i, cj.Txs[i], cb.Txs[i])
		}
	}
	if !reflect.DeepEqual(cj.Meta, cb.Meta) {
		t.Errorf("meta diverges: %+v vs %+v", cj.Meta, cb.Meta)
	}
	if ChainFingerprint(cj.Chain) != ChainFingerprint(cb.Chain) {
		t.Error("rebuilt chains diverge across formats")
	}
	// The binary file should be substantially smaller.
	ji, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := os.Stat(bpath)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Size() >= ji.Size() {
		t.Errorf("binary file (%d bytes) not smaller than JSONL (%d bytes)", bi.Size(), ji.Size())
	}
}

func TestReaderFormatSniffing(t *testing.T) {
	var bbuf bytes.Buffer
	w := NewBinaryWriter(&bbuf)
	w.RecordBlock(measure.BlockRecord{Vantage: "EA", Hash: 1, Kind: "block"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(bbuf.Bytes()))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if r.Format() != FormatBinary {
		t.Errorf("sniffed %q, want binary", r.Format())
	}

	r = NewReader(strings.NewReader(`{"kind":"tx","tx":{"v":"EA"}}` + "\n"))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if r.Format() != FormatJSONL {
		t.Errorf("sniffed %q, want jsonl", r.Format())
	}

	// Pinned binary must reject a JSONL stream outright.
	r = NewReaderFormat(strings.NewReader(`{"kind":"tx"}`+"\n"), FormatBinary)
	if _, err := r.Next(); err == nil {
		t.Fatal("pinned binary reader accepted JSONL")
	}
	// Pinned JSONL chokes on the binary magic (not valid JSON).
	r = NewReaderFormat(bytes.NewReader(bbuf.Bytes()), FormatJSONL)
	if _, err := r.Next(); err == nil {
		t.Fatal("pinned JSONL reader accepted an ethlog stream")
	}
}

func TestBinaryDecodeCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.RecordBlock(measure.BlockRecord{Vantage: "EA", At: time.Second, Hash: 1, Kind: "block"})
	w.RecordTx(measure.TxRecord{Vantage: "EA", Hash: 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"truncated frame":   valid[:len(valid)-2],
		"truncated magic":   valid[:6],
		"zero length frame": append(append([]byte{}, binaryMagic[:]...), 0x00),
		"huge length frame": append(append([]byte{}, binaryMagic[:]...), 0xff, 0xff, 0xff, 0xff, 0x7f),
		"unknown kind":      append(append([]byte{}, binaryMagic[:]...), 0x01, 0x7e),
		"trailing garbage": func() []byte {
			// A valid tx frame payload with an extra byte appended and the
			// length prefix widened to cover it.
			var b bytes.Buffer
			w := NewBinaryWriter(&b)
			w.RecordTx(measure.TxRecord{Vantage: "X", Hash: 1})
			w.Flush()
			raw := append([]byte{}, b.Bytes()...)
			raw[len(binaryMagic)]++ // bump frame length by one
			return append(raw, 0xab)
		}(),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			r := NewReader(bytes.NewReader(data))
			for {
				_, err := r.Next()
				if err == io.EOF {
					if name != "truncated magic" { // short prefix falls back to JSONL-EOF
						t.Fatal("corrupt stream decoded cleanly")
					}
					return
				}
				if err != nil {
					return // errored, as it must
				}
			}
		})
	}
}

// FuzzDecode pins the decoder contract: arbitrary input errors or
// terminates cleanly, but never panics and never spins.
func FuzzDecode(f *testing.F) {
	blocks, txs := binarySample()
	var seed bytes.Buffer
	w := NewBinaryWriter(&seed)
	w.Write(&Entry{Kind: KindMeta, Meta: &Meta{Vantages: []string{"EA"}, Seed: 1}})
	for _, r := range blocks {
		w.RecordBlock(r)
	}
	for _, r := range txs {
		w.RecordTx(r)
	}
	w.Write(&Entry{Kind: KindChain, Chain: &ChainBlock{Hash: 1, Number: 100, TxHashes: []types.Hash{2, 3}, Uncles: []types.Hash{4}}})
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(binaryMagic[:])
	f.Add([]byte(`{"kind":"block","block":{"v":"EA"}}` + "\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1<<20; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}

// failAfterWriter errors every write after the first n bytes.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

func TestBinaryWriterStickyError(t *testing.T) {
	w := NewBinaryWriter(&failAfterWriter{n: len(binaryMagic)})
	w.Write(&Entry{Kind: KindMeta, Meta: &Meta{Seed: 1}})
	// The meta entry fits the bufio buffer; the failure must surface at
	// Flush and stick.
	if err := w.Flush(); err == nil {
		t.Fatal("flush over a full disk succeeded")
	}
	if w.Err() == nil {
		t.Fatal("Err() not sticky after failed flush")
	}
	before := w.Entries()
	w.RecordBlock(measure.BlockRecord{Vantage: "EA", Kind: "block"})
	if w.Entries() != before {
		t.Error("writer kept accepting records after error")
	}
}

func TestJSONLWriterErr(t *testing.T) {
	w := NewWriter(&failAfterWriter{})
	w.RecordBlock(measure.BlockRecord{Vantage: "EA", Kind: "block"})
	if err := w.Flush(); err == nil {
		t.Fatal("flush over a full disk succeeded")
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after failed flush")
	}
}

// TestHugeJSONLLine is the regression test for the old scanner token
// limit: a chain-dump line far beyond 64 KB must decode.
func TestHugeJSONLLine(t *testing.T) {
	hashes := make([]types.Hash, 40_000)
	for i := range hashes {
		hashes[i] = types.Hash(i + 1)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(&Entry{Kind: KindChain, Chain: &ChainBlock{Hash: 1, Number: 100, TxHashes: hashes}})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100_000 {
		t.Fatalf("test line too small to prove anything: %d bytes", buf.Len())
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	e, err := r.Next()
	if err != nil {
		t.Fatalf("big line: %v", err)
	}
	if e.Kind != KindChain || len(e.Chain.TxHashes) != len(hashes) {
		t.Fatalf("big line decoded wrong: kind=%q txs=%d", e.Kind, len(e.Chain.TxHashes))
	}
}

func TestEncodeZeroAllocs(t *testing.T) {
	w := NewBinaryWriter(io.Discard)
	block := measure.BlockRecord{Vantage: "WE-default", At: 123 * time.Millisecond, Hash: 99, Number: 1000, Miner: 3, Parent: 98, From: 17, Kind: "announce", NTxs: 12, Size: 4096}
	tx := measure.TxRecord{Vantage: "EA", At: 5 * time.Millisecond, Hash: 7, Sender: 2, Nonce: 11, From: 4}
	w.RecordBlock(block) // warm the scratch buffer
	w.RecordTx(tx)
	if avg := testing.AllocsPerRun(1000, func() { w.RecordBlock(block) }); avg != 0 {
		t.Errorf("RecordBlock allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { w.RecordTx(tx) }); avg != 0 {
		t.Errorf("RecordTx allocates %.1f/op, want 0", avg)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintZeroAllocs(t *testing.T) {
	fp := NewRecordFingerprinter()
	block := measure.BlockRecord{Vantage: "NA", At: -time.Millisecond, Hash: 99, Number: 1000, Miner: 3, Parent: 98, From: 17, Kind: "block", NTxs: 12, Size: 4096}
	tx := measure.TxRecord{Vantage: "EA", At: 5 * time.Millisecond, Hash: 7, Sender: 2, Nonce: 11, From: 4}
	fp.RecordBlock(block)
	fp.RecordTx(tx)
	if avg := testing.AllocsPerRun(1000, func() { fp.RecordBlock(block) }); avg != 0 {
		t.Errorf("fingerprint RecordBlock allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { fp.RecordTx(tx) }); avg != 0 {
		t.Errorf("fingerprint RecordTx allocates %.1f/op, want 0", avg)
	}
}

// TestFingerprintTracksWireFormat pins that the fingerprint hashes
// exactly the spill wire bytes: any divergence between the two paths
// would silently decouple checkpoint digests from the on-disk log.
func TestFingerprintTracksWireFormat(t *testing.T) {
	blocks, txs := binarySample()
	a, b := NewRecordFingerprinter(), NewRecordFingerprinter()
	for _, r := range blocks {
		a.RecordBlock(r)
		b.RecordBlock(r)
	}
	for _, r := range txs {
		a.RecordTx(r)
		b.RecordTx(r)
	}
	if a.Sum() != b.Sum() {
		t.Fatal("fingerprint not deterministic")
	}
	if a.Blocks() != uint64(len(blocks)) || a.Txs() != uint64(len(txs)) {
		t.Errorf("counts = %d/%d", a.Blocks(), a.Txs())
	}
	mut := blocks[0]
	mut.At++
	c := NewRecordFingerprinter()
	c.RecordBlock(mut)
	one := NewRecordFingerprinter()
	one.RecordBlock(blocks[0])
	if c.Sum() == one.Sum() {
		t.Error("fingerprint insensitive to record mutation")
	}
}
