package logs

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

// Format names an on-disk log encoding. The zero value means "use the
// default" (binary); readers always auto-detect, so the format only
// matters when writing.
type Format string

// Supported log encodings.
const (
	// FormatBinary is the compact ethlog v1 framing: a magic header
	// followed by uvarint-length-prefixed record frames. Default.
	FormatBinary Format = "binary"
	// FormatJSONL is the original JSON Lines encoding, retained for
	// interop with external tooling.
	FormatJSONL Format = "jsonl"
)

// Valid reports whether f names a known encoding ("" counts: it
// resolves to the default).
func (f Format) Valid() bool {
	switch f {
	case "", FormatBinary, FormatJSONL:
		return true
	}
	return false
}

// Resolve maps the zero value to the default encoding.
func (f Format) Resolve() Format {
	if f == "" {
		return FormatBinary
	}
	return f
}

// ParseFormat converts a CLI flag value into a Format.
func ParseFormat(s string) (Format, error) {
	f := Format(s)
	if !f.Valid() {
		return "", fmt.Errorf("logs: unknown format %q (want binary or jsonl)", s)
	}
	return f, nil
}

// binaryMagic opens every ethlog file: a non-ASCII lead byte (so a
// JSONL stream, which starts with '{', can never collide), the format
// name, the version byte, and a newline that corrupting FTP-style
// CRLF translation would destroy. PNG does the same dance.
var binaryMagic = [8]byte{0x89, 'E', 'T', 'H', 'L', 'G', 1, '\n'}

// Frame kind bytes (first byte of every frame payload).
const (
	frameMeta  = 0x01
	frameBlock = 0x02
	frameTx    = 0x03
	frameChain = 0x04
)

// Block-record Kind strings are drawn from a tiny closed set, so they
// compress to one byte; code 0 falls back to an inline string for
// forward compatibility.
const (
	blockKindOther    = 0x00
	blockKindBlock    = 0x01 // "block"
	blockKindAnnounce = 0x02 // "announce"
	blockKindFetched  = 0x03 // "fetched"
)

// maxFrameLen bounds a frame payload (128 MiB). Real frames are tens
// of bytes — the occasional chain block with a large tx list stays
// far below this — so anything bigger is a corrupt length prefix, and
// rejecting it keeps the decoder from allocating attacker-sized
// buffers.
const maxFrameLen = 1 << 27

// appendString encodes a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBlockRecord encodes one block observation as a frame payload.
// The same bytes feed the spill file and the record fingerprint, so
// the digest is pinned to the wire format.
func appendBlockRecord(b []byte, r *measure.BlockRecord) []byte {
	b = append(b, frameBlock)
	b = appendString(b, r.Vantage)
	b = binary.AppendVarint(b, int64(r.At))
	b = binary.AppendUvarint(b, uint64(r.Hash))
	b = binary.AppendUvarint(b, r.Number)
	b = binary.AppendVarint(b, int64(r.Miner))
	b = binary.AppendUvarint(b, uint64(r.Parent))
	b = binary.AppendVarint(b, int64(r.From))
	switch r.Kind {
	case "block":
		b = append(b, blockKindBlock)
	case "announce":
		b = append(b, blockKindAnnounce)
	case "fetched":
		b = append(b, blockKindFetched)
	default:
		b = append(b, blockKindOther)
		b = appendString(b, r.Kind)
	}
	b = binary.AppendVarint(b, int64(r.NTxs))
	b = binary.AppendVarint(b, int64(r.Size))
	return b
}

// appendTxRecord encodes one transaction observation.
func appendTxRecord(b []byte, r *measure.TxRecord) []byte {
	b = append(b, frameTx)
	b = appendString(b, r.Vantage)
	b = binary.AppendVarint(b, int64(r.At))
	b = binary.AppendUvarint(b, uint64(r.Hash))
	b = binary.AppendUvarint(b, uint64(r.Sender))
	b = binary.AppendUvarint(b, r.Nonce)
	b = binary.AppendVarint(b, int64(r.From))
	return b
}

// appendChainBlock encodes one chain-dump block.
func appendChainBlock(b []byte, cb *ChainBlock) []byte {
	b = append(b, frameChain)
	b = binary.AppendUvarint(b, uint64(cb.Hash))
	b = binary.AppendUvarint(b, cb.Number)
	b = binary.AppendUvarint(b, uint64(cb.Parent))
	b = binary.AppendVarint(b, int64(cb.Miner))
	b = binary.AppendUvarint(b, uint64(len(cb.TxHashes)))
	for _, h := range cb.TxHashes {
		b = binary.AppendUvarint(b, uint64(h))
	}
	b = binary.AppendUvarint(b, uint64(len(cb.Uncles)))
	for _, h := range cb.Uncles {
		b = binary.AppendUvarint(b, uint64(h))
	}
	b = binary.AppendUvarint(b, cb.TotalDiff)
	b = binary.AppendVarint(b, cb.MinedAtNs)
	b = binary.AppendVarint(b, int64(cb.Size))
	return b
}

// BinaryWriter streams entries as ethlog v1 frames. It implements
// measure.Recorder with a reusable scratch buffer: steady-state record
// encoding performs zero allocations.
type BinaryWriter struct {
	w       *bufio.Writer
	scratch []byte
	err     error
	n       int
}

var _ measure.Recorder = (*BinaryWriter)(nil)
var _ EntryWriter = (*BinaryWriter)(nil)

// NewBinaryWriter wraps w in an ethlog writer and emits the magic
// header (buffered; surfaced by Flush).
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	b := &BinaryWriter{w: bw, scratch: make([]byte, 0, 256)}
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		b.err = fmt.Errorf("logs: write magic: %w", err)
	}
	return b
}

// frameHeaderReserve is the scratch-buffer prefix reserved for the
// frame's uvarint length. Payloads encode after it and the length is
// back-filled, so header and payload go to the bufio writer as one
// slice of the reusable scratch buffer — no per-frame allocation
// (a local header array would escape through io.Writer).
const frameHeaderReserve = binary.MaxVarintLen64

// beginFrame resets scratch to the payload start.
func (w *BinaryWriter) beginFrame() []byte {
	if cap(w.scratch) < frameHeaderReserve {
		w.scratch = make([]byte, frameHeaderReserve, 256)
	}
	return w.scratch[:frameHeaderReserve]
}

// endFrame back-fills the length prefix for the payload now sitting
// at w.scratch[frameHeaderReserve:] and writes the frame.
func (w *BinaryWriter) endFrame() {
	if w.err != nil {
		return
	}
	payload := uint64(len(w.scratch) - frameHeaderReserve)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], payload)
	start := frameHeaderReserve - n
	copy(w.scratch[start:frameHeaderReserve], hdr[:n])
	if _, err := w.w.Write(w.scratch[start:]); err != nil {
		w.err = fmt.Errorf("logs: write frame: %w", err)
		return
	}
	w.n++
}

// RecordBlock implements measure.Recorder.
func (w *BinaryWriter) RecordBlock(r measure.BlockRecord) {
	if w.err != nil {
		return
	}
	w.scratch = appendBlockRecord(w.beginFrame(), &r)
	w.endFrame()
}

// RecordTx implements measure.Recorder.
func (w *BinaryWriter) RecordTx(r measure.TxRecord) {
	if w.err != nil {
		return
	}
	w.scratch = appendTxRecord(w.beginFrame(), &r)
	w.endFrame()
}

// Write emits one entry. Entries with a nil body for their kind are
// dropped (they carry no information; the JSONL decoder skips them
// too).
func (w *BinaryWriter) Write(e *Entry) {
	if w.err != nil {
		return
	}
	switch e.Kind {
	case KindMeta:
		data, err := json.Marshal(e.Meta)
		if err != nil {
			w.err = fmt.Errorf("logs: encode meta: %w", err)
			return
		}
		w.scratch = append(w.beginFrame(), frameMeta)
		w.scratch = append(w.scratch, data...)
		w.endFrame()
	case KindBlock:
		if e.Block != nil {
			w.RecordBlock(*e.Block)
		}
	case KindTx:
		if e.Tx != nil {
			w.RecordTx(*e.Tx)
		}
	case KindChain:
		if e.Chain != nil {
			w.scratch = appendChainBlock(w.beginFrame(), e.Chain)
			w.endFrame()
		}
	default:
		w.err = fmt.Errorf("logs: unknown entry kind %q", e.Kind)
	}
}

// Entries returns how many frames were written.
func (w *BinaryWriter) Entries() int { return w.n }

// Err returns the first write error seen, if any.
func (w *BinaryWriter) Err() error { return w.err }

// Flush drains buffered output and returns the first error seen.
func (w *BinaryWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("logs: flush: %w", err)
	}
	return w.err
}

// Decode errors. Wrapped with frame context by the Reader.
var (
	errTruncated = errors.New("truncated field")
	errTrailing  = errors.New("trailing bytes in frame")
)

// decoder walks one frame payload with full bounds checking: every
// malformed input yields an error, never a panic (pinned by
// FuzzDecode).
type decoder struct {
	p []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		return 0, errTruncated
	}
	d.p = d.p[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.p)
	if n <= 0 {
		return 0, errTruncated
	}
	d.p = d.p[n:]
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if len(d.p) == 0 {
		return 0, errTruncated
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b, nil
}

// str decodes a length-prefixed string, interning through tab: vantage
// names repeat millions of times per log, so each distinct string is
// allocated once. The map lookup on a []byte key conversion does not
// allocate.
func (d *decoder) str(tab map[string]string) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.p)) {
		return "", errTruncated
	}
	raw := d.p[:n]
	d.p = d.p[n:]
	if s, ok := tab[string(raw)]; ok {
		return s, nil
	}
	s := string(raw)
	tab[s] = s
	return s, nil
}

func (d *decoder) hashes() ([]types.Hash, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each hash costs at least one byte, so a count beyond the
	// remaining payload is a corrupt length — reject before allocating.
	if n > uint64(len(d.p)) {
		return nil, errTruncated
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]types.Hash, n)
	for i := range out {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = types.Hash(v)
	}
	return out, nil
}

func (d *decoder) done() error {
	if len(d.p) != 0 {
		return errTrailing
	}
	return nil
}

// decodeBinaryEntry decodes one frame payload into a fresh Entry.
// Fresh allocations (not struct reuse) keep the streaming contract
// identical to the JSONL path: callers may retain entries and the
// slices inside them.
func decodeBinaryEntry(p []byte, intern map[string]string) (*Entry, error) {
	d := decoder{p: p}
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case frameMeta:
		var m Meta
		if err := json.Unmarshal(d.p, &m); err != nil {
			return nil, fmt.Errorf("meta payload: %w", err)
		}
		return &Entry{Kind: KindMeta, Meta: &m}, nil
	case frameBlock:
		r := &measure.BlockRecord{}
		if r.Vantage, err = d.str(intern); err != nil {
			return nil, err
		}
		at, err := d.varint()
		if err != nil {
			return nil, err
		}
		r.At = time.Duration(at)
		h, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.Hash = types.Hash(h)
		if r.Number, err = d.uvarint(); err != nil {
			return nil, err
		}
		miner, err := d.varint()
		if err != nil {
			return nil, err
		}
		r.Miner = types.PoolID(miner)
		parent, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.Parent = types.Hash(parent)
		from, err := d.varint()
		if err != nil {
			return nil, err
		}
		r.From = types.NodeID(from)
		kc, err := d.byte()
		if err != nil {
			return nil, err
		}
		switch kc {
		case blockKindBlock:
			r.Kind = "block"
		case blockKindAnnounce:
			r.Kind = "announce"
		case blockKindFetched:
			r.Kind = "fetched"
		case blockKindOther:
			if r.Kind, err = d.str(intern); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown block kind code %d", kc)
		}
		ntxs, err := d.varint()
		if err != nil {
			return nil, err
		}
		r.NTxs = int(ntxs)
		size, err := d.varint()
		if err != nil {
			return nil, err
		}
		r.Size = int(size)
		if err := d.done(); err != nil {
			return nil, err
		}
		return &Entry{Kind: KindBlock, Block: r}, nil
	case frameTx:
		r := &measure.TxRecord{}
		if r.Vantage, err = d.str(intern); err != nil {
			return nil, err
		}
		at, err := d.varint()
		if err != nil {
			return nil, err
		}
		r.At = time.Duration(at)
		h, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.Hash = types.Hash(h)
		sender, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.Sender = types.AccountID(sender)
		if r.Nonce, err = d.uvarint(); err != nil {
			return nil, err
		}
		from, err := d.varint()
		if err != nil {
			return nil, err
		}
		r.From = types.NodeID(from)
		if err := d.done(); err != nil {
			return nil, err
		}
		return &Entry{Kind: KindTx, Tx: r}, nil
	case frameChain:
		cb := &ChainBlock{}
		h, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		cb.Hash = types.Hash(h)
		if cb.Number, err = d.uvarint(); err != nil {
			return nil, err
		}
		parent, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		cb.Parent = types.Hash(parent)
		miner, err := d.varint()
		if err != nil {
			return nil, err
		}
		cb.Miner = types.PoolID(miner)
		if cb.TxHashes, err = d.hashes(); err != nil {
			return nil, err
		}
		if cb.Uncles, err = d.hashes(); err != nil {
			return nil, err
		}
		if cb.TotalDiff, err = d.uvarint(); err != nil {
			return nil, err
		}
		if cb.MinedAtNs, err = d.varint(); err != nil {
			return nil, err
		}
		size, err := d.varint()
		if err != nil {
			return nil, err
		}
		cb.Size = int(size)
		if err := d.done(); err != nil {
			return nil, err
		}
		return &Entry{Kind: KindChain, Chain: cb}, nil
	default:
		return nil, fmt.Errorf("unknown frame kind 0x%02x", kind)
	}
}
