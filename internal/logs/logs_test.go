package logs

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

func sampleRecords() ([]measure.BlockRecord, []measure.TxRecord) {
	blocks := []measure.BlockRecord{
		{Vantage: "EA", At: 100 * time.Millisecond, Hash: 5, Number: 101, Miner: 1, Parent: 4, From: 7, Kind: "block", NTxs: 3, Size: 870},
		{Vantage: "NA", At: 180 * time.Millisecond, Hash: 5, Number: 101, From: 8, Kind: "announce", Size: 48},
	}
	txs := []measure.TxRecord{
		{Vantage: "EA", At: 50 * time.Millisecond, Hash: 21, Sender: 3, Nonce: 0, From: 7},
		{Vantage: "WE", At: 70 * time.Millisecond, Hash: 21, Sender: 3, Nonce: 0, From: 9},
	}
	return blocks, txs
}

func sampleRegistry(t *testing.T) *chain.Registry {
	t.Helper()
	issuer := types.NewHashIssuer(5)
	reg := chain.NewRegistry(100, issuer)
	g := reg.Genesis()
	b1 := &types.Block{
		Hash: issuer.Next(), Number: 101, ParentHash: g.Hash, Miner: 1,
		TxHashes: []types.Hash{21}, MinedAt: 90 * time.Millisecond, Size: 650,
	}
	if err := reg.Add(b1); err != nil {
		t.Fatal(err)
	}
	u := &types.Block{Hash: issuer.Next(), Number: 101, ParentHash: g.Hash, Miner: 2, Size: 540}
	if err := reg.Add(u); err != nil {
		t.Fatal(err)
	}
	b2 := &types.Block{
		Hash: issuer.Next(), Number: 102, ParentHash: b1.Hash, Miner: 1,
		Uncles: []types.Hash{u.Hash}, Size: 540,
	}
	if err := reg.Add(b2); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRoundTripInMemory(t *testing.T) {
	blocks, txs := sampleRecords()
	reg := sampleRegistry(t)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range blocks {
		w.RecordBlock(r)
	}
	for _, r := range txs {
		w.RecordTx(r)
	}
	WriteChain(w, reg)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Entries() != len(blocks)+len(txs)+reg.Len() {
		t.Errorf("entries = %d", w.Entries())
	}

	gotBlocks, gotTxs, gotReg, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotBlocks) != len(blocks) {
		t.Fatalf("blocks = %d", len(gotBlocks))
	}
	for i := range blocks {
		if gotBlocks[i] != blocks[i] {
			t.Errorf("block record %d = %+v, want %+v", i, gotBlocks[i], blocks[i])
		}
	}
	for i := range txs {
		if gotTxs[i] != txs[i] {
			t.Errorf("tx record %d mismatch", i)
		}
	}
	if gotReg == nil {
		t.Fatal("registry not rebuilt")
	}
	if gotReg.Len() != reg.Len() {
		t.Errorf("rebuilt registry has %d blocks, want %d", gotReg.Len(), reg.Len())
	}
	if gotReg.Head().Hash != reg.Head().Hash {
		t.Error("rebuilt head differs")
	}
	// Uncle references survive.
	if len(gotReg.UncleRefs()) != 1 {
		t.Error("uncle refs lost in round trip")
	}
	// MinedAt round-trips through nanoseconds.
	main := gotReg.MainChain()
	if main[1].MinedAt != 90*time.Millisecond {
		t.Errorf("MinedAt = %v", main[1].MinedAt)
	}
}

func TestReaderSkipsBlankLinesAndReportsCorruption(t *testing.T) {
	input := "\n" + `{"kind":"tx","tx":{"v":"EA","t":1,"h":2,"a":3,"n":4,"f":5}}` + "\n\nnot-json\n"
	r := NewReader(strings.NewReader(input))
	e, err := r.Next()
	if err != nil || e.Kind != KindTx {
		t.Fatalf("first entry: %+v, %v", e, err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("corrupt line must error")
	}
}

func TestLoadUnknownKind(t *testing.T) {
	if _, _, _, err := Load(strings.NewReader(`{"kind":"mystery"}` + "\n")); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestLoadEmptyStream(t *testing.T) {
	blocks, txs, reg, err := Load(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if blocks != nil || txs != nil || reg != nil {
		t.Error("empty stream should load nothing")
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "campaign.jsonl")
	blocks, txs := sampleRecords()
	reg := sampleRegistry(t)
	if err := WriteFile(path, blocks, txs, reg); err != nil {
		t.Fatal(err)
	}
	gotBlocks, gotTxs, gotReg, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotBlocks) != 2 || len(gotTxs) != 2 || gotReg == nil {
		t.Errorf("read back %d blocks, %d txs, reg=%v", len(gotBlocks), len(gotTxs), gotReg != nil)
	}
}

func TestWriteFileWithoutChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "norec.jsonl")
	if err := WriteFile(path, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	blocks, txs, reg, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if blocks != nil || txs != nil || reg != nil {
		t.Error("expected an empty campaign file")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, _, err := ReadFile(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestWriterRecorderInterface(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var rec measure.Recorder = w
	rec.RecordBlock(measure.BlockRecord{Vantage: "EA", Hash: 1, Kind: "block"})
	rec.RecordTx(measure.TxRecord{Vantage: "EA", Hash: 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("wrote %d lines", lines)
	}
}

func TestCampaignFileWithMetadata(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.jsonl")
	meta := &Meta{
		PoolNames:         []string{"Ethermine", "Sparkpool"},
		Vantages:          []string{"NA", "EA", "WE", "CE"},
		RedundancyVantage: "WE-default",
		InterBlockNs:      13_300_000_000,
		DurationNs:        int64(2 * time.Hour),
		NetworkSize:       220,
		Seed:              7,
	}
	blocks, txs := sampleRecords()
	reg := sampleRegistry(t)
	if err := WriteCampaignFile(path, meta, blocks, txs, reg); err != nil {
		t.Fatal(err)
	}
	c, err := ReadCampaignFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta == nil {
		t.Fatal("metadata lost")
	}
	if c.Meta.Seed != 7 || c.Meta.NetworkSize != 220 || c.Meta.RedundancyVantage != "WE-default" {
		t.Errorf("meta = %+v", c.Meta)
	}
	if len(c.Meta.PoolNames) != 2 || c.Meta.PoolNames[0] != "Ethermine" {
		t.Errorf("pool names = %v", c.Meta.PoolNames)
	}
	if len(c.Meta.Vantages) != 4 {
		t.Errorf("vantages = %v", c.Meta.Vantages)
	}
	if time.Duration(c.Meta.InterBlockNs) != 13300*time.Millisecond {
		t.Errorf("inter-block = %d", c.Meta.InterBlockNs)
	}
	if len(c.Blocks) != 2 || len(c.Txs) != 2 || c.Chain == nil {
		t.Error("records or chain lost alongside metadata")
	}
}

func TestChainBuilderIncremental(t *testing.T) {
	var b ChainBuilder
	if b.Registry() != nil {
		t.Fatal("empty builder must return nil registry")
	}
	if err := b.Add(&ChainBlock{Hash: 1, Number: 100}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(&ChainBlock{Hash: 2, Number: 101, Parent: 1, Miner: 3, MinedAtNs: int64(5 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	reg := b.Registry()
	if reg == nil || reg.Len() != 2 {
		t.Fatalf("registry len = %v", reg)
	}
	blk, ok := reg.Get(2)
	if !ok || blk.Miner != 3 || blk.MinedAt != 5*time.Second || blk.ParentHash != 1 {
		t.Fatalf("rebuilt block = %+v", blk)
	}
	// An orphan entry (unknown parent) must surface as an error.
	if err := b.Add(&ChainBlock{Hash: 9, Number: 200, Parent: 42}); err == nil {
		t.Fatal("orphan chain entry accepted")
	}
}

func TestFileWriterStreams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "stream.jsonl")
	fw, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fw.RecordBlock(measure.BlockRecord{Vantage: "NA", Hash: 7, Kind: "block"})
	fw.RecordTx(measure.TxRecord{Vantage: "EA", Hash: 8, Sender: 1})
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	blocks, txs, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0].Hash != 7 || len(txs) != 1 || txs[0].Hash != 8 {
		t.Fatalf("roundtrip = %+v / %+v", blocks, txs)
	}
}
