package logs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

// Checkpoint is one logical campaign checkpoint: not a serialized
// scheduler (pending events hold closures and live object graphs that
// cannot round-trip through disk), but a verifiable barrier marker a
// deterministic re-execution is checked against. The simulation is a
// pure function of (Config, Seed), so restoring a killed run means
// replaying it from the start and proving — via the fingerprints below
// — that the replay passed through the exact same state at the
// checkpointed virtual time. A replay that diverges (code change,
// config drift, nondeterminism bug) fails loudly instead of silently
// producing different results under the same job id.
type Checkpoint struct {
	// SimTimeNs is the virtual time of the barrier, in nanoseconds
	// since the simulation epoch.
	SimTimeNs int64 `json:"sim_time_ns"`
	// BlockRecords and TxRecords count the measurement records emitted
	// up to the barrier.
	BlockRecords uint64 `json:"block_records"`
	TxRecords    uint64 `json:"tx_records"`
	// Blocks is the block-registry size at the barrier.
	Blocks int `json:"blocks"`
	// RecordFingerprint is the running SHA-256 over every measurement
	// record emitted up to the barrier, in emission order.
	RecordFingerprint string `json:"record_fingerprint"`
	// ChainFingerprint hashes the full block registry at the barrier.
	ChainFingerprint string `json:"chain_fingerprint"`
	// WallTime stamps when the checkpoint was written (informational;
	// not part of the verified state).
	WallTime time.Time `json:"wall_time"`
}

// WriteCheckpointFile atomically persists a checkpoint: written to a
// temp file in the target directory, then renamed over path, so a
// crash mid-write never leaves a truncated checkpoint behind.
func WriteCheckpointFile(path string, ck Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("logs: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("logs: checkpoint temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("logs: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("logs: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("logs: rename checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint written by WriteCheckpointFile.
func ReadCheckpointFile(path string) (Checkpoint, error) {
	var ck Checkpoint
	data, err := os.ReadFile(path)
	if err != nil {
		return ck, fmt.Errorf("logs: read checkpoint: %w", err)
	}
	if err := json.Unmarshal(data, &ck); err != nil {
		return ck, fmt.Errorf("logs: parse checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// RecordFingerprinter folds every measurement record into a running
// SHA-256, in emission order. It implements measure.Recorder, so it
// taps the record bus exactly like a log writer. Records are hashed
// through the same scratch-buffer binary encoding the ethlog spill
// writer uses — fmt-free, zero allocations per record — so the digest
// is pinned to the wire format and comparable across the batch,
// streaming and sharded pipelines.
//
// Sum does not disturb the running state, so mid-run checkpoint
// fingerprints and the final fingerprint come from one instance.
type RecordFingerprinter struct {
	h       hash.Hash
	scratch []byte
	blocks  uint64
	txs     uint64
}

// NewRecordFingerprinter creates an empty fingerprinter.
func NewRecordFingerprinter() *RecordFingerprinter {
	return &RecordFingerprinter{h: sha256.New(), scratch: make([]byte, 0, 256)}
}

// RecordBlock folds one block observation into the fingerprint.
func (r *RecordFingerprinter) RecordBlock(rec measure.BlockRecord) {
	r.blocks++
	r.scratch = appendBlockRecord(r.scratch[:0], &rec)
	r.h.Write(r.scratch)
}

// RecordTx folds one transaction observation into the fingerprint.
func (r *RecordFingerprinter) RecordTx(rec measure.TxRecord) {
	r.txs++
	r.scratch = appendTxRecord(r.scratch[:0], &rec)
	r.h.Write(r.scratch)
}

// Blocks returns how many block records have been folded in.
func (r *RecordFingerprinter) Blocks() uint64 { return r.blocks }

// Txs returns how many transaction records have been folded in.
func (r *RecordFingerprinter) Txs() uint64 { return r.txs }

// Sum returns the hex fingerprint of everything recorded so far
// without disturbing the running state.
func (r *RecordFingerprinter) Sum() string {
	return hex.EncodeToString(r.h.Sum(nil))
}

// ChainFingerprint hashes the full block registry in insertion order —
// the same digest the core equivalence suite compares across pipeline
// variants. Each block is hashed through the ethlog chain-frame
// encoding, the exact bytes a binary chain dump would contain.
func ChainFingerprint(reg *chain.Registry) string {
	h := sha256.New()
	scratch := make([]byte, 0, 256)
	reg.Blocks(func(b *types.Block) bool {
		cb := ChainBlock{
			Hash:      b.Hash,
			Number:    b.Number,
			Parent:    b.ParentHash,
			Miner:     b.Miner,
			TxHashes:  b.TxHashes,
			Uncles:    b.Uncles,
			TotalDiff: b.TotalDiff,
			MinedAtNs: int64(b.MinedAt),
			Size:      b.Size,
		}
		scratch = appendChainBlock(scratch[:0], &cb)
		h.Write(scratch)
		return true
	})
	return hex.EncodeToString(h.Sum(nil))
}
