package logs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleCheckpoint() Checkpoint {
	return Checkpoint{
		SimTimeNs:         int64(30 * time.Minute),
		BlockRecords:      1234,
		TxRecords:         5678,
		Blocks:            99,
		RecordFingerprint: "aa11",
		ChainFingerprint:  "bb22",
		WallTime:          time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	want := sampleCheckpoint()
	if err := WriteCheckpointFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
}

// TestCheckpointWriteFailureLeavesNoDebris pins the atomic temp+rename
// contract on the failure path: when the final rename cannot land
// (here: the target path is an existing directory), the write must
// error and the directory must hold no leftover temp files a resume
// scan could mistake for state.
func TestCheckpointWriteFailureLeavesNoDebris(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "checkpoint.json")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpointFile(target, sampleCheckpoint()); err == nil {
		t.Fatal("rename onto a directory must fail")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %q left behind after failed write", e.Name())
		}
	}
}

// TestCheckpointWriteFailureKeepsPrevious: a failed overwrite must not
// disturb the previously committed checkpoint.
func TestCheckpointWriteFailureKeepsPrevious(t *testing.T) {
	missingParent := filepath.Join(t.TempDir(), "absent", "checkpoint.json")
	if err := WriteCheckpointFile(missingParent, sampleCheckpoint()); err == nil {
		t.Fatal("write into a missing directory must fail")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	want := sampleCheckpoint()
	if err := WriteCheckpointFile(path, want); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a half-written temp file next to the
	// committed checkpoint. Resume must still read the committed state.
	if err := os.WriteFile(filepath.Join(dir, ".checkpoint-crash.tmp"), []byte(`{"sim_`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("committed checkpoint disturbed: %+v", got)
	}
}

func TestCheckpointReadRejectsPartialFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := WriteCheckpointFile(path, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err == nil {
		t.Fatal("truncated checkpoint must not parse")
	}
	if _, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing checkpoint must error")
	}
}
