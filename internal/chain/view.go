package chain

import (
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/types"
)

// View is one node's live view of the blockchain: which blocks it has
// imported, its current head under the protocol's fork-choice rule,
// and the side-chain blocks it could reference as uncles when mining.
//
// Views hold per-node state only; block bodies live once in the shared
// Registry. Old entries are pruned beyond a height window to keep
// memory proportional to network size rather than chain length.
type View struct {
	reg      *Registry
	proto    consensus.Protocol // copied from reg: Import is the hot path
	refDepth uint64             // cached proto.MaxReferenceDepth()
	known    map[types.Hash]bool
	byHeight map[uint64][]types.Hash
	head     *types.Block
	minKept  uint64 // lowest height still tracked in byHeight/known

	// pruneWindow controls how far behind the head block metadata is
	// retained. It must exceed the protocol's reference window and the
	// longest plausible reorg; gossip only concerns recent blocks.
	pruneWindow uint64
}

// NewView creates a view anchored at the registry's genesis, applying
// the registry's consensus protocol.
func NewView(reg *Registry) *View {
	g := reg.Genesis()
	refDepth := reg.Protocol().MaxReferenceDepth()
	// The retention window must exceed the protocol's reference window,
	// or deep uncle candidates would be pruned before they could ever
	// be referenced (silently shrinking a ghost-inclusive depth=200 run
	// to the prune horizon). Double the reference depth keeps headroom
	// for reorgs on top of the deepest possible reference.
	pruneWindow := uint64(128)
	if refDepth*2 > pruneWindow {
		pruneWindow = refDepth * 2
	}
	v := &View{
		reg:         reg,
		proto:       reg.Protocol(),
		refDepth:    refDepth,
		known:       make(map[types.Hash]bool, 64),
		byHeight:    make(map[uint64][]types.Hash, 64),
		head:        g,
		minKept:     g.Number,
		pruneWindow: pruneWindow,
	}
	v.known[g.Hash] = true
	v.byHeight[g.Number] = append(v.byHeight[g.Number], g.Hash)
	return v
}

// Head returns the node's current head block.
func (v *View) Head() *types.Block { return v.head }

// Knows reports whether the node has imported (or pruned, for very old
// heights where knowledge is assumed) the given block.
func (v *View) Knows(h types.Hash) bool {
	if v.known[h] {
		return true
	}
	// Blocks below the prune horizon were either imported and forgotten
	// or are ancient; either way the node treats them as known so that
	// gossip logic never re-requests history.
	if b, ok := v.reg.Get(h); ok && b.Number < v.minKept {
		return true
	}
	return false
}

// Import adds a block to the view and applies the protocol's
// fork-choice rule: the head moves when the protocol prefers the new
// block; on a tie the incumbent wins (first-seen rule, as in Geth). It
// reports whether the head changed.
func (v *View) Import(b *types.Block) bool {
	if v.known[b.Hash] {
		return false
	}
	v.known[b.Hash] = true
	if b.Number >= v.minKept {
		v.byHeight[b.Number] = append(v.byHeight[b.Number], b.Hash)
	}
	reorg := v.proto.Prefer(b, v.head)
	if reorg {
		v.head = b
		v.prune()
	}
	return reorg
}

func (v *View) prune() {
	if v.head.Number < v.minKept+v.pruneWindow*2 {
		return
	}
	keepFrom := v.head.Number - v.pruneWindow
	for h := v.minKept; h < keepFrom; h++ {
		for _, bh := range v.byHeight[h] {
			delete(v.known, bh)
		}
		delete(v.byHeight, h)
	}
	v.minKept = keepFrom
}

// UncleCandidates returns up to max side-chain blocks that would be
// valid uncles for a block extending the current head, preferring
// older candidates first (they expire soonest). This mirrors the
// behaviour of Geth's miner, which sweeps its "possible uncles" set.
func (v *View) UncleCandidates(max int) []types.Hash {
	return v.UncleCandidatesFor(v.head, max)
}

// UncleCandidatesFor is UncleCandidates for a block extending an
// arbitrary parent — mining pools use it because their mining job may
// briefly lag the gateway's imported head.
func (v *View) UncleCandidatesFor(parent *types.Block, max int) []types.Hash {
	if max <= 0 {
		return nil
	}
	window := v.refDepth
	newNumber := parent.Number + 1
	var lo uint64
	if newNumber > window {
		lo = newNumber - window
	}
	var out []types.Hash
	for height := lo; height < newNumber && len(out) < max; height++ {
		hashes := v.byHeight[height]
		for _, h := range hashes {
			if len(out) >= max {
				break
			}
			b, ok := v.reg.Get(h)
			if !ok {
				continue
			}
			if v.reg.ValidUncle(b, parent) {
				out = append(out, h)
			}
		}
	}
	return out
}

// KnownAtHeight returns the hashes the view tracks at a height
// (diagnostics and tests).
func (v *View) KnownAtHeight(n uint64) []types.Hash {
	out := make([]types.Hash, len(v.byHeight[n]))
	copy(out, v.byHeight[n])
	return out
}
