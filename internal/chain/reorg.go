package chain

import "ethmeasure/internal/types"

// Reorg computes the chain segments abandoned and adopted when a head
// moves from oldHead to newHead: abandoned blocks descend from the
// common ancestor on the old branch (newest first), adopted blocks on
// the new branch (oldest first). The walk gives up after maxDepth steps
// on either side (deep reorgs do not occur in these simulations; the
// paper's longest fork is 3 blocks).
func Reorg(reg *Registry, oldHead, newHead *types.Block, maxDepth int) (abandoned, adopted []*types.Block) {
	a, b := oldHead, newHead
	steps := 0
	for a.Number > b.Number && steps < maxDepth {
		abandoned = append(abandoned, a)
		a = reg.MustGet(a.ParentHash)
		steps++
	}
	for b.Number > a.Number && steps < maxDepth {
		adopted = append(adopted, b)
		b = reg.MustGet(b.ParentHash)
		steps++
	}
	for a.Hash != b.Hash && steps < maxDepth {
		abandoned = append(abandoned, a)
		adopted = append(adopted, b)
		if a.ParentHash.IsZero() || b.ParentHash.IsZero() {
			break
		}
		a = reg.MustGet(a.ParentHash)
		b = reg.MustGet(b.ParentHash)
		steps++
	}
	// adopted was collected newest-first; reverse to oldest-first.
	for i, j := 0, len(adopted)-1; i < j; i, j = i+1, j-1 {
		adopted[i], adopted[j] = adopted[j], adopted[i]
	}
	return abandoned, adopted
}
