package chain

import (
	"testing"
	"testing/quick"

	"ethmeasure/internal/types"
)

// testChain is a builder for registry fixtures.
type testChain struct {
	t      *testing.T
	reg    *Registry
	issuer *types.HashIssuer
}

func newTestChain(t *testing.T) *testChain {
	t.Helper()
	issuer := types.NewHashIssuer(9)
	return &testChain{t: t, reg: NewRegistry(100, issuer), issuer: issuer}
}

// extend mines a block on top of parent and registers it.
func (tc *testChain) extend(parent *types.Block, miner types.PoolID, uncles ...types.Hash) *types.Block {
	tc.t.Helper()
	b := &types.Block{
		Hash:       tc.issuer.Next(),
		Number:     parent.Number + 1,
		ParentHash: parent.Hash,
		Miner:      miner,
		Uncles:     uncles,
		Difficulty: 1,
	}
	if err := tc.reg.Add(b); err != nil {
		tc.t.Fatalf("add block: %v", err)
	}
	return b
}

func TestRegistryGenesis(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	if g.Number != 100 {
		t.Errorf("genesis number %d", g.Number)
	}
	if tc.reg.Len() != 1 {
		t.Errorf("len = %d", tc.reg.Len())
	}
	if got, ok := tc.reg.Get(g.Hash); !ok || got != g {
		t.Error("Get(genesis) failed")
	}
}

func TestRegistryAddErrors(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	b := tc.extend(g, 1)

	dup := *b
	if err := tc.reg.Add(&dup); err == nil {
		t.Error("duplicate add must error")
	}
	if err := tc.reg.Add(&types.Block{
		Hash:       tc.issuer.Next(),
		Number:     102,
		ParentHash: types.Hash(0xdead),
	}); err == nil {
		t.Error("unknown parent must error")
	}
	if err := tc.reg.Add(&types.Block{
		Hash:       tc.issuer.Next(),
		Number:     g.Number + 5, // skips heights
		ParentHash: g.Hash,
	}); err == nil {
		t.Error("non-consecutive number must error")
	}
}

func TestRegistryTotalDifficultyAccumulates(t *testing.T) {
	tc := newTestChain(t)
	b1 := tc.extend(tc.reg.Genesis(), 1)
	b2 := tc.extend(b1, 1)
	if b1.TotalDiff != 2 || b2.TotalDiff != 3 {
		t.Errorf("total difficulties %d, %d", b1.TotalDiff, b2.TotalDiff)
	}
}

func TestRegistryHeadPrefersHeavierThenEarlier(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	a1 := tc.extend(g, 1)
	b1 := tc.extend(g, 2) // same height fork, added later
	if got := tc.reg.Head(); got != a1 {
		t.Errorf("tie should keep first-created block, got %s", got.Hash)
	}
	b2 := tc.extend(b1, 2)
	if got := tc.reg.Head(); got != b2 {
		t.Errorf("heavier branch should win, got %s", got.Hash)
	}
}

func TestRegistryMainChain(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	a1 := tc.extend(g, 1)
	tc.extend(g, 2) // fork at same height
	a2 := tc.extend(a1, 1)
	a3 := tc.extend(a2, 3)

	main := tc.reg.MainChain()
	wantHashes := []types.Hash{g.Hash, a1.Hash, a2.Hash, a3.Hash}
	if len(main) != len(wantHashes) {
		t.Fatalf("main chain length %d, want %d", len(main), len(wantHashes))
	}
	for i, b := range main {
		if b.Hash != wantHashes[i] {
			t.Errorf("main[%d] = %s, want %s", i, b.Hash, wantHashes[i])
		}
		if i > 0 && b.Number != main[i-1].Number+1 {
			t.Error("main chain heights not contiguous")
		}
	}
	set := tc.reg.MainChainSet()
	if len(set) != 4 || !set[a3.Hash] {
		t.Error("MainChainSet mismatch")
	}
}

func TestRegistryChildrenAndAtHeight(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	a := tc.extend(g, 1)
	b := tc.extend(g, 2)
	kids := tc.reg.Children(g.Hash)
	if len(kids) != 2 || kids[0] != a.Hash || kids[1] != b.Hash {
		t.Errorf("children = %v", kids)
	}
	at := tc.reg.AtHeight(101)
	if len(at) != 2 {
		t.Errorf("AtHeight(101) = %v", at)
	}
	if len(tc.reg.AtHeight(999)) != 0 {
		t.Error("unknown height should be empty")
	}
}

func TestRegistryIsAncestor(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	b1 := tc.extend(g, 1)
	b2 := tc.extend(b1, 1)
	b3 := tc.extend(b2, 1)
	if !tc.reg.IsAncestor(b1.Hash, b3.Hash, 10) {
		t.Error("b1 should be ancestor of b3")
	}
	if !tc.reg.IsAncestor(b3.Hash, b3.Hash, 0) {
		t.Error("block is its own ancestor at depth 0")
	}
	if tc.reg.IsAncestor(b1.Hash, b3.Hash, 1) {
		t.Error("depth bound not respected")
	}
	if tc.reg.IsAncestor(b3.Hash, b1.Hash, 10) {
		t.Error("descendant is not an ancestor")
	}
}

func TestValidUncleRules(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	a1 := tc.extend(g, 1)
	u1 := tc.extend(g, 2) // sibling of a1: valid uncle for blocks on a-chain
	a2 := tc.extend(a1, 1)

	if !tc.reg.ValidUncle(u1, a2) {
		t.Error("sibling-branch child should be a valid uncle")
	}
	if tc.reg.ValidUncle(a1, a2) {
		t.Error("an ancestor is not a valid uncle")
	}

	// A fork-of-a-fork (length-2 side chain) is unrecognizable: its
	// parent is a side block, not an ancestor — Table III's finding.
	u2 := tc.extend(u1, 2)
	if tc.reg.ValidUncle(u2, a2) {
		t.Error("second block of a side chain must not validate as uncle")
	}

	// Referencing consumes the uncle within the window.
	a3 := tc.extend(a2, 1, u1.Hash)
	if tc.reg.ValidUncle(u1, a3) {
		t.Error("already-referenced uncle must be rejected")
	}

	// Depth limit: uncles older than MaxUncleDepth generations expire.
	head := a3
	for i := 0; i < MaxUncleDepth; i++ {
		head = tc.extend(head, 1)
	}
	fresh := tc.extend(g, 3) // another sibling at height 101
	if tc.reg.ValidUncle(fresh, head) {
		t.Error("uncle beyond depth window must be rejected")
	}
}

func TestUncleRefs(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	a1 := tc.extend(g, 1)
	u1 := tc.extend(g, 2)
	a2 := tc.extend(a1, 1, u1.Hash)
	tc.extend(a2, 1)

	refs := tc.reg.UncleRefs()
	if got := refs[u1.Hash]; len(got) != 1 || got[0] != a2.Hash {
		t.Errorf("UncleRefs[u1] = %v", got)
	}
	if len(refs) != 1 {
		t.Errorf("refs = %v", refs)
	}
}

func TestRegistryBlocksIterationOrderAndStop(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	b1 := tc.extend(g, 1)
	tc.extend(b1, 1)
	var seen []types.Hash
	tc.reg.Blocks(func(b *types.Block) bool {
		seen = append(seen, b.Hash)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != g.Hash || seen[1] != b1.Hash {
		t.Errorf("iteration %v", seen)
	}
}

func TestMustGetPanicsOnMissing(t *testing.T) {
	tc := newTestChain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on missing hash should panic")
		}
	}()
	tc.reg.MustGet(types.Hash(0xbeef))
}

func TestSortHashes(t *testing.T) {
	hs := []types.Hash{3, 1, 2}
	SortHashes(hs)
	if hs[0] != 1 || hs[1] != 2 || hs[2] != 3 {
		t.Errorf("sorted = %v", hs)
	}
}

// Property: after growing random fork structures, the head always has
// the maximal total difficulty and the main chain is contiguous.
func TestRegistryForkChoiceProperty(t *testing.T) {
	f := func(choices []uint8) bool {
		issuer := types.NewHashIssuer(3)
		reg := NewRegistry(0, issuer)
		blocks := []*types.Block{reg.Genesis()}
		for _, c := range choices {
			parent := blocks[int(c)%len(blocks)]
			b := &types.Block{
				Hash:       issuer.Next(),
				Number:     parent.Number + 1,
				ParentHash: parent.Hash,
				Miner:      1,
			}
			if err := reg.Add(b); err != nil {
				return false
			}
			blocks = append(blocks, b)
		}
		head := reg.Head()
		maxTD := uint64(0)
		reg.Blocks(func(b *types.Block) bool {
			if b.TotalDiff > maxTD {
				maxTD = b.TotalDiff
			}
			return true
		})
		if head.TotalDiff != maxTD {
			return false
		}
		main := reg.MainChain()
		for i := 1; i < len(main); i++ {
			if main[i].Number != main[i-1].Number+1 || main[i].ParentHash != main[i-1].Hash {
				return false
			}
		}
		return main[len(main)-1] == head
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
