// Package chain implements the blockchain substrate: a global registry
// of every block produced during a run, per-node chain views applying
// the configured consensus protocol's fork-choice and
// reference-validity rules (internal/consensus; Ethereum by default),
// and the substrate behind the paper's Table III fork classifier and
// the one-miner-fork analysis (§III-C4, §III-C5).
package chain

import (
	"fmt"
	"sort"

	"ethmeasure/internal/consensus"
	"ethmeasure/internal/types"
)

// MaxUncleDepth is how many generations back an uncle's parent may sit
// relative to the including block (Ethereum: uncle.number ≥
// block.number − 6, i.e. "within 7 generations").
//
// Deprecated: this is the ethereum protocol's parameter, kept for
// callers that predate pluggable consensus. Code that must work across
// protocols reads Registry.Protocol().MaxReferenceDepth() instead.
const MaxUncleDepth = consensus.EthereumUncleDepth

// MaxUnclesPerBlock is Ethereum's cap on uncle references per block.
//
// Deprecated: this is the ethereum protocol's parameter, kept for
// callers that predate pluggable consensus. Code that must work across
// protocols reads Registry.Protocol().MaxReferencesPerBlock() instead.
const MaxUnclesPerBlock = consensus.EthereumUnclesPerBlock

// Registry is the global, append-only store of all blocks created in a
// simulation, including every fork. The analysis pipeline classifies
// forks and determines the final main chain from it. It is the
// simulation-wide source of truth; per-node state lives in View.
type Registry struct {
	blocks   map[types.Hash]*types.Block
	children map[types.Hash][]types.Hash
	byHeight map[uint64][]types.Hash
	genesis  *types.Block
	order    []types.Hash // insertion order, deterministic iteration

	// proto is the consensus rule set the chain runs under: fork
	// choice, reference (uncle) validity, reward schedule. Ethereum
	// unless SetProtocol installs another before blocks are added.
	proto consensus.Protocol
	// refDepth caches proto.MaxReferenceDepth() — protocol parameters
	// are immutable, and ValidUncle sits on the miner's uncle-sweep
	// hot path where a per-call interface dispatch is measurable.
	refDepth uint64
}

// NewRegistry creates a registry seeded with a genesis block at the
// given starting height (the paper's campaign began at 7,479,573).
func NewRegistry(genesisNumber uint64, issuer *types.HashIssuer) *Registry {
	return NewRegistryWithGenesis(genesisNumber, issuer.Next())
}

// NewRegistryWithGenesis creates a registry whose genesis block has an
// explicit hash. The log pipeline uses it to rebuild a registry from a
// chain dump.
func NewRegistryWithGenesis(genesisNumber uint64, genesisHash types.Hash) *Registry {
	g := &types.Block{
		Hash:       genesisHash,
		Number:     genesisNumber,
		Difficulty: 1,
		TotalDiff:  1,
		Size:       types.BlockSize(0),
	}
	r := &Registry{
		blocks:   make(map[types.Hash]*types.Block, 1024),
		children: make(map[types.Hash][]types.Hash, 1024),
		byHeight: make(map[uint64][]types.Hash, 1024),
		genesis:  g,
		proto:    consensus.Ethereum(),
		refDepth: consensus.EthereumUncleDepth,
	}
	r.insert(g)
	return r
}

// Protocol returns the consensus rule set the chain runs under.
func (r *Registry) Protocol() consensus.Protocol { return r.proto }

// SetProtocol installs a consensus protocol. It must be called before
// any block beyond genesis is added: views and analyses derive their
// rules from the registry, and switching rules mid-chain would make
// fork choice inconsistent.
func (r *Registry) SetProtocol(p consensus.Protocol) {
	if p == nil {
		panic("chain: nil protocol")
	}
	if len(r.order) > 1 {
		panic("chain: SetProtocol after blocks were added")
	}
	r.proto = p
	r.refDepth = p.MaxReferenceDepth()
}

func (r *Registry) insert(b *types.Block) {
	r.blocks[b.Hash] = b
	r.byHeight[b.Number] = append(r.byHeight[b.Number], b.Hash)
	r.order = append(r.order, b.Hash)
	if !b.ParentHash.IsZero() {
		r.children[b.ParentHash] = append(r.children[b.ParentHash], b.Hash)
	}
}

// Add registers a newly mined block. The parent must already exist and
// the block's number must be parent.Number+1; Add fills in TotalDiff.
func (r *Registry) Add(b *types.Block) error {
	if _, dup := r.blocks[b.Hash]; dup {
		return fmt.Errorf("chain: duplicate block %s", b.Hash)
	}
	parent, ok := r.blocks[b.ParentHash]
	if !ok {
		return fmt.Errorf("chain: block %s has unknown parent %s", b.Hash, b.ParentHash)
	}
	if b.Number != parent.Number+1 {
		return fmt.Errorf("chain: block %s number %d does not extend parent at %d",
			b.Hash, b.Number, parent.Number)
	}
	if b.Difficulty == 0 {
		b.Difficulty = 1
	}
	b.TotalDiff = parent.TotalDiff + b.Difficulty
	r.insert(b)
	return nil
}

// Genesis returns the genesis block.
func (r *Registry) Genesis() *types.Block { return r.genesis }

// Get returns a block by hash.
func (r *Registry) Get(h types.Hash) (*types.Block, bool) {
	b, ok := r.blocks[h]
	return b, ok
}

// MustGet returns a block by hash, panicking if absent. For internal
// invariants where absence indicates a bug.
func (r *Registry) MustGet(h types.Hash) *types.Block {
	b, ok := r.blocks[h]
	if !ok {
		panic(fmt.Sprintf("chain: missing block %s", h))
	}
	return b
}

// Len returns the number of blocks in the registry, including genesis.
func (r *Registry) Len() int { return len(r.blocks) }

// Children returns the hashes of blocks whose parent is h.
func (r *Registry) Children(h types.Hash) []types.Hash {
	out := make([]types.Hash, len(r.children[h]))
	copy(out, r.children[h])
	return out
}

// AtHeight returns the hashes of all blocks at the given height, in the
// order they were created.
func (r *Registry) AtHeight(n uint64) []types.Hash {
	out := make([]types.Hash, len(r.byHeight[n]))
	copy(out, r.byHeight[n])
	return out
}

// Blocks iterates all blocks in creation order.
func (r *Registry) Blocks(fn func(*types.Block) bool) {
	for _, h := range r.order {
		if !fn(r.blocks[h]) {
			return
		}
	}
}

// Head returns the tip of the final main chain under the protocol's
// fork-choice rule (ties broken by earliest creation).
func (r *Registry) Head() *types.Block {
	best := r.genesis
	for _, h := range r.order {
		b := r.blocks[h]
		if r.proto.Prefer(b, best) {
			best = b
		}
	}
	return best
}

// MainChain returns the main chain from genesis to head, inclusive, in
// ascending height order.
func (r *Registry) MainChain() []*types.Block {
	head := r.Head()
	n := int(head.Number-r.genesis.Number) + 1
	out := make([]*types.Block, n)
	cur := head
	for i := n - 1; i >= 0; i-- {
		out[i] = cur
		if i > 0 {
			cur = r.MustGet(cur.ParentHash)
		}
	}
	return out
}

// MainChainSet returns the set of main-chain block hashes.
func (r *Registry) MainChainSet() map[types.Hash]bool {
	main := r.MainChain()
	set := make(map[types.Hash]bool, len(main))
	for _, b := range main {
		set[b.Hash] = true
	}
	return set
}

// IsAncestor reports whether a is an ancestor of (or equal to) b,
// searching at most maxDepth generations up from b.
func (r *Registry) IsAncestor(a, b types.Hash, maxDepth int) bool {
	cur, ok := r.blocks[b]
	if !ok {
		return false
	}
	for depth := 0; depth <= maxDepth; depth++ {
		if cur.Hash == a {
			return true
		}
		if cur.ParentHash.IsZero() {
			return false
		}
		cur, ok = r.blocks[cur.ParentHash]
		if !ok {
			return false
		}
	}
	return false
}

// UncleRefs returns, for every block, the set of main-chain blocks that
// reference it as an uncle. Keyed by uncle hash; values are referencing
// main-chain block hashes.
func (r *Registry) UncleRefs() map[types.Hash][]types.Hash {
	refs := make(map[types.Hash][]types.Hash)
	for _, b := range r.MainChain() {
		for _, u := range b.Uncles {
			refs[u] = append(refs[u], b.Hash)
		}
	}
	return refs
}

// ValidUncle checks the protocol's reference-validity rules for
// candidate uncle u referenced from a block that would extend parent:
//
//  1. u's parent must be an ancestor of the new block within the
//     protocol's reference window (so u is a "sibling branch" child).
//  2. u must not itself be an ancestor of the new block.
//  3. u must not already be referenced as an uncle in the ancestor
//     window.
//
// Under Ethereum's 6-generation window this is the rule that makes
// forks of length ≥ 2 unrecognizable as uncles (their parents are
// side-chain blocks, not ancestors), exactly as the paper observes in
// Table III. Protocols without references (MaxReferenceDepth 0) accept
// no uncle at all.
func (r *Registry) ValidUncle(u *types.Block, parent *types.Block) bool {
	window := r.refDepth
	newNumber := parent.Number + 1
	if u.Number >= newNumber || newNumber-u.Number > window {
		return false
	}
	// Walk the ancestor window once, collecting ancestors and used uncles.
	cur := parent
	for depth := uint64(0); depth <= window; depth++ {
		if cur.Hash == u.Hash {
			return false // u is an ancestor, not an uncle
		}
		for _, used := range cur.Uncles {
			if used == u.Hash {
				return false // already rewarded
			}
		}
		if cur.Hash == u.ParentHash {
			return true // parent of u found among ancestors
		}
		if cur.ParentHash.IsZero() {
			return false
		}
		next, ok := r.blocks[cur.ParentHash]
		if !ok {
			return false
		}
		cur = next
	}
	return false
}

// SortHashes sorts a hash slice in place (deterministic ordering for
// iteration over map-derived slices).
func SortHashes(hs []types.Hash) {
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
}
