package chain

import (
	"testing"

	"ethmeasure/internal/types"
)

func TestViewImportForkChoice(t *testing.T) {
	tc := newTestChain(t)
	v := NewView(tc.reg)
	g := tc.reg.Genesis()
	if v.Head() != g {
		t.Fatal("fresh view head should be genesis")
	}

	a1 := tc.extend(g, 1)
	if !v.Import(a1) {
		t.Error("importing heavier block must change head")
	}
	if v.Head() != a1 {
		t.Error("head should be a1")
	}

	// Same-difficulty sibling: incumbent wins (first-seen rule).
	b1 := tc.extend(g, 2)
	if v.Import(b1) {
		t.Error("tie must not reorg")
	}
	if v.Head() != a1 {
		t.Error("head should remain a1 after tie")
	}

	// Heavier extension of the other branch reorgs.
	b2 := tc.extend(b1, 2)
	if !v.Import(b2) {
		t.Error("heavier branch must reorg")
	}
	if v.Head() != b2 {
		t.Error("head should be b2")
	}
}

func TestViewImportDeduplicates(t *testing.T) {
	tc := newTestChain(t)
	v := NewView(tc.reg)
	b := tc.extend(tc.reg.Genesis(), 1)
	if !v.Import(b) {
		t.Fatal("first import should reorg")
	}
	if v.Import(b) {
		t.Error("re-import must be a no-op")
	}
}

func TestViewKnows(t *testing.T) {
	tc := newTestChain(t)
	v := NewView(tc.reg)
	g := tc.reg.Genesis()
	if !v.Knows(g.Hash) {
		t.Error("view must know genesis")
	}
	b := tc.extend(g, 1)
	if v.Knows(b.Hash) {
		t.Error("unimported block must be unknown")
	}
	v.Import(b)
	if !v.Knows(b.Hash) {
		t.Error("imported block must be known")
	}
	if v.Knows(types.Hash(0xfeed)) {
		t.Error("random hash must be unknown")
	}
}

func TestViewUncleCandidates(t *testing.T) {
	tc := newTestChain(t)
	v := NewView(tc.reg)
	g := tc.reg.Genesis()
	a1 := tc.extend(g, 1)
	u1 := tc.extend(g, 2)
	u2 := tc.extend(g, 3)
	u3 := tc.extend(g, 4)
	for _, b := range []*types.Block{a1, u1, u2, u3} {
		v.Import(b)
	}
	// Head is a1; siblings u1..u3 are candidates, capped at max.
	got := v.UncleCandidates(2)
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want 2", got)
	}
	all := v.UncleCandidates(10)
	if len(all) != 3 {
		t.Fatalf("all candidates = %v, want 3", all)
	}
	if v.UncleCandidates(0) != nil {
		t.Error("max 0 must return nil")
	}

	// Candidates must disappear once referenced.
	a2 := tc.extend(a1, 1, u1.Hash)
	v.Import(a2)
	for _, h := range v.UncleCandidates(10) {
		if h == u1.Hash {
			t.Error("referenced uncle still offered as candidate")
		}
	}
}

func TestViewUncleCandidatesForLaggingParent(t *testing.T) {
	tc := newTestChain(t)
	v := NewView(tc.reg)
	g := tc.reg.Genesis()
	a1 := tc.extend(g, 1)
	u1 := tc.extend(g, 2)
	a2 := tc.extend(a1, 1)
	for _, b := range []*types.Block{a1, u1, a2} {
		v.Import(b)
	}
	// Mining on a1 (lagging job) must still validate u1 against a1.
	got := v.UncleCandidatesFor(a1, 2)
	if len(got) != 1 || got[0] != u1.Hash {
		t.Errorf("candidates for lagging parent = %v", got)
	}
}

func TestViewPruneKeepsRecentWindow(t *testing.T) {
	tc := newTestChain(t)
	v := NewView(tc.reg)
	head := tc.reg.Genesis()
	var old *types.Block
	for i := 0; i < 400; i++ {
		head = tc.extend(head, 1)
		v.Import(head)
		if i == 0 {
			old = head
		}
	}
	// The oldest block fell out of the tracked window but is still
	// treated as known (ancient history is never re-requested).
	if !v.Knows(old.Hash) {
		t.Error("ancient block should still report known")
	}
	if len(v.KnownAtHeight(old.Number)) != 0 {
		t.Error("ancient height should have been pruned from the index")
	}
	if len(v.KnownAtHeight(head.Number)) != 1 {
		t.Error("recent height must remain tracked")
	}
	if v.Head() != head {
		t.Error("head lost during pruning")
	}
}

func TestReorgPaths(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	a1 := tc.extend(g, 1)
	a2 := tc.extend(a1, 1)
	b1 := tc.extend(g, 2)
	b2 := tc.extend(b1, 2)
	b3 := tc.extend(b2, 2)

	// Straight extension: nothing abandoned.
	abandoned, adopted := Reorg(tc.reg, a1, a2, 16)
	if len(abandoned) != 0 {
		t.Errorf("abandoned = %v on extension", abandoned)
	}
	if len(adopted) != 1 || adopted[0] != a2 {
		t.Errorf("adopted = %v", adopted)
	}

	// Cross-branch reorg from a2 to b3.
	abandoned, adopted = Reorg(tc.reg, a2, b3, 16)
	if len(abandoned) != 2 || abandoned[0] != a2 || abandoned[1] != a1 {
		t.Errorf("abandoned = %v", abandoned)
	}
	if len(adopted) != 3 || adopted[0] != b1 || adopted[1] != b2 || adopted[2] != b3 {
		t.Errorf("adopted = %v", adopted)
	}

	// No-op reorg.
	abandoned, adopted = Reorg(tc.reg, b3, b3, 16)
	if len(abandoned) != 0 || len(adopted) != 0 {
		t.Error("self-reorg should be empty")
	}
}

func TestReorgDepthBound(t *testing.T) {
	tc := newTestChain(t)
	g := tc.reg.Genesis()
	head := g
	for i := 0; i < 50; i++ {
		head = tc.extend(head, 1)
	}
	// Walk limited to maxDepth steps must not panic or run away.
	abandoned, adopted := Reorg(tc.reg, g, head, 10)
	if len(abandoned) != 0 {
		t.Errorf("abandoned = %v", abandoned)
	}
	if len(adopted) > 10 {
		t.Errorf("adopted %d blocks, beyond depth bound", len(adopted))
	}
}
