package chain

import (
	"testing"

	"ethmeasure/internal/types"
)

// BenchmarkRegistryAdd measures chain growth cost.
func BenchmarkRegistryAdd(b *testing.B) {
	issuer := types.NewHashIssuer(1)
	reg := NewRegistry(0, issuer)
	parent := reg.Genesis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := &types.Block{
			Hash:       issuer.Next(),
			Number:     parent.Number + 1,
			ParentHash: parent.Hash,
			Miner:      1,
		}
		if err := reg.Add(blk); err != nil {
			b.Fatal(err)
		}
		parent = blk
	}
}

// BenchmarkViewImport measures the per-node import path including fork
// choice, the second-hottest operation after message delivery.
func BenchmarkViewImport(b *testing.B) {
	issuer := types.NewHashIssuer(1)
	reg := NewRegistry(0, issuer)
	parent := reg.Genesis()
	blocks := make([]*types.Block, b.N)
	for i := 0; i < b.N; i++ {
		blk := &types.Block{
			Hash:       issuer.Next(),
			Number:     parent.Number + 1,
			ParentHash: parent.Hash,
			Miner:      1,
		}
		if err := reg.Add(blk); err != nil {
			b.Fatal(err)
		}
		blocks[i] = blk
		parent = blk
	}
	v := NewView(reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Import(blocks[i])
	}
}

// BenchmarkUncleCandidates measures the miner's uncle sweep.
func BenchmarkUncleCandidates(b *testing.B) {
	issuer := types.NewHashIssuer(1)
	reg := NewRegistry(0, issuer)
	v := NewView(reg)
	parent := reg.Genesis()
	for i := 0; i < 64; i++ {
		blk := &types.Block{Hash: issuer.Next(), Number: parent.Number + 1, ParentHash: parent.Hash, Miner: 1}
		if err := reg.Add(blk); err != nil {
			b.Fatal(err)
		}
		v.Import(blk)
		// A sibling at every height keeps the candidate sweep busy.
		sib := &types.Block{Hash: issuer.Next(), Number: parent.Number + 1, ParentHash: parent.Hash, Miner: 2}
		if err := reg.Add(sib); err != nil {
			b.Fatal(err)
		}
		v.Import(sib)
		parent = blk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.UncleCandidates(2)
	}
}

// BenchmarkMainChain measures the end-of-run chain walk the analysis
// pipeline performs repeatedly.
func BenchmarkMainChain(b *testing.B) {
	issuer := types.NewHashIssuer(1)
	reg := NewRegistry(0, issuer)
	parent := reg.Genesis()
	for i := 0; i < 10_000; i++ {
		blk := &types.Block{Hash: issuer.Next(), Number: parent.Number + 1, ParentHash: parent.Hash, Miner: 1}
		if err := reg.Add(blk); err != nil {
			b.Fatal(err)
		}
		parent = blk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := reg.MainChain(); len(got) != 10_001 {
			b.Fatal("wrong chain length")
		}
	}
}
