package chain

import (
	"testing"

	"ethmeasure/internal/consensus"
	"ethmeasure/internal/types"
)

// buildFork grows a main chain of length n with one same-height
// sibling at every height, importing everything into a view.
func buildFork(t *testing.T, reg *Registry, n int) (*View, []*types.Block) {
	t.Helper()
	issuer := types.NewHashIssuer(7)
	v := NewView(reg)
	parent := reg.Genesis()
	var sibs []*types.Block
	for i := 0; i < n; i++ {
		blk := &types.Block{Hash: issuer.Next(), Number: parent.Number + 1, ParentHash: parent.Hash, Miner: 1}
		if err := reg.Add(blk); err != nil {
			t.Fatal(err)
		}
		v.Import(blk)
		sib := &types.Block{Hash: issuer.Next(), Number: parent.Number + 1, ParentHash: parent.Hash, Miner: 2}
		if err := reg.Add(sib); err != nil {
			t.Fatal(err)
		}
		v.Import(sib)
		sibs = append(sibs, sib)
		parent = blk
	}
	return v, sibs
}

func TestRegistryDefaultsToEthereum(t *testing.T) {
	reg := NewRegistry(0, types.NewHashIssuer(1))
	if reg.Protocol().Name() != consensus.EthereumName {
		t.Fatalf("default protocol = %q", reg.Protocol().Name())
	}
}

func TestDeprecatedConstsMatchEthereumProtocol(t *testing.T) {
	e := consensus.Ethereum()
	if uint64(MaxUncleDepth) != e.MaxReferenceDepth() {
		t.Errorf("MaxUncleDepth %d diverged from the ethereum protocol's %d", MaxUncleDepth, e.MaxReferenceDepth())
	}
	if MaxUnclesPerBlock != e.MaxReferencesPerBlock() {
		t.Errorf("MaxUnclesPerBlock %d diverged from the ethereum protocol's %d", MaxUnclesPerBlock, e.MaxReferencesPerBlock())
	}
}

func TestBitcoinRegistryAcceptsNoUncles(t *testing.T) {
	reg := NewRegistry(0, types.NewHashIssuer(1))
	reg.SetProtocol(consensus.Bitcoin())
	v, sibs := buildFork(t, reg, 4)

	// Every sibling is one generation back from the tip — a valid uncle
	// under ethereum, never under bitcoin.
	head := v.Head()
	for _, sib := range sibs {
		if reg.ValidUncle(sib, head) {
			t.Errorf("sibling %s valid as uncle under bitcoin", sib.Hash)
		}
	}
	if got := v.UncleCandidates(2); len(got) != 0 {
		t.Errorf("bitcoin view offered %d uncle candidates", len(got))
	}
	// The fork choice itself is unchanged: the first-seen chain wins.
	if head.Number != 4 {
		t.Errorf("head at %d, want 4", head.Number)
	}
}

func TestGhostWindowReachesDeeperThanEthereum(t *testing.T) {
	mk := func(proto consensus.Protocol) (*Registry, *View, []*types.Block) {
		reg := NewRegistry(0, types.NewHashIssuer(1))
		if proto != nil {
			reg.SetProtocol(proto)
		}
		v, sibs := buildFork(t, reg, 12)
		return reg, v, sibs
	}

	// Depth of the oldest sibling (height 1) from a block extending the
	// height-12 head is 12 — outside ethereum's window, inside a
	// 12-generation ghost window.
	ethReg, ethView, ethSibs := mk(nil)
	if ethReg.ValidUncle(ethSibs[0], ethView.Head()) {
		t.Error("ethereum recognized a depth-12 uncle")
	}

	ghost, err := consensus.Build(consensus.Spec{
		Name:   consensus.GhostInclusiveName,
		Params: map[string]string{"depth": "12", "cap": "8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	gReg, gView, gSibs := mk(ghost)
	if !gReg.ValidUncle(gSibs[0], gView.Head()) {
		t.Error("ghost-inclusive rejected a depth-12 uncle")
	}
	if got := gView.UncleCandidates(8); len(got) != 8 {
		t.Errorf("ghost view offered %d candidates, want the full cap of 8", len(got))
	}
}

// TestViewPruneWindowCoversReferenceWindow: a protocol whose reference
// window exceeds the default prune horizon widens the view's retention
// window instead of silently pruning referenceable candidates.
func TestViewPruneWindowCoversReferenceWindow(t *testing.T) {
	deep, err := consensus.Build(consensus.Spec{
		Name:   consensus.GhostInclusiveName,
		Params: map[string]string{"depth": "200"},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(0, types.NewHashIssuer(1))
	reg.SetProtocol(deep)
	v := NewView(reg)
	if v.pruneWindow < 200 {
		t.Fatalf("pruneWindow %d below the 200-generation reference window", v.pruneWindow)
	}
	// The ethereum default keeps the historical horizon.
	ethView := NewView(NewRegistry(0, types.NewHashIssuer(1)))
	if ethView.pruneWindow != 128 {
		t.Fatalf("ethereum pruneWindow = %d, want 128", ethView.pruneWindow)
	}
}

func TestSetProtocolGuards(t *testing.T) {
	reg := NewRegistry(0, types.NewHashIssuer(1))
	defer func() {
		if recover() == nil {
			t.Fatal("SetProtocol(nil) did not panic")
		}
	}()
	reg.SetProtocol(nil)
}

func TestSetProtocolAfterBlocksPanics(t *testing.T) {
	issuer := types.NewHashIssuer(1)
	reg := NewRegistry(0, issuer)
	g := reg.Genesis()
	if err := reg.Add(&types.Block{Hash: issuer.Next(), Number: g.Number + 1, ParentHash: g.Hash, Miner: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mid-chain SetProtocol did not panic")
		}
	}()
	reg.SetProtocol(consensus.Bitcoin())
}
