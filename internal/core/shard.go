package core

import (
	"math"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/sim"
)

// shardSlice is one region's claim on one shard: slices fill in
// proportion to mass, so a region split across shards spreads its
// nodes accordingly.
type shardSlice struct {
	shard int
	mass  float64
	count int
}

// shardPicker builds the region→shard assignment for a sharded
// campaign. Regions are laid out on [0,1) in declaration order, each
// spanning its normalized weight; the line is then cut into equal
// per-shard segments. A region that straddles a cut contributes a
// slice to each side, so heavyweight regions (North America holds 34%
// of the default distribution) split across shards instead of capping
// the parallel speedup at the largest region's share. Each call
// assigns the node to its region's least-filled slice (by count/mass,
// ties to the lower shard), which keeps per-shard load near 1/shards
// regardless of arrival order. The assignment is a pure function of
// the call sequence, so a fixed seed gives a fixed partition.
func shardPicker(dist *geo.Distribution, shards int) func(geo.Region) int {
	slices := make(map[geo.Region][]shardSlice, geo.NumRegions)
	pos := 0.0
	for _, r := range dist.Regions() {
		start, end := pos, pos+dist.Weight(r)
		pos = end
		for start < end-1e-12 {
			shard := int(start * float64(shards))
			if shard >= shards {
				shard = shards - 1
			}
			segEnd := float64(shard+1) / float64(shards)
			if segEnd > end {
				segEnd = end
			}
			slices[r] = append(slices[r], shardSlice{shard: shard, mass: segEnd - start})
			start = segEnd
		}
	}
	return func(r geo.Region) int {
		ss := slices[r]
		if len(ss) == 0 {
			// Region absent from the distribution (scenario-added nodes
			// in unpopulated regions): spread statically.
			return (int(r) - 1) * shards / geo.NumRegions
		}
		best, bestCost := 0, math.Inf(1)
		for i := range ss {
			if cost := float64(ss[i].count+1) / ss[i].mass; cost < bestCost {
				best, bestCost = i, cost
			}
		}
		ss[best].count++
		return ss[best].shard
	}
}

// deferRecorder adapts a vantage to the sharded engine: the record is
// fully computed at observation time on the vantage node's shard
// (clock offsets and all), then its emission into the record bus —
// whose consumers are serial state — is deferred to the next window
// barrier, where the coordinator replays deferrals in deterministic
// (time, shard, FIFO) order.
type deferRecorder struct {
	d   sim.Deferrer
	bus *measure.Bus
}

func (r *deferRecorder) RecordBlock(rec measure.BlockRecord) {
	r.d.Defer(func() { r.bus.RecordBlock(rec) })
}

func (r *deferRecorder) RecordTx(rec measure.TxRecord) {
	r.d.Defer(func() { r.bus.RecordTx(rec) })
}
