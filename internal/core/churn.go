package core

import (
	"time"

	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
)

// ChurnConfig models node churn: public Ethereum deployments see
// constant peer turnover (Kim et al., IMC'18, measured short node
// sessions across the network). A churn event restarts one random
// regular node: all its connections drop, and after a downtime it
// re-dials a fresh random peer set — exactly what a relaunched Geth
// does. Vantages and pool gateways are long-lived and never churn.
type ChurnConfig struct {
	// Interval is the mean time between churn events (exponentially
	// distributed). Zero disables churn.
	Interval time.Duration

	// DowntimeMean is the mean offline period before the node rejoins.
	DowntimeMean time.Duration

	// RedialPeers is how many peers a rejoining node dials (0 = the
	// campaign's OutDegree).
	RedialPeers int
}

// DefaultChurnConfig returns a mild churn profile: one restart every
// two minutes with five-minute downtimes, roughly 12% of a 220-node
// population cycling per hour.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Interval:     2 * time.Minute,
		DowntimeMean: 5 * time.Minute,
	}
}

// churnDriver restarts random regular nodes on the engine.
type churnDriver struct {
	cfg     ChurnConfig
	engine  *sim.Engine
	nodes   []*p2p.Node
	degree  int
	horizon sim.Time
	down    map[int]bool // node index -> currently offline
	events  int
}

func newChurnDriver(cfg ChurnConfig, engine *sim.Engine, nodes []*p2p.Node, degree int) *churnDriver {
	if cfg.RedialPeers > 0 {
		degree = cfg.RedialPeers
	}
	return &churnDriver{
		cfg:    cfg,
		engine: engine,
		nodes:  nodes,
		degree: degree,
		down:   make(map[int]bool),
	}
}

// Start schedules churn events until the horizon.
func (c *churnDriver) Start(horizon sim.Time) {
	if c.cfg.Interval <= 0 {
		return
	}
	c.horizon = horizon
	c.scheduleNext()
}

// Events returns how many restarts occurred.
func (c *churnDriver) Events() int { return c.events }

func (c *churnDriver) scheduleNext() {
	rng := c.engine.RNG("churn")
	wait := sim.ExpDuration(rng, c.cfg.Interval)
	if c.engine.Now()+wait > c.horizon {
		return
	}
	c.engine.After(wait, func() {
		c.restartOne()
		c.scheduleNext()
	})
}

func (c *churnDriver) restartOne() {
	rng := c.engine.RNG("churn")
	// Pick an online node; give up after a few tries if most are down.
	for attempt := 0; attempt < 8; attempt++ {
		idx := rng.Intn(len(c.nodes))
		if c.down[idx] {
			continue
		}
		node := c.nodes[idx]
		node.DisconnectAll()
		c.down[idx] = true
		c.events++
		downtime := sim.ExpDuration(rng, c.cfg.DowntimeMean)
		c.engine.After(downtime, func() {
			c.down[idx] = false
			p2p.ConnectToRandom(rng, node, c.nodes, c.degree)
		})
		return
	}
}
