package core

import (
	"strconv"
	"time"

	"ethmeasure/internal/scenario"
)

// ChurnConfig models node churn: public Ethereum deployments see
// constant peer turnover (Kim et al., IMC'18, measured short node
// sessions across the network). A churn event restarts one random
// regular node: all its connections drop, and after a downtime it
// re-dials a fresh random peer set — exactly what a relaunched Geth
// does. Vantages and pool gateways are long-lived and never churn.
//
// ChurnConfig is the legacy configuration surface; the behaviour
// itself lives in the "churn" scenario plugin (internal/scenario),
// which this config converts to via Spec. Both paths are bit-identical.
type ChurnConfig struct {
	// Interval is the mean time between churn events (exponentially
	// distributed). Zero disables churn.
	Interval time.Duration

	// DowntimeMean is the mean offline period before the node rejoins.
	DowntimeMean time.Duration

	// RedialPeers is how many peers a rejoining node dials (0 = the
	// campaign's OutDegree).
	RedialPeers int
}

// DefaultChurnConfig returns a mild churn profile: one restart every
// two minutes with five-minute downtimes, roughly 12% of a 220-node
// population cycling per hour.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Interval:     2 * time.Minute,
		DowntimeMean: 5 * time.Minute,
	}
}

// Spec converts the legacy churn configuration into its scenario-spec
// form (time.Duration round-trips exactly through String/ParseDuration,
// so the conversion is lossless).
func (c ChurnConfig) Spec() scenario.Spec {
	params := map[string]string{
		"interval": c.Interval.String(),
		"downtime": c.DowntimeMean.String(),
	}
	if c.RedialPeers > 0 {
		params["redial"] = strconv.Itoa(c.RedialPeers)
	}
	return scenario.Spec{Name: scenario.ChurnName, Params: params}
}
