package core

import (
	"math"
	"testing"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/types"
)

// TestFastChainMatchesFullSim validates the chain-level fast simulator
// against the full network simulation (DESIGN.md §4): sequence
// statistics depend only on the winner distribution, so the full
// simulator's main-chain winner shares must match the configured pool
// powers that the fast simulator draws from directly.
func TestFastChainMatchesFullSim(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison needs a longer run")
	}
	cfg := tinyConfig()
	cfg.Duration = 2 * time.Hour
	cfg.EnableTxWorkload = false
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}

	// Full-sim winner shares.
	counts := make(map[types.PoolID]int)
	total := 0
	for _, b := range campaign.Registry().MainChain() {
		if b.Miner == 0 {
			continue
		}
		counts[b.Miner]++
		total++
	}
	if total < 300 {
		t.Fatalf("only %d main blocks", total)
	}
	// Compare each major pool's share against its configured power
	// within binomial noise (3 sigma).
	for i, spec := range cfg.Pools {
		if spec.Power < 0.05 {
			continue
		}
		share := float64(counts[types.PoolID(i+1)]) / float64(total)
		sigma := math.Sqrt(spec.Power * (1 - spec.Power) / float64(total))
		if math.Abs(share-spec.Power) > 3*sigma+0.01 {
			t.Errorf("pool %s full-sim share %.3f deviates from power %.3f (σ=%.3f)",
				spec.Name, share, spec.Power, sigma)
		}
	}

	// Run-length distributions: the full sim's sequences must be
	// statistically consistent with an i.i.d. fast-chain sequence of
	// the same length — compare the count of length-≥2 runs for the
	// top pool against the fast-chain expectation n·p²·(1−p).
	winners := make([]types.PoolID, 0, total)
	for _, b := range campaign.Registry().MainChain() {
		if b.Miner != 0 {
			winners = append(winners, b.Miner)
		}
	}
	seq := analysis.SequencesFromWinners(winners, cfg.PoolNames(), 13.3, 1)
	if len(seq.Rows) == 0 {
		t.Fatal("no sequence rows")
	}
	top := seq.Rows[0]
	runs2 := 0
	for length, count := range top.RunCounts {
		if length >= 2 {
			runs2 += count
		}
	}
	p := top.PowerShare
	expected := float64(total) * p * p * (1 - p)
	sigma := math.Sqrt(expected)
	if math.Abs(float64(runs2)-expected) > 4*sigma+2 {
		t.Errorf("top pool length-≥2 runs = %d, i.i.d. expectation %.1f (σ=%.1f)",
			runs2, expected, sigma)
	}
}
