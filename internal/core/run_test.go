package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ethmeasure/internal/logs"
)

// runInstrumented executes a fresh tiny campaign under the given
// options and returns its final fingerprints plus the collected
// checkpoints.
func runInstrumented(t *testing.T, cfg Config, opts RunOptions) (record, chain string, cks []logs.Checkpoint) {
	t.Helper()
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	prev := opts.Checkpoint
	opts.Checkpoint = func(ck logs.Checkpoint) {
		cks = append(cks, ck)
		if prev != nil {
			prev(ck)
		}
	}
	if opts.CheckpointInterval <= 0 {
		opts.CheckpointInterval = 2 * time.Minute
	}
	if err := campaign.SimulateContext(context.Background(), opts); err != nil {
		t.Fatalf("SimulateContext: %v", err)
	}
	record, chain = campaign.Fingerprints()
	return record, chain, cks
}

func TestRunContextCancel(t *testing.T) {
	cfg := tinyConfig()
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from a progress tick: the watcher goroutine must stop the
	// engine and SimulateContext must surface ctx's error.
	opts := RunOptions{
		ProgressInterval: time.Minute,
		Progress: func(p Progress) {
			if p.SimTime >= 2*time.Minute {
				cancel()
			}
		},
	}
	err = campaign.SimulateContext(ctx, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateContext after cancel = %v, want context.Canceled", err)
	}
	if campaign.Engine().Now() >= cfg.Duration {
		t.Errorf("engine ran to horizon %v despite cancellation", campaign.Engine().Now())
	}
}

func TestProgressTicks(t *testing.T) {
	cfg := tinyConfig()
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	var snaps []Progress
	res, err := campaign.RunContext(context.Background(), RunOptions{
		ProgressInterval: 2 * time.Minute,
		Progress:         func(p Progress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	// 10m duration / 2m interval = 5 ticks + 1 completion call.
	if len(snaps) != 6 {
		t.Fatalf("got %d progress snapshots, want 6", len(snaps))
	}
	for i, p := range snaps {
		if p.Duration != cfg.Duration {
			t.Errorf("snap %d: Duration = %v", i, p.Duration)
		}
		if i > 0 && p.SimTime < snaps[i-1].SimTime {
			t.Errorf("snap %d: SimTime went backwards (%v after %v)", i, p.SimTime, snaps[i-1].SimTime)
		}
		if i > 0 && p.Events < snaps[i-1].Events {
			t.Errorf("snap %d: Events went backwards", i)
		}
	}
	final := snaps[len(snaps)-1]
	if final.SimTime != cfg.Duration {
		t.Errorf("final SimTime = %v, want %v", final.SimTime, cfg.Duration)
	}
	if final.BlockRecords == 0 || final.Blocks == 0 {
		t.Errorf("final counters empty: %+v", final)
	}
	if res.Stats.BlockRecords != int(final.BlockRecords) {
		t.Errorf("stats blocks %d != final progress %d", res.Stats.BlockRecords, final.BlockRecords)
	}
}

func TestInstrumentationDoesNotPerturbRun(t *testing.T) {
	// The determinism contract: progress + checkpoint ticks are
	// read-only events, so an instrumented run must produce the exact
	// record and chain stream of a bare one.
	cfg := tinyConfig()

	bare, err := NewCampaign(cfg)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	ref := logs.NewRecordFingerprinter()
	bare.AttachRecorder(ref)
	if err := bare.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}

	record, chain, cks := runInstrumented(t, cfg, RunOptions{
		ProgressInterval: 90 * time.Second,
		Progress:         func(Progress) {},
	})
	if record != ref.Sum() {
		t.Errorf("instrumented record fingerprint %s != bare %s", record, ref.Sum())
	}
	if want := logs.ChainFingerprint(bare.Registry()); chain != want {
		t.Errorf("instrumented chain fingerprint %s != bare %s", chain, want)
	}
	// 10m / 2m interval = 5 checkpoints, monotone in time and counts.
	if len(cks) != 5 {
		t.Fatalf("got %d checkpoints, want 5", len(cks))
	}
	for i, ck := range cks {
		if want := int64((time.Duration(i) + 1) * 2 * time.Minute); ck.SimTimeNs != want {
			t.Errorf("checkpoint %d at %d, want %d", i, ck.SimTimeNs, want)
		}
		if i > 0 && ck.BlockRecords < cks[i-1].BlockRecords {
			t.Errorf("checkpoint %d: block records went backwards", i)
		}
	}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	cfg := tinyConfig()

	// Uninterrupted reference run with checkpointing on.
	wantRec, wantChain, cks := runInstrumented(t, cfg, RunOptions{})
	if len(cks) == 0 {
		t.Fatal("no checkpoints emitted")
	}

	// Resume from a mid-run checkpoint: the replay must verify at the
	// barrier and finish with identical fingerprints.
	mid := cks[1] // 4m of 10m
	var after []logs.Checkpoint
	gotRec, gotChain, _ := runInstrumented(t, cfg, RunOptions{
		Resume:     &mid,
		Checkpoint: func(ck logs.Checkpoint) { after = append(after, ck) },
	})
	if gotRec != wantRec || gotChain != wantChain {
		t.Errorf("resumed fingerprints (%s, %s) != uninterrupted (%s, %s)",
			gotRec, gotChain, wantRec, wantChain)
	}
	// Ticks at/before the resume point are suppressed; later ones match
	// the reference run's checkpoints bit for bit (modulo wall time).
	if len(after) != len(cks)-2 {
		t.Fatalf("resumed run emitted %d checkpoints, want %d", len(after), len(cks)-2)
	}
	for i, ck := range after {
		want := cks[i+2]
		if ck.SimTimeNs != want.SimTimeNs ||
			ck.RecordFingerprint != want.RecordFingerprint ||
			ck.ChainFingerprint != want.ChainFingerprint {
			t.Errorf("resumed checkpoint %d differs from reference: %+v vs %+v", i, ck, want)
		}
	}
}

func TestResumeDivergenceDetected(t *testing.T) {
	cfg := tinyConfig()
	_, _, cks := runInstrumented(t, cfg, RunOptions{})
	if len(cks) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	bad := cks[0]
	bad.RecordFingerprint = "deadbeef"

	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	err = campaign.SimulateContext(context.Background(), RunOptions{
		Resume:             &bad,
		CheckpointInterval: 2 * time.Minute,
	})
	if !errors.Is(err, ErrResumeDiverged) {
		t.Fatalf("SimulateContext = %v, want ErrResumeDiverged", err)
	}
	// The run must stop at the failed barrier, not limp to the horizon.
	if now := campaign.Engine().Now(); now > time.Duration(bad.SimTimeNs) {
		t.Errorf("engine at %v after divergence at %v", now, time.Duration(bad.SimTimeNs))
	}
}

func TestRunOptionsValidation(t *testing.T) {
	cfg := tinyConfig()
	cases := []struct {
		name string
		opts RunOptions
	}{
		{"checkpoint without interval", RunOptions{Checkpoint: func(logs.Checkpoint) {}}},
		{"resume without interval", RunOptions{Resume: &logs.Checkpoint{SimTimeNs: int64(2 * time.Minute)}}},
		{"misaligned resume", RunOptions{
			Resume:             &logs.Checkpoint{SimTimeNs: int64(3 * time.Minute)},
			CheckpointInterval: 2 * time.Minute,
		}},
		{"resume past horizon", RunOptions{
			Resume:             &logs.Checkpoint{SimTimeNs: int64(12 * time.Minute)},
			CheckpointInterval: 2 * time.Minute,
		}},
	}
	for _, tc := range cases {
		campaign, err := NewCampaign(cfg)
		if err != nil {
			t.Fatalf("NewCampaign: %v", err)
		}
		if err := campaign.SimulateContext(context.Background(), tc.opts); err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if campaign.simulated {
			t.Errorf("%s: campaign marked simulated after option error", tc.name)
		}
	}
}
