package core

import (
	"fmt"
	"reflect"
	"testing"

	"ethmeasure/internal/sim"
)

// ladderFingerprint runs one campaign under the currently selected
// queue implementation and returns every determinism surface: the raw
// record stream hash, the chain registry hash, the serialized analysis
// results and the headline metrics.
func ladderFingerprint(t *testing.T, cfg Config) (rec, chain string, analysis map[string]string, metrics map[string]float64) {
	t.Helper()
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hasher := newRecordHasher()
	campaign.AttachRecorder(hasher)
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	return hasher.Sum(), chainFingerprint(campaign), analysisJSON(t, res), res.KeyMetrics()
}

// diffQueueImpls runs cfg once on the ladder queue and once on the
// reference binary heap and requires bit-identical outputs on every
// surface. Both queues realize the same unique (at, seq) total order,
// so any divergence is a ladder ordering bug.
func diffQueueImpls(t *testing.T, cfg Config) {
	t.Helper()
	orig := sim.CurrentQueueImpl()
	defer sim.SetQueueImpl(orig)

	sim.SetQueueImpl(sim.QueueLadder)
	recL, chainL, jsonL, kmL := ladderFingerprint(t, cfg)
	sim.SetQueueImpl(sim.QueueRefHeap)
	recH, chainH, jsonH, kmH := ladderFingerprint(t, cfg)

	if recL != recH {
		t.Errorf("record streams diverged:\nladder: %s\nheap:   %s", recL, recH)
	}
	if chainL != chainH {
		t.Errorf("chains diverged:\nladder: %s\nheap:   %s", chainL, chainH)
	}
	for name, h := range jsonH {
		if l := jsonL[name]; l != h {
			t.Errorf("%s diverged:\nladder: %.200s\nheap:   %.200s", name, l, h)
		}
	}
	if !reflect.DeepEqual(kmL, kmH) {
		t.Errorf("KeyMetrics diverged:\nladder: %v\nheap:   %v", kmL, kmH)
	}
}

// TestLadderHeapEquivalenceVariants is the campaign-level differential
// suite for the ladder queue: every equivalence variant (the same
// roster the streaming suite proves) must produce bit-identical
// records, chains and analyses whether engines run on the ladder or on
// the reference heap.
func TestLadderHeapEquivalenceVariants(t *testing.T) {
	for _, variant := range equivalenceVariants() {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			diffQueueImpls(t, variant.cfg)
		})
	}
}

// TestLadderHeapEquivalenceShards extends the differential suite
// across shard counts: every shard engine runs its own queue, and the
// barrier loop reads window edges through NextAt, so each shard count
// must be bit-identical across implementations too.
func TestLadderHeapEquivalenceShards(t *testing.T) {
	counts := []int{1, 2, 4, 8}
	if testing.Short() {
		counts = []int{1, 2}
	}
	for _, shards := range counts {
		cfg := tinyConfig()
		cfg.Shards = shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			diffQueueImpls(t, cfg)
		})
	}
}

// TestCoalesceDeliveryEquivalence backs the Config.CoalesceDelivery
// contract: under the default continuous-jitter latency model, exact
// cross-node delivery ties have measure zero, so a coalesced campaign
// is bit-identical to an uncoalesced one on every surface.
func TestCoalesceDeliveryEquivalence(t *testing.T) {
	plain := tinyConfig()
	coal := tinyConfig()
	coal.CoalesceDelivery = true

	recP, chainP, jsonP, kmP := ladderFingerprint(t, plain)
	recC, chainC, jsonC, kmC := ladderFingerprint(t, coal)

	if recP != recC {
		t.Errorf("record streams diverged:\nplain:     %s\ncoalesced: %s", recP, recC)
	}
	if chainP != chainC {
		t.Errorf("chains diverged")
	}
	for name, p := range jsonP {
		if c := jsonC[name]; c != p {
			t.Errorf("%s diverged:\nplain:     %.200s\ncoalesced: %.200s", name, p, c)
		}
	}
	if !reflect.DeepEqual(kmP, kmC) {
		t.Errorf("KeyMetrics diverged:\nplain:     %v\ncoalesced: %v", kmP, kmC)
	}
}
