package core

import (
	"fmt"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/chain"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/mining"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/txgen"
	"ethmeasure/internal/types"
)

// RunStats captures bookkeeping about a finished campaign.
type RunStats struct {
	VirtualDuration time.Duration
	WallDuration    time.Duration
	Events          uint64
	Messages        uint64
	BlocksCreated   int
	TxsCreated      int
	Nodes           int
}

// Results bundles the dataset and every per-figure analysis of one
// campaign. Analyses that need the transaction workload are nil when
// it was disabled.
type Results struct {
	Dataset *analysis.Dataset
	Stats   RunStats

	Propagation *analysis.PropagationResult      // Figure 1
	Redundancy  *analysis.RedundancyResult       // Table II
	FirstObs    *analysis.FirstObservationResult // Figure 2
	PoolGeo     *analysis.PoolGeographyResult    // Figure 3
	Commit      *analysis.CommitTimeResult       // Figure 4
	Ordering    *analysis.OrderingResult         // Figure 5
	Empty       *analysis.EmptyBlocksResult      // Figure 6
	Forks       *analysis.ForksResult            // Table III
	OneMiner    *analysis.OneMinerForksResult    // §III-C5
	Sequences   *analysis.SequencesResult        // Figure 7
	TxProp      *analysis.TxPropagationResult    // §III-A1

	// Extension analyses beyond the paper's figures.
	Rewards     *analysis.RewardsResult     // §V: uncle/one-miner-fork profit
	Finality    *analysis.FinalityResult    // §III-D: k-block rule safety
	Throughput  *analysis.ThroughputResult  // §V: wasted resources
	InterBlock  *analysis.InterBlockResult  // §III-C1: block intervals
	Withholding *analysis.WithholdingResult // §III-D: burst-publication forensic
	GeoDelay    *analysis.GeoDelayResult    // Figure 1 drill-down per vantage
	FeeMarket   *analysis.FeeMarketResult   // fee vs inclusion-delay bands
}

// Campaign is one configured measurement run.
type Campaign struct {
	cfg Config

	engine   *sim.Engine
	network  *simnet.Network
	registry *chain.Registry
	store    *txgen.Store
	recorder *measure.MemoryRecorder
	miner    *mining.Miner
	gen      *txgen.Generator
	churn    *churnDriver
	vantages []*measure.Vantage
	regular  []*p2p.Node
	gateways [][]*p2p.Node
}

// NewCampaign validates the configuration and builds the full system:
// network, topology, pool gateways, vantages, workloads.
func NewCampaign(cfg Config) (*Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg}
	if err := c.build(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Campaign) build() error {
	cfg := &c.cfg
	c.engine = sim.NewEngine(cfg.Seed)
	c.network = simnet.New(c.engine, cfg.Latency)
	blockIssuer := types.NewHashIssuer(1)
	c.registry = chain.NewRegistry(cfg.GenesisNumber, blockIssuer)
	c.store = txgen.NewStore()
	c.recorder = measure.NewMemoryRecorder()

	placeRNG := c.engine.RNG("placement")
	speedRNG := c.engine.RNG("procspeed")

	// Regular nodes, with mixed hardware speeds.
	for i := 0; i < cfg.NumNodes; i++ {
		region := cfg.NodeDistribution.Sample(placeRNG)
		endpoint, err := c.network.AddNode(region, cfg.NodeBandwidth)
		if err != nil {
			return err
		}
		node := p2p.NewNode(&cfg.P2P, c.network, endpoint, c.registry)
		lo, hi := cfg.NodeProcSpeedMin, cfg.NodeProcSpeedMax
		if hi > lo {
			node.SetProcSpeed(lo + speedRNG.Float64()*(hi-lo))
		} else if lo > 0 {
			node.SetProcSpeed(lo)
		}
		c.regular = append(c.regular, node)
	}
	buildTopology := p2p.BuildRandomTopology
	if cfg.UseDiscovery {
		buildTopology = p2p.BuildDiscoveryTopology
	}
	if err := buildTopology(c.engine.RNG("topology"), c.regular, cfg.OutDegree); err != nil {
		return err
	}

	// Pool gateways: one node per configured region per pool, dialing
	// into the regular population. Pools run capable hardware.
	var allGateways []*p2p.Node
	for i := range cfg.Pools {
		spec := &cfg.Pools[i]
		var gws []*p2p.Node
		for _, region := range spec.Gateways {
			endpoint, err := c.network.AddNode(region, cfg.GatewayBandwidth)
			if err != nil {
				return err
			}
			gw := p2p.NewNode(&cfg.P2P, c.network, endpoint, c.registry)
			gw.SetProcSpeed(cfg.GatewayProcSpeed)
			p2p.ConnectToRandom(c.engine.RNG("topology"), gw, c.regular, cfg.GatewayPeers)
			gws = append(gws, gw)
		}
		c.gateways = append(c.gateways, gws)
		allGateways = append(allGateways, gws...)
	}

	// Measurement vantages. Primary vantages run "unlimited peers" and
	// therefore also end up adjacent to a share of pool gateway nodes;
	// auxiliary vantages model default clients and do not.
	clockRNG := c.engine.RNG("clock")
	topoRNG := c.engine.RNG("topology")
	for _, vs := range cfg.Vantages {
		endpoint, err := c.network.AddNode(vs.Region, cfg.VantageBandwidth)
		if err != nil {
			return err
		}
		node := p2p.NewNode(&cfg.P2P, c.network, endpoint, c.registry)
		node.SetProcSpeed(cfg.VantageProcSpeed)
		peers := vs.Peers
		if peers > len(c.regular) {
			peers = len(c.regular)
		}
		p2p.ConnectToRandom(topoRNG, node, c.regular, peers)
		if !vs.Auxiliary && cfg.VantageGatewayFraction > 0 {
			k := int(cfg.VantageGatewayFraction*float64(len(allGateways)) + 0.5)
			p2p.ConnectToRandom(topoRNG, node, allGateways, k)
		}
		vantage := measure.NewVantage(vs.Name, cfg.Clock, clockRNG.Int63(), c.recorder)
		node.Observer = vantage
		c.vantages = append(c.vantages, vantage)
	}

	// Mining subsystem.
	miner, err := mining.NewMiner(
		cfg.Mining, c.engine, c.registry, cfg.Pools, c.gateways,
		blockIssuer, c.store.Get,
	)
	if err != nil {
		return err
	}
	c.miner = miner

	// Transaction workload. The mempool-floor controller observes
	// inclusion through the miner's block hook.
	if cfg.EnableTxWorkload {
		txIssuer := types.NewHashIssuer(2)
		gen, err := txgen.New(cfg.TxGen, c.engine, c.regular, cfg.SenderDistribution, txIssuer, c.store)
		if err != nil {
			return err
		}
		c.gen = gen
		c.miner.OnBlockMined = func(b *types.Block, _ *mining.Pool) {
			gen.NoteIncluded(b.TxHashes)
		}
	}

	// Peer churn over the regular population.
	if cfg.Churn.Interval > 0 {
		c.churn = newChurnDriver(cfg.Churn, c.engine, c.regular, cfg.OutDegree)
	}

	// Optional selfish block-withholding attack on one pool.
	if cfg.WithholdingPool != "" {
		if !c.miner.ConfigureWithholding(cfg.WithholdingPool, cfg.WithholdDepth) {
			return fmt.Errorf("core: cannot attach withholding to pool %q (depth %d)",
				cfg.WithholdingPool, cfg.WithholdDepth)
		}
	}
	return nil
}

// Engine exposes the simulation engine (tests and diagnostics).
func (c *Campaign) Engine() *sim.Engine { return c.engine }

// Registry exposes the global block registry.
func (c *Campaign) Registry() *chain.Registry { return c.registry }

// Store exposes the transaction store.
func (c *Campaign) Store() *txgen.Store { return c.store }

// Recorder exposes the collected measurement records.
func (c *Campaign) Recorder() *measure.MemoryRecorder { return c.recorder }

// Miner exposes the mining subsystem.
func (c *Campaign) Miner() *mining.Miner { return c.miner }

// Run executes the campaign and returns the analyzed results.
func (c *Campaign) Run() (*Results, error) {
	start := time.Now()
	c.miner.Start(c.cfg.Duration)
	if c.gen != nil {
		c.gen.Start(c.cfg.Duration)
	}
	if c.churn != nil {
		c.churn.Start(c.cfg.Duration)
	}
	if _, err := c.engine.Run(c.cfg.Duration); err != nil {
		return nil, fmt.Errorf("core: simulation: %w", err)
	}

	dataset := c.Dataset()
	res := &Results{
		Dataset: dataset,
		Stats: RunStats{
			VirtualDuration: c.cfg.Duration,
			WallDuration:    time.Since(start),
			Events:          c.engine.EventsRun(),
			Messages:        c.network.Delivered(),
			BlocksCreated:   c.registry.Len() - 1,
			TxsCreated:      c.store.Len(),
			Nodes:           c.network.NumNodes(),
		},
	}
	if err := c.analyze(dataset, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Dataset assembles the analysis dataset from collected state. Only
// primary (non-auxiliary) vantages participate in first-observation
// and delay analyses.
func (c *Campaign) Dataset() *analysis.Dataset {
	names := make([]string, 0, len(c.cfg.Vantages))
	for _, v := range c.cfg.Vantages {
		if v.Auxiliary {
			continue
		}
		names = append(names, v.Name)
	}
	return &analysis.Dataset{
		Vantages:   names,
		Blocks:     c.recorder.Blocks,
		Txs:        c.recorder.Txs,
		Chain:      c.registry,
		PoolNames:  c.cfg.PoolNames(),
		InterBlock: c.cfg.Mining.InterBlockTime,
		Duration:   c.cfg.Duration,
	}
}

// LogMeta builds the metadata entry for campaign log files, letting
// cmd/ethanalyze reconstruct the analysis context from a log alone.
func (c *Campaign) LogMeta() *logs.Meta {
	meta := &logs.Meta{
		PoolNames:         c.cfg.PoolNames(),
		RedundancyVantage: c.cfg.RedundancyVantage,
		InterBlockNs:      int64(c.cfg.Mining.InterBlockTime),
		DurationNs:        int64(c.cfg.Duration),
		NetworkSize:       c.network.NumNodes(),
		Seed:              c.cfg.Seed,
	}
	for _, v := range c.cfg.Vantages {
		if !v.Auxiliary {
			meta.Vantages = append(meta.Vantages, v.Name)
		}
	}
	return meta
}

// WriteLogs persists the campaign's records, chain dump and metadata to
// a JSONL file compatible with cmd/ethanalyze.
func (c *Campaign) WriteLogs(path string) error {
	return logs.WriteCampaignFile(path, c.LogMeta(), c.recorder.Blocks, c.recorder.Txs, c.registry)
}

func (c *Campaign) analyze(dataset *analysis.Dataset, res *Results) error {
	var err error
	res.Propagation, err = analysis.BlockPropagation(dataset)
	if err != nil {
		return fmt.Errorf("core: propagation analysis: %w", err)
	}
	if c.cfg.RedundancyVantage != "" {
		res.Redundancy, err = analysis.Redundancy(dataset, c.cfg.RedundancyVantage, c.network.NumNodes())
		if err != nil {
			return fmt.Errorf("core: redundancy analysis: %w", err)
		}
	}
	res.FirstObs = analysis.FirstObservation(dataset)
	res.PoolGeo = analysis.PoolGeography(dataset, 15)
	res.Empty = analysis.EmptyBlocks(dataset, 15)
	res.Forks = analysis.Forks(dataset)
	res.OneMiner = analysis.OneMinerForks(dataset, res.Forks)
	res.Sequences = analysis.Sequences(dataset, 6)
	res.Rewards = analysis.Rewards(dataset)
	res.Finality = analysis.Finality(dataset, 14)
	res.Throughput = analysis.Throughput(dataset)
	res.InterBlock = analysis.InterBlock(dataset)
	res.Withholding = analysis.Withholding(dataset)
	res.GeoDelay = analysis.GeoDelay(dataset)
	if c.cfg.EnableTxWorkload {
		res.Commit = analysis.CommitTimes(dataset)
		res.Ordering = analysis.TransactionOrdering(dataset)
		res.TxProp = analysis.TxPropagation(dataset)
		res.FeeMarket = analysis.FeeMarket(dataset, func(h types.Hash) (uint64, bool) {
			tx := c.store.Get(h)
			if tx == nil {
				return 0, false
			}
			return tx.GasPrice, true
		})
	}
	return nil
}

// VantageRegionName returns the display name used for a vantage region
// in the paper's figures ("Eastern Asia", ...).
func VantageRegionName(r geo.Region) string { return r.String() }
