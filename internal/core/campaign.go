package core

import (
	"context"
	"fmt"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/chain"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/mining"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/scenario"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/txgen"
	"ethmeasure/internal/types"
)

// RunStats captures bookkeeping about a finished campaign.
type RunStats struct {
	VirtualDuration time.Duration
	WallDuration    time.Duration
	Events          uint64
	Messages        uint64
	BlocksCreated   int
	TxsCreated      int
	Nodes           int

	// BlockRecords and TxRecords count the measurement records that
	// flowed through the record bus (all vantages, including auxiliary
	// ones) — the unit the analysis pipeline's throughput is measured
	// in.
	BlockRecords int
	TxRecords    int
}

// Results bundles the dataset and every per-figure analysis of one
// campaign. Analyses that need the transaction workload are nil when
// it was disabled.
type Results struct {
	Dataset *analysis.Dataset
	Stats   RunStats

	Propagation *analysis.PropagationResult      // Figure 1
	Redundancy  *analysis.RedundancyResult       // Table II
	FirstObs    *analysis.FirstObservationResult // Figure 2
	PoolGeo     *analysis.PoolGeographyResult    // Figure 3
	Commit      *analysis.CommitTimeResult       // Figure 4
	Ordering    *analysis.OrderingResult         // Figure 5
	Empty       *analysis.EmptyBlocksResult      // Figure 6
	Forks       *analysis.ForksResult            // Table III
	OneMiner    *analysis.OneMinerForksResult    // §III-C5
	Sequences   *analysis.SequencesResult        // Figure 7
	TxProp      *analysis.TxPropagationResult    // §III-A1

	// Extension analyses beyond the paper's figures.
	Rewards     *analysis.RewardsResult     // §V: uncle/one-miner-fork profit
	Finality    *analysis.FinalityResult    // §III-D: k-block rule safety
	Throughput  *analysis.ThroughputResult  // §V: wasted resources
	InterBlock  *analysis.InterBlockResult  // §III-C1: block intervals
	Withholding *analysis.WithholdingResult // §III-D: burst-publication forensic
	GeoDelay    *analysis.GeoDelayResult    // Figure 1 drill-down per vantage
	FeeMarket   *analysis.FeeMarketResult   // fee vs inclusion-delay bands

	// Scenarios annotates the run with the composed interventions and
	// their scenario_*-prefixed metrics (merged into KeyMetrics). Nil
	// when the campaign ran vanilla.
	Scenarios *analysis.ScenarioResult

	// Protocol is the canonical tag of the consensus protocol the
	// campaign ran under ("ethereum", "bitcoin",
	// "ghost-inclusive:depth=10", ...).
	Protocol string
}

// Campaign is one configured measurement run.
type Campaign struct {
	cfg Config

	// pool, when non-nil, is the warm-run pool this campaign draws its
	// recyclable state from (see Pool).
	pool *Pool

	// proto is the consensus rule set built from cfg.Protocol; the
	// registry, miner and analyses all dispatch through it.
	proto consensus.Protocol

	engine    *sim.Engine
	sharded   *sim.Sharded // nil when the campaign runs the serial engine
	network   *simnet.Network
	registry  *chain.Registry
	store     *txgen.Store
	miner     *mining.Miner
	gen       *txgen.Generator
	vantages  []*measure.Vantage
	regular   []*p2p.Node
	gateways  [][]*p2p.Node
	vantNodes []*p2p.Node

	// Composed scenario plugins (legacy churn/withholding fields
	// included), their shared environment, and the result annotation
	// snapshotted at the end of Simulate.
	scenarios    []scenario.Scenario
	scenarioEnv  *scenario.Env
	scenarioTags []string
	scenarioRes  *analysis.ScenarioResult

	// Record pipeline: every vantage writes to the bus, which fans out
	// to the streaming analysis collector, the optional in-memory
	// retainer and the optional JSONL spill writer.
	bus       *measure.Bus
	collector *analysis.Collector
	recorder  *measure.MemoryRecorder // nil in bounded-memory mode
	spill     *logs.FileWriter        // nil unless Config.SpillPath set
	dataset   *analysis.Dataset

	simulated bool
	simWall   time.Duration

	// instrFP is the record fingerprinter of an instrumented run
	// (SimulateContext with checkpointing), kept for Fingerprints.
	instrFP *logs.RecordFingerprinter

	// Snapshots taken while the simulation state is still alive, so
	// Analyze and LogMeta keep working after ReleaseNetwork.
	numNodes  int
	events    uint64
	delivered uint64
}

// NewCampaign validates the configuration and builds the full system:
// network, topology, pool gateways, vantages, workloads.
func NewCampaign(cfg Config) (*Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg}
	if err := c.build(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Campaign) build() error {
	cfg := &c.cfg
	proto, err := consensus.Build(cfg.Protocol)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	c.proto = proto
	if cfg.Mining.InterBlockTime == 0 {
		// An unset mining interval means "the protocol's native rate"
		// (Bitcoin's 10 minutes, Ethereum's 13.3 s). The presets pin the
		// interval explicitly so protocol comparisons default to equal
		// block rates.
		cfg.Mining.InterBlockTime = proto.TargetInterval()
		if cfg.Mining.BlockCapacity <= 0 {
			// The capacity invariant depends on the interval just
			// adopted; without this a hand-built config would mine
			// zero-capacity (always-empty) blocks.
			ApplyCapacity(cfg)
		}
	}
	if c.pool != nil {
		c.engine = c.pool.takeEngine(cfg.Seed)
		c.network = c.pool.takeNetwork(c.engine, cfg.Latency)
	} else {
		c.engine = sim.NewEngine(cfg.Seed)
		c.network = simnet.New(c.engine, cfg.Latency)
	}
	if cfg.CoalesceDelivery {
		// Serial engine only: when sharding is enabled below, Send's
		// sharded path bypasses coalescing (batches would straddle the
		// barrier exchange).
		c.network.EnableCoalescing()
	}
	if shards := cfg.ResolveShards(); shards > 1 {
		// Conservative PDES: the lookahead is the smallest delay any
		// message can take — the latency model's floor over every region
		// pair (diagonals included, since shards may split a region)
		// plus the fixed per-message overhead. Sharding must be enabled
		// before any node exists so every node gets a shard.
		lookahead := cfg.Latency.MinSampleFloor() + c.network.MinOverhead
		if c.pool != nil {
			c.sharded = c.pool.takeSharded(c.engine, shards, lookahead)
		} else {
			c.sharded = sim.NewSharded(c.engine, shards, lookahead)
		}
		c.network.EnableSharding(c.sharded, shardPicker(cfg.NodeDistribution, shards))
	}
	blockIssuer := types.NewHashIssuer(1)
	c.registry = chain.NewRegistry(cfg.GenesisNumber, blockIssuer)
	c.registry.SetProtocol(proto)
	c.store = txgen.NewStore()

	// Record pipeline: the dataset carries the campaign context the
	// analysis finalizers need; its record slices stay nil unless
	// RetainRecords fills them after the run.
	c.dataset = &analysis.Dataset{
		Vantages:   cfg.PrimaryVantages(),
		Chain:      c.registry,
		PoolNames:  cfg.PoolNames(),
		InterBlock: cfg.Mining.InterBlockTime,
		Duration:   cfg.Duration,
	}
	if c.pool != nil {
		c.collector = c.pool.takeCollector(c.dataset, cfg.RedundancyVantage)
	} else {
		c.collector = analysis.NewCollector(c.dataset, cfg.RedundancyVantage)
	}
	c.bus = measure.NewBus(c.collector)
	if cfg.RetainRecords {
		c.recorder = measure.NewMemoryRecorder()
		c.bus.Attach(c.recorder)
	}

	placeRNG := c.engine.RNG("placement")
	speedRNG := c.engine.RNG("procspeed")

	// Regular nodes, with mixed hardware speeds.
	for i := 0; i < cfg.NumNodes; i++ {
		region := cfg.NodeDistribution.Sample(placeRNG)
		endpoint, err := c.network.AddNode(region, cfg.NodeBandwidth)
		if err != nil {
			return err
		}
		node := c.newP2PNode(endpoint)
		lo, hi := cfg.NodeProcSpeedMin, cfg.NodeProcSpeedMax
		if hi > lo {
			node.SetProcSpeed(lo + speedRNG.Float64()*(hi-lo))
		} else if lo > 0 {
			node.SetProcSpeed(lo)
		}
		c.regular = append(c.regular, node)
	}
	buildTopology := p2p.BuildRandomTopology
	if cfg.UseDiscovery {
		buildTopology = p2p.BuildDiscoveryTopology
	}
	if err := buildTopology(c.engine.RNG("topology"), c.regular, cfg.OutDegree); err != nil {
		return err
	}

	// Pool gateways: one node per configured region per pool, dialing
	// into the regular population. Pools run capable hardware.
	var allGateways []*p2p.Node
	for i := range cfg.Pools {
		spec := &cfg.Pools[i]
		var gws []*p2p.Node
		for _, region := range spec.Gateways {
			endpoint, err := c.network.AddNode(region, cfg.GatewayBandwidth)
			if err != nil {
				return err
			}
			gw := c.newP2PNode(endpoint)
			gw.SetProcSpeed(cfg.GatewayProcSpeed)
			p2p.ConnectToRandom(c.engine.RNG("topology"), gw, c.regular, cfg.GatewayPeers)
			gws = append(gws, gw)
		}
		c.gateways = append(c.gateways, gws)
		allGateways = append(allGateways, gws...)
	}

	// Measurement vantages. Primary vantages run "unlimited peers" and
	// therefore also end up adjacent to a share of pool gateway nodes;
	// auxiliary vantages model default clients and do not.
	clockRNG := c.engine.RNG("clock")
	topoRNG := c.engine.RNG("topology")
	for _, vs := range cfg.Vantages {
		endpoint, err := c.network.AddNode(vs.Region, cfg.VantageBandwidth)
		if err != nil {
			return err
		}
		node := c.newP2PNode(endpoint)
		node.SetProcSpeed(cfg.VantageProcSpeed)
		peers := vs.Peers
		if peers > len(c.regular) {
			peers = len(c.regular)
		}
		p2p.ConnectToRandom(topoRNG, node, c.regular, peers)
		if !vs.Auxiliary && cfg.VantageGatewayFraction > 0 {
			k := int(cfg.VantageGatewayFraction*float64(len(allGateways)) + 0.5)
			p2p.ConnectToRandom(topoRNG, node, allGateways, k)
		}
		var sink measure.Recorder = c.bus
		if d, ok := node.Scheduler().(sim.Deferrer); ok {
			// Sharded mode: the vantage observes (and draws its clock
			// offsets) on its node's shard, but the bus consumers —
			// collector, memory recorder, spill writer — are serial
			// state, so each finished record is deferred to the barrier.
			sink = &deferRecorder{d: d, bus: c.bus}
		}
		vantage := measure.NewVantage(vs.Name, cfg.Clock, clockRNG.Int63(), sink)
		node.Observer = vantage
		c.vantages = append(c.vantages, vantage)
		c.vantNodes = append(c.vantNodes, node)
	}

	// Mining subsystem.
	miner, err := mining.NewMiner(
		cfg.Mining, c.engine, c.registry, cfg.Pools, c.gateways,
		blockIssuer, c.store.Get,
	)
	if err != nil {
		return err
	}
	c.miner = miner

	// Transaction workload. The mempool-floor controller observes
	// inclusion through the miner's block hook.
	if cfg.EnableTxWorkload {
		txIssuer := types.NewHashIssuer(2)
		gen, err := txgen.New(cfg.TxGen, c.engine, c.regular, cfg.SenderDistribution, txIssuer, c.store)
		if err != nil {
			return err
		}
		c.gen = gen
		c.miner.OnBlockMined = func(b *types.Block, _ *mining.Pool) {
			gen.NoteIncluded(b.TxHashes)
		}
	}

	// Scenario composition: registered plugins replace the old
	// special-cased churn/withholding wiring. Build instantiates every
	// configured spec (legacy fields first), then topology mutators
	// rewire the assembled graph and miner strategies attach to their
	// pools; interventions wait for Simulate.
	specs := cfg.scenarioSpecs()
	scenarios, err := scenario.Build(specs)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	c.scenarios = scenarios
	c.scenarioTags = scenario.Tags(specs)
	c.scenarioEnv = &scenario.Env{
		Engine:    c.engine,
		Network:   c.network,
		Registry:  c.registry,
		P2P:       &cfg.P2P,
		Miner:     c.miner,
		Regular:   c.regular,
		Gateways:  c.gateways,
		Vantages:  c.vantNodes,
		OutDegree: cfg.OutDegree,
		Duration:  cfg.Duration,
	}
	for _, s := range c.scenarios {
		if tm, ok := s.(scenario.TopologyMutator); ok {
			if err := tm.MutateTopology(c.scenarioEnv); err != nil {
				return fmt.Errorf("core: scenario %s: %w", s.Name(), err)
			}
		}
	}
	for _, s := range c.scenarios {
		if ms, ok := s.(scenario.MinerStrategy); ok {
			if err := ms.AttachStrategy(c.miner); err != nil {
				return fmt.Errorf("core: scenario %s: %w", s.Name(), err)
			}
		}
	}

	c.numNodes = c.network.NumNodes()

	// Raw-record spill: stream records to disk as they are produced.
	// The metadata entry leads the file (the network is fully sized
	// here); the chain dump is appended when the run finishes.
	if cfg.SpillPath != "" {
		spill, err := logs.CreateFileFormat(cfg.SpillPath, cfg.SpillFormat)
		if err != nil {
			return err
		}
		spill.Write(&logs.Entry{Kind: logs.KindMeta, Meta: c.LogMeta()})
		// Force the metadata entry through to the OS now: a full disk
		// (or any unwritable spill target) must fail the run at start,
		// not after the campaign has burned hours and hits finalize.
		if err := spill.Flush(); err != nil {
			spill.Close()
			return fmt.Errorf("core: spill %s: %w", cfg.SpillPath, err)
		}
		c.spill = spill
		c.bus.Attach(spill)
	}
	return nil
}

// newP2PNode builds one protocol node, drawing on the pool's recycler
// when the campaign is pooled.
func (c *Campaign) newP2PNode(endpoint *simnet.Node) *p2p.Node {
	if c.pool != nil {
		return c.pool.rec.NewNode(&c.cfg.P2P, c.network, endpoint, c.registry)
	}
	return p2p.NewNode(&c.cfg.P2P, c.network, endpoint, c.registry)
}

// Engine exposes the serial simulation engine (tests and diagnostics).
// In sharded mode this is the coordinator's global engine: the serial
// timeline mining, workloads and interventions run on.
func (c *Campaign) Engine() *sim.Engine { return c.engine }

// Sharded exposes the sharded coordinator, or nil when the campaign
// runs the serial engine (Config.Shards resolved to 1).
func (c *Campaign) Sharded() *sim.Sharded { return c.sharded }

// StopSimulation halts a running Simulate at the next safe point: the
// current serial event, or — mid-window — within a bounded number of
// shard events. Simulate then returns an error wrapping sim.ErrStopped.
// Safe to call from an engine callback or from another goroutine.
func (c *Campaign) StopSimulation() {
	if c.sharded != nil {
		c.sharded.Stop()
		return
	}
	if c.engine != nil {
		c.engine.Stop()
	}
}

// Registry exposes the global block registry.
func (c *Campaign) Registry() *chain.Registry { return c.registry }

// Protocol exposes the consensus rule set the campaign runs under.
func (c *Campaign) Protocol() consensus.Protocol { return c.proto }

// Store exposes the transaction store.
func (c *Campaign) Store() *txgen.Store { return c.store }

// Recorder exposes the collected measurement records. Nil when the
// campaign runs in bounded-memory mode (Config.RetainRecords false).
func (c *Campaign) Recorder() *measure.MemoryRecorder { return c.recorder }

// Collector exposes the streaming analysis pipeline.
func (c *Campaign) Collector() *analysis.Collector { return c.collector }

// AttachRecorder subscribes an additional consumer to the campaign's
// record bus (e.g. a custom spill writer or a record hasher). Attach
// before Run/Simulate: the bus offers no replay.
func (c *Campaign) AttachRecorder(r measure.Recorder) { c.bus.Attach(r) }

// Miner exposes the mining subsystem.
func (c *Campaign) Miner() *mining.Miner { return c.miner }

// Scenarios exposes the composed scenario plugins in composition order
// (legacy churn/withholding fields first). Nil after ReleaseNetwork.
func (c *Campaign) Scenarios() []scenario.Scenario { return c.scenarios }

// ScenarioTags returns the canonical tags of the composed scenarios.
// Unlike Scenarios it survives ReleaseNetwork.
func (c *Campaign) ScenarioTags() []string { return c.scenarioTags }

// Run executes the campaign and returns the analyzed results. It is
// Simulate followed by Analyze; callers that want to profile the two
// phases separately (cmd/ethbench) invoke them directly, and callers
// needing cancellation or live progress use RunContext.
func (c *Campaign) Run() (*Results, error) {
	return c.RunContext(context.Background(), RunOptions{})
}

// Simulate executes the simulation phase: the full virtual campaign,
// with every measurement record streaming through the bus. It also
// completes the spill file (chain dump) when one is configured. It is
// SimulateContext with a background context and no instrumentation.
func (c *Campaign) Simulate() error {
	return c.SimulateContext(context.Background(), RunOptions{})
}

// snapshotScenarios folds the composed scenarios into the result
// annotation: the canonical tags plus every reporter's metrics under
// "scenario_<name>_<metric>". Taken at the end of Simulate, while the
// plugin state is still alive (ReleaseNetwork drops it).
func (c *Campaign) snapshotScenarios() *analysis.ScenarioResult {
	if len(c.scenarios) == 0 {
		return nil
	}
	res := &analysis.ScenarioResult{Tags: c.scenarioTags}
	counts := make(map[string]int, len(c.scenarios))
	for _, s := range c.scenarios {
		counts[s.Name()]++
	}
	seen := make(map[string]int, len(counts))
	for _, s := range c.scenarios {
		seen[s.Name()]++
		// Single instances keep the plain prefix; duplicate names get
		// an ordinal (scenario_partition1_*, scenario_partition2_*) so
		// composed same-name scenarios never clobber each other.
		prefix := "scenario_" + s.Name()
		if counts[s.Name()] > 1 {
			prefix = fmt.Sprintf("scenario_%s%d", s.Name(), seen[s.Name()])
		}
		rep, ok := s.(scenario.MetricsReporter)
		if !ok {
			continue
		}
		for name, v := range rep.Metrics() {
			if res.Metrics == nil {
				res.Metrics = make(analysis.KeyMetrics)
			}
			res.Metrics[prefix+"_"+name] = v
		}
	}
	return res
}

// ReleaseNetwork drops the simulated network — nodes, links, per-peer
// caches, the event engine's slab, the workload drivers — so the
// analysis phase's working set is the record pipeline and the block
// registry, not the dead simulation graph. Call it between Simulate
// and Analyze on memory-constrained long campaigns; afterwards
// Engine() and Miner() return nil while Analyze, WriteLogs, Dataset,
// Registry and Store keep working. Run does not call it, so the
// accessors stay valid on the default path.
func (c *Campaign) ReleaseNetwork() {
	if !c.simulated {
		return // the simulation still needs all of it
	}
	c.engine = nil
	c.sharded = nil
	c.network = nil
	c.miner = nil
	c.gen = nil
	c.vantages = nil
	c.regular = nil
	c.gateways = nil
	c.vantNodes = nil
	c.scenarios = nil
	c.scenarioEnv = nil
}

// Analyze finalizes every analyzer from the streamed state and the
// block registry — the analysis phase. One pass over the records
// already happened during Simulate; no analyzer re-reads them.
func (c *Campaign) Analyze() (*Results, error) {
	if !c.simulated {
		return nil, fmt.Errorf("core: Analyze before Simulate")
	}
	res := &Results{
		Dataset: c.dataset,
		Stats: RunStats{
			VirtualDuration: c.cfg.Duration,
			WallDuration:    c.simWall,
			Events:          c.events,
			Messages:        c.delivered,
			BlocksCreated:   c.registry.Len() - 1,
			TxsCreated:      c.store.Len(),
			Nodes:           c.numNodes,
			BlockRecords:    c.collector.BlockRecords(),
			TxRecords:       c.collector.TxRecords(),
		},
		Scenarios: c.scenarioRes,
		Protocol:  c.cfg.ProtocolTag(),
	}
	if err := c.analyze(res); err != nil {
		return nil, err
	}
	return res, nil
}

// Dataset returns the campaign's analysis dataset: the campaign
// context always, plus the raw record slices when RetainRecords is
// set. Only primary (non-auxiliary) vantages participate in
// first-observation and delay analyses.
func (c *Campaign) Dataset() *analysis.Dataset { return c.dataset }

// LogMeta builds the metadata entry for campaign log files, letting
// cmd/ethanalyze reconstruct the analysis context from a log alone.
func (c *Campaign) LogMeta() *logs.Meta {
	meta := &logs.Meta{
		PoolNames:         c.cfg.PoolNames(),
		RedundancyVantage: c.cfg.RedundancyVantage,
		InterBlockNs:      int64(c.cfg.Mining.InterBlockTime),
		DurationNs:        int64(c.cfg.Duration),
		NetworkSize:       c.numNodes,
		Seed:              c.cfg.Seed,
		Scenarios:         c.scenarioTags,
		Protocol:          c.cfg.ProtocolTag(),
	}
	meta.Vantages = c.cfg.PrimaryVantages()
	return meta
}

// WriteLogs persists the campaign's records, chain dump and metadata to
// a file compatible with cmd/ethanalyze, encoded per
// Config.SpillFormat (binary by default). It needs the retained
// records; bounded-memory campaigns stream to Config.SpillPath instead.
func (c *Campaign) WriteLogs(path string) error {
	if c.recorder == nil {
		return fmt.Errorf("core: raw records were not retained (RetainRecords=false); set Config.SpillPath to stream them to disk during the run")
	}
	return logs.WriteCampaignFileFormat(path, c.cfg.SpillFormat, c.LogMeta(), c.recorder.Blocks, c.recorder.Txs, c.registry)
}

// analyze assembles every per-figure result: record-driven analyses
// finalize from the collector's shared accumulators, chain-driven ones
// read the registry through the dataset.
func (c *Campaign) analyze(res *Results) error {
	dataset := c.dataset
	var err error
	res.Propagation, err = c.collector.Propagation()
	if err != nil {
		return fmt.Errorf("core: propagation analysis: %w", err)
	}
	if c.cfg.RedundancyVantage != "" {
		res.Redundancy, err = c.collector.Redundancy(c.numNodes)
		if err != nil {
			return fmt.Errorf("core: redundancy analysis: %w", err)
		}
	}
	res.FirstObs = c.collector.FirstObservation()
	res.PoolGeo = c.collector.PoolGeography(15)
	res.Empty = analysis.EmptyBlocks(dataset, 15)
	res.Forks = analysis.Forks(dataset)
	res.OneMiner = analysis.OneMinerForks(dataset, res.Forks)
	res.Sequences = analysis.Sequences(dataset, 6)
	res.Rewards = analysis.Rewards(dataset)
	res.Finality = analysis.Finality(dataset, 14)
	res.Throughput = analysis.Throughput(dataset)
	res.InterBlock = analysis.InterBlock(dataset)
	res.Withholding = c.collector.Withholding()
	res.GeoDelay = c.collector.GeoDelay()
	if c.cfg.EnableTxWorkload {
		res.Commit = c.collector.Commit()
		res.Ordering = c.collector.Ordering()
		res.TxProp = c.collector.TxPropagation()
		res.FeeMarket = c.collector.FeeMarket(func(h types.Hash) (uint64, bool) {
			tx := c.store.Get(h)
			if tx == nil {
				return 0, false
			}
			return tx.GasPrice, true
		})
	}
	return nil
}

// VantageRegionName returns the display name used for a vantage region
// in the paper's figures ("Eastern Asia", ...).
func VantageRegionName(r geo.Region) string { return r.String() }
