package core

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/scenario"
)

// runFingerprinted executes cfg and returns the record and chain
// fingerprints plus the results.
func runFingerprinted(t *testing.T, cfg Config) (string, string, *Results) {
	t.Helper()
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hasher := newRecordHasher()
	campaign.AttachRecorder(hasher)
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	return hasher.Sum(), chainFingerprint(campaign), res
}

// TestLegacyChurnEqualsScenarioSpec is the plugin-conversion contract:
// configuring churn through the legacy Config.Churn field and through
// an explicit Scenarios spec must be bit-identical runs.
func TestLegacyChurnEqualsScenarioSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("conversion contract runs in the full suite")
	}
	legacy := tinyConfig()
	legacy.EnableTxWorkload = false
	legacy.Churn = ChurnConfig{Interval: 30 * time.Second, DowntimeMean: time.Minute, RedialPeers: 3}

	spec := tinyConfig()
	spec.EnableTxWorkload = false
	spec.Scenarios = []scenario.Spec{{
		Name:   scenario.ChurnName,
		Params: map[string]string{"interval": "30s", "downtime": "1m0s", "redial": "3"},
	}}

	recA, chainA, resA := runFingerprinted(t, legacy)
	recB, chainB, resB := runFingerprinted(t, spec)
	if recA != recB {
		t.Error("record streams diverged between legacy churn and scenario spec")
	}
	if chainA != chainB {
		t.Error("chains diverged between legacy churn and scenario spec")
	}
	if resA.Scenarios.Metrics["scenario_churn_events"] != resB.Scenarios.Metrics["scenario_churn_events"] {
		t.Errorf("churn events diverged: %v vs %v", resA.Scenarios.Metrics, resB.Scenarios.Metrics)
	}
}

// TestLegacyWithholdingEqualsScenarioSpec: same contract for the
// withholding attack.
func TestLegacyWithholdingEqualsScenarioSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("conversion contract runs in the full suite")
	}
	legacy := tinyConfig()
	legacy.EnableTxWorkload = false
	legacy.WithholdingPool = "Ethermine"
	legacy.WithholdDepth = 3

	spec := tinyConfig()
	spec.EnableTxWorkload = false
	spec.Scenarios = []scenario.Spec{{
		Name:   scenario.WithholdName,
		Params: map[string]string{"pool": "Ethermine", "depth": "3"},
	}}

	recA, chainA, _ := runFingerprinted(t, legacy)
	recB, chainB, _ := runFingerprinted(t, spec)
	if recA != recB || chainA != chainB {
		t.Error("legacy withholding and scenario spec diverged")
	}
}

// scenarioConfig composes the given spec strings onto a tiny
// propagation-only campaign.
func scenarioConfig(t *testing.T, specs ...string) Config {
	t.Helper()
	cfg := tinyConfig()
	cfg.EnableTxWorkload = false
	for _, raw := range specs {
		spec, err := scenario.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scenarios = append(cfg.Scenarios, spec)
	}
	return cfg
}

func TestPartitionEndToEnd(t *testing.T) {
	cfg := scenarioConfig(t, "partition:a=EA+SEA,start=2m,dur=3m")
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios == nil {
		t.Fatal("no scenario annotation")
	}
	m := res.Scenarios.Metrics
	if m["scenario_partition_severed_links"] == 0 {
		t.Error("partition severed no links")
	}
	if m["scenario_partition_healed"] != 1 {
		t.Error("partition window did not heal")
	}
	// The network must survive the split: blocks still propagate and
	// the chain still grows.
	if res.Propagation.Blocks == 0 || res.Stats.BlocksCreated < 20 {
		t.Errorf("campaign degenerated under partition: %d blocks observed, %d created",
			res.Propagation.Blocks, res.Stats.BlocksCreated)
	}
	if got, want := res.Scenarios.Tags, "partition:a=EA+SEA,dur=3m,start=2m"; len(got) != 1 || got[0] != want {
		t.Errorf("tags = %v, want [%s]", got, want)
	}
}

func TestPartitionRaisesForkRate(t *testing.T) {
	if testing.Short() {
		t.Skip("longer statistical run")
	}
	base := tinyConfig()
	base.Duration = time.Hour
	base.EnableTxWorkload = false
	_, _, resBase := runFingerprinted(t, base)

	// Cut Asia off from the rest for most of the run: pool gateways on
	// the two sides keep mining on diverging heads.
	cut := base
	cut.Scenarios = []scenario.Spec{{
		Name:   scenario.PartitionName,
		Params: map[string]string{"a": "EA+SEA", "start": "5m", "dur": "40m"},
	}}
	_, _, resCut := runFingerprinted(t, cut)

	if resCut.Forks.MainShare >= resBase.Forks.MainShare {
		t.Errorf("partition did not raise fork rate: main share %.4f (cut) vs %.4f (base)",
			resCut.Forks.MainShare, resBase.Forks.MainShare)
	}
}

func TestRelayOverlayEndToEnd(t *testing.T) {
	base := scenarioConfig(t)
	overlay := scenarioConfig(t, "relayoverlay:hubs=2,peers=16")

	campaignBase, err := NewCampaign(base)
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := campaignBase.Run()
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := NewCampaign(overlay)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The hubs joined the network and got wired in.
	if res.Stats.Nodes != resBase.Stats.Nodes+2 {
		t.Errorf("nodes = %d, want base %d + 2 hubs", res.Stats.Nodes, resBase.Stats.Nodes)
	}
	m := res.Scenarios.Metrics
	if m["scenario_relayoverlay_hubs"] != 2 {
		t.Errorf("hubs metric = %v", m["scenario_relayoverlay_hubs"])
	}
	if m["scenario_relayoverlay_links"] == 0 {
		t.Error("relay hubs made no links")
	}
	// Propagation still healthy with the overlay in place.
	if res.Propagation.Blocks == 0 || res.Propagation.MedianMs <= 0 {
		t.Error("no propagation measured with relay overlay")
	}
}

func TestEclipseEndToEnd(t *testing.T) {
	cfg := scenarioConfig(t, "eclipse:node=7,attackers=3")
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The victim's peer set is exactly its attackers before the run.
	var eclipse *scenario.Eclipse
	for _, s := range campaign.Scenarios() {
		if e, ok := s.(*scenario.Eclipse); ok {
			eclipse = e
		}
	}
	if eclipse == nil {
		t.Fatal("eclipse scenario not composed")
	}
	if eclipse.Victim() != 7 {
		t.Errorf("victim = %d, want 7", eclipse.Victim())
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios.Metrics["scenario_eclipse_attackers"] != 3 {
		t.Errorf("attackers metric = %v", res.Scenarios.Metrics)
	}
	if res.Propagation.Blocks == 0 {
		t.Error("network degenerated under single-node eclipse")
	}
}

func TestBandwidthAndChurnBurstEndToEnd(t *testing.T) {
	cfg := scenarioConfig(t,
		"bandwidth:regions=EA,factor=0.05,start=2m,dur=3m",
		"churnburst:count=10,start=4m,downtime=30s",
	)
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Scenarios.Metrics
	if m["scenario_bandwidth_nodes_affected"] == 0 {
		t.Error("bandwidth throttle hit no nodes")
	}
	if m["scenario_churnburst_restarts"] != 10 {
		t.Errorf("churnburst restarts = %v, want 10", m["scenario_churnburst_restarts"])
	}
	if len(res.Scenarios.Tags) != 2 {
		t.Errorf("tags = %v", res.Scenarios.Tags)
	}
	if res.Stats.BlocksCreated < 20 {
		t.Errorf("chain stalled: %d blocks", res.Stats.BlocksCreated)
	}
}

// TestComposedScenariosDeterministic: a campaign stacking several
// scenarios reproduces bit-for-bit, and a different seed diverges.
func TestComposedScenariosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("three full runs; covered by the full suite")
	}
	build := func(seed int64) Config {
		cfg := scenarioConfig(t,
			"relayoverlay",
			"partition:a=EA,start=3m,dur=2m",
			"churnburst:count=5,start=6m",
		)
		cfg.Seed = seed
		return cfg
	}
	recA, chainA, _ := runFingerprinted(t, build(1))
	recB, chainB, _ := runFingerprinted(t, build(1))
	recC, chainC, _ := runFingerprinted(t, build(2))
	if recA != recB || chainA != chainB {
		t.Error("identical composed-scenario configs diverged")
	}
	if recA == recC && chainA == chainC {
		t.Error("different seeds produced identical composed-scenario runs")
	}
}

// TestScenarioKeyMetricsMerged: scenario metrics surface in the
// campaign's KeyMetrics map for sweep aggregation.
func TestScenarioKeyMetricsMerged(t *testing.T) {
	cfg := scenarioConfig(t, "churnburst:count=5,start=2m")
	_, _, res := runFingerprinted(t, cfg)
	km := res.KeyMetrics()
	if km["scenario_churnburst_restarts"] != 5 {
		t.Errorf("KeyMetrics missing scenario entry: %v", km.Names())
	}
}

// TestScenarioTagsInLogMeta: the composed tags travel through the log
// pipeline (WriteLogs and SpillPath both lead with the meta entry).
func TestScenarioTagsInLogMeta(t *testing.T) {
	cfg := scenarioConfig(t, "eclipse:node=3")
	cfg.Churn = ChurnConfig{Interval: time.Minute, DowntimeMean: time.Minute}
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scn.jsonl")
	if err := campaign.WriteLogs(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := logs.ReadCampaignFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Meta.Scenarios) != 2 {
		t.Fatalf("meta scenarios = %v, want churn + eclipse", loaded.Meta.Scenarios)
	}
	if !strings.HasPrefix(loaded.Meta.Scenarios[0], "churn:") || loaded.Meta.Scenarios[1] != "eclipse:node=3" {
		t.Errorf("meta scenarios = %v", loaded.Meta.Scenarios)
	}
}

// TestScenarioValidationErrors: config validation catches unknown
// scenarios and bad parameters before any campaign is built.
func TestScenarioValidationErrors(t *testing.T) {
	for _, raw := range []string{"nope", "partition", "churn:interval=banana"} {
		cfg := tinyConfig()
		spec, err := scenario.Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		cfg.Scenarios = []scenario.Spec{spec}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted scenario %q", raw)
		}
		if _, err := NewCampaign(cfg); err == nil {
			t.Errorf("NewCampaign accepted scenario %q", raw)
		}
	}
	// Attach-time failure: withhold names a pool that does not exist.
	cfg := tinyConfig()
	cfg.Scenarios = []scenario.Spec{{
		Name:   scenario.WithholdName,
		Params: map[string]string{"pool": "NoSuchPool"},
	}}
	if _, err := NewCampaign(cfg); err == nil {
		t.Error("NewCampaign accepted withholding on unknown pool")
	}
}

// TestPartitionSeversMutatorAddedLinks: a relay hub added by a
// topology mutator must not bridge a later partition — the cut scans
// mutator-added nodes too (Env.Added).
func TestPartitionSeversMutatorAddedLinks(t *testing.T) {
	cfg := scenarioConfig(t,
		"relayoverlay:region=NA,hubs=1,peers=8",
		"partition:a=NA,start=1m", // no heal: the cut persists to the end
	)
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	if len(campaign.scenarioEnv.Added) != 1 {
		t.Fatalf("added nodes = %d, want the relay hub", len(campaign.scenarioEnv.Added))
	}
	// No churn is composed, so no link can form after the cut: every
	// surviving edge must stay on one side, hub links included.
	crossing := 0
	for _, node := range campaign.scenarioEnv.AllNodes() {
		a := node.Endpoint().Region == geo.NorthAmerica
		for _, peer := range node.Peers() {
			if a != (peer.Endpoint().Region == geo.NorthAmerica) {
				crossing++
			}
		}
	}
	if crossing != 0 {
		t.Errorf("%d edge endpoints still cross the NA cut (relay hub bridged the partition?)", crossing)
	}
}

// TestDuplicateScenarioMetricsKeepOrdinals: two instances of the same
// scenario must not clobber each other's metrics.
func TestDuplicateScenarioMetricsKeepOrdinals(t *testing.T) {
	cfg := scenarioConfig(t,
		"withhold:pool=Ethermine,depth=3",
		"withhold:pool=Sparkpool,depth=4",
	)
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Scenarios.Metrics
	for _, key := range []string{"scenario_withhold1_bursts", "scenario_withhold2_bursts"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metric %s missing; have %v", key, m.Names())
		}
	}
	if _, ok := m["scenario_withhold_bursts"]; ok {
		t.Error("un-numbered key present alongside duplicates")
	}
}

// TestOverlappingBandwidthWindowsRestore: two overlapping throttles on
// the same region must unwind to the original bandwidths.
func TestOverlappingBandwidthWindowsRestore(t *testing.T) {
	cfg := scenarioConfig(t,
		"bandwidth:regions=EA,factor=0.5,start=1m,dur=2m",
		"bandwidth:regions=EA,factor=0.5,start=2m,dur=4m",
	)
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float64, 0, 32)
	for _, n := range campaign.network.Nodes() {
		if n.Region == geo.EasternAsia {
			before = append(before, n.Bandwidth)
		}
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, n := range campaign.network.Nodes() {
		if n.Region != geo.EasternAsia {
			continue
		}
		if n.Bandwidth != before[i] {
			t.Fatalf("node bandwidth %v != original %v after both windows closed", n.Bandwidth, before[i])
		}
		i++
	}
}
