package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/scenario"
	"ethmeasure/internal/sim"
)

// ErrResumeDiverged is returned (wrapped, with detail) by
// SimulateContext when a resumed campaign's deterministic replay does
// not pass through the state recorded in the resume checkpoint — the
// binary, configuration or seed changed between the original run and
// the restore, or determinism itself broke. A diverged resume stops
// immediately rather than silently publishing different results under
// the same job.
var ErrResumeDiverged = errors.New("core: resume diverged from checkpoint")

// Progress is a live snapshot of a running simulation, delivered to
// RunOptions.Progress at each progress tick and once more when the
// simulation completes.
type Progress struct {
	// SimTime is the current virtual time; Duration the configured
	// horizon, so SimTime/Duration is the fraction complete.
	SimTime  time.Duration `json:"sim_time"`
	Duration time.Duration `json:"duration"`
	// Events counts engine events executed so far (all shards).
	Events uint64 `json:"events"`
	// BlockRecords and TxRecords count measurement records emitted so
	// far; Blocks is the current block-registry size.
	BlockRecords uint64 `json:"block_records"`
	TxRecords    uint64 `json:"tx_records"`
	Blocks       int    `json:"blocks"`
}

// RunOptions configures the context-aware run path (RunContext /
// SimulateContext). The zero value runs exactly like Run: no
// instrumentation, no checkpoints.
//
// Determinism contract: instrumentation ticks execute on the
// simulation timeline but only read state, so enabling or disabling
// them never changes simulation outcomes. Checkpoint/resume is
// stricter — a resumed run must schedule the identical checkpoint tick
// chain as the original (same CheckpointInterval), so the verification
// barrier lands at the same position in the event order.
type RunOptions struct {
	// Progress, when non-nil, is called every ProgressInterval of
	// virtual time (and once at completion) with live counters. Called
	// on the simulation goroutine: keep it fast, and do not touch the
	// campaign from inside it.
	Progress func(Progress)
	// ProgressInterval is the virtual-time spacing of progress calls.
	// Defaults to one virtual minute.
	ProgressInterval time.Duration
	// Checkpoint, when non-nil, is called every CheckpointInterval of
	// virtual time with a verifiable barrier marker (see
	// logs.Checkpoint). Same calling convention as Progress.
	Checkpoint func(logs.Checkpoint)
	// CheckpointInterval is the virtual-time spacing of checkpoints.
	// Required when Checkpoint or Resume is set — it is part of the
	// resume contract, so there is no implicit default to drift.
	CheckpointInterval time.Duration
	// Resume verifies that this run deterministically replays through
	// the given checkpoint: at the checkpoint's virtual time the run's
	// fingerprints must match, or the run stops with
	// ErrResumeDiverged. Checkpoint ticks at or before the resume
	// point are suppressed (the caller already holds them).
	Resume *logs.Checkpoint
}

// RunContext is Run with cancellation and instrumentation: it executes
// the campaign, honouring ctx and the options' progress/checkpoint
// hooks, then analyzes. Cancelling ctx stops the simulation at the
// next safe point and returns ctx's error.
func (c *Campaign) RunContext(ctx context.Context, opts RunOptions) (*Results, error) {
	if err := c.SimulateContext(ctx, opts); err != nil {
		return nil, err
	}
	return c.Analyze()
}

// runInstr is the per-run instrumentation state: a record-bus consumer
// counting (and optionally fingerprinting) emissions, plus the
// divergence verdict of a resumed run.
type runInstr struct {
	c       *Campaign
	fp      *logs.RecordFingerprinter // nil unless checkpointing/resuming
	nblocks uint64
	ntxs    uint64
	failure error // resume divergence, checked after the engine stops
}

func (ri *runInstr) RecordBlock(rec measure.BlockRecord) {
	ri.nblocks++
	if ri.fp != nil {
		ri.fp.RecordBlock(rec)
	}
}

func (ri *runInstr) RecordTx(rec measure.TxRecord) {
	ri.ntxs++
	if ri.fp != nil {
		ri.fp.RecordTx(rec)
	}
}

// progress builds the live snapshot at the current virtual time.
func (ri *runInstr) progress() Progress {
	c := ri.c
	p := Progress{
		SimTime:      c.engine.Now(),
		Duration:     c.cfg.Duration,
		Events:       c.engine.EventsRun(),
		BlockRecords: ri.nblocks,
		TxRecords:    ri.ntxs,
		Blocks:       c.registry.Len(),
	}
	if c.sharded != nil {
		p.Events = c.sharded.EventsRun()
	}
	return p
}

// checkpoint builds the verifiable barrier marker at the current
// virtual time.
func (ri *runInstr) checkpoint() logs.Checkpoint {
	return logs.Checkpoint{
		SimTimeNs:         int64(ri.c.engine.Now()),
		BlockRecords:      ri.nblocks,
		TxRecords:         ri.ntxs,
		Blocks:            ri.c.registry.Len(),
		RecordFingerprint: ri.fp.Sum(),
		ChainFingerprint:  logs.ChainFingerprint(ri.c.registry),
		WallTime:          time.Now(),
	}
}

// verify compares the replay's state at the resume barrier against the
// stored checkpoint, field by field, building a divergence error that
// names the first mismatch. Engine event counts are deliberately not
// compared: instrumentation ticks themselves execute as events, so the
// raw count is not portable across instrumentation configurations.
func (ri *runInstr) verify(want *logs.Checkpoint) error {
	got := ri.checkpoint()
	switch {
	case got.BlockRecords != want.BlockRecords:
		return fmt.Errorf("%w: at %v: %d block records, checkpoint has %d",
			ErrResumeDiverged, time.Duration(want.SimTimeNs), got.BlockRecords, want.BlockRecords)
	case got.TxRecords != want.TxRecords:
		return fmt.Errorf("%w: at %v: %d tx records, checkpoint has %d",
			ErrResumeDiverged, time.Duration(want.SimTimeNs), got.TxRecords, want.TxRecords)
	case got.Blocks != want.Blocks:
		return fmt.Errorf("%w: at %v: %d registry blocks, checkpoint has %d",
			ErrResumeDiverged, time.Duration(want.SimTimeNs), got.Blocks, want.Blocks)
	case got.RecordFingerprint != want.RecordFingerprint:
		return fmt.Errorf("%w: at %v: record fingerprint %s, checkpoint has %s",
			ErrResumeDiverged, time.Duration(want.SimTimeNs), got.RecordFingerprint, want.RecordFingerprint)
	case got.ChainFingerprint != want.ChainFingerprint:
		return fmt.Errorf("%w: at %v: chain fingerprint %s, checkpoint has %s",
			ErrResumeDiverged, time.Duration(want.SimTimeNs), got.ChainFingerprint, want.ChainFingerprint)
	}
	return nil
}

// validate rejects option combinations the determinism contract cannot
// honour, before any simulation state is touched.
func (o *RunOptions) validate(duration time.Duration) error {
	if o.Checkpoint != nil || o.Resume != nil {
		if o.CheckpointInterval <= 0 {
			return fmt.Errorf("core: checkpointing requires a positive CheckpointInterval")
		}
	}
	if o.Resume != nil {
		at := time.Duration(o.Resume.SimTimeNs)
		switch {
		case at <= 0 || at > duration:
			return fmt.Errorf("core: resume checkpoint at %v outside run horizon %v", at, duration)
		case at%o.CheckpointInterval != 0:
			return fmt.Errorf("core: resume checkpoint at %v not aligned to checkpoint interval %v",
				at, o.CheckpointInterval)
		}
	}
	return nil
}

// SimulateContext executes the simulation phase with cancellation and
// instrumentation. Cancelling ctx stops the run at the next safe point
// (the current serial event, or a bounded number of shard events) and
// returns an error wrapping ctx.Err(). See RunOptions for the
// progress, checkpoint and resume hooks; with zero options and a
// background context this is exactly Simulate.
func (c *Campaign) SimulateContext(ctx context.Context, opts RunOptions) error {
	if c.simulated {
		return fmt.Errorf("core: campaign already simulated")
	}
	if err := opts.validate(c.cfg.Duration); err != nil {
		return err
	}
	c.simulated = true
	start := time.Now()

	// Instrumentation taps the record bus like any other consumer and
	// schedules read-only ticks on the serial timeline. Attach before
	// the workloads start so no record escapes the counters.
	instr := &runInstr{c: c}
	if opts.Progress != nil || opts.Checkpoint != nil || opts.Resume != nil {
		if opts.Checkpoint != nil || opts.Resume != nil {
			instr.fp = logs.NewRecordFingerprinter()
			c.instrFP = instr.fp
		}
		c.bus.Attach(instr)
	}
	if opts.Progress != nil {
		interval := opts.ProgressInterval
		if interval <= 0 {
			interval = time.Minute
		}
		scheduleTicks(c.engine, interval, c.cfg.Duration, func(sim.Time) {
			opts.Progress(instr.progress())
		})
	}
	if opts.Checkpoint != nil || opts.Resume != nil {
		// The resumed run schedules the identical tick chain as the
		// original so the barrier at Resume.SimTimeNs occupies the same
		// position in the event order; ticks strictly before it are
		// no-ops, the tick at it verifies instead of emitting.
		resumeAt := sim.Time(-1)
		if opts.Resume != nil {
			resumeAt = sim.Time(opts.Resume.SimTimeNs)
		}
		scheduleTicks(c.engine, opts.CheckpointInterval, c.cfg.Duration, func(at sim.Time) {
			switch {
			case at < resumeAt:
				// Already covered by the checkpoint being resumed.
			case at == resumeAt:
				if err := instr.verify(opts.Resume); err != nil {
					instr.failure = err
					c.StopSimulation()
				}
			default:
				if opts.Checkpoint != nil {
					opts.Checkpoint(instr.checkpoint())
				}
			}
		})
	}

	c.miner.Start(c.cfg.Duration)
	if c.gen != nil {
		c.gen.Start(c.cfg.Duration)
	}
	// Interventions schedule their timed events in composition order
	// (the legacy churn driver started in exactly this position).
	for _, s := range c.scenarios {
		if iv, ok := s.(scenario.Intervention); ok {
			if err := iv.Start(c.scenarioEnv); err != nil {
				return fmt.Errorf("core: scenario %s: %w", s.Name(), err)
			}
		}
	}

	// Watch for cancellation off the simulation goroutine; Stop is the
	// one engine entry point that tolerates this.
	if ctx.Done() != nil {
		unwatch := make(chan struct{})
		watched := make(chan struct{})
		go func() {
			defer close(watched)
			select {
			case <-ctx.Done():
				c.StopSimulation()
			case <-unwatch:
			}
		}()
		defer func() { close(unwatch); <-watched }()
	}

	var runErr error
	if c.sharded != nil {
		_, runErr = c.sharded.Run(c.cfg.Duration)
	} else {
		_, runErr = c.engine.Run(c.cfg.Duration)
	}
	if runErr != nil {
		if c.spill != nil {
			// Best effort: flush what was recorded and release the
			// descriptor; the simulation error takes precedence.
			c.spill.Close()
			c.spill = nil
		}
		if instr.failure != nil {
			return instr.failure
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: simulation canceled: %w", err)
		}
		return fmt.Errorf("core: simulation: %w", runErr)
	}
	c.events = c.engine.EventsRun()
	if c.sharded != nil {
		c.events = c.sharded.EventsRun()
	}
	c.delivered = c.network.Delivered()
	if c.recorder != nil {
		c.dataset.Blocks = c.recorder.Blocks
		c.dataset.Txs = c.recorder.Txs
	}
	if c.spill != nil {
		logs.WriteChain(c.spill, c.registry)
		if err := c.spill.Close(); err != nil {
			return fmt.Errorf("core: spill %s: %w", c.cfg.SpillPath, err)
		}
		c.spill = nil
	}
	c.scenarioRes = c.snapshotScenarios()
	c.simWall = time.Since(start)
	if opts.Progress != nil {
		opts.Progress(instr.progress())
	}
	return nil
}

// Fingerprints returns the record and chain fingerprints of a
// completed instrumented run (SimulateContext with checkpointing
// enabled) — the values a final checkpoint at the horizon would carry.
// Returns zero values when the run was not fingerprinted.
func (c *Campaign) Fingerprints() (record, chain string) {
	if c.instrFP == nil {
		return "", ""
	}
	return c.instrFP.Sum(), logs.ChainFingerprint(c.registry)
}

// scheduleTicks schedules a self-rescheduling read-only tick chain on
// the serial timeline at interval, 2·interval, ... up to and including
// the horizon. Self-rescheduling (rather than pre-scheduling every
// tick) keeps the pending queue flat and — crucially for resume — is
// reproducible: each tick's seq number depends only on the events
// executed before it, which the determinism contract already fixes.
func scheduleTicks(e *sim.Engine, interval, horizon sim.Time, fn func(at sim.Time)) {
	if interval <= 0 {
		return
	}
	var tick func()
	next := interval
	tick = func() {
		at := next
		fn(at)
		next = at + interval
		if next <= horizon {
			e.Schedule(next, tick)
		}
	}
	e.Schedule(next, tick)
}
