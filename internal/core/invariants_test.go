package core

import (
	"testing"
	"time"

	"ethmeasure/internal/types"
)

// TestCampaignInvariants runs a full campaign and asserts the
// protocol-level invariants the analyses depend on.
func TestCampaignInvariants(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 20 * time.Minute
	if testing.Short() {
		cfg.Duration = 10 * time.Minute
	}
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	reg := campaign.Registry()

	t.Run("chain structure", func(t *testing.T) {
		// Every block's parent exists and TotalDiff accumulates.
		reg.Blocks(func(b *types.Block) bool {
			if b.Hash == reg.Genesis().Hash {
				return true
			}
			parent, ok := reg.Get(b.ParentHash)
			if !ok {
				t.Fatalf("block %s has no parent", b.Hash)
			}
			if b.Number != parent.Number+1 {
				t.Fatalf("block %s skips heights", b.Hash)
			}
			if b.TotalDiff != parent.TotalDiff+b.Difficulty {
				t.Fatalf("block %s breaks total-difficulty accumulation", b.Hash)
			}
			return true
		})
	})

	t.Run("main chain contiguous and heaviest", func(t *testing.T) {
		main := reg.MainChain()
		maxTD := uint64(0)
		reg.Blocks(func(b *types.Block) bool {
			if b.TotalDiff > maxTD {
				maxTD = b.TotalDiff
			}
			return true
		})
		if main[len(main)-1].TotalDiff != maxTD {
			t.Error("main chain tip is not the heaviest block")
		}
		for i := 1; i < len(main); i++ {
			if main[i].ParentHash != main[i-1].Hash {
				t.Fatal("main chain not parent-linked")
			}
		}
	})

	t.Run("no transaction committed twice", func(t *testing.T) {
		seen := make(map[types.Hash]uint64)
		for _, b := range reg.MainChain() {
			for _, h := range b.TxHashes {
				if prev, dup := seen[h]; dup {
					t.Fatalf("tx %s in main blocks at heights %d and %d", h, prev, b.Number)
				}
				seen[h] = b.Number
			}
		}
	})

	t.Run("committed nonces contiguous per sender", func(t *testing.T) {
		// On the main chain, a sender's included nonces must be
		// 0,1,2,... in block order — the txpool's core guarantee.
		next := make(map[types.AccountID]uint64)
		for _, b := range reg.MainChain() {
			for _, h := range b.TxHashes {
				tx := campaign.Store().Get(h)
				if tx == nil {
					t.Fatalf("main-chain tx %s missing from store", h)
				}
				if tx.Nonce != next[tx.Sender] {
					t.Fatalf("sender %d committed nonce %d, expected %d",
						tx.Sender, tx.Nonce, next[tx.Sender])
				}
				next[tx.Sender]++
			}
		}
	})

	t.Run("uncle references valid", func(t *testing.T) {
		cited := make(map[types.Hash]bool)
		for _, b := range reg.MainChain() {
			if len(b.Uncles) > reg.Protocol().MaxReferencesPerBlock() {
				t.Fatalf("block %s cites %d uncles", b.Hash, len(b.Uncles))
			}
			for _, u := range b.Uncles {
				if cited[u] {
					t.Fatalf("uncle %s cited twice on the main chain", u)
				}
				cited[u] = true
				uncle, ok := reg.Get(u)
				if !ok {
					t.Fatalf("cited uncle %s does not exist", u)
				}
				if uncle.Number >= b.Number || b.Number-uncle.Number > reg.Protocol().MaxReferenceDepth() {
					t.Fatalf("uncle %s at invalid depth %d", u, b.Number-uncle.Number)
				}
				if reg.IsAncestor(u, b.Hash, int(b.Number-uncle.Number)+1) {
					t.Fatalf("uncle %s is an ancestor of its citing block", u)
				}
			}
		}
	})

	t.Run("block capacity respected", func(t *testing.T) {
		reg.Blocks(func(b *types.Block) bool {
			if len(b.TxHashes) > cfg.Mining.BlockCapacity {
				t.Fatalf("block %s carries %d txs, capacity %d",
					b.Hash, len(b.TxHashes), cfg.Mining.BlockCapacity)
			}
			return true
		})
	})

	t.Run("records reference real blocks", func(t *testing.T) {
		for i := range res.Dataset.Blocks {
			r := &res.Dataset.Blocks[i]
			if _, ok := reg.Get(r.Hash); !ok {
				t.Fatalf("record references unknown block %s", r.Hash)
			}
		}
	})

	t.Run("vantage timestamps within clock bounds", func(t *testing.T) {
		// Local timestamps may deviate from [0, Duration] by at most
		// the NTP model's maximum offset.
		maxOff := cfg.Clock.MaxOff
		for i := range res.Dataset.Blocks {
			at := res.Dataset.Blocks[i].At
			if at < -maxOff || at > cfg.Duration+maxOff {
				t.Fatalf("record timestamp %v outside campaign window", at)
			}
		}
	})

	t.Run("analysis block totals consistent", func(t *testing.T) {
		f := res.Forks
		if f.MainBlocks+f.RecognizedUncles+f.UnrecognizedSide != f.TotalBlocks {
			t.Error("fork analysis block partition does not sum")
		}
		if res.Throughput.MainBlocks+res.Throughput.SideBlocks != res.Throughput.TotalBlocks {
			t.Error("throughput block partition does not sum")
		}
	})

	t.Run("reward conservation", func(t *testing.T) {
		// Total issuance = 2 ETH per main block + uncle + nephew flows.
		var fromRows float64
		for _, r := range res.Rewards.Rows {
			fromRows += r.TotalETH
		}
		if diff := fromRows - res.Rewards.TotalETH; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("per-pool rewards %.6f != total %.6f", fromRows, res.Rewards.TotalETH)
		}
	})
}
