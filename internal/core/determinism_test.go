package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"ethmeasure/internal/types"
)

// fingerprint folds every observable output of a finished campaign —
// the vantage record streams, the full block registry, and the
// headline analysis numbers — into one hash. Byte-identical
// fingerprints mean byte-identical runs.
func fingerprint(c *Campaign, res *Results) string {
	h := sha256.New()

	for i := range c.recorder.Blocks {
		r := &c.recorder.Blocks[i]
		fmt.Fprintf(h, "B|%s|%d|%s|%d|%d|%s|%d|%s|%d|%d\n",
			r.Vantage, r.At, r.Hash, r.Number, r.Miner, r.Parent, r.From, r.Kind, r.NTxs, r.Size)
	}
	for i := range c.recorder.Txs {
		r := &c.recorder.Txs[i]
		fmt.Fprintf(h, "T|%s|%d|%s|%d|%d|%d\n",
			r.Vantage, r.At, r.Hash, r.Sender, r.Nonce, r.From)
	}
	c.registry.Blocks(func(b *types.Block) bool {
		fmt.Fprintf(h, "C|%s|%s|%d|%d|%d|%d|%d\n",
			b.Hash, b.ParentHash, b.Number, b.Miner, b.MinedAt, b.TotalDiff, len(b.TxHashes))
		return true
	})

	// Key analysis numbers, printed with full float precision so any
	// numeric drift shows up.
	fmt.Fprintf(h, "prop|%d|%v|%v|%v|%v\n", res.Propagation.Blocks,
		res.Propagation.MedianMs, res.Propagation.MeanMs, res.Propagation.P95Ms, res.Propagation.P99Ms)
	fmt.Fprintf(h, "forks|%d|%d|%d|%v\n", res.Forks.TotalBlocks,
		res.Forks.MainBlocks, res.Forks.RecognizedUncles, res.Forks.MainShare)
	fmt.Fprintf(h, "empty|%d|%d|%v\n", res.Empty.MainBlocks, res.Empty.EmptyBlocks, res.Empty.EmptyShare)
	fmt.Fprintf(h, "stats|%d|%d|%d|%d\n", res.Stats.Events, res.Stats.Messages,
		res.Stats.BlocksCreated, res.Stats.TxsCreated)
	if res.Commit != nil {
		fmt.Fprintf(h, "commit|%d|%v\n", res.Commit.CommittedTxs, res.Commit.Median12Sec)
	}
	for _, name := range res.KeyMetrics().Names() {
		fmt.Fprintf(h, "metric|%s|%v\n", name, res.KeyMetrics()[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// determinismConfig is QuickConfig, shrunk under -short so the three
// runs this file performs stay cheap.
func determinismConfig() Config {
	cfg := QuickConfig()
	if testing.Short() {
		cfg.Duration = 8 * time.Minute
		cfg.NumNodes = 60
		cfg.OutDegree = 5
		ApplyCapacity(&cfg)
	}
	return cfg
}

// TestCampaignFingerprintDeterministic is the determinism regression
// contract: running the identical QuickConfig twice must reproduce
// every record and headline number bit for bit, and a different seed
// must not.
func TestCampaignFingerprintDeterministic(t *testing.T) {
	run := func(seed int64) string {
		cfg := determinismConfig()
		cfg.Seed = seed
		campaign, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := campaign.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(campaign, res)
	}

	a := run(1)
	b := run(1)
	if a != b {
		t.Fatalf("identical configs produced different fingerprints:\n%s\n%s", a, b)
	}
	c := run(2)
	if a == c {
		t.Fatalf("different seeds produced identical fingerprint %s", a)
	}
}
