package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"ethmeasure/internal/logs"
)

// fingerprint folds every observable output of a finished campaign —
// the vantage record streams, the full block registry, and the
// headline analysis numbers — into one hash. Byte-identical
// fingerprints mean byte-identical runs.
func fingerprint(c *Campaign, res *Results) string {
	h := sha256.New()

	// Records and chain go through the production digests
	// (logs.RecordFingerprinter / logs.ChainFingerprint), the same
	// ones checkpoint replay verification compares.
	fp := logs.NewRecordFingerprinter()
	for i := range c.recorder.Blocks {
		fp.RecordBlock(c.recorder.Blocks[i])
	}
	for i := range c.recorder.Txs {
		fp.RecordTx(c.recorder.Txs[i])
	}
	fmt.Fprintf(h, "records|%s\n", fp.Sum())
	fmt.Fprintf(h, "chain|%s\n", logs.ChainFingerprint(c.registry))

	// Key analysis numbers, printed with full float precision so any
	// numeric drift shows up.
	fmt.Fprintf(h, "prop|%d|%v|%v|%v|%v\n", res.Propagation.Blocks,
		res.Propagation.MedianMs, res.Propagation.MeanMs, res.Propagation.P95Ms, res.Propagation.P99Ms)
	fmt.Fprintf(h, "forks|%d|%d|%d|%v\n", res.Forks.TotalBlocks,
		res.Forks.MainBlocks, res.Forks.RecognizedUncles, res.Forks.MainShare)
	fmt.Fprintf(h, "empty|%d|%d|%v\n", res.Empty.MainBlocks, res.Empty.EmptyBlocks, res.Empty.EmptyShare)
	fmt.Fprintf(h, "stats|%d|%d|%d|%d\n", res.Stats.Events, res.Stats.Messages,
		res.Stats.BlocksCreated, res.Stats.TxsCreated)
	if res.Commit != nil {
		fmt.Fprintf(h, "commit|%d|%v\n", res.Commit.CommittedTxs, res.Commit.Median12Sec)
	}
	for _, name := range res.KeyMetrics().Names() {
		fmt.Fprintf(h, "metric|%s|%v\n", name, res.KeyMetrics()[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// determinismConfig is QuickConfig, shrunk under -short so the three
// runs this file performs stay cheap.
func determinismConfig() Config {
	cfg := QuickConfig()
	if testing.Short() {
		cfg.Duration = 8 * time.Minute
		cfg.NumNodes = 60
		cfg.OutDegree = 5
		ApplyCapacity(&cfg)
	}
	return cfg
}

// TestCampaignFingerprintDeterministic is the determinism regression
// contract: running the identical QuickConfig twice must reproduce
// every record and headline number bit for bit, and a different seed
// must not.
func TestCampaignFingerprintDeterministic(t *testing.T) {
	run := func(seed int64) string {
		cfg := determinismConfig()
		cfg.Seed = seed
		campaign, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := campaign.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(campaign, res)
	}

	a := run(1)
	b := run(1)
	if a != b {
		t.Fatalf("identical configs produced different fingerprints:\n%s\n%s", a, b)
	}
	c := run(2)
	if a == c {
		t.Fatalf("different seeds produced identical fingerprint %s", a)
	}
}
