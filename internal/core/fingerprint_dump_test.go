package core

import (
	"fmt"
	"os"
	"testing"
)

// TestFingerprintDump prints the record and chain fingerprints of every
// equivalence variant when FINGERPRINT_DUMP is set. It is the manual
// harness behind cross-commit bit-identity checks: capture the output
// at a known-good commit, re-run after a refactor, diff.
func TestFingerprintDump(t *testing.T) {
	if os.Getenv("FINGERPRINT_DUMP") == "" {
		t.Skip("set FINGERPRINT_DUMP=1 to dump fingerprints")
	}
	for _, variant := range equivalenceVariants() {
		campaign, err := NewCampaign(variant.cfg)
		if err != nil {
			t.Fatal(err)
		}
		hasher := newRecordHasher()
		campaign.AttachRecorder(hasher)
		if _, err := campaign.Run(); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("FP %-16s rec=%s chain=%s\n", variant.name, hasher.Sum(), chainFingerprint(campaign))
	}
}
