package core

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ethmeasure/internal/consensus"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/scenario"
)

// recordHasher is a bus consumer that folds every record into a hash
// as it streams by — the bounded-memory equivalent of fingerprinting
// retained record slices. It is anchored on logs.RecordFingerprinter,
// the exact digest the checkpoint/restore pipeline persists, so the
// equivalence suite and production replay verification can never
// drift apart.
type recordHasher struct {
	*logs.RecordFingerprinter
}

func newRecordHasher() *recordHasher { return &recordHasher{logs.NewRecordFingerprinter()} }

// chainFingerprint hashes the full block registry with the production
// digest (logs.ChainFingerprint).
func chainFingerprint(c *Campaign) string {
	return logs.ChainFingerprint(c.registry)
}

// equivalenceVariants are the five seed configurations the streaming
// pipeline must reproduce bit for bit against the batch path.
func equivalenceVariants() []struct {
	name string
	cfg  Config
} {
	quick := tinyConfig()

	churn := tinyConfig()
	churn.Churn = DefaultChurnConfig()
	churn.Churn.Interval = 30 * time.Second
	churn.Churn.DowntimeMean = time.Minute

	discovery := tinyConfig()
	discovery.UseDiscovery = true

	announceOnly := tinyConfig()
	announceOnly.P2P.SqrtPush = false

	noTx := tinyConfig()
	noTx.EnableTxWorkload = false

	// Scenario variants: the withholding and churn plugins plus every
	// new scenario must stream bit-identically too, not just vanilla
	// configs. Propagation-only keeps them cheap.
	withhold := tinyConfig()
	withhold.EnableTxWorkload = false
	withhold.WithholdingPool = "Ethermine"
	withhold.WithholdDepth = 3

	addScenario := func(cfg Config, specs ...string) Config {
		for _, raw := range specs {
			spec, err := scenario.Parse(raw)
			if err != nil {
				panic(err)
			}
			cfg.Scenarios = append(cfg.Scenarios, spec)
		}
		return cfg
	}
	partitionCfg := tinyConfig()
	partitionCfg.EnableTxWorkload = false
	partitionCfg = addScenario(partitionCfg, "partition:a=EA+SEA,start=2m,dur=3m")
	relayCfg := tinyConfig()
	relayCfg.EnableTxWorkload = false
	relayCfg = addScenario(relayCfg, "relayoverlay")
	eclipseCfg := tinyConfig()
	eclipseCfg.EnableTxWorkload = false
	eclipseCfg = addScenario(eclipseCfg, "eclipse", "bandwidth:regions=EA,start=2m,dur=2m", "churnburst:count=5,start=5m")

	// Protocol variants: bounded-memory mode must be proven
	// bit-identical off the Ethereum consensus path too. The bitcoin
	// variant exercises the no-reference rules (zero uncles, discarding
	// withholder); ghost-inclusive the deeper reference window.
	bitcoinCfg := tinyConfig()
	bitcoinCfg.EnableTxWorkload = false
	bitcoinCfg.Protocol = consensus.Spec{Name: consensus.BitcoinName}
	ghostCfg := tinyConfig()
	ghostCfg.EnableTxWorkload = false
	ghostCfg.Protocol = consensus.Spec{
		Name:   consensus.GhostInclusiveName,
		Params: map[string]string{"depth": "10", "cap": "3"},
	}

	variants := []struct {
		name string
		cfg  Config
	}{
		{"quick", quick},
		{"churn", churn},
		{"discovery", discovery},
		{"announce-only", announceOnly},
		{"no-tx", noTx},
		{"withhold", withhold},
		{"bitcoin", bitcoinCfg},
	}
	if !testing.Short() {
		// The new-scenario and ghost variants ride only in the full
		// suite; the fast (-short -race) suite keeps the historical five
		// plus the withholding plugin and the bitcoin protocol.
		variants = append(variants, []struct {
			name string
			cfg  Config
		}{
			{"partition", partitionCfg},
			{"relayoverlay", relayCfg},
			{"eclipse-bw-burst", eclipseCfg},
			{"ghost-inclusive", ghostCfg},
		}...)
	}
	return variants
}

// analysisJSON serializes every analysis field of a Results bit-
// exactly (float64s marshal to their shortest round-trip decimal, so
// equal JSON means equal bits; stats.Sample marshals its full
// observation vector). Dataset and wall-clock stats are excluded: the
// bounded run intentionally retains no records.
func analysisJSON(t *testing.T, res *Results) map[string]string {
	t.Helper()
	out := make(map[string]string)
	v := reflect.ValueOf(*res)
	tp := reflect.TypeOf(*res)
	for i := 0; i < tp.NumField(); i++ {
		name := tp.Field(i).Name
		if name == "Dataset" || name == "Stats" {
			continue
		}
		data, err := json.Marshal(v.Field(i).Interface())
		if err != nil {
			t.Fatalf("marshal %s: %v", name, err)
		}
		out[name] = string(data)
	}
	return out
}

// TestStreamingEquivalence is the golden equivalence suite: for each
// seed config variant, a bounded-memory (streaming) campaign must
// produce bit-identical analysis results, KeyMetrics and record/chain
// fingerprints to the record-retaining (batch) campaign.
func TestStreamingEquivalence(t *testing.T) {
	for _, variant := range equivalenceVariants() {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			run := func(retain bool) (*Results, string, string, *Campaign) {
				cfg := variant.cfg
				cfg.RetainRecords = retain
				campaign, err := NewCampaign(cfg)
				if err != nil {
					t.Fatal(err)
				}
				hasher := newRecordHasher()
				campaign.AttachRecorder(hasher)
				res, err := campaign.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res, hasher.Sum(), chainFingerprint(campaign), campaign
			}

			resBatch, recBatch, chainBatch, _ := run(true)
			resStream, recStream, chainStream, streamCampaign := run(false)

			// The raw record streams and the chain are the same runs.
			if recBatch != recStream {
				t.Fatalf("record streams diverged:\n%s\n%s", recBatch, recStream)
			}
			if chainBatch != chainStream {
				t.Fatalf("chains diverged")
			}

			// Every analysis result, bit for bit.
			jsonBatch := analysisJSON(t, resBatch)
			jsonStream := analysisJSON(t, resStream)
			for name, batch := range jsonBatch {
				if stream := jsonStream[name]; stream != batch {
					t.Errorf("%s diverged:\nbatch:  %.200s\nstream: %.200s", name, batch, stream)
				}
			}

			// KeyMetrics, exact float equality.
			if !reflect.DeepEqual(resBatch.KeyMetrics(), resStream.KeyMetrics()) {
				t.Errorf("KeyMetrics diverged:\n%v\n%v", resBatch.KeyMetrics(), resStream.KeyMetrics())
			}

			// Run bookkeeping (minus wall time) must agree too.
			sa, sb := resBatch.Stats, resStream.Stats
			sa.WallDuration, sb.WallDuration = 0, 0
			if sa != sb {
				t.Errorf("stats diverged: %+v vs %+v", sa, sb)
			}

			// The memory contract of bounded mode.
			if resStream.Dataset.Blocks != nil || resStream.Dataset.Txs != nil {
				t.Error("bounded-memory run retained records")
			}
			if streamCampaign.Recorder() != nil {
				t.Error("bounded-memory run kept a MemoryRecorder")
			}
			if err := streamCampaign.WriteLogs(filepath.Join(t.TempDir(), "x.jsonl")); err == nil {
				t.Error("WriteLogs must fail without retained records")
			}
			if resBatch.Dataset.Blocks == nil {
				t.Error("batch run lost its records")
			}
		})
	}
}

// TestReleaseNetworkKeepsAnalysis verifies the phase split: dropping
// the simulation graph between Simulate and Analyze changes nothing
// about the results, and the post-release accessors behave as
// documented.
func TestReleaseNetworkKeepsAnalysis(t *testing.T) {
	cfg := tinyConfig()

	full, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resFull, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	released, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	released.ReleaseNetwork() // before Simulate: must be a no-op
	if released.Engine() == nil {
		t.Fatal("pre-simulation ReleaseNetwork dropped the engine")
	}
	if err := released.Simulate(); err != nil {
		t.Fatal(err)
	}
	released.ReleaseNetwork()
	if released.Engine() != nil || released.Miner() != nil {
		t.Error("network not released")
	}
	resReleased, err := released.Analyze()
	if err != nil {
		t.Fatal(err)
	}

	jsonFull := analysisJSON(t, resFull)
	jsonReleased := analysisJSON(t, resReleased)
	for name, want := range jsonFull {
		if got := jsonReleased[name]; got != want {
			t.Errorf("%s diverged after ReleaseNetwork", name)
		}
	}
	sa, sb := resFull.Stats, resReleased.Stats
	sa.WallDuration, sb.WallDuration = 0, 0
	if sa != sb {
		t.Errorf("stats diverged: %+v vs %+v", sa, sb)
	}
	// WriteLogs still works from the retained records + snapshots.
	if err := released.WriteLogs(filepath.Join(t.TempDir(), "released.jsonl")); err != nil {
		t.Fatal(err)
	}
}

// TestSpillMatchesWriteLogs runs the quick variant twice — batch with
// WriteLogs, bounded with SpillPath — and requires byte-compatible
// analysis results when each file is re-loaded.
func TestSpillMatchesWriteLogs(t *testing.T) {
	dir := t.TempDir()

	cfg := tinyConfig()
	batch, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.Run(); err != nil {
		t.Fatal(err)
	}
	batchPath := filepath.Join(dir, "batch.jsonl")
	if err := batch.WriteLogs(batchPath); err != nil {
		t.Fatal(err)
	}

	cfg2 := tinyConfig()
	cfg2.RetainRecords = false
	cfg2.SpillPath = filepath.Join(dir, "spill.jsonl")
	bounded, err := NewCampaign(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bounded.Run(); err != nil {
		t.Fatal(err)
	}

	load := func(path string) *logs.Campaign {
		c, err := logs.ReadCampaignFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return c
	}
	a, b := load(batchPath), load(cfg2.SpillPath)
	if len(a.Blocks) != len(b.Blocks) || len(a.Txs) != len(b.Txs) {
		t.Fatalf("record counts differ: %d/%d vs %d/%d", len(a.Blocks), len(a.Txs), len(b.Blocks), len(b.Txs))
	}
	for i := range a.Blocks {
		if !reflect.DeepEqual(a.Blocks[i], b.Blocks[i]) {
			t.Fatalf("block record %d differs: %+v vs %+v", i, a.Blocks[i], b.Blocks[i])
		}
	}
	for i := range a.Txs {
		if a.Txs[i] != b.Txs[i] {
			t.Fatalf("tx record %d differs", i)
		}
	}
	if !reflect.DeepEqual(a.Meta, b.Meta) {
		t.Fatalf("meta differs: %+v vs %+v", a.Meta, b.Meta)
	}
	if a.Chain.Len() != b.Chain.Len() {
		t.Fatalf("chain dumps differ: %d vs %d blocks", a.Chain.Len(), b.Chain.Len())
	}
}
