package core

import "ethmeasure/internal/analysis"

// KeyMetrics flattens the campaign's headline scalars into one named
// map — the per-run unit that internal/sweep folds into cross-seed
// mean/CI statistics. Analyses that were disabled (for example the
// transaction pipeline under EnableTxWorkload=false) simply contribute
// no entries, so sweeps across heterogeneous scenarios aggregate only
// the metrics each run actually produced.
func (r *Results) KeyMetrics() analysis.KeyMetrics {
	m := make(analysis.KeyMetrics)
	m.Merge(r.Propagation.KeyMetrics())
	m.Merge(r.Forks.KeyMetrics())
	m.Merge(r.OneMiner.KeyMetrics())
	m.Merge(r.Empty.KeyMetrics())
	m.Merge(r.Commit.KeyMetrics())
	m.Merge(r.Ordering.KeyMetrics())
	m.Merge(r.InterBlock.KeyMetrics())
	m.Merge(r.Throughput.KeyMetrics())
	m.Merge(r.Rewards.KeyMetrics())
	m.Merge(r.Scenarios.KeyMetrics())
	return m
}
