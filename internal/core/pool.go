package core

import (
	"ethmeasure/internal/analysis"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
)

// Pool recycles the expensive run-scoped state of finished campaigns
// across sequential runs on one worker: the engine's event slab, the
// sharded coordinator's exchange queues, the simulated network's
// endpoint table, the p2p node/edge graph with its known-hash caches,
// and the streaming collector's arrival index. A warm build re-seeds
// every RNG stream and re-derives topology and placement from the new
// config, so a pooled campaign is bit-identical to a cold one — only
// allocation capacity is carried over, and capacity is never visible
// to the simulation (the equivalence suite proves this, including
// across consecutive runs with differing node counts, protocols and
// shard modes).
//
// A Pool serves one goroutine at a time; pooled state is never shared
// between concurrent runs. Sweep workers and the campaign server give
// each worker its own pool. What is shared across workers is only the
// immutable latency-model cache (geo.SharedDefaultLatencyModel), which
// is read-only by construction.
//
// Recycle contract: once a campaign is recycled, neither it nor any
// Results derived from it may be used again — the collector whose
// accumulators back the analysis finalizers is reset in place for the
// next run. Callers that keep Results (or retained records) alive must
// simply not recycle that campaign; an unrecycled campaign costs
// nothing beyond what cold construction already cost.
type Pool struct {
	engine    *sim.Engine
	sharded   *sim.Sharded
	network   *simnet.Network
	rec       *p2p.Recycler
	collector *analysis.Collector

	recycled uint64
}

// PoolStats reports how much reuse a pool has delivered.
type PoolStats struct {
	// Recycled counts campaigns returned through Recycle.
	Recycled uint64
	// NodesReused and EdgesReused count p2p graph objects handed out
	// from the freelists instead of allocated.
	NodesReused uint64
	EdgesReused uint64
}

// NewPool returns an empty pool: its first campaign builds cold and
// seeds the pool when recycled.
func NewPool() *Pool { return &Pool{rec: p2p.NewRecycler()} }

// Stats returns the pool's reuse counters.
func (p *Pool) Stats() PoolStats {
	rs := p.rec.Stats()
	return PoolStats{
		Recycled:    p.recycled,
		NodesReused: rs.NodesReused,
		EdgesReused: rs.EdgesReused,
	}
}

// NewCampaign is core.NewCampaign drawing recycled state from the
// pool. The pooled state is detached from the pool for the campaign's
// lifetime, so a build error or an abandoned (never recycled) campaign
// simply leaves the pool empty — the next campaign builds cold.
func (p *Pool) NewCampaign(cfg Config) (*Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg, pool: p}
	if err := c.build(); err != nil {
		return nil, err
	}
	return c, nil
}

// takeEngine detaches and resets the pooled engine, or builds fresh.
func (p *Pool) takeEngine(seed int64) *sim.Engine {
	if e := p.engine; e != nil {
		p.engine = nil
		e.Reset(seed)
		return e
	}
	return sim.NewEngine(seed)
}

// takeNetwork detaches and resets the pooled network, or builds fresh.
func (p *Pool) takeNetwork(engine *sim.Engine, latency *geo.LatencyModel) *simnet.Network {
	if n := p.network; n != nil {
		p.network = nil
		n.Reset(engine, latency)
		return n
	}
	return simnet.New(engine, latency)
}

// takeSharded detaches the pooled coordinator and reuses it when the
// shard count matches (NewShardedReusing falls back to fresh
// construction otherwise).
func (p *Pool) takeSharded(global *sim.Engine, numShards int, lookahead sim.Time) *sim.Sharded {
	old := p.sharded
	p.sharded = nil
	return sim.NewShardedReusing(old, global, numShards, lookahead)
}

// takeCollector detaches and resets the pooled collector, or builds
// fresh.
func (p *Pool) takeCollector(ds *analysis.Dataset, redundancyVantage string) *analysis.Collector {
	if col := p.collector; col != nil {
		p.collector = nil
		col.Reset(ds, redundancyVantage)
		return col
	}
	return analysis.NewCollector(ds, redundancyVantage)
}

// Recycle harvests a finished campaign's run-scoped state back into
// the pool. The campaign — and, per the contract above, any Results
// derived from it — must no longer be used afterwards; Recycle nils
// the campaign's simulation fields so accidental reuse fails loudly
// instead of corrupting the next run. Recycling a campaign that
// already released its network (or was recycled before) is a no-op,
// as is recycling a campaign built by a different pool.
func (p *Pool) Recycle(c *Campaign) {
	if c == nil || c.pool != p || c.engine == nil {
		return
	}
	p.engine = c.engine
	p.sharded = c.sharded
	p.network = c.network
	p.collector = c.collector
	p.rec.Reclaim(c.regular, c.vantNodes)
	for _, gws := range c.gateways {
		p.rec.Reclaim(gws)
	}
	// Sweep the event slabs and shard queues now, at recycle time, so
	// the next warm build is pure reassignment (Reset on an already
	// swept engine skips the slab clear). The seed passed here is
	// irrelevant — takeEngine re-seeds for the next run.
	p.engine.Reset(p.engine.Seed())
	if p.sharded != nil {
		p.sharded.Scrub()
	}
	p.recycled++
	c.engine, c.sharded, c.network = nil, nil, nil
	c.collector, c.bus, c.recorder = nil, nil, nil
	c.miner, c.gen = nil, nil
	c.vantages, c.regular, c.gateways, c.vantNodes = nil, nil, nil, nil
	c.scenarios, c.scenarioEnv = nil, nil
}
