package core

import (
	"sort"
	"testing"
	"time"

	"ethmeasure/internal/types"
)

// TestDebugStarvedBlocks diagnoses empty blocks that were not mined
// empty by policy.
func TestDebugStarvedBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	cfg := QuickConfig()
	cfg.Duration = time.Hour
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	m := campaign.Miner()
	t.Logf("mined=%d byPolicy=%d starved=%d", m.Mined(), m.EmptyByPolicy(), m.EmptyStarved())

	var empties []*types.Block
	campaign.Registry().Blocks(func(b *types.Block) bool {
		if b.Empty() && b.Miner != 0 {
			empties = append(empties, b)
		}
		return true
	})
	sort.Slice(empties, func(i, j int) bool { return empties[i].MinedAt < empties[j].MinedAt })
	for _, b := range empties {
		t.Logf("empty block at t=%v height=%d miner=%d", b.MinedAt.Round(time.Second), b.Number, b.Miner)
	}
}
