package core

import (
	"sort"
	"testing"
	"time"

	"ethmeasure/internal/types"
)

// TestDebugStalledTxs is a diagnostic: it finds transactions whose
// inclusion lags their creation badly and reports why.
func TestDebugStalledTxs(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	cfg := QuickConfig()
	cfg.Duration = 30 * time.Minute
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(); err != nil {
		t.Fatal(err)
	}
	reg := campaign.Registry()
	store := campaign.Store()

	// Inclusion time per tx from main chain.
	incl := make(map[types.Hash]time.Duration)
	for _, b := range reg.MainChain() {
		for _, h := range b.TxHashes {
			incl[h] = b.MinedAt
		}
	}
	type lag struct {
		tx    *types.Transaction
		delay time.Duration
	}
	var lags []lag
	uncommitted := 0
	store.All(func(tx *types.Transaction) bool {
		at, ok := incl[tx.Hash]
		if !ok {
			uncommitted++
			return true
		}
		lags = append(lags, lag{tx, at - tx.Created})
		return true
	})
	sort.Slice(lags, func(i, j int) bool { return lags[i].delay > lags[j].delay })
	t.Logf("committed=%d uncommitted=%d", len(lags), uncommitted)
	for i := 0; i < 10 && i < len(lags); i++ {
		tx := lags[i].tx
		t.Logf("stalled: delay=%v sender=%d nonce=%d price=%d created=%v",
			lags[i].delay, tx.Sender, tx.Nonce, tx.GasPrice, tx.Created)
	}
	// For the worst sender, dump its whole nonce timeline.
	if len(lags) > 0 {
		worst := lags[0].tx.Sender
		var txs []*types.Transaction
		store.All(func(tx *types.Transaction) bool {
			if tx.Sender == worst {
				txs = append(txs, tx)
			}
			return true
		})
		sort.Slice(txs, func(i, j int) bool { return txs[i].Nonce < txs[j].Nonce })
		for _, tx := range txs {
			at, ok := incl[tx.Hash]
			t.Logf("sender=%d nonce=%d created=%v incl=%v ok=%v price=%d",
				worst, tx.Nonce, tx.Created.Round(time.Second), at.Round(time.Second), ok, tx.GasPrice)
		}
	}
}
