package core

import (
	"testing"
	"time"

	"ethmeasure/internal/geo"
)

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default": DefaultConfig(),
		"quick":   QuickConfig(),
		"paper":   PaperScaleConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"too few nodes", func(c *Config) { c.NumNodes = 5 }},
		{"bad out-degree", func(c *Config) { c.OutDegree = 0 }},
		{"degree >= nodes", func(c *Config) { c.OutDegree = c.NumNodes }},
		{"zero node bandwidth", func(c *Config) { c.NodeBandwidth = 0 }},
		{"zero gateway bandwidth", func(c *Config) { c.GatewayBandwidth = 0 }},
		{"nil latency", func(c *Config) { c.Latency = nil }},
		{"nil node distribution", func(c *Config) { c.NodeDistribution = nil }},
		{"no pools", func(c *Config) { c.Pools = nil }},
		{"invalid pool", func(c *Config) { c.Pools[0].Power = 5 }},
		{"no vantages", func(c *Config) { c.Vantages = nil }},
		{"unnamed vantage", func(c *Config) { c.Vantages[0].Name = "" }},
		{"duplicate vantage", func(c *Config) { c.Vantages[1].Name = c.Vantages[0].Name }},
		{"zero vantage peers", func(c *Config) { c.Vantages[0].Peers = 0 }},
		{"bad vantage region", func(c *Config) { c.Vantages[0].Region = geo.Region(0) }},
		{"unknown redundancy vantage", func(c *Config) { c.RedundancyVantage = "nope" }},
		{"tx workload without rate", func(c *Config) { c.TxGen.Rate = 0 }},
		{"tx workload without senders", func(c *Config) { c.SenderDistribution = nil }},
	}
	for _, tt := range mutations {
		cfg := DefaultConfig()
		tt.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tt.name)
		}
	}
}

func TestValidateAllowsDisabledTxWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTxWorkload = false
	cfg.TxGen.Rate = 0
	cfg.SenderDistribution = nil
	if err := cfg.Validate(); err != nil {
		t.Errorf("disabled workload should not require tx settings: %v", err)
	}
}

func TestDeriveBlockCapacity(t *testing.T) {
	// 8.2 tx/s × 13.3s / 0.8 ≈ 137.
	got := DeriveBlockCapacity(8.2, 13300*time.Millisecond, 0.8)
	if got < 136 || got > 138 {
		t.Errorf("capacity = %d, want ≈137", got)
	}
	if DeriveBlockCapacity(0, time.Second, 0.8) != 1 {
		t.Error("degenerate inputs must floor at 1")
	}
	if DeriveBlockCapacity(0.001, 13300*time.Millisecond, 0.8) != 1 {
		t.Error("tiny rates must floor at 1")
	}
}

func TestApplyCapacitySetsFloor(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Mining.BlockCapacity <= 0 {
		t.Fatal("capacity not derived")
	}
	if cfg.TxGen.MempoolFloor != cfg.Mining.BlockCapacity*3/2 {
		t.Errorf("floor = %d for capacity %d", cfg.TxGen.MempoolFloor, cfg.Mining.BlockCapacity)
	}
}

func TestPoolNames(t *testing.T) {
	cfg := DefaultConfig()
	names := cfg.PoolNames()
	if len(names) != len(cfg.Pools) {
		t.Fatalf("names = %d", len(names))
	}
	if names[0] != "Ethermine" {
		t.Errorf("names[0] = %q", names[0])
	}
}

func TestPresetScalesDiffer(t *testing.T) {
	q, d, p := QuickConfig(), DefaultConfig(), PaperScaleConfig()
	if !(q.NumNodes < d.NumNodes && d.NumNodes < p.NumNodes) {
		t.Error("node counts should grow quick < default < paper")
	}
	if !(q.Duration < d.Duration && d.Duration < p.Duration) {
		t.Error("durations should grow quick < default < paper")
	}
	if p.Duration != 30*24*time.Hour {
		t.Errorf("paper duration = %v, want one month", p.Duration)
	}
}

func TestDefaultConfigMatchesPaperSetup(t *testing.T) {
	cfg := DefaultConfig()
	// Four primary vantages in the paper's regions + the default-peers
	// subsidiary node.
	primary := 0
	var aux *VantageSpec
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Auxiliary {
			aux = &cfg.Vantages[i]
			continue
		}
		primary++
	}
	if primary != 4 {
		t.Errorf("primary vantages = %d, want 4", primary)
	}
	if aux == nil || aux.Peers != 25 {
		t.Error("subsidiary redundancy node must run Geth's default 25 peers")
	}
	if cfg.RedundancyVantage != aux.Name {
		t.Error("redundancy analysis must target the subsidiary node")
	}
	if cfg.Mining.InterBlockTime != 13300*time.Millisecond {
		t.Errorf("inter-block time = %v, paper measured 13.3s", cfg.Mining.InterBlockTime)
	}
	if cfg.GenesisNumber != 7_479_573 {
		t.Errorf("genesis = %d, paper campaign started at 7,479,573", cfg.GenesisNumber)
	}
}

func TestLogMetaReflectsConfig(t *testing.T) {
	cfg := QuickConfig()
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := campaign.LogMeta()
	if len(meta.Vantages) != 4 {
		t.Errorf("meta vantages = %v (auxiliary must be excluded)", meta.Vantages)
	}
	if meta.RedundancyVantage != "WE-default" {
		t.Errorf("redundancy vantage = %q", meta.RedundancyVantage)
	}
	if len(meta.PoolNames) != len(cfg.Pools) {
		t.Errorf("pool names = %d", len(meta.PoolNames))
	}
	if meta.NetworkSize <= cfg.NumNodes {
		t.Errorf("network size %d should include gateways and vantages", meta.NetworkSize)
	}
	if meta.Seed != cfg.Seed || meta.DurationNs != int64(cfg.Duration) {
		t.Error("meta timing fields wrong")
	}
}
