// Package core orchestrates full measurement campaigns: it builds the
// simulated network, deploys the instrumented vantage nodes, runs the
// mining and transaction workloads on the discrete-event engine, and
// feeds the collected records through every analyzer — the end-to-end
// equivalent of the paper's one-month deployment plus offline pandas
// pipeline.
package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/logs"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/mining"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/scenario"
	"ethmeasure/internal/txgen"
)

// VantageSpec places one measurement node.
type VantageSpec struct {
	// Name labels the vantage in records and reports ("EA", "NA", ...).
	Name string
	// Region is where the machine sits.
	Region geo.Region
	// Peers is how many peers the instrumented node connects to. The
	// paper's main nodes used "unlimited" (>100); the subsidiary
	// redundancy node used Geth's default of 25.
	Peers int
	// Auxiliary marks vantages excluded from the first-observation and
	// delay analyses (the paper's default-peers redundancy node ran as
	// a separate subsidiary measurement).
	Auxiliary bool
}

// Config fully describes a campaign. The zero value is not usable;
// start from DefaultConfig or a preset.
type Config struct {
	// Seed drives every random stream; equal seeds give equal runs.
	Seed int64

	// Duration is the virtual campaign length (the paper ran one month).
	Duration time.Duration

	// GenesisNumber is the starting block height (paper: 7,479,573).
	GenesisNumber uint64

	// NumNodes is the regular (non-gateway, non-vantage) node count.
	NumNodes int

	// OutDegree is each regular node's dial count (mean degree ≈ 2x).
	OutDegree int

	// Shards is the number of event-engine shards the campaign runs on
	// (conservative PDES: nodes are partitioned by geo region, shards
	// advance in lookahead windows bounded by the minimum inter-region
	// latency). 0 picks min(regions, GOMAXPROCS); 1 runs the serial
	// engine, preserving the single-threaded path exactly. Any shard
	// count produces bit-identical records and chains for a given seed.
	Shards int

	// UseDiscovery selects the Kademlia-style discovery overlay for
	// neighbour selection instead of the plain random graph. Both are
	// geography-blind (paper §III-B1); discovery exercises the actual
	// devp2p ID-space machinery at some topology-construction cost.
	UseDiscovery bool

	// NodeBandwidth is a regular node's bandwidth in bytes/second.
	NodeBandwidth float64

	// GatewayBandwidth is a pool gateway's bandwidth in bytes/second.
	GatewayBandwidth float64

	// VantageBandwidth reflects the measurement machines' backbone
	// links (paper Table I: 8-10 Gbps).
	VantageBandwidth float64

	// GatewayPeers is how many peers each pool gateway maintains.
	GatewayPeers int

	// VantageGatewayFraction is the fraction of pool gateways each
	// primary vantage peers with directly. Nodes with very high peer
	// counts end up adjacent to pool infrastructure in practice; this
	// adjacency is what exposes the gateway geography in Figures 2/3.
	VantageGatewayFraction float64

	// VantageProcSpeed scales the vantage machines' processing delays
	// (< 1: Table I hardware is well above minimum spec).
	VantageProcSpeed float64

	// GatewayProcSpeed scales pool gateway processing delays.
	GatewayProcSpeed float64

	// NodeProcSpeedMin/Max bound regular nodes' processing-speed
	// factors (sampled uniformly): the public network mixes hardware
	// classes, and slower importers announce later.
	NodeProcSpeedMin float64
	NodeProcSpeedMax float64

	// Latency is the inter-region delay model.
	Latency *geo.LatencyModel

	// NodeDistribution spreads regular nodes across regions.
	NodeDistribution *geo.Distribution

	// SenderDistribution spreads transaction senders across regions.
	SenderDistribution *geo.Distribution

	// Vantages are the measurement nodes (paper: NA, EA, WE, CE).
	Vantages []VantageSpec

	// RedundancyVantage names the vantage used for Table II (the
	// default-peers subsidiary node). Empty disables that analysis.
	RedundancyVantage string

	// P2P is the wire-protocol configuration.
	P2P p2p.Config

	// Mining configures block production.
	Mining mining.Config

	// Protocol selects the consensus rule set the chain runs under:
	// fork choice, reference (uncle) policy, reward schedule
	// (internal/consensus). The zero value is the ethereum protocol —
	// the paper's rules, and the only behaviour that existed before
	// protocols became pluggable. When Mining.InterBlockTime is left
	// zero, the protocol's native target interval applies; the presets
	// set Ethereum's 13.3 s explicitly so cross-protocol comparisons
	// run at equal block rates unless deliberately changed.
	Protocol consensus.Spec

	// Pools is the mining-pool population.
	Pools []mining.PoolSpec

	// TxGen configures the transaction workload.
	TxGen txgen.Config

	// EnableTxWorkload toggles transaction generation. Propagation-only
	// experiments disable it to save simulation time.
	EnableTxWorkload bool

	// Scenarios composes registered interventions into the campaign:
	// each spec names a plugin from internal/scenario ("partition",
	// "relayoverlay", "eclipse", "bandwidth", "churnburst", "churn",
	// "withhold") plus its parameters. Scenarios apply in list order
	// after the base system is built; an empty list is the vanilla
	// campaign. The legacy Churn and WithholdingPool fields below are
	// converted into equivalent specs and composed before this list.
	Scenarios []scenario.Spec

	// Churn models node turnover across the regular population (Kim et
	// al., IMC'18). Zero Interval disables it; calibration presets run
	// without churn and the churn ablation benchmark enables it.
	// Legacy surface for the "churn" scenario plugin.
	Churn ChurnConfig

	// WithholdingPool, when non-empty, attaches the selfish
	// block-withholding strategy (Eyal-Sirer; §III-D's FAW discussion)
	// to the named pool, releasing private chains once they reach
	// WithholdDepth or when public progress threatens them. Empty
	// disables the attack (all presets). Legacy surface for the
	// "withhold" scenario plugin.
	WithholdingPool string

	// WithholdDepth is the private-chain length that forces a release.
	WithholdDepth int

	// CoalesceDelivery batches same-destination message deliveries that
	// land at the same virtual instant through one scheduled event
	// instead of one per message (internal/simnet). Per destination and
	// instant, delivery order is exactly the uncoalesced send order;
	// across destinations sharing an exact instant the interleaving may
	// differ, which continuous-jitter latency models (the default)
	// never produce — but the switch stays off by default until a
	// campaign's model is known tie-free. Serial engine only: sharded
	// campaigns ignore it.
	CoalesceDelivery bool

	// Clock is the NTP offset model for vantage timestamps.
	Clock measure.ClockModel

	// RetainRecords keeps every raw measurement record in memory (the
	// MemoryRecorder bus consumer), preserving Results.Dataset.Blocks/
	// Txs and Campaign.WriteLogs. The presets enable it. When false the
	// campaign runs in bounded-memory mode: records stream through the
	// analysis collector (and the optional SpillPath writer) only, so
	// record memory is bounded by distinct blocks + transactions rather
	// than by total receptions — the mode for long-duration and
	// high-redundancy campaigns. Analysis results are bit-identical in
	// both modes.
	RetainRecords bool

	// SpillPath, when non-empty, streams every raw record to a
	// campaign log at this path as it is produced (metadata first,
	// chain dump appended at the end of the run) — the bounded-memory
	// replacement for WriteLogs. The file is compatible with
	// cmd/ethanalyze.
	SpillPath string

	// SpillFormat selects the encoding for SpillPath and WriteLogs
	// output: logs.FormatBinary (the default when empty; compact
	// ethlog frames) or logs.FormatJSONL for interop with external
	// tooling. Readers auto-detect, so either loads everywhere.
	SpillFormat logs.Format
}

// DefaultConfig returns a laptop-scale campaign that preserves the
// paper's mechanisms: a few hundred nodes, the paper's pool
// population, the four vantage points plus the default-peers
// redundancy node, and a two-hour virtual run.
func DefaultConfig() Config {
	cfg := Config{
		Seed:                   1,
		Duration:               2 * time.Hour,
		GenesisNumber:          7_479_573,
		NumNodes:               220,
		OutDegree:              8,
		NodeBandwidth:          12.5e6, // 100 Mbit/s
		GatewayBandwidth:       125e6,  // 1 Gbit/s
		VantageBandwidth:       1.25e9, // 10 Gbit/s (Table I backbone)
		GatewayPeers:           24,
		VantageGatewayFraction: 1.0,
		VantageProcSpeed:       1.0,
		GatewayProcSpeed:       0.5,
		NodeProcSpeedMin:       0.4,
		NodeProcSpeedMax:       3.0,
		Latency:                geo.SharedDefaultLatencyModel(),
		NodeDistribution:       geo.GlobalNodeDistribution(),
		SenderDistribution:     geo.GlobalSenderDistribution(),
		Vantages: []VantageSpec{
			{Name: "NA", Region: geo.NorthAmerica, Peers: 80},
			{Name: "EA", Region: geo.EasternAsia, Peers: 80},
			{Name: "WE", Region: geo.WesternEurope, Peers: 80},
			{Name: "CE", Region: geo.CentralEurope, Peers: 80},
			{Name: "WE-default", Region: geo.WesternEurope, Peers: 25, Auxiliary: true},
		},
		RedundancyVantage: "WE-default",
		P2P:               p2p.DefaultConfig(),
		Mining:            mining.DefaultConfig(),
		Pools:             mining.PaperPools(),
		TxGen:             txgen.DefaultConfig(),
		EnableTxWorkload:  true,
		Clock:             measure.DefaultClockModel(),
		RetainRecords:     true,
	}
	ApplyCapacity(&cfg)
	return cfg
}

// ApplyCapacity derives the block capacity from the effective workload
// rate at the paper's ~80% utilization and sizes the mempool floor so
// pools never run dry (mainnet's mempool always held a reservoir of
// cheap pending transactions). Call it after changing TxGen.Rate or
// Mining.InterBlockTime so the capacity stays consistent with the
// workload (the presets, CLI overrides and sweep axes all do).
func ApplyCapacity(cfg *Config) {
	cfg.Mining.BlockCapacity = DeriveBlockCapacity(cfg.TxGen.EffectiveRate(), cfg.Mining.InterBlockTime, 0.8)
	cfg.TxGen.MempoolFloor = cfg.Mining.BlockCapacity * 3 / 2
}

// QuickConfig returns a small configuration for tests and examples:
// ~30 virtual minutes over ~120 nodes.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 30 * time.Minute
	cfg.NumNodes = 120
	cfg.OutDegree = 6
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > 40 {
			cfg.Vantages[i].Peers = 40
		}
	}
	cfg.TxGen.Rate = 0.5
	cfg.TxGen.NumAccounts = 400
	ApplyCapacity(&cfg)
	return cfg
}

// PaperScaleConfig approximates the paper's real campaign dimensions:
// a month of virtual time and a large network. Running it takes hours
// of CPU and tens of GB of memory; the cmd/ethmeasure tool exposes it
// behind an explicit flag.
func PaperScaleConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 30 * 24 * time.Hour
	cfg.NumNodes = 2000
	cfg.OutDegree = 12
	cfg.TxGen.Rate = 8.2 // paper: 21.96M txs over one month
	cfg.TxGen.NumAccounts = 50_000
	ApplyCapacity(&cfg)
	return cfg
}

// DeriveBlockCapacity sizes blocks so that steady-state utilization
// matches the target (the paper observed blocks ~80% full, §III-C3).
func DeriveBlockCapacity(txRate float64, interBlock time.Duration, utilization float64) int {
	if txRate <= 0 || interBlock <= 0 || utilization <= 0 {
		return 1
	}
	capacity := int(math.Ceil(txRate * interBlock.Seconds() / utilization))
	if capacity < 1 {
		capacity = 1
	}
	return capacity
}

// Validate checks the configuration for inconsistencies.
func (c *Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("core: duration must be positive")
	}
	if c.NumNodes < 10 {
		return fmt.Errorf("core: need at least 10 nodes, got %d", c.NumNodes)
	}
	if c.OutDegree < 1 || c.OutDegree >= c.NumNodes {
		return fmt.Errorf("core: out-degree %d out of range", c.OutDegree)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: shard count must be non-negative, got %d", c.Shards)
	}
	if c.NodeBandwidth <= 0 || c.GatewayBandwidth <= 0 || c.VantageBandwidth <= 0 {
		return fmt.Errorf("core: bandwidths must be positive")
	}
	if c.Latency == nil || c.NodeDistribution == nil {
		return fmt.Errorf("core: latency model and node distribution are required")
	}
	if len(c.Pools) == 0 {
		return fmt.Errorf("core: at least one mining pool is required")
	}
	for i := range c.Pools {
		if err := c.Pools[i].Validate(); err != nil {
			return err
		}
	}
	if len(c.Vantages) == 0 {
		return fmt.Errorf("core: at least one vantage is required")
	}
	seen := make(map[string]bool, len(c.Vantages))
	primary := 0
	for _, v := range c.Vantages {
		if !v.Auxiliary {
			primary++
		}
		if v.Name == "" {
			return fmt.Errorf("core: vantage with empty name")
		}
		if seen[v.Name] {
			return fmt.Errorf("core: duplicate vantage name %q", v.Name)
		}
		seen[v.Name] = true
		if v.Peers < 1 {
			return fmt.Errorf("core: vantage %s needs at least one peer", v.Name)
		}
		if !v.Region.Valid() {
			return fmt.Errorf("core: vantage %s has invalid region", v.Name)
		}
	}
	if primary > analysis.MaxVantages {
		// The streaming arrival index keeps one bit per primary vantage
		// in each block's state word.
		return fmt.Errorf("core: at most %d primary vantages supported, got %d", analysis.MaxVantages, primary)
	}
	if c.RedundancyVantage != "" && !seen[c.RedundancyVantage] {
		return fmt.Errorf("core: redundancy vantage %q not among vantages", c.RedundancyVantage)
	}
	if c.EnableTxWorkload {
		if c.TxGen.Rate <= 0 {
			return fmt.Errorf("core: tx workload enabled but rate is %f", c.TxGen.Rate)
		}
		if c.SenderDistribution == nil {
			return fmt.Errorf("core: tx workload enabled but sender distribution is nil")
		}
	}
	if !c.SpillFormat.Valid() {
		return fmt.Errorf("core: unknown spill format %q (want %q or %q)", c.SpillFormat, logs.FormatBinary, logs.FormatJSONL)
	}
	if err := consensus.Validate(c.Protocol); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	for _, spec := range c.scenarioSpecs() {
		if err := scenario.Validate(spec); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// ResolveShards returns the effective shard count: Shards when set
// explicitly, otherwise min(geo.NumRegions, GOMAXPROCS) — more shards
// than regions adds synchronization without adding usable lookahead,
// and more shards than cores adds scheduling without adding CPU.
func (c *Config) ResolveShards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	n := runtime.GOMAXPROCS(0)
	if n > geo.NumRegions {
		n = geo.NumRegions
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ProtocolTag returns the canonical textual form of the configured
// consensus protocol ("ethereum" for the zero value) — the annotation
// carried by results and log metadata.
func (c *Config) ProtocolTag() string { return c.Protocol.String() }

// scenarioSpecs returns the full composed scenario list: the legacy
// churn and withholding fields converted to their plugin specs,
// followed by the explicit Scenarios list.
func (c *Config) scenarioSpecs() []scenario.Spec {
	specs := make([]scenario.Spec, 0, len(c.Scenarios)+2)
	if c.Churn.Interval > 0 {
		specs = append(specs, c.Churn.Spec())
	}
	if c.WithholdingPool != "" {
		specs = append(specs, scenario.Spec{
			Name: scenario.WithholdName,
			Params: map[string]string{
				"pool":  c.WithholdingPool,
				"depth": fmt.Sprintf("%d", c.WithholdDepth),
			},
		})
	}
	return append(specs, c.Scenarios...)
}

// ScenarioTags returns the canonical textual form of every composed
// scenario (legacy fields included), in composition order — the
// annotation carried by results and log metadata.
func (c *Config) ScenarioTags() []string {
	return scenario.Tags(c.scenarioSpecs())
}

// PrimaryVantages returns the non-auxiliary vantage names in
// presentation order — the roster the arrival analyses cover.
func (c *Config) PrimaryVantages() []string {
	names := make([]string, 0, len(c.Vantages))
	for _, v := range c.Vantages {
		if !v.Auxiliary {
			names = append(names, v.Name)
		}
	}
	return names
}

// PoolNames extracts the pool names in spec order (PoolID i+1 maps to
// element i).
func (c *Config) PoolNames() []string {
	names := make([]string, len(c.Pools))
	for i := range c.Pools {
		names[i] = c.Pools[i].Name
	}
	return names
}
