package core

import (
	"testing"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/types"
)

// bitcoinTinyConfig is the propagation-only tiny campaign under
// Bitcoin-style rules.
func bitcoinTinyConfig() Config {
	cfg := tinyConfig()
	cfg.EnableTxWorkload = false
	cfg.Protocol = consensus.Spec{Name: consensus.BitcoinName}
	return cfg
}

// TestBitcoinCampaignHasNoUncles runs a full campaign under the
// bitcoin protocol and checks the no-reference invariants end to end:
// no block carries uncle references, the fork classifier reports every
// side block unrecognized, the reward accounting pays no uncle or
// nephew rewards, and the protocol-conditional KeyMetrics entries are
// absent.
func TestBitcoinCampaignHasNoUncles(t *testing.T) {
	campaign, err := NewCampaign(bitcoinTinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != consensus.BitcoinName {
		t.Fatalf("results tagged %q", res.Protocol)
	}

	reg := campaign.Registry()
	if reg.Protocol().Name() != consensus.BitcoinName {
		t.Fatalf("registry protocol = %q", reg.Protocol().Name())
	}
	reg.Blocks(func(b *types.Block) bool {
		if len(b.Uncles) != 0 {
			t.Errorf("block %s carries %d uncle references under bitcoin", b.Hash, len(b.Uncles))
		}
		return true
	})

	if res.Forks.References {
		t.Error("fork classifier claims references under bitcoin")
	}
	if res.Forks.RecognizedUncles != 0 {
		t.Errorf("%d recognized uncles under bitcoin", res.Forks.RecognizedUncles)
	}
	if res.Forks.TotalBlocks == res.Forks.MainBlocks {
		t.Error("campaign produced no forks; the assertions above are vacuous")
	}

	if res.Rewards.References {
		t.Error("reward accounting claims references under bitcoin")
	}
	if res.Rewards.UncleETH != 0 || res.Rewards.SiblingUncleETH != 0 {
		t.Errorf("uncle rewards paid under bitcoin: %g/%g", res.Rewards.UncleETH, res.Rewards.SiblingUncleETH)
	}
	// Every side block is pure waste under longest-chain rules.
	side := res.Forks.TotalBlocks - res.Forks.MainBlocks
	if res.Rewards.WastedBlocks != side {
		t.Errorf("wasted %d of %d side blocks", res.Rewards.WastedBlocks, side)
	}
	wantTotal := float64(res.Forks.MainBlocks) * consensus.BitcoinBlockReward
	if res.Rewards.TotalETH != wantTotal {
		t.Errorf("total rewards = %g, want %d blocks x %g", res.Rewards.TotalETH, res.Forks.MainBlocks, consensus.BitcoinBlockReward)
	}

	m := res.KeyMetrics()
	for _, absent := range []string{analysis.MetricForkUncleShare, analysis.MetricRewardUncleShare} {
		if _, ok := m[absent]; ok {
			t.Errorf("bitcoin KeyMetrics carries protocol-conditional entry %s", absent)
		}
	}
	for _, present := range []string{analysis.MetricForkRate, analysis.MetricRewardTotalCoin, analysis.MetricRewardWastedShare} {
		if _, ok := m[present]; !ok {
			t.Errorf("bitcoin KeyMetrics lacks %s", present)
		}
	}
}

// TestEthereumCampaignKeepsUncleMetrics pins the complementary side:
// the default protocol still recognizes uncles and emits the
// conditional metrics.
func TestEthereumCampaignKeepsUncleMetrics(t *testing.T) {
	cfg := tinyConfig()
	cfg.EnableTxWorkload = false
	// Twenty virtual minutes: long enough that the tiny network
	// reliably produces a handful of recognizable uncles.
	cfg.Duration = 20 * time.Minute
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forks.References || !res.Rewards.References {
		t.Fatal("ethereum run lost its reference policy")
	}
	if res.Forks.RecognizedUncles == 0 {
		t.Error("ethereum run recognized no uncles")
	}
	m := res.KeyMetrics()
	for _, present := range []string{analysis.MetricForkUncleShare, analysis.MetricRewardUncleShare} {
		if _, ok := m[present]; !ok {
			t.Errorf("ethereum KeyMetrics lacks %s", present)
		}
	}
}

// TestGhostInclusiveRecognizesDeeperUncles runs the ghost-inclusive
// protocol with a deep reference window and verifies it pays
// references Ethereum's 6-generation window could not.
func TestGhostInclusiveRecognizesDeeperUncles(t *testing.T) {
	cfg := tinyConfig()
	cfg.EnableTxWorkload = false
	// Match the uncle-metrics test: a twenty-minute run gives the
	// reference window something to recognize.
	cfg.Duration = 20 * time.Minute
	cfg.Protocol = consensus.Spec{
		Name:   consensus.GhostInclusiveName,
		Params: map[string]string{"depth": "12", "cap": "4", "decay": "0.6"},
	}
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forks.References {
		t.Fatal("ghost-inclusive run lost its reference policy")
	}
	if res.Forks.RecognizedUncles == 0 {
		t.Error("ghost-inclusive run recognized no uncles")
	}
	if res.Rewards.UncleETH <= 0 {
		t.Error("ghost-inclusive run paid no reference rewards")
	}
	if tag := res.Protocol; tag != "ghost-inclusive:cap=4,decay=0.6,depth=12" {
		t.Errorf("canonical protocol tag = %q", tag)
	}
}

// TestProtocolDeterminism: equal seeds give equal runs under
// non-default protocols too.
func TestProtocolDeterminism(t *testing.T) {
	run := func() (string, string) {
		campaign, err := NewCampaign(bitcoinTinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		hasher := newRecordHasher()
		campaign.AttachRecorder(hasher)
		if _, err := campaign.Run(); err != nil {
			t.Fatal(err)
		}
		return hasher.Sum(), chainFingerprint(campaign)
	}
	rec1, chain1 := run()
	rec2, chain2 := run()
	if rec1 != rec2 || chain1 != chain2 {
		t.Fatal("bitcoin campaigns with equal seeds diverged")
	}
}

// TestProtocolNativeIntervalDefault: leaving the mining interval unset
// adopts the protocol's native target and re-derives the block
// capacity for it, so a hand-built tx-enabled config does not mine
// zero-capacity blocks.
func TestProtocolNativeIntervalDefault(t *testing.T) {
	cfg := bitcoinTinyConfig()
	cfg.EnableTxWorkload = true
	cfg.Mining.InterBlockTime = 0
	cfg.Mining.BlockCapacity = 0
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaign.Dataset().InterBlock; got != consensus.BitcoinTargetInterval {
		t.Fatalf("inter-block time = %v, want the protocol's native %v", got, consensus.BitcoinTargetInterval)
	}
	if got := campaign.cfg.Mining.BlockCapacity; got <= 1 {
		t.Fatalf("block capacity = %d, want re-derived for the adopted interval", got)
	}
	// An explicit capacity survives the interval adoption.
	cfg2 := bitcoinTinyConfig()
	cfg2.Mining.InterBlockTime = 0
	cfg2.Mining.BlockCapacity = 42
	campaign2, err := NewCampaign(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaign2.cfg.Mining.BlockCapacity; got != 42 {
		t.Fatalf("explicit block capacity overwritten: %d", got)
	}
}

// TestValidateRejectsUnknownProtocol: config validation fails fast on
// unregistered protocols and bad parameters.
func TestValidateRejectsUnknownProtocol(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol = consensus.Spec{Name: "tendermint"}
	if _, err := NewCampaign(cfg); err == nil {
		t.Error("unknown protocol accepted")
	}
	cfg = tinyConfig()
	cfg.Protocol = consensus.Spec{Name: consensus.GhostInclusiveName, Params: map[string]string{"depth": "-1"}}
	if _, err := NewCampaign(cfg); err == nil {
		t.Error("invalid protocol parameter accepted")
	}
}
