package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ethmeasure/internal/logs"
)

// TestCrossFormatSpillEquivalence is the golden cross-format test at
// the core level: one campaign config spilled as JSONL and as binary
// must load back to identical records, metadata and chain — the
// analysis pipeline downstream is a pure function of these, so equal
// inputs guarantee equal Results. (cmd/ethanalyze has the
// complementary end-to-end test comparing full report bytes.)
func TestCrossFormatSpillEquivalence(t *testing.T) {
	dir := t.TempDir()
	run := func(format logs.Format, name string) string {
		cfg := tinyConfig()
		cfg.RetainRecords = false
		cfg.SpillPath = filepath.Join(dir, name)
		cfg.SpillFormat = format
		campaign, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := campaign.Run(); err != nil {
			t.Fatal(err)
		}
		return cfg.SpillPath
	}
	jsonlPath := run(logs.FormatJSONL, "spill.jsonl")
	binaryPath := run(logs.FormatBinary, "spill.ethlog")

	// The binary file must actually be binary (and smaller), the JSONL
	// file actually JSONL.
	jf, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := os.ReadFile(binaryPath)
	if err != nil {
		t.Fatal(err)
	}
	if jf[0] != '{' {
		t.Errorf("jsonl spill starts with 0x%02x, want '{'", jf[0])
	}
	if bf[0] == '{' {
		t.Error("binary spill looks like JSONL")
	}
	if len(bf) >= len(jf) {
		t.Errorf("binary spill (%d bytes) not smaller than JSONL (%d bytes)", len(bf), len(jf))
	}

	a, err := logs.ReadCampaignFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := logs.ReadCampaignFile(binaryPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Blocks) == 0 || len(a.Txs) == 0 {
		t.Fatalf("campaign produced no records (%d blocks, %d txs)", len(a.Blocks), len(a.Txs))
	}
	if !reflect.DeepEqual(a.Blocks, b.Blocks) {
		t.Error("block records diverge across formats")
	}
	if !reflect.DeepEqual(a.Txs, b.Txs) {
		t.Error("tx records diverge across formats")
	}
	if !reflect.DeepEqual(a.Meta, b.Meta) {
		t.Errorf("meta diverges: %+v vs %+v", a.Meta, b.Meta)
	}
	if logs.ChainFingerprint(a.Chain) != logs.ChainFingerprint(b.Chain) {
		t.Error("chain dumps diverge across formats")
	}

	// Record fingerprints across formats must agree too — the digest
	// a checkpoint of either run would carry.
	fp := func(c *logs.Campaign) string {
		f := logs.NewRecordFingerprinter()
		for i := range c.Blocks {
			f.RecordBlock(c.Blocks[i])
		}
		for i := range c.Txs {
			f.RecordTx(c.Txs[i])
		}
		return f.Sum()
	}
	if fp(a) != fp(b) {
		t.Error("record fingerprints diverge across formats")
	}
}

// TestSpillFormatValidation: a bogus format must be rejected up front.
func TestSpillFormatValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.SpillFormat = "protobuf"
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("unknown spill format accepted")
	}
}

// TestSpillMetaWriteFailsAtStart pins the satellite fix: an
// unwritable spill target (here /dev/full, which fails every write
// with ENOSPC) must fail campaign construction — not surface hours
// later when the run finalizes the spill file.
func TestSpillMetaWriteFailsAtStart(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	cfg := tinyConfig()
	cfg.RetainRecords = false
	cfg.SpillPath = "/dev/full"
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("campaign construction succeeded with a full spill disk")
	}
}
