package core

import (
	"strings"
	"testing"
	"time"

	"ethmeasure/internal/types"
)

// tinyConfig returns the smallest campaign that exercises every
// subsystem, for fast integration tests. It pins Shards to 1 so these
// tests (and the equivalence variants built on them) stay anchored to
// the serial engine; shardedTinyConfig and the shard-equivalence suite
// cover the parallel path against this anchor.
func tinyConfig() Config {
	cfg := QuickConfig()
	cfg.Shards = 1
	cfg.Duration = 10 * time.Minute
	cfg.NumNodes = 60
	cfg.OutDegree = 5
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > 20 {
			cfg.Vantages[i].Peers = 20
		}
	}
	cfg.TxGen.Rate = 0.3
	cfg.TxGen.NumAccounts = 100
	ApplyCapacity(&cfg)
	return cfg
}

func TestCampaignEndToEnd(t *testing.T) {
	campaign, err := NewCampaign(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}

	if res.Stats.BlocksCreated < 20 {
		t.Errorf("blocks = %d over 10 virtual minutes", res.Stats.BlocksCreated)
	}
	if res.Stats.TxsCreated == 0 {
		t.Error("no transactions generated")
	}
	if res.Stats.Events == 0 || res.Stats.Messages == 0 {
		t.Error("no events/messages simulated")
	}

	// Every analyzer must be populated.
	if res.Propagation == nil || res.Propagation.Blocks == 0 {
		t.Error("propagation analysis empty")
	}
	if res.Redundancy == nil || res.Redundancy.Blocks == 0 {
		t.Error("redundancy analysis empty")
	}
	if res.FirstObs == nil || res.FirstObs.Blocks == 0 {
		t.Error("first-observation analysis empty")
	}
	if res.PoolGeo == nil || len(res.PoolGeo.Rows) == 0 {
		t.Error("pool geography empty")
	}
	if res.Commit == nil || res.Commit.CommittedTxs == 0 {
		t.Error("commit analysis empty")
	}
	if res.Ordering == nil || res.Ordering.CommittedTxs == 0 {
		t.Error("ordering analysis empty")
	}
	if res.Empty == nil || res.Empty.MainBlocks == 0 {
		t.Error("empty-blocks analysis empty")
	}
	if res.Forks == nil || res.Forks.TotalBlocks == 0 {
		t.Error("forks analysis empty")
	}
	if res.OneMiner == nil {
		t.Error("one-miner analysis nil")
	}
	if res.Sequences == nil || res.Sequences.MainBlocks == 0 {
		t.Error("sequences analysis empty")
	}
	if res.TxProp == nil || res.TxProp.Txs == 0 {
		t.Error("tx propagation analysis empty")
	}

	// Propagation sanity: delays well under the inter-block time.
	if res.Propagation.MeanMs > 2000 {
		t.Errorf("mean propagation %fms implausible", res.Propagation.MeanMs)
	}
	// Shares sum to 1 over primary vantages.
	total := 0.0
	for _, v := range res.FirstObs.Vantages {
		total += res.FirstObs.Shares[v]
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("first-observation shares sum to %f", total)
	}
}

func TestCampaignDeterministicAcrossRuns(t *testing.T) {
	run := func() (*Results, []types.Hash) {
		campaign, err := NewCampaign(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := campaign.Run()
		if err != nil {
			t.Fatal(err)
		}
		var hashes []types.Hash
		campaign.Registry().Blocks(func(b *types.Block) bool {
			hashes = append(hashes, b.Hash)
			return true
		})
		return res, hashes
	}
	resA, chainA := run()
	resB, chainB := run()
	if len(chainA) != len(chainB) {
		t.Fatalf("chain lengths differ: %d vs %d", len(chainA), len(chainB))
	}
	for i := range chainA {
		if chainA[i] != chainB[i] {
			t.Fatalf("chains diverge at %d", i)
		}
	}
	if resA.Stats.Events != resB.Stats.Events {
		t.Errorf("event counts differ: %d vs %d", resA.Stats.Events, resB.Stats.Events)
	}
	if len(resA.Dataset.Blocks) != len(resB.Dataset.Blocks) {
		t.Error("record counts differ")
	}
}

func TestCampaignSeedChangesOutcome(t *testing.T) {
	cfgA := tinyConfig()
	cfgB := tinyConfig()
	cfgB.Seed = 999
	runEvents := func(cfg Config) uint64 {
		campaign, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := campaign.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Events
	}
	if runEvents(cfgA) == runEvents(cfgB) {
		t.Error("different seeds produced identical event counts (suspicious)")
	}
}

func TestCampaignWithoutTxWorkload(t *testing.T) {
	cfg := tinyConfig()
	cfg.EnableTxWorkload = false
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TxsCreated != 0 {
		t.Error("txs generated despite disabled workload")
	}
	if res.Commit != nil || res.Ordering != nil || res.TxProp != nil {
		t.Error("tx analyses must be nil without workload")
	}
	if res.Propagation == nil || res.Propagation.Blocks == 0 {
		t.Error("block analyses must still run")
	}
}

func TestCampaignAuxiliaryVantageExcluded(t *testing.T) {
	campaign, err := NewCampaign(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Dataset.Vantages {
		if v == "WE-default" {
			t.Error("auxiliary vantage leaked into primary set")
		}
	}
	if len(res.Dataset.Vantages) != 4 {
		t.Errorf("primary vantages = %v", res.Dataset.Vantages)
	}
	// But its records must exist for the redundancy analysis.
	found := false
	for i := range res.Dataset.Blocks {
		if res.Dataset.Blocks[i].Vantage == "WE-default" {
			found = true
			break
		}
	}
	if !found {
		t.Error("auxiliary vantage records missing")
	}
}

func TestCampaignRejectsInvalidConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumNodes = 3
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCampaignForkRateInPaperRange(t *testing.T) {
	if testing.Short() {
		t.Skip("longer statistical run")
	}
	cfg := tinyConfig()
	cfg.Duration = time.Hour
	cfg.EnableTxWorkload = false
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 92.81% of blocks on the main chain. Small runs are noisy;
	// accept a broad band around it.
	if res.Forks.MainShare < 0.85 || res.Forks.MainShare > 0.99 {
		t.Errorf("main share = %.3f, want ≈0.93", res.Forks.MainShare)
	}
}

func TestCampaignWithChurn(t *testing.T) {
	cfg := tinyConfig()
	cfg.EnableTxWorkload = false
	cfg.Churn = DefaultChurnConfig()
	cfg.Churn.Interval = 30 * time.Second // aggressive for a short run
	cfg.Churn.DowntimeMean = time.Minute
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios == nil || res.Scenarios.Metrics["scenario_churn_events"] == 0 {
		t.Fatal("no churn events over 10 virtual minutes at 30s interval")
	}
	if len(res.Scenarios.Tags) != 1 || !strings.HasPrefix(res.Scenarios.Tags[0], "churn:") {
		t.Errorf("scenario tags = %v, want the churn spec", res.Scenarios.Tags)
	}
	// The network must keep functioning: blocks still propagate to
	// all vantages and the chain still grows.
	if res.Propagation.Blocks == 0 {
		t.Error("no blocks observed under churn")
	}
	if res.Stats.BlocksCreated < 20 {
		t.Errorf("chain stalled under churn: %d blocks", res.Stats.BlocksCreated)
	}
	if res.Propagation.MedianMs <= 0 || res.Propagation.MedianMs > 2000 {
		t.Errorf("propagation degenerated under churn: %.0fms median", res.Propagation.MedianMs)
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := tinyConfig()
		cfg.EnableTxWorkload = false
		cfg.Churn = ChurnConfig{Interval: 20 * time.Second, DowntimeMean: time.Minute}
		campaign, err := NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := campaign.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Scenarios.Metrics["scenario_churn_events"]
	}
	if a, b := run(), run(); a != b {
		t.Errorf("churn events differ across identical runs: %v vs %v", a, b)
	}
}

func TestCampaignWithDiscoveryTopology(t *testing.T) {
	cfg := tinyConfig()
	cfg.UseDiscovery = true
	cfg.EnableTxWorkload = false
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Propagation.Blocks == 0 {
		t.Error("no blocks observed with discovery topology")
	}
	// Geography-blindness: EA should still enjoy the gateway advantage
	// (topology choice must not change the Figure 2 mechanism).
	if res.FirstObs.Shares["EA"] <= res.FirstObs.Shares["NA"] {
		t.Error("EA advantage lost under discovery topology")
	}
}

func TestCampaignWithholdingDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("longer statistical run")
	}
	cfg := tinyConfig()
	cfg.Duration = 45 * time.Minute
	// Detection is statistical: the forensic flags a pool only when a
	// majority of its consecutive-block sequences arrive as bursts.
	// This seed's 45-minute window shows a clear burst majority.
	cfg.Seed = 4
	cfg.EnableTxWorkload = false
	cfg.WithholdingPool = "Ethermine"
	cfg.WithholdDepth = 3
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The attacker's burst releases must show up in the forensic.
	var attacker *struct {
		seq, burst int
	}
	for _, row := range res.Withholding.Rows {
		if row.Pool == "Ethermine" {
			attacker = &struct{ seq, burst int }{row.Sequences, row.BurstSequences}
		}
	}
	if attacker == nil || attacker.seq == 0 {
		t.Fatal("withholding pool produced no sequences")
	}
	if attacker.burst == 0 {
		t.Error("no burst releases detected despite withholding attack")
	}
	found := false
	for _, s := range res.Withholding.Suspects {
		if s == "Ethermine" {
			found = true
		}
	}
	if !found {
		t.Errorf("attacker not flagged; forensic rows: %+v", res.Withholding.Rows)
	}
}

func TestCampaignHonestPoolsNotFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("longer statistical run")
	}
	cfg := tinyConfig()
	cfg.Duration = time.Hour
	cfg.EnableTxWorkload = false
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Withholding.Suspects) != 0 {
		t.Errorf("honest run flagged suspects: %v", res.Withholding.Suspects)
	}
}

func TestCampaignWithholdingConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.WithholdingPool = "NoSuchPool"
	cfg.WithholdDepth = 3
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("unknown withholding pool accepted")
	}
}
