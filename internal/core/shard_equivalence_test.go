package core

import (
	"errors"
	"testing"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/scenario"
	"ethmeasure/internal/sim"
)

// shardedTinyConfig is tinyConfig with the shard count left open: the
// shard-equivalence suite runs the same config at several counts and
// requires bit-identical output. tinyConfig itself pins Shards to 1 so
// the eleven streaming-equivalence variants stay anchored to the
// serial engine; this file is where the parallel path earns its keep.
func shardedTinyConfig(shards int) Config {
	cfg := tinyConfig()
	cfg.Shards = shards
	return cfg
}

// shardEquivalenceVariants are the configs the sharded engine must
// reproduce bit for bit at every shard count: the vanilla quick run,
// churn (nodes leaving mid-window), and a partition scenario (serial-
// phase topology surgery between windows).
func shardEquivalenceVariants() []struct {
	name string
	cfg  Config
} {
	quick := tinyConfig()

	churn := tinyConfig()
	churn.Churn = DefaultChurnConfig()
	churn.Churn.Interval = 30 * time.Second
	churn.Churn.DowntimeMean = time.Minute

	partitionCfg := tinyConfig()
	partitionCfg.EnableTxWorkload = false
	spec, err := scenario.Parse("partition:a=EA+SEA,start=2m,dur=3m")
	if err != nil {
		panic(err)
	}
	partitionCfg.Scenarios = append(partitionCfg.Scenarios, spec)

	return []struct {
		name string
		cfg  Config
	}{
		{"quick", quick},
		{"churn", churn},
		{"partition", partitionCfg},
	}
}

// runSharded runs one campaign at the given shard count and returns
// its record-stream hash, chain fingerprint, and analysis JSON.
func runSharded(t *testing.T, cfg Config, shards int) (string, string, map[string]string) {
	t.Helper()
	cfg.Shards = shards
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 && campaign.Sharded() == nil {
		t.Fatalf("shards=%d built no sharded scheduler", shards)
	}
	hasher := newRecordHasher()
	campaign.AttachRecorder(hasher)
	res, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	return hasher.Sum(), chainFingerprint(campaign), analysisJSON(t, res)
}

// TestShardCountEquivalence is the determinism contract of the
// sharded engine: the same seed must produce bit-identical record
// streams, chains, and analysis results at shard counts 1, 2, 4 and 8.
// The -short suite keeps 1 vs 2; the full suite runs all counts.
func TestShardCountEquivalence(t *testing.T) {
	counts := []int{2}
	if !testing.Short() {
		counts = []int{2, 4, 8}
	}
	for _, variant := range shardEquivalenceVariants() {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			recSerial, chainSerial, jsonSerial := runSharded(t, variant.cfg, 1)
			for _, n := range counts {
				recN, chainN, jsonN := runSharded(t, variant.cfg, n)
				if recN != recSerial {
					t.Errorf("shards=%d: record stream diverged from serial", n)
				}
				if chainN != chainSerial {
					t.Errorf("shards=%d: chain diverged from serial", n)
				}
				for name, want := range jsonSerial {
					if got := jsonN[name]; got != want {
						t.Errorf("shards=%d: %s diverged:\nserial:  %.200s\nsharded: %.200s", n, name, want, got)
					}
				}
			}
		})
	}
}

// TestShardedCancellation stops a sharded run mid-window and requires
// a clean ErrStopped, not a hang or a panic from half-advanced shard
// clocks.
func TestShardedCancellation(t *testing.T) {
	cfg := shardedTinyConfig(4)
	campaign, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	campaign.Engine().Schedule(cfg.Duration/2, func() {
		campaign.StopSimulation()
	})
	err = campaign.Simulate()
	if !errors.Is(err, sim.ErrStopped) {
		t.Fatalf("Simulate after StopSimulation = %v, want ErrStopped", err)
	}
}

// TestShardedAutoResolve checks the Shards=0 default resolves to a
// sane count and that negative counts are rejected up front.
func TestShardedAutoResolve(t *testing.T) {
	cfg := QuickConfig()
	if got := cfg.ResolveShards(); got < 1 || got > geo.NumRegions {
		t.Fatalf("ResolveShards() = %d, want 1..%d", got, geo.NumRegions)
	}
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted Shards=-1")
	}
}

// TestShardPickerBalances verifies the weight-line assignment: with
// the default global distribution, every shard ends up within a few
// percent of numNodes/shards even though the largest region alone
// holds a third of the weight.
func TestShardPickerBalances(t *testing.T) {
	dist := geo.GlobalNodeDistribution()
	for _, shards := range []int{2, 4, 8} {
		pick := shardPicker(dist, shards)
		rng := sim.NewStream(42, "picker-test", 0)
		counts := make([]int, shards)
		const n = 4000
		for i := 0; i < n; i++ {
			r := dist.Sample(rng)
			s := pick(r)
			if s < 0 || s >= shards {
				t.Fatalf("pick(%v) = %d out of range", r, s)
			}
			counts[s]++
		}
		want := n / shards
		for s, c := range counts {
			if c < want*8/10 || c > want*12/10 {
				t.Errorf("shards=%d: shard %d has %d nodes, want ~%d", shards, s, c, want)
			}
		}
	}
}
