package core

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"ethmeasure/internal/consensus"
)

// poolVariants is the warm-run extension of the equivalence suite: a
// sequence of deliberately differing configs fed through ONE pool, so
// every recycled structure is exercised across node-count shrink and
// grow, a protocol switch, and shards toggling on and off between
// consecutive runs.
func poolVariants() []struct {
	name string
	cfg  Config
} {
	quick := tinyConfig()

	grow := tinyConfig()
	grow.NumNodes = 90
	grow.Seed = 7

	shrink := tinyConfig()
	shrink.NumNodes = 40
	shrink.OutDegree = 4
	shrink.Seed = 11

	bitcoin := tinyConfig()
	bitcoin.EnableTxWorkload = false
	bitcoin.Protocol = consensus.Spec{Name: consensus.BitcoinName}

	sharded := tinyConfig()
	sharded.Shards = 2
	sharded.Seed = 3

	serialAgain := tinyConfig()
	serialAgain.Seed = 5

	return []struct {
		name string
		cfg  Config
	}{
		{"quick", quick},
		{"grow", grow},
		{"shrink", shrink},
		{"bitcoin", bitcoin},
		{"sharded", sharded},
		{"serial-again", serialAgain},
	}
}

// TestPoolWarmEquivalence proves warm-run pooling is invisible: each
// variant runs cold (fresh NewCampaign) and warm (through one shared
// Pool, which recycles the previous variant's state), and the record
// stream, chain, every analysis result and the key metrics must match
// bit for bit. The variant sequence changes node count, protocol and
// shard mode between consecutive runs, so the pool's reset paths are
// exercised under shape changes, not just same-config repeats.
func TestPoolWarmEquivalence(t *testing.T) {
	pool := NewPool()
	for _, variant := range poolVariants() {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			cfg := variant.cfg
			cfg.RetainRecords = false

			runOne := func(c *Campaign, err error) (*Results, string, string) {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
				hasher := newRecordHasher()
				c.AttachRecorder(hasher)
				res, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res, hasher.Sum(), chainFingerprint(c)
			}

			resCold, recCold, chainCold := runOne(NewCampaign(cfg))

			warm, err := pool.NewCampaign(cfg)
			resWarm, recWarm, chainWarm := runOne(warm, err)

			if recCold != recWarm {
				t.Fatalf("record streams diverged:\ncold: %s\nwarm: %s", recCold, recWarm)
			}
			if chainCold != chainWarm {
				t.Fatalf("chains diverged")
			}
			jsonCold := analysisJSON(t, resCold)
			jsonWarm := analysisJSON(t, resWarm)
			for name, cold := range jsonCold {
				if w := jsonWarm[name]; w != cold {
					t.Errorf("%s diverged:\ncold: %.200s\nwarm: %.200s", name, cold, w)
				}
			}
			if !reflect.DeepEqual(resCold.KeyMetrics(), resWarm.KeyMetrics()) {
				t.Errorf("KeyMetrics diverged:\n%v\n%v", resCold.KeyMetrics(), resWarm.KeyMetrics())
			}
			sa, sb := resCold.Stats, resWarm.Stats
			sa.WallDuration, sb.WallDuration = 0, 0
			if sa != sb {
				t.Errorf("stats diverged: %+v vs %+v", sa, sb)
			}

			// Everything is extracted; feed the warm state to the next
			// variant.
			pool.Recycle(warm)
			if warm.Engine() != nil || warm.Collector() != nil {
				t.Error("Recycle left simulation state on the campaign")
			}
		})
	}
	st := pool.Stats()
	if want := uint64(len(poolVariants())); st.Recycled != want {
		t.Errorf("pool recycled %d campaigns, want %d", st.Recycled, want)
	}
	if st.NodesReused == 0 || st.EdgesReused == 0 {
		t.Errorf("pooling never engaged: %+v", st)
	}
}

// TestPoolWarmAllocs is the allocation regression: the second (warm)
// build of a pooled campaign must reuse the previous run's engine and
// network outright and allocate far less than a cold build — the slab,
// endpoint table, node structs and edge caches all come back from the
// pool. The 50% bound is deliberately loose (the observed ratio is far
// smaller); it exists to catch the pooling path silently degrading to
// cold construction.
func TestPoolWarmAllocs(t *testing.T) {
	cfg := tinyConfig()
	cfg.RetainRecords = false
	cfg.Duration = 5 * time.Minute

	mallocs := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.Mallocs
	}

	pool := NewPool()
	first, err := pool.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstEngine := first.Engine()
	firstNetwork := first.network
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	pool.Recycle(first)

	runtime.GC()
	before := mallocs()
	warm, err := pool.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmAllocs := mallocs() - before

	if warm.Engine() != firstEngine {
		t.Error("warm build did not reuse the pooled engine")
	}
	if warm.network != firstNetwork {
		t.Error("warm build did not reuse the pooled network")
	}

	st := pool.Stats()
	if st.NodesReused == 0 || st.EdgesReused == 0 {
		t.Fatalf("warm build did not draw on the freelists: %+v", st)
	}

	runtime.GC()
	before = mallocs()
	cold, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldAllocs := mallocs() - before
	_ = cold

	if warmAllocs*2 > coldAllocs {
		t.Errorf("warm build allocated %d objects, cold %d; want warm < cold/2", warmAllocs, coldAllocs)
	}

	// The warm campaign must still run; its slab was inherited from the
	// first run, so the simulation phase starts with warm storage.
	if _, err := warm.Run(); err != nil {
		t.Fatal(err)
	}
	pool.Recycle(warm)
}

// TestPoolRecycleGuards pins the defensive edges of the recycle
// contract: double recycle, foreign-pool recycle and recycling after
// ReleaseNetwork are all no-ops.
func TestPoolRecycleGuards(t *testing.T) {
	cfg := tinyConfig()
	cfg.RetainRecords = false
	cfg.Duration = 2 * time.Minute

	pool := NewPool()
	c, err := pool.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	pool.Recycle(c)
	pool.Recycle(c) // double recycle: no-op
	if got := pool.Stats().Recycled; got != 1 {
		t.Errorf("double recycle counted: %d", got)
	}

	other := NewPool()
	c2, err := other.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool.Recycle(c2) // foreign pool: no-op
	if c2.Engine() == nil {
		t.Error("foreign-pool recycle stripped the campaign")
	}

	c3, err := other.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Run(); err != nil {
		t.Fatal(err)
	}
	c3.ReleaseNetwork()
	other.Recycle(c3) // released campaigns have nothing to give
	if got := other.Stats().Recycled; got != 0 {
		t.Errorf("released campaign recycled: %d", got)
	}
}
