package p2p

import (
	"testing"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/types"
)

// TestTxRelayZeroAllocsSteadyState pins the protocol's volume path:
// once caches are warm, submitting and relaying transactions through
// the full stack (p2p relay -> simnet envelope -> engine slab ->
// delivery -> known-set updates) performs zero allocations. The
// transaction workload dominates event counts in every campaign, so
// this is the budget that keeps 5,000-node runs off the GC.
func TestTxRelayZeroAllocsSteadyState(t *testing.T) {
	engine := sim.NewEngine(1)
	net := simnet.New(engine, geo.DefaultLatencyModel())
	reg := chain.NewRegistry(0, types.NewHashIssuer(1))
	cfg := DefaultConfig()
	// Small caches so FIFO rings reach capacity during warm-up and the
	// measured phase exercises steady-state eviction, not growth.
	cfg.KnownTxCache = 512
	cfg.KnownTxsPerPeer = 256
	cfg.KnownBlocksPerPeer = 64

	var nodes []*Node
	for i := 0; i < 3; i++ {
		ep, err := net.AddNode(geo.NorthAmerica, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, NewNode(&cfg, net, ep, reg))
	}
	Connect(nodes[0], nodes[1])
	Connect(nodes[1], nodes[2])

	// A pool of transactions larger than every cache: by the time a
	// hash comes around again it has been evicted everywhere, so each
	// submission relays like fresh traffic without allocating new
	// transaction objects inside the measured region.
	txs := make([]*types.Transaction, 2048)
	for i := range txs {
		txs[i] = &types.Transaction{Hash: types.Hash(uint64(9)<<48 + uint64(i) + 1), Size: 110}
	}
	next := 0
	batch := func() {
		for i := 0; i < 64; i++ {
			nodes[0].SubmitTx(txs[next%len(txs)])
			next++
		}
		if _, err := engine.Run(engine.Now() + time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every cache past capacity, the engine slab past its
	// high-water mark, and all 256 of the ladder queue's ring buckets
	// (each batch lands on a different slot residue, so covering the
	// full ring takes a few hundred rounds).
	for i := 0; i < 320; i++ {
		batch()
	}

	allocs := testing.AllocsPerRun(100, batch)
	if allocs != 0 {
		t.Fatalf("steady-state tx relay allocated %.1f times per 64-tx batch, want 0", allocs)
	}
}
