package p2p

import (
	"math/rand"
	"time"
)

// Config holds the protocol timing and relay parameters. Defaults
// reproduce Geth 1.8.x behaviour (the client the paper instrumented).
type Config struct {
	// SqrtPush enables Geth's direct propagation of full blocks to
	// ceil(sqrt(peers)) peers before import. Disabling it yields a pure
	// announce-and-fetch gossip (ablation for Table II).
	SqrtPush bool

	// AnnounceAfterImport enables hash announcements to all remaining
	// peers once a block has been imported.
	AnnounceAfterImport bool

	// ArriveTimeout is how long the fetcher waits after a hash
	// announcement for the full block to arrive by direct push before
	// requesting it (Geth: 500 ms).
	ArriveTimeout time.Duration

	// GatherSlack trims the fetch wait (Geth: 100 ms).
	GatherSlack time.Duration

	// HeaderCheckMean is the mean duration of the pre-relay header
	// sanity check (block is pushed onward after only this check).
	HeaderCheckMean time.Duration

	// ImportBase and ImportPerTx model full validation + state
	// execution time: base + perTx·len(txs), with multiplicative jitter.
	ImportBase  time.Duration
	ImportPerTx time.Duration

	// ImportJitter is the max fractional jitter on processing times.
	ImportJitter float64

	// KnownBlocksPerPeer / KnownTxsPerPeer bound the per-link "peer
	// already has this hash" caches (Geth: 1024 / 32768).
	KnownBlocksPerPeer int
	KnownTxsPerPeer    int

	// KnownTxCache bounds each node's own seen-transaction cache.
	KnownTxCache int
}

// DefaultConfig returns the Geth-1.8-calibrated protocol parameters.
func DefaultConfig() Config {
	return Config{
		SqrtPush:            true,
		AnnounceAfterImport: true,
		ArriveTimeout:       500 * time.Millisecond,
		GatherSlack:         100 * time.Millisecond,
		HeaderCheckMean:     30 * time.Millisecond,
		ImportBase:          450 * time.Millisecond,
		ImportPerTx:         1 * time.Millisecond,
		ImportJitter:        0.5,
		KnownBlocksPerPeer:  256,
		KnownTxsPerPeer:     4096,
		KnownTxCache:        1 << 17,
	}
}

// headerCheckDelay samples the pre-relay header check duration.
func (c *Config) headerCheckDelay(rng *rand.Rand) time.Duration {
	return jittered(rng, c.HeaderCheckMean, c.ImportJitter)
}

// importDelay samples the full import duration for a block with nTxs
// transactions.
func (c *Config) importDelay(rng *rand.Rand, nTxs int) time.Duration {
	base := c.ImportBase + time.Duration(nTxs)*c.ImportPerTx
	return jittered(rng, base, c.ImportJitter)
}

// fetchDelay samples the fetcher's wait between an announcement for an
// unknown block and the explicit request for it.
func (c *Config) fetchDelay(rng *rand.Rand) time.Duration {
	d := c.ArriveTimeout - c.GatherSlack
	if d < 0 {
		d = 0
	}
	// Small spread so fetches from many nodes do not synchronize.
	return d + time.Duration(rng.Int63n(int64(c.GatherSlack)+1))
}

// jittered applies multiplicative jitter in [1-j/2, 1+j] to d.
func jittered(rng *rand.Rand, d time.Duration, j float64) time.Duration {
	if d <= 0 {
		return 0
	}
	f := 1 - j/2 + rng.Float64()*1.5*j
	if f < 0.05 {
		f = 0.05
	}
	return time.Duration(float64(d) * f)
}
