package p2p

import (
	"testing"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/types"
)

// harness bundles a small protocol network for tests.
type harness struct {
	t      *testing.T
	engine *sim.Engine
	net    *simnet.Network
	reg    *chain.Registry
	issuer *types.HashIssuer
	cfg    Config
	nodes  []*Node
}

func newHarness(t *testing.T, n int, cfg Config) *harness {
	t.Helper()
	engine := sim.NewEngine(1)
	net := simnet.New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	issuer := types.NewHashIssuer(1)
	reg := chain.NewRegistry(0, issuer)
	h := &harness{t: t, engine: engine, net: net, reg: reg, issuer: issuer, cfg: cfg}
	for i := 0; i < n; i++ {
		endpoint, err := net.AddNode(geo.NorthAmerica, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, NewNode(&h.cfg, net, endpoint, reg))
	}
	return h
}

// ring connects the nodes in a cycle.
func (h *harness) ring() {
	for i := range h.nodes {
		Connect(h.nodes[i], h.nodes[(i+1)%len(h.nodes)])
	}
}

// full connects every pair.
func (h *harness) full() {
	for i := range h.nodes {
		for j := i + 1; j < len(h.nodes); j++ {
			Connect(h.nodes[i], h.nodes[j])
		}
	}
}

func (h *harness) mineBlock(parent *types.Block, miner types.PoolID) *types.Block {
	h.t.Helper()
	b := &types.Block{
		Hash:       h.issuer.Next(),
		Number:     parent.Number + 1,
		ParentHash: parent.Hash,
		Miner:      miner,
		Size:       types.BlockSize(0),
	}
	if err := h.reg.Add(b); err != nil {
		h.t.Fatal(err)
	}
	return b
}

func (h *harness) run(d time.Duration) {
	h.t.Helper()
	if _, err := h.engine.Run(d); err != nil {
		h.t.Fatal(err)
	}
}

func TestConnectDeduplicatesAndRejectsSelf(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	a, b := h.nodes[0], h.nodes[1]
	if Connect(a, a) != nil {
		t.Error("self-connect should return nil")
	}
	e1 := Connect(a, b)
	e2 := Connect(b, a)
	if e1 == nil || e1 != e2 {
		t.Error("reconnect must return the existing edge")
	}
	if a.NumPeers() != 1 || b.NumPeers() != 1 {
		t.Errorf("peer counts %d/%d", a.NumPeers(), b.NumPeers())
	}
	if a.Peers()[0] != b {
		t.Error("Peers() wrong")
	}
}

func TestBlockFloodsEntireNetwork(t *testing.T) {
	h := newHarness(t, 12, DefaultConfig())
	h.ring() // worst-case diameter
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(time.Minute)
	for i, n := range h.nodes {
		if !n.View().Knows(b.Hash) {
			t.Errorf("node %d never imported the block", i)
		}
		if n.View().Head().Hash != b.Hash {
			t.Errorf("node %d head = %s", i, n.View().Head().Hash)
		}
	}
}

func TestAnnounceOnlyGossipStillDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SqrtPush = false // ablation: pure announce-and-fetch
	h := newHarness(t, 8, cfg)
	h.ring()
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(2 * time.Minute)
	for i, n := range h.nodes {
		if !n.View().Knows(b.Hash) {
			t.Errorf("node %d missing block under announce-only gossip", i)
		}
	}
}

func TestPushOnlyGossipStillDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AnnounceAfterImport = false
	h := newHarness(t, 8, cfg)
	h.full() // sqrt-push alone does not guarantee ring coverage
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(2 * time.Minute)
	reached := 0
	for _, n := range h.nodes {
		if n.View().Knows(b.Hash) {
			reached++
		}
	}
	// sqrt-push repeatedly forwards; on a full graph everyone is
	// reachable by pushes alone.
	if reached != len(h.nodes) {
		t.Errorf("push-only reached %d of %d", reached, len(h.nodes))
	}
}

// countingObserver tallies observed messages.
type countingObserver struct {
	full, fetched, announces, txs int
	lastFrom                      types.NodeID
}

func (c *countingObserver) ObserveBlock(_ sim.Time, _ *types.Block, from types.NodeID, kind MsgKind) {
	switch kind {
	case MsgFullBlock:
		c.full++
	case MsgFetchedBlock:
		c.fetched++
	}
	c.lastFrom = from
}

func (c *countingObserver) ObserveAnnounce(_ sim.Time, _ types.Hash, _ uint64, from types.NodeID) {
	c.announces++
	c.lastFrom = from
}

func (c *countingObserver) ObserveTx(_ sim.Time, _ *types.Transaction, from types.NodeID) {
	c.txs++
	c.lastFrom = from
}

func TestObserverSeesEveryReception(t *testing.T) {
	h := newHarness(t, 6, DefaultConfig())
	h.full()
	obs := &countingObserver{}
	h.nodes[5].Observer = obs
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(time.Minute)
	total := obs.full + obs.announces + obs.fetched
	if total == 0 {
		t.Fatal("observer saw nothing")
	}
	// Suppression bounds: at most one message per edge plus the
	// initial pushes; never more than one reception per peer per kind.
	if obs.full > 5 || obs.announces > 5 {
		t.Errorf("full=%d announces=%d exceed peer count", obs.full, obs.announces)
	}
}

func TestKnownPeerSuppressionBoundsTraffic(t *testing.T) {
	h := newHarness(t, 10, DefaultConfig())
	h.full()
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(time.Minute)
	delivered := h.net.Delivered()
	// Upper bound: every edge carries at most ~2 block messages plus
	// fetches; 45 edges → allow generous slack but catch explosions.
	if delivered > 200 {
		t.Errorf("delivered %d messages for one block on 45 edges", delivered)
	}
}

func TestFetchAfterAnnounceTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SqrtPush = false
	h := newHarness(t, 2, cfg)
	h.ring()
	obs := &countingObserver{}
	h.nodes[1].Observer = obs
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(time.Minute)
	if obs.announces != 1 {
		t.Errorf("announces = %d, want 1", obs.announces)
	}
	if obs.fetched != 1 {
		t.Errorf("fetched = %d, want 1 (block must arrive via fetch)", obs.fetched)
	}
	if !h.nodes[1].View().Knows(b.Hash) {
		t.Error("fetched block not imported")
	}
}

func TestTxFloodsAndDeduplicates(t *testing.T) {
	h := newHarness(t, 8, DefaultConfig())
	h.ring()
	sink := 0
	h.nodes[4].TxSink = func(*types.Transaction) { sink++ }
	tx := &types.Transaction{Hash: 0x1234, Sender: 1, Size: types.TxSize}
	h.nodes[0].SubmitTx(tx)
	h.run(time.Minute)
	if sink != 1 {
		t.Errorf("TxSink fired %d times, want exactly 1", sink)
	}
	// Re-submitting the same tx must not re-flood.
	before := h.net.Delivered()
	h.nodes[0].SubmitTx(tx)
	h.run(2 * time.Minute)
	if h.net.Delivered() != before {
		t.Error("duplicate submit generated traffic")
	}
}

func TestOnNewHeadFiresOncePerReorg(t *testing.T) {
	h := newHarness(t, 3, DefaultConfig())
	h.full()
	var heads []types.Hash
	h.nodes[2].OnNewHead = func(b *types.Block) { heads = append(heads, b.Hash) }
	b1 := h.mineBlock(h.reg.Genesis(), 1)
	b2 := h.mineBlock(b1, 1)
	h.nodes[0].PublishBlock(b1)
	h.run(5 * time.Second)
	h.nodes[0].PublishBlock(b2)
	h.run(time.Minute)
	if len(heads) != 2 || heads[0] != b1.Hash || heads[1] != b2.Hash {
		t.Errorf("head sequence = %v", heads)
	}
}

func TestProcSpeedScalesImportLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ImportJitter = 0 // deterministic timing
	h := newHarness(t, 3, cfg)
	Connect(h.nodes[0], h.nodes[1])
	Connect(h.nodes[0], h.nodes[2])
	h.nodes[1].SetProcSpeed(0.25)
	h.nodes[2].SetProcSpeed(4.0)

	var fastAt, slowAt sim.Time
	h.nodes[1].OnNewHead = func(*types.Block) { fastAt = h.engine.Now() }
	h.nodes[2].OnNewHead = func(*types.Block) { slowAt = h.engine.Now() }
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(time.Minute)
	if fastAt == 0 || slowAt == 0 {
		t.Fatal("heads did not update")
	}
	if fastAt >= slowAt {
		t.Errorf("fast node imported at %v, slow at %v", fastAt, slowAt)
	}
}

func TestSetProcSpeedIgnoresNonPositive(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig())
	n := h.nodes[0]
	n.SetProcSpeed(-1)
	if n.ProcSpeed() != 1 {
		t.Error("negative speed should be ignored")
	}
	n.SetProcSpeed(0)
	if n.ProcSpeed() != 1 {
		t.Error("zero speed should be ignored")
	}
	n.SetProcSpeed(2)
	if n.ProcSpeed() != 2 {
		t.Error("valid speed not applied")
	}
}

func TestCompetingBlocksFirstSeenWins(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.ring()
	a := h.mineBlock(h.reg.Genesis(), 1)
	b := h.mineBlock(h.reg.Genesis(), 2)
	h.nodes[0].PublishBlock(a)
	h.run(30 * time.Second)
	h.nodes[1].handleBlock(b, h.nodes[1].edges[0], MsgFullBlock)
	h.run(time.Minute)
	// Both know both blocks; heads keep the first-seen (a for node 0).
	if h.nodes[0].View().Head().Hash != a.Hash {
		t.Errorf("node 0 head = %s, want first-seen %s", h.nodes[0].View().Head().Hash, a.Hash)
	}
}

func TestDisconnectPair(t *testing.T) {
	h := newHarness(t, 3, DefaultConfig())
	h.full()
	a, b, c := h.nodes[0], h.nodes[1], h.nodes[2]
	Disconnect(a, b)
	if a.NumPeers() != 1 || b.NumPeers() != 1 {
		t.Errorf("peer counts after disconnect: %d/%d", a.NumPeers(), b.NumPeers())
	}
	if a.Peers()[0] != c || b.Peers()[0] != c {
		t.Error("surviving edges wrong")
	}
	// Disconnecting again is a no-op.
	Disconnect(a, b)
	if a.NumPeers() != 1 {
		t.Error("repeat disconnect changed state")
	}
	// Traffic still flows via c.
	blk := h.mineBlock(h.reg.Genesis(), 1)
	a.PublishBlock(blk)
	h.run(time.Minute)
	if !b.View().Knows(blk.Hash) {
		t.Error("block failed to route around the removed edge")
	}
}

func TestDisconnectAllAndRejoin(t *testing.T) {
	h := newHarness(t, 5, DefaultConfig())
	h.full()
	n := h.nodes[2]
	n.DisconnectAll()
	if n.NumPeers() != 0 {
		t.Fatalf("peers after DisconnectAll = %d", n.NumPeers())
	}
	for i, other := range h.nodes {
		if other == n {
			continue
		}
		for _, p := range other.Peers() {
			if p == n {
				t.Errorf("node %d still lists the departed peer", i)
			}
		}
	}
	// A block published while offline is missed...
	b1 := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b1)
	h.run(30 * time.Second)
	if n.View().Knows(b1.Hash) {
		t.Error("offline node received a block")
	}
	// ...but after rejoining, new blocks arrive again.
	Connect(n, h.nodes[0])
	b2 := h.mineBlock(b1, 1)
	h.nodes[0].PublishBlock(b2)
	h.run(time.Minute)
	if !n.View().Knows(b2.Hash) {
		t.Error("rejoined node missed the next block")
	}
	if n.View().Head().Hash != b2.Hash {
		t.Error("rejoined node head not updated (import must not require the missed parent)")
	}
}
