package p2p

// bitset is a growable bitmap keyed by dense non-negative integers
// (node IDs). The topology builders probe peer membership once per
// dial attempt, and campaign-level rewiring (churn) probes it
// constantly — a bitset makes that O(1) with no hashing.
type bitset struct {
	words []uint64
}

func (b *bitset) set(i int) {
	w := i >> 6
	if w >= len(b.words) {
		grown := make([]uint64, w+1)
		copy(grown, b.words)
		b.words = grown
	}
	b.words[w] |= 1 << (uint(i) & 63)
}

func (b *bitset) clear(i int) {
	if w := i >> 6; w < len(b.words) {
		b.words[w] &^= 1 << (uint(i) & 63)
	}
}

func (b *bitset) has(i int) bool {
	w := i >> 6
	return w < len(b.words) && b.words[w]&(1<<(uint(i)&63)) != 0
}

// reset clears every bit, keeping the allocated words so a recycled
// bitset costs nothing to reuse.
func (b *bitset) reset() { clear(b.words) }
