package p2p

import (
	"math/rand"
	"testing"

	"ethmeasure/internal/types"
)

// refFIFOSet is the original map+ring implementation, kept as the
// behavioural reference for the open-addressed rewrite.
type refFIFOSet struct {
	capacity int
	m        map[types.Hash]struct{}
	ring     []types.Hash
	pos      int
}

func newRefFIFOSet(capacity int) *refFIFOSet {
	if capacity <= 0 {
		capacity = 1
	}
	return &refFIFOSet{capacity: capacity, m: make(map[types.Hash]struct{})}
}

func (s *refFIFOSet) Add(h types.Hash) bool {
	if _, ok := s.m[h]; ok {
		return false
	}
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, h)
	} else {
		delete(s.m, s.ring[s.pos])
		s.ring[s.pos] = h
		s.pos = (s.pos + 1) % s.capacity
	}
	s.m[h] = struct{}{}
	return true
}

func (s *refFIFOSet) Has(h types.Hash) bool { _, ok := s.m[h]; return ok }
func (s *refFIFOSet) Len() int              { return len(s.m) }

// TestHashSetMatchesReference drives the open-addressed set and the
// original map-based implementation through the same random operation
// streams — every Add return, Has answer and Len must agree, across
// capacities, duplicate rates and the reserved zero hash.
func TestHashSetMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		capacity := 1 + rng.Intn(70)
		keyspace := 1 + rng.Intn(120) // small keyspace => heavy duplicates + evict/readd
		s := newHashSet(capacity)
		ref := newRefFIFOSet(capacity)
		for op := 0; op < 600; op++ {
			h := types.Hash(rng.Intn(keyspace)) // includes zero
			switch rng.Intn(3) {
			case 0:
				if got, want := s.Add(h), ref.Add(h); got != want {
					t.Fatalf("trial %d op %d: Add(%v) = %v, reference %v", trial, op, h, got, want)
				}
			default:
				if got, want := s.Has(h), ref.Has(h); got != want {
					t.Fatalf("trial %d op %d: Has(%v) = %v, reference %v", trial, op, h, got, want)
				}
			}
			if s.Len() != ref.Len() {
				t.Fatalf("trial %d op %d: Len %d, reference %d", trial, op, s.Len(), ref.Len())
			}
		}
		// Full sweep: membership must agree for the whole keyspace.
		for k := 0; k < keyspace; k++ {
			h := types.Hash(k)
			if s.Has(h) != ref.Has(h) {
				t.Fatalf("trial %d sweep: Has(%v) = %v, reference %v", trial, h, s.Has(h), ref.Has(h))
			}
		}
	}
}

// TestHashSetSequentialHashes mirrors production traffic: issuer hashes
// are sequential counters, the worst case for a low-bits table layout.
func TestHashSetSequentialHashes(t *testing.T) {
	const capacity = 256
	s := newHashSet(capacity)
	base := types.Hash(uint64(2)<<48 + 1) // txgen issuer salt
	for i := 0; i < 10_000; i++ {
		h := base + types.Hash(i)
		if !s.Add(h) {
			t.Fatalf("fresh hash %v reported duplicate", h)
		}
		if s.Len() > capacity {
			t.Fatalf("len %d exceeds capacity", s.Len())
		}
	}
	// Exactly the newest `capacity` hashes survive.
	for i := 10_000 - capacity; i < 10_000; i++ {
		if !s.Has(base + types.Hash(i)) {
			t.Fatalf("recent hash %d evicted", i)
		}
	}
	if s.Has(base + types.Hash(10_000-capacity-1)) {
		t.Fatal("stale hash survived eviction")
	}
}

func TestBitset(t *testing.T) {
	var b bitset
	if b.has(0) || b.has(1000) {
		t.Fatal("empty bitset reported membership")
	}
	b.set(3)
	b.set(64)
	b.set(1000)
	for _, i := range []int{3, 64, 1000} {
		if !b.has(i) {
			t.Errorf("bit %d lost", i)
		}
	}
	if b.has(2) || b.has(65) || b.has(999) {
		t.Error("phantom bits set")
	}
	b.clear(64)
	if b.has(64) {
		t.Error("cleared bit still set")
	}
	b.clear(100000) // out of range: no-op
}
