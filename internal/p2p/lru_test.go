package p2p

import (
	"testing"
	"testing/quick"

	"ethmeasure/internal/types"
)

func TestHashSetAddHas(t *testing.T) {
	s := newHashSet(4)
	if s.Has(1) {
		t.Error("empty set reported membership")
	}
	if !s.Add(1) {
		t.Error("first add returned false")
	}
	if s.Add(1) {
		t.Error("duplicate add returned true")
	}
	if !s.Has(1) || s.Len() != 1 {
		t.Error("membership lost")
	}
}

func TestHashSetEvictsOldestFirst(t *testing.T) {
	s := newHashSet(3)
	for h := types.Hash(1); h <= 3; h++ {
		s.Add(h)
	}
	s.Add(4) // evicts 1
	if s.Has(1) {
		t.Error("oldest entry survived eviction")
	}
	for h := types.Hash(2); h <= 4; h++ {
		if !s.Has(h) {
			t.Errorf("entry %v evicted prematurely", h)
		}
	}
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
	s.Add(5) // evicts 2
	if s.Has(2) || !s.Has(5) {
		t.Error("FIFO eviction order violated")
	}
}

func TestHashSetCapacityOne(t *testing.T) {
	s := newHashSet(1)
	s.Add(1)
	s.Add(2)
	if s.Has(1) || !s.Has(2) {
		t.Error("capacity-1 set misbehaved")
	}
}

func TestHashSetZeroCapacityClamped(t *testing.T) {
	s := newHashSet(0)
	if !s.Add(1) {
		t.Error("clamped set should still accept entries")
	}
	if !s.Has(1) {
		t.Error("entry lost")
	}
}

// Property: the set never exceeds capacity and the most recent entry is
// always present.
func TestHashSetBoundedProperty(t *testing.T) {
	f := func(capacity uint8, hashes []uint16) bool {
		capValue := int(capacity%32) + 1
		s := newHashSet(capValue)
		for _, raw := range hashes {
			h := types.Hash(raw)
			s.Add(h)
			if s.Len() > capValue {
				return false
			}
			if !s.Has(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgKindString(t *testing.T) {
	tests := []struct {
		kind MsgKind
		want string
	}{
		{MsgFullBlock, "block"},
		{MsgAnnounce, "announce"},
		{MsgFetchedBlock, "fetched"},
		{MsgTx, "tx"},
		{MsgKind(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("MsgKind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}
