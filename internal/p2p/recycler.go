package p2p

import (
	"ethmeasure/internal/chain"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
)

// Recycler pools Node and Edge allocations across sequential runs on
// one worker. The peer graph is the dominant construction cost of a
// campaign — NumNodes×OutDegree edges, each carrying four known-hash
// caches — so a warm rebuild that reuses those structs turns topology
// construction from an allocation storm into field reassignment.
//
// The contract is strict bit-identity: every observable field of a
// recycled node or edge is reset to exactly what cold construction
// would produce (RNG streams re-seeded, caches emptied, callbacks
// nil'd). Only capacity is carried over, and capacity is never visible
// to the simulation. A Recycler is single-goroutine, like the campaigns
// it serves; concurrent workers each own their own.
type Recycler struct {
	nodes []*Node
	edges []*Edge

	nodesReused uint64
	edgesReused uint64
}

// RecyclerStats reports reuse counters (tests and the ethbench reuse
// profile read these to prove pooling actually engaged).
type RecyclerStats struct {
	NodesReused uint64 // nodes handed out from the freelist
	EdgesReused uint64 // edges handed out from the freelist
	NodesFree   int    // nodes currently pooled
	EdgesFree   int    // edges currently pooled
}

// NewRecycler returns an empty recycler.
func NewRecycler() *Recycler { return &Recycler{} }

// Stats returns the current reuse counters.
func (r *Recycler) Stats() RecyclerStats {
	return RecyclerStats{
		NodesReused: r.nodesReused,
		EdgesReused: r.edgesReused,
		NodesFree:   len(r.nodes),
		EdgesFree:   len(r.edges),
	}
}

// NewNode is NewNode drawing on the freelist: a pooled node is reset
// field by field to the state a cold construction would produce, and
// its edges (via Connect) will draw on the recycler's edge freelist.
func (r *Recycler) NewNode(cfg *Config, net *simnet.Network, endpoint *simnet.Node, reg *chain.Registry) *Node {
	k := len(r.nodes)
	if k == 0 {
		n := NewNode(cfg, net, endpoint, reg)
		n.rec = r
		return n
	}
	n := r.nodes[k-1]
	r.nodes = r.nodes[:k-1]
	r.nodesReused++
	n.cfg = cfg
	n.net = net
	n.netNode = endpoint
	n.sched = net.SchedulerFor(endpoint)
	sim.ReseedStream(n.rng, net.Engine().Seed(), "p2p", uint64(endpoint.ID))
	n.reg = reg
	n.view = chain.NewView(reg)
	n.edges = n.edges[:0]
	// peerBits, seenBlocks, fetching and the knownTxs table were swept
	// by Reclaim; reset here only applies the new config's capacity
	// (free on a scrubbed set).
	n.knownTxs.reset(cfg.KnownTxCache)
	n.procSpeed = 1
	n.Observer = nil
	n.OnNewHead = nil
	n.TxSink = nil
	return n
}

// Reclaim harvests the nodes of a finished run (and every edge still
// attached to them) back into the freelists. Each edge is collected
// once, from its a-endpoint, which is correct because Reclaim is always
// handed every node of the campaign. References into the finished run
// (registry, views, callbacks, scratch) are dropped immediately so the
// pool does not pin the previous run's object graph while idle, and
// the known-hash caches, seen-maps and peer bitsets are swept here —
// at reclaim time — so the next run's build is pure reassignment. The
// caller must not touch the reclaimed nodes afterwards.
func (r *Recycler) Reclaim(lists ...[]*Node) {
	for _, nodes := range lists {
		for _, n := range nodes {
			if n == nil || n.rec != r {
				continue
			}
			for _, e := range n.edges {
				if e.a == n {
					e.aKnownBlocks.scrub()
					e.bKnownBlocks.scrub()
					e.aKnownTxs.scrub()
					e.bKnownTxs.scrub()
					r.edges = append(r.edges, e)
				}
			}
			n.edges = n.edges[:0]
			n.peerBits.reset()
			clear(n.seenBlocks)
			clear(n.fetching)
			n.knownTxs.scrub()
			pt := n.pushTmp[:cap(n.pushTmp)]
			clear(pt)
			n.pushTmp = pt[:0]
			n.cfg, n.net, n.netNode, n.sched = nil, nil, nil, nil
			n.reg, n.view = nil, nil
			n.Observer, n.OnNewHead, n.TxSink = nil, nil, nil
			r.nodes = append(r.nodes, n)
		}
	}
}

// newEdge builds the edge for Connect, drawing on a's recycler when the
// node is pooled. A recycled edge's four known-hash caches are reset to
// the exact capacities a cold Connect would size them with.
func newEdge(a, b *Node) *Edge {
	if r := a.rec; r != nil {
		if k := len(r.edges); k > 0 {
			e := r.edges[k-1]
			r.edges = r.edges[:k-1]
			r.edgesReused++
			e.a, e.b = a, b
			e.aKnownBlocks.reset(a.cfg.KnownBlocksPerPeer)
			e.bKnownBlocks.reset(b.cfg.KnownBlocksPerPeer)
			e.aKnownTxs.reset(a.cfg.KnownTxsPerPeer)
			e.bKnownTxs.reset(b.cfg.KnownTxsPerPeer)
			return e
		}
	}
	return &Edge{
		a:            a,
		b:            b,
		aKnownBlocks: newHashSet(a.cfg.KnownBlocksPerPeer),
		bKnownBlocks: newHashSet(b.cfg.KnownBlocksPerPeer),
		aKnownTxs:    newHashSet(a.cfg.KnownTxsPerPeer),
		bKnownTxs:    newHashSet(b.cfg.KnownTxsPerPeer),
	}
}
