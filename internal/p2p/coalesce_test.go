package p2p

import (
	"testing"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/types"
)

// TestCoalescedFloodMatchesPlain runs the protocol's worst tie
// generator — an announce/push flood over a zero-jitter full mesh,
// where every peer's delivery of a hop lands at the same instant —
// with delivery coalescing on and off, and requires identical protocol
// outcomes: same heads, same known hashes, same per-node reception
// counts, same total message count.
func TestCoalescedFloodMatchesPlain(t *testing.T) {
	type outcome struct {
		heads     []types.Hash
		delivered uint64
		batches   uint64
		txKnown   []bool
	}
	run := func(coalesce bool) outcome {
		engine := sim.NewEngine(1)
		net := simnet.New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
		if coalesce {
			net.EnableCoalescing()
		}
		issuer := types.NewHashIssuer(1)
		reg := chain.NewRegistry(0, issuer)
		cfg := DefaultConfig()
		var nodes []*Node
		for i := 0; i < 10; i++ {
			ep, err := net.AddNode(geo.NorthAmerica, 1e9)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, NewNode(&cfg, net, ep, reg))
		}
		for i := range nodes {
			for j := i + 1; j < len(nodes); j++ {
				Connect(nodes[i], nodes[j])
			}
		}
		parent := reg.Genesis()
		for i := 0; i < 4; i++ {
			b := &types.Block{
				Hash:       issuer.Next(),
				Number:     parent.Number + 1,
				ParentHash: parent.Hash,
				Miner:      1,
			}
			if err := reg.Add(b); err != nil {
				t.Fatal(err)
			}
			nodes[i%len(nodes)].PublishBlock(b)
			parent = b
		}
		tx := &types.Transaction{Hash: types.Hash(uint64(7) << 40), Size: 110}
		nodes[3].SubmitTx(tx)
		if _, err := engine.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		out := outcome{delivered: net.Delivered(), batches: net.CoalescedBatches()}
		for _, n := range nodes {
			out.heads = append(out.heads, n.View().Head().Hash)
			out.txKnown = append(out.txKnown, n.knownTxs.Has(tx.Hash))
		}
		return out
	}

	plain := run(false)
	coal := run(true)
	if plain.batches != 0 {
		t.Fatalf("uncoalesced run drained %d batches", plain.batches)
	}
	if coal.batches == 0 {
		t.Fatal("coalesced run never batched; flood produced no ties")
	}
	if plain.delivered != coal.delivered {
		t.Fatalf("delivered %d messages plain, %d coalesced", plain.delivered, coal.delivered)
	}
	for i := range plain.heads {
		if plain.heads[i] != coal.heads[i] {
			t.Errorf("node %d head differs: %s plain, %s coalesced", i, plain.heads[i], coal.heads[i])
		}
		if plain.txKnown[i] != coal.txKnown[i] {
			t.Errorf("node %d tx knowledge differs: %v plain, %v coalesced", i, plain.txKnown[i], coal.txKnown[i])
		}
	}
}
