package p2p

import (
	"testing"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/types"
)

// newRecyclerHarness is newHarness with nodes drawn from a Recycler,
// so Reclaim + rebuild cycles can be driven directly.
func newRecyclerHarness(t *testing.T, rec *Recycler, n int, cfg Config) *harness {
	t.Helper()
	engine := sim.NewEngine(1)
	net := simnet.New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	issuer := types.NewHashIssuer(1)
	reg := chain.NewRegistry(0, issuer)
	h := &harness{t: t, engine: engine, net: net, reg: reg, issuer: issuer, cfg: cfg}
	for i := 0; i < n; i++ {
		endpoint, err := net.AddNode(geo.NorthAmerica, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, rec.NewNode(&h.cfg, net, endpoint, reg))
	}
	return h
}

// TestRecyclerResetsNodeState dirties a network (gossip run, custom
// proc speed, observer callbacks), reclaims it, and checks a rebuilt
// node carries none of the previous run's observable state.
func TestRecyclerResetsNodeState(t *testing.T) {
	rec := NewRecycler()
	cfg := DefaultConfig()

	h := newRecyclerHarness(t, rec, 4, cfg)
	h.full()
	h.nodes[0].SetProcSpeed(0.5)
	h.nodes[0].Observer = &countingObserver{}
	parent := h.reg.Genesis()
	b := h.mineBlock(parent, 1)
	h.nodes[0].PublishBlock(b)
	h.run(5 * time.Second)
	for _, n := range h.nodes {
		if n.View().Head() != b {
			t.Fatalf("gossip did not converge before reclaim")
		}
	}

	rec.Reclaim(h.nodes)
	st := rec.Stats()
	if st.NodesFree != 4 {
		t.Fatalf("reclaimed %d nodes, want 4", st.NodesFree)
	}
	// full() on 4 nodes makes 6 edges, each reclaimed exactly once via
	// its a-endpoint.
	if st.EdgesFree != 6 {
		t.Fatalf("reclaimed %d edges, want 6", st.EdgesFree)
	}

	h2 := newRecyclerHarness(t, rec, 4, cfg)
	h2.ring()
	st = rec.Stats()
	if st.NodesReused != 4 {
		t.Fatalf("reused %d nodes, want 4", st.NodesReused)
	}
	if st.EdgesReused != 4 {
		t.Fatalf("reused %d edges, want 4 (ring)", st.EdgesReused)
	}
	for i, n := range h2.nodes {
		if got := n.NumPeers(); got != 2 {
			t.Errorf("node %d: %d peers after ring, want 2", i, got)
		}
		if n.ProcSpeed() != 1 {
			t.Errorf("node %d: proc speed %v leaked through recycle", i, n.ProcSpeed())
		}
		if n.Observer != nil || n.OnNewHead != nil || n.TxSink != nil {
			t.Errorf("node %d: callbacks leaked through recycle", i)
		}
		if n.knownTxs.Len() != 0 {
			t.Errorf("node %d: known-tx cache not emptied", i)
		}
		if len(n.seenBlocks) != 0 || len(n.fetching) != 0 {
			t.Errorf("node %d: block tracking maps not emptied", i)
		}
		if n.View().Head() != h2.reg.Genesis() {
			t.Errorf("node %d: view not reset to genesis", i)
		}
	}

	// The recycled network must behave exactly like a cold one: a fresh
	// block gossips to everybody.
	b2 := h2.mineBlock(h2.reg.Genesis(), 2)
	h2.nodes[0].PublishBlock(b2)
	h2.run(5 * time.Second)
	for i, n := range h2.nodes {
		if n.View().Head() != b2 {
			t.Errorf("node %d: recycled network failed to gossip", i)
		}
	}
}

// TestRecyclerEdgeCachesReset checks a recycled edge's per-link
// known-hash caches come back empty and sized for the new config.
func TestRecyclerEdgeCachesReset(t *testing.T) {
	rec := NewRecycler()
	cfg := DefaultConfig()

	h := newRecyclerHarness(t, rec, 2, cfg)
	h.ring() // 2 nodes: one edge
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(time.Second)
	e := h.nodes[0].edges[0]
	if e.aKnownBlocks.Len() == 0 && e.bKnownBlocks.Len() == 0 {
		t.Fatal("test premise broken: gossip left no known-block entries")
	}

	rec.Reclaim(h.nodes)

	cfg2 := DefaultConfig()
	cfg2.KnownBlocksPerPeer = 8
	h2 := newRecyclerHarness(t, rec, 2, cfg2)
	h2.ring()
	e2 := h2.nodes[0].edges[0]
	if rec.Stats().EdgesReused != 1 {
		t.Fatal("edge was not recycled")
	}
	if e2.aKnownBlocks.Len() != 0 || e2.bKnownBlocks.Len() != 0 ||
		e2.aKnownTxs.Len() != 0 || e2.bKnownTxs.Len() != 0 {
		t.Error("recycled edge caches not emptied")
	}
	// The ring cap follows the new config: pushing 9 hashes through an
	// 8-cap cache must evict, exactly as a cold edge would.
	for i := 0; i < 9; i++ {
		e2.aKnownBlocks.Add(types.Hash(i + 1))
	}
	if got := e2.aKnownBlocks.Len(); got != 8 {
		t.Errorf("recycled cache holds %d entries, want cap 8 from new config", got)
	}
}

// TestRecyclerIgnoresForeignNodes pins the ownership guard: nodes built
// cold (or by another recycler) pass through Reclaim untouched.
func TestRecyclerIgnoresForeignNodes(t *testing.T) {
	rec := NewRecycler()
	h := newHarness(t, 2, DefaultConfig()) // cold nodes, no recycler
	h.ring()
	rec.Reclaim(h.nodes, nil)
	st := rec.Stats()
	if st.NodesFree != 0 || st.EdgesFree != 0 {
		t.Fatalf("recycler harvested foreign nodes: %+v", st)
	}
	if h.nodes[0].cfg == nil {
		t.Error("foreign node was stripped by Reclaim")
	}
}
