// Package p2p models the Ethereum wire protocol (eth/63) as spoken by
// Geth 1.8.x, the client the paper instrumented:
//
//   - a freshly received block is pushed in full to ceil(sqrt(peers))
//     peers after only a header check (direct propagation);
//   - after full import, its hash is announced to every remaining peer
//     that is not known to have it;
//   - a node that only heard an announcement waits ~arriveTimeout for
//     the direct push to arrive before fetching the block explicitly;
//   - per-link caches track which hashes a peer already has so nothing
//     is re-sent (the source of the bounded redundancy in Table II);
//   - transactions are relayed to every peer not known to have them.
package p2p

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/rlp"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/types"
)

// MsgKind classifies an observed inbound message.
type MsgKind int

// Message kinds.
const (
	MsgFullBlock    MsgKind = iota + 1 // direct NewBlock push (header+body)
	MsgAnnounce                        // NewBlockHashes announcement
	MsgFetchedBlock                    // block body fetched after an announcement
	MsgTx                              // transaction
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case MsgFullBlock:
		return "block"
	case MsgAnnounce:
		return "announce"
	case MsgFetchedBlock:
		return "fetched"
	case MsgTx:
		return "tx"
	default:
		return "unknown"
	}
}

// Envelope kinds on the wire (simnet.Envelope.Kind) and local timer
// kinds (sim.Arg.K). Wire deliveries arrive through DeliverEnvelope,
// timers through HandleSimEvent; both paths are allocation-free, which
// is what keeps multi-thousand-node campaigns off the garbage
// collector.
const (
	evBlockPush    int32 = iota + 1 // Data=*types.Block, Aux=*Edge
	evBlockFetched                  // Data=*types.Block, Aux=*Edge
	evAnnounce                      // Data=*types.Block, Aux=*Edge
	evTx                            // Data=*types.Transaction, Aux=*Edge
	evGetBlock                      // Num=hash, Aux=*Edge (request)

	tmPushBlock    // A=*types.Block: post-header-check relay
	tmFinishImport // A=*types.Block: post-import announce
	tmFetch        // A=*types.Block, B=*Edge: fetcher arrive-timeout
)

// Observer receives every inbound protocol message at a node. The
// measurement infrastructure implements it; regular nodes leave it nil.
type Observer interface {
	// ObserveBlock fires for every full-block or fetched-block delivery.
	ObserveBlock(at sim.Time, b *types.Block, from types.NodeID, kind MsgKind)
	// ObserveAnnounce fires for every block-hash announcement entry.
	ObserveAnnounce(at sim.Time, h types.Hash, number uint64, from types.NodeID)
	// ObserveTx fires for every transaction delivery, duplicate or not.
	ObserveTx(at sim.Time, tx *types.Transaction, from types.NodeID)
}

// Edge is a bidirectional peer link with per-endpoint known-hash
// caches. Geth marks a hash as known by a peer both when sending it to
// and when receiving it from that peer; each endpoint keeps its own
// view of that knowledge and updates it on both its sends and its
// receives. Splitting the caches per endpoint (rather than one shared
// set per link) keeps every cache single-writer when the two endpoints
// live on different shards of the sharded engine; the only behavioural
// difference is the in-flight window where the sender has marked a
// hash the receiver has not yet seen.
type Edge struct {
	a, b         *Node
	aKnownBlocks *hashSet
	bKnownBlocks *hashSet
	aKnownTxs    *hashSet
	bKnownTxs    *hashSet
}

// Other returns the endpoint of the edge that is not n.
func (e *Edge) Other(n *Node) *Node {
	if e.a == n {
		return e.b
	}
	return e.a
}

// knownBlocksFor returns n's own view of which blocks the peer across
// this edge already has.
func (e *Edge) knownBlocksFor(n *Node) *hashSet {
	if e.a == n {
		return e.aKnownBlocks
	}
	return e.bKnownBlocks
}

// knownTxsFor returns n's own view of which transactions the peer
// across this edge already has.
func (e *Edge) knownTxsFor(n *Node) *hashSet {
	if e.a == n {
		return e.aKnownTxs
	}
	return e.bKnownTxs
}

// Node is one protocol participant.
type Node struct {
	cfg     *Config
	net     *simnet.Network
	netNode *simnet.Node
	sched   sim.Scheduler
	rng     *rand.Rand
	reg     *chain.Registry
	view    *chain.View

	edges      []*Edge
	peerBits   bitset              // peer node IDs, for O(1) isPeer checks
	pushTmp    []*Edge             // reusable scratch for pushBlock targets
	seenBlocks map[types.Hash]bool // received at least once (pre-import)
	fetching   map[types.Hash]bool // announced, awaiting push or fetch
	knownTxs   *hashSet

	// procSpeed scales this node's processing delays: 1.0 = baseline
	// hardware, <1 = faster. The paper's measurement machines are well
	// above minimum spec (Table I), while the public network mixes
	// hardware classes; this asymmetry shapes who announces first and
	// therefore the redundancy split of Table II.
	procSpeed float64

	// Observer, when non-nil, sees every inbound message (measurement).
	Observer Observer
	// OnNewHead, when non-nil, fires after an import changes the head
	// (mining-pool gateways hook this to switch mining jobs).
	OnNewHead func(b *types.Block)
	// TxSink, when non-nil, receives every first-seen transaction
	// (mining-pool gateways feed their txpool from it).
	TxSink func(tx *types.Transaction)

	// rec, when non-nil, is the warm-run pool this node belongs to;
	// Connect draws recycled edges from it.
	rec *Recycler
}

// NewNode creates a protocol node bound to a network endpoint. Each
// node gets its own chain view over the shared registry, schedules its
// timers on the endpoint's shard, and draws jitter from a per-node RNG
// stream so its randomness is independent of event interleaving.
func NewNode(cfg *Config, net *simnet.Network, endpoint *simnet.Node, reg *chain.Registry) *Node {
	return &Node{
		cfg:        cfg,
		net:        net,
		netNode:    endpoint,
		sched:      net.SchedulerFor(endpoint),
		rng:        sim.NewStream(net.Engine().Seed(), "p2p", uint64(endpoint.ID)),
		reg:        reg,
		view:       chain.NewView(reg),
		seenBlocks: make(map[types.Hash]bool, 256),
		fetching:   make(map[types.Hash]bool, 16),
		knownTxs:   newHashSet(cfg.KnownTxCache),
		procSpeed:  1,
	}
}

// SetProcSpeed scales the node's processing delays (1.0 = baseline,
// 0.5 = twice as fast). Values ≤ 0 are ignored.
func (n *Node) SetProcSpeed(speed float64) {
	if speed > 0 {
		n.procSpeed = speed
	}
}

// ProcSpeed returns the node's processing-speed scale.
func (n *Node) ProcSpeed() float64 { return n.procSpeed }

func (n *Node) scale(d time.Duration) time.Duration {
	return time.Duration(float64(d) * n.procSpeed)
}

// ID returns the node's network ID.
func (n *Node) ID() types.NodeID { return n.netNode.ID }

// Scheduler returns the scheduler the node's events run on (its shard
// in sharded mode, the serial engine otherwise).
func (n *Node) Scheduler() sim.Scheduler { return n.sched }

// Endpoint returns the underlying network endpoint.
func (n *Node) Endpoint() *simnet.Node { return n.netNode }

// View returns the node's chain view.
func (n *Node) View() *chain.View { return n.view }

// NumPeers returns the number of connected peers.
func (n *Node) NumPeers() int { return len(n.edges) }

// Peers returns the connected peer nodes in connection order.
func (n *Node) Peers() []*Node {
	out := make([]*Node, len(n.edges))
	for i, e := range n.edges {
		out[i] = e.Other(n)
	}
	return out
}

// Connect links two nodes. Connecting a node to itself or re-connecting
// an existing pair is a no-op returning the existing (or nil) edge.
func Connect(a, b *Node) *Edge {
	if a == b {
		return nil
	}
	if a.peerBits.has(int(b.ID())) {
		for _, e := range a.edges {
			if e.Other(a) == b {
				return e
			}
		}
	}
	e := newEdge(a, b)
	a.edges = append(a.edges, e)
	b.edges = append(b.edges, e)
	a.peerBits.set(int(b.ID()))
	b.peerBits.set(int(a.ID()))
	return e
}

// Disconnect tears down the link between two nodes (peer drop). It is
// a no-op if they are not connected.
func Disconnect(a, b *Node) {
	for _, e := range a.edges {
		if e.Other(a) == b {
			a.removeEdge(e)
			b.removeEdge(e)
			return
		}
	}
}

// DisconnectAll drops every peer connection (node restart / departure,
// the churn real deployments see constantly).
func (n *Node) DisconnectAll() {
	edges := n.edges
	n.edges = nil
	for _, e := range edges {
		other := e.Other(n)
		other.removeEdge(e)
		n.peerBits.clear(int(other.ID()))
	}
}

func (n *Node) removeEdge(target *Edge) {
	for i, e := range n.edges {
		if e == target {
			n.edges = append(n.edges[:i], n.edges[i+1:]...)
			n.peerBits.clear(int(target.Other(n).ID()))
			return
		}
	}
}

// DeliverEnvelope dispatches an inbound wire message (simnet.Sink).
func (n *Node) DeliverEnvelope(env simnet.Envelope) {
	switch env.Kind {
	case evBlockPush:
		n.handleBlock(env.Data.(*types.Block), env.Aux.(*Edge), MsgFullBlock)
	case evBlockFetched:
		n.handleBlock(env.Data.(*types.Block), env.Aux.(*Edge), MsgFetchedBlock)
	case evAnnounce:
		n.handleAnnounce(env.Data.(*types.Block), env.Aux.(*Edge))
	case evTx:
		n.handleTx(env.Data.(*types.Transaction), env.Aux.(*Edge))
	case evGetBlock:
		n.handleGetBlock(types.Hash(env.Num), env.Aux.(*Edge))
	default:
		// A dropped message would skew propagation metrics silently;
		// fail loudly like the engine does for past-time scheduling.
		panic(fmt.Sprintf("p2p: unknown envelope kind %d", env.Kind))
	}
}

// HandleSimEvent dispatches a local protocol timer (sim.Handler).
func (n *Node) HandleSimEvent(arg sim.Arg) {
	switch arg.K {
	case tmPushBlock:
		n.pushBlock(arg.A.(*types.Block))
	case tmFinishImport:
		n.finishImport(arg.A.(*types.Block))
	case tmFetch:
		n.fetchTimeout(arg.A.(*types.Block), arg.B.(*Edge))
	default:
		panic(fmt.Sprintf("p2p: unknown timer kind %d", arg.K))
	}
}

// PublishBlock is called by a miner gateway for a block it just mined:
// the block is imported locally, pushed in full to sqrt(peers) and
// announced to everyone else, exactly as Geth's mined-block broadcast.
func (n *Node) PublishBlock(b *types.Block) {
	if n.seenBlocks[b.Hash] {
		return
	}
	n.seenBlocks[b.Hash] = true
	if n.view.Import(b) && n.OnNewHead != nil {
		n.OnNewHead(b)
	}
	n.pushBlock(b)
	n.announceBlock(b)
}

// handleBlock processes an inbound full block (pushed or fetched).
func (n *Node) handleBlock(b *types.Block, from *Edge, kind MsgKind) {
	from.knownBlocksFor(n).Add(b.Hash)
	if n.Observer != nil {
		n.Observer.ObserveBlock(n.sched.Now(), b, from.Other(n).ID(), kind)
	}
	if n.seenBlocks[b.Hash] {
		return
	}
	n.seenBlocks[b.Hash] = true
	delete(n.fetching, b.Hash)

	// Direct propagation happens after only a header sanity check;
	// full import (validation + state execution) completes later and
	// triggers the hash announcement.
	headerDelay := n.scale(n.cfg.headerCheckDelay(n.rng))
	importDelay := n.scale(n.cfg.importDelay(n.rng, len(b.TxHashes)))
	n.sched.AfterArg(headerDelay, n, sim.Arg{A: b, K: tmPushBlock})
	n.sched.AfterArg(headerDelay+importDelay, n, sim.Arg{A: b, K: tmFinishImport})
}

// pushBlock sends the full block to ceil(sqrt(peers)) randomly chosen
// peers that are not known to have it.
func (n *Node) pushBlock(b *types.Block) {
	if !n.cfg.SqrtPush {
		return
	}
	targets := n.pushTmp[:0]
	for _, e := range n.edges {
		if !e.knownBlocksFor(n).Has(b.Hash) {
			targets = append(targets, e)
		}
	}
	n.pushTmp = targets[:0]
	if len(targets) == 0 {
		return
	}
	k := int(math.Ceil(math.Sqrt(float64(len(n.edges)))))
	if k > len(targets) {
		k = len(targets)
	}
	n.rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	for _, e := range targets[:k] {
		n.sendBlock(b, e, MsgFullBlock)
	}
}

func (n *Node) sendBlock(b *types.Block, e *Edge, kind MsgKind) {
	e.knownBlocksFor(n).Add(b.Hash)
	peer := e.Other(n)
	ev := evBlockPush
	if kind == MsgFetchedBlock {
		ev = evBlockFetched
	}
	n.net.Send(n.netNode, peer.netNode, b.Size, peer, simnet.Envelope{Kind: ev, Data: b, Aux: e})
}

// finishImport completes validation, applies fork choice and announces
// the block hash to every peer not known to have it.
func (n *Node) finishImport(b *types.Block) {
	if n.view.Import(b) && n.OnNewHead != nil {
		n.OnNewHead(b)
	}
	n.announceBlock(b)
}

func (n *Node) announceBlock(b *types.Block) {
	if !n.cfg.AnnounceAfterImport {
		return
	}
	for _, e := range n.edges {
		if e.knownBlocksFor(n).Has(b.Hash) {
			continue
		}
		e.knownBlocksFor(n).Add(b.Hash)
		peer := e.Other(n)
		n.net.Send(n.netNode, peer.netNode, rlp.AnnouncementWireSize(b.Number),
			peer, simnet.Envelope{Kind: evAnnounce, Data: b, Aux: e})
	}
}

// handleAnnounce processes an inbound block-hash announcement (the
// wire carries hash+number; the block pointer is simulator-internal
// plumbing). Unknown hashes arm the fetcher: wait for the direct push,
// then request the block from the announcing peer if it never arrives.
func (n *Node) handleAnnounce(b *types.Block, from *Edge) {
	h := b.Hash
	from.knownBlocksFor(n).Add(h)
	if n.Observer != nil {
		n.Observer.ObserveAnnounce(n.sched.Now(), h, b.Number, from.Other(n).ID())
	}
	if n.seenBlocks[h] || n.fetching[h] {
		return
	}
	n.fetching[h] = true
	n.sched.AfterArg(n.cfg.fetchDelay(n.rng), n, sim.Arg{A: b, B: from, K: tmFetch})
}

// fetchTimeout fires when an announced block still has not arrived by
// direct push: request it explicitly from the announcing peer.
func (n *Node) fetchTimeout(b *types.Block, announcer *Edge) {
	h := b.Hash
	if !n.fetching[h] || n.seenBlocks[h] {
		return
	}
	delete(n.fetching, h)
	peer := announcer.Other(n)
	n.net.Send(n.netNode, peer.netNode, 64,
		peer, simnet.Envelope{Kind: evGetBlock, Num: uint64(h), Aux: announcer})
}

// handleGetBlock serves a block body to a peer that requested it after
// an announcement.
func (n *Node) handleGetBlock(h types.Hash, from *Edge) {
	if !n.seenBlocks[h] {
		return // cannot serve what we do not have
	}
	b, ok := n.reg.Get(h)
	if !ok {
		return
	}
	n.sendBlock(b, from, MsgFetchedBlock)
}

// SubmitTx injects a locally created transaction (the node is the
// origin chosen by the workload generator) and relays it.
func (n *Node) SubmitTx(tx *types.Transaction) {
	if !n.knownTxs.Add(tx.Hash) {
		return
	}
	if n.TxSink != nil {
		n.TxSink(tx)
	}
	n.relayTx(tx)
}

// handleTx processes an inbound transaction.
func (n *Node) handleTx(tx *types.Transaction, from *Edge) {
	from.knownTxsFor(n).Add(tx.Hash)
	if n.Observer != nil {
		n.Observer.ObserveTx(n.sched.Now(), tx, from.Other(n).ID())
	}
	if !n.knownTxs.Add(tx.Hash) {
		return
	}
	if n.TxSink != nil {
		n.TxSink(tx)
	}
	n.relayTx(tx)
}

// relayTx sends the transaction to every peer not known to have it
// (Geth 1.8 broadcasts transactions to all unknowing peers).
func (n *Node) relayTx(tx *types.Transaction) {
	for _, e := range n.edges {
		if e.knownTxsFor(n).Has(tx.Hash) {
			continue
		}
		e.knownTxsFor(n).Add(tx.Hash)
		peer := e.Other(n)
		n.net.Send(n.netNode, peer.netNode, tx.Size,
			peer, simnet.Envelope{Kind: evTx, Data: tx, Aux: e})
	}
}
