package p2p

import (
	"fmt"
	"math/rand"

	"ethmeasure/internal/discovery"
)

// BuildRandomTopology wires the given nodes into a random graph where
// each node dials outDegree random distinct partners, mirroring how
// Ethereum peers select neighbours from a Kademlia table keyed by
// random node IDs — i.e. independently of geography (paper §III-B1).
// The resulting mean degree is ~2·outDegree.
//
// It returns an error if the parameters cannot produce a connected
// dial pattern (fewer than two nodes, or outDegree out of range).
func BuildRandomTopology(rng *rand.Rand, nodes []*Node, outDegree int) error {
	if len(nodes) < 2 {
		return fmt.Errorf("p2p: topology needs at least 2 nodes, got %d", len(nodes))
	}
	if outDegree < 1 || outDegree >= len(nodes) {
		return fmt.Errorf("p2p: outDegree %d out of range [1,%d)", outDegree, len(nodes))
	}
	for i, node := range nodes {
		dialed := 0
		attempts := 0
		maxAttempts := outDegree * 20
		for dialed < outDegree && attempts < maxAttempts {
			attempts++
			j := rng.Intn(len(nodes))
			if j == i {
				continue
			}
			target := nodes[j]
			if isPeer(node, target) {
				continue
			}
			Connect(node, target)
			dialed++
		}
		if dialed == 0 {
			return fmt.Errorf("p2p: node %d failed to dial any peers", i)
		}
	}
	return nil
}

// ConnectToRandom connects node to up to k random distinct nodes from
// candidates (excluding itself and existing peers). Measurement nodes
// use this to reach their "more peers than default" configuration.
// It returns the number of new connections made.
func ConnectToRandom(rng *rand.Rand, node *Node, candidates []*Node, k int) int {
	idx := rng.Perm(len(candidates))
	made := 0
	for _, i := range idx {
		if made >= k {
			break
		}
		target := candidates[i]
		if target == node || isPeer(node, target) {
			continue
		}
		Connect(node, target)
		made++
	}
	return made
}

// BuildDiscoveryTopology wires nodes using a Kademlia-style discovery
// overlay, the mechanism real devp2p uses: every node joins the
// overlay under a random ID and dials outDegree peers found by random-
// target lookups. Like the plain random graph, the result is
// geography-blind (paper §III-B1), but neighbour sets now come from
// the actual ID-space machinery.
func BuildDiscoveryTopology(rng *rand.Rand, nodes []*Node, outDegree int) error {
	if len(nodes) < 2 {
		return fmt.Errorf("p2p: topology needs at least 2 nodes, got %d", len(nodes))
	}
	if outDegree < 1 || outDegree >= len(nodes) {
		return fmt.Errorf("p2p: outDegree %d out of range [1,%d)", outDegree, len(nodes))
	}
	overlay := discovery.NewNetwork(rng)
	byID := make(map[int32]*Node, len(nodes))
	for _, node := range nodes {
		if _, err := overlay.Join(node.ID()); err != nil {
			return fmt.Errorf("p2p: discovery join: %w", err)
		}
		byID[int32(node.ID())] = node
	}
	for _, node := range nodes {
		dialed := 0
		for _, peerID := range overlay.DiscoverPeers(node.ID(), outDegree*2) {
			if dialed >= outDegree {
				break
			}
			peer := byID[int32(peerID)]
			if peer == nil || peer == node || isPeer(node, peer) {
				continue
			}
			Connect(node, peer)
			dialed++
		}
		if dialed == 0 {
			return fmt.Errorf("p2p: node %v discovered no dialable peers", node.ID())
		}
	}
	return nil
}

// isPeer is O(1) via the per-node neighbour bitset; topology builders
// call it once per dial attempt, and churn rewiring keeps calling it
// for the life of the campaign.
func isPeer(a, b *Node) bool {
	return a.peerBits.has(int(b.ID()))
}
