package p2p

import (
	"math/rand"
	"testing"
	"time"
)

func TestBuildRandomTopologyDegrees(t *testing.T) {
	h := newHarness(t, 50, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	if err := BuildRandomTopology(rng, h.nodes, 4); err != nil {
		t.Fatal(err)
	}
	totalDegree := 0
	for i, n := range h.nodes {
		if n.NumPeers() < 4 {
			t.Errorf("node %d degree %d < outDegree", i, n.NumPeers())
		}
		totalDegree += n.NumPeers()
	}
	mean := float64(totalDegree) / float64(len(h.nodes))
	if mean < 7 || mean > 9.5 {
		t.Errorf("mean degree %.1f, want ≈8", mean)
	}
}

func TestBuildRandomTopologyErrors(t *testing.T) {
	h := newHarness(t, 5, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	if err := BuildRandomTopology(rng, h.nodes[:1], 1); err == nil {
		t.Error("single node must error")
	}
	if err := BuildRandomTopology(rng, h.nodes, 0); err == nil {
		t.Error("zero degree must error")
	}
	if err := BuildRandomTopology(rng, h.nodes, 5); err == nil {
		t.Error("degree >= n must error")
	}
}

func TestBuildRandomTopologyFloodReachesAll(t *testing.T) {
	h := newHarness(t, 40, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	if err := BuildRandomTopology(rng, h.nodes, 3); err != nil {
		t.Fatal(err)
	}
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(time.Minute)
	for i, n := range h.nodes {
		if !n.View().Knows(b.Hash) {
			t.Errorf("node %d unreachable in random topology", i)
		}
	}
}

func TestBuildDiscoveryTopology(t *testing.T) {
	h := newHarness(t, 40, DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	if err := BuildDiscoveryTopology(rng, h.nodes, 4); err != nil {
		t.Fatal(err)
	}
	for i, n := range h.nodes {
		if n.NumPeers() < 4 {
			t.Errorf("node %d degree %d < outDegree", i, n.NumPeers())
		}
	}
	// The discovery-built graph must be flood-connected.
	b := h.mineBlock(h.reg.Genesis(), 1)
	h.nodes[0].PublishBlock(b)
	h.run(time.Minute)
	for i, n := range h.nodes {
		if !n.View().Knows(b.Hash) {
			t.Errorf("node %d unreachable in discovery topology", i)
		}
	}
}

func TestBuildDiscoveryTopologyErrors(t *testing.T) {
	h := newHarness(t, 5, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	if err := BuildDiscoveryTopology(rng, h.nodes[:1], 1); err == nil {
		t.Error("single node must error")
	}
	if err := BuildDiscoveryTopology(rng, h.nodes, 0); err == nil {
		t.Error("zero degree must error")
	}
}

func TestConnectToRandom(t *testing.T) {
	h := newHarness(t, 10, DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	node := h.nodes[0]
	made := ConnectToRandom(rng, node, h.nodes, 5)
	if made != 5 {
		t.Errorf("made %d connections, want 5", made)
	}
	if node.NumPeers() != 5 {
		t.Errorf("peers = %d", node.NumPeers())
	}
	// Self and existing peers are skipped; asking for more than
	// available caps out.
	made = ConnectToRandom(rng, node, h.nodes, 100)
	if node.NumPeers() != 9 {
		t.Errorf("peers after exhaustive connect = %d, want 9", node.NumPeers())
	}
	if made != 4 {
		t.Errorf("made = %d, want 4", made)
	}
}
