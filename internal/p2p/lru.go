package p2p

import "ethmeasure/internal/types"

// hashSet is a bounded set of hashes with FIFO eviction, mirroring the
// per-peer "known blocks/transactions" LRU caches Geth keeps so that a
// hash is not re-sent to a peer that already has it.
type hashSet struct {
	capacity int
	m        map[types.Hash]struct{}
	ring     []types.Hash
	pos      int
}

func newHashSet(capacity int) *hashSet {
	if capacity <= 0 {
		capacity = 1
	}
	return &hashSet{
		capacity: capacity,
		m:        make(map[types.Hash]struct{}, capacity),
	}
}

// Add inserts h, evicting the oldest entry when full. It reports
// whether h was newly added.
func (s *hashSet) Add(h types.Hash) bool {
	if _, ok := s.m[h]; ok {
		return false
	}
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, h)
	} else {
		delete(s.m, s.ring[s.pos])
		s.ring[s.pos] = h
		s.pos = (s.pos + 1) % s.capacity
	}
	s.m[h] = struct{}{}
	return true
}

// Has reports whether h is in the set.
func (s *hashSet) Has(h types.Hash) bool {
	_, ok := s.m[h]
	return ok
}

// Len returns the number of entries currently held.
func (s *hashSet) Len() int { return len(s.m) }
