package p2p

import (
	"math/bits"

	"ethmeasure/internal/types"
)

// hashSet is a bounded set of hashes with FIFO eviction, mirroring the
// per-peer "known blocks/transactions" LRU caches Geth keeps so that a
// hash is not re-sent to a peer that already has it.
//
// Implementation: an open-addressed table of raw uint64 hashes with
// linear probing and backward-shift deletion, an insertion ring for
// FIFO eviction, and a bitset filter in front of the table (a clear
// bit proves absence, letting the hot negative Has calls in the relay
// fan-out skip the probe). The table starts small and doubles lazily:
// a capacity-131072 cache costs a few hundred bytes until a node
// actually sees traffic — at 5,000 nodes the eager maps this replaces
// dominated the whole campaign's heap.
type hashSet struct {
	capacity int
	ring     []types.Hash // members in insertion order
	pos      int          // next eviction slot once the ring is full
	table    []uint64     // open-addressed storage, 0 = empty slot
	mask     uint64
	shift    uint     // 64 - log2(len(table)), for Fibonacci hashing
	filter   []uint64 // bitset over home slots; clear bit => absent
	hasZero  bool     // membership of the reserved zero hash
}

func newHashSet(capacity int) *hashSet {
	if capacity <= 0 {
		capacity = 1
	}
	s := &hashSet{capacity: capacity}
	size := 8
	for size < 2*capacity && size < 64 {
		size <<= 1
	}
	s.grow(size)
	return s
}

// grow rebuilds the table (and filter) at the given power-of-two size.
func (s *hashSet) grow(size int) {
	old := s.table
	s.table = make([]uint64, size)
	s.mask = uint64(size - 1)
	s.shift = 64 - uint(bits.TrailingZeros(uint(size)))
	s.filter = make([]uint64, (size+63)/64)
	for _, k := range old {
		if k != 0 {
			s.insert(k)
		}
	}
}

// home is the preferred slot of a key (Fibonacci hashing: issued
// hashes are sequential counters, so low bits alone would cluster).
func (s *hashSet) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> s.shift
}

// insert places k in the table and marks the filter. k must be
// non-zero and not present.
func (s *hashSet) insert(k uint64) {
	h := s.home(k)
	s.filter[h>>6] |= 1 << (h & 63)
	for i := h; ; i = (i + 1) & s.mask {
		if s.table[i] == 0 {
			s.table[i] = k
			return
		}
	}
}

// lookup reports whether k (non-zero) is present.
func (s *hashSet) lookup(k uint64) bool {
	h := s.home(k)
	if s.filter[h>>6]&(1<<(h&63)) == 0 {
		return false
	}
	for i := h; ; i = (i + 1) & s.mask {
		switch s.table[i] {
		case k:
			return true
		case 0:
			return false
		}
	}
}

// remove deletes k (non-zero, present) using backward-shift compaction
// so probe chains stay dense without tombstones. Filter bits are left
// set; stale bits only cost a probe, never correctness.
func (s *hashSet) remove(k uint64) {
	i := s.home(k)
	for s.table[i] != k {
		i = (i + 1) & s.mask
	}
	for {
		s.table[i] = 0
		j := i
		for {
			j = (j + 1) & s.mask
			cur := s.table[j]
			if cur == 0 {
				return
			}
			// cur may shift back to i only if its home slot lies at or
			// before i along the probe path ending at j.
			if (j-s.home(cur))&s.mask >= (j-i)&s.mask {
				s.table[i] = cur
				i = j
				break
			}
		}
	}
}

// Add inserts h, evicting the oldest entry when full. It reports
// whether h was newly added.
func (s *hashSet) Add(h types.Hash) bool {
	if s.Has(h) {
		return false
	}
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, h)
	} else {
		evicted := s.ring[s.pos]
		if evicted == 0 {
			s.hasZero = false
		} else {
			s.remove(uint64(evicted))
		}
		s.ring[s.pos] = h
		s.pos = (s.pos + 1) % s.capacity
	}
	if h == 0 {
		s.hasZero = true
		return true
	}
	// Keep the table at most half full so probe chains stay short.
	if 2*(len(s.ring)+1) > len(s.table) {
		s.grow(2 * len(s.table))
	}
	s.insert(uint64(h))
	return true
}

// Has reports whether h is in the set.
func (s *hashSet) Has(h types.Hash) bool {
	if h == 0 {
		return s.hasZero
	}
	return s.lookup(uint64(h))
}

// Len returns the number of entries currently held.
func (s *hashSet) Len() int { return len(s.ring) }
