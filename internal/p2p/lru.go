package p2p

import (
	"ethmeasure/internal/hashset"
	"ethmeasure/internal/types"
)

// hashSet is a bounded set of hashes with FIFO eviction, mirroring the
// per-peer "known blocks/transactions" LRU caches Geth keeps so that a
// hash is not re-sent to a peer that already has it.
//
// Storage is the shared open-addressed uint64 table in
// internal/hashset (Fibonacci hashing, bitset filter for hot negative
// Has calls, lazy growth: a capacity-131072 cache costs a few hundred
// bytes until a node actually sees traffic — at 5,000 nodes the eager
// maps this replaces dominated the whole campaign's heap). This type
// adds the insertion ring that turns the unbounded set into a
// fixed-capacity FIFO cache.
type hashSet struct {
	capacity int
	ring     []types.Hash // members in insertion order
	pos      int          // next eviction slot once the ring is full
	set      *hashset.U64
}

func newHashSet(capacity int) *hashSet {
	if capacity <= 0 {
		capacity = 1
	}
	return &hashSet{capacity: capacity, set: hashset.New(capacity)}
}

// reset returns the set to the state newHashSet(capacity) would
// produce while keeping the ring's backing array and the open-addressed
// table, so recycled caches refill without reallocating.
func (s *hashSet) reset(capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	s.capacity = capacity
	s.ring = s.ring[:0]
	s.pos = 0
	s.set.Clear()
}

// scrub is reset without the capacity change: it empties the set in
// place so the table sweep runs at reclaim time instead of on the next
// run's build path (a later reset on a scrubbed set is free).
func (s *hashSet) scrub() {
	s.ring = s.ring[:0]
	s.pos = 0
	s.set.Clear()
}

// Add inserts h, evicting the oldest entry when full. It reports
// whether h was newly added.
func (s *hashSet) Add(h types.Hash) bool {
	if s.set.Has(uint64(h)) {
		return false
	}
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, h)
	} else {
		s.set.Remove(uint64(s.ring[s.pos]))
		s.ring[s.pos] = h
		s.pos = (s.pos + 1) % s.capacity
	}
	s.set.Add(uint64(h))
	return true
}

// Has reports whether h is in the set.
func (s *hashSet) Has(h types.Hash) bool { return s.set.Has(uint64(h)) }

// Len returns the number of entries currently held.
func (s *hashSet) Len() int { return len(s.ring) }
