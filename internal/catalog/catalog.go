// Package catalog implements the shared "name[:key=val,...]" spec
// machinery behind every registered-plugin axis of the simulator.
//
// Two axes predate the package — scenarios (internal/scenario) and
// consensus protocols (internal/consensus) — and each carried its own
// hand-synced copy of the same three pieces: a Spec with canonical
// textual rendering, a typed Params accessor with unknown-key
// rejection, and an init-registered factory catalog. This package is
// that machinery once, generic over the factory's product type, so a
// third axis (pool payout schemes, builder/relay roles, ...) is one
// Catalog[T] variable away instead of a third copy.
//
// The owning packages stay the public surface: scenario.Spec and
// consensus.Spec remain their packages' types (thin wrappers over
// catalog.Spec), and their Parse/Validate/Register functions delegate
// here, so no call site changes when a catalog adopts the shared
// implementation. Error messages are parameterized by the catalog's
// prefix (the owning package name) and kind (the noun users see), and
// reproduce the pre-unification texts exactly.
package catalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ethmeasure/internal/geo"
)

// Spec names one catalog entry plus its parameters — the serializable,
// sweepable unit carried by configurations. The textual form is
//
//	name[:key=val,key=val,...]
//
// e.g. "partition:a=EA+SEA,start=5m,dur=10m". Values must not contain
// commas; region lists join codes with '+'.
type Spec struct {
	// Name is the registered entry name ("churn", "bitcoin", ...).
	Name string
	// Params are the entry's key=value parameters. Nil means all
	// defaults.
	Params map[string]string
}

// String renders the spec in canonical textual form (params sorted by
// key), the inverse of Parse. The name renders as-is; catalogs with a
// default name substitute it via Catalog.Canonical.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// Params is the typed accessor a factory reads its Spec parameters
// through. Getters record the first conversion error and mark keys as
// consumed; the catalog rejects specs with unknown (unconsumed) keys,
// so misspelled parameters fail fast instead of silently running the
// default.
type Params struct {
	kind string // the error-message noun ("scenario", "protocol")
	name string
	raw  map[string]string
	used map[string]bool
	err  error
}

// NewParams wraps a raw parameter map in a typed accessor. kind and
// name seed error messages ("scenario churn: parameter x: ...").
// Factories never call this — Build does — but tests exercising a
// factory directly construct their Params here.
func NewParams(kind, name string, raw map[string]string) *Params {
	return &Params{kind: kind, name: name, raw: raw, used: make(map[string]bool, len(raw))}
}

func (p *Params) lookup(key string) (string, bool) {
	p.used[key] = true
	v, ok := p.raw[key]
	return v, ok
}

func (p *Params) fail(key string, err error) {
	if p.err == nil {
		p.err = fmt.Errorf("%s %s: parameter %s: %w", p.kind, p.name, key, err)
	}
}

// Str returns the string parameter key, or def when absent.
func (p *Params) Str(key, def string) string {
	if v, ok := p.lookup(key); ok {
		return v
	}
	return def
}

// Int returns the integer parameter key, or def when absent.
func (p *Params) Int(key string, def int) int {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return n
}

// Float returns the float parameter key, or def when absent.
func (p *Params) Float(key string, def float64) float64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return f
}

// Dur returns the duration parameter key ("5m", "30s"), or def when
// absent.
func (p *Params) Dur(key string, def time.Duration) time.Duration {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return d
}

// Regions returns the region-list parameter key ("EA+SEA", codes or
// full names joined by '+'), or nil when absent.
func (p *Params) Regions(key string) []geo.Region {
	v, ok := p.lookup(key)
	if !ok {
		return nil
	}
	parts := strings.Split(v, "+")
	out := make([]geo.Region, 0, len(parts))
	for _, part := range parts {
		r, err := geo.ParseRegion(strings.TrimSpace(part))
		if err != nil {
			p.fail(key, err)
			return nil
		}
		out = append(out, r)
	}
	return out
}

// Region returns a single-region parameter, or def when absent.
func (p *Params) Region(key string, def geo.Region) geo.Region {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	r, err := geo.ParseRegion(v)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return r
}

// Err returns the first conversion error, or an unknown-key error when
// the spec carried parameters no getter consumed.
func (p *Params) Err() error {
	if p.err != nil {
		return p.err
	}
	var unknown []string
	for k := range p.raw {
		if !p.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("%s %s: unknown parameter(s) %s", p.kind, p.name, strings.Join(unknown, ", "))
	}
	return nil
}

// Registration describes one entry in a catalog.
type Registration[T any] struct {
	// Name is the spec name the entry is addressed by.
	Name string
	// Desc is a one-line description for catalogs and help output.
	Desc string
	// Usage documents the textual spec form with optional parameters.
	Usage string
	// New instantiates the product from parsed parameters. Factories
	// read every parameter they accept through p's typed getters (the
	// catalog rejects unconsumed keys) and validate values eagerly.
	New func(p *Params) (T, error)
}

// Catalog is one named registry of factories producing T. The zero
// value is not usable; construct with New. Registration happens in
// init functions, so a Catalog needs no locking: it is written during
// package initialization and read-only afterwards.
type Catalog[T any] struct {
	prefix      string // error prefix: the owning package name
	kind        string // the noun users see ("scenario", "protocol")
	defaultName string // substituted for an empty spec name; "" = none
	reg         map[string]Registration[T]
}

// New creates an empty catalog. prefix is the owning package name used
// to prefix errors ("scenario: ..."), kind the user-facing noun
// ("unknown protocol ..."), and defaultName the entry an empty spec
// name resolves to ("" when empty names are invalid).
func New[T any](prefix, kind, defaultName string) *Catalog[T] {
	return &Catalog[T]{
		prefix:      prefix,
		kind:        kind,
		defaultName: defaultName,
		reg:         map[string]Registration[T]{},
	}
}

// Register adds an entry. Duplicate names panic: registration happens
// in init functions, so a collision is a programming error.
func (c *Catalog[T]) Register(r Registration[T]) {
	if r.Name == "" || r.New == nil {
		panic(c.prefix + ": registration needs a name and a factory")
	}
	if _, dup := c.reg[r.Name]; dup {
		panic(c.prefix + ": duplicate registration of " + r.Name)
	}
	c.reg[r.Name] = r
}

// Parse reads a spec from its textual form "name[:key=val,...]". It
// validates syntax only; names and parameter values are checked by
// Build when the entry is instantiated.
func (c *Catalog[T]) Parse(s string) (Spec, error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Spec{}, fmt.Errorf("%s: empty %s name in %q", c.prefix, c.kind, s)
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	spec.Params = make(map[string]string)
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(pair, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return Spec{}, fmt.Errorf("%s: %s: bad parameter %q (want key=val)", c.prefix, name, pair)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("%s: %s: duplicate parameter %q", c.prefix, name, key)
		}
		spec.Params[key] = strings.TrimSpace(val)
	}
	return spec, nil
}

// Canonical renders a spec in canonical textual form with the
// catalog's default name substituted for an empty one.
func (c *Catalog[T]) Canonical(s Spec) string {
	if s.Name == "" && c.defaultName != "" {
		s.Name = c.defaultName
	}
	return s.String()
}

// Build instantiates one entry from its spec: looks up the factory,
// runs it over the typed parameters, and rejects unknown or malformed
// parameters. An empty spec name builds the catalog's default entry
// when one is configured.
func (c *Catalog[T]) Build(spec Spec) (T, error) {
	var zero T
	name := spec.Name
	if name == "" && c.defaultName != "" {
		name = c.defaultName
	}
	reg, ok := c.reg[name]
	if !ok {
		return zero, fmt.Errorf("%s: unknown %s %q (known: %v)", c.prefix, c.kind, name, c.Names())
	}
	p := NewParams(c.kind, name, spec.Params)
	v, err := reg.New(p)
	if err != nil {
		return zero, fmt.Errorf("%s %s: %w", c.kind, name, err)
	}
	if err := p.Err(); err != nil {
		return zero, err
	}
	return v, nil
}

// Validate checks that a spec names a registered entry and its
// parameters parse; the instance is discarded.
func (c *Catalog[T]) Validate(spec Spec) error {
	_, err := c.Build(spec)
	return err
}

// Names returns the registered entry names, sorted.
func (c *Catalog[T]) Names() []string {
	names := make([]string, 0, len(c.reg))
	for name := range c.reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Registrations returns every registration sorted by name — the source
// of CLI -list-* and the campaign server's /v1/catalog output.
func (c *Catalog[T]) Registrations() []Registration[T] {
	out := make([]Registration[T], 0, len(c.reg))
	for _, name := range c.Names() {
		out = append(out, c.reg[name])
	}
	return out
}
