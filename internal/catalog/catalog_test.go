package catalog

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// widget is a trivial product type for exercising the generic catalog.
type widget struct {
	name string
	size int
	wait time.Duration
}

func testCatalog(t *testing.T) *Catalog[*widget] {
	t.Helper()
	c := New[*widget]("widgets", "widget", "plain")
	c.Register(Registration[*widget]{
		Name: "plain",
		Desc: "a plain widget",
		New: func(p *Params) (*widget, error) {
			return &widget{name: "plain", size: p.Int("size", 1)}, nil
		},
	})
	c.Register(Registration[*widget]{
		Name: "timed",
		Desc: "a widget with a delay",
		New: func(p *Params) (*widget, error) {
			return &widget{name: "timed", wait: p.Dur("wait", time.Second)}, nil
		},
	})
	return c
}

func TestParseAndCanonical(t *testing.T) {
	c := testCatalog(t)
	cases := []struct {
		in   string
		want Spec
	}{
		{"plain", Spec{Name: "plain"}},
		{"timed:wait=5m", Spec{Name: "timed", Params: map[string]string{"wait": "5m"}}},
		{" plain : size = 3 ", Spec{Name: "plain", Params: map[string]string{"size": "3"}}},
		{"plain:b=2,a=1", Spec{Name: "plain", Params: map[string]string{"a": "1", "b": "2"}}},
	}
	for _, tc := range cases {
		got, err := c.Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	// Canonical form sorts params and round-trips through Parse.
	spec := Spec{Name: "plain", Params: map[string]string{"b": "2", "a": "1"}}
	if got, want := spec.String(), "plain:a=1,b=2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	back, err := c.Parse(spec.String())
	if err != nil || !reflect.DeepEqual(back, spec) {
		t.Errorf("round trip = %+v, %v", back, err)
	}
}

func TestParseErrors(t *testing.T) {
	c := testCatalog(t)
	cases := []struct {
		in   string
		frag string
	}{
		{"", "empty widget name"},
		{":size=3", "empty widget name"},
		{"plain:size", "want key=val"},
		{"plain:=3", "want key=val"},
		{"plain:size=1,size=2", "duplicate parameter"},
	}
	for _, tc := range cases {
		_, err := c.Parse(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Parse(%q) err = %v, want fragment %q", tc.in, err, tc.frag)
		}
		if err != nil && !strings.HasPrefix(err.Error(), "widgets: ") {
			t.Errorf("Parse(%q) err %q not prefixed by catalog name", tc.in, err)
		}
	}
}

func TestDefaultNameSubstitution(t *testing.T) {
	c := testCatalog(t)
	// Empty name builds and canonicalizes to the default entry.
	w, err := c.Build(Spec{})
	if err != nil || w.name != "plain" {
		t.Fatalf("Build(empty) = %+v, %v", w, err)
	}
	if got := c.Canonical(Spec{}); got != "plain" {
		t.Errorf("Canonical(empty) = %q", got)
	}
	// A catalog without a default rejects empty names on Build.
	nd := New[*widget]("nodef", "thing", "")
	if _, err := nd.Build(Spec{}); err == nil {
		t.Error("Build(empty) on defaultless catalog succeeded")
	}
}

func TestBuildParamsAndUnknownKeys(t *testing.T) {
	c := testCatalog(t)
	w, err := c.Build(Spec{Name: "plain", Params: map[string]string{"size": "7"}})
	if err != nil || w.size != 7 {
		t.Fatalf("Build = %+v, %v", w, err)
	}
	if _, err := c.Build(Spec{Name: "plain", Params: map[string]string{"bogus": "1"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown parameter(s) bogus") {
		t.Errorf("unknown key err = %v", err)
	}
	if _, err := c.Build(Spec{Name: "plain", Params: map[string]string{"size": "x"}}); err == nil ||
		!strings.Contains(err.Error(), "parameter size") {
		t.Errorf("bad int err = %v", err)
	}
	if _, err := c.Build(Spec{Name: "nosuch"}); err == nil ||
		!strings.Contains(err.Error(), `unknown widget "nosuch"`) {
		t.Errorf("unknown name err = %v", err)
	}
	if err := c.Validate(Spec{Name: "timed", Params: map[string]string{"wait": "90s"}}); err != nil {
		t.Errorf("Validate = %v", err)
	}
}

func TestNamesAndRegistrations(t *testing.T) {
	c := testCatalog(t)
	if got, want := c.Names(), []string{"plain", "timed"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v", got)
	}
	regs := c.Registrations()
	if len(regs) != 2 || regs[0].Name != "plain" || regs[1].Name != "timed" {
		t.Errorf("Registrations = %+v", regs)
	}
}

func TestRegisterPanics(t *testing.T) {
	c := testCatalog(t)
	mustPanic := func(name string, r Registration[*widget]) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		c.Register(r)
	}
	mustPanic("no factory", Registration[*widget]{Name: "x"})
	mustPanic("no name", Registration[*widget]{New: func(*Params) (*widget, error) { return nil, nil }})
	mustPanic("duplicate", Registration[*widget]{Name: "plain", New: func(*Params) (*widget, error) { return nil, nil }})
}
