package consensus

import (
	"time"

	"ethmeasure/internal/types"
)

// EthereumName addresses the default protocol: Ethereum's
// Constantinople-era rules, exactly as the paper measured them.
const EthereumName = "ethereum"

// DefaultName is the protocol a zero-valued spec resolves to.
const DefaultName = EthereumName

// Ethereum's consensus parameters for the measurement period
// (Constantinople, EIP-1234). These are the canonical values the rest
// of the system historically hard-coded; chain.MaxUncleDepth and
// analysis.BlockRewardETH now delegate here.
const (
	// EthereumUncleDepth is how many generations back an uncle's parent
	// may sit relative to the including block (uncle.number ≥
	// block.number − 6, i.e. "within 7 generations").
	EthereumUncleDepth = 6
	// EthereumUnclesPerBlock is the cap on uncle references per block.
	EthereumUnclesPerBlock = 2
	// EthereumBlockReward is the static per-block subsidy in ETH.
	EthereumBlockReward = 2.0
	// EthereumNephewReward is paid per uncle referenced (1/32 of the
	// block reward).
	EthereumNephewReward = EthereumBlockReward / 32
	// EthereumTargetInterval is the measurement period's mean block
	// interval (paper §III-C1: 13.3 s).
	EthereumTargetInterval = 13300 * time.Millisecond
)

func init() {
	Register(Registration{
		Name:  EthereumName,
		Desc:  "Ethereum Constantinople rules: heaviest chain, 7-generation uncles, EIP-1234 rewards",
		Usage: EthereumName,
		New: func(*Params) (Protocol, error) {
			return Ethereum(), nil
		},
	})
}

// ethereum implements the paper's protocol. The empty struct keeps
// dispatch cheap on the per-import hot path.
type ethereum struct{}

// Ethereum returns the default protocol instance.
func Ethereum() Protocol { return ethereum{} }

// Name implements Protocol.
func (ethereum) Name() string { return EthereumName }

// Prefer implements the heaviest-total-difficulty fork choice with
// first-seen tie breaking, as deployed in Geth (Ethereum's "GHOST" is
// in name only; the deployed rule is heaviest chain).
func (ethereum) Prefer(candidate, incumbent *types.Block) bool {
	return candidate.TotalDiff > incumbent.TotalDiff
}

// MaxReferenceDepth implements Protocol.
func (ethereum) MaxReferenceDepth() uint64 { return EthereumUncleDepth }

// MaxReferencesPerBlock implements Protocol.
func (ethereum) MaxReferencesPerBlock() int { return EthereumUnclesPerBlock }

// BlockReward implements Protocol.
func (ethereum) BlockReward() float64 { return EthereumBlockReward }

// ReferenceReward implements Ethereum's uncle schedule: (8 − d) / 8 of
// the block reward at depth d. The d ≤ 7 bound mirrors the yellow
// paper's schedule (and the historical UncleRewardETH definition);
// with the 6-generation validity window, depth 7 is never reached by
// an included uncle, so in practice the deepest paid tier is 2/8.
func (ethereum) ReferenceReward(depth uint64) float64 {
	if depth < 1 || depth > 7 {
		return 0
	}
	return float64(8-depth) / 8 * EthereumBlockReward
}

// NephewReward implements Protocol.
func (ethereum) NephewReward() float64 { return EthereumNephewReward }

// TargetInterval implements Protocol.
func (ethereum) TargetInterval() time.Duration { return EthereumTargetInterval }
