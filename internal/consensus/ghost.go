package consensus

import (
	"fmt"
	"math"
	"time"

	"ethmeasure/internal/types"
)

// GhostInclusiveName addresses the inclusive-GHOST variant: a deeper
// reference window than Ethereum's, more references per block, and a
// geometrically decaying reference reward — the "inclusive blockchain
// protocols" family (Lewenberg, Sompolinsky, Zohar) that pays side
// chains to reduce the large-miner advantage the paper quantifies.
const GhostInclusiveName = "ghost-inclusive"

// Inclusive-GHOST defaults.
const (
	// GhostDefaultDepth is the default reference window (generations).
	GhostDefaultDepth = 10
	// GhostDefaultCap is the default references-per-block cap.
	GhostDefaultCap = 3
	// GhostDefaultDecay is the default per-generation reward decay.
	GhostDefaultDecay = 0.5
)

func init() {
	Register(Registration{
		Name:  GhostInclusiveName,
		Desc:  "inclusive-GHOST rules: deep reference window, decaying reference rewards",
		Usage: GhostInclusiveName + "[:depth=10,cap=3,decay=0.5,reward=2]",
		New: func(p *Params) (Protocol, error) {
			g := ghostInclusive{
				depth:  p.Int("depth", GhostDefaultDepth),
				cap:    p.Int("cap", GhostDefaultCap),
				decay:  p.Float("decay", GhostDefaultDecay),
				reward: p.Float("reward", EthereumBlockReward),
			}
			if g.depth < 1 {
				return nil, fmt.Errorf("depth %d < 1", g.depth)
			}
			if g.cap < 1 {
				return nil, fmt.Errorf("cap %d < 1", g.cap)
			}
			if g.decay <= 0 || g.decay > 1 {
				return nil, fmt.Errorf("decay %g outside (0, 1]", g.decay)
			}
			if g.reward <= 0 {
				return nil, fmt.Errorf("non-positive block reward %g", g.reward)
			}
			return g, nil
		},
	})
}

// ghostInclusive implements the inclusive variant. Fork choice stays
// heaviest-chain (like deployed Ethereum); what changes is how deep
// and how generously side blocks are folded back in.
type ghostInclusive struct {
	depth  int
	cap    int
	decay  float64
	reward float64
}

// GhostInclusive returns the inclusive-GHOST protocol with default
// parameters.
func GhostInclusive() Protocol {
	return ghostInclusive{
		depth:  GhostDefaultDepth,
		cap:    GhostDefaultCap,
		decay:  GhostDefaultDecay,
		reward: EthereumBlockReward,
	}
}

// Name implements Protocol.
func (ghostInclusive) Name() string { return GhostInclusiveName }

// Prefer implements the heaviest-total-difficulty fork choice with
// first-seen tie breaking.
func (ghostInclusive) Prefer(candidate, incumbent *types.Block) bool {
	return candidate.TotalDiff > incumbent.TotalDiff
}

// MaxReferenceDepth implements Protocol.
func (g ghostInclusive) MaxReferenceDepth() uint64 { return uint64(g.depth) }

// MaxReferencesPerBlock implements Protocol.
func (g ghostInclusive) MaxReferencesPerBlock() int { return g.cap }

// BlockReward implements Protocol.
func (g ghostInclusive) BlockReward() float64 { return g.reward }

// ReferenceReward pays decay^d of the block reward at depth d: a
// same-height sibling referenced immediately earns decay × reward,
// each further generation multiplies by decay again.
func (g ghostInclusive) ReferenceReward(depth uint64) float64 {
	if depth < 1 || depth > uint64(g.depth) {
		return 0
	}
	return g.reward * math.Pow(g.decay, float64(depth))
}

// NephewReward pays the including miner 1/32 of the block reward per
// reference, mirroring Ethereum's inclusion incentive.
func (g ghostInclusive) NephewReward() float64 { return g.reward / 32 }

// TargetInterval implements Protocol: inclusive protocols are designed
// for Ethereum-like block rates.
func (ghostInclusive) TargetInterval() time.Duration { return EthereumTargetInterval }
