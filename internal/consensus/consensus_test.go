package consensus

import (
	"testing"

	"ethmeasure/internal/types"
)

func TestSpecParseAndCanonicalForm(t *testing.T) {
	spec, err := Parse(" ghost-inclusive : decay=0.7 , depth=12 ")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != GhostInclusiveName {
		t.Fatalf("name = %q", spec.Name)
	}
	if got := spec.String(); got != "ghost-inclusive:decay=0.7,depth=12" {
		t.Fatalf("canonical form = %q", got)
	}
	// Round trip.
	again, err := Parse(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != spec.String() {
		t.Fatalf("round trip diverged: %q vs %q", again.String(), spec.String())
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, bad := range []string{"", "  ", ":depth=3", "ghost-inclusive:depth", "ghost-inclusive:depth=3,depth=4"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestEmptySpecBuildsDefault(t *testing.T) {
	proto, err := Build(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if proto.Name() != EthereumName {
		t.Fatalf("default protocol = %q", proto.Name())
	}
	if (Spec{}).String() != EthereumName {
		t.Fatalf("empty spec renders %q", (Spec{}).String())
	}
}

func TestBuildRejectsUnknownNameAndParams(t *testing.T) {
	if _, err := Build(Spec{Name: "tendermint"}); err == nil {
		t.Error("unknown protocol must error")
	}
	if _, err := Build(Spec{Name: BitcoinName, Params: map[string]string{"uncles": "2"}}); err == nil {
		t.Error("unknown parameter must error")
	}
	if _, err := Build(Spec{Name: GhostInclusiveName, Params: map[string]string{"depth": "zero"}}); err == nil {
		t.Error("malformed parameter must error")
	}
	if _, err := Build(Spec{Name: GhostInclusiveName, Params: map[string]string{"decay": "1.5"}}); err == nil {
		t.Error("out-of-range decay must error")
	}
}

func TestEthereumSchedule(t *testing.T) {
	e := Ethereum()
	if e.MaxReferenceDepth() != 6 || e.MaxReferencesPerBlock() != 2 {
		t.Fatalf("reference policy = %d/%d", e.MaxReferenceDepth(), e.MaxReferencesPerBlock())
	}
	if e.BlockReward() != 2.0 {
		t.Fatalf("block reward = %g", e.BlockReward())
	}
	// The EIP-1234 uncle schedule: (8-d)/8 × 2 ETH.
	want := map[uint64]float64{0: 0, 1: 1.75, 2: 1.5, 6: 0.5, 7: 0.25, 8: 0}
	for d, r := range want {
		if got := e.ReferenceReward(d); got != r {
			t.Errorf("ReferenceReward(%d) = %g, want %g", d, got, r)
		}
	}
	if e.NephewReward() != 2.0/32 {
		t.Errorf("nephew reward = %g", e.NephewReward())
	}
}

func TestBitcoinHasNoReferences(t *testing.T) {
	b := Bitcoin()
	if b.MaxReferenceDepth() != 0 || b.MaxReferencesPerBlock() != 0 {
		t.Fatal("bitcoin must not allow references")
	}
	for d := uint64(0); d < 10; d++ {
		if b.ReferenceReward(d) != 0 {
			t.Fatalf("ReferenceReward(%d) != 0", d)
		}
	}
	if b.NephewReward() != 0 {
		t.Fatal("bitcoin pays no nephew reward")
	}
	if b.BlockReward() != 12.5 {
		t.Fatalf("block reward = %g", b.BlockReward())
	}
	custom, err := Build(Spec{Name: BitcoinName, Params: map[string]string{"reward": "6.25"}})
	if err != nil {
		t.Fatal(err)
	}
	if custom.BlockReward() != 6.25 {
		t.Fatalf("custom reward = %g", custom.BlockReward())
	}
}

func TestGhostInclusiveDecay(t *testing.T) {
	proto, err := Build(Spec{Name: GhostInclusiveName, Params: map[string]string{
		"depth": "4", "cap": "5", "decay": "0.5", "reward": "8",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if proto.MaxReferenceDepth() != 4 || proto.MaxReferencesPerBlock() != 5 {
		t.Fatalf("reference policy = %d/%d", proto.MaxReferenceDepth(), proto.MaxReferencesPerBlock())
	}
	want := map[uint64]float64{1: 4, 2: 2, 3: 1, 4: 0.5, 5: 0}
	for d, r := range want {
		if got := proto.ReferenceReward(d); got != r {
			t.Errorf("ReferenceReward(%d) = %g, want %g", d, got, r)
		}
	}
}

func TestPreferIsStrict(t *testing.T) {
	a := &types.Block{TotalDiff: 5}
	b := &types.Block{TotalDiff: 5}
	heavier := &types.Block{TotalDiff: 6}
	for _, name := range Names() {
		proto, err := Build(Spec{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		if proto.Prefer(a, b) || proto.Prefer(b, a) {
			t.Errorf("%s: tie must keep the incumbent", name)
		}
		if !proto.Prefer(heavier, a) {
			t.Errorf("%s: heavier candidate must win", name)
		}
		if proto.Prefer(a, heavier) {
			t.Errorf("%s: lighter candidate must lose", name)
		}
	}
}

func TestCatalogListsAllProtocols(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("catalog too small: %v", names)
	}
	for _, want := range []string{EthereumName, BitcoinName, GhostInclusiveName} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing from catalog %v", want, names)
		}
	}
	for _, reg := range Catalog() {
		if reg.Desc == "" || reg.Usage == "" {
			t.Errorf("%s registration lacks catalog text", reg.Name)
		}
	}
}
