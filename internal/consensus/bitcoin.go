package consensus

import (
	"fmt"
	"time"

	"ethmeasure/internal/types"
)

// BitcoinName addresses the Bitcoin-style protocol: longest chain by
// work, no block references, fixed subsidy.
const BitcoinName = "bitcoin"

// Bitcoin's defaults for the paper's measurement period (spring 2019,
// between the 2016 and 2020 halvings).
const (
	// BitcoinBlockReward is the 12.5 BTC subsidy of the 2016–2020
	// halving epoch.
	BitcoinBlockReward = 12.5
	// BitcoinTargetInterval is Bitcoin's 10-minute difficulty target.
	BitcoinTargetInterval = 10 * time.Minute
)

func init() {
	Register(Registration{
		Name:  BitcoinName,
		Desc:  "Bitcoin-style rules: longest chain by work, no uncles, fixed subsidy",
		Usage: BitcoinName + "[:reward=12.5]",
		New: func(p *Params) (Protocol, error) {
			b := bitcoin{reward: p.Float("reward", BitcoinBlockReward)}
			if b.reward < 0 {
				return nil, fmt.Errorf("negative block reward %g", b.reward)
			}
			return b, nil
		},
	})
}

// bitcoin implements the no-reference longest-chain model the related
// mining-pool studies (Romiti et al.) assume: a side block earns
// nothing, ever — fork losers are pure waste.
type bitcoin struct {
	reward float64
}

// Bitcoin returns the Bitcoin-style protocol with the default subsidy.
func Bitcoin() Protocol { return bitcoin{reward: BitcoinBlockReward} }

// Name implements Protocol.
func (bitcoin) Name() string { return BitcoinName }

// Prefer implements the longest-chain-by-work fork choice. With the
// simulator's unit block difficulty this is chain length; first-seen
// wins ties, matching Bitcoin Core.
func (bitcoin) Prefer(candidate, incumbent *types.Block) bool {
	return candidate.TotalDiff > incumbent.TotalDiff
}

// MaxReferenceDepth implements Protocol: Bitcoin has no uncles.
func (bitcoin) MaxReferenceDepth() uint64 { return 0 }

// MaxReferencesPerBlock implements Protocol.
func (bitcoin) MaxReferencesPerBlock() int { return 0 }

// BlockReward implements Protocol.
func (b bitcoin) BlockReward() float64 { return b.reward }

// ReferenceReward implements Protocol: stale blocks earn nothing.
func (bitcoin) ReferenceReward(uint64) float64 { return 0 }

// NephewReward implements Protocol.
func (bitcoin) NephewReward() float64 { return 0 }

// TargetInterval implements Protocol.
func (bitcoin) TargetInterval() time.Duration { return BitcoinTargetInterval }
