// Package consensus defines the pluggable consensus-protocol axis of
// the simulator: fork choice, block-reference (uncle) policy, reward
// schedule and target block interval, abstracted behind the Protocol
// interface so the chain substrate, the mining subsystem and the
// analysis pipeline share one rule set instead of hard-coding
// Ethereum's.
//
// The paper's headline results — Table III fork classification, uncle
// rates, pool reward shares — are all downstream of Ethereum's
// specific rules. Related work studies the same geo/pool questions on
// protocols with different rules (Bitcoin's no-uncle longest chain,
// inclusive-GHOST reward sharing), so the protocol is a first-class
// configuration axis exactly like scenarios: registered by name,
// addressed by a textual spec ("ghost-inclusive:depth=10,decay=0.5"),
// sweepable across runs.
//
// Protocols must be stateless with respect to individual runs: one
// instance may serve one campaign, but every method must be a pure
// function of its arguments and the protocol's own parameters, so the
// simulation stays deterministic and instances are cheap to build per
// run.
package consensus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ethmeasure/internal/types"
)

// Protocol bundles the consensus rules a simulated chain runs under.
type Protocol interface {
	// Name is the registered protocol name ("ethereum", "bitcoin", ...).
	Name() string

	// Prefer is the fork-choice rule: it reports whether candidate
	// should replace incumbent as the preferred head. Implementations
	// must be strict (Prefer(b, b) == false) so the first-seen block
	// wins ties, matching Geth's behaviour.
	Prefer(candidate, incumbent *types.Block) bool

	// MaxReferenceDepth is how many generations back a side-chain
	// block's parent may sit for the block to be referenced (included
	// as an uncle) by a main-chain block. Zero disables references
	// entirely — the Bitcoin model, where side blocks are pure waste.
	MaxReferenceDepth() uint64

	// MaxReferencesPerBlock caps how many references one block carries.
	// Zero for protocols without references.
	MaxReferencesPerBlock() int

	// BlockReward is the static subsidy per main-chain block, in the
	// protocol's native coin units.
	BlockReward() float64

	// ReferenceReward is the reward paid to the miner of a referenced
	// (uncle) block at depth d = includingHeight − uncleHeight. Zero
	// for out-of-window depths and for protocols without references.
	ReferenceReward(depth uint64) float64

	// NephewReward is the reward paid to the including miner per
	// reference it carries.
	NephewReward() float64

	// TargetInterval is the protocol's native mean block interval. The
	// campaign keeps the configured mining interval by default so
	// cross-protocol comparisons run at equal block rates; the native
	// interval applies when the mining interval is left unset.
	TargetInterval() time.Duration
}

// Spec names one protocol plus its parameters — the serializable,
// sweepable unit carried by core.Config.Protocol. The textual form is
//
//	name[:key=val,key=val,...]
//
// e.g. "ghost-inclusive:depth=10,cap=3,decay=0.5". Values must not
// contain commas.
type Spec struct {
	// Name is the registered protocol name. Empty means DefaultName.
	Name string
	// Params are the protocol's key=value parameters. Nil means all
	// defaults.
	Params map[string]string
}

// String renders the spec in canonical textual form (params sorted by
// key), the inverse of Parse.
func (s Spec) String() string {
	name := s.Name
	if name == "" {
		name = DefaultName
	}
	if len(s.Params) == 0 {
		return name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// Parse reads a spec from its textual form "name[:key=val,...]". It
// validates syntax only; names and parameter values are checked by the
// registry when the protocol is instantiated.
func Parse(s string) (Spec, error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Spec{}, fmt.Errorf("consensus: empty protocol name in %q", s)
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	spec.Params = make(map[string]string)
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(pair, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return Spec{}, fmt.Errorf("consensus: %s: bad parameter %q (want key=val)", name, pair)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("consensus: %s: duplicate parameter %q", name, key)
		}
		spec.Params[key] = strings.TrimSpace(val)
	}
	return spec, nil
}

// Params is the typed accessor a protocol factory reads its Spec
// parameters through. Getters record the first conversion error and
// mark keys as consumed; the registry rejects specs with unknown
// (unconsumed) keys, so misspelled parameters fail fast instead of
// silently running the default.
type Params struct {
	protocol string
	raw      map[string]string
	used     map[string]bool
	err      error
}

func newParams(protocol string, raw map[string]string) *Params {
	return &Params{protocol: protocol, raw: raw, used: make(map[string]bool, len(raw))}
}

func (p *Params) lookup(key string) (string, bool) {
	p.used[key] = true
	v, ok := p.raw[key]
	return v, ok
}

func (p *Params) fail(key string, err error) {
	if p.err == nil {
		p.err = fmt.Errorf("protocol %s: parameter %s: %w", p.protocol, key, err)
	}
}

// Int returns the integer parameter key, or def when absent.
func (p *Params) Int(key string, def int) int {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return n
}

// Float returns the float parameter key, or def when absent.
func (p *Params) Float(key string, def float64) float64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, err)
		return def
	}
	return f
}

// Err returns the first conversion error, or an unknown-key error when
// the spec carried parameters no getter consumed.
func (p *Params) Err() error {
	if p.err != nil {
		return p.err
	}
	var unknown []string
	for k := range p.raw {
		if !p.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("protocol %s: unknown parameter(s) %s", p.protocol, strings.Join(unknown, ", "))
	}
	return nil
}

// Registration describes one protocol kind in the catalog.
type Registration struct {
	// Name is the spec name the protocol is addressed by.
	Name string
	// Desc is a one-line description for catalogs and help output.
	Desc string
	// Usage documents the textual spec form with optional parameters.
	Usage string
	// New instantiates the protocol from parsed parameters. Factories
	// read every parameter they accept through p's typed getters (the
	// registry rejects unconsumed keys) and validate values eagerly.
	New func(p *Params) (Protocol, error)
}

var registry = map[string]Registration{}

// Register adds a protocol kind to the catalog. Duplicate names panic:
// registration happens in init functions, so a collision is a
// programming error.
func Register(r Registration) {
	if r.Name == "" || r.New == nil {
		panic("consensus: registration needs a name and a factory")
	}
	if _, dup := registry[r.Name]; dup {
		panic("consensus: duplicate registration of " + r.Name)
	}
	registry[r.Name] = r
}

// Build instantiates one protocol from its spec: looks up the factory,
// runs it over the typed parameters, and rejects unknown or malformed
// parameters. An empty spec name builds the default protocol.
func Build(spec Spec) (Protocol, error) {
	name := spec.Name
	if name == "" {
		name = DefaultName
	}
	reg, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("consensus: unknown protocol %q (known: %v)", name, Names())
	}
	p := newParams(name, spec.Params)
	proto, err := reg.New(p)
	if err != nil {
		return nil, fmt.Errorf("protocol %s: %w", name, err)
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	return proto, nil
}

// Validate checks that a spec names a registered protocol and its
// parameters parse; the instance is discarded.
func Validate(spec Spec) error {
	_, err := Build(spec)
	return err
}

// Names returns the registered protocol names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Catalog returns every registration sorted by name — the source of
// CLI -list-protocols output.
func Catalog() []Registration {
	out := make([]Registration, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}
