// Package consensus defines the pluggable consensus-protocol axis of
// the simulator: fork choice, block-reference (uncle) policy, reward
// schedule and target block interval, abstracted behind the Protocol
// interface so the chain substrate, the mining subsystem and the
// analysis pipeline share one rule set instead of hard-coding
// Ethereum's.
//
// The paper's headline results — Table III fork classification, uncle
// rates, pool reward shares — are all downstream of Ethereum's
// specific rules. Related work studies the same geo/pool questions on
// protocols with different rules (Bitcoin's no-uncle longest chain,
// inclusive-GHOST reward sharing), so the protocol is a first-class
// configuration axis exactly like scenarios: registered by name,
// addressed by a textual spec ("ghost-inclusive:depth=10,decay=0.5"),
// sweepable across runs.
//
// Protocols must be stateless with respect to individual runs: one
// instance may serve one campaign, but every method must be a pure
// function of its arguments and the protocol's own parameters, so the
// simulation stays deterministic and instances are cheap to build per
// run.
package consensus

import (
	"time"

	"ethmeasure/internal/catalog"
	"ethmeasure/internal/types"
)

// Protocol bundles the consensus rules a simulated chain runs under.
type Protocol interface {
	// Name is the registered protocol name ("ethereum", "bitcoin", ...).
	Name() string

	// Prefer is the fork-choice rule: it reports whether candidate
	// should replace incumbent as the preferred head. Implementations
	// must be strict (Prefer(b, b) == false) so the first-seen block
	// wins ties, matching Geth's behaviour.
	Prefer(candidate, incumbent *types.Block) bool

	// MaxReferenceDepth is how many generations back a side-chain
	// block's parent may sit for the block to be referenced (included
	// as an uncle) by a main-chain block. Zero disables references
	// entirely — the Bitcoin model, where side blocks are pure waste.
	MaxReferenceDepth() uint64

	// MaxReferencesPerBlock caps how many references one block carries.
	// Zero for protocols without references.
	MaxReferencesPerBlock() int

	// BlockReward is the static subsidy per main-chain block, in the
	// protocol's native coin units.
	BlockReward() float64

	// ReferenceReward is the reward paid to the miner of a referenced
	// (uncle) block at depth d = includingHeight − uncleHeight. Zero
	// for out-of-window depths and for protocols without references.
	ReferenceReward(depth uint64) float64

	// NephewReward is the reward paid to the including miner per
	// reference it carries.
	NephewReward() float64

	// TargetInterval is the protocol's native mean block interval. The
	// campaign keeps the configured mining interval by default so
	// cross-protocol comparisons run at equal block rates; the native
	// interval applies when the mining interval is left unset.
	TargetInterval() time.Duration
}

// Spec names one protocol plus its parameters — the serializable,
// sweepable unit carried by core.Config.Protocol. The textual form is
//
//	name[:key=val,key=val,...]
//
// e.g. "ghost-inclusive:depth=10,cap=3,decay=0.5". Values must not
// contain commas.
//
// Spec is a thin wrapper over the shared catalog spec
// (internal/catalog); unlike scenario.Spec it is a distinct type so
// its String method can substitute DefaultName for the zero value.
type Spec struct {
	// Name is the registered protocol name. Empty means DefaultName.
	Name string
	// Params are the protocol's key=value parameters. Nil means all
	// defaults.
	Params map[string]string
}

// String renders the spec in canonical textual form (params sorted by
// key, an empty name rendered as DefaultName), the inverse of Parse.
func (s Spec) String() string {
	return cat.Canonical(catalog.Spec(s))
}

// Parse reads a spec from its textual form "name[:key=val,...]". It
// validates syntax only; names and parameter values are checked by the
// registry when the protocol is instantiated.
func Parse(s string) (Spec, error) {
	cs, err := cat.Parse(s)
	return Spec(cs), err
}

// Params is the typed accessor a protocol factory reads its Spec
// parameters through. Getters record the first conversion error and
// mark keys as consumed; the registry rejects specs with unknown
// (unconsumed) keys, so misspelled parameters fail fast instead of
// silently running the default.
type Params = catalog.Params

// Registration describes one protocol kind in the catalog.
type Registration = catalog.Registration[Protocol]

// cat is the protocol catalog: the shared spec/params/registry
// machinery from internal/catalog, instantiated for the Protocol
// product type. An empty spec name resolves to DefaultName.
var cat = catalog.New[Protocol]("consensus", "protocol", DefaultName)

// Register adds a protocol kind to the catalog. Duplicate names panic:
// registration happens in init functions, so a collision is a
// programming error.
func Register(r Registration) {
	cat.Register(r)
}

// Build instantiates one protocol from its spec: looks up the factory,
// runs it over the typed parameters, and rejects unknown or malformed
// parameters. An empty spec name builds the default protocol.
func Build(spec Spec) (Protocol, error) {
	return cat.Build(catalog.Spec(spec))
}

// Validate checks that a spec names a registered protocol and its
// parameters parse; the instance is discarded.
func Validate(spec Spec) error {
	return cat.Validate(catalog.Spec(spec))
}

// Names returns the registered protocol names, sorted.
func Names() []string {
	return cat.Names()
}

// Catalog returns every registration sorted by name — the source of
// CLI -list-protocols output.
func Catalog() []Registration {
	return cat.Registrations()
}
