// Package txgen generates the transaction workload: Poisson arrivals
// from a geo-distributed, skewed population of senders, with per-sender
// monotonically increasing nonces. Bursty senders that submit several
// consecutive-nonce transactions through different (load-balanced)
// entry nodes are the mechanism behind the out-of-order receptions the
// paper quantifies (§III-C2: 11.54% of committed transactions).
package txgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/rlp"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/types"
)

// Config parameterises the workload.
type Config struct {
	// Rate is the mean transaction arrival rate (tx/second). The paper
	// period averaged ~8.2 tx/s on mainnet; scaled-down runs use less.
	Rate float64

	// NumAccounts is the sender population size.
	NumAccounts int

	// SkewExponent shapes the Zipf-like sender activity skew
	// (0 = uniform; ~0.8 gives a realistic heavy head of exchanges).
	SkewExponent float64

	// BurstProb is the probability that an arrival event is a burst of
	// several transactions with consecutive nonces.
	BurstProb float64

	// BurstMeanExtra is the mean number of extra transactions in a
	// burst beyond the first (geometric).
	BurstMeanExtra float64

	// MultiEntryProb is the probability that a burst transaction after
	// the first enters the network through a different random node
	// (load-balanced API endpoints), which is what scrambles arrival
	// order relative to nonce order.
	MultiEntryProb float64

	// BurstSpacingMax bounds the intra-burst submission spacing.
	BurstSpacingMax time.Duration

	// GasPriceMean is the mean of the (exponential) gas price
	// distribution, in arbitrary priority units.
	GasPriceMean float64

	// MempoolFloor, when positive, keeps at least this many generated
	// transactions outstanding (created but not yet included) by
	// injecting low-fee filler transactions. Mainnet's mempool never
	// runs dry — there is always a reservoir of cheap pending
	// transactions — and without this floor, scaled-down simulations
	// drain their pools and mint spurious empty blocks that would
	// corrupt the Figure 6 analysis.
	MempoolFloor int

	// FloorCheckEvery is the controller's sampling interval.
	FloorCheckEvery time.Duration

	// FloorPriceMean is the (low) mean gas price of filler traffic;
	// market transactions outprice it.
	FloorPriceMean float64

	// FloorAccounts is the number of dedicated filler sender accounts.
	FloorAccounts int
}

// DefaultConfig returns workload parameters calibrated to reproduce
// the paper's out-of-order share at simulation scale.
func DefaultConfig() Config {
	return Config{
		Rate:            1.0,
		NumAccounts:     2000,
		SkewExponent:    0.8,
		BurstProb:       0.22,
		BurstMeanExtra:  1.6,
		MultiEntryProb:  0.45,
		BurstSpacingMax: 250 * time.Millisecond,
		GasPriceMean:    20,
		FloorCheckEvery: 2 * time.Second,
		FloorPriceMean:  0.5,
		FloorAccounts:   64,
	}
}

// EffectiveRate returns the actual mean transaction rate including
// burst inflation: each arrival event carries 1 + BurstProb·(1 +
// BurstMeanExtra) transactions on average. Block capacity must be
// derived from this, not from Rate, or blocks run out of headroom and
// low-fee transactions starve.
func (c *Config) EffectiveRate() float64 {
	return c.Rate * (1 + c.BurstProb*(1+c.BurstMeanExtra))
}

// Store indexes every generated transaction by hash. It doubles as the
// TxResolver for the mining subsystem and the ground truth for
// analysis.
type Store struct {
	byHash map[types.Hash]*types.Transaction
	order  []types.Hash
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{byHash: make(map[types.Hash]*types.Transaction, 1024)}
}

// Add registers a transaction.
func (s *Store) Add(tx *types.Transaction) {
	s.byHash[tx.Hash] = tx
	s.order = append(s.order, tx.Hash)
}

// Get returns the transaction with the given hash, or nil.
func (s *Store) Get(h types.Hash) *types.Transaction { return s.byHash[h] }

// Len returns the number of stored transactions.
func (s *Store) Len() int { return len(s.byHash) }

// All iterates transactions in creation order.
func (s *Store) All(fn func(*types.Transaction) bool) {
	for _, h := range s.order {
		if !fn(s.byHash[h]) {
			return
		}
	}
}

type account struct {
	id        types.AccountID
	homeNode  *p2p.Node
	nextNonce uint64
}

// Generator drives the workload on the simulation engine.
type Generator struct {
	cfg      Config
	engine   *sim.Engine
	rng      *rand.Rand
	issuer   *types.HashIssuer
	store    *Store
	accounts []*account
	cumW     []float64 // cumulative account weights (skew)
	entry    []*p2p.Node
	horizon  sim.Time

	filler      []*account
	fillerNext  int
	outstanding int                 // created minus included
	included    map[types.Hash]bool // dedup across fork blocks

	created int
	bursts  int
}

// New creates a generator. entryNodes are the nodes through which
// transactions may enter the network; each account gets a home node
// drawn from the sender geo-distribution.
func New(
	cfg Config,
	engine *sim.Engine,
	entryNodes []*p2p.Node,
	senderDist *geo.Distribution,
	issuer *types.HashIssuer,
	store *Store,
) (*Generator, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("txgen: rate must be positive, got %f", cfg.Rate)
	}
	if cfg.NumAccounts <= 0 {
		return nil, fmt.Errorf("txgen: need at least one account")
	}
	if len(entryNodes) == 0 {
		return nil, fmt.Errorf("txgen: no entry nodes")
	}
	g := &Generator{
		cfg:    cfg,
		engine: engine,
		rng:    engine.RNG("txgen"),
		issuer: issuer,
		store:  store,
		entry:  entryNodes,
	}

	byRegion := make(map[geo.Region][]*p2p.Node)
	for _, n := range entryNodes {
		byRegion[n.Endpoint().Region] = append(byRegion[n.Endpoint().Region], n)
	}
	// Deterministic region iteration for account homing.
	regions := senderDist.Regions()
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })

	total := 0.0
	for i := 0; i < cfg.NumAccounts; i++ {
		region := senderDist.Sample(g.rng)
		candidates := byRegion[region]
		if len(candidates) == 0 {
			candidates = entryNodes // region has no nodes at this scale
		}
		acct := &account{
			id:       types.AccountID(i + 1),
			homeNode: candidates[g.rng.Intn(len(candidates))],
		}
		g.accounts = append(g.accounts, acct)
		w := 1.0
		if cfg.SkewExponent > 0 {
			w = 1.0 / math.Pow(float64(i+1), cfg.SkewExponent)
		}
		total += w
		g.cumW = append(g.cumW, total)
	}
	return g, nil
}

// Start schedules transaction arrivals up to the horizon.
func (g *Generator) Start(horizon sim.Time) {
	g.horizon = horizon
	g.scheduleNext()
	if g.cfg.MempoolFloor > 0 {
		g.initFiller()
		g.scheduleFloorCheck()
	}
}

// NoteIncluded informs the generator that the given transactions were
// included in a block. The mempool-floor controller uses it to track
// how many transactions remain outstanding; hashes are deduplicated so
// fork blocks carrying the same transactions do not double-count
// (double-counting would make the controller over-inject filler).
func (g *Generator) NoteIncluded(hashes []types.Hash) {
	if g.included == nil {
		g.included = make(map[types.Hash]bool, 1024)
	}
	for _, h := range hashes {
		if g.included[h] {
			continue
		}
		g.included[h] = true
		if g.outstanding > 0 {
			g.outstanding--
		}
	}
}

// Outstanding returns the controller's current estimate of pending
// (created but not included) transactions.
func (g *Generator) Outstanding() int { return g.outstanding }

func (g *Generator) initFiller() {
	n := g.cfg.FloorAccounts
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		g.filler = append(g.filler, &account{
			id:       types.AccountID(len(g.accounts) + i + 1),
			homeNode: g.entry[g.rng.Intn(len(g.entry))],
		})
	}
}

func (g *Generator) scheduleFloorCheck() {
	every := g.cfg.FloorCheckEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	if g.engine.Now()+every > g.horizon {
		return
	}
	g.engine.After(every, func() {
		g.topUpFloor()
		g.scheduleFloorCheck()
	})
}

// topUpFloor injects filler transactions until the outstanding count
// reaches the configured floor. Filler senders submit strictly in
// nonce order through their home node, so they never contribute
// out-of-order receptions.
func (g *Generator) topUpFloor() {
	deficit := g.cfg.MempoolFloor - g.outstanding
	for i := 0; i < deficit; i++ {
		acct := g.filler[g.fillerNext%len(g.filler)]
		g.fillerNext++
		tx := &types.Transaction{
			Hash:     g.issuer.Next(),
			Sender:   acct.id,
			Nonce:    acct.nextNonce,
			GasPrice: 1 + uint64(g.rng.ExpFloat64()*g.cfg.FloorPriceMean),
			Created:  g.engine.Now(),
		}
		tx.Size = rlp.TxWireSize(tx)
		acct.nextNonce++
		g.created++
		g.outstanding++
		g.store.Add(tx)
		node := acct.homeNode
		spacing := time.Duration(i) * 5 * time.Millisecond
		g.engine.After(spacing, func() { node.SubmitTx(tx) })
	}
}

// Created returns the number of transactions generated so far.
func (g *Generator) Created() int { return g.created }

// Bursts returns the number of multi-transaction burst events so far.
func (g *Generator) Bursts() int { return g.bursts }

func (g *Generator) scheduleNext() {
	mean := time.Duration(float64(time.Second) / g.cfg.Rate)
	wait := sim.ExpDuration(g.rng, mean)
	if g.engine.Now()+wait > g.horizon {
		return
	}
	g.engine.After(wait, func() {
		g.emit()
		g.scheduleNext()
	})
}

func (g *Generator) sampleAccount() *account {
	total := g.cumW[len(g.cumW)-1]
	x := g.rng.Float64() * total
	i := sort.SearchFloat64s(g.cumW, x)
	if i >= len(g.accounts) {
		i = len(g.accounts) - 1
	}
	return g.accounts[i]
}

// emit creates one arrival event: a single transaction or a burst of
// consecutive-nonce transactions from the same sender.
func (g *Generator) emit() {
	acct := g.sampleAccount()
	n := 1
	if g.rng.Float64() < g.cfg.BurstProb {
		n = 2 + geometric(g.rng, g.cfg.BurstMeanExtra)
		g.bursts++
	}
	for i := 0; i < n; i++ {
		tx := g.makeTx(acct)
		node := acct.homeNode
		if i > 0 && g.rng.Float64() < g.cfg.MultiEntryProb {
			node = g.entry[g.rng.Intn(len(g.entry))]
		}
		var spacing time.Duration
		if i > 0 && g.cfg.BurstSpacingMax > 0 {
			spacing = time.Duration(g.rng.Int63n(int64(g.cfg.BurstSpacingMax)))
		}
		submitTo := node
		g.engine.After(spacing, func() { submitTo.SubmitTx(tx) })
	}
}

func (g *Generator) makeTx(acct *account) *types.Transaction {
	tx := &types.Transaction{
		Hash:   g.issuer.Next(),
		Sender: acct.id,
		Nonce:  acct.nextNonce,
		// Market transactions price themselves above the filler band
		// (fee-market behaviour: users bid at least the prevailing
		// floor), so they never starve behind reservoir traffic.
		GasPrice: marketPriceFloor + uint64(g.rng.ExpFloat64()*g.cfg.GasPriceMean),
		Created:  g.engine.Now(),
	}
	tx.Size = rlp.TxWireSize(tx)
	acct.nextNonce++
	g.created++
	g.outstanding++
	g.store.Add(tx)
	return tx
}

// marketPriceFloor separates market transactions from mempool-floor
// filler traffic (filler prices stay below it).
const marketPriceFloor = 4

// geometric samples a geometric count with the given mean (p = 1/(1+mean)).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for rng.Float64() > p {
		n++
		if n > 64 {
			break
		}
	}
	return n
}
