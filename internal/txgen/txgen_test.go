package txgen

import (
	"math"
	"testing"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/types"
)

func genHarness(t *testing.T, n int) (*sim.Engine, []*p2p.Node) {
	t.Helper()
	engine := sim.NewEngine(1)
	net := simnet.New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	issuer := types.NewHashIssuer(1)
	reg := chain.NewRegistry(0, issuer)
	cfg := p2p.DefaultConfig()
	var nodes []*p2p.Node
	for i := 0; i < n; i++ {
		region := geo.NorthAmerica
		if i%2 == 1 {
			region = geo.EasternAsia
		}
		endpoint, err := net.AddNode(region, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, p2p.NewNode(&cfg, net, endpoint, reg))
	}
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			p2p.Connect(nodes[i], nodes[j])
		}
	}
	return engine, nodes
}

func senderDist() *geo.Distribution {
	return geo.MustDistribution(map[geo.Region]float64{
		geo.NorthAmerica: 0.5,
		geo.EasternAsia:  0.5,
	})
}

func TestNewValidation(t *testing.T) {
	engine, nodes := genHarness(t, 3)
	store := NewStore()
	issuer := types.NewHashIssuer(2)

	bad := DefaultConfig()
	bad.Rate = 0
	if _, err := New(bad, engine, nodes, senderDist(), issuer, store); err == nil {
		t.Error("zero rate must error")
	}
	bad = DefaultConfig()
	bad.NumAccounts = 0
	if _, err := New(bad, engine, nodes, senderDist(), issuer, store); err == nil {
		t.Error("zero accounts must error")
	}
	if _, err := New(DefaultConfig(), engine, nil, senderDist(), issuer, store); err == nil {
		t.Error("no entry nodes must error")
	}
}

func TestGeneratorRateAndNonces(t *testing.T) {
	engine, nodes := genHarness(t, 4)
	store := NewStore()
	cfg := DefaultConfig()
	cfg.Rate = 2.0
	cfg.NumAccounts = 50
	gen, err := New(cfg, engine, nodes, senderDist(), types.NewHashIssuer(2), store)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 10 * time.Minute
	gen.Start(horizon)
	if _, err := engine.Run(horizon); err != nil {
		t.Fatal(err)
	}
	// Effective rate = 2.0 × burst multiplier.
	eff := cfg.EffectiveRate()
	want := eff * horizon.Seconds()
	got := float64(gen.Created())
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("created %d txs, want ≈%.0f", gen.Created(), want)
	}
	if gen.Bursts() == 0 {
		t.Error("no bursts with BurstProb > 0")
	}

	// Nonces per sender must be gapless starting at zero.
	perSender := make(map[types.AccountID][]uint64)
	store.All(func(tx *types.Transaction) bool {
		perSender[tx.Sender] = append(perSender[tx.Sender], tx.Nonce)
		return true
	})
	for sender, nonces := range perSender {
		seen := make(map[uint64]bool, len(nonces))
		maxN := uint64(0)
		for _, n := range nonces {
			if seen[n] {
				t.Fatalf("sender %d issued nonce %d twice", sender, n)
			}
			seen[n] = true
			if n > maxN {
				maxN = n
			}
		}
		if int(maxN)+1 != len(nonces) {
			t.Fatalf("sender %d nonces not contiguous: %d nonces, max %d", sender, len(nonces), maxN)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	run := func() []types.Hash {
		engine, nodes := genHarness(t, 3)
		store := NewStore()
		cfg := DefaultConfig()
		cfg.Rate = 1
		cfg.NumAccounts = 10
		gen, err := New(cfg, engine, nodes, senderDist(), types.NewHashIssuer(2), store)
		if err != nil {
			t.Fatal(err)
		}
		gen.Start(2 * time.Minute)
		if _, err := engine.Run(2 * time.Minute); err != nil {
			t.Fatal(err)
		}
		var hashes []types.Hash
		store.All(func(tx *types.Transaction) bool {
			hashes = append(hashes, tx.Hash)
			return true
		})
		return hashes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestMarketPricesAboveFloor(t *testing.T) {
	engine, nodes := genHarness(t, 3)
	store := NewStore()
	cfg := DefaultConfig()
	cfg.Rate = 5
	cfg.NumAccounts = 20
	gen, err := New(cfg, engine, nodes, senderDist(), types.NewHashIssuer(2), store)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(time.Minute)
	if _, err := engine.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	store.All(func(tx *types.Transaction) bool {
		if tx.GasPrice < marketPriceFloor {
			t.Fatalf("market tx priced %d below floor %d", tx.GasPrice, marketPriceFloor)
		}
		return true
	})
}

func TestMempoolFloorInjectsFiller(t *testing.T) {
	engine, nodes := genHarness(t, 3)
	store := NewStore()
	cfg := DefaultConfig()
	cfg.Rate = 0.01 // nearly no market traffic
	cfg.NumAccounts = 5
	cfg.MempoolFloor = 30
	gen, err := New(cfg, engine, nodes, senderDist(), types.NewHashIssuer(2), store)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(time.Minute)
	if _, err := engine.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if gen.Outstanding() < 30 {
		t.Errorf("outstanding = %d, want ≥ floor", gen.Outstanding())
	}
	// Filler stops once the floor is reached: outstanding stays near
	// the floor rather than growing with time.
	if gen.Outstanding() > 60 {
		t.Errorf("outstanding = %d, controller overshooting", gen.Outstanding())
	}
	// Filler senders use IDs above the market account range and
	// strictly sequential nonces.
	fillerTxs := 0
	perSender := make(map[types.AccountID]uint64)
	store.All(func(tx *types.Transaction) bool {
		if tx.Sender > types.AccountID(cfg.NumAccounts) {
			fillerTxs++
			if want := perSender[tx.Sender]; tx.Nonce != want {
				t.Fatalf("filler sender %d nonce %d, want %d", tx.Sender, tx.Nonce, want)
			}
			perSender[tx.Sender]++
		}
		return true
	})
	if fillerTxs == 0 {
		t.Fatal("no filler injected despite empty mempool")
	}
}

func TestNoteIncludedDedupes(t *testing.T) {
	engine, nodes := genHarness(t, 3)
	store := NewStore()
	cfg := DefaultConfig()
	cfg.MempoolFloor = 10
	gen, err := New(cfg, engine, nodes, senderDist(), types.NewHashIssuer(2), store)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(time.Minute)
	if _, err := engine.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	before := gen.Outstanding()
	if before == 0 {
		t.Fatal("no outstanding txs")
	}
	var hash types.Hash
	store.All(func(tx *types.Transaction) bool {
		hash = tx.Hash
		return false
	})
	gen.NoteIncluded([]types.Hash{hash})
	mid := gen.Outstanding()
	if mid != before-1 {
		t.Fatalf("outstanding %d → %d after inclusion", before, mid)
	}
	// A fork block reporting the same tx must not double-count.
	gen.NoteIncluded([]types.Hash{hash})
	if gen.Outstanding() != mid {
		t.Error("duplicate inclusion changed the outstanding count")
	}
}

func TestEffectiveRate(t *testing.T) {
	cfg := Config{Rate: 2, BurstProb: 0.5, BurstMeanExtra: 3}
	// Each event carries 1 + 0.5·(1+3) = 3 txs on average → 6 tx/s.
	if got := cfg.EffectiveRate(); math.Abs(got-6) > 1e-9 {
		t.Errorf("EffectiveRate = %f, want 6", got)
	}
	plain := Config{Rate: 2}
	if got := plain.EffectiveRate(); got != 2 {
		t.Errorf("no-burst EffectiveRate = %f", got)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 || s.Get(types.Hash(1)) != nil {
		t.Error("empty store misbehaves")
	}
	tx1 := &types.Transaction{Hash: 1}
	tx2 := &types.Transaction{Hash: 2}
	s.Add(tx1)
	s.Add(tx2)
	if s.Len() != 2 || s.Get(1) != tx1 {
		t.Error("store lookup failed")
	}
	var order []types.Hash
	s.All(func(tx *types.Transaction) bool {
		order = append(order, tx.Hash)
		return true
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("All order = %v", order)
	}
	count := 0
	s.All(func(*types.Transaction) bool {
		count++
		return false
	})
	if count != 1 {
		t.Error("All must stop when fn returns false")
	}
}

func TestGeometricMean(t *testing.T) {
	engine := sim.NewEngine(1)
	rng := engine.RNG("g")
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += geometric(rng, 1.6)
	}
	mean := float64(sum) / n
	if math.Abs(mean-1.6) > 0.1 {
		t.Errorf("geometric mean %.2f, want ≈1.6", mean)
	}
	if geometric(rng, 0) != 0 {
		t.Error("zero mean must give zero")
	}
}
