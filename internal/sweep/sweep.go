// Package sweep turns single measurement campaigns into experiment
// fleets. The paper's conclusions rest on one one-month deployment;
// the simulator can instead rerun the campaign across many seeds and
// scenario variants and report confidence intervals rather than point
// estimates.
//
// The package has three layers:
//
//   - Matrix expands a base core.Config across axes (seeds × node
//     counts × pool hash-rate splits × topology × churn × ...) into a
//     flat list of fully-specified runs.
//   - Runner executes those runs on a worker pool, one goroutine per
//     campaign. Each core.Campaign owns a private sim.Engine and is
//     single-threaded-deterministic, so the correct scaling axis is
//     across campaigns; the runner saturates GOMAXPROCS cores while
//     preserving per-run determinism.
//   - Aggregate folds each run's analysis.KeyMetrics into per-scenario
//     cross-seed summaries (mean, stddev, min/max, 95% CI).
//
// Determinism contract: equal seeds give equal runs, and sweep
// parallelism never changes results — the aggregate of a parallel
// sweep is byte-identical to a serial loop over the same matrix.
package sweep

import (
	"context"
	"runtime"
)

// Sweep expands the matrix, runs every campaign on up to workers
// concurrent goroutines (GOMAXPROCS when workers <= 0), and folds the
// per-run metrics into cross-seed aggregates. It is the one-call
// convenience wrapper over Matrix + Runner + Aggregate.
func Sweep(ctx context.Context, m *Matrix, workers int) (*AggregateResult, []RunResult, error) {
	runner := &Runner{Workers: workers}
	results, err := runner.Run(ctx, m)
	if err != nil {
		return nil, results, err
	}
	return Aggregate(results), results, nil
}

// DefaultWorkers returns the worker count used when a Runner does not
// specify one: the process's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
