//go:build race

package sweep

// raceEnabled shrinks test campaigns when the race detector is on:
// shadow-memory instrumentation makes the event-dense simulator an
// order of magnitude slower, and the race tests are about concurrency
// structure, not statistical depth.
const raceEnabled = true
