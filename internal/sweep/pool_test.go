package sweep

import (
	"context"
	"testing"

	"ethmeasure/internal/core"
)

// TestPooledMatchesColdStart is the sweep-level half of the warm-run
// equivalence contract: the same matrix run with worker-local pooling
// (the default) and with ColdStart must produce identical metrics and
// stats for every run, even with workers recycling state across runs
// that differ in node count.
func TestPooledMatchesColdStart(t *testing.T) {
	matrix := func() *Matrix {
		return &Matrix{
			Base: testConfig(),
			Axes: []Axis{{
				Name: "nodes",
				Variants: []Variant{
					{Name: "small", Apply: func(c *core.Config) { c.NumNodes = 20 }},
					{Name: "large", Apply: func(c *core.Config) { c.NumNodes = 30 }},
				},
			}},
			Seeds: Seeds(1, 2),
		}
	}

	warm := &Runner{Workers: 2}
	if !warm.pooled() {
		t.Fatal("default runner should pool")
	}
	warmRes, err := warm.Run(context.Background(), matrix())
	if err != nil {
		t.Fatal(err)
	}

	cold := &Runner{Workers: 2, ColdStart: true}
	if cold.pooled() {
		t.Fatal("ColdStart runner must not pool")
	}
	coldRes, err := cold.Run(context.Background(), matrix())
	if err != nil {
		t.Fatal(err)
	}

	if len(warmRes) != len(coldRes) {
		t.Fatalf("result counts differ: %d vs %d", len(warmRes), len(coldRes))
	}
	for i := range warmRes {
		w, c := &warmRes[i], &coldRes[i]
		if w.Err != nil || c.Err != nil {
			t.Fatalf("run %d failed: warm=%v cold=%v", i, w.Err, c.Err)
		}
		if !metricsEqual(w.Metrics, c.Metrics) {
			t.Errorf("run %d (%s, seed %d): metrics diverged\nwarm: %v\ncold: %v",
				i, w.Run.Scenario, w.Run.Seed, w.Metrics, c.Metrics)
		}
		ws, cs := w.Stats, c.Stats
		ws.WallDuration, cs.WallDuration = 0, 0
		if ws != cs {
			t.Errorf("run %d: stats diverged: %+v vs %+v", i, ws, cs)
		}
	}
}

// TestKeepResultsDisablesPooling pins the eligibility rule: retaining
// anything derived from a run forces cold builds, because the pool
// would otherwise recycle the collector backing the kept Results.
func TestKeepResultsDisablesPooling(t *testing.T) {
	if (&Runner{KeepResults: true}).pooled() {
		t.Error("KeepResults runner must not pool")
	}
	if (&Runner{RetainRecords: true}).pooled() {
		t.Error("RetainRecords runner must not pool")
	}
	stub := &Runner{runFn: func(core.Config) (*core.Results, error) { return nil, nil }}
	if stub.pooled() {
		t.Error("stubbed runner must not pool")
	}
}
