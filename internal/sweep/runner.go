package sweep

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/core"
)

// RunResult is the outcome of one campaign within a sweep.
type RunResult struct {
	// Run identifies the campaign (index, scenario, seed, config).
	Run Run
	// Metrics are the run's headline scalars, extracted immediately so
	// the (much larger) dataset can be released between runs.
	Metrics analysis.KeyMetrics
	// Stats is the run's bookkeeping (events, blocks, wall time).
	Stats core.RunStats
	// Results is the full analysis bundle, retained only when the
	// runner's KeepResults is set.
	Results *core.Results
	// Err is non-nil when the run failed, panicked (the panic is
	// captured, not propagated), or was skipped due to cancellation.
	Err error
	// Wall is the run's wall-clock cost (zero for skipped runs).
	Wall time.Duration
}

// Ok reports whether the run completed and produced results.
func (r *RunResult) Ok() bool { return r.Err == nil && r.Metrics != nil }

// Runner executes a matrix's campaigns on a worker pool. Each campaign
// owns a private engine, registry and record pipeline, so runs proceed
// fully independently; the runner adds no synchronization beyond
// handing out job indices and collecting results into per-index slots.
//
// By default every campaign runs in bounded-memory mode (records
// stream through the analysis collector instead of accumulating in
// RAM), so a run's footprint is dominated by its live network state
// rather than its record volume. That makes worker counts beyond
// GOMAXPROCS safe memory-wise: oversubscription buys no throughput for
// these CPU-bound campaigns, but long sweeps no longer need to trim
// concurrency to fit record retention in memory, and results are
// unchanged either way (the streaming path is bit-identical to the
// batch path).
type Runner struct {
	// Workers is the concurrency level; <= 0 means GOMAXPROCS.
	Workers int
	// KeepResults retains every run's full *core.Results. Off by
	// default: a month-scale run's dataset dwarfs its KeyMetrics, and
	// sweeps with hundreds of runs would otherwise hold every dataset
	// alive simultaneously.
	KeepResults bool
	// RetainRecords runs campaigns with raw-record retention enabled
	// (Config.RetainRecords as given) instead of forcing bounded-memory
	// mode. Only useful together with KeepResults, when the caller
	// wants Results.Dataset.Blocks/Txs of every run. Config.SpillPath
	// is cleared regardless: all runs would share the one file.
	RetainRecords bool
	// OnResult, when set, observes each finished run. Calls are
	// serialized by the runner and report monotonically increasing
	// done counts; execution order across workers is nondeterministic,
	// but the result slice's order never is. Runs restored from
	// Completed are reported through the same hook, before any live
	// run, in index order.
	OnResult func(done, total int, r *RunResult)

	// Completed seeds result slots from a previous, interrupted sweep,
	// keyed by Run.Index (the matrix expansion position — stable
	// identity, since expansion is deterministic). A slot whose seeded
	// result is Ok() is not re-executed: its result is reused verbatim,
	// which is what makes sweep jobs resumable at run granularity.
	// Failed or skipped seeds are ignored and their runs re-execute.
	Completed map[int]RunResult

	// ColdStart disables warm-run pooling: every campaign builds its
	// state from scratch instead of recycling the worker's previous
	// run. Results are bit-identical either way (the pool's
	// equivalence contract); the knob exists for A/B measurement and
	// as an escape hatch.
	ColdStart bool

	// runFn executes one campaign; tests stub it to inject failures
	// and panics. Nil means the real build-and-run path.
	runFn func(core.Config) (*core.Results, error)
}

// pooled reports whether workers may recycle campaign state run to
// run. Pooling requires that nothing derived from a finished run stays
// alive: KeepResults keeps the analysis bundle (backed by the pooled
// collector) and RetainRecords keeps raw records, so either one forces
// cold builds. A stubbed runFn builds no real campaigns at all.
func (rn *Runner) pooled() bool {
	return rn.runFn == nil && !rn.ColdStart && !rn.KeepResults && !rn.RetainRecords
}

// runCampaign is the production runFn: build the full system, run it,
// analyze.
func runCampaign(cfg core.Config) (*core.Results, error) {
	campaign, err := core.NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return campaign.Run()
}

// Run expands the matrix and executes every run, returning results in
// matrix expansion order regardless of scheduling. On cancellation it
// returns the partial results (pending runs carry ctx.Err()) together
// with the context's error. A run that panics is isolated: its slot
// records the panic as an error and the remaining runs continue.
func (rn *Runner) Run(ctx context.Context, m *Matrix) ([]RunResult, error) {
	runs, err := m.Runs()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	results := make([]RunResult, len(runs))
	executed := make([]bool, len(runs))
	done := 0
	// Restore previously completed runs before anything executes: their
	// slots are final, the hook sees them first (in index order), and
	// the feed below never dispatches them.
	for i := range runs {
		prev, ok := rn.Completed[runs[i].Index]
		if !ok || !prev.Ok() {
			continue
		}
		results[i] = prev
		results[i].Run = runs[i]
		executed[i] = true
		done++
		if rn.OnResult != nil {
			rn.OnResult(done, len(runs), &results[i])
		}
	}
	pending := len(runs) - done

	workers := rn.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > pending {
		workers = pending
	}

	jobs := make(chan int)
	var (
		wg sync.WaitGroup
		mu sync.Mutex // guards done + OnResult
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker-local warm-run pool: state recycles across this
			// worker's sequential runs and is never shared with another
			// worker. A failed or panicked run discards the pool — its
			// campaign was detached from it anyway, so the safe move
			// after any irregular exit is to start the next run cold.
			var pool *core.Pool
			if rn.pooled() {
				pool = core.NewPool()
			}
			for i := range jobs {
				results[i] = rn.execute(ctx, runs[i], pool)
				if results[i].Err != nil && pool != nil {
					pool = core.NewPool()
				}
				executed[i] = true
				mu.Lock()
				done++
				if rn.OnResult != nil {
					rn.OnResult(done, len(runs), &results[i])
				}
				mu.Unlock()
			}
		}()
	}

feed:
	for i := range runs {
		if executed[i] {
			continue // restored from Completed
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Fill in runs that never reached a worker so callers can tell
		// a skipped slot from a failed one.
		for i := range results {
			if !executed[i] {
				results[i].Run = runs[i]
				results[i].Err = err
			}
		}
		return results, err
	}
	return results, nil
}

// execute runs one campaign, converting panics into errors so a bad
// scenario cannot take down the whole sweep. A non-nil pool supplies
// recycled state to the build and harvests it back after the metrics
// are extracted (the Results never escape on this path, satisfying the
// pool's recycle contract).
func (rn *Runner) execute(ctx context.Context, run Run, pool *core.Pool) (rr RunResult) {
	rr.Run = run
	if err := ctx.Err(); err != nil {
		rr.Err = err
		return
	}
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			rr.Err = fmt.Errorf("sweep: run %d (%s, seed %d) panicked: %v\n%s",
				run.Index, run.Scenario, run.Seed, p, debug.Stack())
			rr.Metrics = nil
			rr.Results = nil
		}
		rr.Wall = time.Since(start)
	}()

	runFn := rn.runFn
	if runFn == nil {
		runFn = runCampaign
	}
	cfg := run.Config
	if !rn.RetainRecords {
		cfg.RetainRecords = false
	}
	// Matrix expansion copies the base config into every run, so a
	// SpillPath would point all concurrent campaigns at one file;
	// sweeps never spill.
	cfg.SpillPath = ""
	if pool != nil {
		campaign, err := pool.NewCampaign(cfg)
		if err != nil {
			rr.Err = fmt.Errorf("sweep: run %d (%s, seed %d): %w", run.Index, run.Scenario, run.Seed, err)
			return
		}
		res, err := campaign.Run()
		if err != nil {
			rr.Err = fmt.Errorf("sweep: run %d (%s, seed %d): %w", run.Index, run.Scenario, run.Seed, err)
			return
		}
		rr.Metrics = res.KeyMetrics()
		rr.Stats = res.Stats
		pool.Recycle(campaign)
		return
	}
	res, err := runFn(cfg)
	if err != nil {
		rr.Err = fmt.Errorf("sweep: run %d (%s, seed %d): %w", run.Index, run.Scenario, run.Seed, err)
		return
	}
	rr.Metrics = res.KeyMetrics()
	rr.Stats = res.Stats
	if rn.KeepResults {
		rr.Results = res
	}
	return
}
