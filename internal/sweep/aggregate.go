package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"ethmeasure/internal/stats"
)

// MetricSummary is the cross-seed statistics of one metric within one
// scenario: the confidence-interval answer to the paper's single-run
// point estimate.
type MetricSummary struct {
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// CI95 is the half-width of the two-sided 95% Student-t confidence
	// interval of the mean; CILo/CIHi are the resulting bounds.
	CI95 float64 `json:"ci95"`
	CILo float64 `json:"ci_lo"`
	CIHi float64 `json:"ci_hi"`
}

// ScenarioSummary aggregates every seed of one axis-variant combination.
type ScenarioSummary struct {
	Scenario string          `json:"scenario"`
	Seeds    []int64         `json:"seeds"`
	Runs     int             `json:"runs"`
	Failed   int             `json:"failed"`
	Metrics  []MetricSummary `json:"metrics"`
}

// AggregateResult is the cross-seed summary of a whole sweep. It is a
// pure function of the per-run metrics in matrix expansion order, so a
// parallel sweep aggregates byte-identically to a serial one. Wall
// times deliberately stay out (they vary run to run); find them on the
// individual RunResults.
type AggregateResult struct {
	Scenarios []ScenarioSummary `json:"scenarios"`
	Runs      int               `json:"runs"`
	Failed    int               `json:"failed"`
	// Errors lists failed runs' messages in run-index order.
	Errors []string `json:"errors,omitempty"`
}

// Aggregate folds per-run results into per-scenario cross-seed
// summaries. Results are grouped by scenario in first-appearance
// (matrix expansion) order; within a scenario, metrics are sorted by
// name. Failed or skipped runs count toward Failed and contribute no
// metric observations.
func Aggregate(results []RunResult) *AggregateResult {
	agg := &AggregateResult{Runs: len(results)}
	type group struct {
		seeds    []int64
		runs     int
		failed   int
		summary  map[string]*stats.Summary
		minByKey map[string]float64
		maxByKey map[string]float64
	}
	var order []string
	groups := make(map[string]*group)

	for i := range results {
		r := &results[i]
		g := groups[r.Run.Scenario]
		if g == nil {
			g = &group{
				summary:  make(map[string]*stats.Summary),
				minByKey: make(map[string]float64),
				maxByKey: make(map[string]float64),
			}
			groups[r.Run.Scenario] = g
			order = append(order, r.Run.Scenario)
		}
		g.runs++
		g.seeds = append(g.seeds, r.Run.Seed)
		if !r.Ok() {
			g.failed++
			agg.Failed++
			if r.Err != nil {
				agg.Errors = append(agg.Errors, r.Err.Error())
			}
			continue
		}
		for name, v := range r.Metrics {
			s := g.summary[name]
			if s == nil {
				s = &stats.Summary{}
				g.summary[name] = s
			}
			s.Add(v)
		}
	}

	for _, scenario := range order {
		g := groups[scenario]
		ss := ScenarioSummary{
			Scenario: scenario,
			Seeds:    g.seeds,
			Runs:     g.runs,
			Failed:   g.failed,
		}
		names := make([]string, 0, len(g.summary))
		for name := range g.summary {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := g.summary[name]
			ci := s.CI95()
			if math.IsNaN(ci) {
				ci = 0
			}
			ss.Metrics = append(ss.Metrics, MetricSummary{
				Metric: name,
				N:      s.N(),
				Mean:   s.Mean(),
				StdDev: s.StdDev(),
				Min:    s.Min(),
				Max:    s.Max(),
				CI95:   ci,
				CILo:   s.Mean() - ci,
				CIHi:   s.Mean() + ci,
			})
		}
		agg.Scenarios = append(agg.Scenarios, ss)
	}
	return agg
}

// Scenario returns the named scenario summary, or nil.
func (a *AggregateResult) Scenario(name string) *ScenarioSummary {
	for i := range a.Scenarios {
		if a.Scenarios[i].Scenario == name {
			return &a.Scenarios[i]
		}
	}
	return nil
}

// Metric returns the named metric within a scenario summary, or nil.
func (s *ScenarioSummary) Metric(name string) *MetricSummary {
	for i := range s.Metrics {
		if s.Metrics[i].Metric == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// WriteJSON renders the aggregate as indented JSON.
func (a *AggregateResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteText renders the aggregate as an aligned mean ± CI table.
func (a *AggregateResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "sweep aggregate: %d runs, %d failed, %d scenarios\n",
		a.Runs, a.Failed, len(a.Scenarios))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, s := range a.Scenarios {
		fmt.Fprintf(tw, "\nscenario %s\t(%d seeds, %d failed)\t\t\n", s.Scenario, s.Runs, s.Failed)
		fmt.Fprintf(tw, "  metric\tmean ± 95%% CI\tstddev\t[min, max]\n")
		for _, m := range s.Metrics {
			fmt.Fprintf(tw, "  %s\t%.4g ± %.2g\t%.2g\t[%.4g, %.4g]\n",
				m.Metric, m.Mean, m.CI95, m.StdDev, m.Min, m.Max)
		}
	}
	tw.Flush()
	for _, e := range a.Errors {
		fmt.Fprintf(w, "error: %s\n", e)
	}
}
