package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"ethmeasure/internal/analysis"
)

func metricRun(index int, scenario string, seed int64, metrics analysis.KeyMetrics) RunResult {
	return RunResult{
		Run:     Run{Index: index, Scenario: scenario, Seed: seed},
		Metrics: metrics,
	}
}

func TestAggregateCrossSeedStats(t *testing.T) {
	results := []RunResult{
		metricRun(0, "base", 1, analysis.KeyMetrics{"m": 10}),
		metricRun(1, "base", 2, analysis.KeyMetrics{"m": 12}),
		metricRun(2, "base", 3, analysis.KeyMetrics{"m": 14}),
		metricRun(3, "base", 4, analysis.KeyMetrics{"m": 16}),
	}
	agg := Aggregate(results)
	if agg.Runs != 4 || agg.Failed != 0 || len(agg.Scenarios) != 1 {
		t.Fatalf("agg = %+v", agg)
	}
	m := agg.Scenario("base").Metric("m")
	if m == nil {
		t.Fatal("metric missing")
	}
	if m.N != 4 || m.Mean != 13 || m.Min != 10 || m.Max != 16 {
		t.Errorf("summary = %+v", m)
	}
	// stddev of {10,12,14,16} = sqrt(20/3); CI95 = t(3) * sd / 2.
	sd := math.Sqrt(20.0 / 3.0)
	if math.Abs(m.StdDev-sd) > 1e-12 {
		t.Errorf("stddev = %f, want %f", m.StdDev, sd)
	}
	wantCI := 3.182 * sd / 2
	if math.Abs(m.CI95-wantCI) > 1e-9 {
		t.Errorf("ci95 = %f, want %f", m.CI95, wantCI)
	}
	if math.Abs(m.CILo-(13-wantCI)) > 1e-9 || math.Abs(m.CIHi-(13+wantCI)) > 1e-9 {
		t.Errorf("ci bounds = [%f, %f]", m.CILo, m.CIHi)
	}
}

func TestAggregateGroupsByScenarioInFirstAppearanceOrder(t *testing.T) {
	results := []RunResult{
		metricRun(0, "nodes=60", 1, analysis.KeyMetrics{"m": 1}),
		metricRun(1, "nodes=60", 2, analysis.KeyMetrics{"m": 3}),
		metricRun(2, "nodes=120", 1, analysis.KeyMetrics{"m": 5}),
		metricRun(3, "nodes=120", 2, analysis.KeyMetrics{"m": 7}),
	}
	agg := Aggregate(results)
	if len(agg.Scenarios) != 2 {
		t.Fatalf("scenarios = %d", len(agg.Scenarios))
	}
	if agg.Scenarios[0].Scenario != "nodes=60" || agg.Scenarios[1].Scenario != "nodes=120" {
		t.Errorf("scenario order = %q, %q", agg.Scenarios[0].Scenario, agg.Scenarios[1].Scenario)
	}
	if got := agg.Scenario("nodes=120").Metric("m").Mean; got != 6 {
		t.Errorf("nodes=120 mean = %f", got)
	}
	if s := agg.Scenario("nodes=60"); len(s.Seeds) != 2 || s.Seeds[0] != 1 {
		t.Errorf("seeds = %v", s.Seeds)
	}
}

func TestAggregateCountsFailuresAndSkipsTheirMetrics(t *testing.T) {
	failed := metricRun(1, "base", 2, nil)
	failed.Err = errors.New("boom")
	results := []RunResult{
		metricRun(0, "base", 1, analysis.KeyMetrics{"m": 10}),
		failed,
		metricRun(2, "base", 3, analysis.KeyMetrics{"m": 20}),
	}
	agg := Aggregate(results)
	if agg.Failed != 1 {
		t.Fatalf("failed = %d", agg.Failed)
	}
	if len(agg.Errors) != 1 || !strings.Contains(agg.Errors[0], "boom") {
		t.Errorf("errors = %v", agg.Errors)
	}
	m := agg.Scenario("base").Metric("m")
	if m.N != 2 || m.Mean != 15 {
		t.Errorf("failed run contaminated stats: %+v", m)
	}
}

func TestAggregateMetricsSortedAndJSONRoundTrips(t *testing.T) {
	results := []RunResult{
		metricRun(0, "base", 1, analysis.KeyMetrics{"z_last": 1, "a_first": 2, "m_mid": 3}),
		metricRun(1, "base", 2, analysis.KeyMetrics{"z_last": 2, "a_first": 3, "m_mid": 4}),
	}
	agg := Aggregate(results)
	metrics := agg.Scenarios[0].Metrics
	if metrics[0].Metric != "a_first" || metrics[1].Metric != "m_mid" || metrics[2].Metric != "z_last" {
		t.Errorf("metric order: %v, %v, %v", metrics[0].Metric, metrics[1].Metric, metrics[2].Metric)
	}

	var buf bytes.Buffer
	if err := agg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded AggregateResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Runs != 2 || len(decoded.Scenarios) != 1 || len(decoded.Scenarios[0].Metrics) != 3 {
		t.Errorf("round trip lost data: %+v", decoded)
	}
}

func TestAggregateSingleObservationHasZeroCI(t *testing.T) {
	agg := Aggregate([]RunResult{metricRun(0, "base", 1, analysis.KeyMetrics{"m": 5})})
	m := agg.Scenario("base").Metric("m")
	if m.CI95 != 0 || m.StdDev != 0 || m.Mean != 5 {
		t.Errorf("single-run summary = %+v", m)
	}
}

func TestWriteTextRendersEveryScenario(t *testing.T) {
	results := []RunResult{
		metricRun(0, "nodes=60", 1, analysis.KeyMetrics{"fork_rate": 0.05}),
		metricRun(1, "nodes=120", 1, analysis.KeyMetrics{"fork_rate": 0.07}),
	}
	var buf bytes.Buffer
	Aggregate(results).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"nodes=60", "nodes=120", "fork_rate", "2 runs"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
