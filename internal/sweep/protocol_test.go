package sweep

import (
	"context"
	"testing"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/core"
)

// protocolSweepBase is a small propagation-only campaign for the
// cross-protocol sweep tests.
func protocolSweepBase() core.Config {
	cfg := core.QuickConfig()
	cfg.Duration = 10 * time.Minute
	cfg.NumNodes = 60
	cfg.OutDegree = 4
	cfg.EnableTxWorkload = false
	cfg.RetainRecords = false
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > 20 {
			cfg.Vantages[i].Peers = 20
		}
	}
	return cfg
}

func TestProtocolsAxisValidation(t *testing.T) {
	if _, err := Protocols("ethereum", "tendermint"); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := Protocols("ghost-inclusive:decay=2"); err == nil {
		t.Error("invalid parameter accepted")
	}
	ax, err := Protocols("ethereum", "bitcoin", "ghost-inclusive:depth=8")
	if err != nil {
		t.Fatal(err)
	}
	if len(ax.Variants) != 3 || ax.Name != "protocol" {
		t.Fatalf("axis = %+v", ax)
	}
	if ax.Variants[2].Name != "ghost-inclusive:depth=8" {
		t.Fatalf("variant name = %q (want the canonical spec)", ax.Variants[2].Name)
	}
}

// TestProtocolSweepAggregates drives the acceptance shape of
// `ethsweep -protocols "ethereum;bitcoin"`: per-protocol cross-seed
// aggregates, with the bitcoin variant free of uncle metrics and the
// two variants keeping separate fork-resolution profiles.
func TestProtocolSweepAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	axis, err := Protocols("ethereum", "bitcoin")
	if err != nil {
		t.Fatal(err)
	}
	matrix := &Matrix{
		Base:  protocolSweepBase(),
		Seeds: Seeds(1, 2),
		Axes:  []Axis{axis},
	}
	agg, _, err := Sweep(context.Background(), matrix, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Failed != 0 {
		t.Fatalf("%d of %d runs failed: %v", agg.Failed, agg.Runs, agg.Errors)
	}
	byScenario := make(map[string]map[string]MetricSummary)
	for _, sc := range agg.Scenarios {
		metrics := make(map[string]MetricSummary)
		for _, ms := range sc.Metrics {
			metrics[ms.Metric] = ms
		}
		byScenario[sc.Scenario] = metrics
	}
	eth, ok := byScenario["protocol=ethereum"]
	if !ok {
		t.Fatalf("no ethereum aggregate; scenarios: %v", scenarioNames(agg))
	}
	btc, ok := byScenario["protocol=bitcoin"]
	if !ok {
		t.Fatalf("no bitcoin aggregate; scenarios: %v", scenarioNames(agg))
	}
	// Protocol-conditional metrics: the uncle share exists only under
	// reference-paying rules.
	if _, ok := eth[analysis.MetricForkUncleShare]; !ok {
		t.Error("ethereum aggregate lacks the uncle-share metric")
	}
	if _, ok := btc[analysis.MetricForkUncleShare]; ok {
		t.Error("bitcoin aggregate carries the uncle-share metric")
	}
	// Both profiles report a fork rate, aggregated per protocol.
	ethForks, ok := eth[analysis.MetricForkRate]
	if !ok || ethForks.N != 2 {
		t.Fatalf("ethereum fork-rate summary = %+v", ethForks)
	}
	btcForks, ok := btc[analysis.MetricForkRate]
	if !ok || btcForks.N != 2 {
		t.Fatalf("bitcoin fork-rate summary = %+v", btcForks)
	}
	// Bitcoin wastes every fork loser; ethereum recycles most as
	// uncles, so the reward-wasted-share profiles must differ.
	ethWaste := eth[analysis.MetricRewardWastedShare]
	btcWaste := btc[analysis.MetricRewardWastedShare]
	if btcWaste.Mean <= ethWaste.Mean {
		t.Errorf("bitcoin wasted share %.4f not above ethereum's %.4f", btcWaste.Mean, ethWaste.Mean)
	}
}

func scenarioNames(agg *AggregateResult) []string {
	out := make([]string, 0, len(agg.Scenarios))
	for _, sc := range agg.Scenarios {
		out = append(out, sc.Scenario)
	}
	return out
}
