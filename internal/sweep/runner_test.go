package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"ethmeasure/internal/analysis"
	"ethmeasure/internal/core"
)

// testConfig returns a campaign small enough that a sweep of a dozen
// runs stays fast even under the race detector.
func testConfig() core.Config {
	cfg := core.QuickConfig()
	cfg.Duration = 90 * time.Second
	if testing.Short() {
		cfg.Duration = time.Minute
	}
	cfg.NumNodes = 45
	cfg.OutDegree = 5
	peerCap := 16
	if raceEnabled {
		cfg.Duration = 25 * time.Second
		cfg.NumNodes = 24
		cfg.OutDegree = 4
		peerCap = 8
	}
	for i := range cfg.Vantages {
		if cfg.Vantages[i].Peers > peerCap {
			cfg.Vantages[i].Peers = peerCap
		}
	}
	cfg.EnableTxWorkload = false
	return cfg
}

func metricsEqual(a, b analysis.KeyMetrics) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// TestParallelMatchesSerialAggregate is the determinism contract at
// sweep level: executing the same matrix with one worker and with many
// must produce byte-identical aggregates.
func TestParallelMatchesSerialAggregate(t *testing.T) {
	seeds := 3
	if testing.Short() || raceEnabled {
		seeds = 2
	}
	matrix := func() *Matrix {
		return &Matrix{
			Base:  testConfig(),
			Seeds: Seeds(1, seeds),
			Axes:  []Axis{Discovery(false, true)},
		}
	}

	serial, err := (&Runner{Workers: 1}).Run(context.Background(), matrix())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 8}).Run(context.Background(), matrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].Ok() || !parallel[i].Ok() {
			t.Fatalf("run %d failed: serial=%v parallel=%v", i, serial[i].Err, parallel[i].Err)
		}
		if !metricsEqual(serial[i].Metrics, parallel[i].Metrics) {
			t.Errorf("run %d metrics differ:\nserial:   %v\nparallel: %v",
				i, serial[i].Metrics, parallel[i].Metrics)
		}
		if serial[i].Stats.Events != parallel[i].Stats.Events {
			t.Errorf("run %d event counts differ: %d vs %d",
				i, serial[i].Stats.Events, parallel[i].Stats.Events)
		}
	}

	var a, b bytes.Buffer
	if err := Aggregate(serial).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Aggregate(parallel).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("aggregates not byte-identical:\nserial:   %s\nparallel: %s", a.String(), b.String())
	}
}

// TestOversubscribedWorkersMatchSerial pushes the worker count well
// past GOMAXPROCS — viable now that each run streams its records
// through the bounded-memory pipeline instead of retaining them — and
// requires byte-identical aggregates against a serial execution.
func TestOversubscribedWorkersMatchSerial(t *testing.T) {
	matrix := func() *Matrix {
		return &Matrix{
			Base:  testConfig(),
			Seeds: Seeds(5, 2),
			Axes:  []Axis{Discovery(false, true)},
		}
	}
	serial, err := (&Runner{Workers: 1}).Run(context.Background(), matrix())
	if err != nil {
		t.Fatal(err)
	}
	over, err := (&Runner{Workers: 4 * DefaultWorkers()}).Run(context.Background(), matrix())
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := Aggregate(serial).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Aggregate(over).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("oversubscribed aggregate diverged:\nserial: %s\nover:   %s", a.String(), b.String())
	}
}

// TestRunnerBoundedMemoryDefault verifies the memory contract: runs
// execute bounded by default (no retained records even with
// KeepResults), and RetainRecords restores the raw dataset.
func TestRunnerBoundedMemoryDefault(t *testing.T) {
	m := &Matrix{Base: testConfig(), Seeds: Seeds(9, 1)}

	bounded, err := (&Runner{Workers: 1, KeepResults: true}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !bounded[0].Ok() || bounded[0].Results == nil {
		t.Fatal("run failed or results dropped")
	}
	if bounded[0].Results.Dataset.Blocks != nil {
		t.Error("bounded-by-default run retained records")
	}

	retained, err := (&Runner{Workers: 1, KeepResults: true, RetainRecords: true}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if retained[0].Results.Dataset.Blocks == nil {
		t.Error("RetainRecords run lost its records")
	}
	if !metricsEqual(bounded[0].Metrics, retained[0].Metrics) {
		t.Error("retention mode changed metrics")
	}
}

// TestRunnerConcurrentCampaignsNoLeakage drives >= 8 campaigns
// concurrently (one worker each), twice, and spot-checks against
// serial executions of the same configs: any shared state between
// engine instances — RNG streams, recorders, registries — would show
// up as metrics diverging between the two differently-interleaved
// parallel executions or from the serial references. Run with -race
// this also proves the runner itself adds no data races.
func TestRunnerConcurrentCampaignsNoLeakage(t *testing.T) {
	m := &Matrix{Base: testConfig(), Seeds: Seeds(1, 8)}
	first, err := (&Runner{Workers: 8}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}

	distinct := make(map[string]bool)
	for i := range first {
		if !first[i].Ok() {
			t.Fatalf("run %d failed: %v", i, first[i].Err)
		}
		distinct[formatMetrics(first[i].Metrics)] = true
	}

	// A second, differently-interleaved parallel execution must
	// reproduce the first exactly. Skipped under the race detector
	// (instrumentation makes it very slow and adds nothing there —
	// the first execution already exposes races).
	if !raceEnabled {
		second, err := (&Runner{Workers: 8}).Run(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if !second[i].Ok() {
				t.Fatalf("second run %d failed: %v", i, second[i].Err)
			}
			if !metricsEqual(first[i].Metrics, second[i].Metrics) {
				t.Errorf("seed %d: metrics differ across parallel executions:\nfirst:  %v\nsecond: %v",
					first[i].Run.Seed, first[i].Metrics, second[i].Metrics)
			}
			if first[i].Stats.Events != second[i].Stats.Events {
				t.Errorf("seed %d: event counts differ: %d vs %d",
					first[i].Run.Seed, first[i].Stats.Events, second[i].Stats.Events)
			}
		}
	}
	// Different seeds must actually explore different outcomes —
	// identical metrics across all seeds would indicate the seed is
	// not reaching the engines.
	if len(distinct) < 2 {
		t.Error("all 8 seeds produced identical metrics (suspicious)")
	}

	// Spot-check two runs against fully serial references.
	for _, i := range []int{0, len(first) - 1} {
		ref, err := runCampaign(first[i].Run.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !metricsEqual(first[i].Metrics, ref.KeyMetrics()) {
			t.Errorf("seed %d: concurrent metrics diverge from serial reference:\nconcurrent: %v\nserial:     %v",
				first[i].Run.Seed, first[i].Metrics, ref.KeyMetrics())
		}
		if first[i].Stats.Events != ref.Stats.Events {
			t.Errorf("seed %d: event count %d != serial %d",
				first[i].Run.Seed, first[i].Stats.Events, ref.Stats.Events)
		}
	}
}

func formatMetrics(m analysis.KeyMetrics) string {
	var sb strings.Builder
	for _, name := range m.Names() {
		fmt.Fprintf(&sb, "%s=%x;", name, math.Float64bits(m[name]))
	}
	return sb.String()
}

// TestRunnerCancellationMidFlight cancels a sweep after the first two
// results: pending runs must be marked with the context error, the
// call must surface context.Canceled, and completed runs must still
// carry valid, uncorrupted metrics.
func TestRunnerCancellationMidFlight(t *testing.T) {
	m := &Matrix{Base: testConfig(), Seeds: Seeds(1, 10)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var once sync.Once
	runner := &Runner{
		Workers: 2,
		OnResult: func(done, total int, r *RunResult) {
			if done >= 2 {
				once.Do(cancel)
			}
		},
	}
	results, err := runner.Run(ctx, m)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 10 {
		t.Fatalf("results = %d, want full slate of 10", len(results))
	}
	completed, skipped := 0, 0
	for i := range results {
		switch {
		case results[i].Ok():
			completed++
			if results[i].Stats.Events == 0 {
				t.Errorf("completed run %d carries no stats", i)
			}
		case errors.Is(results[i].Err, context.Canceled):
			skipped++
			if results[i].Metrics != nil {
				t.Errorf("skipped run %d carries metrics", i)
			}
			if results[i].Run.Seed != int64(i+1) {
				t.Errorf("skipped run %d lost its identity: %+v", i, results[i].Run)
			}
		default:
			t.Errorf("run %d in unexpected state: err=%v", i, results[i].Err)
		}
	}
	if completed < 2 {
		t.Errorf("completed = %d, want >= 2", completed)
	}
	if skipped == 0 {
		t.Error("cancellation mid-flight skipped nothing — cancel had no effect")
	}
}

// TestRunnerPanicIsolation: a panicking run must not take down the
// sweep; its slot records the panic and the other runs complete.
func TestRunnerPanicIsolation(t *testing.T) {
	fake := func(seed int64) *core.Results {
		return &core.Results{
			Propagation: &analysis.PropagationResult{Blocks: 1, MedianMs: float64(seed)},
		}
	}
	runner := &Runner{
		Workers: 4,
		runFn: func(cfg core.Config) (*core.Results, error) {
			if cfg.Seed == 3 {
				panic("kaboom")
			}
			if cfg.Seed == 4 {
				return nil, errors.New("plain failure")
			}
			return fake(cfg.Seed), nil
		},
	}
	m := &Matrix{Base: testConfig(), Seeds: Seeds(1, 6)}
	results, err := runner.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		switch results[i].Run.Seed {
		case 3:
			if results[i].Err == nil || !strings.Contains(results[i].Err.Error(), "panicked") {
				t.Errorf("panic not captured: %v", results[i].Err)
			}
			if !strings.Contains(results[i].Err.Error(), "kaboom") {
				t.Errorf("panic value lost: %v", results[i].Err)
			}
		case 4:
			if results[i].Err == nil || !strings.Contains(results[i].Err.Error(), "plain failure") {
				t.Errorf("error not propagated: %v", results[i].Err)
			}
		default:
			if !results[i].Ok() {
				t.Errorf("healthy run %d failed: %v", i, results[i].Err)
			}
			if got := results[i].Metrics[analysis.MetricPropMedianMs]; got != float64(results[i].Run.Seed) {
				t.Errorf("run %d metrics = %v", i, results[i].Metrics)
			}
		}
	}
	agg := Aggregate(results)
	if agg.Failed != 2 {
		t.Errorf("aggregate failed = %d, want 2", agg.Failed)
	}
	if len(agg.Errors) != 2 {
		t.Errorf("aggregate errors = %v", agg.Errors)
	}
}

// TestRunnerProgressReporting: done counts increase monotonically to
// the total, and callbacks are serialized (the mutation of seen below
// would trip -race otherwise).
func TestRunnerProgressReporting(t *testing.T) {
	var calls []int
	runner := &Runner{
		Workers: 4,
		runFn: func(cfg core.Config) (*core.Results, error) {
			return &core.Results{
				Propagation: &analysis.PropagationResult{Blocks: 1, MedianMs: 1},
			}, nil
		},
		OnResult: func(done, total int, r *RunResult) {
			if total != 6 {
				t.Errorf("total = %d", total)
			}
			calls = append(calls, done)
		},
	}
	m := &Matrix{Base: testConfig(), Seeds: Seeds(1, 6)}
	if _, err := runner.Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 6 {
		t.Fatalf("callbacks = %d", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("done sequence = %v", calls)
		}
	}
}

// TestSweepConvenience exercises the one-call wrapper end to end on a
// tiny real matrix.
func TestSweepConvenience(t *testing.T) {
	base := testConfig()
	// Enough virtual time that the headline metrics are guaranteed to
	// materialize regardless of the race-mode shrink above.
	base.Duration = 90 * time.Second
	m := &Matrix{Base: base, Seeds: Seeds(1, 2)}
	agg, results, err := Sweep(context.Background(), m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || agg.Runs != 2 || agg.Failed != 0 {
		t.Fatalf("agg = %+v", agg)
	}
	s := agg.Scenario("base")
	if s == nil {
		t.Fatal("base scenario missing")
	}
	if m := s.Metric(analysis.MetricPropMedianMs); m == nil || m.N != 2 || m.Mean <= 0 {
		t.Errorf("propagation summary = %+v", m)
	}
	if m := s.Metric(analysis.MetricForkMainShare); m == nil || m.Mean <= 0.5 {
		t.Errorf("fork main share = %+v", m)
	}
}

// TestRunnerDefaultsWorkers ensures a zero-value runner picks a sane
// worker count and still completes.
func TestRunnerDefaultsWorkers(t *testing.T) {
	runner := &Runner{
		runFn: func(cfg core.Config) (*core.Results, error) {
			return &core.Results{
				Propagation: &analysis.PropagationResult{Blocks: 1, MedianMs: 1},
			}, nil
		},
	}
	m := &Matrix{Base: testConfig(), Seeds: Seeds(1, 3)}
	results, err := runner.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if !results[i].Ok() {
			t.Fatalf("run %d: %v", i, results[i].Err)
		}
	}
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers < 1")
	}
}

func TestRunnerResumesFromCompleted(t *testing.T) {
	stub := func(cfg core.Config) (*core.Results, error) {
		return &core.Results{
			Propagation: &analysis.PropagationResult{Blocks: 1, MedianMs: float64(cfg.Seed)},
		}, nil
	}
	m := &Matrix{Base: testConfig(), Seeds: Seeds(1, 6)}

	// Reference: the full sweep, uninterrupted.
	full := &Runner{Workers: 2, runFn: stub}
	want, err := full.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}

	// Resumed: runs 0, 2 and 3 completed before the "crash"; one failed
	// slot rides along and must be re-executed, not reused.
	completed := map[int]RunResult{
		0: want[0],
		2: want[2],
		3: want[3],
		4: {Run: want[4].Run, Err: errors.New("crashed mid-run")},
	}
	var reran []int
	var mu sync.Mutex
	resumed := &Runner{
		Workers:   2,
		Completed: completed,
		runFn: func(cfg core.Config) (*core.Results, error) {
			mu.Lock()
			reran = append(reran, int(cfg.Seed))
			mu.Unlock()
			return stub(cfg)
		},
		OnResult: func(done, total int, r *RunResult) {
			if total != 6 {
				t.Errorf("total = %d", total)
			}
		},
	}
	got, err := resumed.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("results = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Run.Index != want[i].Run.Index || !metricsEqual(got[i].Metrics, want[i].Metrics) {
			t.Errorf("slot %d differs after resume", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reran) != 3 {
		t.Fatalf("re-executed %d runs (%v), want 3 (indices 1, 4, 5)", len(reran), reran)
	}
	for _, seed := range reran {
		if idx := seed - 1; idx != 1 && idx != 4 && idx != 5 {
			t.Errorf("re-executed preserved run with seed %d", seed)
		}
	}

	// Aggregates over restored and uninterrupted results match exactly.
	aggWant := Aggregate(want)
	aggGot := Aggregate(got)
	var bufW, bufG bytes.Buffer
	if err := aggWant.WriteJSON(&bufW); err != nil {
		t.Fatal(err)
	}
	if err := aggGot.WriteJSON(&bufG); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufW.Bytes(), bufG.Bytes()) {
		t.Error("aggregate JSON differs between resumed and uninterrupted sweep")
	}
}
