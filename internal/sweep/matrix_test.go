package sweep

import (
	"testing"
	"time"

	"ethmeasure/internal/core"
)

func TestSeeds(t *testing.T) {
	got := Seeds(10, 3)
	want := []int64{10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("Seeds(10,3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds(10,3) = %v, want %v", got, want)
		}
	}
}

func TestMatrixPureSeedSweep(t *testing.T) {
	m := &Matrix{Base: core.QuickConfig(), Seeds: Seeds(1, 4)}
	runs, err := m.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 || m.NumRuns() != 4 {
		t.Fatalf("expected 4 runs, got %d (NumRuns %d)", len(runs), m.NumRuns())
	}
	for i, r := range runs {
		if r.Index != i {
			t.Errorf("run %d has index %d", i, r.Index)
		}
		if r.Scenario != "base" {
			t.Errorf("run %d scenario = %q, want base", i, r.Scenario)
		}
		if r.Seed != int64(i+1) || r.Config.Seed != r.Seed {
			t.Errorf("run %d seed = %d (config %d)", i, r.Seed, r.Config.Seed)
		}
	}
}

func TestMatrixCartesianExpansion(t *testing.T) {
	m := &Matrix{
		Base:  core.QuickConfig(),
		Seeds: Seeds(1, 2),
		Axes: []Axis{
			Nodes(60, 120),
			Discovery(false, true),
		},
	}
	runs, err := m.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 8 {
		t.Fatalf("2 nodes x 2 discovery x 2 seeds = 8, got %d", len(runs))
	}
	// First axis varies slowest, seeds fastest.
	wantScenarios := []string{
		"nodes=60,discovery=off", "nodes=60,discovery=off",
		"nodes=60,discovery=on", "nodes=60,discovery=on",
		"nodes=120,discovery=off", "nodes=120,discovery=off",
		"nodes=120,discovery=on", "nodes=120,discovery=on",
	}
	for i, r := range runs {
		if r.Scenario != wantScenarios[i] {
			t.Errorf("run %d scenario = %q, want %q", i, r.Scenario, wantScenarios[i])
		}
	}
	if runs[0].Config.NumNodes != 60 || runs[4].Config.NumNodes != 120 {
		t.Error("nodes axis not applied")
	}
	if runs[0].Config.UseDiscovery || !runs[2].Config.UseDiscovery {
		t.Error("discovery axis not applied")
	}
	// The base config must stay untouched.
	if m.Base.NumNodes != core.QuickConfig().NumNodes {
		t.Error("matrix expansion mutated the base config")
	}
}

func TestMatrixValidatesExpandedConfigs(t *testing.T) {
	m := &Matrix{
		Base: core.QuickConfig(),
		Axes: []Axis{Nodes(5)}, // below the 10-node minimum
	}
	if _, err := m.Runs(); err == nil {
		t.Fatal("invalid expanded config accepted")
	}
}

func TestMatrixRejectsMalformedAxes(t *testing.T) {
	base := core.QuickConfig()
	cases := []Matrix{
		{Base: base, Axes: []Axis{{Name: "", Variants: Nodes(60).Variants}}},
		{Base: base, Axes: []Axis{{Name: "empty"}}},
		{Base: base, Axes: []Axis{Nodes(60, 60)}},                                 // duplicate variant names
		{Base: base, Axes: []Axis{{Name: "x", Variants: []Variant{{Name: "a"}}}}}, // nil Apply
	}
	for i := range cases {
		if _, err := cases[i].Runs(); err == nil {
			t.Errorf("case %d: malformed axis accepted", i)
		}
	}
}

func TestPoolSplits(t *testing.T) {
	ax, err := PoolSplits(PoolSplitPaper, PoolSplitUniform, PoolSplitEqual, PoolSplitMajority)
	if err != nil {
		t.Fatal(err)
	}
	if len(ax.Variants) != 4 {
		t.Fatalf("variants = %d", len(ax.Variants))
	}
	sum := func(cfg *core.Config) float64 {
		total := 0.0
		for _, p := range cfg.Pools {
			total += p.Power
		}
		return total
	}
	for _, v := range ax.Variants {
		cfg := core.QuickConfig()
		v.Apply(&cfg)
		if s := sum(&cfg); s < 0.99 || s > 1.01 {
			t.Errorf("split %s: powers sum to %f", v.Name, s)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("split %s: %v", v.Name, err)
		}
	}

	cfg := core.QuickConfig()
	ax.Variants[3].Apply(&cfg) // majority
	if cfg.Pools[0].Power != 0.51 {
		t.Errorf("majority split top power = %f", cfg.Pools[0].Power)
	}
	cfg = core.QuickConfig()
	ax.Variants[2].Apply(&cfg) // equal
	if cfg.Pools[0].Power != cfg.Pools[len(cfg.Pools)-1].Power {
		t.Error("equal split powers differ")
	}

	if _, err := PoolSplits("bogus"); err == nil {
		t.Fatal("unknown pool split accepted")
	}
}

func TestChurnProfiles(t *testing.T) {
	ax, err := ChurnProfiles(ChurnNone, ChurnDefault, ChurnHeavy)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]core.Config, len(ax.Variants))
	for i, v := range ax.Variants {
		cfgs[i] = core.QuickConfig()
		v.Apply(&cfgs[i])
	}
	if cfgs[0].Churn.Interval != 0 {
		t.Error("none profile enables churn")
	}
	if cfgs[1].Churn.Interval == 0 {
		t.Error("default profile disables churn")
	}
	if cfgs[2].Churn.Interval*4 != cfgs[1].Churn.Interval {
		t.Errorf("heavy interval %v not 4x faster than default %v",
			cfgs[2].Churn.Interval, cfgs[1].Churn.Interval)
	}
	if _, err := ChurnProfiles("bogus"); err == nil {
		t.Fatal("unknown churn profile accepted")
	}
}

func TestTxRatesRederivesCapacity(t *testing.T) {
	ax := TxRates(0.5, 2)
	a, b := core.QuickConfig(), core.QuickConfig()
	ax.Variants[0].Apply(&a)
	ax.Variants[1].Apply(&b)
	if a.TxGen.Rate != 0.5 || b.TxGen.Rate != 2 {
		t.Fatal("rates not applied")
	}
	if b.Mining.BlockCapacity <= a.Mining.BlockCapacity {
		t.Errorf("capacity did not scale with rate: %d vs %d",
			a.Mining.BlockCapacity, b.Mining.BlockCapacity)
	}
	if a.TxGen.MempoolFloor != a.Mining.BlockCapacity*3/2 {
		t.Error("mempool floor not re-derived")
	}
}

func TestDurationsAxis(t *testing.T) {
	ax := Durations(10*time.Minute, time.Hour)
	if ax.Variants[0].Name != "10m0s" || ax.Variants[1].Name != "1h0m0s" {
		t.Errorf("variant names = %q, %q", ax.Variants[0].Name, ax.Variants[1].Name)
	}
	cfg := core.QuickConfig()
	ax.Variants[1].Apply(&cfg)
	if cfg.Duration != time.Hour {
		t.Error("duration not applied")
	}
}

func TestScenariosAxis(t *testing.T) {
	ax, err := Scenarios("none", "partition:a=EA,start=2m,dur=2m", "relayoverlay")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "scenario" || len(ax.Variants) != 3 {
		t.Fatalf("axis = %+v", ax)
	}
	if ax.Variants[0].Name != ScenarioVariantNone {
		t.Errorf("variant 0 = %q", ax.Variants[0].Name)
	}
	if ax.Variants[1].Name != "partition:a=EA,dur=2m,start=2m" {
		t.Errorf("variant 1 = %q (want canonical spec)", ax.Variants[1].Name)
	}

	base := core.QuickConfig()
	none, part := base, base
	ax.Variants[0].Apply(&none)
	ax.Variants[1].Apply(&part)
	if len(none.Scenarios) != 0 {
		t.Error("'none' variant composed a scenario")
	}
	if len(part.Scenarios) != 1 || part.Scenarios[0].Name != "partition" {
		t.Errorf("partition variant scenarios = %+v", part.Scenarios)
	}
	if len(base.Scenarios) != 0 {
		t.Error("Apply mutated the shared base config")
	}
}

func TestScenariosAxisValidatesSpecs(t *testing.T) {
	if _, err := Scenarios("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Scenarios("partition"); err == nil {
		t.Fatal("partition without region set accepted")
	}
	if _, err := Scenarios("churn:interval=banana"); err == nil {
		t.Fatal("malformed parameter accepted")
	}
}

func TestScenarioAxisExpandsIntoMatrix(t *testing.T) {
	ax, err := Scenarios("none", "eclipse:node=3")
	if err != nil {
		t.Fatal(err)
	}
	m := &Matrix{Base: core.QuickConfig(), Seeds: Seeds(1, 2), Axes: []Axis{ax}}
	runs, err := m.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(runs))
	}
	if runs[0].Scenario != "scenario=none" || runs[2].Scenario != "scenario=eclipse:node=3" {
		t.Errorf("scenario labels = %q, %q", runs[0].Scenario, runs[2].Scenario)
	}
	if len(runs[2].Config.Scenarios) != 1 {
		t.Error("expanded run lost its scenario spec")
	}
}
