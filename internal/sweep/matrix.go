package sweep

import (
	"fmt"
	"strings"
	"time"

	"ethmeasure/internal/consensus"
	"ethmeasure/internal/core"
	"ethmeasure/internal/mining"
	"ethmeasure/internal/scenario"
)

// Variant is one setting of an axis: a label plus the mutation it
// applies to a run's configuration.
type Variant struct {
	// Name labels the variant in scenario strings ("500", "on", ...).
	Name string
	// Apply mutates one run's config. It runs on a private copy, after
	// the base config and any earlier axes, before the seed is set.
	Apply func(*core.Config)
}

// Axis is one dimension of the sweep matrix.
type Axis struct {
	Name     string
	Variants []Variant
}

// Matrix expands a base configuration across scenario axes and seeds.
// Every combination of one variant per axis forms a scenario; every
// scenario runs once per seed. Axes apply in declaration order, so a
// later axis can override an earlier one's effect.
type Matrix struct {
	// Base is the starting configuration for every run.
	Base core.Config
	// Seeds are the per-scenario repetitions. Empty means [Base.Seed].
	Seeds []int64
	// Axes are the scenario dimensions. Empty means the single "base"
	// scenario (a pure seed sweep).
	Axes []Axis
}

// Run is one fully-specified campaign within a sweep.
type Run struct {
	// Index is the run's position in matrix expansion order; it is the
	// stable identity that makes parallel and serial sweeps comparable.
	Index int
	// Scenario names the axis-variant combination ("nodes=500,discovery=on"),
	// or "base" for a pure seed sweep.
	Scenario string
	// Seed is the campaign seed (also set in Config).
	Seed int64
	// Config is the expanded configuration.
	Config core.Config
}

// Seeds returns n consecutive seeds starting at base — the common
// shape of a seed sweep.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, base+int64(i))
	}
	return out
}

// Runs expands the matrix into its flat run list: the cartesian
// product of all axes, seeds innermost. Every expanded configuration
// is validated up front so a sweep fails fast with the offending
// scenario named, rather than mid-flight on a worker.
func (m *Matrix) Runs() ([]Run, error) {
	for _, ax := range m.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("sweep: axis with empty name")
		}
		if len(ax.Variants) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no variants", ax.Name)
		}
		seen := make(map[string]bool, len(ax.Variants))
		for _, v := range ax.Variants {
			if v.Name == "" {
				return nil, fmt.Errorf("sweep: axis %q has a variant with an empty name", ax.Name)
			}
			if seen[v.Name] {
				return nil, fmt.Errorf("sweep: axis %q repeats variant %q", ax.Name, v.Name)
			}
			seen[v.Name] = true
			if v.Apply == nil {
				return nil, fmt.Errorf("sweep: axis %q variant %q has no Apply", ax.Name, v.Name)
			}
		}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{m.Base.Seed}
	}

	total := len(seeds)
	for _, ax := range m.Axes {
		total *= len(ax.Variants)
	}
	runs := make([]Run, 0, total)

	// choice[i] selects the current variant of axis i; odometer-style
	// iteration keeps expansion order stable and axes-major.
	choice := make([]int, len(m.Axes))
	for {
		var labels []string
		for i, ax := range m.Axes {
			labels = append(labels, ax.Name+"="+ax.Variants[choice[i]].Name)
		}
		scenario := "base"
		if len(labels) > 0 {
			scenario = strings.Join(labels, ",")
		}
		for _, seed := range seeds {
			cfg := m.Base
			for i, ax := range m.Axes {
				ax.Variants[choice[i]].Apply(&cfg)
			}
			cfg.Seed = seed
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("sweep: scenario %q seed %d: %w", scenario, seed, err)
			}
			runs = append(runs, Run{
				Index:    len(runs),
				Scenario: scenario,
				Seed:     seed,
				Config:   cfg,
			})
		}

		// Advance the odometer (last axis fastest).
		i := len(choice) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(m.Axes[i].Variants) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return runs, nil
}

// NumRuns returns the size of the expanded matrix without building it.
func (m *Matrix) NumRuns() int {
	n := len(m.Seeds)
	if n == 0 {
		n = 1
	}
	for _, ax := range m.Axes {
		n *= len(ax.Variants)
	}
	return n
}

// CustomAxis builds an axis from explicit variants.
func CustomAxis(name string, variants ...Variant) Axis {
	return Axis{Name: name, Variants: variants}
}

// Nodes varies the regular node count.
func Nodes(counts ...int) Axis {
	ax := Axis{Name: "nodes"}
	for _, n := range counts {
		n := n
		ax.Variants = append(ax.Variants, Variant{
			Name:  fmt.Sprintf("%d", n),
			Apply: func(cfg *core.Config) { cfg.NumNodes = n },
		})
	}
	return ax
}

// Discovery toggles the Kademlia-style discovery overlay against the
// plain random graph.
func Discovery(vals ...bool) Axis {
	ax := Axis{Name: "discovery"}
	for _, v := range vals {
		v := v
		name := "off"
		if v {
			name = "on"
		}
		ax.Variants = append(ax.Variants, Variant{
			Name:  name,
			Apply: func(cfg *core.Config) { cfg.UseDiscovery = v },
		})
	}
	return ax
}

// Durations varies the virtual campaign length.
func Durations(ds ...time.Duration) Axis {
	ax := Axis{Name: "duration"}
	for _, d := range ds {
		d := d
		ax.Variants = append(ax.Variants, Variant{
			Name:  d.String(),
			Apply: func(cfg *core.Config) { cfg.Duration = d },
		})
	}
	return ax
}

// TxRates varies the transaction workload rate, re-deriving the block
// capacity and mempool floor the way the presets do.
func TxRates(rates ...float64) Axis {
	ax := Axis{Name: "txrate"}
	for _, r := range rates {
		r := r
		ax.Variants = append(ax.Variants, Variant{
			Name: fmt.Sprintf("%g", r),
			Apply: func(cfg *core.Config) {
				cfg.TxGen.Rate = r
				core.ApplyCapacity(cfg)
			},
		})
	}
	return ax
}

// Pool hash-rate split variants accepted by PoolSplits.
const (
	// PoolSplitPaper is the paper's measured April-2019 population.
	PoolSplitPaper = "paper"
	// PoolSplitUniform keeps the paper's power shares but spreads every
	// pool's gateways across all regions (geography ablation).
	PoolSplitUniform = "uniform"
	// PoolSplitEqual levels the hash power equally across the paper's
	// pools (decentralization ablation: no dominant miner).
	PoolSplitEqual = "equal"
	// PoolSplitMajority concentrates 51% of the hash power in the top
	// pool, scaling the rest down proportionally (centralization
	// stress: the §III-D majority-miner scenario).
	PoolSplitMajority = "majority"
)

// PoolSplits varies the mining-pool population / hash-rate split.
// Accepted kinds: "paper", "uniform", "equal", "majority".
func PoolSplits(kinds ...string) (Axis, error) {
	ax := Axis{Name: "pools"}
	for _, kind := range kinds {
		pools, err := poolsFor(kind)
		if err != nil {
			return Axis{}, err
		}
		ax.Variants = append(ax.Variants, Variant{
			Name:  kind,
			Apply: func(cfg *core.Config) { cfg.Pools = pools },
		})
	}
	return ax, nil
}

func poolsFor(kind string) ([]mining.PoolSpec, error) {
	switch kind {
	case PoolSplitPaper:
		return mining.PaperPools(), nil
	case PoolSplitUniform:
		return mining.UniformGatewayPools(), nil
	case PoolSplitEqual:
		pools := mining.PaperPools()
		share := 1.0 / float64(len(pools))
		for i := range pools {
			pools[i].Power = share
		}
		return pools, nil
	case PoolSplitMajority:
		pools := mining.PaperPools()
		rest := 0.0
		for _, p := range pools[1:] {
			rest += p.Power
		}
		pools[0].Power = 0.51
		scale := 0.49 / rest
		for i := 1; i < len(pools); i++ {
			pools[i].Power *= scale
		}
		return pools, nil
	default:
		return nil, fmt.Errorf("sweep: unknown pool split %q (want paper|uniform|equal|majority)", kind)
	}
}

// ScenarioVariantNone is the Scenarios variant name meaning "no extra
// scenario" (the unmodified base configuration).
const ScenarioVariantNone = "none"

// Scenarios varies the composed intervention list: each variant is one
// scenario spec string ("partition:a=EA+SEA,dur=10m",
// "relayoverlay", ...) appended to the base config's Scenarios list,
// or "none" for the unmodified base. Specs are parsed and validated
// against the scenario registry up front, so a sweep fails fast on an
// unknown name or parameter.
func Scenarios(specs ...string) (Axis, error) {
	ax := Axis{Name: "scenario"}
	for _, raw := range specs {
		raw = strings.TrimSpace(raw)
		if raw == ScenarioVariantNone || raw == "base" {
			ax.Variants = append(ax.Variants, Variant{
				Name:  ScenarioVariantNone,
				Apply: func(*core.Config) {},
			})
			continue
		}
		spec, err := scenario.Parse(raw)
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: scenario axis: %w", err)
		}
		if err := scenario.Validate(spec); err != nil {
			return Axis{}, fmt.Errorf("sweep: scenario axis: %w", err)
		}
		ax.Variants = append(ax.Variants, Variant{
			Name: spec.String(),
			Apply: func(cfg *core.Config) {
				// Copy-on-append: the base config's slice is shared
				// across every expanded run.
				scenarios := make([]scenario.Spec, 0, len(cfg.Scenarios)+1)
				scenarios = append(scenarios, cfg.Scenarios...)
				cfg.Scenarios = append(scenarios, spec)
			},
		})
	}
	return ax, nil
}

// Protocols varies the consensus rule set: each variant is one
// protocol spec string ("ethereum", "bitcoin",
// "ghost-inclusive:depth=10", ...) installed as the run's
// core.Config.Protocol. Specs are parsed and validated against the
// consensus registry up front, so a sweep fails fast on an unknown
// name or parameter. Cross-protocol aggregates group per variant;
// protocol-conditional KeyMetrics (uncle shares) appear only in the
// variants whose protocol produces them.
func Protocols(specs ...string) (Axis, error) {
	ax := Axis{Name: "protocol"}
	for _, raw := range specs {
		spec, err := consensus.Parse(raw)
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: protocol axis: %w", err)
		}
		if err := consensus.Validate(spec); err != nil {
			return Axis{}, fmt.Errorf("sweep: protocol axis: %w", err)
		}
		ax.Variants = append(ax.Variants, Variant{
			Name:  spec.String(),
			Apply: func(cfg *core.Config) { cfg.Protocol = spec },
		})
	}
	return ax, nil
}

// Churn profile variants accepted by ChurnProfiles.
const (
	ChurnNone    = "none"
	ChurnDefault = "default"
	ChurnHeavy   = "heavy"
)

// ChurnProfiles varies node turnover. Accepted kinds: "none",
// "default" (the mild ablation profile), "heavy" (4x faster cycling).
func ChurnProfiles(kinds ...string) (Axis, error) {
	ax := Axis{Name: "churn"}
	for _, kind := range kinds {
		var cc core.ChurnConfig
		switch kind {
		case ChurnNone:
			// zero value: disabled
		case ChurnDefault:
			cc = core.DefaultChurnConfig()
		case ChurnHeavy:
			cc = core.DefaultChurnConfig()
			cc.Interval /= 4
		default:
			return Axis{}, fmt.Errorf("sweep: unknown churn profile %q (want none|default|heavy)", kind)
		}
		ax.Variants = append(ax.Variants, Variant{
			Name:  kind,
			Apply: func(cfg *core.Config) { cfg.Churn = cc },
		})
	}
	return ax, nil
}
