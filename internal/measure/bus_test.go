package measure

import (
	"testing"
	"time"
)

func TestBusFansOut(t *testing.T) {
	a, b := NewMemoryRecorder(), NewMemoryRecorder()
	bus := NewBus(a)
	bus.Attach(b)
	bus.Attach(nil) // must be ignored
	if bus.Consumers() != 2 {
		t.Fatalf("consumers = %d, want 2", bus.Consumers())
	}

	bus.RecordBlock(BlockRecord{Vantage: "NA", Hash: 5, Number: 10, Kind: "block"})
	bus.RecordTx(TxRecord{Vantage: "EA", Hash: 7, Sender: 1, Nonce: 2})
	bus.RecordBlock(BlockRecord{Vantage: "EA", Hash: 5, Number: 10, Kind: "announce"})

	for name, rec := range map[string]*MemoryRecorder{"a": a, "b": b} {
		if len(rec.Blocks) != 2 || len(rec.Txs) != 1 {
			t.Fatalf("%s: blocks=%d txs=%d, want 2/1", name, len(rec.Blocks), len(rec.Txs))
		}
	}
	// Consumers see identical streams in identical order.
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("block %d diverged: %+v vs %+v", i, a.Blocks[i], b.Blocks[i])
		}
	}
	if a.Txs[0] != b.Txs[0] {
		t.Fatal("tx records diverged")
	}
}

func TestBusEmptyDropsRecords(t *testing.T) {
	bus := NewBus()
	// Must not panic with zero consumers.
	bus.RecordBlock(BlockRecord{Vantage: "NA", Hash: 1})
	bus.RecordTx(TxRecord{Vantage: "NA", Hash: 2})
}

func TestVantageWritesThroughBus(t *testing.T) {
	rec := NewMemoryRecorder()
	bus := NewBus(rec)
	v := NewVantage("WE", ClockModel{P10ms: 1, P100ms: 1, MaxOff: time.Millisecond}, 1, bus)
	v.ObserveAnnounce(time.Second, 9, 101, 3)
	if len(rec.Blocks) != 1 || rec.Blocks[0].Kind != "announce" {
		t.Fatalf("bus-backed vantage records = %+v", rec.Blocks)
	}
}
