package measure

import (
	"math/rand"
	"testing"
	"time"

	"ethmeasure/internal/p2p"
	"ethmeasure/internal/types"
)

func TestClockModelDistribution(t *testing.T) {
	model := DefaultClockModel()
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	within10, within100, beyond := 0, 0, 0
	for i := 0; i < n; i++ {
		off := model.Sample(rng)
		mag := off
		if mag < 0 {
			mag = -mag
		}
		switch {
		case mag < 10*time.Millisecond:
			within10++
		case mag < 100*time.Millisecond:
			within100++
		default:
			beyond++
		}
		if mag > model.MaxOff {
			t.Fatalf("offset %v beyond max %v", off, model.MaxOff)
		}
	}
	// Paper §II: under 10ms in 90% of cases, under 100ms in 99%.
	if f := float64(within10) / n; f < 0.88 || f > 0.92 {
		t.Errorf("P(<10ms) = %.3f, want ≈0.90", f)
	}
	if f := float64(within10+within100) / n; f < 0.985 || f > 0.995 {
		t.Errorf("P(<100ms) = %.3f, want ≈0.99", f)
	}
	if beyond == 0 {
		t.Error("tail offsets never sampled")
	}
}

func TestClockModelSigns(t *testing.T) {
	model := DefaultClockModel()
	rng := rand.New(rand.NewSource(2))
	pos, neg := 0, 0
	for i := 0; i < 1000; i++ {
		if model.Sample(rng) >= 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Error("offsets must take both signs")
	}
}

func TestVantageOffsetConstantWithinWindow(t *testing.T) {
	v := NewVantage("EA", DefaultClockModel(), 1, NewMemoryRecorder())
	base := v.Offset(OffsetWindow / 2)
	for _, at := range []time.Duration{0, OffsetWindow / 4, OffsetWindow - 1} {
		if v.Offset(at) != base {
			t.Error("offset changed within one window")
		}
	}
	// Across many windows the offset must eventually vary.
	varied := false
	for w := int64(1); w < 100; w++ {
		if v.Offset(time.Duration(w)*OffsetWindow+1) != base {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("offset never resampled across windows")
	}
}

func TestVantageRecordsBlocks(t *testing.T) {
	rec := NewMemoryRecorder()
	v := NewVantage("NA", ClockModel{P10ms: 1, P100ms: 1, MaxOff: time.Millisecond}, 1, rec)
	b := &types.Block{
		Hash: 5, Number: 100, Miner: 2, ParentHash: 4,
		TxHashes: []types.Hash{1, 2}, Size: 700,
	}
	v.ObserveBlock(time.Second, b, types.NodeID(7), p2p.MsgFullBlock)
	if len(rec.Blocks) != 1 {
		t.Fatalf("blocks recorded = %d", len(rec.Blocks))
	}
	r := rec.Blocks[0]
	if r.Vantage != "NA" || r.Hash != 5 || r.Number != 100 || r.Miner != 2 ||
		r.From != 7 || r.Kind != "block" || r.NTxs != 2 || r.Size != 700 {
		t.Errorf("record = %+v", r)
	}
	// Local timestamp = simulation time + offset (first band: <10ms).
	delta := r.At - time.Second
	if delta < -10*time.Millisecond || delta > 10*time.Millisecond {
		t.Errorf("local time offset %v out of model bounds", delta)
	}

	v.ObserveAnnounce(2*time.Second, types.Hash(9), 101, types.NodeID(3))
	if len(rec.Blocks) != 2 || rec.Blocks[1].Kind != "announce" || rec.Blocks[1].Miner != 0 {
		t.Errorf("announce record = %+v", rec.Blocks[1])
	}
}

func TestVantageTxFirstObservationOnly(t *testing.T) {
	rec := NewMemoryRecorder()
	v := NewVantage("WE", ClockModel{P10ms: 1, P100ms: 1, MaxOff: time.Millisecond}, 1, rec)
	tx := &types.Transaction{Hash: 11, Sender: 3, Nonce: 4}
	v.ObserveTx(time.Second, tx, 1)
	v.ObserveTx(2*time.Second, tx, 2) // duplicate reception
	if len(rec.Txs) != 1 {
		t.Fatalf("tx records = %d, want first-only", len(rec.Txs))
	}
	r := rec.Txs[0]
	if r.Vantage != "WE" || r.Hash != 11 || r.Sender != 3 || r.Nonce != 4 || r.From != 1 {
		t.Errorf("tx record = %+v", r)
	}
	other := &types.Transaction{Hash: 12, Sender: 3, Nonce: 5}
	v.ObserveTx(3*time.Second, other, 2)
	if len(rec.Txs) != 2 {
		t.Error("distinct tx not recorded")
	}
}

func TestVantageDeterministicOffsets(t *testing.T) {
	a := NewVantage("X", DefaultClockModel(), 99, NewMemoryRecorder())
	b := NewVantage("X", DefaultClockModel(), 99, NewMemoryRecorder())
	for w := int64(0); w < 20; w++ {
		at := time.Duration(w) * OffsetWindow
		if a.Offset(at) != b.Offset(at) {
			t.Fatal("same-seed vantages diverged")
		}
	}
}

func TestPaperInfrastructure(t *testing.T) {
	specs := PaperInfrastructure()
	if len(specs) != 4 {
		t.Fatalf("got %d machines, want 4", len(specs))
	}
	locations := map[string]bool{}
	for _, s := range specs {
		locations[s.Location] = true
		if s.RAMGB <= 0 || s.BandwidthGbps < 8 {
			t.Errorf("spec %+v below paper Table I", s)
		}
	}
	for _, want := range []string{"NA", "EA", "WE", "CE"} {
		if !locations[want] {
			t.Errorf("missing vantage %s", want)
		}
	}
}
