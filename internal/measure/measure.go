// Package measure implements the paper's measurement infrastructure:
// instrumented nodes at geographic vantage points that log every
// inbound network message with a local timestamp, an NTP clock-offset
// model bounding timestamp accuracy, and the record schema the
// analysis pipeline consumes (paper §II).
package measure

import (
	"math/rand"
	"time"

	"ethmeasure/internal/hashset"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/types"
)

// BlockRecord is one logged block-related message reception.
type BlockRecord struct {
	Vantage string        `json:"v"`
	At      time.Duration `json:"t"` // local (offset-perturbed) time
	Hash    types.Hash    `json:"h"`
	Number  uint64        `json:"n"`
	Miner   types.PoolID  `json:"m,omitempty"` // 0 for announcements
	Parent  types.Hash    `json:"p,omitempty"`
	From    types.NodeID  `json:"f"`
	Kind    string        `json:"k"` // "block" | "announce" | "fetched"
	NTxs    int           `json:"x,omitempty"`
	Size    int           `json:"s,omitempty"`
}

// TxRecord is the first observation of a transaction at one vantage.
type TxRecord struct {
	Vantage string          `json:"v"`
	At      time.Duration   `json:"t"` // local (offset-perturbed) time
	Hash    types.Hash      `json:"h"`
	Sender  types.AccountID `json:"a"`
	Nonce   uint64          `json:"n"`
	From    types.NodeID    `json:"f"`
}

// Recorder receives measurement records. Implementations: in-memory
// (internal use, benchmarks) and JSONL (internal/logs).
type Recorder interface {
	RecordBlock(BlockRecord)
	RecordTx(TxRecord)
}

// Bus is a Recorder that fans every record out to its registered
// consumers, in attach order. It is the campaign's record pipeline
// spine: the vantages write to one bus, and the streaming analysis
// collector, the optional in-memory retainer (MemoryRecorder) and the
// optional JSONL spill writer all subscribe to it. A bus with no
// consumers drops records.
type Bus struct {
	consumers []Recorder
}

var _ Recorder = (*Bus)(nil)

// NewBus creates a bus over the given consumers.
func NewBus(consumers ...Recorder) *Bus {
	b := &Bus{}
	for _, c := range consumers {
		b.Attach(c)
	}
	return b
}

// Attach registers one more consumer. Attach before records flow: the
// bus offers no replay.
func (b *Bus) Attach(c Recorder) {
	if c != nil {
		b.consumers = append(b.consumers, c)
	}
}

// Consumers returns the number of attached consumers.
func (b *Bus) Consumers() int { return len(b.consumers) }

// RecordBlock fans a block record out to every consumer.
func (b *Bus) RecordBlock(r BlockRecord) {
	for _, c := range b.consumers {
		c.RecordBlock(r)
	}
}

// RecordTx fans a transaction record out to every consumer.
func (b *Bus) RecordTx(r TxRecord) {
	for _, c := range b.consumers {
		c.RecordTx(r)
	}
}

// MemoryRecorder accumulates records in memory.
type MemoryRecorder struct {
	Blocks []BlockRecord
	Txs    []TxRecord
}

// NewMemoryRecorder creates an empty in-memory recorder.
func NewMemoryRecorder() *MemoryRecorder { return &MemoryRecorder{} }

// RecordBlock appends a block record.
func (m *MemoryRecorder) RecordBlock(r BlockRecord) { m.Blocks = append(m.Blocks, r) }

// RecordTx appends a transaction record.
func (m *MemoryRecorder) RecordTx(r TxRecord) { m.Txs = append(m.Txs, r) }

// ClockModel samples NTP synchronization offsets. The paper (§II,
// citing Murta et al.) takes NTP offsets to be under 10 ms in 90% of
// cases and under 100 ms in 99% of cases; the residual 1% falls in
// (100 ms, 250 ms].
type ClockModel struct {
	P10ms  float64 // probability |offset| < 10ms
	P100ms float64 // probability |offset| < 100ms
	MaxOff time.Duration
}

// DefaultClockModel returns the paper-calibrated NTP offset model.
func DefaultClockModel() ClockModel {
	return ClockModel{P10ms: 0.90, P100ms: 0.99, MaxOff: 250 * time.Millisecond}
}

// Sample draws a signed clock offset for one machine.
func (c ClockModel) Sample(rng *rand.Rand) time.Duration {
	sign := time.Duration(1)
	if rng.Intn(2) == 0 {
		sign = -1
	}
	u := rng.Float64()
	var mag time.Duration
	switch {
	case u < c.P10ms:
		mag = time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
	case u < c.P100ms:
		mag = 10*time.Millisecond + time.Duration(rng.Int63n(int64(90*time.Millisecond)))
	default:
		span := c.MaxOff - 100*time.Millisecond
		if span <= 0 {
			span = time.Millisecond
		}
		mag = 100*time.Millisecond + time.Duration(rng.Int63n(int64(span)))
	}
	return sign * mag
}

// OffsetWindow is how often a vantage's NTP offset is resampled: real
// NTP clients oscillate around true time as they discipline the local
// clock, so the offset varies over a campaign rather than staying
// fixed.
const OffsetWindow = 2 * time.Minute

// Vantage is one instrumented measurement node: a p2p observer that
// stamps every inbound message with a local clock reading and logs it.
type Vantage struct {
	Name     string
	recorder Recorder

	clock   ClockModel
	rng     *rand.Rand
	offsets map[int64]time.Duration // window index -> sampled offset
	seenTxs *hashset.U64            // first-observation filter for txs
}

var _ p2p.Observer = (*Vantage)(nil)

// NewVantage creates a vantage whose clock follows the given NTP model,
// writing records to recorder. The seed makes offset evolution
// deterministic per vantage.
func NewVantage(name string, clock ClockModel, seed int64, recorder Recorder) *Vantage {
	return &Vantage{
		Name:     name,
		recorder: recorder,
		clock:    clock,
		rng:      rand.New(rand.NewSource(seed)),
		offsets:  make(map[int64]time.Duration, 16),
		seenTxs:  hashset.New(4096),
	}
}

// Offset returns the machine's clock offset in effect at virtual time
// at. Offsets are sampled per OffsetWindow; lazily, in window order,
// which keeps them deterministic because observations arrive in
// nondecreasing time.
func (v *Vantage) Offset(at sim.Time) time.Duration {
	w := int64(at / OffsetWindow)
	off, ok := v.offsets[w]
	if !ok {
		off = v.clock.Sample(v.rng)
		v.offsets[w] = off
	}
	return off
}

// local converts simulation time to this machine's clock reading.
func (v *Vantage) local(at sim.Time) time.Duration { return at + v.Offset(at) }

// ObserveBlock logs a full or fetched block reception.
func (v *Vantage) ObserveBlock(at sim.Time, b *types.Block, from types.NodeID, kind p2p.MsgKind) {
	v.recorder.RecordBlock(BlockRecord{
		Vantage: v.Name,
		At:      v.local(at),
		Hash:    b.Hash,
		Number:  b.Number,
		Miner:   b.Miner,
		Parent:  b.ParentHash,
		From:    from,
		Kind:    kind.String(),
		NTxs:    len(b.TxHashes),
		Size:    b.Size,
	})
}

// ObserveAnnounce logs a block-hash announcement reception.
func (v *Vantage) ObserveAnnounce(at sim.Time, h types.Hash, number uint64, from types.NodeID) {
	v.recorder.RecordBlock(BlockRecord{
		Vantage: v.Name,
		At:      v.local(at),
		Hash:    h,
		Number:  number,
		From:    from,
		Kind:    p2p.MsgAnnounce.String(),
		Size:    types.AnnouncementSize,
	})
}

// ObserveTx logs the first observation of each transaction.
func (v *Vantage) ObserveTx(at sim.Time, tx *types.Transaction, from types.NodeID) {
	if !v.seenTxs.Add(uint64(tx.Hash)) {
		return
	}
	v.recorder.RecordTx(TxRecord{
		Vantage: v.Name,
		At:      v.local(at),
		Hash:    tx.Hash,
		Sender:  tx.Sender,
		Nonce:   tx.Nonce,
		From:    from,
	})
}

// MachineSpec describes one measurement machine (paper Table I).
type MachineSpec struct {
	Location      string
	CPU           string
	RAMGB         int
	BandwidthGbps int
}

// PaperInfrastructure returns the paper's Table I machine specs.
func PaperInfrastructure() []MachineSpec {
	return []MachineSpec{
		{Location: "NA", CPU: "4x Intel Xeon 2.3 GHz", RAMGB: 15, BandwidthGbps: 8},
		{Location: "EA", CPU: "4x Intel Xeon 2.3 GHz", RAMGB: 15, BandwidthGbps: 8},
		{Location: "CE", CPU: "4x Intel Xeon 2.4 GHz", RAMGB: 8, BandwidthGbps: 10},
		{Location: "WE", CPU: "40x Intel Xeon 2.2 GHz", RAMGB: 128, BandwidthGbps: 10},
	}
}
