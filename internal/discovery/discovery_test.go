package discovery

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ethmeasure/internal/types"
)

func TestDistanceMetric(t *testing.T) {
	if Distance(5, 5) != 0 {
		t.Error("self distance must be zero")
	}
	if Distance(1, 2) != Distance(2, 1) {
		t.Error("distance must be symmetric")
	}
	if Distance(0b100, 0b001) != 0b101 {
		t.Error("XOR metric wrong")
	}
}

func TestLogDistance(t *testing.T) {
	tests := []struct {
		a, b ID
		want int
	}{
		{0, 0, -1},
		{0, 1, 0},
		{0, 2, 1},
		{0, 1 << 63, 63},
		{0b1000, 0b1001, 0},
	}
	for _, tt := range tests {
		if got := LogDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("LogDistance(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestTableAddAndBuckets(t *testing.T) {
	table := NewTable(0)
	if table.Add(Record{ID: 0, Node: 1}) {
		t.Error("self must be rejected")
	}
	if !table.Add(Record{ID: 1, Node: 1}) {
		t.Error("fresh record rejected")
	}
	if table.Add(Record{ID: 1, Node: 1}) {
		t.Error("duplicate accepted")
	}
	if table.Len() != 1 {
		t.Errorf("len = %d", table.Len())
	}
	// Fill bucket 63 (IDs with top bit set) beyond capacity: entries
	// are replaced round-robin, so the bucket stays at capacity while
	// newcomers are always stored.
	for i := 0; i < BucketSize*2; i++ {
		if !table.Add(Record{ID: ID(1<<63 | uint64(i+1)), Node: types.NodeID(i)}) {
			t.Fatalf("record %d rejected despite replacement policy", i)
		}
	}
	if table.Len() != BucketSize+1 { // +1 for the ID 1 record above
		t.Errorf("table len = %d, want bucket capacity %d + 1", table.Len(), BucketSize+1)
	}
	// The most recent record must be present.
	found := false
	for _, r := range table.Closest(1<<63, BucketSize) {
		if r.ID == ID(1<<63|uint64(BucketSize*2)) {
			found = true
		}
	}
	if !found {
		t.Error("latest record missing after replacement")
	}
}

func TestTableClosestOrdering(t *testing.T) {
	table := NewTable(0)
	for _, id := range []ID{0b1, 0b10, 0b100, 0b1000} {
		table.Add(Record{ID: id, Node: types.NodeID(id)})
	}
	got := table.Closest(0b11, 2)
	if len(got) != 2 {
		t.Fatalf("closest = %d records", len(got))
	}
	// Distances to 0b11: 0b1→2, 0b10→1, 0b100→7, 0b1000→11.
	if got[0].ID != 0b10 || got[1].ID != 0b1 {
		t.Errorf("closest order = %v", got)
	}
}

func TestNetworkJoinUniqueIDs(t *testing.T) {
	n := NewNetwork(rand.New(rand.NewSource(1)))
	seen := make(map[ID]bool)
	for i := 0; i < 500; i++ {
		id, err := n.Join(types.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatal("duplicate discovery ID")
		}
		seen[id] = true
	}
	if _, err := n.Join(types.NodeID(3)); err == nil {
		t.Error("double join must error")
	}
	if n.Size() != 500 {
		t.Errorf("size = %d", n.Size())
	}
}

func TestLookupConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewNetwork(rng)
	ids := make([]ID, 0, 300)
	for i := 0; i < 300; i++ {
		id, err := n.Join(types.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Lookup of an existing ID should find it (or something very close).
	target := ids[250]
	got := n.Lookup(types.NodeID(0), target, 1)
	if len(got) == 0 {
		t.Fatal("lookup returned nothing")
	}
	if got[0].ID != target {
		// Must at least be among the globally closest few.
		best := Distance(got[0].ID, target)
		closer := 0
		for _, id := range ids {
			if Distance(id, target) < best {
				closer++
			}
		}
		if closer > 3 {
			t.Errorf("lookup result %d IDs away from optimum", closer)
		}
	}
}

func TestDiscoverPeersCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewNetwork(rng)
	for i := 0; i < 200; i++ {
		if _, err := n.Join(types.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	peers := n.DiscoverPeers(types.NodeID(0), 12)
	if len(peers) != 12 {
		t.Fatalf("discovered %d peers, want 12", len(peers))
	}
	seen := make(map[types.NodeID]bool)
	for _, p := range peers {
		if p == types.NodeID(0) {
			t.Error("discovered self")
		}
		if seen[p] {
			t.Error("duplicate peer")
		}
		seen[p] = true
	}
}

// TestDiscoveryIsGeographyBlind is the paper's §III-B1 premise: peer
// selection is uniform over the ID space. We tag the first half of
// nodes as "region A" and verify discovered peer sets mix regions in
// proportion.
func TestDiscoveryIsGeographyBlind(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := NewNetwork(rng)
	const total = 400
	for i := 0; i < total; i++ {
		if _, err := n.Join(types.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	inA := 0
	count := 0
	for from := 0; from < 40; from++ {
		for _, p := range n.DiscoverPeers(types.NodeID(from), 10) {
			count++
			if int(p) < total/2 {
				inA++
			}
		}
	}
	share := float64(inA) / float64(count)
	// A mild join-order bias is inherent to Kademlia tables (real
	// discv4 has it too); the property under test is that peer sets
	// MIX regions rather than partition by them.
	if math.Abs(share-0.5) > 0.12 {
		t.Errorf("region-A share of discovered peers = %.3f, want ≈0.5 (geography-blind)", share)
	}
}

// Property: Closest always returns records sorted by XOR distance.
func TestClosestSortedProperty(t *testing.T) {
	f := func(selfRaw uint64, idsRaw []uint64, targetRaw uint64) bool {
		table := NewTable(ID(selfRaw))
		for i, raw := range idsRaw {
			table.Add(Record{ID: ID(raw), Node: types.NodeID(i)})
		}
		target := ID(targetRaw)
		got := table.Closest(target, 8)
		for i := 1; i < len(got); i++ {
			if Distance(got[i-1].ID, target) > Distance(got[i].ID, target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
