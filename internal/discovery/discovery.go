// Package discovery implements a Kademlia-style node discovery
// protocol modeled on devp2p's discv4: every node derives a random
// 64-bit identifier, distances are XOR metric, routing tables hold
// per-bucket nearest neighbours, and peers are selected by repeated
// lookups of random targets.
//
// This is the mechanism behind the paper's §III-B1 observation that
// "the Ethereum network establishes neighboring relationships among
// peers based on a random node identifier … independent of the
// geographic location": peer sets produced by these lookups are
// uniform over the ID space and therefore geography-blind. The
// campaign builder can use discovery-driven topologies instead of the
// plain random graph; both yield geography-independent neighbour
// choice, which tests assert.
package discovery

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"ethmeasure/internal/types"
)

// IDBits is the identifier width. devp2p uses 256-bit IDs; 64 bits
// give identical XOR-metric behaviour at simulation scale.
const IDBits = 64

// BucketSize is the per-bucket capacity (devp2p: k = 16).
const BucketSize = 16

// NodeID is a discovery identifier (distinct from the network NodeID:
// discovery IDs are random, network IDs are dense indices).
type ID uint64

// Distance is the XOR metric between two IDs.
func Distance(a, b ID) uint64 { return uint64(a ^ b) }

// LogDistance returns the index of the highest differing bit (the
// bucket index), or -1 for identical IDs.
func LogDistance(a, b ID) int {
	d := uint64(a ^ b)
	if d == 0 {
		return -1
	}
	return IDBits - 1 - bits.LeadingZeros64(d)
}

// Record is one table entry: a discovery ID bound to a network node.
type Record struct {
	ID   ID
	Node types.NodeID
}

// Table is one node's Kademlia routing table.
type Table struct {
	self     ID
	buckets  [IDBits][]Record
	size     int
	replaced uint64 // round-robin cursor for full-bucket replacement
}

// NewTable creates a routing table for the node with the given ID.
func NewTable(self ID) *Table {
	return &Table{self: self}
}

// Self returns the table owner's ID.
func (t *Table) Self() ID { return t.self }

// Len returns the number of records held.
func (t *Table) Len() int { return t.size }

// Add inserts a record into its bucket. Full buckets replace an entry
// round-robin, modeling devp2p's replacement lists: stale entries
// continuously give way to freshly seen nodes, so long-lived tables
// stay uniform over the live population instead of freezing on the
// earliest joiners. It reports whether the record was stored.
func (t *Table) Add(r Record) bool {
	idx := LogDistance(t.self, r.ID)
	if idx < 0 {
		return false // self
	}
	bucket := t.buckets[idx]
	for _, existing := range bucket {
		if existing.ID == r.ID {
			return false
		}
	}
	if len(bucket) >= BucketSize {
		t.replaced++
		bucket[int(t.replaced)%len(bucket)] = r
		return true
	}
	t.buckets[idx] = append(bucket, r)
	t.size++
	return true
}

// Closest returns up to n records closest to target in XOR distance.
func (t *Table) Closest(target ID, n int) []Record {
	var all []Record
	for i := range t.buckets {
		all = append(all, t.buckets[i]...)
	}
	sort.Slice(all, func(i, j int) bool {
		di, dj := Distance(all[i].ID, target), Distance(all[j].ID, target)
		if di != dj {
			return di < dj
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Network is the global discovery overlay: it knows every participant
// and resolves iterative lookups. The simulation performs lookups
// instantaneously (discovery traffic is negligible next to block and
// transaction gossip and does not affect any measured quantity).
type Network struct {
	rng     *rand.Rand
	records []Record
	byID    map[ID]types.NodeID
	tables  map[types.NodeID]*Table
}

// NewNetwork creates an empty overlay using the given RNG for ID
// assignment and lookup targets.
func NewNetwork(rng *rand.Rand) *Network {
	return &Network{
		rng:    rng,
		byID:   make(map[ID]types.NodeID),
		tables: make(map[types.NodeID]*Table),
	}
}

// Join assigns a fresh random ID to the network node and creates its
// routing table, bootstrapped from up to BucketSize random existing
// members (the hardcoded bootnodes of a real deployment).
func (n *Network) Join(node types.NodeID) (ID, error) {
	if _, dup := n.tables[node]; dup {
		return 0, fmt.Errorf("discovery: node %v already joined", node)
	}
	var id ID
	for {
		id = ID(n.rng.Uint64())
		if _, taken := n.byID[id]; !taken && id != 0 {
			break
		}
	}
	table := NewTable(id)
	rec := Record{ID: id, Node: node}
	// Bootstrap from random existing members. Contact is mutual: the
	// pinged bootstrap node learns about the joiner too, which is how
	// early joiners' tables keep growing as the network does.
	for _, i := range n.rng.Perm(len(n.records)) {
		if table.Len() >= BucketSize {
			break
		}
		table.Add(n.records[i])
		if peer := n.tables[n.records[i].Node]; peer != nil {
			peer.Add(rec)
		}
	}
	n.records = append(n.records, rec)
	n.byID[id] = node
	n.tables[node] = table
	return id, nil
}

// Table returns a node's routing table.
func (n *Network) Table(node types.NodeID) *Table { return n.tables[node] }

// Lookup performs an iterative Kademlia lookup from the given node
// toward target: repeatedly query the closest known nodes for their
// closest records until no progress, filling the querier's table along
// the way. It returns the closest records found.
func (n *Network) Lookup(from types.NodeID, target ID, want int) []Record {
	table := n.tables[from]
	if table == nil {
		return nil
	}
	selfRec := Record{ID: table.Self(), Node: from}
	asked := make(map[ID]bool)
	for rounds := 0; rounds < 16; rounds++ {
		candidates := table.Closest(target, 3) // devp2p alpha = 3
		progressed := false
		for _, c := range candidates {
			if asked[c.ID] {
				continue
			}
			asked[c.ID] = true
			peerTable := n.tables[n.byID[c.ID]]
			if peerTable == nil {
				continue
			}
			// FINDNODE is mutual contact: the queried node records the
			// querier's endpoint.
			peerTable.Add(selfRec)
			for _, r := range peerTable.Closest(target, BucketSize) {
				if r.ID != table.Self() && table.Add(r) {
					progressed = true
				}
			}
		}
		if !progressed {
			break
		}
	}
	return table.Closest(target, want)
}

// DiscoverPeers runs lookups of random targets from the given node
// until it has collected at least want distinct peers (or the overlay
// is exhausted), returning them. This is how a devp2p node fills its
// dial candidates — and why peer sets are uniform over the ID space,
// independent of geography.
func (n *Network) DiscoverPeers(from types.NodeID, want int) []types.NodeID {
	seen := make(map[types.NodeID]bool, want)
	var peers []types.NodeID
	for attempts := 0; attempts < want*4+8 && len(peers) < want; attempts++ {
		target := ID(n.rng.Uint64())
		for _, r := range n.Lookup(from, target, 4) {
			if r.Node == from || seen[r.Node] {
				continue
			}
			seen[r.Node] = true
			peers = append(peers, r.Node)
			if len(peers) >= want {
				break
			}
		}
	}
	return peers
}

// Size returns the number of joined nodes.
func (n *Network) Size() int { return len(n.records) }
