package mining

import (
	"math"
	"testing"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/types"
)

func TestNewFastChainErrors(t *testing.T) {
	if _, err := NewFastChain(nil, 1); err == nil {
		t.Error("empty specs must error")
	}
	if _, err := NewFastChain([]PoolSpec{{Name: "x", Power: -1}}, 1); err == nil {
		t.Error("negative power must error")
	}
	if _, err := NewFastChain([]PoolSpec{{Name: "x", Power: 0}}, 1); err == nil {
		t.Error("zero total power must error")
	}
}

func TestFastChainWinnerShares(t *testing.T) {
	specs := []PoolSpec{
		{Name: "Big", Power: 0.6},
		{Name: "Small", Power: 0.4},
	}
	fc, err := NewFastChain(specs, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	winners := fc.Winners(n)
	counts := make(map[types.PoolID]int)
	for _, w := range winners {
		counts[w]++
	}
	big := float64(counts[1]) / n
	if math.Abs(big-0.6) > 0.01 {
		t.Errorf("big pool share %.3f, want ≈0.60", big)
	}
	names := fc.PoolNames()
	if len(names) != 2 || names[0] != "Big" {
		t.Errorf("names = %v", names)
	}
}

func TestFastChainDeterministic(t *testing.T) {
	specs := PaperPools()
	a, _ := NewFastChain(specs, 42)
	b, _ := NewFastChain(specs, 42)
	wa, wb := a.Winners(5000), b.Winners(5000)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("same-seed fast chains diverged at %d", i)
		}
	}
	c, _ := NewFastChain(specs, 43)
	wc := c.Winners(5000)
	same := true
	for i := range wa {
		if wa[i] != wc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestHistoricalWinnersEpochsAndRemap(t *testing.T) {
	epochs := []HistoricalEpoch{
		{Blocks: 1000, Pools: []PoolSpec{
			{Name: "A", Power: 0.5, Gateways: []geo.Region{geo.NorthAmerica}},
			{Name: "B", Power: 0.5, Gateways: []geo.Region{geo.NorthAmerica}},
		}},
		{Blocks: 500, Pools: []PoolSpec{
			{Name: "B", Power: 0.7, Gateways: []geo.Region{geo.NorthAmerica}},
			{Name: "C", Power: 0.3, Gateways: []geo.Region{geo.NorthAmerica}},
		}},
	}
	winners, names, err := HistoricalWinners(epochs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 1500 {
		t.Fatalf("winners = %d, want 1500", len(winners))
	}
	if len(names) != 3 {
		t.Fatalf("names = %v, want A,B,C", names)
	}
	// Pool B must share one ID across both epochs.
	var bID types.PoolID
	for i, n := range names {
		if n == "B" {
			bID = types.PoolID(i + 1)
		}
	}
	early, late := 0, 0
	for i, w := range winners {
		if w == bID {
			if i < 1000 {
				early++
			} else {
				late++
			}
		}
	}
	if early == 0 || late == 0 {
		t.Error("pool B should win blocks in both epochs under one ID")
	}
}

func TestHistoricalWinnersBadEpoch(t *testing.T) {
	if _, _, err := HistoricalWinners([]HistoricalEpoch{{Blocks: 10}}, 1); err == nil {
		t.Error("epoch without pools must error")
	}
}

func TestDefaultHistoryShape(t *testing.T) {
	epochs := DefaultHistory()
	total := 0
	for _, e := range epochs {
		if len(e.Pools) == 0 {
			t.Fatal("epoch without pools")
		}
		total += e.Blocks
	}
	// The paper's whole-chain scan covered ~7.68M blocks.
	if total < 7_000_000 || total > 8_500_000 {
		t.Errorf("history covers %d blocks, want ≈7.68M", total)
	}
	// Concentration must decline over time (early top-share highest).
	first := epochs[0].Pools[0].Power
	last := epochs[len(epochs)-1].Pools[0].Power
	if first <= last {
		t.Errorf("top-pool power should decline: %f → %f", first, last)
	}
}

func TestPaperPoolsCalibration(t *testing.T) {
	pools := PaperPools()
	if len(pools) != 16 {
		t.Fatalf("got %d pools, want 15 named + remainder", len(pools))
	}
	total := TotalPower(pools)
	if math.Abs(total-1) > 0.005 {
		t.Errorf("total power %f, want ≈1", total)
	}
	byName := make(map[string]PoolSpec, len(pools))
	for _, p := range pools {
		if err := p.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", p.Name, err)
		}
		byName[p.Name] = p
	}
	// Figure 3's measured power shares.
	if byName["Ethermine"].Power != 0.2532 {
		t.Errorf("Ethermine power = %f", byName["Ethermine"].Power)
	}
	if byName["Sparkpool"].Power != 0.2288 {
		t.Errorf("Sparkpool power = %f", byName["Sparkpool"].Power)
	}
	// §III-C3: Nanopool and Miningpoolhub1 mined no empty blocks;
	// Zhizhu mined >25% empty.
	if byName["Nanopool"].EmptyRate != 0 || byName["Miningpoolhub1"].EmptyRate != 0 {
		t.Error("pools the paper found empty-free must have zero empty rate")
	}
	if byName["Zhizhu"].EmptyRate < 0.25 {
		t.Errorf("Zhizhu empty rate = %f, paper says >25%%", byName["Zhizhu"].EmptyRate)
	}
	// Weighted empty rate ≈ the paper's 1.45% of main blocks.
	weighted := 0.0
	for _, p := range pools {
		weighted += p.Power * p.EmptyRate
	}
	if weighted < 0.012 || weighted > 0.018 {
		t.Errorf("aggregate empty rate %.4f, want ≈0.0145", weighted)
	}
	// Weighted sibling rate ≈ 1,750 pairs / 201,086 blocks ≈ 0.87%.
	sibling := 0.0
	for _, p := range pools {
		sibling += p.Power * p.SiblingRate
	}
	if sibling < 0.006 || sibling > 0.013 {
		t.Errorf("aggregate sibling rate %.4f, want ≈0.0087", sibling)
	}
}

func TestUniformGatewayPools(t *testing.T) {
	pools := UniformGatewayPools()
	for _, p := range pools {
		if len(p.Gateways) != geo.NumRegions {
			t.Errorf("pool %s gateways = %d regions, want all %d", p.Name, len(p.Gateways), geo.NumRegions)
		}
	}
}

func TestPoolSpecValidate(t *testing.T) {
	valid := PoolSpec{Name: "p", Power: 0.5, Gateways: []geo.Region{geo.NorthAmerica}}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	tests := []struct {
		name string
		spec PoolSpec
	}{
		{"no name", PoolSpec{Power: 0.5, Gateways: valid.Gateways}},
		{"power > 1", PoolSpec{Name: "p", Power: 1.5, Gateways: valid.Gateways}},
		{"bad empty rate", PoolSpec{Name: "p", Power: 0.5, EmptyRate: 2, Gateways: valid.Gateways}},
		{"bad sibling rate", PoolSpec{Name: "p", Power: 0.5, SiblingRate: -1, Gateways: valid.Gateways}},
		{"no gateways", PoolSpec{Name: "p", Power: 0.5}},
	}
	for _, tt := range tests {
		if err := tt.spec.Validate(); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}
