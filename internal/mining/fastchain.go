package mining

import (
	"fmt"
	"math/rand"

	"ethmeasure/internal/types"
)

// FastChain generates main-chain winner sequences without simulating
// the network. Consecutive-miner-sequence statistics (paper Figure 7
// and the whole-blockchain scan in §III-D) depend only on the winner
// distribution, so a chain-level simulation suffices and allows
// millions of blocks in milliseconds. TestFastChainMatchesFullSim
// validates it against the full simulator.
type FastChain struct {
	names []string
	cum   []float64
	rng   *rand.Rand
}

// NewFastChain builds a fast simulator from pool specs (only Name and
// Power are used) and a seed.
func NewFastChain(specs []PoolSpec, seed int64) (*FastChain, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mining: fast chain needs at least one pool")
	}
	f := &FastChain{rng: rand.New(rand.NewSource(seed))}
	total := 0.0
	for i := range specs {
		if specs[i].Power < 0 {
			return nil, fmt.Errorf("mining: pool %s has negative power", specs[i].Name)
		}
		total += specs[i].Power
		f.names = append(f.names, specs[i].Name)
		f.cum = append(f.cum, total)
	}
	if total <= 0 {
		return nil, fmt.Errorf("mining: total power must be positive")
	}
	return f, nil
}

// PoolNames returns the pool names in spec order; PoolID i+1
// corresponds to names[i], matching the full simulator's numbering.
func (f *FastChain) PoolNames() []string {
	out := make([]string, len(f.names))
	copy(out, f.names)
	return out
}

// Winners returns a sequence of n main-chain block winners drawn i.i.d.
// proportionally to power, as PoolIDs starting at 1.
func (f *FastChain) Winners(n int) []types.PoolID {
	out := make([]types.PoolID, n)
	for i := range out {
		out[i] = f.draw()
	}
	return out
}

func (f *FastChain) draw() types.PoolID {
	total := f.cum[len(f.cum)-1]
	x := f.rng.Float64() * total
	for i, c := range f.cum {
		if x < c {
			return types.PoolID(i + 1)
		}
	}
	return types.PoolID(len(f.cum))
}

// HistoricalEpoch is one period of the chain's history with its own
// power distribution. The 14-block Ethermine sequence the paper found
// at height 5.9 M is only plausible under the higher concentration of
// earlier years, which epochs capture.
type HistoricalEpoch struct {
	Blocks int
	Pools  []PoolSpec
}

// DefaultHistory approximates the evolution of Ethereum's miner
// concentration from genesis (2015) to block ~7.68 M (May 2019): early
// periods where the top pool held 30-40% of the network, converging to
// the paper's April-2019 distribution. Block counts sum to ~7.68 M.
//
// Each epoch's remainder is split across several mid-size pools and a
// long tail of small miners — a single aggregate "rest" pool would
// itself produce long runs and corrupt the sequence statistics.
func DefaultHistory() []HistoricalEpoch {
	gw := PaperPools()[0].Gateways
	epoch := func(top string, topShare float64, mids ...float64) []PoolSpec {
		pools := []PoolSpec{{Name: top, Power: topShare, Gateways: gw}}
		used := topShare
		for i, share := range mids {
			pools = append(pools, PoolSpec{
				Name:     fmt.Sprintf("MidPool%d", i+1),
				Power:    share,
				Gateways: gw,
			})
			used += share
		}
		// Long tail: split what is left across ten small miners.
		rest := 1 - used
		for i := 0; i < 10; i++ {
			pools = append(pools, PoolSpec{
				Name:     fmt.Sprintf("SmallMiner%d", i+1),
				Power:    rest / 10,
				Gateways: gw,
			})
		}
		return pools
	}
	return []HistoricalEpoch{
		// 2015-2016: highly concentrated early network (DwarfPool and
		// Ethermine episodes near 40% of total power) — the era that
		// makes Ethermine's record 14-block run plausible.
		{Blocks: 1_200_000, Pools: epoch("Ethermine", 0.39, 0.16, 0.12, 0.08)},
		{Blocks: 1_500_000, Pools: epoch("Ethermine", 0.33, 0.18, 0.12, 0.09)},
		// 2017: growth, concentration eases.
		{Blocks: 1_800_000, Pools: epoch("Ethermine", 0.29, 0.20, 0.14, 0.09)},
		// 2018: Ethermine ~26-27%, Sparkpool rising.
		{Blocks: 1_900_000, Pools: epoch("Ethermine", 0.27, 0.22, 0.13, 0.10)},
		// 2019 measurement period distribution.
		{Blocks: 1_280_000, Pools: PaperPools()},
	}
}

// HistoricalWinners concatenates winner sequences across epochs,
// returning winners and a name table (IDs index into names, 1-based).
// Pools with the same name share an ID across epochs so sequences that
// straddle an epoch boundary are counted correctly.
func HistoricalWinners(epochs []HistoricalEpoch, seed int64) ([]types.PoolID, []string, error) {
	ids := make(map[string]types.PoolID)
	var names []string
	idOf := func(name string) types.PoolID {
		if id, ok := ids[name]; ok {
			return id
		}
		id := types.PoolID(len(names) + 1)
		ids[name] = id
		names = append(names, name)
		return id
	}
	var winners []types.PoolID
	for ei, epoch := range epochs {
		fc, err := NewFastChain(epoch.Pools, seed+int64(ei)*7919)
		if err != nil {
			return nil, nil, fmt.Errorf("epoch %d: %w", ei, err)
		}
		local := fc.Winners(epoch.Blocks)
		remap := make([]types.PoolID, len(epoch.Pools)+1)
		for i := range epoch.Pools {
			remap[i+1] = idOf(epoch.Pools[i].Name)
		}
		for _, w := range local {
			winners = append(winners, remap[w])
		}
	}
	return winners, names, nil
}
