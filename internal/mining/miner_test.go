package mining

import (
	"testing"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/simnet"
	"ethmeasure/internal/types"
)

// miningHarness wires a minimal network with pool gateways for miner
// tests.
type miningHarness struct {
	t      *testing.T
	engine *sim.Engine
	reg    *chain.Registry
	issuer *types.HashIssuer
	p2pCfg p2p.Config
	nodes  []*p2p.Node
	txs    map[types.Hash]*types.Transaction
}

func newMiningHarness(t *testing.T, n int) *miningHarness {
	return newMiningHarnessProto(t, n, nil)
}

// newMiningHarnessProto is newMiningHarness under an explicit
// consensus protocol (nil keeps the registry default, ethereum).
func newMiningHarnessProto(t *testing.T, n int, proto consensus.Protocol) *miningHarness {
	t.Helper()
	engine := sim.NewEngine(1)
	net := simnet.New(engine, geo.UniformLatencyModel(10*time.Millisecond, 0))
	issuer := types.NewHashIssuer(1)
	h := &miningHarness{
		t:      t,
		engine: engine,
		reg:    chain.NewRegistry(0, issuer),
		issuer: issuer,
		p2pCfg: p2p.DefaultConfig(),
		txs:    make(map[types.Hash]*types.Transaction),
	}
	if proto != nil {
		h.reg.SetProtocol(proto)
	}
	for i := 0; i < n; i++ {
		endpoint, err := net.AddNode(geo.NorthAmerica, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, p2p.NewNode(&h.p2pCfg, net, endpoint, h.reg))
	}
	for i := range h.nodes {
		for j := i + 1; j < len(h.nodes); j++ {
			p2p.Connect(h.nodes[i], h.nodes[j])
		}
	}
	return h
}

func (h *miningHarness) resolver(hash types.Hash) *types.Transaction { return h.txs[hash] }

func (h *miningHarness) addTx(sender types.AccountID, nonce uint64, price uint64) *types.Transaction {
	tx := &types.Transaction{
		Hash:     h.issuer.Next(),
		Sender:   sender,
		Nonce:    nonce,
		GasPrice: price,
		Size:     types.TxSize,
	}
	h.txs[tx.Hash] = tx
	return tx
}

func twoPoolSpecs() []PoolSpec {
	gw := []geo.Region{geo.NorthAmerica}
	return []PoolSpec{
		{Name: "Alpha", Power: 0.7, Gateways: gw},
		{Name: "Beta", Power: 0.3, Gateways: gw},
	}
}

func (h *miningHarness) newMiner(cfg Config, specs []PoolSpec, gateways [][]*p2p.Node) *Miner {
	h.t.Helper()
	m, err := NewMiner(cfg, h.engine, h.reg, specs, gateways, h.issuer, h.resolver)
	if err != nil {
		h.t.Fatal(err)
	}
	return m
}

func TestNewMinerValidation(t *testing.T) {
	h := newMiningHarness(t, 2)
	gw := [][]*p2p.Node{{h.nodes[0]}, {h.nodes[1]}}
	cfg := DefaultConfig()

	if _, err := NewMiner(cfg, h.engine, h.reg, nil, nil, h.issuer, h.resolver); err == nil {
		t.Error("empty specs must error")
	}
	if _, err := NewMiner(cfg, h.engine, h.reg, twoPoolSpecs(), gw[:1], h.issuer, h.resolver); err == nil {
		t.Error("spec/gateway mismatch must error")
	}
	bad := cfg
	bad.InterBlockTime = 0
	if _, err := NewMiner(bad, h.engine, h.reg, twoPoolSpecs(), gw, h.issuer, h.resolver); err == nil {
		t.Error("zero inter-block time must error")
	}
	noGw := twoPoolSpecs()
	if _, err := NewMiner(cfg, h.engine, h.reg, noGw, [][]*p2p.Node{{h.nodes[0]}, nil}, h.issuer, h.resolver); err == nil {
		t.Error("missing gateway nodes must error")
	}
	badSpec := twoPoolSpecs()
	badSpec[0].Power = 2
	if _, err := NewMiner(cfg, h.engine, h.reg, badSpec, gw, h.issuer, h.resolver); err == nil {
		t.Error("invalid spec must error")
	}
}

func TestMinerProducesChain(t *testing.T) {
	h := newMiningHarness(t, 3)
	cfg := DefaultConfig()
	cfg.InterBlockTime = 10 * time.Second
	m := h.newMiner(cfg, twoPoolSpecs(), [][]*p2p.Node{{h.nodes[0]}, {h.nodes[1]}})
	m.Start(20 * time.Minute)
	if _, err := h.engine.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if m.Mined() < 60 {
		t.Fatalf("mined %d blocks in 20 virtual minutes", m.Mined())
	}
	main := h.reg.MainChain()
	if len(main) < 50 {
		t.Fatalf("main chain %d blocks", len(main))
	}
	// Power shares: Alpha should clearly dominate Beta.
	counts := map[types.PoolID]int{}
	for _, b := range main[1:] {
		counts[b.Miner]++
	}
	if counts[1] <= counts[2] {
		t.Errorf("pool shares: alpha=%d beta=%d", counts[1], counts[2])
	}
}

func TestMinerEmptyRatePolicy(t *testing.T) {
	h := newMiningHarness(t, 2)
	specs := []PoolSpec{{
		Name:      "AlwaysEmpty",
		Power:     1,
		Gateways:  []geo.Region{geo.NorthAmerica},
		EmptyRate: 1,
	}}
	cfg := DefaultConfig()
	cfg.InterBlockTime = 5 * time.Second
	m := h.newMiner(cfg, specs, [][]*p2p.Node{{h.nodes[0]}})
	// Seed transactions so non-empty blocks would be possible.
	for i := uint64(0); i < 50; i++ {
		m.Pools()[0].TxPool().Add(h.addTx(1, i, 10))
	}
	m.Start(5 * time.Minute)
	if _, err := h.engine.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if m.Mined() == 0 {
		t.Fatal("no blocks mined")
	}
	h.reg.Blocks(func(b *types.Block) bool {
		if b.Miner != 0 && !b.Empty() {
			t.Errorf("policy-empty pool mined non-empty block %s", b.Hash)
		}
		return true
	})
	if m.EmptyByPolicy() != m.Mined() {
		t.Errorf("emptyByPolicy = %d of %d", m.EmptyByPolicy(), m.Mined())
	}
}

func TestMinerIncludesTransactionsUpToCapacity(t *testing.T) {
	h := newMiningHarness(t, 2)
	cfg := DefaultConfig()
	cfg.InterBlockTime = 5 * time.Second
	cfg.BlockCapacity = 7
	specs := []PoolSpec{{Name: "Solo", Power: 1, Gateways: []geo.Region{geo.NorthAmerica}}}
	m := h.newMiner(cfg, specs, [][]*p2p.Node{{h.nodes[0]}})
	for i := uint64(0); i < 30; i++ {
		m.Pools()[0].TxPool().Add(h.addTx(1, i, 10))
	}
	m.Start(time.Minute)
	if _, err := h.engine.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	sawFull := false
	h.reg.Blocks(func(b *types.Block) bool {
		if len(b.TxHashes) > 7 {
			t.Errorf("block %s carries %d txs, capacity 7", b.Hash, len(b.TxHashes))
		}
		if len(b.TxHashes) == 7 {
			sawFull = true
		}
		return true
	})
	if !sawFull {
		t.Error("no block reached capacity despite a 30-tx backlog")
	}
}

func TestMinerSiblingsProduceOneMinerForks(t *testing.T) {
	h := newMiningHarness(t, 2)
	specs := []PoolSpec{{
		Name:              "Selfish",
		Power:             1,
		Gateways:          []geo.Region{geo.NorthAmerica},
		SiblingRate:       1,
		SiblingSameTxFrac: 1,
	}}
	cfg := DefaultConfig()
	cfg.InterBlockTime = 10 * time.Second
	m := h.newMiner(cfg, specs, [][]*p2p.Node{{h.nodes[0]}})
	m.Start(3 * time.Minute)
	if _, err := h.engine.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if m.Siblings() == 0 {
		t.Fatal("sibling rate 1 produced no siblings")
	}
	// Every sibling creates a same-height same-miner pair.
	byHeight := make(map[uint64]int)
	h.reg.Blocks(func(b *types.Block) bool {
		if b.Miner != 0 {
			byHeight[b.Number]++
		}
		return true
	})
	pairs := 0
	for _, c := range byHeight {
		if c >= 2 {
			pairs++
		}
	}
	if pairs == 0 {
		t.Error("no one-miner forks recorded")
	}
}

func TestMineTupleCreatesSameHeightBlocks(t *testing.T) {
	h := newMiningHarness(t, 2)
	cfg := DefaultConfig()
	cfg.InterBlockTime = time.Hour // keep the regular process quiet
	cfg.TupleEvents = []int{4}
	m := h.newMiner(cfg, twoPoolSpecs(), [][]*p2p.Node{{h.nodes[0]}, {h.nodes[1]}})
	m.Start(30 * time.Minute)
	if _, err := h.engine.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	byKey := make(map[uint64]int)
	var miner types.PoolID
	h.reg.Blocks(func(b *types.Block) bool {
		if b.Miner != 0 {
			byKey[b.Number]++
			miner = b.Miner
		}
		return true
	})
	found := false
	for _, c := range byKey {
		if c == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no 4-tuple found: %v (miner %d)", byKey, miner)
	}
}

func TestMinerUnclesGetReferenced(t *testing.T) {
	h := newMiningHarness(t, 2)
	specs := []PoolSpec{{
		Name:        "Forky",
		Power:       1,
		Gateways:    []geo.Region{geo.NorthAmerica},
		SiblingRate: 1, // every block gets a sibling → constant forks
	}}
	cfg := DefaultConfig()
	cfg.InterBlockTime = 8 * time.Second
	m := h.newMiner(cfg, specs, [][]*p2p.Node{{h.nodes[0]}})
	m.Start(10 * time.Minute)
	if _, err := h.engine.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	refs := h.reg.UncleRefs()
	if len(refs) == 0 {
		t.Fatal("siblings were never referenced as uncles")
	}
	// Each referencing block must satisfy the uncle validity rules.
	for uncle, blocks := range refs {
		u := h.reg.MustGet(uncle)
		for _, ref := range blocks {
			b := h.reg.MustGet(ref)
			if u.Number >= b.Number || b.Number-u.Number > h.reg.Protocol().MaxReferenceDepth() {
				t.Errorf("uncle %s at depth %d from %s", uncle, b.Number-u.Number, ref)
			}
		}
	}
}

func TestMinerReorgReconcilesTxPool(t *testing.T) {
	h := newMiningHarness(t, 3)
	cfg := DefaultConfig()
	cfg.InterBlockTime = time.Hour // manual control
	cfg.HeadSwitchMean = time.Millisecond
	specs := []PoolSpec{{Name: "Solo", Power: 1, Gateways: []geo.Region{geo.NorthAmerica}}}
	m := h.newMiner(cfg, specs, [][]*p2p.Node{{h.nodes[0]}})
	pool := m.Pools()[0]

	tx := h.addTx(1, 0, 10)
	pool.TxPool().Add(tx)

	// A competing miner publishes a block containing our tx; the pool
	// adopts it and marks the tx included.
	g := h.reg.Genesis()
	b1 := &types.Block{
		Hash: h.issuer.Next(), Number: g.Number + 1, ParentHash: g.Hash,
		Miner: 99, TxHashes: []types.Hash{tx.Hash}, Size: types.BlockSize(1),
	}
	if err := h.reg.Add(b1); err != nil {
		t.Fatal(err)
	}
	h.nodes[1].PublishBlock(b1)
	if _, err := h.engine.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !pool.TxPool().WasIncluded(tx.Hash) {
		t.Fatal("adopted block's tx not marked included")
	}
	if pool.JobHead().Hash != b1.Hash {
		t.Fatalf("job head = %s, want adopted %s", pool.JobHead().Hash, b1.Hash)
	}

	// A heavier branch without the tx replaces it; the tx must return
	// to the pending set.
	c1 := &types.Block{Hash: h.issuer.Next(), Number: g.Number + 1, ParentHash: g.Hash, Miner: 98, Size: types.BlockSize(0)}
	if err := h.reg.Add(c1); err != nil {
		t.Fatal(err)
	}
	c2 := &types.Block{Hash: h.issuer.Next(), Number: c1.Number + 1, ParentHash: c1.Hash, Miner: 98, Size: types.BlockSize(0)}
	if err := h.reg.Add(c2); err != nil {
		t.Fatal(err)
	}
	h.nodes[2].PublishBlock(c1)
	h.nodes[2].PublishBlock(c2)
	if _, err := h.engine.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if pool.JobHead().Hash != c2.Hash {
		t.Fatalf("job head = %s after reorg, want %s", pool.JobHead().Hash, c2.Hash)
	}
	if pool.TxPool().WasIncluded(tx.Hash) {
		t.Error("reverted tx still marked included")
	}
	if !pool.TxPool().Has(tx.Hash) {
		t.Error("reverted tx not back in pending")
	}
}
