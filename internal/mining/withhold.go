package mining

import (
	"ethmeasure/internal/chain"
	"ethmeasure/internal/types"
)

// Withholding implements the classic selfish-mining strategy (Eyal &
// Sirer; the paper's §III-D cites the FAW variant when arguing that
// Sparkpool's 9-block runs were NOT a withholding attack because "
// blocks were not announced all together"): a pool keeps its blocks
// private, extends its private chain, and publishes in a burst either
// when the public chain threatens to catch up or when the private lead
// reaches a cap.
//
// The strategy is attached to at most one pool per run via
// Config.WithholdingPool / Config.WithholdDepth.
type withholder struct {
	pool  *Pool
	depth int // publish when the private lead reaches this

	private []*types.Block // unpublished blocks, oldest first
}

// lead is the private chain length.
func (w *withholder) lead() int { return len(w.private) }

// tip returns the private tip, or nil when nothing is withheld.
func (w *withholder) tip() *types.Block {
	if len(w.private) == 0 {
		return nil
	}
	return w.private[len(w.private)-1]
}

// onMined intercepts a freshly mined block: it is withheld instead of
// published. Returns the blocks to publish now (burst), if the lead
// cap was reached.
func (w *withholder) onMined(b *types.Block) []*types.Block {
	w.private = append(w.private, b)
	if len(w.private) >= w.depth {
		return w.flush()
	}
	return nil
}

// onPublicBlock reacts to a competing public block at the given total
// difficulty: when the public chain gets within one block of the
// private tip, the withholder publishes everything to override it
// (the "race" branch of selfish mining).
func (w *withholder) onPublicBlock(publicTD uint64) []*types.Block {
	tip := w.tip()
	if tip == nil {
		return nil
	}
	if publicTD+1 >= tip.TotalDiff {
		return w.flush()
	}
	return nil
}

func (w *withholder) flush() []*types.Block {
	out := w.private
	w.private = nil
	return out
}

// ConfigureWithholding attaches the strategy to the named pool.
// Returns false if the pool is unknown.
func (m *Miner) ConfigureWithholding(poolName string, depth int) bool {
	if depth < 2 {
		return false
	}
	for _, p := range m.pools {
		if p.Spec.Name == poolName {
			m.withhold = &withholder{pool: p, depth: depth}
			return true
		}
	}
	return false
}

// Withheld returns how many blocks are currently private (diagnostics).
func (m *Miner) Withheld() int {
	if m.withhold == nil {
		return 0
	}
	return m.withhold.lead()
}

// withholdParent returns the parent the withholding pool should mine
// on: its private tip when one exists.
func (m *Miner) withholdParent(pool *Pool) *types.Block {
	if m.withhold == nil || m.withhold.pool != pool {
		return nil
	}
	return m.withhold.tip()
}

// maybeWithhold intercepts a mined block for the withholding pool.
// It reports whether the block was intercepted and publishes any burst
// that resulted.
func (m *Miner) maybeWithhold(pool *Pool, b *types.Block) bool {
	if m.withhold == nil || m.withhold.pool != pool {
		return false
	}
	// Private blocks still enter the global registry (they exist), but
	// are not broadcast until flushed.
	if err := m.reg.Add(b); err != nil {
		return true
	}
	m.mined++
	if m.OnBlockMined != nil {
		m.OnBlockMined(b, pool)
	}
	burst := m.withhold.onMined(b)
	m.publishBurst(pool, burst)
	return true
}

// notifyPublicBlock lets the withholder react to public progress.
func (m *Miner) notifyPublicBlock(b *types.Block) {
	if m.withhold == nil {
		return
	}
	burst := m.withhold.onPublicBlock(b.TotalDiff)
	m.publishBurst(m.withhold.pool, burst)
}

// publishBurst broadcasts withheld blocks back-to-back — the
// "announced all together" signature the paper looked for and did not
// find in Sparkpool's behaviour.
func (m *Miner) publishBurst(pool *Pool, burst []*types.Block) {
	if len(burst) == 0 {
		return
	}
	for _, b := range burst {
		if b.TotalDiff > pool.jobHead.TotalDiff {
			abandoned, adopted := chain.Reorg(m.reg, pool.jobHead, b, 64)
			for _, blk := range abandoned {
				pool.txs.UnmarkIncluded(m.resolveAll(blk.TxHashes))
			}
			for _, blk := range adopted {
				pool.txs.MarkIncluded(m.resolveAll(blk.TxHashes))
			}
			pool.jobHead = b
		}
		gw := pool.gateways[pool.rrGate%len(pool.gateways)]
		pool.rrGate++
		gw.PublishBlock(b)
	}
}
