package mining

import (
	"fmt"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/types"
)

// Strategy customises one pool's block-publication behaviour. A
// strategy is bound to exactly one pool via Miner.AttachStrategy; the
// miner consults it on every block the pool mines and on every block a
// competing pool publishes. The built-in Withholding strategy is the
// classic selfish-mining attack; scenario plugins supply others.
//
// All hooks run synchronously on the single-threaded simulation engine
// and must be deterministic: no wall-clock time, no RNG outside the
// engine's named streams.
type Strategy interface {
	// PreferredParent returns the block the pool should mine on instead
	// of its public job head, or nil to follow the public head. Selfish
	// strategies return their private tip here.
	PreferredParent() *types.Block

	// OnMined intercepts a freshly mined block before publication: the
	// block is registered globally but NOT broadcast. The returned burst
	// (possibly including b itself) is published back-to-back
	// immediately. Returning nil keeps the block private.
	OnMined(b *types.Block) []*types.Block

	// OnPublicBlock reacts to a block published by a competing pool,
	// returning private blocks to release in response (the "race"
	// branch of selfish mining), or nil.
	OnPublicBlock(b *types.Block) []*types.Block
}

// ProtocolAware is implemented by strategies whose decisions depend on
// the consensus rules (reward schedule, reference policy). The miner
// binds its protocol before the strategy's first hook runs.
type ProtocolAware interface {
	BindProtocol(consensus.Protocol)
}

// poolStrategy binds a strategy to its pool.
type poolStrategy struct {
	pool  *Pool
	strat Strategy
}

// AttachStrategy binds a publication strategy to the named pool. At
// most one strategy per pool; unknown pools are rejected.
// ProtocolAware strategies receive the miner's consensus protocol
// before any hook fires.
func (m *Miner) AttachStrategy(poolName string, s Strategy) error {
	for _, p := range m.pools {
		if p.Spec.Name != poolName {
			continue
		}
		for i := range m.strategies {
			if m.strategies[i].pool == p {
				return fmt.Errorf("mining: pool %q already has a strategy", poolName)
			}
		}
		if pa, ok := s.(ProtocolAware); ok {
			pa.BindProtocol(m.proto)
		}
		m.strategies = append(m.strategies, poolStrategy{pool: p, strat: s})
		return nil
	}
	return fmt.Errorf("mining: unknown pool %q", poolName)
}

// strategyFor returns the strategy bound to pool, or nil.
func (m *Miner) strategyFor(pool *Pool) Strategy {
	for i := range m.strategies {
		if m.strategies[i].pool == pool {
			return m.strategies[i].strat
		}
	}
	return nil
}

// Withholding implements the classic selfish-mining strategy (Eyal &
// Sirer; the paper's §III-D cites the FAW variant when arguing that
// Sparkpool's 9-block runs were NOT a withholding attack because "
// blocks were not announced all together"): a pool keeps its blocks
// private, extends its private chain, and publishes in a burst either
// when the public chain threatens to catch up or when the private lead
// reaches a cap.
type Withholding struct {
	depth int // publish when the private lead reaches this

	// proto is the consensus rule set, bound by the miner on attach.
	// The withholder consults its reward schedule: under protocols
	// that pay reference (uncle) rewards a beaten private chain is
	// still worth publishing, under no-reference protocols it is
	// worthless and gets discarded instead.
	proto consensus.Protocol

	private []*types.Block // unpublished blocks, oldest first

	bursts    int // burst releases (diagnostics)
	released  int // blocks published through bursts
	discarded int // beaten private blocks dropped unpublished
}

var (
	_ Strategy      = (*Withholding)(nil)
	_ ProtocolAware = (*Withholding)(nil)
)

// NewWithholding creates the selfish block-withholding strategy with
// the given private-chain release depth (must be at least 2).
func NewWithholding(depth int) (*Withholding, error) {
	if depth < 2 {
		return nil, fmt.Errorf("mining: withholding depth %d < 2", depth)
	}
	return &Withholding{depth: depth}, nil
}

// Lead is the current private chain length.
func (w *Withholding) Lead() int { return len(w.private) }

// Bursts returns how many burst releases occurred.
func (w *Withholding) Bursts() int { return w.bursts }

// Released returns how many blocks were published through bursts.
func (w *Withholding) Released() int { return w.released }

// Discarded returns how many beaten private blocks were dropped
// unpublished (only under protocols without reference rewards).
func (w *Withholding) Discarded() int { return w.discarded }

// BindProtocol implements ProtocolAware.
func (w *Withholding) BindProtocol(p consensus.Protocol) { w.proto = p }

// paysReferences reports whether the bound protocol rewards referenced
// side blocks. Unbound strategies assume Ethereum's schedule (the
// legacy ConfigureWithholding path binds on attach anyway).
func (w *Withholding) paysReferences() bool {
	if w.proto == nil {
		return true
	}
	return w.proto.ReferenceReward(1) > 0
}

// tip returns the private tip, or nil when nothing is withheld.
func (w *Withholding) tip() *types.Block {
	if len(w.private) == 0 {
		return nil
	}
	return w.private[len(w.private)-1]
}

// PreferredParent mines on the private tip when one exists.
func (w *Withholding) PreferredParent() *types.Block { return w.tip() }

// OnMined withholds the freshly mined block, bursting the private
// chain when the lead cap is reached.
func (w *Withholding) OnMined(b *types.Block) []*types.Block {
	w.private = append(w.private, b)
	if len(w.private) >= w.depth {
		return w.flush()
	}
	return nil
}

// OnPublicBlock reacts to a competing public block: when the public
// chain gets within one block of the private tip, the withholder
// publishes everything to override it (the "race" branch of selfish
// mining). Under a protocol with no reference rewards, a private chain
// the public chain has already overtaken can never earn anything — it
// is discarded instead of published.
func (w *Withholding) OnPublicBlock(b *types.Block) []*types.Block {
	tip := w.tip()
	if tip == nil {
		return nil
	}
	if !w.paysReferences() && b.TotalDiff > tip.TotalDiff {
		// Strictly overtaken only: on a tie the private chain can still
		// win the first-seen race at every node it reaches first, so the
		// race branch below publishes it (Eyal-Sirer's race on Bitcoin).
		w.discarded += len(w.private)
		w.private = nil
		return nil
	}
	if b.TotalDiff+1 >= tip.TotalDiff {
		return w.flush()
	}
	return nil
}

func (w *Withholding) flush() []*types.Block {
	out := w.private
	w.private = nil
	w.bursts++
	w.released += len(out)
	return out
}

// ConfigureWithholding attaches the withholding strategy to the named
// pool. Returns false if the pool is unknown, already has a strategy,
// or the depth is below 2. Kept as the legacy entry point behind
// Config.WithholdingPool; new code goes through AttachStrategy.
func (m *Miner) ConfigureWithholding(poolName string, depth int) bool {
	w, err := NewWithholding(depth)
	if err != nil {
		return false
	}
	return m.AttachStrategy(poolName, w) == nil
}

// Withheld returns how many blocks are currently private across all
// withholding strategies (diagnostics).
func (m *Miner) Withheld() int {
	n := 0
	for i := range m.strategies {
		if w, ok := m.strategies[i].strat.(*Withholding); ok {
			n += w.Lead()
		}
	}
	return n
}

// strategyParent returns the parent the pool's strategy prefers, or
// nil when the pool has no strategy or the strategy follows the public
// head.
func (m *Miner) strategyParent(pool *Pool) *types.Block {
	s := m.strategyFor(pool)
	if s == nil {
		return nil
	}
	return s.PreferredParent()
}

// maybeIntercept hands a freshly mined block to the pool's strategy.
// It reports whether the block was intercepted (registered but not
// broadcast) and publishes any burst the strategy released.
func (m *Miner) maybeIntercept(pool *Pool, b *types.Block) bool {
	s := m.strategyFor(pool)
	if s == nil {
		return false
	}
	// Private blocks still enter the global registry (they exist), but
	// are not broadcast until the strategy releases them.
	if err := m.reg.Add(b); err != nil {
		return true
	}
	m.mined++
	if m.OnBlockMined != nil {
		m.OnBlockMined(b, pool)
	}
	m.publishBurst(pool, s.OnMined(b))
	return true
}

// notifyPublicBlock lets every competing pool's strategy react to
// public progress.
func (m *Miner) notifyPublicBlock(from *Pool, b *types.Block) {
	for i := range m.strategies {
		ps := &m.strategies[i]
		if ps.pool == from {
			continue
		}
		m.publishBurst(ps.pool, ps.strat.OnPublicBlock(b))
	}
}

// publishBurst broadcasts withheld blocks back-to-back — the
// "announced all together" signature the paper looked for and did not
// find in Sparkpool's behaviour.
func (m *Miner) publishBurst(pool *Pool, burst []*types.Block) {
	if len(burst) == 0 {
		return
	}
	for _, b := range burst {
		if m.proto.Prefer(b, pool.jobHead) {
			abandoned, adopted := chain.Reorg(m.reg, pool.jobHead, b, 64)
			for _, blk := range abandoned {
				pool.txs.UnmarkIncluded(m.resolveAll(blk.TxHashes))
			}
			for _, blk := range adopted {
				pool.txs.MarkIncluded(m.resolveAll(blk.TxHashes))
			}
			pool.jobHead = b
		}
		gw := pool.gateways[pool.rrGate%len(pool.gateways)]
		pool.rrGate++
		gw.PublishBlock(b)
		// Burst releases are public progress too: competing strategies
		// must see them (OnPublicBlock's contract). With a single
		// strategy this is a no-op — the burst belongs to its own pool —
		// so the legacy withholding path is unchanged. Recursion
		// terminates because a strategy's flush empties its private
		// chain before returning.
		m.notifyPublicBlock(pool, b)
	}
}
