package mining

import (
	"testing"
	"time"

	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/types"
)

func TestConfigureWithholding(t *testing.T) {
	h := newMiningHarness(t, 2)
	cfg := DefaultConfig()
	m := h.newMiner(cfg, twoPoolSpecs(), [][]*p2p.Node{{h.nodes[0]}, {h.nodes[1]}})
	if m.ConfigureWithholding("NoSuchPool", 3) {
		t.Error("unknown pool accepted")
	}
	if m.ConfigureWithholding("Alpha", 1) {
		t.Error("depth < 2 accepted")
	}
	if !m.ConfigureWithholding("Alpha", 3) {
		t.Error("valid configuration rejected")
	}
}

func TestWithholdingPublishesInBursts(t *testing.T) {
	h := newMiningHarness(t, 3)
	// A dominant withholding pool and a small honest competitor.
	specs := []PoolSpec{
		{Name: "Attacker", Power: 0.6, Gateways: []geo.Region{geo.NorthAmerica}},
		{Name: "Honest", Power: 0.4, Gateways: []geo.Region{geo.NorthAmerica}},
	}
	cfg := DefaultConfig()
	cfg.InterBlockTime = 8 * time.Second
	m := h.newMiner(cfg, specs, [][]*p2p.Node{{h.nodes[0]}, {h.nodes[1]}})
	if !m.ConfigureWithholding("Attacker", 3) {
		t.Fatal("configure failed")
	}
	m.Start(20 * time.Minute)
	if _, err := h.engine.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// The observer node (2) must have received attacker blocks in
	// height-consecutive groups: find any attacker block whose parent
	// is also an attacker block — private-chain extension.
	sawPrivateChains := false
	h.reg.Blocks(func(b *types.Block) bool {
		if b.Miner != 1 {
			return true
		}
		parent, ok := h.reg.Get(b.ParentHash)
		if ok && parent.Miner == 1 {
			sawPrivateChains = true
		}
		return true
	})
	if !sawPrivateChains {
		t.Error("withholding pool never extended its own private chain")
	}
	// The run must end with the withheld queue bounded by the depth.
	if m.Withheld() >= 3 {
		t.Errorf("withheld lead %d never flushed", m.Withheld())
	}
	// The network still converges: the honest observer's head is a
	// recent block.
	head := h.nodes[2].View().Head()
	if head.Number < h.reg.Head().Number-3 {
		t.Errorf("observer head %d lags registry head %d", head.Number, h.reg.Head().Number)
	}
}

func TestWithholdingOverridesPublicProgress(t *testing.T) {
	h := newMiningHarness(t, 3)
	specs := []PoolSpec{
		{Name: "Attacker", Power: 0.7, Gateways: []geo.Region{geo.NorthAmerica}},
		{Name: "Honest", Power: 0.3, Gateways: []geo.Region{geo.NorthAmerica}},
	}
	cfg := DefaultConfig()
	cfg.InterBlockTime = time.Hour // manual block injection below
	m := h.newMiner(cfg, specs, [][]*p2p.Node{{h.nodes[0]}, {h.nodes[1]}})
	if !m.ConfigureWithholding("Attacker", 10) {
		t.Fatal("configure failed")
	}
	attacker := m.Pools()[0]
	honest := m.Pools()[1]

	// Attacker privately mines two blocks.
	g := h.reg.Genesis()
	b1 := m.buildBlock(attacker, g, true, nil)
	if !m.maybeIntercept(attacker, b1) {
		t.Fatal("block not intercepted")
	}
	b2 := m.buildBlock(attacker, b1, true, nil)
	if !m.maybeIntercept(attacker, b2) {
		t.Fatal("second block not intercepted")
	}
	if m.Withheld() != 2 {
		t.Fatalf("withheld = %d", m.Withheld())
	}

	// The honest pool publishes a public block at height 1: within one
	// of the private tip → the attacker must flush both blocks.
	hb := m.buildBlock(honest, g, true, nil)
	m.publish(honest, hb, true)
	if _, err := h.engine.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if m.Withheld() != 0 {
		t.Errorf("withheld = %d after public threat, want flush", m.Withheld())
	}
	// The attacker's chain wins on the observer.
	if got := h.nodes[2].View().Head().Hash; got != b2.Hash {
		t.Errorf("observer head = %s, want attacker tip %s", got, b2.Hash)
	}
}
