// Package mining implements the mining-pool substrate: Poisson
// proof-of-work block production with winners drawn proportionally to
// hash power, geo-placed pool gateways, and the selfish behaviours the
// paper documents — empty-block mining (§III-C3), one-miner forks
// (§III-C5) and rare pool-partition multi-tuples.
package mining

import (
	"fmt"

	"ethmeasure/internal/geo"
)

// PoolSpec describes one mining pool (or the aggregate population of
// remaining small miners).
type PoolSpec struct {
	// Name is the pool's public tag (as scraped from block extra-data
	// by explorers, which is how the paper attributes blocks).
	Name string

	// Power is the pool's share of total network hash power in [0,1].
	Power float64

	// Gateways lists the regions where the pool operates block-publish
	// gateways. Pools deliberately spread gateways and hide their exact
	// location (paper §III-B2); the block originates at one of these.
	Gateways []geo.Region

	// EmptyRate is the probability that a block the pool mines carries
	// no transactions (paper §III-C3).
	EmptyRate float64

	// SiblingRate is the probability that, having mined a block, the
	// pool keeps mining at the same height and publishes a sibling — a
	// one-miner fork that farms uncle rewards (paper §III-C5).
	SiblingRate float64

	// SiblingTripleFrac is the fraction of sibling events that produce
	// two extra siblings instead of one.
	SiblingTripleFrac float64

	// SiblingSameTxFrac is the fraction of siblings mined with the same
	// transaction set as the original (paper §V: 56%).
	SiblingSameTxFrac float64
}

// Validate checks the spec for out-of-range values.
func (s *PoolSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("mining: pool spec missing name")
	}
	if s.Power < 0 || s.Power > 1 {
		return fmt.Errorf("mining: pool %s power %f out of [0,1]", s.Name, s.Power)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"EmptyRate", s.EmptyRate},
		{"SiblingRate", s.SiblingRate},
		{"SiblingTripleFrac", s.SiblingTripleFrac},
		{"SiblingSameTxFrac", s.SiblingSameTxFrac},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("mining: pool %s %s %f out of [0,1]", s.Name, p.name, p.v)
		}
	}
	if len(s.Gateways) == 0 {
		return fmt.Errorf("mining: pool %s has no gateway regions", s.Name)
	}
	return nil
}

// PaperPools returns the 15 named pools plus the aggregate remainder,
// with the hash-power shares the paper measured during April 2019
// (Figure 3 parentheses) and behaviour rates calibrated to §III-C3
// (empty blocks) and §III-C5 (one-miner forks).
//
// Gateway placement encodes the paper's finding that several prominent
// pools operate from Asia while Ethermine and Nanopool are
// Europe-centred, producing the Eastern-Asia first-observation
// advantage of Figure 2.
func PaperPools() []PoolSpec {
	ea := []geo.Region{geo.EasternAsia}
	return []PoolSpec{
		{
			Name:  "Ethermine",
			Power: 0.2532,
			// Ethermine is operated from Europe; repeated regions act
			// as publication weights (blocks rotate across gateways).
			Gateways: []geo.Region{
				geo.WesternEurope, geo.WesternEurope, geo.CentralEurope,
				geo.CentralEurope, geo.NorthAmerica, geo.EasternAsia,
			},
			EmptyRate:         0.023,
			SiblingRate:       0.013,
			SiblingTripleFrac: 0.014,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:  "Sparkpool",
			Power: 0.2288,
			Gateways: []geo.Region{
				geo.EasternAsia, geo.EasternAsia, geo.EasternAsia,
				geo.WesternEurope, geo.CentralEurope,
			},
			EmptyRate:         0.013,
			SiblingRate:       0.013,
			SiblingTripleFrac: 0.014,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:  "F2pool2",
			Power: 0.1275,
			Gateways: []geo.Region{
				geo.EasternAsia, geo.EasternAsia, geo.EasternAsia,
				geo.WesternEurope,
			},
			EmptyRate:         0.010,
			SiblingRate:       0.010,
			SiblingTripleFrac: 0.014,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:  "Nanopool",
			Power: 0.1210,
			Gateways: []geo.Region{
				geo.CentralEurope, geo.CentralEurope, geo.EasternEurope,
				geo.WesternEurope, geo.NorthAmerica,
			},
			EmptyRate:         0, // paper: mined no empty blocks
			SiblingRate:       0.008,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:  "Miningpoolhub1",
			Power: 0.0561,
			// Korea-based with US/EU stratum endpoints.
			Gateways: []geo.Region{
				geo.EasternAsia, geo.EasternAsia, geo.EasternEurope,
				geo.NorthAmerica,
			},
			EmptyRate:         0, // paper: mined no empty blocks
			SiblingRate:       0.006,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "HuoBi.pro",
			Power:             0.0185,
			Gateways:          ea,
			EmptyRate:         0.012,
			SiblingRate:       0.004,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "Pandapool",
			Power:             0.0182,
			Gateways:          ea,
			EmptyRate:         0.010,
			SiblingRate:       0.004,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "DwarfPool1",
			Power:             0.0174,
			Gateways:          []geo.Region{geo.WesternEurope, geo.EasternEurope},
			EmptyRate:         0.008,
			SiblingRate:       0.004,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "Xnpool",
			Power:             0.0134,
			Gateways:          ea,
			EmptyRate:         0.010,
			SiblingRate:       0.003,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "Uupool",
			Power:             0.0133,
			Gateways:          ea,
			EmptyRate:         0.009,
			SiblingRate:       0.003,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "Minerall",
			Power:             0.0123,
			Gateways:          []geo.Region{geo.EasternEurope, geo.CentralEurope},
			EmptyRate:         0.008,
			SiblingRate:       0.003,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "Firepool",
			Power:             0.0122,
			Gateways:          ea,
			EmptyRate:         0.008,
			SiblingRate:       0.003,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:     "Zhizhu",
			Power:    0.0085,
			Gateways: ea,
			// Paper: more than 25% of Zhizhu's blocks were empty.
			EmptyRate:         0.26,
			SiblingRate:       0.003,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "MiningExpress",
			Power:             0.0081,
			Gateways:          ea,
			EmptyRate:         0.12,
			SiblingRate:       0.003,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:              "Hiveon",
			Power:             0.0077,
			Gateways:          []geo.Region{geo.CentralEurope, geo.EasternEurope},
			EmptyRate:         0.005,
			SiblingRate:       0.003,
			SiblingSameTxFrac: 0.56,
		},
		{
			Name:  "Remaining",
			Power: 0.0839,
			// Small independent miners are spread world-wide. Includes
			// the curious account that only ever mined empty blocks.
			Gateways: []geo.Region{
				geo.NorthAmerica, geo.EasternAsia, geo.WesternEurope,
				geo.CentralEurope, geo.EasternEurope, geo.SoutheastAsia,
				geo.SouthAmerica, geo.Oceania,
			},
			EmptyRate:         0.003,
			SiblingRate:       0.001,
			SiblingSameTxFrac: 0.56,
		},
	}
}

// UniformGatewayPools returns the same power distribution as
// PaperPools but with every pool's gateways spread across all regions.
// The geography ablation uses it to show the Eastern-Asia advantage of
// Figure 2 disappear.
func UniformGatewayPools() []PoolSpec {
	pools := PaperPools()
	all := geo.AllRegions()
	for i := range pools {
		pools[i].Gateways = all
	}
	return pools
}

// TotalPower sums the power shares of the given specs.
func TotalPower(specs []PoolSpec) float64 {
	total := 0.0
	for i := range specs {
		total += specs[i].Power
	}
	return total
}
