package mining

import (
	"testing"
	"time"

	"ethmeasure/internal/consensus"
	"ethmeasure/internal/geo"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/types"
)

func TestWithholdingConsultsRewardSchedule(t *testing.T) {
	blk := func(diff uint64) *types.Block {
		return &types.Block{Hash: types.Hash(diff), TotalDiff: diff}
	}

	// Under Ethereum's schedule a beaten private chain still earns
	// uncle rewards, so the withholder publishes it.
	eth, err := NewWithholding(5)
	if err != nil {
		t.Fatal(err)
	}
	eth.BindProtocol(consensus.Ethereum())
	eth.OnMined(blk(1))
	if burst := eth.OnPublicBlock(blk(2)); len(burst) != 1 {
		t.Fatalf("ethereum withholder released %d blocks, want 1", len(burst))
	}
	if eth.Discarded() != 0 {
		t.Errorf("ethereum withholder discarded %d blocks", eth.Discarded())
	}

	// Under Bitcoin a strictly overtaken private chain is worthless:
	// discard.
	btc, err := NewWithholding(5)
	if err != nil {
		t.Fatal(err)
	}
	btc.BindProtocol(consensus.Bitcoin())
	btc.OnMined(blk(1))
	if burst := btc.OnPublicBlock(blk(2)); burst != nil {
		t.Fatalf("bitcoin withholder published a beaten chain: %d blocks", len(burst))
	}
	if btc.Discarded() != 1 || btc.Lead() != 0 {
		t.Errorf("discarded=%d lead=%d, want 1/0", btc.Discarded(), btc.Lead())
	}

	// A tie is NOT overtaken: the private block can still win the
	// first-seen race at every node it reaches first, so it is
	// published, not discarded (the Eyal-Sirer race branch on Bitcoin).
	tie, err := NewWithholding(5)
	if err != nil {
		t.Fatal(err)
	}
	tie.BindProtocol(consensus.Bitcoin())
	tie.OnMined(blk(1))
	if burst := tie.OnPublicBlock(blk(1)); len(burst) != 1 {
		t.Fatalf("bitcoin withholder forfeited the tie race: released %d blocks, want 1", len(burst))
	}
	if tie.Discarded() != 0 {
		t.Errorf("tie race discarded %d blocks", tie.Discarded())
	}

	// The race branch survives: a private chain still ahead by one is
	// published to win the fork race, even without reference rewards.
	race, err := NewWithholding(5)
	if err != nil {
		t.Fatal(err)
	}
	race.BindProtocol(consensus.Bitcoin())
	race.OnMined(blk(5))
	race.OnMined(blk(6))
	if burst := race.OnPublicBlock(blk(5)); len(burst) != 2 {
		t.Fatalf("bitcoin withholder raced with %d blocks, want 2", len(burst))
	}
	if race.Discarded() != 0 {
		t.Errorf("racing withholder discarded %d blocks", race.Discarded())
	}
}

// TestMinerBindsProtocolToStrategy checks the attach path: a strategy
// attached through the miner receives the registry's protocol, and a
// bitcoin miner builds blocks without uncle references end to end.
func TestMinerBindsProtocolToStrategy(t *testing.T) {
	h := newMiningHarnessProto(t, 3, consensus.Bitcoin())
	specs := []PoolSpec{
		{Name: "Attacker", Power: 0.6, Gateways: []geo.Region{geo.NorthAmerica}},
		{Name: "Honest", Power: 0.4, Gateways: []geo.Region{geo.NorthAmerica}},
	}
	cfg := DefaultConfig()
	cfg.InterBlockTime = 8 * time.Second
	m := h.newMiner(cfg, specs, [][]*p2p.Node{{h.nodes[0]}, {h.nodes[1]}})
	if m.Protocol().Name() != consensus.BitcoinName {
		t.Fatalf("miner protocol = %q", m.Protocol().Name())
	}
	w, err := NewWithholding(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachStrategy("Attacker", w); err != nil {
		t.Fatal(err)
	}
	if w.proto == nil || w.proto.Name() != consensus.BitcoinName {
		t.Fatal("attach did not bind the miner's protocol")
	}

	m.Start(30 * time.Minute)
	if _, err := h.engine.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if m.Mined() == 0 {
		t.Fatal("no blocks mined")
	}
	h.reg.Blocks(func(b *types.Block) bool {
		if len(b.Uncles) != 0 {
			t.Errorf("bitcoin miner attached %d uncles to %s", len(b.Uncles), b.Hash)
		}
		return true
	})
}
