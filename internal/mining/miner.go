package mining

import (
	"fmt"
	"math/rand"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/consensus"
	"ethmeasure/internal/p2p"
	"ethmeasure/internal/rlp"
	"ethmeasure/internal/sim"
	"ethmeasure/internal/txpool"
	"ethmeasure/internal/types"
)

// TxResolver maps a transaction hash back to the transaction object.
// The workload generator provides it so miners can return reverted
// transactions to their pools after a reorg.
type TxResolver func(types.Hash) *types.Transaction

// Config parameterises the mining process.
type Config struct {
	// InterBlockTime is the network-wide mean block interval. The
	// measurement period's value was 13.3 s (paper §III-C1).
	InterBlockTime time.Duration

	// HeadSwitchMean models pool-internal latency between a gateway
	// importing a new head and the pool's workers actually mining on
	// it (stratum job propagation, work restarts). Together with
	// network propagation it determines the fork rate.
	HeadSwitchMean time.Duration

	// BlockCapacity is the maximum number of transactions per block.
	BlockCapacity int

	// SiblingDelayMin/Max bound how long after the original block a
	// one-miner sibling is published.
	SiblingDelayMin time.Duration
	SiblingDelayMax time.Duration

	// TupleEvents schedules pool-malfunction events: each entry mines
	// that many same-height blocks at a uniformly random time during
	// the run (the paper saw one 4-tuple and one 7-tuple in a month).
	TupleEvents []int
}

// DefaultConfig returns mining parameters for the measurement period.
func DefaultConfig() Config {
	return Config{
		InterBlockTime:  13300 * time.Millisecond,
		HeadSwitchMean:  600 * time.Millisecond,
		BlockCapacity:   150,
		SiblingDelayMin: 300 * time.Millisecond,
		SiblingDelayMax: 2500 * time.Millisecond,
		TupleEvents:     nil,
	}
}

// Pool is the runtime state of one mining pool.
type Pool struct {
	ID   types.PoolID
	Spec PoolSpec

	gateways []*p2p.Node
	primary  *p2p.Node
	txs      *txpool.Pool
	jobHead  *types.Block
	rrGate   int // round-robin gateway cursor for publishing
}

// JobHead returns the block the pool is currently mining on.
func (p *Pool) JobHead() *types.Block { return p.jobHead }

// TxPool returns the pool's pending-transaction pool (diagnostics).
func (p *Pool) TxPool() *txpool.Pool { return p.txs }

// Gateways returns the pool's gateway nodes.
func (p *Pool) Gateways() []*p2p.Node { return p.gateways }

// Miner drives block production for all pools on the simulation engine.
type Miner struct {
	cfg     Config
	engine  *sim.Engine
	reg     *chain.Registry
	proto   consensus.Protocol // the registry's rule set, cached
	rng     *rand.Rand
	pools   []*Pool
	cum     []float64
	issuer  *types.HashIssuer
	resolve TxResolver
	horizon sim.Time

	// OnBlockMined, when non-nil, fires for every block created
	// (including siblings and tuples) before it is published.
	OnBlockMined func(b *types.Block, pool *Pool)

	mined         int
	siblings      int
	emptyByPolicy int
	emptyStarved  int

	// strategies binds publication strategies to individual pools
	// (at most one per pool; see Strategy in withhold.go). The selfish
	// block-withholding attack is the built-in one.
	strategies []poolStrategy
}

// NewMiner creates the mining subsystem. Each spec must come with at
// least one gateway node (already wired into the p2p network); the
// first gateway is the pool's primary, whose chain view and txpool
// drive job selection.
func NewMiner(
	cfg Config,
	engine *sim.Engine,
	reg *chain.Registry,
	specs []PoolSpec,
	gateways [][]*p2p.Node,
	issuer *types.HashIssuer,
	resolve TxResolver,
) (*Miner, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mining: no pool specs")
	}
	if len(specs) != len(gateways) {
		return nil, fmt.Errorf("mining: %d specs but %d gateway sets", len(specs), len(gateways))
	}
	if cfg.InterBlockTime <= 0 {
		return nil, fmt.Errorf("mining: inter-block time must be positive")
	}
	if cfg.BlockCapacity < 0 {
		return nil, fmt.Errorf("mining: negative block capacity")
	}
	m := &Miner{
		cfg:     cfg,
		engine:  engine,
		reg:     reg,
		proto:   reg.Protocol(),
		rng:     engine.RNG("mining"),
		issuer:  issuer,
		resolve: resolve,
	}
	total := 0.0
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
		if len(gateways[i]) == 0 {
			return nil, fmt.Errorf("mining: pool %s has no gateway nodes", specs[i].Name)
		}
		pool := &Pool{
			ID:       types.PoolID(i + 1),
			Spec:     specs[i],
			gateways: gateways[i],
			primary:  gateways[i][0],
			txs:      txpool.New(),
			jobHead:  reg.Genesis(),
		}
		m.pools = append(m.pools, pool)
		total += specs[i].Power
		m.cum = append(m.cum, total)

		m.hookGateway(pool)
	}
	return m, nil
}

// hookGateway wires the pool's primary gateway events into job and
// txpool management. Miner state (jitter stream, job heads, txpools)
// lives on the serial timeline, so when the gateway node runs on a
// shard the hook bodies are deferred to the next window barrier; on
// the serial engine they run inline exactly as before.
func (m *Miner) hookGateway(pool *Pool) {
	onNewHead := func(b *types.Block) {
		// Pool-internal job switch latency before workers move to the
		// new head. The pool's own blocks bypass this via mineBlock.
		delay := jitteredDuration(m.rng, m.cfg.HeadSwitchMean, 0.8)
		m.engine.After(delay, func() { m.switchJob(pool, b) })
	}
	txSink := func(tx *types.Transaction) {
		pool.txs.Add(tx)
	}
	if d, ok := pool.primary.Scheduler().(sim.Deferrer); ok {
		pool.primary.OnNewHead = func(b *types.Block) { d.Defer(func() { onNewHead(b) }) }
		pool.primary.TxSink = func(tx *types.Transaction) { d.Defer(func() { txSink(tx) }) }
		return
	}
	pool.primary.OnNewHead = onNewHead
	pool.primary.TxSink = txSink
}

// switchJob moves the pool's mining job to newHead if the protocol's
// fork choice prefers it, reconciling the txpool across the reorg.
func (m *Miner) switchJob(pool *Pool, newHead *types.Block) {
	if !m.proto.Prefer(newHead, pool.jobHead) {
		return
	}
	abandoned, adopted := chain.Reorg(m.reg, pool.jobHead, newHead, 64)
	for _, b := range abandoned {
		pool.txs.UnmarkIncluded(m.resolveAll(b.TxHashes))
	}
	for _, b := range adopted {
		pool.txs.MarkIncluded(m.resolveAll(b.TxHashes))
	}
	pool.jobHead = newHead
}

func (m *Miner) resolveAll(hashes []types.Hash) []*types.Transaction {
	if m.resolve == nil || len(hashes) == 0 {
		return nil
	}
	out := make([]*types.Transaction, 0, len(hashes))
	for _, h := range hashes {
		if tx := m.resolve(h); tx != nil {
			out = append(out, tx)
		}
	}
	return out
}

// Start schedules the mining process up to the given horizon, plus any
// configured tuple-malfunction events.
func (m *Miner) Start(horizon sim.Time) {
	m.horizon = horizon
	m.scheduleNext()
	for _, k := range m.cfg.TupleEvents {
		k := k
		at := time.Duration(m.rng.Int63n(int64(horizon)))
		m.engine.Schedule(at, func() { m.mineTuple(k) })
	}
}

// Mined returns how many blocks have been produced (incl. siblings).
func (m *Miner) Mined() int { return m.mined }

// Siblings returns how many intentional one-miner sibling blocks were
// produced.
func (m *Miner) Siblings() int { return m.siblings }

// EmptyByPolicy returns how many blocks were mined empty by deliberate
// pool policy (the paper's selfish behaviour).
func (m *Miner) EmptyByPolicy() int { return m.emptyByPolicy }

// EmptyStarved returns how many blocks came out empty because the
// pool's transaction pool had nothing executable at mining time.
func (m *Miner) EmptyStarved() int { return m.emptyStarved }

// Pools returns the runtime pools in spec order.
func (m *Miner) Pools() []*Pool { return m.pools }

// Protocol returns the consensus rule set the miner produces blocks
// under (the registry's protocol). Strategies and scenario plugins
// consult it for the reward schedule.
func (m *Miner) Protocol() consensus.Protocol { return m.proto }

func (m *Miner) scheduleNext() {
	wait := sim.ExpDuration(m.rng, m.cfg.InterBlockTime)
	if m.engine.Now()+wait > m.horizon {
		return
	}
	m.engine.After(wait, func() {
		m.mineOne()
		m.scheduleNext()
	})
}

// samplePool draws a winner proportionally to hash power.
func (m *Miner) samplePool() *Pool {
	total := m.cum[len(m.cum)-1]
	x := m.rng.Float64() * total
	for i, c := range m.cum {
		if x < c {
			return m.pools[i]
		}
	}
	return m.pools[len(m.pools)-1]
}

// mineOne produces the next block of the global Poisson process and,
// with the pool's configured probability, schedules sibling blocks at
// the same height (one-miner fork).
func (m *Miner) mineOne() {
	pool := m.samplePool()
	parent := pool.jobHead
	// A pool with an attached strategy may prefer a different parent
	// (a withholding pool extends its private tip instead of the
	// public head).
	if private := m.strategyParent(pool); private != nil {
		parent = private
	}
	empty := m.rng.Float64() < pool.Spec.EmptyRate
	b := m.buildBlock(pool, parent, empty, nil)
	if b.Empty() {
		if empty {
			m.emptyByPolicy++
		} else {
			m.emptyStarved++
		}
	}
	if m.maybeIntercept(pool, b) {
		return // intercepted: no immediate publish, no siblings
	}
	m.publish(pool, b, true /* ownJobAdvance */)

	if m.rng.Float64() >= pool.Spec.SiblingRate {
		return
	}
	extras := 1
	if m.rng.Float64() < pool.Spec.SiblingTripleFrac {
		extras = 2
	}
	for i := 0; i < extras; i++ {
		sameTx := m.rng.Float64() < pool.Spec.SiblingSameTxFrac
		delay := m.siblingDelay()
		m.engine.After(delay, func() { m.mineSibling(pool, b, sameTx) })
	}
}

func (m *Miner) siblingDelay() time.Duration {
	lo, hi := m.cfg.SiblingDelayMin, m.cfg.SiblingDelayMax
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(m.rng.Int63n(int64(hi-lo)))
}

// mineSibling publishes an alternative version of original at the same
// height, provided the chain has not moved past the window in which
// the sibling could still earn anything.
func (m *Miner) mineSibling(pool *Pool, original *types.Block, sameTx bool) {
	parent, ok := m.reg.Get(original.ParentHash)
	if !ok {
		return
	}
	// Under reference-paying protocols the window is the reference
	// (uncle) depth; under no-reference protocols a sibling is only
	// worth publishing while it can still win the fork race at the tip.
	window := m.proto.MaxReferenceDepth()
	if window == 0 {
		window = 1
	}
	if pool.jobHead.Number > parent.Number+window {
		return // too old to ever be rewarded; pointless to publish
	}
	var b *types.Block
	if sameTx {
		// Same transaction set as the original (paper §V: 56% of cases).
		txs := append([]types.Hash{}, original.TxHashes...)
		b = m.buildBlock(pool, parent, len(txs) == 0, txs)
	} else {
		// Fresh selection: the original's txs are marked included in the
		// pool's txpool, so Executable yields a distinct set.
		b = m.buildBlock(pool, parent, false, nil)
	}
	m.siblings++
	m.publish(pool, b, false /* sibling never advances the job */)
}

// mineTuple simulates a pool partition/malfunction: k blocks at the
// same height in quick succession from one (power-weighted) pool.
func (m *Miner) mineTuple(k int) {
	if k < 2 {
		return
	}
	pool := m.samplePool()
	parent := pool.jobHead
	for i := 0; i < k; i++ {
		delay := time.Duration(i) * 400 * time.Millisecond
		first := i == 0
		m.engine.After(delay, func() {
			b := m.buildBlock(pool, parent, false, nil)
			m.publish(pool, b, first)
		})
	}
}

// buildBlock assembles a block for pool extending parent. When txHashes
// is nil and the block is not empty, transactions come from the pool's
// executable set. The wire size derives from the block's actual RLP
// encoding.
func (m *Miner) buildBlock(pool *Pool, parent *types.Block, empty bool, txHashes []types.Hash) *types.Block {
	var selected []*types.Transaction
	if txHashes == nil && !empty {
		selected = pool.txs.Executable(m.cfg.BlockCapacity)
		txHashes = make([]types.Hash, len(selected))
		for i, tx := range selected {
			txHashes[i] = tx.Hash
		}
	}
	uncles := pool.primary.View().UncleCandidatesFor(parent, m.proto.MaxReferencesPerBlock())
	b := &types.Block{
		Hash:       m.issuer.Next(),
		Number:     parent.Number + 1,
		ParentHash: parent.Hash,
		Miner:      pool.ID,
		TxHashes:   txHashes,
		Uncles:     uncles,
		Difficulty: 1,
		MinedAt:    m.engine.Now(),
	}
	b.Size = rlp.BlockWireSize(b, selected)
	return b
}

// publish registers the block globally and broadcasts it from one of
// the pool's gateways (round-robin across gateways, matching pools'
// practice of publishing through geographically spread gateways).
func (m *Miner) publish(pool *Pool, b *types.Block, advanceJob bool) {
	if err := m.reg.Add(b); err != nil {
		// Only possible on internal inconsistency; drop the block.
		return
	}
	m.mined++
	if m.OnBlockMined != nil {
		m.OnBlockMined(b, pool)
	}
	if advanceJob && m.proto.Prefer(b, pool.jobHead) {
		// The pool learns of its own block instantly.
		abandoned, adopted := chain.Reorg(m.reg, pool.jobHead, b, 64)
		for _, blk := range abandoned {
			pool.txs.UnmarkIncluded(m.resolveAll(blk.TxHashes))
		}
		for _, blk := range adopted {
			pool.txs.MarkIncluded(m.resolveAll(blk.TxHashes))
		}
		pool.jobHead = b
	}
	gw := pool.gateways[pool.rrGate%len(pool.gateways)]
	pool.rrGate++
	gw.PublishBlock(b)
	// Public progress may trigger a competing strategy's override burst.
	m.notifyPublicBlock(pool, b)
}

func jitteredDuration(rng *rand.Rand, d time.Duration, j float64) time.Duration {
	if d <= 0 {
		return 0
	}
	f := 1 - j/2 + rng.Float64()*1.5*j
	if f < 0.05 {
		f = 0.05
	}
	return time.Duration(float64(d) * f)
}
