// Package sim implements a deterministic discrete-event simulation
// engine. All network, mining and measurement activity in this project
// runs on top of a single engine instance: components schedule
// callbacks at virtual times, and the engine executes them in
// timestamp order (ties broken by scheduling order) so that a run is
// fully reproducible from its configuration and seed.
//
// The scheduler is built for campaign scale (5,000+ nodes, tens of
// millions of events): events live in a slab indexed by a ladder queue
// (O(1) amortized push/pop; see queue.go), freed slots are recycled
// through a free list, and the ScheduleArg path lets hot callers
// (message delivery, protocol timers) enqueue work without allocating
// a closure — zero steady-state allocations per event.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp: the duration elapsed since the start of
// the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Arg is the packed argument record of an allocation-free event. The
// interface fields are intended for pointer-shaped payloads (struct
// pointers, interfaces), which convert to `any` without allocating.
type Arg struct {
	A, B, C any
	U       uint64
	K       int32
}

// Handler executes allocation-free events scheduled with ScheduleArg.
// Implementations dispatch on Arg.K when they serve multiple event
// kinds.
type Handler interface {
	HandleSimEvent(arg Arg)
}

// event is one scheduled callback in the slab. Exactly one of fn and h
// is set: fn for the closure path, h (+arg) for the allocation-free
// path.
type event struct {
	at  Time
	seq uint64 // tie-break for deterministic ordering
	fn  func()
	h   Handler
	arg Arg
}

// ErrStopped is returned by Run when the engine was stopped explicitly
// before reaching the horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is a deterministic discrete-event scheduler. It is not safe
// for concurrent use: simulations are single-threaded by design so that
// identical seeds yield identical runs.
type Engine struct {
	now  Time
	slab []event // event storage; slots recycled via free
	// Pending slot indices ordered by (at, seq) live in the ladder
	// queue lq, or — when the differential suites select the reference
	// heap via SetQueueImpl — in ref. Exactly one is active per engine;
	// the qPush/qPop/qPeek/qSize wrappers branch on ref so the hot path
	// calls the concrete ladder directly, with no interface dispatch.
	lq      ladder
	ref     *refHeap
	free    []int32 // recycled slot indices (LIFO for cache locality)
	seq     uint64
	stopped atomic.Bool // atomic: Stop may be called from another goroutine
	ran     uint64
	seed    int64
	streams map[string]*rand.Rand
}

// NewEngine creates an engine whose named RNG streams derive from seed.
func NewEngine(seed int64) *Engine {
	e := &Engine{
		seed:    seed,
		streams: make(map[string]*rand.Rand),
	}
	e.initQueue()
	return e
}

// initQueue installs the queue implementation selected by SetQueueImpl.
// Called once per engine at construction (NewEngine, NewSharded);
// Reset keeps the engine's implementation.
func (e *Engine) initQueue() {
	if defaultQueueImpl == QueueRefHeap {
		e.ref = &refHeap{}
	}
}

func (e *Engine) qPush(at Time, seq uint64, idx int32) {
	if e.ref == nil {
		e.lq.push(at, seq, idx)
	} else {
		e.ref.push(at, seq, idx)
	}
}

func (e *Engine) qPop() (int32, bool) {
	if e.ref == nil {
		return e.lq.pop()
	}
	return e.ref.pop()
}

func (e *Engine) qPeek() (Time, bool) {
	if e.ref == nil {
		return e.lq.peek()
	}
	return e.ref.peek()
}

func (e *Engine) qSize() int {
	if e.ref == nil {
		return e.lq.size()
	}
	return e.ref.size()
}

// Reset returns the engine to the state NewEngine(seed) would produce
// while keeping the slab, queue (ladder run, ring buckets, overflow)
// and free-list backing arrays, so a recycled engine schedules its
// first events without growing anything.
// The slab is zeroed over its full capacity — the GC scans a slice's
// whole backing array, so stale handler/closure references beyond len
// would otherwise pin the previous run's object graph. Named RNG
// streams are dropped and lazily recreated by RNG, which reproduces
// them bit-identically from the new seed.
func (e *Engine) Reset(seed int64) {
	// Only the written prefix needs zeroing (releasing the closure and
	// payload references the GC would otherwise keep reachable through
	// the backing array): slots past len are either fresh from the
	// allocator — events hold pointers, so slice growth always hands
	// back zeroed memory — or were zeroed by a previous Reset, and
	// truncating after the clear restores that invariant.
	clear(e.slab)
	e.slab = e.slab[:0]
	if e.ref == nil {
		e.lq.reset()
	} else {
		e.ref.reset()
	}
	e.free = e.free[:0]
	e.seq = 0
	e.now = 0
	e.ran = 0
	e.seed = seed
	e.stopped.Store(false)
	if e.streams != nil {
		clear(e.streams)
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun returns how many events have executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of events waiting in the queue. The
// ladder queue tracks its population in one counter, so this is O(1)
// and never forces a bucket refill.
func (e *Engine) Pending() int { return e.qSize() }

// Seed returns the master seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// RNG returns the named deterministic random stream, creating it on
// first use. Distinct names give independent streams, so adding a new
// consumer does not perturb the draws seen by existing ones.
func (e *Engine) RNG(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	h := fnv64(name)
	r := rand.New(rand.NewSource(e.seed ^ int64(h)))
	e.streams[name] = r
	return r
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// alloc claims a slab slot, reusing a freed one when available so
// churn-heavy campaigns do not grow the slab unboundedly.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.slab = append(e.slab, event{})
	return int32(len(e.slab) - 1)
}

// Schedule runs fn at the given absolute virtual time. Scheduling in
// the past (before Now) is an error and the event is dropped with a
// panic, since it indicates a logic bug in the caller.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	idx := e.alloc()
	ev := &e.slab[idx]
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	e.qPush(at, e.seq, idx)
}

// ScheduleArg runs h.HandleSimEvent(arg) at the given absolute virtual
// time. Unlike Schedule it captures no closure: once the slab is warm
// this path performs zero allocations per event, which is what lets
// 5,000-node campaigns run tens of millions of deliveries without GC
// pressure. Ordering semantics are identical to Schedule.
func (e *Engine) ScheduleArg(at Time, h Handler, arg Arg) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	idx := e.alloc()
	ev := &e.slab[idx]
	ev.at, ev.seq, ev.h, ev.arg = at, e.seq, h, arg
	e.qPush(at, e.seq, idx)
}

// After runs fn after the given delay from the current time. Negative
// delays are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// AfterArg runs h.HandleSimEvent(arg) after the given delay from the
// current time. Negative delays are clamped to zero.
func (e *Engine) AfterArg(d time.Duration, h Handler, arg Arg) {
	if d < 0 {
		d = 0
	}
	e.ScheduleArg(e.now+d, h, arg)
}

// Stop halts the run loop after the currently executing event returns.
// Unlike every other Engine method it is safe to call from another
// goroutine — the campaign server cancels in-flight jobs this way.
func (e *Engine) Stop() { e.stopped.Store(true) }

// NextAt returns the timestamp of the earliest pending event, or false
// when the queue is empty. Peeking may drain the next ladder bucket
// into the sorted active run (amortized O(1), and work the following
// pop would have done anyway); it never changes the pop order, so the
// sharded barrier loop sees window edges identical to the heap's.
func (e *Engine) NextAt() (Time, bool) {
	return e.qPeek()
}

// AdvanceTo moves the clock forward to t without executing anything.
// It is a no-op when t is not ahead of the current time, and panics if
// an event earlier than t is still pending (advancing past it would
// silently reorder the run). The sharded coordinator uses this to keep
// the serial engine's clock aligned with window barriers.
func (e *Engine) AdvanceTo(t Time) {
	if t <= e.now {
		return
	}
	if at, ok := e.qPeek(); ok && at < t {
		panic(fmt.Sprintf("sim: advancing to %v past pending event at %v", t, at))
	}
	e.now = t
}

// execTop pops the earliest event, releases its slot for reuse and
// executes it. The slot is cleared and freed before the callback runs
// so that callbacks scheduling new events (the dominant pattern)
// immediately reuse hot slots.
func (e *Engine) execTop() {
	idx, _ := e.qPop()
	ev := &e.slab[idx]
	at, fn, h, arg := ev.at, ev.fn, ev.h, ev.arg
	ev.fn, ev.h, ev.arg = nil, nil, Arg{} // release references for GC
	e.free = append(e.free, idx)
	e.now = at
	e.ran++
	if fn != nil {
		fn()
	} else {
		h.HandleSimEvent(arg)
	}
}

// Run executes events in order until the queue drains, the virtual
// clock passes horizon, or Stop is called. Events scheduled exactly at
// the horizon still run. It returns the virtual time at which the run
// ended and ErrStopped if the engine was stopped explicitly.
func (e *Engine) Run(horizon Time) (Time, error) {
	e.stopped.Store(false)
	for {
		at, ok := e.qPeek()
		if !ok {
			break
		}
		if at > horizon {
			e.now = horizon
			return e.now, nil
		}
		e.execTop()
		if e.stopped.Load() {
			return e.now, ErrStopped
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.now, nil
}

// Step executes exactly one event, if any, and reports whether an
// event ran. Useful in tests that need fine-grained control.
func (e *Engine) Step() bool {
	if e.qSize() == 0 {
		return false
	}
	e.execTop()
	return true
}

// slabSize reports the number of slots ever allocated (tests: slot
// reuse keeps this bounded by the high-water pending count, not the
// total event count).
func (e *Engine) slabSize() int { return len(e.slab) }

// Scheduler is the event-scheduling surface shared by the serial
// *Engine and a *Shard of the sharded engine. Components that only
// need to read the clock and enqueue future work (protocol nodes,
// network delivery) take a Scheduler so the same code runs unchanged
// on either engine.
type Scheduler interface {
	Now() Time
	Schedule(at Time, fn func())
	ScheduleArg(at Time, h Handler, arg Arg)
	After(d time.Duration, fn func())
	AfterArg(d time.Duration, h Handler, arg Arg)
}

// Deferrer is implemented by schedulers that may run callbacks off the
// serial coordinator thread (a *Shard during a parallel window). Defer
// hands fn back to the coordinator: it runs at the next window barrier,
// in deterministic (time, shard) order, with exclusive access to all
// serial state. The plain *Engine intentionally does not implement
// Deferrer — a type assertion distinguishes the two modes at setup
// time.
type Deferrer interface {
	Defer(fn func())
}

// splitmixSource is a splitmix64 rand.Source64: one uint64 of state,
// no allocation beyond the source itself. Each (seed, domain, id)
// triple yields an independent stream, which is what lets per-node and
// per-sender RNGs exist by the tens of thousands without the map and
// hashing costs of Engine.RNG.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// NewStream returns a deterministic RNG for the (domain, id) pair
// derived from the master seed. Unlike Engine.RNG streams, these are
// independent of engine identity and draw order elsewhere, so a
// component's randomness stays bit-identical whether its events run on
// the serial engine or on any shard.
func NewStream(seed int64, domain string, id uint64) *rand.Rand {
	state := uint64(seed) ^ fnv64(domain) ^ (id * 0x9E3779B97F4A7C15)
	return rand.New(&splitmixSource{state: state})
}

// ReseedStream re-seeds a stream previously returned by NewStream to
// the exact state a fresh NewStream(seed, domain, id) call would have.
// Warm-run pools use this to recycle per-node RNGs: the splitmix source
// is one word of state, and Seed both installs it and resets the
// *rand.Rand read buffer, so the recycled stream's draw sequence is
// bit-identical to a cold one.
func ReseedStream(r *rand.Rand, seed int64, domain string, id uint64) {
	state := uint64(seed) ^ fnv64(domain) ^ (id * 0x9E3779B97F4A7C15)
	r.Seed(int64(state))
}

// ExpDuration samples an exponentially distributed duration with the
// given mean using the supplied RNG. Used for Poisson processes (block
// arrivals, transaction arrivals).
func ExpDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}
