// Package sim implements a deterministic discrete-event simulation
// engine. All network, mining and measurement activity in this project
// runs on top of a single engine instance: components schedule
// callbacks at virtual times, and the engine executes them in
// timestamp order (ties broken by scheduling order) so that a run is
// fully reproducible from its configuration and seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp: the duration elapsed since the start of
// the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break for deterministic ordering
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// ErrStopped is returned by Run when the engine was stopped explicitly
// before reaching the horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is a deterministic discrete-event scheduler. It is not safe
// for concurrent use: simulations are single-threaded by design so that
// identical seeds yield identical runs.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	ran     uint64
	seed    int64
	streams map[string]*rand.Rand
}

// NewEngine creates an engine whose named RNG streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:    seed,
		streams: make(map[string]*rand.Rand),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun returns how many events have executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Seed returns the master seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// RNG returns the named deterministic random stream, creating it on
// first use. Distinct names give independent streams, so adding a new
// consumer does not perturb the draws seen by existing ones.
func (e *Engine) RNG(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	h := fnv64(name)
	r := rand.New(rand.NewSource(e.seed ^ int64(h)))
	e.streams[name] = r
	return r
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Schedule runs fn at the given absolute virtual time. Scheduling in
// the past (before Now) is an error and the event is dropped with a
// panic, since it indicates a logic bug in the caller.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After runs fn after the given delay from the current time. Negative
// delays are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue drains, the virtual
// clock passes horizon, or Stop is called. Events scheduled exactly at
// the horizon still run. It returns the virtual time at which the run
// ended and ErrStopped if the engine was stopped explicitly.
func (e *Engine) Run(horizon Time) (Time, error) {
	e.stopped = false
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > horizon {
			e.now = horizon
			return e.now, nil
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.ran++
		next.fn()
		if e.stopped {
			return e.now, ErrStopped
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.now, nil
}

// Step executes exactly one event, if any, and reports whether an
// event ran. Useful in tests that need fine-grained control.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*event)
	e.now = next.at
	e.ran++
	next.fn()
	return true
}

// ExpDuration samples an exponentially distributed duration with the
// given mean using the supplied RNG. Used for Poisson processes (block
// arrivals, transaction arrivals).
func ExpDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}
