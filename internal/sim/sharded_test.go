package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// shardedTrace runs a fixed actor workload under the given shard
// count and returns the ordered trace of serial-phase observations.
// Actors ping each other round-robin with delays at or above the
// lookahead; every delivery defers a trace line, so the trace captures
// both event content and the barrier replay order.
func shardedTrace(t *testing.T, numShards int, actors int, horizon Time) []string {
	t.Helper()
	const lookahead = 5 * time.Millisecond

	global := NewEngine(99)
	s := NewSharded(global, numShards, lookahead)

	var trace []string
	shardOf := func(actor int) *Shard { return s.Shard(actor % numShards) }

	// Each actor owns a deterministic per-actor stream: delays must not
	// depend on shard placement, or the trace would legitimately differ.
	streams := make([]*rand.Rand, actors)
	for i := range streams {
		streams[i] = NewStream(99, "trace", uint64(i))
	}

	var send func(from, to int, hop int)
	send = func(from, to int, hop int) {
		if hop > 40 {
			return
		}
		d := lookahead + time.Duration(streams[from].Int63n(int64(4*time.Millisecond)))
		src, dst := from%numShards, to%numShards
		s.RouteFunc(src, dst, d, func() {
			sh := shardOf(to)
			at := sh.Now()
			sh.Defer(func() {
				trace = append(trace, fmt.Sprintf("%d->%d hop=%d at=%d", from, to, hop, at))
			})
			send(to, (to+1)%actors, hop+1)
		})
	}

	// Seed the system from the serial phase via a global kick-off event.
	global.Schedule(0, func() {
		for i := 0; i < actors; i++ {
			send(i, (i+1)%actors, 0)
		}
	})
	// A few recurring global events interleave with windows.
	var tick func()
	tick = func() {
		trace = append(trace, fmt.Sprintf("tick at=%d", global.Now()))
		if global.Now()+50*time.Millisecond <= horizon {
			global.After(50*time.Millisecond, tick)
		}
	}
	global.Schedule(25*time.Millisecond, tick)

	end, err := s.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if end != horizon {
		t.Fatalf("Run returned %v, want %v", end, horizon)
	}
	if s.Now() != horizon {
		t.Fatalf("Now() = %v after Run, want %v", s.Now(), horizon)
	}
	return trace
}

// TestShardedTraceEquivalence: the same workload produces the same
// serial-phase trace at shard counts 1, 2, 3 and 4 — message order,
// deferral replay order, and timestamps all included.
func TestShardedTraceEquivalence(t *testing.T) {
	const actors, horizon = 12, Time(2 * time.Second)
	base := shardedTrace(t, 1, actors, horizon)
	if len(base) == 0 {
		t.Fatal("empty trace")
	}
	for _, n := range []int{2, 3, 4} {
		got := shardedTrace(t, n, actors, horizon)
		if len(got) != len(base) {
			t.Fatalf("shards=%d: trace length %d, want %d", n, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("shards=%d: trace[%d] = %q, want %q", n, i, got[i], base[i])
			}
		}
	}
}

// TestShardedHorizonSemantics mirrors the serial engine's contract:
// events at the horizon run, events past it stay pending, and every
// clock lands exactly on the horizon.
func TestShardedHorizonSemantics(t *testing.T) {
	global := NewEngine(7)
	s := NewSharded(global, 2, time.Millisecond)

	var atHorizon, past bool
	s.Shard(0).Schedule(100*time.Millisecond, func() { atHorizon = true })
	s.Shard(1).Schedule(100*time.Millisecond+1, func() { past = true })
	global.Schedule(100*time.Millisecond, func() {})

	end, err := s.Run(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !atHorizon {
		t.Error("event at horizon did not run")
	}
	if past {
		t.Error("event past horizon ran")
	}
	if end != Time(100*time.Millisecond) {
		t.Errorf("end = %v", end)
	}
	for i := 0; i < s.NumShards(); i++ {
		if now := s.Shard(i).Now(); now != Time(100*time.Millisecond) {
			t.Errorf("shard %d clock = %v, want horizon", i, now)
		}
	}
	// The pending past-horizon event survives for a follow-up run.
	if _, err := s.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !past {
		t.Error("pending event lost across runs")
	}
}

// TestShardedStopMidWindow: Stop called from inside a shard event
// halts the run with ErrStopped instead of completing the horizon.
func TestShardedStopMidWindow(t *testing.T) {
	global := NewEngine(3)
	s := NewSharded(global, 4, time.Millisecond)

	// A self-rescheduling chain on shard 2 trips the stop mid-window.
	var n int
	var step func()
	step = func() {
		n++
		if n == 500 {
			s.Stop()
			return
		}
		s.Shard(2).After(time.Microsecond, step)
	}
	s.Shard(2).Schedule(0, step)

	_, err := s.Run(time.Hour)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if n < 500 {
		t.Fatalf("stopped after %d steps, want at least 500", n)
	}
}

// TestShardedRejectsLookaheadViolation: a parallel-phase cross-shard
// send below the lookahead is a correctness bug and must panic rather
// than silently race.
func TestShardedRejectsLookaheadViolation(t *testing.T) {
	global := NewEngine(1)
	s := NewSharded(global, 2, 10*time.Millisecond)
	s.Shard(0).Schedule(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard send below lookahead did not panic")
			}
			s.Stop()
		}()
		s.RouteFunc(0, 1, time.Millisecond, func() {})
	})
	if _, err := s.Run(time.Second); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
}

// TestEngineNextAtAdvanceTo covers the two primitives the coordinator
// leans on.
func TestEngineNextAtAdvanceTo(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt on empty engine reported an event")
	}
	e.Schedule(10, func() {})
	if at, ok := e.NextAt(); !ok || at != 10 {
		t.Errorf("NextAt = %v,%v, want 10,true", at, ok)
	}
	e.AdvanceTo(5)
	if e.Now() != 5 {
		t.Errorf("Now = %v after AdvanceTo(5)", e.Now())
	}
	e.AdvanceTo(3) // behind now: no-op
	if e.Now() != 5 {
		t.Errorf("AdvanceTo moved the clock backwards to %v", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo past a pending event did not panic")
		}
	}()
	e.AdvanceTo(11)
}

// TestNewStreamIndependence: streams are deterministic per
// (seed, domain, id) and distinct across ids and domains.
func TestNewStreamIndependence(t *testing.T) {
	a1 := NewStream(1, "p2p", 7).Uint64()
	a2 := NewStream(1, "p2p", 7).Uint64()
	if a1 != a2 {
		t.Error("same (seed,domain,id) diverged")
	}
	if b := NewStream(1, "p2p", 8).Uint64(); b == a1 {
		t.Error("adjacent ids collided on first draw")
	}
	if c := NewStream(1, "simnet", 7).Uint64(); c == a1 {
		t.Error("domains collided on first draw")
	}
	if d := NewStream(2, "p2p", 7).Uint64(); d == a1 {
		t.Error("seeds collided on first draw")
	}
}
