package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// popAll drains q and returns the popped slot indices in order.
func popAll(q queue) []int32 {
	var out []int32
	for {
		idx, ok := q.pop()
		if !ok {
			return out
		}
		out = append(out, idx)
	}
}

// runDifferential drives a ladder and a refHeap through the identical
// operation sequence and fails on the first divergence in pop order,
// peek result or size. Because (at, seq) keys are unique, any two
// correct priority queues must agree exactly. "Cancel" in the workload
// sense is realized as pop-and-discard — the engine has no cancel API,
// so removal always happens at the minimum.
func runDifferential(t testing.TB, ops int, nextDelta func(r *rand.Rand) Time, r *rand.Rand) {
	t.Helper()
	var lad ladder
	var ref refHeap
	var now Time
	var seq uint64
	for i := 0; i < ops; i++ {
		switch {
		case ref.size() == 0 || r.Intn(3) > 0:
			seq++
			at := now + nextDelta(r)
			idx := int32(seq)
			lad.push(at, seq, idx)
			ref.push(at, seq, idx)
		default:
			li, lok := lad.pop()
			ri, rok := ref.pop()
			if li != ri || lok != rok {
				t.Fatalf("op %d: ladder popped (%d,%v), heap popped (%d,%v)", i, li, lok, ri, rok)
			}
		}
		lp, lok := lad.peek()
		rp, rok := ref.peek()
		if lp != rp || lok != rok {
			t.Fatalf("op %d: ladder peek (%v,%v), heap peek (%v,%v)", i, lp, lok, rp, rok)
		}
		if lok {
			now = lp
		}
		if lad.size() != ref.size() {
			t.Fatalf("op %d: ladder size %d, heap size %d", i, lad.size(), ref.size())
		}
	}
	li, ri := popAll(&lad), popAll(&ref)
	if len(li) != len(ri) {
		t.Fatalf("drain lengths differ: ladder %d, heap %d", len(li), len(ri))
	}
	for i := range li {
		if li[i] != ri[i] {
			t.Fatalf("drain[%d]: ladder %d, heap %d", i, li[i], ri[i])
		}
	}
}

// TestLadderMatchesRefHeap is the queue-level differential suite: the
// ladder must pop the exact (at, seq) total order of the reference
// heap across delta regimes that exercise every tier — active-run
// inserts (zero and tiny deltas, ties at one instant), ring buckets
// (mid-range deltas), and the overflow with spill and migration
// (heavy-tailed and huge deltas).
func TestLadderMatchesRefHeap(t *testing.T) {
	regimes := map[string]func(r *rand.Rand) Time{
		"ties": func(r *rand.Rand) Time {
			return Time(r.Intn(3)) * time.Millisecond
		},
		"micro": func(r *rand.Rand) Time {
			return Time(r.Intn(2000)) * time.Nanosecond
		},
		"delivery": func(r *rand.Rand) Time {
			d := ExpDuration(r, 25*time.Millisecond)
			if r.Intn(2) == 0 {
				return d + 8*time.Millisecond
			}
			return d + 120*time.Millisecond
		},
		"heavytail": func(r *rand.Rand) Time {
			if r.Intn(16) == 0 {
				return ExpDuration(r, 10*time.Hour)
			}
			return ExpDuration(r, time.Millisecond)
		},
		"horizon": func(r *rand.Rand) Time {
			return ExpDuration(r, 30*24*time.Hour)
		},
	}
	for name, delta := range regimes {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				runDifferential(t, 8_000, delta, NewStream(seed, "queue-diff", uint64(seed)))
			}
		})
	}
}

// FuzzQueueOrder drives both queue implementations from raw bytes:
// two bits select the operation (pop-and-discard, or a push whose
// delta magnitude ranges from exact ties through ring-scale to
// overflow-scale), and the remaining bits scale the delta. The ladder
// must match the reference heap's pop order on every input.
func FuzzQueueOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 254, 17, 0, 0, 129})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 1, 1})
	f.Add([]byte{7})
	f.Fuzz(func(t *testing.T, data []byte) {
		var lad ladder
		var ref refHeap
		var now Time
		var seq uint64
		for i, b := range data {
			op := b & 3
			mag := Time(b >> 2)
			if op == 0 && ref.size() > 0 {
				li, lok := lad.pop()
				ri, rok := ref.pop()
				if li != ri || lok != rok {
					t.Fatalf("byte %d: ladder popped (%d,%v), heap popped (%d,%v)", i, li, lok, ri, rok)
				}
				continue
			}
			var delta Time
			switch op {
			case 1:
				delta = mag * time.Nanosecond
			case 2:
				delta = mag * 40 * time.Microsecond
			default:
				delta = mag * 3 * time.Hour
			}
			seq++
			lad.push(now+delta, seq, int32(seq))
			ref.push(now+delta, seq, int32(seq))
			lp, lok := lad.peek()
			rp, rok := ref.peek()
			if lp != rp || lok != rok {
				t.Fatalf("byte %d: ladder peek (%v,%v), heap peek (%v,%v)", i, lp, lok, rp, rok)
			}
			now = lp
		}
		li, ri := popAll(&lad), popAll(&ref)
		for i := range li {
			if li[i] != ri[i] {
				t.Fatalf("drain[%d]: ladder %d, heap %d", i, li[i], ri[i])
			}
		}
		if len(li) != len(ri) {
			t.Fatalf("drain lengths differ: ladder %d, heap %d", len(li), len(ri))
		}
	})
}

// TestLadderOverflowSpill pins the regression where the epoch advanced
// past an overflow entry: an event pushed beyond the ring's reach must
// still pop in order once near-future pushes have dragged the epoch
// close to it.
func TestLadderOverflowSpill(t *testing.T) {
	var l ladder
	// Two initial events force a migration with a nanosecond-scale
	// span, fixing a tiny bucket width.
	l.push(0, 1, 1)
	l.push(200, 2, 2)
	// Far beyond ring reach at shift ~0: goes to the overflow.
	l.push(100_000, 3, 3)
	// Walk the epoch toward the overflow entry with ring-range pushes,
	// popping as we go, then past it: the overflow entry must surface
	// in (at, seq) order, not after the later ring buckets.
	var ref refHeap
	ref.push(0, 1, 1)
	ref.push(200, 2, 2)
	ref.push(100_000, 3, 3)
	seq := uint64(3)
	at := Time(200)
	for i := 0; i < 600; i++ {
		at += 170
		seq++
		l.push(at, seq, int32(seq))
		ref.push(at, seq, int32(seq))
		if i%2 == 0 {
			li, _ := l.pop()
			ri, _ := ref.pop()
			if li != ri {
				t.Fatalf("step %d: ladder popped %d, heap popped %d", i, li, ri)
			}
		}
	}
	li, ri := popAll(&l), popAll(&ref)
	if len(li) != len(ri) {
		t.Fatalf("drain lengths differ: %d vs %d", len(li), len(ri))
	}
	for i := range li {
		if li[i] != ri[i] {
			t.Fatalf("drain[%d]: ladder %d, heap %d", i, li[i], ri[i])
		}
	}
}

// arrayPtr returns the backing-array pointer of a slice (valid for
// zero-length slices too), for reuse identity checks.
func arrayPtr[T any](s []T) uintptr { return reflect.ValueOf(s).Pointer() }

// TestEngineResetKeepsQueueArrays is the warm-pool regression test for
// the ladder queue: after a run that exercised the current tier, the
// ring and the overflow, Reset must keep the slab and every queue
// backing array (pointer identity), so a recycled engine's first
// events allocate nothing.
func TestEngineResetKeepsQueueArrays(t *testing.T) {
	e := NewEngine(1)
	if e.ref != nil {
		t.Skip("reference heap selected; ladder reuse does not apply")
	}
	sink := func() {}
	for i := 0; i < 2000; i++ {
		e.Schedule(Time(i)*time.Millisecond, sink)
	}
	e.Schedule(30*24*time.Hour, sink) // overflow tier
	if _, err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}

	slabPtr := arrayPtr(e.slab)
	activePtr := arrayPtr(e.lq.cur.h)
	overPtr := arrayPtr(e.lq.over.h)
	ringPtrs := make([]uintptr, ladderSlots)
	occupied := 0
	for i := range e.lq.ring {
		ringPtrs[i] = arrayPtr(e.lq.ring[i])
		if cap(e.lq.ring[i]) > 0 {
			occupied++
		}
	}
	if occupied == 0 {
		t.Fatal("workload never touched the ring; test is vacuous")
	}

	e.Reset(2)
	if e.Pending() != 0 || e.Now() != 0 {
		t.Fatalf("reset engine not empty: pending=%d now=%v", e.Pending(), e.Now())
	}
	if got := arrayPtr(e.slab); got != slabPtr {
		t.Error("Reset replaced the slab backing array")
	}
	if got := arrayPtr(e.lq.cur.h); got != activePtr {
		t.Error("Reset replaced the active-run backing array")
	}
	if got := arrayPtr(e.lq.over.h); got != overPtr {
		t.Error("Reset replaced the overflow backing array")
	}
	for i := range e.lq.ring {
		if arrayPtr(e.lq.ring[i]) != ringPtrs[i] {
			t.Errorf("Reset replaced ring bucket %d's backing array", i)
		}
	}

	// And the recycled queue must order a fresh workload correctly.
	var got []Time
	for i := 1999; i >= 0; i-- {
		at := Time(i) * 500 * time.Microsecond
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	if _, err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("recycled queue popped out of order at %d: %v > %v", i, got[i-1], got[i])
		}
	}
	if len(got) != 2000 {
		t.Fatalf("recycled queue ran %d events, want 2000", len(got))
	}
}

// TestSetQueueImpl covers the differential-suite hook: engines built
// under QueueRefHeap run on the reference heap and produce the same
// behaviour, and the setting is restored without affecting existing
// engines.
func TestSetQueueImpl(t *testing.T) {
	old := CurrentQueueImpl()
	defer SetQueueImpl(old)

	SetQueueImpl(QueueRefHeap)
	if CurrentQueueImpl() != QueueRefHeap {
		t.Fatal("CurrentQueueImpl did not report the override")
	}
	e := NewEngine(1)
	if e.ref == nil {
		t.Fatal("engine built under QueueRefHeap is not using the reference heap")
	}
	SetQueueImpl(QueueLadder)
	var got []int
	for i := 4; i >= 0; i-- {
		i := i
		e.Schedule(Time(i)*time.Millisecond, func() { got = append(got, i) })
	}
	if _, err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("heap engine ran out of order: %v", got)
		}
	}
	if e2 := NewEngine(1); e2.ref != nil {
		t.Fatal("engine built after restoring QueueLadder still uses the heap")
	}
}
