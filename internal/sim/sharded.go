// Sharded is a conservative parallel discrete-event scheduler
// (Chandy-Misra-Bryant style): nodes are partitioned into shards, each
// shard owns a serial Engine and a goroutine, and shards advance
// together in bounded lookahead windows. The lookahead is the minimum
// cross-shard delivery delay the model can produce, so no message sent
// during a window can land inside that same window — every shard can
// execute its local events up to the window bound without hearing from
// the others, and cross-shard sends are exchanged at the barrier
// through per-pair SPSC outboxes.
//
// Serial state (mining, transaction generation, chain registry) stays
// on a separate "global" engine that only runs between windows, so
// code that was written for the single-threaded engine keeps its
// exclusive-access guarantees. Shard-side callbacks that must touch
// serial state hand a closure to Defer; the coordinator replays all
// deferred calls at the barrier in deterministic (time, shard, FIFO)
// order.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

const maxTime = Time(math.MaxInt64)

// xev is one cross-shard event in transit: the absolute delivery time
// plus the same closure-or-handler payload the Engine slab stores.
type xev struct {
	at  Time
	fn  func()
	h   Handler
	arg Arg
}

// deferredCall is a serial-state callback captured during a parallel
// window, replayed at the barrier.
type deferredCall struct {
	at Time
	fn func()
}

// windowCmd tells a shard worker to run one lookahead window: execute
// local events strictly below limit, then advance the local clock to
// advance (≤ limit; the two differ only at the horizon).
type windowCmd struct {
	limit   Time
	advance Time
}

// Shard is one partition of a Sharded scheduler. It implements
// Scheduler (components on this shard schedule into its local engine)
// and Deferrer (callbacks that need serial state run at the barrier).
type Shard struct {
	idx    int
	parent *Sharded
	eng    Engine

	// outbox[dst] collects cross-shard sends made during the current
	// window; outMin[dst] tracks their earliest delivery time. Written
	// only by this shard's goroutine during a window, consumed by the
	// coordinator at the barrier.
	outbox [][]xev
	outMin []Time

	// inbox[src] holds events handed over at a barrier, drained into
	// the local heap at the start of this shard's next window.
	// pendingMin is the earliest timestamp waiting in any inbox.
	inbox      [][]xev
	pendingMin Time

	deferred []deferredCall
	defHead  int

	cmd chan windowCmd
}

// Sharded coordinates NumShards shard engines plus one global serial
// engine under a common virtual clock.
type Sharded struct {
	global    *Engine
	shards    []*Shard
	lookahead Time

	// parallel is true while shard goroutines are executing a window.
	// It is written by the coordinator only at window boundaries; the
	// cmd/done channel operations order those writes against every
	// shard-side read.
	parallel bool
	stopped  atomic.Bool
	done     chan int

	// scrubbed records that Scrub already swept the shard queues and
	// slabs, letting NewShardedReusing skip the sweeps on the build
	// path.
	scrubbed bool
}

// NewSharded wraps the given serial engine as the global scheduler of
// a sharded run with numShards shard engines and the given lookahead.
// The lookahead must be positive and no larger than the minimum
// cross-shard delivery delay the caller's network model can produce;
// Route panics when a send violates it, since that would break the
// determinism contract.
func NewSharded(global *Engine, numShards int, lookahead Time) *Sharded {
	if numShards < 1 {
		panic(fmt.Sprintf("sim: shard count must be at least 1, got %d", numShards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: lookahead must be positive, got %v", lookahead))
	}
	sh := &Sharded{
		global:    global,
		lookahead: lookahead,
		shards:    make([]*Shard, numShards),
	}
	for i := range sh.shards {
		s := &Shard{
			idx:        i,
			parent:     sh,
			outbox:     make([][]xev, numShards),
			outMin:     make([]Time, numShards),
			inbox:      make([][]xev, numShards),
			pendingMin: maxTime,
		}
		s.eng.seed = global.Seed()
		s.eng.initQueue()
		for d := range s.outMin {
			s.outMin[d] = maxTime
		}
		sh.shards[i] = s
	}
	return sh
}

// NewShardedReusing is NewSharded drawing on a previous run's
// coordinator: when old is non-nil and its shard count matches, the
// shard engines, exchange queues and deferred buffers are reset in
// place (keeping their backing arrays) instead of reallocated. Any
// mismatch falls back to a fresh NewSharded. The reset state is
// bit-identical to cold construction — capacity is the only thing
// carried over, and capacity is never observable by the simulation.
func NewShardedReusing(old *Sharded, global *Engine, numShards int, lookahead Time) *Sharded {
	if old == nil || len(old.shards) != numShards {
		return NewSharded(global, numShards, lookahead)
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: lookahead must be positive, got %v", lookahead))
	}
	old.global = global
	old.lookahead = lookahead
	old.parallel = false
	old.stopped.Store(false)
	scrubbed := old.scrubbed
	old.scrubbed = false
	for _, s := range old.shards {
		// Always re-seed (the new run's seed differs); the slab sweep
		// inside Reset is free when Scrub already emptied the engine.
		s.eng.Reset(global.Seed())
		if scrubbed {
			continue
		}
		scrubShard(s)
	}
	return old
}

// Scrub sweeps every shard back to its post-construction state ahead
// of time, so a later NewShardedReusing call on this instance is pure
// field reassignment. Pools call it at recycle time, moving the queue
// and slab sweeps off the next run's build path. Safe only between
// runs (never concurrently with Run).
func (sh *Sharded) Scrub() {
	for _, s := range sh.shards {
		s.eng.Reset(s.eng.Seed())
		scrubShard(s)
	}
	sh.scrubbed = true
}

// scrubShard empties one shard's cross-shard queues and deferred ring.
func scrubShard(s *Shard) {
	for d := range s.outbox {
		s.outbox[d] = clearXevs(s.outbox[d])
		s.outMin[d] = maxTime
	}
	for src := range s.inbox {
		s.inbox[src] = clearXevs(s.inbox[src])
	}
	s.pendingMin = maxTime
	def := s.deferred[:cap(s.deferred)]
	clear(def)
	s.deferred = def[:0]
	s.defHead = 0
}

// clearXevs zeroes a queue over its full capacity (releasing closure
// and handler references the GC would otherwise keep reachable through
// the backing array) and truncates it for reuse.
func clearXevs(q []xev) []xev {
	q = q[:cap(q)]
	clear(q)
	return q[:0]
}

// Global returns the serial engine: the scheduler for mining,
// transaction generation and every other component that must see a
// single consistent timeline.
func (sh *Sharded) Global() *Engine { return sh.global }

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Shard returns shard i's scheduler.
func (sh *Sharded) Shard(i int) *Shard { return sh.shards[i] }

// Lookahead returns the window lookahead.
func (sh *Sharded) Lookahead() Time { return sh.lookahead }

// Now returns the serial timeline's current virtual time.
func (sh *Sharded) Now() Time { return sh.global.Now() }

// EventsRun returns the total events executed across the global engine
// and all shards. Only meaningful between windows (Run not active).
func (sh *Sharded) EventsRun() uint64 {
	total := sh.global.EventsRun()
	for _, s := range sh.shards {
		total += s.eng.EventsRun()
	}
	return total
}

// Stop halts the run at the next barrier or coordinator step. Safe to
// call from any goroutine, including a shard callback mid-window.
func (sh *Sharded) Stop() { sh.stopped.Store(true) }

// Route schedules the delivery of an allocation-free event on shard
// dst after delay d, as measured on shard src's clock. During a
// window, same-shard sends go straight into the local heap and
// cross-shard sends are queued for the barrier; between windows the
// coordinator injects directly.
func (sh *Sharded) Route(src, dst int, d time.Duration, h Handler, arg Arg) {
	if d < 0 {
		d = 0
	}
	s := sh.shards[src]
	at := s.Now() + d
	if !sh.parallel {
		sh.shards[dst].eng.ScheduleArg(at, h, arg)
		return
	}
	if src == dst {
		s.eng.ScheduleArg(at, h, arg)
		return
	}
	if d < sh.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send with delay %v below lookahead %v", d, sh.lookahead))
	}
	s.outbox[dst] = append(s.outbox[dst], xev{at: at, h: h, arg: arg})
	if at < s.outMin[dst] {
		s.outMin[dst] = at
	}
}

// RouteFunc is Route for closure-based deliveries (allocates; hot
// paths use Route).
func (sh *Sharded) RouteFunc(src, dst int, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s := sh.shards[src]
	at := s.Now() + d
	if !sh.parallel {
		sh.shards[dst].eng.Schedule(at, fn)
		return
	}
	if src == dst {
		s.eng.Schedule(at, fn)
		return
	}
	if d < sh.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send with delay %v below lookahead %v", d, sh.lookahead))
	}
	s.outbox[dst] = append(s.outbox[dst], xev{at: at, fn: fn})
	if at < s.outMin[dst] {
		s.outMin[dst] = at
	}
}

// Now returns the shard's local clock during a window and the serial
// timeline between windows, so components scheduling relative work see
// a consistent "current time" in both phases.
func (s *Shard) Now() Time {
	if s.parent.parallel {
		return s.eng.now
	}
	return s.parent.global.now
}

// Schedule runs fn at the given absolute virtual time on this shard.
func (s *Shard) Schedule(at Time, fn func()) { s.eng.Schedule(at, fn) }

// ScheduleArg runs h.HandleSimEvent(arg) at the given absolute virtual
// time on this shard without allocating.
func (s *Shard) ScheduleArg(at Time, h Handler, arg Arg) { s.eng.ScheduleArg(at, h, arg) }

// After runs fn after the given delay on this shard.
func (s *Shard) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.eng.Schedule(s.Now()+d, fn)
}

// AfterArg runs h.HandleSimEvent(arg) after the given delay on this
// shard without allocating.
func (s *Shard) AfterArg(d time.Duration, h Handler, arg Arg) {
	if d < 0 {
		d = 0
	}
	s.eng.ScheduleArg(s.Now()+d, h, arg)
}

// Defer hands fn to the coordinator: during a window it is queued and
// replayed at the barrier in (time, shard, FIFO) order with exclusive
// access to serial state; between windows it runs inline.
func (s *Shard) Defer(fn func()) {
	if s.parent.parallel {
		s.deferred = append(s.deferred, deferredCall{at: s.eng.now, fn: fn})
		return
	}
	fn()
}

// effNext returns the shard's earliest runnable timestamp, counting
// both the local heap and undrained inbox events.
func (s *Shard) effNext() (Time, bool) {
	t, ok := s.eng.NextAt()
	if s.pendingMin < maxTime && (!ok || s.pendingMin < t) {
		return s.pendingMin, true
	}
	return t, ok
}

// drainInbox moves barrier-exchanged events into the local heap. The
// fixed (source shard, FIFO) order assigns local sequence numbers
// deterministically, which is what realizes the (time, shard, seq)
// tie-break for same-timestamp cross-shard events.
func (s *Shard) drainInbox() {
	for src := range s.inbox {
		evs := s.inbox[src]
		for i := range evs {
			x := &evs[i]
			if x.fn != nil {
				s.eng.Schedule(x.at, x.fn)
			} else {
				s.eng.ScheduleArg(x.at, x.h, x.arg)
			}
			evs[i] = xev{} // release references
		}
		s.inbox[src] = evs[:0]
	}
	s.pendingMin = maxTime
}

// runWindow executes local events strictly below limit, then advances
// the local clock to advance. Stop is polled every 256 events so a
// cancelled run exits mid-window without waiting for the bound.
func (s *Shard) runWindow(limit, advance Time) {
	s.drainInbox()
	n := 0
	stopped := false
	for {
		at, ok := s.eng.qPeek()
		if !ok || at >= limit {
			break
		}
		s.eng.execTop()
		if n++; n&255 == 0 && s.parent.stopped.Load() {
			stopped = true
			break
		}
	}
	if !stopped {
		s.eng.AdvanceTo(advance)
	}
}

// work is the shard goroutine: one runWindow per command, one done
// token per window, until the coordinator closes the channel. The
// channels are parameters, not field reads: a later Run replaces the
// Shard's channels while this run's goroutine may still be draining
// the close, and the exiting goroutine must only see its own pair.
func (s *Shard) work(cmd <-chan windowCmd, done chan<- int) {
	for c := range cmd {
		s.runWindow(c.limit, c.advance)
		done <- s.idx
	}
}

// dispatchWindow runs one parallel window on every shard that has work
// below limit. Idle shards are skipped; their clocks stay behind,
// which is safe because nothing reads an idle shard's clock and all
// later injections carry timestamps at or beyond its last advance.
func (sh *Sharded) dispatchWindow(limit, advance Time) {
	sh.parallel = true
	n := 0
	for _, s := range sh.shards {
		if en, ok := s.effNext(); ok && en < limit {
			s.cmd <- windowCmd{limit: limit, advance: advance}
			n++
		}
	}
	for i := 0; i < n; i++ {
		<-sh.done
	}
	sh.parallel = false
}

// exchange moves every shard's outboxes into the destination inboxes.
// The common case swaps buffers (the destination drained its inbox at
// the start of its window, so both sides ping-pong between two
// allocations); when the destination shard was skipped this window,
// the outbox is appended to the still-pending inbox instead.
func (sh *Sharded) exchange(limit Time) {
	for _, src := range sh.shards {
		for dst := range src.outbox {
			out := src.outbox[dst]
			if len(out) == 0 {
				continue
			}
			if src.outMin[dst] < limit {
				panic(fmt.Sprintf("sim: cross-shard event at %v inside its own window (limit %v)", src.outMin[dst], limit))
			}
			d := sh.shards[dst]
			if len(d.inbox[src.idx]) == 0 {
				d.inbox[src.idx], src.outbox[dst] = out, d.inbox[src.idx][:0]
			} else {
				d.inbox[src.idx] = append(d.inbox[src.idx], out...)
				for i := range out {
					out[i] = xev{}
				}
				src.outbox[dst] = out[:0]
			}
			if src.outMin[dst] < d.pendingMin {
				d.pendingMin = src.outMin[dst]
			}
			src.outMin[dst] = maxTime
		}
	}
}

// flushDeferred replays the window's deferred calls in (time, shard,
// FIFO) order on the coordinator goroutine. The global clock is
// advanced to each call's capture time first, so deferred code that
// schedules relative work (After) measures delays from the moment it
// observed, exactly as it would have on the serial engine.
func (sh *Sharded) flushDeferred() {
	for {
		best := -1
		var bestAt Time
		for i, s := range sh.shards {
			if s.defHead < len(s.deferred) {
				if at := s.deferred[s.defHead].at; best < 0 || at < bestAt {
					best, bestAt = i, at
				}
			}
		}
		if best < 0 {
			break
		}
		s := sh.shards[best]
		fn := s.deferred[s.defHead].fn
		s.deferred[s.defHead].fn = nil
		s.defHead++
		sh.global.AdvanceTo(bestAt)
		fn()
	}
	for _, s := range sh.shards {
		s.deferred = s.deferred[:0]
		s.defHead = 0
	}
}

// Run executes events across the global engine and all shards until
// every queue is exhausted or past horizon, or Stop is called. The
// coordinator alternates serial global events with parallel shard
// windows: a window [ts, B) opens only when the earliest shard event
// ts precedes the earliest global event, and B never exceeds that
// global event, so serial code always observes every shard quiesced at
// or beyond its own timestamp. Events scheduled exactly at the horizon
// still run, matching Engine.Run.
func (sh *Sharded) Run(horizon Time) (Time, error) {
	sh.stopped.Store(false)
	sh.done = make(chan int, len(sh.shards))
	for _, s := range sh.shards {
		s.cmd = make(chan windowCmd, 1)
		go s.work(s.cmd, sh.done)
	}
	defer func() {
		for _, s := range sh.shards {
			close(s.cmd)
		}
	}()

	for {
		if sh.stopped.Load() {
			return sh.global.now, ErrStopped
		}
		tg, okG := sh.global.NextAt()
		ts, okS := maxTime, false
		for _, s := range sh.shards {
			if en, ok := s.effNext(); ok && (!okS || en < ts) {
				ts, okS = en, true
			}
		}
		gReady := okG && tg <= horizon
		sReady := okS && ts <= horizon
		switch {
		case gReady && (!sReady || tg <= ts):
			// Global-first on ties: the serial event at tg may inject
			// work at tg into any shard, which must sort ahead of the
			// shard's own later arrivals.
			sh.global.execTop()
			if sh.global.stopped.Load() {
				sh.stopped.Store(true)
			}
		case sReady:
			limit := ts + sh.lookahead
			if okG && tg < limit {
				limit = tg
			}
			if limit > horizon {
				// One nanosecond past the horizon so events exactly at
				// the horizon execute inside the final window.
				limit = horizon + 1
			}
			advance := limit
			if advance > horizon {
				advance = horizon
			}
			sh.dispatchWindow(limit, advance)
			sh.exchange(limit)
			sh.flushDeferred()
		default:
			sh.global.AdvanceTo(horizon)
			for _, s := range sh.shards {
				s.eng.AdvanceTo(horizon)
			}
			return horizon, nil
		}
	}
}
