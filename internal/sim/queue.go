// The engine's pending-event queue. Production engines run the ladder
// queue below — a calendar-style structure with O(1) amortized push
// and pop for near-future events — while the reference binary heap is
// kept alongside it for differential testing: both order events by the
// same unique (at, seq) key, so any correct implementation pops the
// exact same sequence and every downstream fingerprint (records,
// chains, analysis) is bit-identical regardless of which queue an
// engine runs on.
package sim

import "math/bits"

// qent is one pending event reference: the ordering key plus the slab
// slot it lives in. Entries are self-contained so queue compares and
// moves never touch the slab, and they hold no pointers, so recycled
// bucket arrays need no GC scrubbing.
type qent struct {
	at  Time
	seq uint64
	idx int32
}

// entLess orders entries by (at, seq). seq is unique per engine, so
// this is a total order: no two entries ever compare equal.
func entLess(a, b qent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// queue is the minimal pending-event surface the engine needs. Both
// implementations pop slot indices in ascending (at, seq) order.
type queue interface {
	push(at Time, seq uint64, idx int32)
	pop() (idx int32, ok bool)
	peek() (at Time, ok bool)
	size() int
	reset()
}

var (
	_ queue = (*ladder)(nil)
	_ queue = (*refHeap)(nil)
)

// QueueImpl selects which pending-queue implementation newly
// constructed engines (and shard engines) use.
type QueueImpl int

const (
	// QueueLadder is the production ladder queue.
	QueueLadder QueueImpl = iota
	// QueueRefHeap is the reference binary heap, kept for the
	// heap-vs-ladder differential suites.
	QueueRefHeap
)

var defaultQueueImpl = QueueLadder

// SetQueueImpl switches the queue implementation used by engines
// constructed afterwards (NewEngine, NewSharded). It exists for the
// differential test suites that prove the ladder queue pops the exact
// (at, seq) order of the reference heap; production code never calls
// it. Not safe to call concurrently with engine construction, and it
// does not affect engines that already exist.
func SetQueueImpl(impl QueueImpl) { defaultQueueImpl = impl }

// CurrentQueueImpl reports the implementation new engines will use.
func CurrentQueueImpl() QueueImpl { return defaultQueueImpl }

// ladderSlots is the ring size: 256 power-of-two-width buckets. Must
// be a multiple of 64 (the occupancy bitmap word size).
const ladderSlots = 256

// bucketTarget is the bucket width tuning goal: width is derived so a
// bucket drains ~8–16 entries at the pending set's mean density.
// Draining heapifies the bucket once (O(k)), so entries-per-bucket
// trades heap depth on the current tier against refill frequency; the
// degenerate regimes to avoid are width so coarse that the whole
// pending set piles into the current bucket (the queue decays to a
// plain binary heap) and width so fine that every bucket holds one
// entry and refills dominate.
const bucketTarget = 16

// rebuildLimit caps how large the current-bucket tier may grow through
// in-bucket pushes before the ladder re-derives a finer bucket width
// from that tier's own density. The tier is a binary heap, so growth
// past the limit is not catastrophic (pushes stay O(log k)), but a
// bucket width that underestimates the head-of-queue density — mean
// density is skewed by sparse far-future events — would otherwise
// funnel every near-future event through one big heap and forfeit the
// ring's O(1) routing.
const rebuildLimit = 512

// ladder is a ladder queue: a small binary-heap "current" tier holding
// every pending event at or below the current epoch bucket, a 256-slot
// timing-wheel ring of unsorted near-future buckets, and a binary-heap
// far-future overflow tier.
//
//   - push lands in the current tier (heap push — the fallback for
//     events at or before the epoch being drained, typically a few
//     entries deep), in a ring bucket (append + one bitmap OR), or in
//     the overflow heap (O(log n), paid only by events beyond the
//     ring's reach — the sparse far-future minority: block intervals,
//     timers).
//   - pop takes the current tier's minimum; when the tier drains, the
//     next occupied ring bucket — found with a bitmap scan, no slot
//     walk — is heapified once and becomes the new current tier.
//     Overflow entries that have come into the ring's reach are
//     spilled in first (heap pops, so a spill costs O(log n) per entry
//     moved, never a scan of the whole tier).
//   - when ring and current tier are both empty, the overflow
//     migrates: the bucket width (1<<shift nanoseconds) is re-derived
//     from the overflow's mean event density targeting bucketTarget
//     entries per bucket, then in-reach events are redistributed. The
//     current tier's rebuild guard (rebuildLimit) covers the skewed
//     case where the head of the queue is far denser than that mean.
//
// The zero value is an empty, usable queue. reset keeps every backing
// array, so warm-pool engines re-enqueue without growing anything.
type ladder struct {
	n int // total pending entries

	// cur is the tier currently being consumed: a binary heap of every
	// pending entry with bucket index (at>>shift) <= epoch, so its root
	// is always the global minimum when non-empty. A heap rather than a
	// sorted run because event handlers routinely schedule follow-ups
	// inside the bucket being drained (sub-width latencies), and sorted
	// insertion would pay O(tier size) memmove per push.
	cur entHeap

	shift uint   // bucket width is 1<<shift nanoseconds
	epoch uint64 // absolute bucket index drained into cur

	// ring[b & 255] holds the unsorted entries of absolute bucket b for
	// b in (epoch, epoch+256]; occ mirrors slot non-emptiness so the
	// next occupied slot is one or two word scans away.
	ring  [ladderSlots][]qent
	occ   [ladderSlots / 64]uint64
	ringN int

	// over holds entries beyond the ring's reach, heap-ordered so its
	// minimum is O(1) to read and in-reach entries spill forward in
	// (at, seq) order without scanning the tier. refill checks the heap
	// minimum before committing to a ring bucket, so the epoch never
	// passes a pending overflow entry.
	over entHeap

	// scratch is reused by rebuild to collect the current tier and ring
	// entries for redistribution under a finer bucket width.
	scratch []qent

	// rebuildAt is the current-tier size that triggers the next rebuild
	// attempt: max(rebuildLimit, backoff). A rebuild that cannot help —
	// the tier is one big tie group, or the width is already as fine as
	// its density warrants — must not be retried on every push (each
	// attempt scans the tier), so a failed attempt doubles the
	// threshold and a fresh tier era (refill) resets it.
	rebuildAt int

	// fineShift remembers the bucket width the last rebuild derived
	// from an observed dense stretch (0 = none observed yet). Campaign
	// workloads are bursty: between announce floods the pending set is
	// a handful of seconds-apart timers, and a width derived from that
	// sparse mix would make the next burst land entirely inside one
	// bucket. migrate clamps its density-derived width to fineShift,
	// and relaxes it one notch per clamped migration so a one-off
	// ultra-dense burst cannot pin the queue too fine forever.
	fineShift uint
}

func (l *ladder) size() int { return l.n }

func (l *ladder) push(at Time, seq uint64, idx int32) {
	e := qent{at: at, seq: seq, idx: idx}
	l.n++
	if l.n == 1 {
		// Empty queue: restart the current tier at this event's bucket.
		// The dominant self-scheduling pattern (pop one event, schedule
		// its successor) stays on this path and never touches the ring.
		l.epoch = uint64(at) >> l.shift
		l.cur.h = append(l.cur.h[:0], e)
		return
	}
	b := uint64(at) >> l.shift
	if b <= l.epoch {
		l.cur.push(e)
		if n := l.cur.len(); n > rebuildLimit && n > l.rebuildAt {
			l.rebuild()
		}
		return
	}
	if b-l.epoch <= ladderSlots {
		l.ringPut(e, b)
		return
	}
	l.over.push(e)
}

// ringPut appends e to the ring slot of absolute bucket b. The caller
// guarantees b is within the ring's reach: epoch < b <= epoch+256.
func (l *ladder) ringPut(e qent, b uint64) {
	slot := b & (ladderSlots - 1)
	if len(l.ring[slot]) == 0 {
		l.occ[slot>>6] |= 1 << (slot & 63)
	}
	l.ring[slot] = append(l.ring[slot], e)
	l.ringN++
}

// densityShift derives the bucket width exponent targeting
// bucketTarget entries per bucket at mean density: width ≈
// span·target/count, floored to a power of two. count > 0.
func densityShift(span, count uint64) uint {
	ideal := span / count
	if ideal > 1<<50 {
		ideal = 1 << 50 // clamp: keeps ideal*bucketTarget in range
	}
	ideal *= bucketTarget
	if ideal == 0 {
		return 0
	}
	return uint(bits.Len64(ideal)) - 1
}

// rebuild re-derives the bucket width from the current tier's own
// density and redistributes the tier and the ring under it. Triggered
// by push when the tier outgrows rebuildLimit: the global mean density
// that sized the buckets (sparse far-future events included)
// underestimated the head-of-queue density, so the epoch bucket
// swallowed the near-future mass. Only runs when the width strictly
// decreases, so it triggers O(1) times per migration era and its cost
// is amortized over the >= rebuildLimit pushes that grew the tier.
func (l *ladder) rebuild() {
	h := l.cur.h
	maxAt := h[0].at
	for _, e := range h[1:] {
		if e.at > maxAt {
			maxAt = e.at
		}
	}
	span := uint64(maxAt - h[0].at) // h[0] is the heap minimum
	if span == 0 {
		// A tier of exact ties cannot be split finer; heap pushes into
		// it stay cheap, so the large tier is harmless. Back off so the
		// ties do not pay this scan again per push.
		l.rebuildAt = 2 * len(h)
		return
	}
	shift := densityShift(span, uint64(len(h)))
	if shift >= l.shift {
		l.rebuildAt = 2 * len(h)
		return
	}
	l.rebuildAt = 0
	// Pin the burst-density width for future migrations (fineShift 0
	// means unset, so floor the pin at 1).
	l.fineShift = shift
	if l.fineShift == 0 {
		l.fineShift = 1
	}
	// Collect the tier and every ring entry, then redistribute under
	// the finer width. Ring entries all sort after the tier (their old
	// buckets were beyond the epoch), so the new epoch is the tier's
	// minimum bucket and beyond-reach entries fall into the overflow
	// heap.
	l.scratch = append(l.scratch[:0], h...)
	l.cur.h = h[:0]
	if l.ringN > 0 {
		for w, bm := range l.occ {
			for bm != 0 {
				slot := uint(w)<<6 | uint(bits.TrailingZeros64(bm))
				bm &= bm - 1
				l.scratch = append(l.scratch, l.ring[slot]...)
				l.ring[slot] = l.ring[slot][:0]
			}
		}
		l.occ = [ladderSlots / 64]uint64{}
		l.ringN = 0
	}
	l.shift = shift
	l.redistribute(l.scratch)
}

// redistribute rebuilds cur, ring and overflow from entries under the
// current shift: the epoch becomes the minimum entry's bucket, whose
// entries form the new current tier (heapified once); in-reach entries
// fill ring buckets; the rest go to the overflow heap. The caller has
// emptied cur and ring; entries[0] must hold the minimum timestamp —
// both callers guarantee it by construction (rebuild: heap root;
// migrate: scanned minimum swapped to front).
func (l *ladder) redistribute(entries []qent) {
	l.epoch = uint64(entries[0].at) >> l.shift
	for _, e := range entries {
		b := uint64(e.at) >> l.shift
		if b == l.epoch {
			l.cur.h = append(l.cur.h, e)
			continue
		}
		if b-l.epoch <= ladderSlots {
			l.ringPut(e, b)
			continue
		}
		l.over.push(e)
	}
	l.cur.init()
}

func (l *ladder) peek() (Time, bool) {
	if l.cur.len() == 0 && !l.refill() {
		return 0, false
	}
	return l.cur.h[0].at, true
}

func (l *ladder) pop() (int32, bool) {
	h := l.cur.h
	if len(h) == 0 {
		if !l.refill() {
			return 0, false
		}
		h = l.cur.h
	}
	l.n--
	if len(h) == 1 {
		// Dominant self-scheduling pattern: one pending event. Skip the
		// root-swap-and-sift of a general heap pop.
		l.cur.h = h[:0]
		return h[0].idx, true
	}
	return l.cur.popMin().idx, true
}

// refill makes the current tier non-empty, draining the next occupied
// ring bucket (migrating the overflow first when the ring is empty).
// Returns false when the queue is empty. On entry the current tier is
// empty.
func (l *ladder) refill() bool {
	if l.n == 0 {
		return false
	}
	l.rebuildAt = 0 // fresh tier era: re-arm the rebuild guard
	if l.ringN == 0 {
		// Only the overflow holds events.
		if l.over.len() >= rebuildLimit {
			// Enough of a sample to re-derive the bucket width from
			// real density; migration leaves the minimum bucket's
			// events in the current tier.
			l.migrate()
			return true
		}
		// Sparse tier: re-deriving width from a handful of seconds-apart
		// timers would wreck the next burst (see fineShift), and with
		// nothing near there is nothing to amortize. Keep the width,
		// jump the epoch to just before the next pending bucket and
		// spill that bucket in; the normal drain below picks it up.
		b0 := uint64(l.over.minAt()) >> l.shift
		l.epoch = b0 - 1
		l.spill(b0)
	}
	// The first occupied slot at circular distance d >= 1 from the
	// current epoch holds exactly the events of bucket epoch+1+d':
	// occupied slots map one-to-one onto buckets in (epoch, epoch+256],
	// so circular order is bucket order.
	s0 := uint((l.epoch + 1) & (ladderSlots - 1))
	slot := l.nextSlot(s0)
	bNext := l.epoch + 1 + uint64((slot-s0)&(ladderSlots-1))
	if l.over.len() > 0 && uint64(l.over.minAt())>>l.shift <= bNext {
		// The epoch has advanced far enough that overflow entries now
		// fall at or before the next ring bucket: spill every such
		// entry into the ring before committing, or an earlier event
		// would be stranded behind this bucket. Spills are heap pops —
		// O(log n) per entry moved, once per entry's life.
		l.spill(bNext)
		slot = l.nextSlot(s0)
		bNext = l.epoch + 1 + uint64((slot-s0)&(ladderSlots-1))
	}
	l.epoch = bNext
	b := l.ring[slot]
	l.cur.h = append(l.cur.h[:0], b...)
	l.cur.init()
	l.ring[slot] = b[:0]
	l.occ[slot>>6] &^= 1 << (slot & 63)
	l.ringN -= len(b)
	return true
}

// nextSlot returns the first occupied slot at or circularly after s0.
// The caller guarantees ringN > 0.
func (l *ladder) nextSlot(s0 uint) uint {
	w0, b0 := s0>>6, s0&63
	if m := l.occ[w0] &^ (1<<b0 - 1); m != 0 {
		return w0<<6 | uint(bits.TrailingZeros64(m))
	}
	for i := uint(1); i < ladderSlots/64; i++ {
		w := (w0 + i) & (ladderSlots/64 - 1)
		if m := l.occ[w]; m != 0 {
			return w<<6 | uint(bits.TrailingZeros64(m))
		}
	}
	if m := l.occ[w0] & (1<<b0 - 1); m != 0 {
		return w0<<6 | uint(bits.TrailingZeros64(m))
	}
	panic("sim: ladder ring occupancy corrupt")
}

// spill pops overflow entries whose bucket is at or before bNext into
// their ring buckets. All overflow buckets are strictly beyond the
// epoch (refill's check prevents the epoch from ever passing a pending
// overflow entry) and bNext <= epoch+256, so spilled entries always
// have a valid ring slot.
func (l *ladder) spill(bNext uint64) {
	for l.over.len() > 0 {
		b := uint64(l.over.minAt()) >> l.shift
		if b > bNext {
			return
		}
		l.ringPut(l.over.popMin(), b)
	}
}

// migrate re-derives the bucket width from the overflow's mean event
// density (bucketTarget entries per bucket) and redistributes:
// minimum-bucket events into the current tier, in-reach events into
// ring buckets, the rest re-heapified. Called only when cur and ring
// are both empty and the overflow holds a density sample worth acting
// on (>= rebuildLimit entries), which at the derived width happens
// once per ~bucketTarget*ladderSlots pops, amortizing the O(n) pass.
func (l *ladder) migrate() {
	h := l.over.h
	minI := 0
	minAt, maxAt := h[0].at, h[0].at
	for i, e := range h[1:] {
		if e.at < minAt {
			minAt, minI = e.at, i+1
		}
		if e.at > maxAt {
			maxAt = e.at
		}
	}
	shift := densityShift(uint64(maxAt-minAt), uint64(len(h)))
	if l.fineShift != 0 && shift > l.fineShift {
		// The mean density is diluted by far-future events, but a
		// denser stretch has been observed: stay near that width so
		// the next burst lands in the ring, and relax the clamp one
		// notch so a workload that really did turn sparse converges
		// back to its mean width within a few migrations.
		shift = l.fineShift
		l.fineShift++
	}
	l.shift = shift
	h[0], h[minI] = h[minI], h[0]
	l.over.h = h[:0]
	l.redistribute(h)
	// redistribute pushed beyond-reach entries back one by one, each a
	// sift-up into the tier it came from; the heap invariant holds by
	// construction.
}

// reset empties the queue keeping every backing array (current tier,
// ring buckets, overflow heap), so a recycled engine's first events
// re-enqueue without allocating. Entries hold no pointers, so stale
// capacity needs no zeroing.
func (l *ladder) reset() {
	l.cur.h = l.cur.h[:0]
	if l.ringN > 0 {
		for i := range l.ring {
			l.ring[i] = l.ring[i][:0]
		}
	}
	l.occ = [ladderSlots / 64]uint64{}
	l.ringN = 0
	l.over.h = l.over.h[:0]
	l.n = 0
	l.shift = 0
	l.epoch = 0
	l.fineShift = 0
	l.rebuildAt = 0
}

// entHeap is a binary min-heap of qent ordered by (at, seq). It backs
// the ladder's current and overflow tiers and the reference queue
// implementation.
type entHeap struct {
	h []qent
}

func (q *entHeap) len() int { return len(q.h) }

// minAt returns the minimum entry's timestamp. len() > 0 required.
func (q *entHeap) minAt() Time { return q.h[0].at }

func (q *entHeap) push(e qent) {
	h := append(q.h, e)
	q.h = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// popMin removes and returns the minimum entry. len() > 0 required.
func (q *entHeap) popMin() qent {
	h := q.h
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.h = h[:last]
	q.siftDown(0)
	return top
}

// siftDown restores the heap invariant below index i.
func (q *entHeap) siftDown(i int) {
	h := q.h
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && entLess(h[right], h[left]) {
			least = right
		}
		if !entLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// init heapifies q.h in place (Floyd's bottom-up construction, O(n)).
func (q *entHeap) init() {
	for i := len(q.h)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}

// refHeap is the reference implementation: a plain binary min-heap
// over (at, seq). It exists so the differential suites can prove the
// ladder pops the identical total order.
type refHeap struct {
	q entHeap
}

func (q *refHeap) size() int { return q.q.len() }

func (q *refHeap) push(at Time, seq uint64, idx int32) {
	q.q.push(qent{at: at, seq: seq, idx: idx})
}

func (q *refHeap) peek() (Time, bool) {
	if q.q.len() == 0 {
		return 0, false
	}
	return q.q.minAt(), true
}

func (q *refHeap) pop() (int32, bool) {
	if q.q.len() == 0 {
		return 0, false
	}
	return q.q.popMin().idx, true
}

func (q *refHeap) reset() { q.q.h = q.q.h[:0] }
