package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.Schedule(30*time.Millisecond, func() { got = append(got, e.Now()) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, e.Now()) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, e.Now()) })
	if _, err := e.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []Time{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreaksByScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	if _, err := e.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order %v, want ascending schedule order", order)
		}
	}
}

func TestEngineAfterClampsNegativeDelay(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(-time.Second, func() { ran = true })
	if _, err := e.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	if _, err := e.Run(2 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(500*time.Millisecond, func() {})
}

func TestEngineHorizonStopsExecution(t *testing.T) {
	e := NewEngine(1)
	ran := make(map[string]bool)
	e.Schedule(time.Second, func() { ran["at"] = true })
	e.Schedule(time.Second+1, func() { ran["after"] = true })
	end, err := e.Run(time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if end != time.Second {
		t.Errorf("ended at %v, want horizon %v", end, time.Second)
	}
	if !ran["at"] {
		t.Error("event exactly at horizon should run")
	}
	if ran["after"] {
		t.Error("event past horizon must not run")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	_, err := e.Run(time.Second)
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Errorf("ran %d events after stop, want 2", count)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Fatal("Step on empty queue should return false")
	}
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++ })
	e.Schedule(2*time.Millisecond, func() { ran++ })
	if !e.Step() || ran != 1 {
		t.Fatalf("first step ran %d events", ran)
	}
	if e.Now() != time.Millisecond {
		t.Errorf("now = %v after first step", e.Now())
	}
	if !e.Step() || ran != 2 {
		t.Fatalf("second step ran %d events", ran)
	}
}

func TestEngineEventsRunCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 1; i <= 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	if _, err := e.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.EventsRun() != 7 {
		t.Errorf("EventsRun = %d, want 7", e.EventsRun())
	}
}

func TestEngineRunEmptyAdvancesToHorizon(t *testing.T) {
	e := NewEngine(1)
	end, err := e.Run(42 * time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if end != 42*time.Second {
		t.Errorf("end = %v, want horizon", end)
	}
}

func TestRNGStreamsAreDeterministicAndIndependent(t *testing.T) {
	a := NewEngine(7)
	b := NewEngine(7)
	// Same seed, same stream name → identical sequences.
	for i := 0; i < 100; i++ {
		if a.RNG("x").Int63() != b.RNG("x").Int63() {
			t.Fatal("same-seed streams diverged")
		}
	}
	// Creating a new stream must not perturb an existing one.
	c := NewEngine(7)
	first := make([]int64, 10)
	for i := range first {
		first[i] = c.RNG("x").Int63()
	}
	d := NewEngine(7)
	_ = d.RNG("y").Int63() // interleave another stream
	for i := range first {
		if got := d.RNG("x").Int63(); got != first[i] {
			t.Fatal("stream x perturbed by unrelated stream y")
		}
	}
}

func TestRNGDistinctNamesDistinctSequences(t *testing.T) {
	e := NewEngine(1)
	same := true
	for i := 0; i < 10; i++ {
		if e.RNG("a").Int63() != e.RNG("b").Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("streams a and b produced identical sequences")
	}
}

func TestEngineDeterministicReplay(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		rng := e.RNG("load")
		var times []Time
		var schedule func()
		schedule = func() {
			d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
			e.After(d, func() {
				times = append(times, e.Now())
				if len(times) < 50 {
					schedule()
				}
			})
		}
		schedule()
		if _, err := e.Run(time.Hour); err != nil {
			t.Fatalf("run: %v", err)
		}
		return times
	}
	a, b := run(3), run(3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if c := run(4); len(c) == len(a) && c[len(c)-1] == a[len(a)-1] {
		t.Log("different seeds happened to coincide at the last event; acceptable but unusual")
	}
}

func TestExpDurationMeanAndPositivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mean := 13300 * time.Millisecond
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := ExpDuration(rng, mean)
		if d < 0 {
			t.Fatal("negative exponential duration")
		}
		sum += d
	}
	got := float64(sum) / n
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Errorf("sample mean %v deviates from %v", time.Duration(got), mean)
	}
	if ExpDuration(rng, 0) != 0 {
		t.Error("zero mean should give zero duration")
	}
}

// TestEngineTimestampsNondecreasing is a property test: under random
// scheduling patterns the executed timestamps never go backwards.
func TestEngineTimestampsNondecreasing(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(1)
		var executed []Time
		for _, d := range delays {
			e.After(time.Duration(d)*time.Microsecond, func() {
				executed = append(executed, e.Now())
			})
		}
		if _, err := e.Run(time.Hour); err != nil {
			return false
		}
		if len(executed) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(executed, func(i, j int) bool { return executed[i] < executed[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
