package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineScheduleRun measures raw event throughput: the whole
// simulation's cost scales with it (a default campaign executes ~45M
// events).
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		if i%1024 == 1023 {
			if _, err := e.Run(e.Now() + time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := e.Run(e.Now() + time.Second); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineSelfScheduling models the dominant pattern: events
// that schedule their successors (Poisson processes, relay chains).
func BenchmarkEngineSelfScheduling(b *testing.B) {
	e := NewEngine(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			e.After(time.Microsecond, tick)
		}
	}
	e.After(0, tick)
	b.ResetTimer()
	if _, err := e.Run(time.Duration(1<<62 - 1)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRNGStreamAccess(b *testing.B) {
	e := NewEngine(1)
	e.RNG("x") // pre-create
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.RNG("x").Int63()
	}
}
