package sim

import (
	"math/rand"
	"testing"
	"time"
)

// BenchmarkEngineScheduleRun measures raw event throughput: the whole
// simulation's cost scales with it (a default campaign executes ~45M
// events).
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		if i%1024 == 1023 {
			if _, err := e.Run(e.Now() + time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := e.Run(e.Now() + time.Second); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineSelfScheduling models the dominant pattern: events
// that schedule their successors (Poisson processes, relay chains).
func BenchmarkEngineSelfScheduling(b *testing.B) {
	e := NewEngine(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			e.After(time.Microsecond, tick)
		}
	}
	e.After(0, tick)
	b.ResetTimer()
	if _, err := e.Run(time.Duration(1<<62 - 1)); err != nil {
		b.Fatal(err)
	}
}

// churnTicker is the allocation-free handler behind the schedule-churn
// benchmarks: each fired event schedules a successor after an
// exponential hold plus a bimodal offset approximating the simulator's
// real key distribution (intra-region ~8ms vs inter-continental
// ~120ms deliveries).
type churnTicker struct {
	e         *Engine
	rng       *rand.Rand
	remaining int
}

func (c *churnTicker) HandleSimEvent(arg Arg) {
	if c.remaining <= 0 {
		return
	}
	c.remaining--
	hold := ExpDuration(c.rng, 25*time.Millisecond)
	if c.rng.Intn(2) == 0 {
		hold += 8 * time.Millisecond
	} else {
		hold += 120 * time.Millisecond
	}
	c.e.AfterArg(hold, c, arg)
}

// BenchmarkEngineScheduleChurn measures push/pop cost under a standing
// population of 4096 pending events — the regime where the binary
// heap paid O(log n) per operation and the ladder queue pays O(1).
func BenchmarkEngineScheduleChurn(b *testing.B) {
	e := NewEngine(1)
	tick := &churnTicker{e: e, rng: NewStream(1, "bench-churn", 0), remaining: b.N}
	for i := 0; i < 4096; i++ {
		e.AfterArg(time.Duration(i)*50*time.Microsecond, tick, Arg{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := e.Run(time.Duration(1<<62 - 1)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRNGStreamAccess(b *testing.B) {
	e := NewEngine(1)
	e.RNG("x") // pre-create
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.RNG("x").Int63()
	}
}
