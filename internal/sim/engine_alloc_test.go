package sim

import (
	"testing"
	"time"
)

// countingHandler is a closure-free event target for the Arg path.
type countingHandler struct {
	engine *Engine
	ran    int
	chain  int // remaining self-scheduled events when used as a chain
}

func (h *countingHandler) HandleSimEvent(arg Arg) {
	h.ran++
	if h.chain > 0 {
		h.chain--
		h.engine.AfterArg(time.Microsecond, h, arg)
	}
}

// TestScheduleArgZeroAllocsSteadyState pins the engine's zero
// steady-state allocation contract: once the slab is warm, scheduling
// and executing events through the Arg path allocates nothing.
func TestScheduleArgZeroAllocsSteadyState(t *testing.T) {
	e := NewEngine(1)
	h := &countingHandler{engine: e}
	// Warm the slab and the queue. Each round of 32 events lands on a
	// handful of ladder ring slots, and virtual time strides the slot
	// index between rounds, so warming all 256 slot arrays to capacity
	// takes a few hundred rounds.
	for r := 0; r < 400; r++ {
		for i := 0; i < 32; i++ {
			e.AfterArg(time.Duration(i)*time.Microsecond, h, Arg{K: int32(i)})
		}
		if _, err := e.Run(e.Now() + time.Second); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.AfterArg(time.Duration(i)*time.Microsecond, h, Arg{A: h, U: uint64(i), K: int32(i)})
		}
		if _, err := e.Run(e.Now() + time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Arg scheduling allocated %.1f times per run, want 0", allocs)
	}
}

// TestScheduleClosureZeroAllocsSteadyState pins the closure path with a
// prebuilt (non-capturing) callback: the engine itself must not
// allocate per event once warm.
func TestScheduleClosureZeroAllocsSteadyState(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Warm all ladder ring slots, as above.
	for r := 0; r < 400; r++ {
		for i := 0; i < 32; i++ {
			e.After(time.Duration(i)*time.Microsecond, fn)
		}
		if _, err := e.Run(e.Now() + time.Second); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.After(time.Duration(i)*time.Microsecond, fn)
		}
		if _, err := e.Run(e.Now() + time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state closure scheduling allocated %.1f times per run, want 0", allocs)
	}
}

// TestScheduleReusesFreedSlots is the churn-regression guard: a
// workload that schedules and drains events forever (the churn driver
// reschedules until horizon) must recycle slots instead of growing the
// slab with every event.
func TestScheduleReusesFreedSlots(t *testing.T) {
	e := NewEngine(1)
	h := &countingHandler{engine: e, chain: 100_000}
	e.AfterArg(0, h, Arg{})
	if _, err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if h.ran != 100_001 {
		t.Fatalf("ran %d events, want 100001", h.ran)
	}
	if size := e.slabSize(); size > 16 {
		t.Errorf("slab grew to %d slots for a 1-pending workload, want a handful", size)
	}

	// Bursts of K pending events: slab stays O(K), not O(total).
	e2 := NewEngine(1)
	fn := func() {}
	for round := 0; round < 1000; round++ {
		for i := 0; i < 50; i++ {
			e2.After(time.Duration(i)*time.Microsecond, fn)
		}
		if _, err := e2.Run(e2.Now() + time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if size := e2.slabSize(); size > 128 {
		t.Errorf("slab grew to %d slots for a 50-pending workload, want ≤ 128", size)
	}
}

// TestArgAndClosureEventsShareOrdering verifies the two scheduling
// paths share one (at, seq) order: ties between them break by
// scheduling order regardless of path.
func TestArgAndClosureEventsShareOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	rec := &recordingHandler{order: &order}
	at := 5 * time.Millisecond
	e.Schedule(at, func() { order = append(order, 0) })
	e.ScheduleArg(at, rec, Arg{K: 1})
	e.Schedule(at, func() { order = append(order, 2) })
	e.ScheduleArg(at, rec, Arg{K: 3})
	if _, err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-path tie-break order %v, want ascending schedule order", order)
		}
	}
}

type recordingHandler struct {
	order *[]int
}

func (h *recordingHandler) HandleSimEvent(arg Arg) {
	*h.order = append(*h.order, int(arg.K))
}

// TestScheduleArgPastPanics mirrors the closure-path contract.
func TestScheduleArgPastPanics(t *testing.T) {
	e := NewEngine(1)
	h := &countingHandler{engine: e}
	e.ScheduleArg(time.Second, h, Arg{})
	if _, err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleArg(500*time.Millisecond, h, Arg{})
}
