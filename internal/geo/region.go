// Package geo models the geographic layout of the simulated Ethereum
// network: regions, inter-region latencies with jitter, and weighted
// sampling of node placement.
//
// The paper's measurement campaign used four vantage points — North
// America, Eastern Asia, Western Europe and Central Europe — and found
// that geographic position strongly influences block reception times
// (paper §III-B). Latency values here are calibrated to public
// inter-region RTT data for backbone-connected hosts.
package geo

import (
	"fmt"
	"math/rand"
	"time"
)

// Region identifies a coarse geographic area in which nodes, miners and
// mining-pool gateways are placed.
type Region int

// Regions. The first four are the paper's measurement vantage points.
const (
	NorthAmerica Region = iota + 1
	EasternAsia
	WesternEurope
	CentralEurope
	EasternEurope
	SoutheastAsia
	SouthAmerica
	Oceania
)

// NumRegions is the number of distinct regions.
const NumRegions = 8

// VantageRegions lists the four regions where the paper deployed
// measurement nodes, in the order used throughout the paper's figures.
var VantageRegions = []Region{NorthAmerica, EasternAsia, WesternEurope, CentralEurope}

var regionNames = map[Region]string{
	NorthAmerica:  "North America",
	EasternAsia:   "Eastern Asia",
	WesternEurope: "Western Europe",
	CentralEurope: "Central Europe",
	EasternEurope: "Eastern Europe",
	SoutheastAsia: "Southeast Asia",
	SouthAmerica:  "South America",
	Oceania:       "Oceania",
}

var regionCodes = map[Region]string{
	NorthAmerica:  "NA",
	EasternAsia:   "EA",
	WesternEurope: "WE",
	CentralEurope: "CE",
	EasternEurope: "EE",
	SoutheastAsia: "SEA",
	SouthAmerica:  "SA",
	Oceania:       "OC",
}

// String returns the human-readable region name (e.g. "Eastern Asia").
func (r Region) String() string {
	if name, ok := regionNames[r]; ok {
		return name
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Code returns the short region code used in logs (e.g. "EA").
func (r Region) Code() string {
	if code, ok := regionCodes[r]; ok {
		return code
	}
	return fmt.Sprintf("R%d", int(r))
}

// Valid reports whether r is one of the defined regions.
func (r Region) Valid() bool {
	_, ok := regionNames[r]
	return ok
}

// ParseRegion resolves a region from its code ("EA") or full name
// ("Eastern Asia"). Matching is exact.
func ParseRegion(s string) (Region, error) {
	for r, code := range regionCodes {
		if code == s {
			return r, nil
		}
	}
	for r, name := range regionNames {
		if name == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("geo: unknown region %q", s)
}

// AllRegions returns every defined region in declaration order.
func AllRegions() []Region {
	regions := make([]Region, 0, NumRegions)
	for r := NorthAmerica; r <= Oceania; r++ {
		regions = append(regions, r)
	}
	return regions
}

// Distribution is a weighted distribution over regions, used to place
// nodes, transaction senders, and pool gateways.
type Distribution struct {
	regions []Region
	cum     []float64 // cumulative weights, last element == total
}

// NewDistribution builds a distribution from region→weight pairs.
// Weights must be non-negative and sum to a positive value.
func NewDistribution(weights map[Region]float64) (*Distribution, error) {
	d := &Distribution{}
	total := 0.0
	for _, r := range AllRegions() {
		w, ok := weights[r]
		if !ok {
			continue
		}
		if w < 0 {
			return nil, fmt.Errorf("geo: negative weight %f for region %s", w, r)
		}
		if w == 0 {
			continue
		}
		total += w
		d.regions = append(d.regions, r)
		d.cum = append(d.cum, total)
	}
	if total <= 0 {
		return nil, fmt.Errorf("geo: distribution has no positive weights")
	}
	return d, nil
}

// MustDistribution is NewDistribution but panics on error. Intended for
// package-level presets built from literals.
func MustDistribution(weights map[Region]float64) *Distribution {
	d, err := NewDistribution(weights)
	if err != nil {
		panic(err)
	}
	return d
}

// Sample draws a region according to the distribution weights.
func (d *Distribution) Sample(rng *rand.Rand) Region {
	total := d.cum[len(d.cum)-1]
	x := rng.Float64() * total
	for i, c := range d.cum {
		if x < c {
			return d.regions[i]
		}
	}
	return d.regions[len(d.regions)-1]
}

// Regions returns the regions with positive weight, in declaration order.
func (d *Distribution) Regions() []Region {
	out := make([]Region, len(d.regions))
	copy(out, d.regions)
	return out
}

// Weight returns the normalized weight of region r (0 if absent).
func (d *Distribution) Weight(r Region) float64 {
	total := d.cum[len(d.cum)-1]
	prev := 0.0
	for i, reg := range d.regions {
		if reg == r {
			return (d.cum[i] - prev) / total
		}
		prev = d.cum[i]
	}
	return 0
}

// GlobalNodeDistribution approximates the geographic spread of public
// Ethereum nodes in spring 2019 (ethernodes.org places most peers in
// North America and Europe, with a significant Asian share).
func GlobalNodeDistribution() *Distribution {
	return MustDistribution(map[Region]float64{
		NorthAmerica:  0.34,
		EasternAsia:   0.17,
		WesternEurope: 0.18,
		CentralEurope: 0.14,
		EasternEurope: 0.06,
		SoutheastAsia: 0.05,
		SouthAmerica:  0.03,
		Oceania:       0.03,
	})
}

// GlobalSenderDistribution approximates where transactions originate.
// The paper observes transactions are created in a geographically
// dispersed fashion (§III-A1), so this is close to the node spread.
func GlobalSenderDistribution() *Distribution {
	return MustDistribution(map[Region]float64{
		NorthAmerica:  0.30,
		EasternAsia:   0.22,
		WesternEurope: 0.17,
		CentralEurope: 0.12,
		EasternEurope: 0.07,
		SoutheastAsia: 0.06,
		SouthAmerica:  0.03,
		Oceania:       0.03,
	})
}

// LatencyModel provides pairwise one-way network delays between regions
// with multiplicative jitter. It is safe for concurrent reads after
// construction.
//
// Sampling is on the per-message hot path of every campaign, so the
// model precomputes two flat matrices at construction: the defaulted
// base delay (unknown pairs fall back to 50 ms) and its float64 image
// used by the jitter arithmetic. A sample is then two array loads plus
// the jitter draw — no map lookups and no per-sample branching on
// missing pairs.
type LatencyModel struct {
	base   [NumRegions + 1][NumRegions + 1]time.Duration
	jitter float64 // max fractional jitter, e.g. 0.2 → ±20%

	// Precomputed lookup tables (see finalize).
	baseD        [NumRegions + 1][NumRegions + 1]time.Duration // defaulted base
	baseF        [NumRegions + 1][NumRegions + 1]float64       // float64(defaulted base)
	oneMinusHalf float64                                       // 1 - jitter/2
}

// fallbackBase is the delay assumed for region pairs the model does not
// cover (historically the zero-entry default in Sample).
const fallbackBase = 50 * time.Millisecond

// finalize fills the flattened lookup tables from base and jitter. It
// must be called after the base matrix is fully populated and before
// the first Sample.
func (m *LatencyModel) finalize() *LatencyModel {
	for a := range m.base {
		for b := range m.base[a] {
			d := m.base[a][b]
			if d == 0 {
				d = fallbackBase
			}
			m.baseD[a][b] = d
			m.baseF[a][b] = float64(d)
		}
	}
	m.oneMinusHalf = 1 - m.jitter/2
	return m
}

// DefaultLatencyModel returns a latency model calibrated to typical
// backbone one-way delays between the modeled regions (roughly half of
// the public inter-region RTTs).
func DefaultLatencyModel() *LatencyModel {
	m := &LatencyModel{jitter: 0.35}
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }

	// One-way base delays. Intra-region delays on the diagonal.
	set := func(a, b Region, d time.Duration) {
		m.base[a][b] = d
		m.base[b][a] = d
	}
	set(NorthAmerica, NorthAmerica, ms(18))
	set(EasternAsia, EasternAsia, ms(16))
	set(WesternEurope, WesternEurope, ms(8))
	set(CentralEurope, CentralEurope, ms(8))
	set(EasternEurope, EasternEurope, ms(12))
	set(SoutheastAsia, SoutheastAsia, ms(14))
	set(SouthAmerica, SouthAmerica, ms(20))
	set(Oceania, Oceania, ms(15))

	set(NorthAmerica, EasternAsia, ms(85))
	set(NorthAmerica, WesternEurope, ms(45))
	set(NorthAmerica, CentralEurope, ms(52))
	set(NorthAmerica, EasternEurope, ms(62))
	set(NorthAmerica, SoutheastAsia, ms(105))
	set(NorthAmerica, SouthAmerica, ms(75))
	set(NorthAmerica, Oceania, ms(90))

	set(EasternAsia, WesternEurope, ms(110))
	set(EasternAsia, CentralEurope, ms(115))
	set(EasternAsia, EasternEurope, ms(100))
	set(EasternAsia, SoutheastAsia, ms(38))
	set(EasternAsia, SouthAmerica, ms(150))
	set(EasternAsia, Oceania, ms(65))

	set(WesternEurope, CentralEurope, ms(12))
	set(WesternEurope, EasternEurope, ms(25))
	set(WesternEurope, SoutheastAsia, ms(95))
	set(WesternEurope, SouthAmerica, ms(100))
	set(WesternEurope, Oceania, ms(140))

	set(CentralEurope, EasternEurope, ms(15))
	set(CentralEurope, SoutheastAsia, ms(100))
	set(CentralEurope, SouthAmerica, ms(110))
	set(CentralEurope, Oceania, ms(145))

	set(EasternEurope, SoutheastAsia, ms(95))
	set(EasternEurope, SouthAmerica, ms(120))
	set(EasternEurope, Oceania, ms(150))

	set(SoutheastAsia, SouthAmerica, ms(170))
	set(SoutheastAsia, Oceania, ms(55))

	set(SouthAmerica, Oceania, ms(160))
	return m.finalize()
}

// UniformLatencyModel returns a model where every pair of regions has
// the same base delay. Used by ablation experiments to remove geography.
func UniformLatencyModel(base time.Duration, jitter float64) *LatencyModel {
	m := &LatencyModel{jitter: jitter}
	for _, a := range AllRegions() {
		for _, b := range AllRegions() {
			m.base[a][b] = base
		}
	}
	return m.finalize()
}

// Base returns the base one-way delay between two regions.
func (m *LatencyModel) Base(from, to Region) time.Duration {
	return m.base[from][to]
}

// SampleFloor returns the smallest delay Sample can return for the
// pair: the base delay scaled by the minimum jitter factor. This is
// the per-link lookahead bound used by the sharded scheduler.
func (m *LatencyModel) SampleFloor(from, to Region) time.Duration {
	d := m.baseD[from][to]
	if d == 0 { // zero-constructed model without finalize
		d = fallbackBase
	}
	if m.jitter == 0 {
		return d
	}
	return time.Duration(float64(d) * m.oneMinusHalf)
}

// MinSampleFloor returns the smallest delay Sample can return across
// every pair of valid regions, diagonals included. Any two nodes —
// even two in the same region — are at least this far apart, which
// makes it the conservative-PDES lookahead for any partition of the
// network.
func (m *LatencyModel) MinSampleFloor() time.Duration {
	min := time.Duration(0)
	for _, a := range AllRegions() {
		for _, b := range AllRegions() {
			if f := m.SampleFloor(a, b); min == 0 || f < min {
				min = f
			}
		}
	}
	return min
}

// Sample draws a one-way delay between two regions, applying jitter.
// Jitter is asymmetric: delays can stretch more than they can shrink,
// matching the long-tailed nature of Internet latency. A model with
// zero jitter samples the base delay exactly (deterministic transport,
// used by ablations and tests).
func (m *LatencyModel) Sample(rng *rand.Rand, from, to Region) time.Duration {
	if m.jitter == 0 {
		d := m.baseD[from][to]
		if d == 0 { // zero-constructed model without finalize
			d = fallbackBase
		}
		return d
	}
	// factor in [1-j/2, 1+j], with occasional heavier tail. The
	// multiply chain keeps the historical evaluation order so sampled
	// values stay bit-identical across engine versions.
	f := m.oneMinusHalf + rng.Float64()*1.5*m.jitter
	if rng.Float64() < 0.06 { // occasional congestion spike
		f += rng.Float64() * 4
	}
	return time.Duration(m.baseF[from][to] * f)
}
