package geo

import (
	"testing"
	"time"

	"math/rand"
)

// TestSampleFloorIsALowerBound: no draw from Sample may undercut
// SampleFloor — the sharded scheduler's lookahead depends on it.
func TestSampleFloorIsALowerBound(t *testing.T) {
	m := DefaultLatencyModel()
	rng := rand.New(rand.NewSource(11))
	for _, from := range AllRegions() {
		for _, to := range AllRegions() {
			floor := m.SampleFloor(from, to)
			if floor <= 0 {
				t.Fatalf("SampleFloor(%v,%v) = %v", from, to, floor)
			}
			for i := 0; i < 500; i++ {
				if d := m.Sample(rng, from, to); d < floor {
					t.Fatalf("Sample(%v,%v) = %v below floor %v", from, to, d, floor)
				}
			}
		}
	}
}

// TestMinSampleFloorIsGlobalMin: the model-wide floor equals the
// smallest per-pair floor, and for the default model that is the
// Western-Europe intra-region link scaled by the minimum jitter
// factor.
func TestMinSampleFloorIsGlobalMin(t *testing.T) {
	m := DefaultLatencyModel()
	min := time.Duration(0)
	for _, a := range AllRegions() {
		for _, b := range AllRegions() {
			if f := m.SampleFloor(a, b); min == 0 || f < min {
				min = f
			}
		}
	}
	if got := m.MinSampleFloor(); got != min {
		t.Fatalf("MinSampleFloor = %v, scan gives %v", got, min)
	}
	// Default model: the cheapest link is an 8ms diagonal with jitter
	// 0.35, so the floor is 8ms × (1 − 0.35/2) = 6.6ms.
	if want := time.Duration(float64(8*time.Millisecond) * 0.825); m.MinSampleFloor() != want {
		t.Fatalf("default MinSampleFloor = %v, want %v", m.MinSampleFloor(), want)
	}
}

// TestSampleFloorZeroJitter: a deterministic model's floor is the base
// delay itself.
func TestSampleFloorZeroJitter(t *testing.T) {
	m := UniformLatencyModel(20*time.Millisecond, 0)
	if got := m.SampleFloor(NorthAmerica, Oceania); got != 20*time.Millisecond {
		t.Fatalf("SampleFloor = %v, want 20ms", got)
	}
	if got := m.MinSampleFloor(); got != 20*time.Millisecond {
		t.Fatalf("MinSampleFloor = %v, want 20ms", got)
	}
}
