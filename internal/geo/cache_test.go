package geo

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestSharedModelIdentity(t *testing.T) {
	if SharedDefaultLatencyModel() != SharedDefaultLatencyModel() {
		t.Error("SharedDefaultLatencyModel returned distinct instances")
	}
	a := SharedUniformLatencyModel(10*time.Millisecond, 0)
	b := SharedUniformLatencyModel(10*time.Millisecond, 0)
	if a != b {
		t.Error("equal parameters returned distinct instances")
	}
	c := SharedUniformLatencyModel(20*time.Millisecond, 0)
	d := SharedUniformLatencyModel(10*time.Millisecond, 0.3)
	if c == a || d == a || c == d {
		t.Error("distinct parameters shared an instance")
	}
}

// TestSharedModelMatchesCold pins the cache to the uncached
// constructors: a shared model must sample exactly what a private one
// does, or sweeps switching to the cache would change results.
func TestSharedModelMatchesCold(t *testing.T) {
	shared := SharedDefaultLatencyModel()
	cold := DefaultLatencyModel()
	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	for _, from := range AllRegions() {
		for _, to := range AllRegions() {
			if shared.Base(from, to) != cold.Base(from, to) {
				t.Fatalf("base(%v,%v) differs", from, to)
			}
			if shared.Sample(rngA, from, to) != cold.Sample(rngB, from, to) {
				t.Fatalf("sample(%v,%v) differs", from, to)
			}
		}
	}
}

// TestSharedModelConcurrent hammers the cache and the returned models
// from many goroutines; it is only meaningful under -race, where it
// proves the read-only sharing contract (each goroutine owns its RNG,
// the model itself is never written after construction).
func TestSharedModelConcurrent(t *testing.T) {
	regions := AllRegions()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				m := SharedDefaultLatencyModel()
				u := SharedUniformLatencyModel(time.Duration(1+i%4)*time.Millisecond, 0.2)
				from := regions[i%len(regions)]
				to := regions[(i+g)%len(regions)]
				_ = m.Sample(rng, from, to)
				_ = u.Sample(rng, from, to)
			}
		}(g)
	}
	wg.Wait()
}
