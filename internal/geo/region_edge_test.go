package geo

import (
	"math/rand"
	"testing"
	"time"
)

// TestParseRegionEdgeCases pins the exact-match contract: empty
// strings, stray whitespace, wrong case and code/name hybrids must all
// be rejected rather than fuzzily matched — scenario specs depend on
// parse failures surfacing instead of silently resolving to the wrong
// region.
func TestParseRegionEdgeCases(t *testing.T) {
	for _, bad := range []string{
		"",
		"  ",
		"ea",  // codes are upper-case
		"EA ", // exact match means no trimming here
		" EA",
		"eastern asia",   // names are title-case
		"EasternAsia",    // no space-stripped aliases
		"Eastern  Asia",  // double space
		"NorthAmerica/X", // garbage suffix
		"R3",             // the fallback Code() form never parses back
		"Region(2)",      // the fallback String() form never parses back
	} {
		if r, err := ParseRegion(bad); err == nil {
			t.Errorf("ParseRegion(%q) = %v, want error", bad, r)
		}
	}
}

// TestParseRegionRoundTripsEveryRegion: both textual forms of every
// region resolve back to it, and the zero/out-of-range regions have no
// parseable form.
func TestParseRegionRoundTripsEveryRegion(t *testing.T) {
	for _, r := range AllRegions() {
		for _, form := range []string{r.Code(), r.String()} {
			got, err := ParseRegion(form)
			if err != nil || got != r {
				t.Errorf("ParseRegion(%q) = %v, %v; want %v", form, got, err, r)
			}
		}
	}
	for _, invalid := range []Region{0, NumRegions + 1, -1} {
		if invalid.Valid() {
			t.Errorf("Region(%d) claims validity", invalid)
		}
	}
}

// TestSelfLatency: the diagonal of the latency matrix is positive and
// strictly the fastest link out of every region, and sampling a
// self-pair honours it with and without jitter.
func TestSelfLatency(t *testing.T) {
	m := DefaultLatencyModel()
	rng := rand.New(rand.NewSource(7))
	for _, r := range AllRegions() {
		self := m.Base(r, r)
		if self <= 0 {
			t.Fatalf("Base(%v,%v) = %v", r, r, self)
		}
		for _, other := range AllRegions() {
			if other == r {
				continue
			}
			if m.Base(r, other) <= self {
				t.Errorf("intra-region %v (%v) not faster than %v->%v (%v)",
					r, self, r, other, m.Base(r, other))
			}
		}
		for i := 0; i < 200; i++ {
			if d := m.Sample(rng, r, r); d <= 0 {
				t.Fatalf("non-positive self-latency sample for %v", r)
			}
		}
	}
	// Zero jitter samples the base exactly.
	exact := UniformLatencyModel(25*time.Millisecond, 0)
	for _, r := range AllRegions() {
		if d := exact.Sample(rng, r, r); d != 25*time.Millisecond {
			t.Fatalf("deterministic self-sample = %v", d)
		}
	}
}

// TestLatencyMatrixSymmetry: the base matrix is symmetric in every
// model the package builds, including after finalize's fallback fill,
// so A→B and B→A simulations are statistically exchangeable.
func TestLatencyMatrixSymmetry(t *testing.T) {
	models := map[string]*LatencyModel{
		"default": DefaultLatencyModel(),
		"uniform": UniformLatencyModel(40*time.Millisecond, 0.2),
	}
	for name, m := range models {
		for _, a := range AllRegions() {
			for _, b := range AllRegions() {
				if m.Base(a, b) != m.Base(b, a) {
					t.Errorf("%s: Base(%v,%v)=%v != Base(%v,%v)=%v",
						name, a, b, m.Base(a, b), b, a, m.Base(b, a))
				}
			}
		}
	}
	// The zero-constructed model's implicit fallback is symmetric too:
	// every pair (including out-of-matrix use through Sample) gets the
	// same constant.
	var zero LatencyModel
	rng := rand.New(rand.NewSource(3))
	for _, a := range AllRegions() {
		for _, b := range AllRegions() {
			ab := zero.Sample(rng, a, b)
			ba := zero.Sample(rng, b, a)
			if ab != ba || ab != fallbackBase {
				t.Fatalf("zero-model fallback asymmetric: %v vs %v", ab, ba)
			}
		}
	}
}

// TestDistributionSingleRegion: a one-region distribution always
// samples that region and reports weight 1.
func TestDistributionSingleRegion(t *testing.T) {
	d := MustDistribution(map[Region]float64{SouthAmerica: 0.123})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := d.Sample(rng); got != SouthAmerica {
			t.Fatalf("sampled %v", got)
		}
	}
	if w := d.Weight(SouthAmerica); w != 1 {
		t.Fatalf("weight = %v", w)
	}
}
