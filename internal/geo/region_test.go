package geo

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRegionStringAndCode(t *testing.T) {
	tests := []struct {
		region   Region
		wantName string
		wantCode string
	}{
		{NorthAmerica, "North America", "NA"},
		{EasternAsia, "Eastern Asia", "EA"},
		{WesternEurope, "Western Europe", "WE"},
		{CentralEurope, "Central Europe", "CE"},
		{EasternEurope, "Eastern Europe", "EE"},
		{SoutheastAsia, "Southeast Asia", "SEA"},
		{SouthAmerica, "South America", "SA"},
		{Oceania, "Oceania", "OC"},
	}
	for _, tt := range tests {
		if got := tt.region.String(); got != tt.wantName {
			t.Errorf("%d.String() = %q, want %q", tt.region, got, tt.wantName)
		}
		if got := tt.region.Code(); got != tt.wantCode {
			t.Errorf("%d.Code() = %q, want %q", tt.region, got, tt.wantCode)
		}
		if !tt.region.Valid() {
			t.Errorf("%s should be valid", tt.wantName)
		}
	}
}

func TestInvalidRegion(t *testing.T) {
	var r Region
	if r.Valid() {
		t.Error("zero region must be invalid")
	}
	if got := r.String(); got != "Region(0)" {
		t.Errorf("String() = %q", got)
	}
	if got := Region(99).Code(); got != "R99" {
		t.Errorf("Code() = %q", got)
	}
}

func TestParseRegion(t *testing.T) {
	for _, r := range AllRegions() {
		byCode, err := ParseRegion(r.Code())
		if err != nil || byCode != r {
			t.Errorf("ParseRegion(%q) = %v, %v", r.Code(), byCode, err)
		}
		byName, err := ParseRegion(r.String())
		if err != nil || byName != r {
			t.Errorf("ParseRegion(%q) = %v, %v", r.String(), byName, err)
		}
	}
	if _, err := ParseRegion("Atlantis"); err == nil {
		t.Error("unknown region must error")
	}
}

func TestAllRegions(t *testing.T) {
	regions := AllRegions()
	if len(regions) != NumRegions {
		t.Fatalf("AllRegions returned %d, want %d", len(regions), NumRegions)
	}
	seen := make(map[Region]bool)
	for _, r := range regions {
		if seen[r] {
			t.Errorf("duplicate region %v", r)
		}
		seen[r] = true
	}
}

func TestNewDistributionErrors(t *testing.T) {
	if _, err := NewDistribution(nil); err == nil {
		t.Error("empty weights must error")
	}
	if _, err := NewDistribution(map[Region]float64{NorthAmerica: -1}); err == nil {
		t.Error("negative weight must error")
	}
	if _, err := NewDistribution(map[Region]float64{NorthAmerica: 0}); err == nil {
		t.Error("all-zero weights must error")
	}
}

func TestMustDistributionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDistribution did not panic on invalid input")
		}
	}()
	MustDistribution(nil)
}

func TestDistributionSampleRespectsSupport(t *testing.T) {
	d := MustDistribution(map[Region]float64{EasternAsia: 1, Oceania: 3})
	rng := rand.New(rand.NewSource(1))
	counts := make(map[Region]int)
	for i := 0; i < 10000; i++ {
		counts[d.Sample(rng)]++
	}
	if len(counts) != 2 {
		t.Fatalf("sampled regions %v, want exactly {EA, OC}", counts)
	}
	// Oceania should be drawn ~3x as often.
	ratio := float64(counts[Oceania]) / float64(counts[EasternAsia])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("ratio OC/EA = %.2f, want ≈3", ratio)
	}
}

func TestDistributionWeight(t *testing.T) {
	d := MustDistribution(map[Region]float64{NorthAmerica: 2, WesternEurope: 6})
	if w := d.Weight(NorthAmerica); w < 0.249 || w > 0.251 {
		t.Errorf("Weight(NA) = %f, want 0.25", w)
	}
	if w := d.Weight(WesternEurope); w < 0.749 || w > 0.751 {
		t.Errorf("Weight(WE) = %f, want 0.75", w)
	}
	if w := d.Weight(Oceania); w != 0 {
		t.Errorf("Weight(OC) = %f, want 0", w)
	}
}

func TestDistributionRegionsCopy(t *testing.T) {
	d := MustDistribution(map[Region]float64{NorthAmerica: 1, Oceania: 1})
	rs := d.Regions()
	rs[0] = Region(99)
	if d.Regions()[0] == Region(99) {
		t.Error("Regions() must return a copy")
	}
}

func TestGlobalDistributionsNormalize(t *testing.T) {
	for name, d := range map[string]*Distribution{
		"nodes":   GlobalNodeDistribution(),
		"senders": GlobalSenderDistribution(),
	} {
		total := 0.0
		for _, r := range d.Regions() {
			total += d.Weight(r)
		}
		if total < 0.999 || total > 1.001 {
			t.Errorf("%s weights sum to %f", name, total)
		}
	}
}

func TestDefaultLatencyModelSymmetricAndLocalFaster(t *testing.T) {
	m := DefaultLatencyModel()
	for _, a := range AllRegions() {
		for _, b := range AllRegions() {
			if m.Base(a, b) != m.Base(b, a) {
				t.Errorf("asymmetric base latency %v<->%v", a, b)
			}
			if m.Base(a, b) <= 0 {
				t.Errorf("non-positive base latency %v->%v", a, b)
			}
		}
		// Intra-region must be faster than any inter-region link.
		for _, b := range AllRegions() {
			if a == b {
				continue
			}
			if m.Base(a, a) >= m.Base(a, b) {
				t.Errorf("intra-region %v latency not below %v->%v", a, a, b)
			}
		}
	}
}

func TestLatencySampleBounds(t *testing.T) {
	m := DefaultLatencyModel()
	rng := rand.New(rand.NewSource(1))
	base := m.Base(NorthAmerica, EasternAsia)
	spikes := 0
	for i := 0; i < 5000; i++ {
		d := m.Sample(rng, NorthAmerica, EasternAsia)
		if d <= 0 {
			t.Fatal("non-positive sampled latency")
		}
		if d > 2*base {
			spikes++
		}
	}
	// Congestion spikes exist but must stay rare.
	if spikes == 0 {
		t.Error("expected occasional latency spikes")
	}
	if spikes > 500 {
		t.Errorf("%d of 5000 samples spiked; tail too heavy", spikes)
	}
}

func TestLatencySampleUnknownPairUsesFallback(t *testing.T) {
	var m LatencyModel // zero model: all bases zero
	rng := rand.New(rand.NewSource(1))
	if d := m.Sample(rng, NorthAmerica, Oceania); d <= 0 {
		t.Error("zero-base pair should fall back to a positive delay")
	}
}

func TestUniformLatencyModel(t *testing.T) {
	m := UniformLatencyModel(30*time.Millisecond, 0)
	for _, a := range AllRegions() {
		for _, b := range AllRegions() {
			if m.Base(a, b) != 30*time.Millisecond {
				t.Fatalf("Base(%v,%v) = %v", a, b, m.Base(a, b))
			}
		}
	}
}

// Property: every sampled latency is positive and bounded by a generous
// multiple of the base (jitter + max spike).
func TestLatencySampleProperty(t *testing.T) {
	m := DefaultLatencyModel()
	rng := rand.New(rand.NewSource(42))
	regions := AllRegions()
	f := func(ai, bi uint8) bool {
		a := regions[int(ai)%len(regions)]
		b := regions[int(bi)%len(regions)]
		d := m.Sample(rng, a, b)
		base := m.Base(a, b)
		return d > 0 && d < 8*base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
