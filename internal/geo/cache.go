package geo

import (
	"sync"
	"time"
)

// Shared latency-model cache. A LatencyModel is immutable once
// constructed (finalize flattens the matrices; Sample only reads), so
// concurrent sweep workers can safely share one instance instead of
// re-flattening the full region×region matrix for every run. The cache
// is process-wide and never evicts: the key space is the handful of
// distinct models a sweep actually uses.

var (
	defaultModelOnce sync.Once
	defaultModel     *LatencyModel

	uniformModels sync.Map // uniformKey -> *LatencyModel
)

type uniformKey struct {
	base   time.Duration
	jitter float64
}

// SharedDefaultLatencyModel returns the process-wide default latency
// model. It is the cached equivalent of DefaultLatencyModel: the same
// matrices, built once, safe for concurrent read-only use.
func SharedDefaultLatencyModel() *LatencyModel {
	defaultModelOnce.Do(func() { defaultModel = DefaultLatencyModel() })
	return defaultModel
}

// SharedUniformLatencyModel returns the process-wide uniform latency
// model for the given base latency and jitter fraction, building and
// caching it on first use. Equal parameters always return the same
// instance.
func SharedUniformLatencyModel(base time.Duration, jitter float64) *LatencyModel {
	key := uniformKey{base: base, jitter: jitter}
	if v, ok := uniformModels.Load(key); ok {
		return v.(*LatencyModel)
	}
	v, _ := uniformModels.LoadOrStore(key, UniformLatencyModel(base, jitter))
	return v.(*LatencyModel)
}
