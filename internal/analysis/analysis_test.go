package analysis

import (
	"testing"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

// fixture builds synthetic datasets with known answers.
type fixture struct {
	t      *testing.T
	reg    *chain.Registry
	issuer *types.HashIssuer
	d      *Dataset
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	issuer := types.NewHashIssuer(7)
	reg := chain.NewRegistry(1000, issuer)
	return &fixture{
		t:      t,
		reg:    reg,
		issuer: issuer,
		d: &Dataset{
			Vantages:   []string{"NA", "EA", "WE", "CE"},
			Chain:      reg,
			PoolNames:  []string{"Ethermine", "Sparkpool", "F2pool2"},
			InterBlock: 13300 * time.Millisecond,
			Duration:   time.Hour,
		},
	}
}

func (f *fixture) block(parent *types.Block, miner types.PoolID, txs []types.Hash, uncles ...types.Hash) *types.Block {
	f.t.Helper()
	b := &types.Block{
		Hash:       f.issuer.Next(),
		Number:     parent.Number + 1,
		ParentHash: parent.Hash,
		Miner:      miner,
		TxHashes:   txs,
		Uncles:     uncles,
	}
	if err := f.reg.Add(b); err != nil {
		f.t.Fatal(err)
	}
	return b
}

// observe records a block reception at a vantage.
func (f *fixture) observe(vantage string, at time.Duration, b *types.Block, kind string) {
	f.d.Blocks = append(f.d.Blocks, measure.BlockRecord{
		Vantage: vantage, At: at, Hash: b.Hash, Number: b.Number,
		Miner: b.Miner, Parent: b.ParentHash, Kind: kind,
		NTxs: len(b.TxHashes),
	})
}

// observeTx records a transaction first-observation at a vantage.
func (f *fixture) observeTx(vantage string, at time.Duration, hash types.Hash, sender types.AccountID, nonce uint64) {
	f.d.Txs = append(f.d.Txs, measure.TxRecord{
		Vantage: vantage, At: at, Hash: hash, Sender: sender, Nonce: nonce,
	})
}

func TestBlockPropagationKnownDelays(t *testing.T) {
	f := newFixture(t)
	b1 := f.block(f.reg.Genesis(), 1, nil)
	b2 := f.block(b1, 1, nil)

	// b1: first at EA t=1000ms, NA +50ms, WE +100ms, CE +150ms.
	f.observe("EA", 1000*time.Millisecond, b1, "block")
	f.observe("NA", 1050*time.Millisecond, b1, "block")
	f.observe("WE", 1100*time.Millisecond, b1, "announce")
	f.observe("CE", 1150*time.Millisecond, b1, "block")
	// b2: only one vantage → excluded.
	f.observe("EA", 2000*time.Millisecond, b2, "block")

	res, err := BlockPropagation(f.d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1 (single-vantage excluded)", res.Blocks)
	}
	if res.DelaysMs.N() != 3 {
		t.Fatalf("samples = %d", res.DelaysMs.N())
	}
	if res.MedianMs != 100 {
		t.Errorf("median = %f, want 100", res.MedianMs)
	}
	if res.MeanMs != 100 {
		t.Errorf("mean = %f, want 100", res.MeanMs)
	}
	if res.InterBlockRatio < 132 || res.InterBlockRatio > 134 {
		t.Errorf("inter-block ratio = %f, want ≈133", res.InterBlockRatio)
	}
	// Duplicate later receptions must not affect first-arrival times.
	f.observe("NA", 3000*time.Millisecond, b1, "announce")
	res2, err := BlockPropagation(f.d)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MedianMs != 100 {
		t.Error("later duplicate changed first-arrival delay")
	}
}

func TestBlockPropagationClampsClockSkew(t *testing.T) {
	f := newFixture(t)
	b := f.block(f.reg.Genesis(), 1, nil)
	// NTP offsets can make a later vantage appear earlier; deltas are
	// clamped at zero rather than going negative.
	f.observe("EA", 1000*time.Millisecond, b, "block")
	f.observe("NA", 990*time.Millisecond, b, "block")
	res, err := BlockPropagation(f.d)
	if err != nil {
		t.Fatal(err)
	}
	if min, _ := res.DelaysMs.Min(); min < 0 {
		t.Error("negative delay leaked through")
	}
}

func TestRedundancyCounts(t *testing.T) {
	f := newFixture(t)
	f.d.Vantages = []string{"NA"}
	b1 := f.block(f.reg.Genesis(), 1, nil)
	b2 := f.block(b1, 1, nil)
	aux := "WE-default"

	// b1 at the default node: 2 full + 3 announces (+1 fetched ignored).
	f.observe(aux, 1*time.Second, b1, "block")
	f.observe(aux, 2*time.Second, b1, "block")
	f.observe(aux, 3*time.Second, b1, "announce")
	f.observe(aux, 4*time.Second, b1, "announce")
	f.observe(aux, 5*time.Second, b1, "announce")
	f.observe(aux, 6*time.Second, b1, "fetched")
	// b2: 4 full, 1 announce.
	for i := 0; i < 4; i++ {
		f.observe(aux, time.Duration(10+i)*time.Second, b2, "block")
	}
	f.observe(aux, 15*time.Second, b2, "announce")
	// Noise from a primary vantage must be ignored.
	f.observe("NA", time.Second, b1, "block")

	res, err := Redundancy(f.d, aux, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 2 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
	if res.Announcements.Avg != 2 { // (3+1)/2
		t.Errorf("announce avg = %f", res.Announcements.Avg)
	}
	if res.WholeBlocks.Avg != 3 { // (2+4)/2
		t.Errorf("full avg = %f", res.WholeBlocks.Avg)
	}
	if res.Combined.Avg != 5 {
		t.Errorf("combined avg = %f (fetched must be excluded)", res.Combined.Avg)
	}
	if res.OptimalLn < 5 || res.OptimalLn > 5.1 {
		t.Errorf("ln(150) = %f", res.OptimalLn)
	}
}

func TestRedundancyUnknownVantage(t *testing.T) {
	f := newFixture(t)
	if _, err := Redundancy(f.d, "nope", 10); err == nil {
		t.Fatal("unknown vantage must error")
	}
}

func TestFirstObservationSharesAndTies(t *testing.T) {
	f := newFixture(t)
	g := f.reg.Genesis()
	parent := g
	// 4 blocks first seen at EA, 1 at NA; one EA win is within 10ms of
	// the runner-up (uncertain).
	for i := 0; i < 5; i++ {
		b := f.block(parent, 1, nil)
		parent = b
		base := time.Duration(i+1) * time.Minute
		if i < 4 {
			f.observe("EA", base, b, "block")
			margin := 50 * time.Millisecond
			if i == 0 {
				margin = 5 * time.Millisecond
			}
			f.observe("NA", base+margin, b, "block")
		} else {
			f.observe("NA", base, b, "block")
			f.observe("EA", base+30*time.Millisecond, b, "block")
		}
	}
	res := FirstObservation(f.d)
	if res.Blocks != 5 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
	if res.Shares["EA"] != 0.8 || res.Shares["NA"] != 0.2 {
		t.Errorf("shares = %v", res.Shares)
	}
	if res.Counts["EA"] != 4 {
		t.Errorf("counts = %v", res.Counts)
	}
	if res.UncertainShare != 0.2 {
		t.Errorf("uncertain = %f, want 0.2", res.UncertainShare)
	}
}

func TestFirstObservationIgnoresAuxiliaryVantages(t *testing.T) {
	f := newFixture(t)
	b := f.block(f.reg.Genesis(), 1, nil)
	f.observe("WE-default", time.Second, b, "block") // auxiliary: earliest but excluded
	f.observe("EA", 2*time.Second, b, "block")
	f.observe("NA", 3*time.Second, b, "block")
	res := FirstObservation(f.d)
	if res.Shares["EA"] != 1 {
		t.Errorf("EA share = %f; auxiliary vantage leaked into analysis", res.Shares["EA"])
	}
}

func TestPoolGeographyAttribution(t *testing.T) {
	f := newFixture(t)
	g := f.reg.Genesis()
	// Pool 1 blocks seen first at EA; pool 2 blocks first at WE.
	parent := g
	for i := 0; i < 3; i++ {
		b := f.block(parent, 1, nil)
		parent = b
		at := time.Duration(i+1) * time.Minute
		f.observe("EA", at, b, "block")
		f.observe("WE", at+time.Second, b, "block")
	}
	for i := 0; i < 2; i++ {
		b := f.block(parent, 2, nil)
		parent = b
		at := time.Duration(i+10) * time.Minute
		f.observe("WE", at, b, "block")
		f.observe("EA", at+time.Second, b, "block")
	}
	res := PoolGeography(f.d, 10)
	if res.Blocks != 5 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	top := res.Rows[0]
	if top.Pool != "Ethermine" || top.Blocks != 3 {
		t.Errorf("top row = %+v", top)
	}
	if top.Shares["EA"] != 1 {
		t.Errorf("Ethermine EA share = %f", top.Shares["EA"])
	}
	if top.PowerShare < 0.59 || top.PowerShare > 0.61 {
		t.Errorf("power share = %f", top.PowerShare)
	}
	if res.Rows[1].Shares["WE"] != 1 {
		t.Errorf("Sparkpool WE share = %f", res.Rows[1].Shares["WE"])
	}
}

func TestPoolGeographyAggregatesTail(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	for pool := types.PoolID(1); pool <= 3; pool++ {
		b := f.block(parent, pool, nil)
		parent = b
		at := time.Duration(pool) * time.Minute
		f.observe("EA", at, b, "block")
		f.observe("NA", at+time.Second, b, "block")
	}
	res := PoolGeography(f.d, 2)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d (2 named + aggregate)", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Pool != "Remaining miners" || last.Blocks != 1 {
		t.Errorf("aggregate row = %+v", last)
	}
}
