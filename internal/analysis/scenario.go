package analysis

// ScenarioResult annotates a run with the interventions that were
// composed into it: the canonical spec tags (configuration order) and
// the per-scenario headline scalars, already prefixed with
// "scenario_<name>_" so they merge into KeyMetrics and aggregate
// across sweep seeds like any other metric.
type ScenarioResult struct {
	// Tags are the canonical scenario spec strings ("partition:a=EA", ...).
	Tags []string `json:"tags"`
	// Metrics are the scenario_*-prefixed headline scalars.
	Metrics KeyMetrics `json:"metrics,omitempty"`
}

// KeyMetrics returns the scenario-tagged metrics. Nil-safe.
func (r *ScenarioResult) KeyMetrics() KeyMetrics {
	if r == nil {
		return nil
	}
	return r.Metrics
}
