package analysis

import (
	"sort"

	"ethmeasure/internal/types"
)

// EmptyBlocksRow is one bar of Figure 6.
type EmptyBlocksRow struct {
	Pool        string
	EmptyBlocks int
	TotalBlocks int
	EmptyRate   float64 // empty / total for this pool
}

// EmptyBlocksResult reproduces Figure 6 and §III-C3: empty main-chain
// blocks per mining pool. The paper found 1.45% of main blocks empty
// (2,921 of 201,086), with Zhizhu above 25% and two major pools at 0.
type EmptyBlocksResult struct {
	Rows        []EmptyBlocksRow // descending by empty count
	MainBlocks  int
	EmptyBlocks int
	EmptyShare  float64
}

// EmptyBlocks computes Figure 6 over the topN pools by total blocks
// mined; the rest aggregate into a "Remaining pools" row.
func EmptyBlocks(d *Dataset, topN int) *EmptyBlocksResult {
	type agg struct{ total, empty int }
	byPool := make(map[types.PoolID]*agg)
	res := &EmptyBlocksResult{}
	for _, b := range d.Chain.MainChain() {
		if b.Miner == 0 {
			continue // genesis
		}
		a, ok := byPool[b.Miner]
		if !ok {
			a = &agg{}
			byPool[b.Miner] = a
		}
		a.total++
		res.MainBlocks++
		if b.Empty() {
			a.empty++
			res.EmptyBlocks++
		}
	}
	if res.MainBlocks > 0 {
		res.EmptyShare = float64(res.EmptyBlocks) / float64(res.MainBlocks)
	}

	ids := make([]types.PoolID, 0, len(byPool))
	for id := range byPool {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if byPool[ids[i]].total != byPool[ids[j]].total {
			return byPool[ids[i]].total > byPool[ids[j]].total
		}
		return ids[i] < ids[j]
	})

	rest := &agg{}
	for i, id := range ids {
		a := byPool[id]
		if topN > 0 && i >= topN {
			rest.total += a.total
			rest.empty += a.empty
			continue
		}
		res.Rows = append(res.Rows, makeEmptyRow(d.PoolName(id), a.total, a.empty))
	}
	if rest.total > 0 {
		res.Rows = append(res.Rows, makeEmptyRow("Remaining pools", rest.total, rest.empty))
	}
	// Figure 6 orders bars by empty count descending.
	sort.SliceStable(res.Rows, func(i, j int) bool {
		return res.Rows[i].EmptyBlocks > res.Rows[j].EmptyBlocks
	})
	return res
}

func makeEmptyRow(name string, total, empty int) EmptyBlocksRow {
	row := EmptyBlocksRow{Pool: name, EmptyBlocks: empty, TotalBlocks: total}
	if total > 0 {
		row.EmptyRate = float64(empty) / float64(total)
	}
	return row
}
