package analysis

import (
	"time"

	"ethmeasure/internal/stats"
)

// GeoDelayResult drills into Figure 1: per-vantage block reception
// delays relative to the first observation, exposing which vantage
// pairs sit close together (WE/CE) and which lag (NA behind EA-origin
// blocks) — the geographic structure that Figure 2 summarises as
// first-observation counts.
type GeoDelayResult struct {
	Vantages []string

	// MedianMs[v] is the median delay of vantage v behind the first
	// observer, over blocks where v was not first.
	MedianMs map[string]float64

	// P90Ms[v] is the 90th percentile of the same distribution.
	P90Ms map[string]float64

	// Samples[v] is the number of (block, v) lag observations.
	Samples map[string]int

	Blocks int
}

// GeoDelay computes per-vantage lag distributions.
func GeoDelay(d *Dataset) *GeoDelayResult {
	res := &GeoDelayResult{
		Vantages: append([]string(nil), d.Vantages...),
		MedianMs: make(map[string]float64, len(d.Vantages)),
		P90Ms:    make(map[string]float64, len(d.Vantages)),
		Samples:  make(map[string]int, len(d.Vantages)),
	}
	perVantage := make(map[string]*stats.Sample, len(d.Vantages))
	for _, v := range d.Vantages {
		perVantage[v] = stats.NewSample(1024)
	}
	for _, a := range d.arrivalsByBlock() {
		if len(a.first) < 2 {
			continue
		}
		res.Blocks++
		for vant, at := range a.first {
			if vant == a.minVant {
				continue
			}
			delta := at - a.minTime
			if delta < 0 {
				delta = 0
			}
			if s, ok := perVantage[vant]; ok {
				s.Add(float64(delta) / float64(time.Millisecond))
			}
		}
	}
	for _, v := range d.Vantages {
		s := perVantage[v]
		res.Samples[v] = s.N()
		if s.N() > 0 {
			res.MedianMs[v] = s.MustQuantile(0.5)
			res.P90Ms[v] = s.MustQuantile(0.9)
		}
	}
	return res
}
