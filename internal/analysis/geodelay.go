package analysis

import (
	"time"

	"ethmeasure/internal/stats"
)

// GeoDelayResult drills into Figure 1: per-vantage block reception
// delays relative to the first observation, exposing which vantage
// pairs sit close together (WE/CE) and which lag (NA behind EA-origin
// blocks) — the geographic structure that Figure 2 summarises as
// first-observation counts.
type GeoDelayResult struct {
	Vantages []string

	// MedianMs[v] is the median delay of vantage v behind the first
	// observer, over blocks where v was not first.
	MedianMs map[string]float64

	// P90Ms[v] is the 90th percentile of the same distribution.
	P90Ms map[string]float64

	// Samples[v] is the number of (block, v) lag observations.
	Samples map[string]int

	Blocks int
}

// GeoDelay finalizes per-vantage lag distributions from the shared
// arrival index.
func (c *Collector) GeoDelay() *GeoDelayResult {
	res := &GeoDelayResult{
		Vantages: append([]string(nil), c.ds.Vantages...),
		MedianMs: make(map[string]float64, len(c.ds.Vantages)),
		P90Ms:    make(map[string]float64, len(c.ds.Vantages)),
		Samples:  make(map[string]int, len(c.ds.Vantages)),
	}
	perVantage := make([]*stats.Sample, len(c.ds.Vantages))
	for vi := range perVantage {
		perVantage[vi] = stats.NewSample(1024)
	}
	for _, a := range c.sortedArrivals() {
		if a.vantages < 2 {
			continue
		}
		res.Blocks++
		for vi := range a.at {
			if vi == a.minVant || a.seen&(1<<uint(vi)) == 0 {
				continue
			}
			delta := a.at[vi] - a.minTime
			if delta < 0 {
				delta = 0
			}
			perVantage[vi].Add(float64(delta) / float64(time.Millisecond))
		}
	}
	for vi, v := range c.ds.Vantages {
		s := perVantage[vi]
		res.Samples[v] = s.N()
		if s.N() > 0 {
			res.MedianMs[v] = s.MustQuantile(0.5)
			res.P90Ms[v] = s.MustQuantile(0.9)
		}
	}
	return res
}

// GeoDelay computes per-vantage lag distributions from a materialized
// dataset.
func GeoDelay(d *Dataset) *GeoDelayResult {
	return Collect(d, "").GeoDelay()
}
