package analysis

import (
	"math"

	"ethmeasure/internal/stats"
)

// InterBlockResult characterizes the block production process: the
// paper's campaign measured a mean inter-block time of 13.3 s (down
// from 14.3 s in 2017 after the Constantinople difficulty-bomb delay),
// which drives commit times (§III-C1) and fork exposure.
type InterBlockResult struct {
	// GapsSec are main-chain inter-block gaps (by mining timestamp).
	GapsSec *stats.Sample

	MeanSec   float64
	MedianSec float64
	P95Sec    float64

	// CoeffVar is stddev/mean. Proof-of-work arrivals are memoryless,
	// so a healthy chain sits near 1 (exponential inter-arrivals).
	CoeffVar float64

	Blocks int
}

// InterBlock computes main-chain inter-block statistics from block
// mining times.
func InterBlock(d *Dataset) *InterBlockResult {
	main := d.Chain.MainChain()
	res := &InterBlockResult{GapsSec: stats.NewSample(len(main))}
	for i := 2; i < len(main); i++ { // skip the genesis gap
		gap := main[i].MinedAt - main[i-1].MinedAt
		if gap < 0 {
			gap = 0
		}
		res.GapsSec.Add(gap.Seconds())
	}
	res.Blocks = res.GapsSec.N()
	if res.Blocks == 0 {
		return res
	}
	mean, _ := res.GapsSec.Mean()
	res.MeanSec = mean
	res.MedianSec = res.GapsSec.MustQuantile(0.5)
	res.P95Sec = res.GapsSec.MustQuantile(0.95)
	if mean > 0 {
		variance := 0.0
		for _, g := range res.GapsSec.Values() {
			variance += (g - mean) * (g - mean)
		}
		variance /= float64(res.Blocks)
		res.CoeffVar = math.Sqrt(variance) / mean
	}
	return res
}
