package analysis

import (
	"math"
	"testing"
	"time"

	"ethmeasure/internal/types"
)

func TestUncleRewardETH(t *testing.T) {
	tests := []struct {
		depth uint64
		want  float64
	}{
		{1, 1.75}, // (8-1)/8 * 2
		{2, 1.5},
		{6, 0.5},
		{7, 0.25},
		{0, 0},
		{8, 0},
	}
	for _, tt := range tests {
		if got := UncleRewardETH(tt.depth); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("UncleRewardETH(%d) = %f, want %f", tt.depth, got, tt.want)
		}
	}
}

func TestRewardsAccounting(t *testing.T) {
	f := newFixture(t)
	g := f.reg.Genesis()
	// Pool 1: main blocks at heights 1..3; its sibling at height 1 is
	// referenced as uncle by the height-2 block (one-miner fork
	// profit). Pool 2: a side block at height 2, referenced at height
	// 3. One orphan from pool 3 that earns nothing.
	m1 := f.block(g, 1, nil)
	sib := f.block(g, 1, nil)
	orphan := f.block(g, 3, nil)
	_ = orphan
	m2 := f.block(m1, 1, nil, sib.Hash)
	u2 := f.block(m1, 2, nil)
	m3 := f.block(m2, 1, nil, u2.Hash)
	_ = m3

	res := Rewards(f.d)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byPool := make(map[string]PoolRewardRow)
	for _, r := range res.Rows {
		byPool[r.Pool] = r
	}

	p1 := byPool["Ethermine"]
	if p1.MainBlocks != 3 {
		t.Errorf("pool1 main blocks = %d", p1.MainBlocks)
	}
	// 3 block rewards + 2 nephew rewards + own sibling uncle at depth 1.
	wantP1 := 3*BlockRewardETH + 2*NephewRewardETH + 1.75
	if math.Abs(p1.TotalETH-wantP1) > 1e-9 {
		t.Errorf("pool1 total = %f, want %f", p1.TotalETH, wantP1)
	}
	if math.Abs(p1.SiblingUncleETH-1.75) > 1e-9 {
		t.Errorf("pool1 sibling profit = %f, want 1.75", p1.SiblingUncleETH)
	}

	p2 := byPool["Sparkpool"]
	if math.Abs(p2.UncleRewardETH-1.75) > 1e-9 || p2.SiblingUncleETH != 0 {
		t.Errorf("pool2 uncle reward = %f (sibling %f)", p2.UncleRewardETH, p2.SiblingUncleETH)
	}

	p3 := byPool["F2pool2"]
	if p3.TotalETH != 0 || p3.OrphanBlocks != 1 {
		t.Errorf("orphaned pool earned %f with %d orphans", p3.TotalETH, p3.OrphanBlocks)
	}

	if res.WastedBlocks != 1 {
		t.Errorf("wasted = %d", res.WastedBlocks)
	}
	if math.Abs(res.SiblingShare-0.5) > 1e-9 { // 1.75 of 3.50 uncle ETH
		t.Errorf("sibling share = %f", res.SiblingShare)
	}
	// Rows sorted by total descending.
	if res.Rows[0].Pool != "Ethermine" {
		t.Errorf("top earner = %s", res.Rows[0].Pool)
	}
}

func TestRewardsEmptyChain(t *testing.T) {
	f := newFixture(t)
	res := Rewards(f.d)
	if res.TotalETH != 0 || len(res.Rows) != 0 {
		t.Errorf("empty chain rewards: %+v", res)
	}
}

func TestFinalityFromWinners(t *testing.T) {
	// Winners: A,A,A,B,A — runs A×3, B×1, A×1.
	winners := []types.PoolID{1, 1, 1, 2, 1}
	res := FinalityFromWinners(winners, []string{"A", "B"}, 3)
	if res.TopPool != "A" || math.Abs(res.TopShare-0.8) > 1e-9 {
		t.Fatalf("top = %s %.2f", res.TopPool, res.TopShare)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].SinglePoolWindows != 5 || res.Rows[0].SinglePoolShare != 1 {
		t.Errorf("depth-1 row = %+v", res.Rows[0])
	}
	// Depth 2: windows (A,A),(A,A),(A,B),(B,A) → 2 single-pool.
	if res.Rows[1].SinglePoolWindows != 2 {
		t.Errorf("depth-2 singles = %d, want 2", res.Rows[1].SinglePoolWindows)
	}
	// Depth 3: only the first window (A,A,A).
	if res.Rows[2].SinglePoolWindows != 1 {
		t.Errorf("depth-3 singles = %d, want 1", res.Rows[2].SinglePoolWindows)
	}
	if math.Abs(res.Rows[2].TopPoolTheory-0.64) > 1e-12 {
		t.Errorf("theory = %f", res.Rows[2].TopPoolTheory)
	}
}

func TestFinalityNakamotoCatchup(t *testing.T) {
	res := FinalityFromWinners([]types.PoolID{1, 2}, []string{"A", "B"}, 2)
	// Top share 0.5 → attacker at parity: catch-up certain.
	if res.Rows[1].NakamotoCatchup != 1 {
		t.Errorf("parity catch-up = %f", res.Rows[1].NakamotoCatchup)
	}
	// q = 0.25 behind 2 blocks: (0.25/0.75)^2 = 1/9.
	if got := nakamotoCatchup(0.25, 2); math.Abs(got-1.0/9.0) > 1e-12 {
		t.Errorf("catchup(0.25,2) = %f", got)
	}
	if nakamotoCatchup(0, 3) != 0 {
		t.Error("zero-power attacker must never catch up")
	}
}

func TestFinalityTwelveBlockViolations(t *testing.T) {
	winners := make([]types.PoolID, 30)
	for i := range winners {
		winners[i] = 2
	}
	winners[0] = 1 // a 29-run of pool 2
	res := FinalityFromWinners(winners, []string{"A", "B"}, 12)
	// 29-run contains 29-12+1 = 18 twelve-block single-pool windows.
	if res.TwelveBlockViolations != 18 {
		t.Errorf("12-block violations = %d, want 18", res.TwelveBlockViolations)
	}
}

func TestFinalityEmpty(t *testing.T) {
	res := FinalityFromWinners(nil, nil, 12)
	if res.MainBlocks != 0 || len(res.Rows) != 0 {
		t.Errorf("empty finality: %+v", res)
	}
}

func TestThroughputWasteAccounting(t *testing.T) {
	f := newFixture(t)
	f.d.Duration = 100 * time.Second
	g := f.reg.Genesis()
	txA, txB := types.Hash(0xE1), types.Hash(0xE2)
	m1 := f.block(g, 1, []types.Hash{txA, txB})
	side := f.block(g, 2, []types.Hash{txA}) // duplicates txA
	_ = side
	m2 := f.block(m1, 1, nil) // empty main block
	m3 := f.block(m2, 1, []types.Hash{0xE3, 0xE4})
	_ = m3

	res := Throughput(f.d)
	if res.TotalBlocks != 4 || res.MainBlocks != 3 || res.SideBlocks != 1 {
		t.Fatalf("blocks = %+v", res)
	}
	if res.SidePowerShare != 0.25 {
		t.Errorf("side power share = %f", res.SidePowerShare)
	}
	if res.CommittedTxs != 4 {
		t.Errorf("committed = %d", res.CommittedTxs)
	}
	if res.CommittedTxPS != 0.04 {
		t.Errorf("tx/s = %f", res.CommittedTxPS)
	}
	if res.DuplicateTxInclusions != 1 {
		t.Errorf("duplicates = %d", res.DuplicateTxInclusions)
	}
	// Non-empty main blocks carry 2 txs on average → 1 empty block
	// wasted ~2 txs; utilization 4/(2*3) = 2/3.
	if math.Abs(res.EmptyBlockCapacityLoss-2) > 1e-9 {
		t.Errorf("capacity loss = %f", res.EmptyBlockCapacityLoss)
	}
	if math.Abs(res.EffectiveUtilization-2.0/3.0) > 1e-9 {
		t.Errorf("utilization = %f", res.EffectiveUtilization)
	}
}

func TestInterBlockStats(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	// Gaps of exactly 10s between consecutive mining times.
	for i := 1; i <= 5; i++ {
		b := &types.Block{
			Hash:       f.issuer.Next(),
			Number:     parent.Number + 1,
			ParentHash: parent.Hash,
			Miner:      1,
			MinedAt:    time.Duration(i) * 10 * time.Second,
		}
		if err := f.reg.Add(b); err != nil {
			t.Fatal(err)
		}
		parent = b
	}
	res := InterBlock(f.d)
	if res.Blocks != 4 {
		t.Fatalf("gaps = %d", res.Blocks)
	}
	if res.MeanSec != 10 || res.MedianSec != 10 {
		t.Errorf("mean/median = %f/%f", res.MeanSec, res.MedianSec)
	}
	if res.CoeffVar != 0 {
		t.Errorf("constant gaps should have CV 0, got %f", res.CoeffVar)
	}
}

func TestInterBlockEmpty(t *testing.T) {
	f := newFixture(t)
	res := InterBlock(f.d)
	if res.Blocks != 0 || res.MeanSec != 0 {
		t.Errorf("empty chain interblock: %+v", res)
	}
}

func TestFeeMarketBands(t *testing.T) {
	f := newFixture(t)
	// Two txs: premium (price 50) included fast, reservoir (price 2)
	// included late.
	fast, slow := types.Hash(0xF1), types.Hash(0xF2)
	b1 := f.block(f.reg.Genesis(), 1, []types.Hash{fast})
	f.observe("EA", 10*time.Second, b1, "block")
	b2 := f.block(b1, 1, []types.Hash{slow})
	f.observe("EA", 100*time.Second, b2, "block")
	f.observeTx("EA", 1*time.Second, fast, 1, 0)
	f.observeTx("EA", 2*time.Second, slow, 2, 0)

	prices := map[types.Hash]uint64{fast: 50, slow: 2}
	res := FeeMarket(f.d, func(h types.Hash) (uint64, bool) {
		p, ok := prices[h]
		return p, ok
	})
	byLabel := make(map[string]FeeBandRow)
	for _, band := range res.Bands {
		byLabel[band.Label] = band
	}
	premium := byLabel["premium (40+)"]
	if premium.Txs != 1 || premium.InclusionP50 != 9 {
		t.Errorf("premium band = %+v", premium)
	}
	reservoir := byLabel["reservoir (1-3)"]
	if reservoir.Txs != 1 || reservoir.InclusionP50 != 98 {
		t.Errorf("reservoir band = %+v", reservoir)
	}
	if !res.MedianTrendDecreasing {
		t.Error("fee trend should be decreasing")
	}
}

func TestFeeMarketUnknownPrices(t *testing.T) {
	f := newFixture(t)
	res := FeeMarket(f.d, func(types.Hash) (uint64, bool) { return 0, false })
	for _, band := range res.Bands {
		if band.Txs != 0 {
			t.Errorf("band %s populated without price data", band.Label)
		}
	}
}

func TestGeoDelayPerVantage(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	// 3 blocks: EA first, NA +100ms, WE +40ms, CE +60ms each time.
	for i := 0; i < 3; i++ {
		b := f.block(parent, 1, nil)
		parent = b
		base := time.Duration(i+1) * time.Minute
		f.observe("EA", base, b, "block")
		f.observe("NA", base+100*time.Millisecond, b, "block")
		f.observe("WE", base+40*time.Millisecond, b, "block")
		f.observe("CE", base+60*time.Millisecond, b, "block")
	}
	res := GeoDelay(f.d)
	if res.Blocks != 3 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
	if res.MedianMs["NA"] != 100 || res.MedianMs["WE"] != 40 || res.MedianMs["CE"] != 60 {
		t.Errorf("medians = %v", res.MedianMs)
	}
	if res.Samples["EA"] != 0 {
		t.Errorf("first observer should have no lag samples, got %d", res.Samples["EA"])
	}
}
