package analysis

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"ethmeasure/internal/measure"
)

// TestCollectorLiveEqualsReplay feeds the same records once live
// (interleaved, as a bus would deliver them) and once via Replay of a
// materialized dataset, and requires identical finalizer output.
func TestCollectorLiveEqualsReplay(t *testing.T) {
	f := newFixture(t)
	g := f.reg.Genesis()
	b1 := f.block(g, 1, nil)
	b2 := f.block(b1, 2, nil)

	blocks := []measure.BlockRecord{
		{Vantage: "EA", At: 100 * time.Millisecond, Hash: b1.Hash, Number: b1.Number, Kind: "block"},
		{Vantage: "NA", At: 180 * time.Millisecond, Hash: b1.Hash, Number: b1.Number, Kind: "announce"},
		{Vantage: "WE", At: 140 * time.Millisecond, Hash: b1.Hash, Number: b1.Number, Kind: "block"},
		{Vantage: "EA", At: 15 * time.Second, Hash: b2.Hash, Number: b2.Number, Kind: "block"},
		{Vantage: "CE", At: 15100 * time.Millisecond, Hash: b2.Hash, Number: b2.Number, Kind: "block"},
		// Duplicate at a later time must not displace the earliest.
		{Vantage: "EA", At: 200 * time.Millisecond, Hash: b1.Hash, Number: b1.Number, Kind: "fetched"},
		// Unknown vantage records are counted but excluded from arrivals.
		{Vantage: "aux", At: 50 * time.Millisecond, Hash: b1.Hash, Number: b1.Number, Kind: "block"},
	}
	txs := []measure.TxRecord{
		{Vantage: "NA", At: time.Second, Hash: 1001, Sender: 1, Nonce: 0},
		{Vantage: "EA", At: 1100 * time.Millisecond, Hash: 1001, Sender: 1, Nonce: 0},
		{Vantage: "WE", At: 2 * time.Second, Hash: 1002, Sender: 1, Nonce: 1},
	}

	// Live: interleave block and tx records as a campaign would.
	live := NewCollector(f.d, "")
	live.RecordBlock(blocks[0])
	live.RecordTx(txs[0])
	live.RecordBlock(blocks[1])
	live.RecordBlock(blocks[2])
	live.RecordTx(txs[1])
	live.RecordBlock(blocks[3])
	live.RecordTx(txs[2])
	live.RecordBlock(blocks[4])
	live.RecordBlock(blocks[5])
	live.RecordBlock(blocks[6])

	f.d.Blocks, f.d.Txs = blocks, txs
	replay := Collect(f.d, "")

	if live.BlockRecords() != 7 || live.TxRecords() != 3 {
		t.Fatalf("record counts = %d/%d", live.BlockRecords(), live.TxRecords())
	}
	if replay.BlockRecords() != live.BlockRecords() || replay.TxRecords() != live.TxRecords() {
		t.Fatal("replay counts differ from live")
	}

	for name, pair := range map[string][2]any{
		"firstobs": {live.FirstObservation(), replay.FirstObservation()},
		"geodelay": {live.GeoDelay(), replay.GeoDelay()},
		"txprop":   {live.TxPropagation(), replay.TxPropagation()},
	} {
		a, _ := json.Marshal(pair[0])
		b, _ := json.Marshal(pair[1])
		if string(a) != string(b) {
			t.Errorf("%s: live %s != replay %s", name, a, b)
		}
	}
	pl, errL := live.Propagation()
	pr, errR := replay.Propagation()
	if errL != nil || errR != nil {
		t.Fatal(errL, errR)
	}
	if !reflect.DeepEqual(pl, pr) {
		t.Errorf("propagation diverged: %+v vs %+v", pl, pr)
	}
}

// TestCollectorArrivalIndex checks the incremental index against known
// answers: earliest observation per vantage, global first observer,
// and the two-vantage threshold.
func TestCollectorArrivalIndex(t *testing.T) {
	f := newFixture(t)
	g := f.reg.Genesis()
	b1 := f.block(g, 1, nil)
	b2 := f.block(b1, 1, nil)

	c := NewCollector(f.d, "")
	c.RecordBlock(measure.BlockRecord{Vantage: "EA", At: 120 * time.Millisecond, Hash: b1.Hash, Kind: "announce"})
	c.RecordBlock(measure.BlockRecord{Vantage: "EA", At: 90 * time.Millisecond, Hash: b1.Hash, Kind: "block"})
	c.RecordBlock(measure.BlockRecord{Vantage: "NA", At: 200 * time.Millisecond, Hash: b1.Hash, Kind: "block"})
	c.RecordBlock(measure.BlockRecord{Vantage: "CE", At: 10 * time.Second, Hash: b2.Hash, Kind: "block"})

	first := c.FirstObservation()
	if first.Blocks != 1 {
		t.Fatalf("blocks with ≥2 vantages = %d, want 1 (b2 seen once)", first.Blocks)
	}
	if first.Counts["EA"] != 1 {
		t.Errorf("EA must win b1 with its 90ms observation: %+v", first.Counts)
	}
	if at, ok := c.blockFirstSeen(b1.Hash); !ok || at != 90*time.Millisecond {
		t.Errorf("blockFirstSeen(b1) = %v, %v", at, ok)
	}
	if at, ok := c.blockFirstSeen(b2.Hash); !ok || at != 10*time.Second {
		t.Errorf("blockFirstSeen(b2) = %v, %v", at, ok)
	}
	if _, ok := c.blockFirstSeen(999); ok {
		t.Error("phantom block in index")
	}

	prop, err := c.Propagation()
	if err != nil {
		t.Fatal(err)
	}
	// One (block, later-vantage) delay: NA trails EA by 110ms on b1.
	if prop.DelaysMs.N() != 1 || prop.MedianMs != 110 {
		t.Errorf("delays N=%d median=%v, want 1/110ms", prop.DelaysMs.N(), prop.MedianMs)
	}
}

// TestCollectorRedundancyCounters mirrors the batch Redundancy
// semantics: only the configured vantage's records count, fetched
// bodies are excluded, and an unseen vantage is an error.
func TestCollectorRedundancyCounters(t *testing.T) {
	f := newFixture(t)
	g := f.reg.Genesis()
	b1 := f.block(g, 1, nil)

	c := NewCollector(f.d, "aux")
	if _, err := c.Redundancy(100); err == nil {
		t.Fatal("redundancy with zero records must fail")
	}
	c.RecordBlock(measure.BlockRecord{Vantage: "aux", At: time.Second, Hash: b1.Hash, Kind: "block"})
	c.RecordBlock(measure.BlockRecord{Vantage: "aux", At: 2 * time.Second, Hash: b1.Hash, Kind: "announce"})
	c.RecordBlock(measure.BlockRecord{Vantage: "aux", At: 3 * time.Second, Hash: b1.Hash, Kind: "announce"})
	c.RecordBlock(measure.BlockRecord{Vantage: "aux", At: 4 * time.Second, Hash: b1.Hash, Kind: "fetched"})
	c.RecordBlock(measure.BlockRecord{Vantage: "EA", At: time.Second, Hash: b1.Hash, Kind: "block"})

	red, err := c.Redundancy(100)
	if err != nil {
		t.Fatal(err)
	}
	if red.Blocks != 1 || red.Announcements.Avg != 2 || red.WholeBlocks.Avg != 1 || red.Combined.Avg != 3 {
		t.Errorf("redundancy rows = %+v", red)
	}
}
