package analysis

import (
	"sort"
	"time"

	"ethmeasure/internal/types"
)

// FirstObservationResult reproduces Figure 2: the proportion of new
// blocks each vantage was the first to observe. The paper found
// Eastern Asia first ~40% of the time and North America about four
// times less often (§III-B1).
type FirstObservationResult struct {
	Vantages []string
	Shares   map[string]float64 // vantage -> fraction of blocks seen first
	Counts   map[string]int
	Blocks   int

	// UncertainShare is the fraction of blocks whose first and second
	// observations fall within 10 ms — inside the NTP offset bound, so
	// the winner is not statistically meaningful (the paper's error
	// bars).
	UncertainShare float64
}

// FirstObservation finalizes Figure 2 from the shared arrival index.
func (c *Collector) FirstObservation() *FirstObservationResult {
	res := &FirstObservationResult{
		Vantages: append([]string(nil), c.ds.Vantages...),
		Shares:   make(map[string]float64, len(c.ds.Vantages)),
		Counts:   make(map[string]int, len(c.ds.Vantages)),
	}
	uncertain := 0
	for _, a := range c.sortedArrivals() {
		if a.vantages < 2 {
			continue
		}
		res.Blocks++
		res.Counts[c.vantageName(a.minVant)]++
		// Margin to the runner-up.
		second := time.Duration(1<<62 - 1)
		for vi := range a.at {
			if vi == a.minVant || a.seen&(1<<uint(vi)) == 0 {
				continue
			}
			if delta := a.at[vi] - a.minTime; delta < second {
				second = delta
			}
		}
		if second < 10*time.Millisecond {
			uncertain++
		}
	}
	if res.Blocks > 0 {
		for v, cnt := range res.Counts {
			res.Shares[v] = float64(cnt) / float64(res.Blocks)
		}
		res.UncertainShare = float64(uncertain) / float64(res.Blocks)
	}
	return res
}

// FirstObservation computes Figure 2 from a materialized dataset.
func FirstObservation(d *Dataset) *FirstObservationResult {
	return Collect(d, "").FirstObservation()
}

// PoolGeographyRow is one bar group of Figure 3: which vantage sees a
// given pool's blocks first, and how often.
type PoolGeographyRow struct {
	Pool       string
	PowerShare float64 // fraction of observed blocks mined by this pool
	Blocks     int
	Shares     map[string]float64 // vantage -> first-observation share
}

// PoolGeographyResult reproduces Figure 3: first observations broken
// down by the block's origin mining pool, showing that pool gateways
// are not evenly geographically distributed (§III-B2).
type PoolGeographyResult struct {
	Vantages []string
	Rows     []PoolGeographyRow // top pools by block count, descending
	Blocks   int
}

// PoolGeography finalizes Figure 3 over the topN most productive
// pools; remaining pools aggregate into a final "Remaining miners"
// row. The block's miner comes from the chain registry, available at
// finalize time.
func (c *Collector) PoolGeography(topN int) *PoolGeographyResult {
	type poolAgg struct {
		blocks int
		firsts map[string]int
	}
	byPool := make(map[types.PoolID]*poolAgg)
	total := 0
	for _, a := range c.sortedArrivals() {
		if a.vantages < 2 {
			continue
		}
		b, ok := c.ds.Chain.Get(a.hash)
		if !ok || b.Miner == 0 {
			continue
		}
		agg, ok := byPool[b.Miner]
		if !ok {
			agg = &poolAgg{firsts: make(map[string]int, 4)}
			byPool[b.Miner] = agg
		}
		agg.blocks++
		agg.firsts[c.vantageName(a.minVant)]++
		total++
	}

	ids := make([]types.PoolID, 0, len(byPool))
	for id := range byPool {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if byPool[ids[i]].blocks != byPool[ids[j]].blocks {
			return byPool[ids[i]].blocks > byPool[ids[j]].blocks
		}
		return ids[i] < ids[j]
	})

	res := &PoolGeographyResult{
		Vantages: append([]string(nil), c.ds.Vantages...),
		Blocks:   total,
	}
	makeRow := func(name string, agg *poolAgg) PoolGeographyRow {
		row := PoolGeographyRow{
			Pool:   name,
			Blocks: agg.blocks,
			Shares: make(map[string]float64, len(agg.firsts)),
		}
		if total > 0 {
			row.PowerShare = float64(agg.blocks) / float64(total)
		}
		for v, cnt := range agg.firsts {
			row.Shares[v] = float64(cnt) / float64(agg.blocks)
		}
		return row
	}
	rest := &poolAgg{firsts: make(map[string]int, 4)}
	for i, id := range ids {
		if topN <= 0 || i < topN {
			res.Rows = append(res.Rows, makeRow(c.ds.PoolName(id), byPool[id]))
			continue
		}
		rest.blocks += byPool[id].blocks
		for v, cnt := range byPool[id].firsts {
			rest.firsts[v] += cnt
		}
	}
	if rest.blocks > 0 {
		res.Rows = append(res.Rows, makeRow("Remaining miners", rest))
	}
	return res
}

// PoolGeography computes Figure 3 from a materialized dataset.
func PoolGeography(d *Dataset, topN int) *PoolGeographyResult {
	return Collect(d, "").PoolGeography(topN)
}
