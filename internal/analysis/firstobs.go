package analysis

import (
	"sort"
	"time"

	"ethmeasure/internal/types"
)

// FirstObservationResult reproduces Figure 2: the proportion of new
// blocks each vantage was the first to observe. The paper found
// Eastern Asia first ~40% of the time and North America about four
// times less often (§III-B1).
type FirstObservationResult struct {
	Vantages []string
	Shares   map[string]float64 // vantage -> fraction of blocks seen first
	Counts   map[string]int
	Blocks   int

	// UncertainShare is the fraction of blocks whose first and second
	// observations fall within 10 ms — inside the NTP offset bound, so
	// the winner is not statistically meaningful (the paper's error
	// bars).
	UncertainShare float64
}

// FirstObservation computes Figure 2.
func FirstObservation(d *Dataset) *FirstObservationResult {
	res := &FirstObservationResult{
		Vantages: append([]string(nil), d.Vantages...),
		Shares:   make(map[string]float64, len(d.Vantages)),
		Counts:   make(map[string]int, len(d.Vantages)),
	}
	uncertain := 0
	for _, a := range d.arrivalsByBlock() {
		if len(a.first) < 2 {
			continue
		}
		res.Blocks++
		res.Counts[a.minVant]++
		// Margin to the runner-up.
		second := time.Duration(1<<62 - 1)
		for v, at := range a.first {
			if v == a.minVant {
				continue
			}
			if delta := at - a.minTime; delta < second {
				second = delta
			}
		}
		if second < 10*time.Millisecond {
			uncertain++
		}
	}
	if res.Blocks > 0 {
		for v, c := range res.Counts {
			res.Shares[v] = float64(c) / float64(res.Blocks)
		}
		res.UncertainShare = float64(uncertain) / float64(res.Blocks)
	}
	return res
}

// PoolGeographyRow is one bar group of Figure 3: which vantage sees a
// given pool's blocks first, and how often.
type PoolGeographyRow struct {
	Pool       string
	PowerShare float64 // fraction of observed blocks mined by this pool
	Blocks     int
	Shares     map[string]float64 // vantage -> first-observation share
}

// PoolGeographyResult reproduces Figure 3: first observations broken
// down by the block's origin mining pool, showing that pool gateways
// are not evenly geographically distributed (§III-B2).
type PoolGeographyResult struct {
	Vantages []string
	Rows     []PoolGeographyRow // top pools by block count, descending
	Blocks   int
}

// PoolGeography computes Figure 3 over the topN most productive pools;
// remaining pools are aggregated into a final "Remaining miners" row.
func PoolGeography(d *Dataset, topN int) *PoolGeographyResult {
	// Identify each observed block's miner from the registry.
	type poolAgg struct {
		blocks int
		firsts map[string]int
	}
	byPool := make(map[types.PoolID]*poolAgg)
	total := 0
	for _, a := range d.arrivalsByBlock() {
		if len(a.first) < 2 {
			continue
		}
		b, ok := d.Chain.Get(a.hash)
		if !ok || b.Miner == 0 {
			continue
		}
		agg, ok := byPool[b.Miner]
		if !ok {
			agg = &poolAgg{firsts: make(map[string]int, 4)}
			byPool[b.Miner] = agg
		}
		agg.blocks++
		agg.firsts[a.minVant]++
		total++
	}

	ids := make([]types.PoolID, 0, len(byPool))
	for id := range byPool {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if byPool[ids[i]].blocks != byPool[ids[j]].blocks {
			return byPool[ids[i]].blocks > byPool[ids[j]].blocks
		}
		return ids[i] < ids[j]
	})

	res := &PoolGeographyResult{
		Vantages: append([]string(nil), d.Vantages...),
		Blocks:   total,
	}
	makeRow := func(name string, agg *poolAgg) PoolGeographyRow {
		row := PoolGeographyRow{
			Pool:   name,
			Blocks: agg.blocks,
			Shares: make(map[string]float64, len(agg.firsts)),
		}
		if total > 0 {
			row.PowerShare = float64(agg.blocks) / float64(total)
		}
		for v, c := range agg.firsts {
			row.Shares[v] = float64(c) / float64(agg.blocks)
		}
		return row
	}
	rest := &poolAgg{firsts: make(map[string]int, 4)}
	for i, id := range ids {
		if topN <= 0 || i < topN {
			res.Rows = append(res.Rows, makeRow(d.PoolName(id), byPool[id]))
			continue
		}
		rest.blocks += byPool[id].blocks
		for v, c := range byPool[id].firsts {
			rest.firsts[v] += c
		}
	}
	if rest.blocks > 0 {
		res.Rows = append(res.Rows, makeRow("Remaining miners", rest))
	}
	return res
}
