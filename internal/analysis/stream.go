package analysis

import (
	"sort"
	"time"

	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

// MaxVantages bounds the primary vantage count: per-block arrival
// state keeps one bit and one slot per vantage (the paper uses four).
// core.Config.Validate and cmd/ethanalyze enforce it before a
// Collector is built.
const MaxVantages = 64

// blockArrivals is one block's earliest observation per primary
// vantage. Slots are indexed by vantage position in presentation
// order, so every consumer iterates vantages deterministically —
// unlike the map the batch pipeline used to rebuild per analyzer.
type blockArrivals struct {
	hash     types.Hash
	at       []time.Duration // earliest local time, indexed by vantage
	seen     uint64          // bitmask over vantage indices
	vantages int             // distinct vantages that observed the block
	minTime  time.Duration   // global first observation
	minVant  int             // vantage index of the first observer
}

// txArrival is the transaction analogue of blockArrivals, plus the
// sender/nonce metadata the ordering analyses need. Entries are also
// kept in first-primary-observation (stream) order, which is what the
// batch pipeline's iteration over Dataset.Txs produced.
type txArrival struct {
	hash     types.Hash
	sender   types.AccountID
	nonce    uint64
	at       []time.Duration
	seen     uint64
	vantages int
	minTime  time.Duration
	minVant  int
}

// redCount tallies gossip copies of one block at the redundancy
// vantage, split by message type (Table II).
type redCount struct {
	ann, full int
}

// Collector is the streaming analysis pipeline: a measure.Recorder
// that folds every record into O(1)-amortized incremental state — the
// shared per-block/per-transaction arrival index plus the redundancy
// counters — as records arrive. At campaign end the per-figure
// finalizers (Propagation, FirstObservation, PoolGeography, Commit,
// ...) assemble their results from that shared state; no finalizer
// re-scans the raw record stream, so the campaign never needs to
// retain it.
//
// Memory is bounded by the number of distinct blocks and transactions
// observed (one fixed-size entry each), not by the number of records:
// a block gossiped to five vantages with ninefold redundancy costs one
// index entry instead of ~45 retained records.
//
// The wrapped Dataset provides the vantage roster up front and the
// campaign context (chain registry, pool names, timing) at finalize
// time; its record slices may stay nil. Feed records either live (as
// a bus consumer) or via Replay — both produce bit-identical results
// because all state transitions depend only on per-kind record order,
// which the bus preserves.
type Collector struct {
	ds         *Dataset
	vidx       map[string]int // primary vantage name -> slot
	redVantage string

	byBlock      map[types.Hash]*blockArrivals
	blockList    []*blockArrivals // sorted by (minTime, hash) on demand
	blocksSorted bool

	byTx   map[types.Hash]*txArrival
	txList []*txArrival // first-observation stream order

	red     map[types.Hash]*redCount
	redList []*redCount // creation order, for deterministic finalize
	redSeen bool        // any record at the redundancy vantage

	blockRecords, txRecords int
	mainIdx                 *mainChainIndex

	// Warm-run freelists: arrival entries harvested by Reset, reused by
	// RecordBlock/RecordTx so a recycled collector's per-hash index
	// rebuilds without allocating.
	freeBlocks []*blockArrivals
	freeTxs    []*txArrival
	freeRed    []*redCount
}

var _ measure.Recorder = (*Collector)(nil)

// NewCollector builds an empty collector over ds. The dataset's
// Vantages (primary, presentation order) must be set; Chain, PoolNames
// and the timing fields may be filled in any time before finalizers
// run. redundancyVantage names the default-peers node whose records
// feed the Table II analysis ("" disables it).
func NewCollector(ds *Dataset, redundancyVantage string) *Collector {
	if len(ds.Vantages) > MaxVantages {
		panic("analysis: more than 64 primary vantages")
	}
	c := &Collector{
		ds:         ds,
		vidx:       make(map[string]int, len(ds.Vantages)),
		redVantage: redundancyVantage,
		byBlock:    make(map[types.Hash]*blockArrivals, 1024),
		byTx:       make(map[types.Hash]*txArrival, 1024),
	}
	for i, v := range ds.Vantages {
		c.vidx[v] = i
	}
	if redundancyVantage != "" {
		c.red = make(map[types.Hash]*redCount, 1024)
	}
	return c
}

// Reset returns the collector to the state NewCollector(ds,
// redundancyVantage) would produce, harvesting the arrival entries of
// the finished run into freelists for reuse. A reused entry has every
// field reassigned and its arrival slots zeroed, so warm analysis
// results are bit-identical to cold ones. The caller owns the
// determinism of this: Reset must only run once the previous run's
// Results are no longer in use (the warm-run pool's recycle contract).
func (c *Collector) Reset(ds *Dataset, redundancyVantage string) {
	if len(ds.Vantages) > MaxVantages {
		panic("analysis: more than 64 primary vantages")
	}
	c.ds = ds
	c.redVantage = redundancyVantage
	clear(c.vidx)
	for i, v := range ds.Vantages {
		c.vidx[v] = i
	}
	clear(c.byBlock)
	c.freeBlocks = append(c.freeBlocks, c.blockList...)
	c.blockList = c.blockList[:0]
	c.blocksSorted = false
	clear(c.byTx)
	c.freeTxs = append(c.freeTxs, c.txList...)
	c.txList = c.txList[:0]
	if redundancyVantage != "" {
		if c.red == nil {
			c.red = make(map[types.Hash]*redCount, 1024)
		} else {
			clear(c.red)
		}
	} else {
		c.red = nil
	}
	c.freeRed = append(c.freeRed, c.redList...)
	c.redList = c.redList[:0]
	c.redSeen = false
	c.blockRecords, c.txRecords = 0, 0
	c.mainIdx = nil
}

// newBlockEntry returns a blockArrivals in the exact state the cold
// literal in RecordBlock would construct, drawing on the freelist.
func (c *Collector) newBlockEntry(h types.Hash, at time.Duration, vi int) *blockArrivals {
	nv := len(c.ds.Vantages)
	if k := len(c.freeBlocks); k > 0 {
		a := c.freeBlocks[k-1]
		c.freeBlocks = c.freeBlocks[:k-1]
		if cap(a.at) >= nv {
			a.at = a.at[:nv]
			clear(a.at)
		} else {
			a.at = make([]time.Duration, nv)
		}
		a.hash, a.seen, a.vantages, a.minTime, a.minVant = h, 0, 0, at, vi
		return a
	}
	return &blockArrivals{
		hash:    h,
		at:      make([]time.Duration, nv),
		minTime: at,
		minVant: vi,
	}
}

// newTxEntry is the transaction analogue of newBlockEntry.
func (c *Collector) newTxEntry(r *measure.TxRecord, vi int) *txArrival {
	nv := len(c.ds.Vantages)
	if k := len(c.freeTxs); k > 0 {
		a := c.freeTxs[k-1]
		c.freeTxs = c.freeTxs[:k-1]
		if cap(a.at) >= nv {
			a.at = a.at[:nv]
			clear(a.at)
		} else {
			a.at = make([]time.Duration, nv)
		}
		a.hash, a.sender, a.nonce = r.Hash, r.Sender, r.Nonce
		a.seen, a.vantages, a.minTime, a.minVant = 0, 0, r.At, vi
		return a
	}
	return &txArrival{
		hash:    r.Hash,
		sender:  r.Sender,
		nonce:   r.Nonce,
		at:      make([]time.Duration, nv),
		minTime: r.At,
		minVant: vi,
	}
}

// newRedCount returns a zeroed redundancy counter from the freelist.
func (c *Collector) newRedCount() *redCount {
	if k := len(c.freeRed); k > 0 {
		cnt := c.freeRed[k-1]
		c.freeRed = c.freeRed[:k-1]
		cnt.ann, cnt.full = 0, 0
		return cnt
	}
	return &redCount{}
}

// Collect replays a fully materialized dataset through a new
// collector: the batch entry points (BlockPropagation, CommitTimes,
// ...) are thin wrappers over this. Live pipelines attach the
// collector to the record bus instead and skip materialization.
func Collect(d *Dataset, redundancyVantage string) *Collector {
	c := NewCollector(d, redundancyVantage)
	c.Replay(d.Blocks, d.Txs)
	return c
}

// Replay feeds retained record slices through the collector in order.
func (c *Collector) Replay(blocks []measure.BlockRecord, txs []measure.TxRecord) {
	for i := range blocks {
		c.RecordBlock(blocks[i])
	}
	for i := range txs {
		c.RecordTx(txs[i])
	}
}

// RecordBlock implements measure.Recorder: O(1) amortized per record.
func (c *Collector) RecordBlock(r measure.BlockRecord) {
	c.blockRecords++
	if c.redVantage != "" && r.Vantage == c.redVantage {
		c.redSeen = true
		cnt, ok := c.red[r.Hash]
		if !ok {
			cnt = c.newRedCount()
			c.red[r.Hash] = cnt
			c.redList = append(c.redList, cnt)
		}
		switch r.Kind {
		case "announce":
			cnt.ann++
		case "block":
			cnt.full++
			// "fetched" bodies are replies to explicit requests, not
			// redundant gossip, and are excluded as in the paper.
		}
	}
	vi, ok := c.vidx[r.Vantage]
	if !ok {
		return // auxiliary vantage: excluded from arrival analyses
	}
	a, ok := c.byBlock[r.Hash]
	if !ok {
		a = c.newBlockEntry(r.Hash, r.At, vi)
		c.byBlock[r.Hash] = a
		c.blockList = append(c.blockList, a)
		c.blocksSorted = false
	}
	bit := uint64(1) << uint(vi)
	if a.seen&bit == 0 {
		a.seen |= bit
		a.vantages++
		a.at[vi] = r.At
	} else if r.At < a.at[vi] {
		a.at[vi] = r.At
	}
	if r.At < a.minTime {
		a.minTime = r.At
		a.minVant = vi
	}
}

// RecordTx implements measure.Recorder: O(1) amortized per record.
func (c *Collector) RecordTx(r measure.TxRecord) {
	c.txRecords++
	vi, ok := c.vidx[r.Vantage]
	if !ok {
		return
	}
	a, ok := c.byTx[r.Hash]
	if !ok {
		a = c.newTxEntry(&r, vi)
		c.byTx[r.Hash] = a
		c.txList = append(c.txList, a)
	}
	bit := uint64(1) << uint(vi)
	if a.seen&bit == 0 {
		a.seen |= bit
		a.vantages++
		a.at[vi] = r.At
	} else if r.At < a.at[vi] {
		a.at[vi] = r.At
	}
	if r.At < a.minTime {
		a.minTime = r.At
		a.minVant = vi
	}
}

// BlockRecords returns how many block records the collector consumed
// (all vantages, including auxiliary ones).
func (c *Collector) BlockRecords() int { return c.blockRecords }

// TxRecords returns how many transaction records the collector consumed.
func (c *Collector) TxRecords() int { return c.txRecords }

// sortedArrivals returns per-block arrivals in ascending order of
// global first observation (ties broken by hash), the iteration order
// every block-level finalizer shares.
func (c *Collector) sortedArrivals() []*blockArrivals {
	if !c.blocksSorted {
		sort.Slice(c.blockList, func(i, j int) bool {
			if c.blockList[i].minTime != c.blockList[j].minTime {
				return c.blockList[i].minTime < c.blockList[j].minTime
			}
			return c.blockList[i].hash < c.blockList[j].hash
		})
		c.blocksSorted = true
	}
	return c.blockList
}

// blockFirstSeen returns a block's earliest observation across the
// primary vantages.
func (c *Collector) blockFirstSeen(h types.Hash) (time.Duration, bool) {
	a, ok := c.byBlock[h]
	if !ok {
		return 0, false
	}
	return a.minTime, true
}

// mainIndex lazily builds (once) the shared main-chain/tx inclusion
// index the commit-path finalizers use.
func (c *Collector) mainIndex() *mainChainIndex {
	if c.mainIdx == nil {
		c.mainIdx = c.ds.buildMainIndex()
	}
	return c.mainIdx
}

// vantageName resolves a vantage slot back to its display name.
func (c *Collector) vantageName(vi int) string { return c.ds.Vantages[vi] }
