// Package analysis implements the paper's measurement-processing
// pipeline: one analyzer per table and figure of the evaluation
// (§III). Record-driven analyses stream through the Collector's
// shared arrival index; chain-driven analyses read the global block
// registry.
package analysis

import (
	"fmt"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

// Dataset bundles everything one campaign produced.
type Dataset struct {
	// Vantages lists the primary vantage names in presentation order
	// (the paper uses WE, CE, NA, EA in Figure 2). Records from other
	// (auxiliary) vantages — e.g. the default-peers redundancy node —
	// are excluded from first-observation and delay analyses, matching
	// the paper's separate subsidiary measurement.
	Vantages []string

	// Blocks holds every block-related message reception at every
	// vantage (full blocks, announcements, fetched bodies). Nil when
	// the campaign ran in bounded-memory mode: the records streamed
	// through the Collector instead of being retained.
	Blocks []measure.BlockRecord

	// Txs holds the first observation of each transaction per vantage.
	// Nil in bounded-memory mode, like Blocks.
	Txs []measure.TxRecord

	// Chain is the global registry of all blocks created during the
	// run, including every fork.
	Chain *chain.Registry

	// PoolNames maps PoolID-1 to the pool's name.
	PoolNames []string

	// InterBlock is the configured mean inter-block time.
	InterBlock time.Duration

	// Duration is the measured (virtual) campaign length.
	Duration time.Duration
}

// PoolName resolves a PoolID to its display name.
func (d *Dataset) PoolName(id types.PoolID) string {
	i := int(id) - 1
	if i < 0 || i >= len(d.PoolNames) {
		return fmt.Sprintf("pool-%d", id)
	}
	return d.PoolNames[i]
}

// mainChainIndex maps every committed transaction to its including
// main-chain block and exposes the main chain itself.
type mainChainIndex struct {
	main      []*types.Block
	byHeight  map[uint64]*types.Block
	txToBlock map[types.Hash]*types.Block
}

func (d *Dataset) buildMainIndex() *mainChainIndex {
	main := d.Chain.MainChain()
	idx := &mainChainIndex{
		main:      main,
		byHeight:  make(map[uint64]*types.Block, len(main)),
		txToBlock: make(map[types.Hash]*types.Block, len(main)*8),
	}
	for _, b := range main {
		idx.byHeight[b.Number] = b
		for _, tx := range b.TxHashes {
			idx.txToBlock[tx] = b
		}
	}
	return idx
}

// DurationsToSeconds converts a slice of durations to float seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// DurationsToMillis converts a slice of durations to float milliseconds.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}
