// Package analysis implements the paper's measurement-processing
// pipeline: one analyzer per table and figure of the evaluation
// (§III), operating on the records collected by the measurement
// vantages plus the global block registry.
package analysis

import (
	"fmt"
	"sort"
	"time"

	"ethmeasure/internal/chain"
	"ethmeasure/internal/measure"
	"ethmeasure/internal/types"
)

// Dataset bundles everything one campaign produced.
type Dataset struct {
	// Vantages lists the primary vantage names in presentation order
	// (the paper uses WE, CE, NA, EA in Figure 2). Records from other
	// (auxiliary) vantages — e.g. the default-peers redundancy node —
	// are excluded from first-observation and delay analyses, matching
	// the paper's separate subsidiary measurement.
	Vantages []string

	// Blocks holds every block-related message reception at every
	// vantage (full blocks, announcements, fetched bodies).
	Blocks []measure.BlockRecord

	// Txs holds the first observation of each transaction per vantage.
	Txs []measure.TxRecord

	// Chain is the global registry of all blocks created during the
	// run, including every fork.
	Chain *chain.Registry

	// PoolNames maps PoolID-1 to the pool's name.
	PoolNames []string

	// InterBlock is the configured mean inter-block time.
	InterBlock time.Duration

	// Duration is the measured (virtual) campaign length.
	Duration time.Duration
}

// PoolName resolves a PoolID to its display name.
func (d *Dataset) PoolName(id types.PoolID) string {
	i := int(id) - 1
	if i < 0 || i >= len(d.PoolNames) {
		return fmt.Sprintf("pool-%d", id)
	}
	return d.PoolNames[i]
}

// blockArrivals groups block records by hash, keeping the earliest
// observation per vantage (any message kind: a hash announcement
// counts as observing the block, as in the paper's methodology).
type blockArrivals struct {
	hash    types.Hash
	first   map[string]time.Duration // vantage -> earliest local time
	minTime time.Duration
	minVant string
}

// primarySet returns the set of primary vantage names.
func (d *Dataset) primarySet() map[string]bool {
	set := make(map[string]bool, len(d.Vantages))
	for _, v := range d.Vantages {
		set[v] = true
	}
	return set
}

// arrivalsByBlock computes per-block earliest arrivals per primary
// vantage. Blocks are returned in ascending order of their global
// first observation.
func (d *Dataset) arrivalsByBlock() []*blockArrivals {
	primary := d.primarySet()
	byHash := make(map[types.Hash]*blockArrivals, 1024)
	for i := range d.Blocks {
		r := &d.Blocks[i]
		if !primary[r.Vantage] {
			continue
		}
		a, ok := byHash[r.Hash]
		if !ok {
			a = &blockArrivals{
				hash:    r.Hash,
				first:   make(map[string]time.Duration, 4),
				minTime: r.At,
				minVant: r.Vantage,
			}
			byHash[r.Hash] = a
		}
		prev, seen := a.first[r.Vantage]
		if !seen || r.At < prev {
			a.first[r.Vantage] = r.At
		}
		if r.At < a.minTime {
			a.minTime = r.At
			a.minVant = r.Vantage
		}
	}
	out := make([]*blockArrivals, 0, len(byHash))
	for _, a := range byHash {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].minTime != out[j].minTime {
			return out[i].minTime < out[j].minTime
		}
		return out[i].hash < out[j].hash
	})
	return out
}

// txFirstSeen computes, per transaction, the earliest observation
// across the primary vantages (the paper's "first observed by our
// measurement nodes").
func (d *Dataset) txFirstSeen() map[types.Hash]time.Duration {
	primary := d.primarySet()
	first := make(map[types.Hash]time.Duration, len(d.Txs)/2)
	for i := range d.Txs {
		r := &d.Txs[i]
		if !primary[r.Vantage] {
			continue
		}
		prev, ok := first[r.Hash]
		if !ok || r.At < prev {
			first[r.Hash] = r.At
		}
	}
	return first
}

// blockFirstSeen computes, per block, the earliest observation across
// the primary vantages.
func (d *Dataset) blockFirstSeen() map[types.Hash]time.Duration {
	primary := d.primarySet()
	first := make(map[types.Hash]time.Duration, 1024)
	for i := range d.Blocks {
		r := &d.Blocks[i]
		if !primary[r.Vantage] {
			continue
		}
		prev, ok := first[r.Hash]
		if !ok || r.At < prev {
			first[r.Hash] = r.At
		}
	}
	return first
}

// mainChainIndex maps every committed transaction to its including
// main-chain block and exposes the main chain itself.
type mainChainIndex struct {
	main      []*types.Block
	byHeight  map[uint64]*types.Block
	txToBlock map[types.Hash]*types.Block
}

func (d *Dataset) buildMainIndex() *mainChainIndex {
	main := d.Chain.MainChain()
	idx := &mainChainIndex{
		main:      main,
		byHeight:  make(map[uint64]*types.Block, len(main)),
		txToBlock: make(map[types.Hash]*types.Block, len(main)*8),
	}
	for _, b := range main {
		idx.byHeight[b.Number] = b
		for _, tx := range b.TxHashes {
			idx.txToBlock[tx] = b
		}
	}
	return idx
}

// DurationsToSeconds converts a slice of durations to float seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// DurationsToMillis converts a slice of durations to float milliseconds.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}
