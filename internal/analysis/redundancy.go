package analysis

import (
	"fmt"
	"math"

	"ethmeasure/internal/stats"
	"ethmeasure/internal/types"
)

// RedundancyRow is one row of Table II.
type RedundancyRow struct {
	MessageType string
	Avg         float64
	Median      float64
	Top10       float64 // 90th percentile
	Top1        float64 // 99th percentile
}

// RedundancyResult reproduces Table II: how many redundant copies of
// each block a node with default peer settings receives, split by
// message type. The paper ran this on a subsidiary node with the
// default 25 peers (§III-A2).
type RedundancyResult struct {
	Vantage       string
	Blocks        int
	Announcements RedundancyRow
	WholeBlocks   RedundancyRow
	Combined      RedundancyRow

	// OptimalLn is ln(networkSize), the gossip-theoretic target fanout
	// the paper compares the combined mean against (Eugster et al.).
	OptimalLn float64
}

// Redundancy computes Table II from the records of the named vantage.
// networkSize feeds the ln(n) optimality comparison.
func Redundancy(d *Dataset, vantage string, networkSize int) (*RedundancyResult, error) {
	type counts struct{ ann, full int }
	perBlock := make(map[types.Hash]*counts, 1024)
	found := false
	for i := range d.Blocks {
		r := &d.Blocks[i]
		if r.Vantage != vantage {
			continue
		}
		found = true
		c, ok := perBlock[r.Hash]
		if !ok {
			c = &counts{}
			perBlock[r.Hash] = c
		}
		switch r.Kind {
		case "announce":
			c.ann++
		case "block":
			c.full++
			// "fetched" bodies are replies to explicit requests, not
			// redundant gossip, and are excluded as in the paper.
		}
	}
	if !found {
		return nil, fmt.Errorf("analysis: no records for vantage %q", vantage)
	}

	ann := stats.NewSample(len(perBlock))
	full := stats.NewSample(len(perBlock))
	both := stats.NewSample(len(perBlock))
	for _, c := range perBlock {
		ann.Add(float64(c.ann))
		full.Add(float64(c.full))
		both.Add(float64(c.ann + c.full))
	}
	row := func(name string, s *stats.Sample) RedundancyRow {
		mean, _ := s.Mean()
		return RedundancyRow{
			MessageType: name,
			Avg:         mean,
			Median:      s.MustQuantile(0.5),
			Top10:       s.MustQuantile(0.90),
			Top1:        s.MustQuantile(0.99),
		}
	}
	res := &RedundancyResult{
		Vantage:       vantage,
		Blocks:        len(perBlock),
		Announcements: row("Announcements", ann),
		WholeBlocks:   row("Whole Blocks", full),
		Combined:      row("Both combined", both),
	}
	if networkSize > 1 {
		res.OptimalLn = math.Log(float64(networkSize))
	}
	return res, nil
}
