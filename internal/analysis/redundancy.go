package analysis

import (
	"fmt"
	"math"

	"ethmeasure/internal/stats"
)

// RedundancyRow is one row of Table II.
type RedundancyRow struct {
	MessageType string
	Avg         float64
	Median      float64
	Top10       float64 // 90th percentile
	Top1        float64 // 99th percentile
}

// RedundancyResult reproduces Table II: how many redundant copies of
// each block a node with default peer settings receives, split by
// message type. The paper ran this on a subsidiary node with the
// default 25 peers (§III-A2).
type RedundancyResult struct {
	Vantage       string
	Blocks        int
	Announcements RedundancyRow
	WholeBlocks   RedundancyRow
	Combined      RedundancyRow

	// OptimalLn is ln(networkSize), the gossip-theoretic target fanout
	// the paper compares the combined mean against (Eugster et al.).
	OptimalLn float64
}

// Redundancy finalizes Table II from the streaming per-block gossip
// counters of the collector's configured redundancy vantage.
// networkSize feeds the ln(n) optimality comparison.
func (c *Collector) Redundancy(networkSize int) (*RedundancyResult, error) {
	if !c.redSeen {
		return nil, fmt.Errorf("analysis: no records for vantage %q", c.redVantage)
	}
	ann := stats.NewSample(len(c.redList))
	full := stats.NewSample(len(c.redList))
	both := stats.NewSample(len(c.redList))
	for _, cnt := range c.redList {
		ann.Add(float64(cnt.ann))
		full.Add(float64(cnt.full))
		both.Add(float64(cnt.ann + cnt.full))
	}
	row := func(name string, s *stats.Sample) RedundancyRow {
		mean, _ := s.Mean()
		return RedundancyRow{
			MessageType: name,
			Avg:         mean,
			Median:      s.MustQuantile(0.5),
			Top10:       s.MustQuantile(0.90),
			Top1:        s.MustQuantile(0.99),
		}
	}
	res := &RedundancyResult{
		Vantage:       c.redVantage,
		Blocks:        len(c.redList),
		Announcements: row("Announcements", ann),
		WholeBlocks:   row("Whole Blocks", full),
		Combined:      row("Both combined", both),
	}
	if networkSize > 1 {
		res.OptimalLn = math.Log(float64(networkSize))
	}
	return res, nil
}

// Redundancy computes Table II from the records of the named vantage
// in a materialized dataset.
func Redundancy(d *Dataset, vantage string, networkSize int) (*RedundancyResult, error) {
	return Collect(d, vantage).Redundancy(networkSize)
}
