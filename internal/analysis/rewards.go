package analysis

import (
	"sort"

	"ethmeasure/internal/consensus"
	"ethmeasure/internal/types"
)

// Ethereum reward constants for the Constantinople era the paper
// measured (EIP-1234), in ETH.
//
// Deprecated: these are the ethereum protocol's parameters, kept for
// callers that predate pluggable consensus. Protocol-generic code
// reads the schedule from consensus.Protocol instead.
const (
	// BlockRewardETH is the static reward per main-chain block.
	BlockRewardETH = consensus.EthereumBlockReward
	// NephewRewardETH is paid per uncle referenced (1/32 of the block
	// reward).
	NephewRewardETH = consensus.EthereumNephewReward
)

// UncleRewardETH computes the reward of an uncle at depth d =
// includingHeight − uncleHeight: (8 − d) / 8 × block reward.
//
// Deprecated: this is the ethereum protocol's schedule; use
// Protocol.ReferenceReward for protocol-generic code.
func UncleRewardETH(d uint64) float64 {
	return consensus.Ethereum().ReferenceReward(d)
}

// PoolRewardRow aggregates one pool's earnings.
type PoolRewardRow struct {
	Pool string

	MainBlocks   int
	UncleBlocks  int // this pool's blocks rewarded as uncles
	UnclesCited  int // uncles this pool referenced in its main blocks
	OrphanBlocks int // side blocks never rewarded

	BlockRewardETH  float64 // static rewards from main blocks
	UncleRewardETH  float64 // rewards for own blocks cited as uncles
	NephewRewardETH float64 // rewards for citing others' uncles
	TotalETH        float64

	// SiblingUncleETH is the share of UncleRewardETH earned by uncles
	// at heights where the pool ALSO mined the main block — the
	// one-miner-fork profit the paper calls out in §III-C5.
	SiblingUncleETH float64
}

// RewardsResult quantifies the reward flow of a run under the chain's
// consensus protocol, including how much the reference (uncle)
// mechanism pays pools for one-miner forks — the paper §V argument
// that the uncle system, meant to help small miners, instead lets
// large pools "unethically profit from multiple rewards". The *ETH
// fields are denominated in the protocol's native coin units.
type RewardsResult struct {
	// Protocol names the consensus protocol the schedule came from.
	Protocol string
	// References reports whether the protocol pays referenced side
	// blocks at all (false for Bitcoin-style rules, where every fork
	// loser is pure waste).
	References bool

	Rows []PoolRewardRow // descending by total reward

	TotalETH        float64
	UncleETH        float64 // all uncle rewards
	SiblingUncleETH float64 // uncle rewards from one-miner forks
	SiblingShare    float64 // sibling / all uncle rewards

	// WastedBlocks are side blocks that earned nothing: pure loss of
	// mining power (paper §V: ~1% of the platform's resources).
	WastedBlocks int
	WastedShare  float64 // of all non-genesis blocks
}

// Rewards computes per-pool reward accounting from the registry,
// applying the registry protocol's reward schedule.
func Rewards(d *Dataset) *RewardsResult {
	reg := d.Chain
	proto := reg.Protocol()
	mainSet := reg.MainChainSet()
	genesis := reg.Genesis().Hash

	rows := make(map[types.PoolID]*PoolRewardRow)
	row := func(id types.PoolID) *PoolRewardRow {
		r, ok := rows[id]
		if !ok {
			r = &PoolRewardRow{Pool: d.PoolName(id)}
			rows[id] = r
		}
		return r
	}

	res := &RewardsResult{
		Protocol:   proto.Name(),
		References: proto.MaxReferencesPerBlock() > 0,
	}
	rewarded := make(map[types.Hash]bool)

	// Pass 1: main-chain blocks pay block + nephew rewards and assign
	// uncle rewards to the referenced blocks' miners.
	mainByHeight := make(map[uint64]types.PoolID)
	for _, b := range reg.MainChain() {
		if b.Hash == genesis {
			continue
		}
		mainByHeight[b.Number] = b.Miner
	}
	for _, b := range reg.MainChain() {
		if b.Hash == genesis || b.Miner == 0 {
			continue
		}
		r := row(b.Miner)
		r.MainBlocks++
		r.BlockRewardETH += proto.BlockReward()
		for _, uncleHash := range b.Uncles {
			uncle, ok := reg.Get(uncleHash)
			if !ok {
				continue
			}
			rewarded[uncleHash] = true
			r.UnclesCited++
			r.NephewRewardETH += proto.NephewReward()
			ur := row(uncle.Miner)
			ur.UncleBlocks++
			reward := proto.ReferenceReward(b.Number - uncle.Number)
			ur.UncleRewardETH += reward
			res.UncleETH += reward
			// One-miner fork profit: the uncle's miner also mined the
			// main block at the uncle's own height.
			if mainByHeight[uncle.Number] == uncle.Miner {
				ur.SiblingUncleETH += reward
				res.SiblingUncleETH += reward
			}
		}
	}

	// Pass 2: side blocks that never became uncles are pure waste.
	total := 0
	reg.Blocks(func(b *types.Block) bool {
		if b.Hash == genesis || b.Miner == 0 {
			return true
		}
		total++
		if mainSet[b.Hash] || rewarded[b.Hash] {
			return true
		}
		row(b.Miner).OrphanBlocks++
		res.WastedBlocks++
		return true
	})
	if total > 0 {
		res.WastedShare = float64(res.WastedBlocks) / float64(total)
	}

	for _, r := range rows {
		r.TotalETH = r.BlockRewardETH + r.UncleRewardETH + r.NephewRewardETH
		res.TotalETH += r.TotalETH
		res.Rows = append(res.Rows, *r)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].TotalETH != res.Rows[j].TotalETH {
			return res.Rows[i].TotalETH > res.Rows[j].TotalETH
		}
		return res.Rows[i].Pool < res.Rows[j].Pool
	})
	if res.UncleETH > 0 {
		res.SiblingShare = res.SiblingUncleETH / res.UncleETH
	}
	return res
}
