package analysis

import (
	"sort"

	"ethmeasure/internal/types"
)

// ForkLengthRow is one row of Table III.
type ForkLengthRow struct {
	Length       int
	Total        int
	Recognized   int // referenced as uncle by some main-chain block
	Unrecognized int
}

// ForksResult reproduces Table III and the §III-C4 block-status
// breakdown: every side branch classified by length and by whether it
// became a recognized uncle. The paper: 92.81% of captured blocks on
// the main chain, 6.97% recognized uncles, 0.22% unrecognized; forks
// of length 1 dominate (97%), longest fork 3; no fork longer than 1
// was ever recognized.
type ForksResult struct {
	Rows []ForkLengthRow // ascending by length

	// References reports whether the chain's consensus protocol pays
	// referenced (uncle) side blocks at all. When false — Bitcoin-style
	// rules — the recognized/unrecognized split is structurally empty:
	// every side block is unrecognized, and the uncle-share metric is
	// withheld from KeyMetrics so cross-protocol sweeps aggregate only
	// what each protocol actually produces.
	References bool

	TotalBlocks       int // all captured blocks (excluding genesis)
	MainBlocks        int
	RecognizedUncles  int
	UnrecognizedSide  int
	MainShare         float64
	RecognizedShare   float64
	UnrecognizedShare float64

	TotalForks int
}

// Forks computes Table III from the registry.
func Forks(d *Dataset) *ForksResult {
	reg := d.Chain
	mainSet := reg.MainChainSet()
	uncleRefs := reg.UncleRefs()
	genesis := reg.Genesis().Hash

	res := &ForksResult{References: reg.Protocol().MaxReferencesPerBlock() > 0}
	sideRoots := make([]types.Hash, 0, 64)
	reg.Blocks(func(b *types.Block) bool {
		if b.Hash == genesis {
			return true
		}
		res.TotalBlocks++
		if mainSet[b.Hash] {
			res.MainBlocks++
			return true
		}
		if _, ok := uncleRefs[b.Hash]; ok {
			res.RecognizedUncles++
		} else {
			res.UnrecognizedSide++
		}
		if mainSet[b.ParentHash] {
			sideRoots = append(sideRoots, b.Hash)
		}
		return true
	})
	if res.TotalBlocks > 0 {
		total := float64(res.TotalBlocks)
		res.MainShare = float64(res.MainBlocks) / total
		res.RecognizedShare = float64(res.RecognizedUncles) / total
		res.UnrecognizedShare = float64(res.UnrecognizedSide) / total
	}

	// Each side root anchors one fork: the subtree of side blocks below
	// it. Fork length is the depth of that subtree; the fork counts as
	// recognized only when every one of its blocks was referenced as an
	// uncle — the paper's reading, under which "not a single fork
	// longer than 1 became recognized" holds by protocol construction
	// (a side block's child can never be a valid uncle).
	byLength := make(map[int]*ForkLengthRow)
	for _, root := range sideRoots {
		length, recognized := sideSubtree(d, root, mainSet, uncleRefs)
		row, ok := byLength[length]
		if !ok {
			row = &ForkLengthRow{Length: length}
			byLength[length] = row
		}
		row.Total++
		if recognized {
			row.Recognized++
		} else {
			row.Unrecognized++
		}
		res.TotalForks++
	}
	lengths := make([]int, 0, len(byLength))
	for l := range byLength {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	for _, l := range lengths {
		res.Rows = append(res.Rows, *byLength[l])
	}
	return res
}

// sideSubtree measures the depth of the side branch rooted at root and
// whether the entire branch was recognized (every block referenced as
// an uncle by some main-chain block).
func sideSubtree(d *Dataset, root types.Hash, mainSet map[types.Hash]bool, uncleRefs map[types.Hash][]types.Hash) (length int, recognized bool) {
	type frame struct {
		hash  types.Hash
		depth int
	}
	recognized = true
	stack := []frame{{root, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.depth > length {
			length = f.depth
		}
		if _, ok := uncleRefs[f.hash]; !ok {
			recognized = false
		}
		for _, child := range d.Chain.Children(f.hash) {
			if mainSet[child] {
				continue
			}
			stack = append(stack, frame{child, f.depth + 1})
		}
	}
	return length, recognized
}

// OneMinerTupleRow summarises same-(height, miner) tuples of one size.
type OneMinerTupleRow struct {
	Size  int // 2 = pair, 3 = triple, ...
	Count int
}

// OneMinerForksResult reproduces §III-C5: cases where a single miner
// produced several blocks at the same height. The paper found 1,750
// pairs, 25 triples, one 4-tuple and one 7-tuple; the sibling blocks
// were rewarded as uncles in 98% of cases; 56% of cases used the same
// transaction set; and one-miner forks were >11% of all forks.
type OneMinerForksResult struct {
	Tuples []OneMinerTupleRow // ascending by size

	Events           int     // total one-miner fork events (tuples)
	SiblingBlocks    int     // extra blocks beyond one per event
	RecognizedShare  float64 // side members later referenced as uncles
	SameTxShare      float64 // events whose members share a tx set
	ShareOfAllForks  float64 // events / total forks
	TopPoolEvents    map[string]int
	RewardedUncleCnt int
}

// OneMinerForks computes the §III-C5 analysis.
func OneMinerForks(d *Dataset, forks *ForksResult) *OneMinerForksResult {
	reg := d.Chain
	mainSet := reg.MainChainSet()
	uncleRefs := reg.UncleRefs()
	genesis := reg.Genesis().Hash

	type key struct {
		number uint64
		miner  types.PoolID
	}
	groups := make(map[key][]*types.Block)
	reg.Blocks(func(b *types.Block) bool {
		if b.Hash == genesis || b.Miner == 0 {
			return true
		}
		k := key{b.Number, b.Miner}
		groups[k] = append(groups[k], b)
		return true
	})

	res := &OneMinerForksResult{TopPoolEvents: make(map[string]int)}
	bySize := make(map[int]int)
	sameTx := 0
	sideMembers, recognized := 0, 0
	for k, blocks := range groups {
		if len(blocks) < 2 {
			continue
		}
		res.Events++
		bySize[len(blocks)]++
		res.TopPoolEvents[d.PoolName(k.miner)]++
		if sameTxSets(blocks) {
			sameTx++
		}
		for _, b := range blocks {
			if mainSet[b.Hash] {
				continue
			}
			sideMembers++
			res.SiblingBlocks++
			if _, ok := uncleRefs[b.Hash]; ok {
				recognized++
				res.RewardedUncleCnt++
			}
		}
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		res.Tuples = append(res.Tuples, OneMinerTupleRow{Size: s, Count: bySize[s]})
	}
	if sideMembers > 0 {
		res.RecognizedShare = float64(recognized) / float64(sideMembers)
	}
	if res.Events > 0 {
		res.SameTxShare = float64(sameTx) / float64(res.Events)
	}
	if forks != nil && forks.TotalForks > 0 {
		res.ShareOfAllForks = float64(res.Events) / float64(forks.TotalForks)
	}
	return res
}

// sameTxSets reports whether all blocks in the group carry identical
// transaction sets (the paper's "distinct versions of the same block").
func sameTxSets(blocks []*types.Block) bool {
	ref := txSetKey(blocks[0].TxHashes)
	for _, b := range blocks[1:] {
		if txSetKey(b.TxHashes) != ref {
			return false
		}
	}
	return true
}

func txSetKey(hashes []types.Hash) uint64 {
	// Order-independent set fingerprint: XOR + sum of mixed hashes.
	var x, s uint64
	for _, h := range hashes {
		v := uint64(h) * 0x9e3779b97f4a7c15
		v ^= v >> 29
		x ^= v
		s += v
	}
	return x ^ (s * 0xbf58476d1ce4e5b9) ^ uint64(len(hashes))
}
