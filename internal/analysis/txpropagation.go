package analysis

import (
	"time"

	"ethmeasure/internal/stats"
	"ethmeasure/internal/types"
)

// TxPropagationResult covers §III-A1's transaction-propagation
// finding: unlike blocks, transaction first observations are *not*
// meaningfully skewed by geography, because transactions are small,
// propagate within the NTP measurement error, and originate from a
// geographically dispersed sender population.
type TxPropagationResult struct {
	Vantages []string

	// FirstShares is each vantage's share of transaction first
	// observations (near-uniform, unlike Figure 2's block shares).
	FirstShares map[string]float64

	// MedianDelayMs maps each vantage to the median delay between the
	// global first observation of a transaction and that vantage's
	// observation. Values inside the 10 ms NTP bound support the
	// paper's "not affected by geographic location" conclusion.
	MedianDelayMs map[string]float64

	// DelaysMs pools all (tx, later-vantage) delays.
	DelaysMs *stats.Sample

	Txs int

	// FirstShareSpread is the largest difference between vantage first-
	// observation shares, a scalar "geo skew" indicator.
	FirstShareSpread float64
}

// TxPropagation computes the §III-A1 transaction-geography analysis.
func TxPropagation(d *Dataset) *TxPropagationResult {
	type arrival struct {
		first   map[string]time.Duration
		minTime time.Duration
		minVant string
	}
	primary := d.primarySet()
	byHash := make(map[types.Hash]*arrival, len(d.Txs)/2)
	for i := range d.Txs {
		r := &d.Txs[i]
		if !primary[r.Vantage] {
			continue
		}
		a, ok := byHash[r.Hash]
		if !ok {
			a = &arrival{
				first:   make(map[string]time.Duration, 4),
				minTime: r.At,
				minVant: r.Vantage,
			}
			byHash[r.Hash] = a
		}
		prev, seen := a.first[r.Vantage]
		if !seen || r.At < prev {
			a.first[r.Vantage] = r.At
		}
		if r.At < a.minTime {
			a.minTime = r.At
			a.minVant = r.Vantage
		}
	}

	res := &TxPropagationResult{
		Vantages:      append([]string(nil), d.Vantages...),
		FirstShares:   make(map[string]float64, len(d.Vantages)),
		MedianDelayMs: make(map[string]float64, len(d.Vantages)),
		DelaysMs:      stats.NewSample(len(byHash) * 3),
	}
	perVantage := make(map[string]*stats.Sample, len(d.Vantages))
	firsts := make(map[string]int, len(d.Vantages))
	for _, a := range byHash {
		if len(a.first) < 2 {
			continue
		}
		res.Txs++
		firsts[a.minVant]++
		for vant, at := range a.first {
			if vant == a.minVant {
				continue
			}
			delta := at - a.minTime
			if delta < 0 {
				delta = 0
			}
			ms := float64(delta) / float64(time.Millisecond)
			res.DelaysMs.Add(ms)
			s, ok := perVantage[vant]
			if !ok {
				s = stats.NewSample(1024)
				perVantage[vant] = s
			}
			s.Add(ms)
		}
	}
	if res.Txs == 0 {
		return res
	}
	minShare, maxShare := 1.0, 0.0
	for _, v := range d.Vantages {
		share := float64(firsts[v]) / float64(res.Txs)
		res.FirstShares[v] = share
		if share < minShare {
			minShare = share
		}
		if share > maxShare {
			maxShare = share
		}
		if s, ok := perVantage[v]; ok {
			res.MedianDelayMs[v] = s.MustQuantile(0.5)
		}
	}
	res.FirstShareSpread = maxShare - minShare
	return res
}
