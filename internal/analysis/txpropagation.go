package analysis

import (
	"time"

	"ethmeasure/internal/stats"
)

// TxPropagationResult covers §III-A1's transaction-propagation
// finding: unlike blocks, transaction first observations are *not*
// meaningfully skewed by geography, because transactions are small,
// propagate within the NTP measurement error, and originate from a
// geographically dispersed sender population.
type TxPropagationResult struct {
	Vantages []string

	// FirstShares is each vantage's share of transaction first
	// observations (near-uniform, unlike Figure 2's block shares).
	FirstShares map[string]float64

	// MedianDelayMs maps each vantage to the median delay between the
	// global first observation of a transaction and that vantage's
	// observation. Values inside the 10 ms NTP bound support the
	// paper's "not affected by geographic location" conclusion.
	MedianDelayMs map[string]float64

	// DelaysMs pools all (tx, later-vantage) delays.
	DelaysMs *stats.Sample

	Txs int

	// FirstShareSpread is the largest difference between vantage first-
	// observation shares, a scalar "geo skew" indicator.
	FirstShareSpread float64
}

// TxPropagation finalizes the §III-A1 transaction-geography analysis
// from the shared transaction arrival index.
func (c *Collector) TxPropagation() *TxPropagationResult {
	res := &TxPropagationResult{
		Vantages:      append([]string(nil), c.ds.Vantages...),
		FirstShares:   make(map[string]float64, len(c.ds.Vantages)),
		MedianDelayMs: make(map[string]float64, len(c.ds.Vantages)),
		DelaysMs:      stats.NewSample(len(c.txList) * 3),
	}
	perVantage := make([]*stats.Sample, len(c.ds.Vantages))
	firsts := make([]int, len(c.ds.Vantages))
	for vi := range perVantage {
		perVantage[vi] = stats.NewSample(1024)
	}
	for _, a := range c.txList {
		if a.vantages < 2 {
			continue
		}
		res.Txs++
		firsts[a.minVant]++
		for vi := range a.at {
			if vi == a.minVant || a.seen&(1<<uint(vi)) == 0 {
				continue
			}
			delta := a.at[vi] - a.minTime
			if delta < 0 {
				delta = 0
			}
			ms := float64(delta) / float64(time.Millisecond)
			res.DelaysMs.Add(ms)
			perVantage[vi].Add(ms)
		}
	}
	if res.Txs == 0 {
		return res
	}
	minShare, maxShare := 1.0, 0.0
	for vi, v := range c.ds.Vantages {
		share := float64(firsts[vi]) / float64(res.Txs)
		res.FirstShares[v] = share
		if share < minShare {
			minShare = share
		}
		if share > maxShare {
			maxShare = share
		}
		if s := perVantage[vi]; s.N() > 0 {
			res.MedianDelayMs[v] = s.MustQuantile(0.5)
		}
	}
	res.FirstShareSpread = maxShare - minShare
	return res
}

// TxPropagation computes the §III-A1 analysis from a materialized
// dataset.
func TxPropagation(d *Dataset) *TxPropagationResult {
	return Collect(d, "").TxPropagation()
}
