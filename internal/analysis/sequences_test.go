package analysis

import (
	"math"
	"testing"
	"time"

	"ethmeasure/internal/types"
)

func TestSequencesFromWinnersRuns(t *testing.T) {
	// Pools: 1,1,1,2,1,1,2,2,2,2 → pool 1 runs {3,2}, pool 2 runs {1,4}.
	winners := []types.PoolID{1, 1, 1, 2, 1, 1, 2, 2, 2, 2}
	names := []string{"Alpha", "Beta"}
	res := SequencesFromWinners(winners, names, 13.3, 10)

	if res.MainBlocks != 10 {
		t.Fatalf("blocks = %d", res.MainBlocks)
	}
	if res.LongestRun != 4 || res.LongestPool != "Beta" {
		t.Errorf("longest = %d by %s", res.LongestRun, res.LongestPool)
	}
	if math.Abs(res.CensorWindowSec-4*13.3) > 1e-9 {
		t.Errorf("censor window = %f", res.CensorWindowSec)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Both pools mined 5 blocks; rows sorted by share then ID.
	alpha := res.Rows[0]
	if alpha.Pool != "Alpha" {
		alpha = res.Rows[1]
	}
	if alpha.Runs != 2 || alpha.MaxRun != 3 {
		t.Errorf("alpha = %+v", alpha)
	}
	if alpha.RunCounts[3] != 1 || alpha.RunCounts[2] != 1 {
		t.Errorf("alpha run counts = %v", alpha.RunCounts)
	}
	if got := alpha.CDF(2); got != 0.5 {
		t.Errorf("alpha CDF(2) = %f", got)
	}
	if got := alpha.CDF(3); got != 1 {
		t.Errorf("alpha CDF(3) = %f", got)
	}
	if alpha.PowerShare != 0.5 {
		t.Errorf("alpha share = %f", alpha.PowerShare)
	}
}

func TestSequencesTopNLimit(t *testing.T) {
	winners := []types.PoolID{1, 2, 3, 1, 2, 3}
	res := SequencesFromWinners(winners, []string{"A", "B", "C"}, 13.3, 2)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want top-2 only", len(res.Rows))
	}
}

func TestSequencesFromRegistry(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	for _, miner := range []types.PoolID{1, 1, 2, 2, 2} {
		parent = f.block(parent, miner, nil)
	}
	res := Sequences(f.d, 5)
	if res.MainBlocks != 5 {
		t.Fatalf("blocks = %d", res.MainBlocks)
	}
	if res.LongestRun != 3 || res.LongestPool != "Sparkpool" {
		t.Errorf("longest = %d by %s", res.LongestRun, res.LongestPool)
	}
}

func TestExpectedSequencesPaperMath(t *testing.T) {
	// §III-D: 0.259^8 × 201,086 ≈ 4 for Ethermine's 8-block runs.
	got := ExpectedSequences(0.259, 8, 201086)
	if got < 3.5 || got > 4.5 {
		t.Errorf("expected sequences = %f, paper computes ≈4", got)
	}
	// Sparkpool: 0.2269^9 × 201,086 ≈ 0.3 → "once in three months".
	got = ExpectedSequences(0.2269, 9, 201086)
	if got < 0.25 || got > 0.4 {
		t.Errorf("sparkpool expectation = %f, paper computes ≈0.3", got)
	}
	if ExpectedSequences(0, 5, 100) != 0 || ExpectedSequences(0.5, 0, 100) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestHistoricalSequenceCounts(t *testing.T) {
	// Runs: pool1×3, pool2×5, pool1×2.
	var winners []types.PoolID
	appendRun := func(p types.PoolID, n int) {
		for i := 0; i < n; i++ {
			winners = append(winners, p)
		}
	}
	appendRun(1, 3)
	appendRun(2, 5)
	appendRun(1, 2)
	counts := HistoricalSequenceCounts(winners, []int{2, 3, 5, 6})
	if counts[2] != 3 {
		t.Errorf("runs ≥2 = %d, want 3", counts[2])
	}
	if counts[3] != 2 {
		t.Errorf("runs ≥3 = %d, want 2", counts[3])
	}
	if counts[5] != 1 {
		t.Errorf("runs ≥5 = %d", counts[5])
	}
	if counts[6] != 0 {
		t.Errorf("runs ≥6 = %d", counts[6])
	}
}

func TestSequencesEmptyWinners(t *testing.T) {
	res := SequencesFromWinners(nil, nil, 13.3, 5)
	if res.MainBlocks != 0 || res.LongestRun != 0 || len(res.Rows) != 0 {
		t.Errorf("empty winners produced %+v", res)
	}
}

func TestPoolNameFallback(t *testing.T) {
	winners := []types.PoolID{7}
	res := SequencesFromWinners(winners, []string{"OnlyOne"}, 13.3, 5)
	if res.LongestPool != "pool-7" {
		t.Errorf("fallback name = %q", res.LongestPool)
	}
}

func TestDatasetPoolName(t *testing.T) {
	f := newFixture(t)
	if got := f.d.PoolName(1); got != "Ethermine" {
		t.Errorf("PoolName(1) = %q", got)
	}
	if got := f.d.PoolName(99); got != "pool-99" {
		t.Errorf("PoolName(99) = %q", got)
	}
}

func TestDurationConversions(t *testing.T) {
	ds := []time.Duration{1500 * time.Millisecond, 250 * time.Millisecond}
	secs := DurationsToSeconds(ds)
	if secs[0] != 1.5 || secs[1] != 0.25 {
		t.Errorf("seconds = %v", secs)
	}
	ms := DurationsToMillis(ds[:1])
	if ms[0] != 1500 {
		t.Errorf("millis = %v", ms)
	}
}
