package analysis

import (
	"testing"
	"time"

	"ethmeasure/internal/types"
)

func TestEmptyBlocksAnalysis(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	// Pool 1: 3 blocks, 1 empty. Pool 2: 2 blocks, 2 empty.
	mk := func(miner types.PoolID, empty bool) {
		var txs []types.Hash
		if !empty {
			txs = []types.Hash{f.issuer.Next()}
		}
		parent = f.block(parent, miner, txs)
	}
	mk(1, false)
	mk(1, true)
	mk(1, false)
	mk(2, true)
	mk(2, true)

	res := EmptyBlocks(f.d, 10)
	if res.MainBlocks != 5 || res.EmptyBlocks != 3 {
		t.Fatalf("main=%d empty=%d", res.MainBlocks, res.EmptyBlocks)
	}
	if res.EmptyShare != 0.6 {
		t.Errorf("share = %f", res.EmptyShare)
	}
	// Rows ordered by empty count descending: Sparkpool (2) first.
	if res.Rows[0].Pool != "Sparkpool" || res.Rows[0].EmptyBlocks != 2 {
		t.Errorf("top row = %+v", res.Rows[0])
	}
	if res.Rows[0].EmptyRate != 1.0 {
		t.Errorf("Sparkpool rate = %f", res.Rows[0].EmptyRate)
	}
	if res.Rows[1].Pool != "Ethermine" || res.Rows[1].EmptyRate < 0.33 || res.Rows[1].EmptyRate > 0.34 {
		t.Errorf("Ethermine row = %+v", res.Rows[1])
	}
}

func TestEmptyBlocksOnlyCountsMainChain(t *testing.T) {
	f := newFixture(t)
	g := f.reg.Genesis()
	main1 := f.block(g, 1, []types.Hash{f.issuer.Next()})
	f.block(g, 2, nil) // empty fork block: not on main chain
	f.block(main1, 1, []types.Hash{f.issuer.Next()})
	res := EmptyBlocks(f.d, 10)
	if res.EmptyBlocks != 0 {
		t.Errorf("fork block counted: %d", res.EmptyBlocks)
	}
}

// buildForkStructure creates: a recognized length-1 fork, an
// unrecognized length-2 fork, and a long main chain.
func buildForkStructure(f *fixture) {
	g := f.reg.Genesis()
	a1 := f.block(g, 1, nil)
	u1 := f.block(g, 2, nil)           // length-1 fork
	s1 := f.block(g, 3, nil)           // root of length-2 fork
	f.block(s1, 3, nil)                // second block of the side chain
	a2 := f.block(a1, 1, nil, u1.Hash) // references u1 → recognized
	head := a2
	for i := 0; i < 6; i++ {
		head = f.block(head, 1, nil)
	}
}

func TestForksClassification(t *testing.T) {
	f := newFixture(t)
	buildForkStructure(f)
	res := Forks(f.d)

	if res.TotalForks != 2 {
		t.Fatalf("forks = %d, want 2", res.TotalForks)
	}
	byLen := make(map[int]ForkLengthRow)
	for _, row := range res.Rows {
		byLen[row.Length] = row
	}
	if r := byLen[1]; r.Total != 1 || r.Recognized != 1 || r.Unrecognized != 0 {
		t.Errorf("length-1 row = %+v", r)
	}
	if r := byLen[2]; r.Total != 1 || r.Recognized != 0 || r.Unrecognized != 1 {
		t.Errorf("length-2 row = %+v", r)
	}
	// Block shares: 11 non-genesis blocks, 8 main, 1 recognized uncle,
	// 2 unrecognized side blocks.
	if res.TotalBlocks != 11 || res.MainBlocks != 8 {
		t.Errorf("blocks=%d main=%d", res.TotalBlocks, res.MainBlocks)
	}
	if res.RecognizedUncles != 1 || res.UnrecognizedSide != 2 {
		t.Errorf("recognized=%d unrecognized=%d", res.RecognizedUncles, res.UnrecognizedSide)
	}
	wantMain := 8.0 / 11.0
	if res.MainShare < wantMain-0.001 || res.MainShare > wantMain+0.001 {
		t.Errorf("main share = %f", res.MainShare)
	}
}

func TestForksNoForks(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	for i := 0; i < 5; i++ {
		parent = f.block(parent, 1, nil)
	}
	res := Forks(f.d)
	if res.TotalForks != 0 || len(res.Rows) != 0 {
		t.Errorf("unexpected forks: %+v", res)
	}
	if res.MainShare != 1 {
		t.Errorf("main share = %f", res.MainShare)
	}
}

func TestOneMinerForksAnalysis(t *testing.T) {
	f := newFixture(t)
	g := f.reg.Genesis()
	txA := types.Hash(0xAA)

	// Pool 1 mines two versions of height 1001 with the SAME tx set
	// (one-miner pair, same version), the main one extends.
	m1 := f.block(g, 1, []types.Hash{txA})
	sib := f.block(g, 1, []types.Hash{txA})
	// Pool 2 mines a triple at height 1002 with distinct tx sets.
	m2 := f.block(m1, 2, []types.Hash{0xB1})
	s2a := f.block(m1, 2, []types.Hash{0xB2})
	f.block(m1, 2, []types.Hash{0xB3})
	// Next main block references the pool-1 sibling as uncle.
	m3 := f.block(m2, 1, nil, sib.Hash)
	_ = s2a
	head := m3
	for i := 0; i < 3; i++ {
		head = f.block(head, 1, nil)
	}

	forks := Forks(f.d)
	res := OneMinerForks(f.d, forks)
	if res.Events != 2 {
		t.Fatalf("events = %d, want 2 (one pair + one triple)", res.Events)
	}
	bySize := make(map[int]int)
	for _, row := range res.Tuples {
		bySize[row.Size] = row.Count
	}
	if bySize[2] != 1 || bySize[3] != 1 {
		t.Errorf("tuples = %v", res.Tuples)
	}
	if res.SameTxShare != 0.5 {
		t.Errorf("same-tx share = %f, want 0.5", res.SameTxShare)
	}
	// Side members: sib + 2 triple siblings = 3; only sib recognized.
	if res.SiblingBlocks != 3 {
		t.Errorf("sibling blocks = %d", res.SiblingBlocks)
	}
	if res.RecognizedShare < 0.33 || res.RecognizedShare > 0.34 {
		t.Errorf("recognized share = %f", res.RecognizedShare)
	}
	if res.TopPoolEvents["Ethermine"] != 1 || res.TopPoolEvents["Sparkpool"] != 1 {
		t.Errorf("per-pool events = %v", res.TopPoolEvents)
	}
	if res.ShareOfAllForks <= 0 || res.ShareOfAllForks > 1 {
		t.Errorf("share of forks = %f", res.ShareOfAllForks)
	}
}

func TestOneMinerForksNone(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	for i := 0; i < 4; i++ {
		parent = f.block(parent, types.PoolID(i%2+1), nil)
	}
	res := OneMinerForks(f.d, Forks(f.d))
	if res.Events != 0 || res.SameTxShare != 0 {
		t.Errorf("unexpected events: %+v", res)
	}
}

func TestSameTxSetsFingerprint(t *testing.T) {
	a := &types.Block{TxHashes: []types.Hash{1, 2, 3}}
	b := &types.Block{TxHashes: []types.Hash{3, 2, 1}} // order-insensitive
	c := &types.Block{TxHashes: []types.Hash{1, 2}}
	d := &types.Block{TxHashes: []types.Hash{1, 2, 4}}
	if !sameTxSets([]*types.Block{a, b}) {
		t.Error("permuted sets should match")
	}
	if sameTxSets([]*types.Block{a, c}) {
		t.Error("prefix set must not match")
	}
	if sameTxSets([]*types.Block{a, d}) {
		t.Error("different sets must not match")
	}
	if !sameTxSets([]*types.Block{a}) {
		t.Error("single block trivially matches")
	}
}

func TestTxPropagationGeoNeutral(t *testing.T) {
	f := newFixture(t)
	// 8 txs, first observations spread evenly across vantages with
	// tiny deltas.
	for i := 0; i < 8; i++ {
		h := types.Hash(0x100 + i)
		first := f.d.Vantages[i%4]
		base := time.Duration(i+1) * time.Second
		f.observeTx(first, base, h, types.AccountID(i+1), 0)
		for _, v := range f.d.Vantages {
			if v != first {
				f.observeTx(v, base+5*time.Millisecond, h, types.AccountID(i+1), 0)
			}
		}
	}
	res := TxPropagation(f.d)
	if res.Txs != 8 {
		t.Fatalf("txs = %d", res.Txs)
	}
	for _, v := range f.d.Vantages {
		if res.FirstShares[v] != 0.25 {
			t.Errorf("share[%s] = %f", v, res.FirstShares[v])
		}
		if res.MedianDelayMs[v] != 5 {
			t.Errorf("median delay[%s] = %f", v, res.MedianDelayMs[v])
		}
	}
	if res.FirstShareSpread != 0 {
		t.Errorf("spread = %f", res.FirstShareSpread)
	}
}

func TestTxPropagationEmpty(t *testing.T) {
	f := newFixture(t)
	res := TxPropagation(f.d)
	if res.Txs != 0 {
		t.Errorf("txs = %d", res.Txs)
	}
}
