package analysis

import (
	"math"

	"ethmeasure/internal/types"
)

// FinalityRow evaluates one confirmation depth k.
type FinalityRow struct {
	Depth int

	// SinglePoolWindows is how many k-block main-chain windows were
	// produced entirely by one pool — windows in which that pool alone
	// decided a "final" suffix.
	SinglePoolWindows int

	// SinglePoolShare is SinglePoolWindows over all windows.
	SinglePoolShare float64

	// TopPoolTheory is the i.i.d. expectation p^(k-1) of a window
	// being single-pool given its first block belongs to the most
	// powerful pool of share p.
	TopPoolTheory float64

	// NakamotoCatchup is the classical probability that an attacker
	// with the top pool's power share, starting k blocks behind, ever
	// catches up ((q/p)^k) — the analysis behind Buterin's 12-block
	// recommendation that the paper argues is too optimistic under
	// pooled mining (§III-D).
	NakamotoCatchup float64
}

// FinalityResult examines the safety of the k-block confirmation rule
// against the measured pool concentration.
type FinalityResult struct {
	Rows       []FinalityRow
	MainBlocks int

	// TopPool and TopShare identify the most powerful pool observed.
	TopPool  string
	TopShare float64

	// TwelveBlockViolations counts 12-block windows controlled by a
	// single pool — each one a main-chain suffix the standard finality
	// rule would have called final while one entity could still have
	// replaced it.
	TwelveBlockViolations int
}

// Finality computes the k-block-rule analysis from the final main
// chain, sweeping depths 1..maxDepth.
func Finality(d *Dataset, maxDepth int) *FinalityResult {
	winners := make([]types.PoolID, 0, 1024)
	for _, b := range d.Chain.MainChain() {
		if b.Miner != 0 {
			winners = append(winners, b.Miner)
		}
	}
	return FinalityFromWinners(winners, d.PoolNames, maxDepth)
}

// FinalityFromWinners is Finality over an explicit winner sequence
// (the fast chain-level simulator feeds month- and history-scale runs).
func FinalityFromWinners(winners []types.PoolID, poolNames []string, maxDepth int) *FinalityResult {
	res := &FinalityResult{MainBlocks: len(winners)}
	if len(winners) == 0 || maxDepth < 1 {
		return res
	}

	counts := make(map[types.PoolID]int)
	for _, w := range winners {
		counts[w]++
	}
	var top types.PoolID
	for id, c := range counts {
		if top == 0 || c > counts[top] || (c == counts[top] && id < top) {
			top = id
		}
	}
	res.TopPool = poolNameOf(poolNames, top)
	res.TopShare = float64(counts[top]) / float64(len(winners))

	for k := 1; k <= maxDepth; k++ {
		rowResult := FinalityRow{Depth: k}
		windows := len(winners) - k + 1
		if windows > 0 {
			single := 0
			runLen := 1
			for i := 1; i < len(winners); i++ {
				if winners[i] == winners[i-1] {
					runLen++
				} else {
					runLen = 1
				}
				if runLen >= k {
					single++
				}
			}
			if k == 1 {
				single = len(winners)
			}
			rowResult.SinglePoolWindows = single
			rowResult.SinglePoolShare = float64(single) / float64(windows)
		}
		rowResult.TopPoolTheory = math.Pow(res.TopShare, float64(k-1))
		rowResult.NakamotoCatchup = nakamotoCatchup(res.TopShare, k)
		res.Rows = append(res.Rows, rowResult)
		if k == 12 {
			res.TwelveBlockViolations = rowResult.SinglePoolWindows
		}
	}
	return res
}

// nakamotoCatchup is the gambler's-ruin probability that an attacker
// controlling share q of the hash power, currently z blocks behind,
// ever overtakes the honest chain: (q/(1−q))^z for q < 0.5, else 1.
// (Nakamoto 2008 §11; Buterin's block-time analysis builds on it.)
func nakamotoCatchup(q float64, z int) float64 {
	if q <= 0 {
		return 0
	}
	p := 1 - q
	if q >= p {
		return 1
	}
	return math.Pow(q/p, float64(z))
}
