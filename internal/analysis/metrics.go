package analysis

import "sort"

// Metric name constants: the stable identifiers under which each
// analyzer exposes its headline scalars for cross-seed aggregation
// (internal/sweep). Names are flat snake_case with the unit suffixed,
// so a sweep's JSON output is self-describing.
const (
	MetricPropMedianMs = "propagation_median_ms"
	MetricPropMeanMs   = "propagation_mean_ms"
	MetricPropP95Ms    = "propagation_p95_ms"
	MetricPropP99Ms    = "propagation_p99_ms"

	MetricForkRate          = "fork_rate"
	MetricForkMainShare     = "fork_main_share"
	MetricForkUncleShare    = "fork_recognized_share"
	MetricOneMinerForkShare = "one_miner_fork_share"

	MetricEmptyShare = "empty_block_share"

	MetricCommitMedian12Sec = "commit_median12_sec"
	MetricOutOfOrderShare   = "tx_out_of_order_share"

	MetricInterBlockMeanSec = "interblock_mean_sec"
	MetricSidePowerShare    = "side_power_share"

	// Reward metrics are denominated in the consensus protocol's native
	// coin units; protocol-conditional entries (the uncle share) appear
	// only when the protocol pays references, so cross-protocol sweeps
	// aggregate only the metrics each run actually produced.
	MetricRewardTotalCoin   = "reward_total_coin"
	MetricRewardUncleShare  = "reward_uncle_share"
	MetricRewardWastedShare = "reward_wasted_share"
)

// KeyMetrics flattens the headline scalar figures of one campaign into
// named values. It is the unit that cross-seed sweep aggregation folds
// over: every metric is a pure function of the run's deterministic
// analysis results, so equal seeds produce equal KeyMetrics.
type KeyMetrics map[string]float64

// Merge copies every entry of o into m, overwriting on collision.
func (m KeyMetrics) Merge(o KeyMetrics) {
	for k, v := range o {
		m[k] = v
	}
}

// Names returns the metric names in sorted order (deterministic
// iteration for reports and tests).
func (m KeyMetrics) Names() []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// KeyMetrics extracts the Figure 1 headline delays. Nil-safe.
func (r *PropagationResult) KeyMetrics() KeyMetrics {
	if r == nil || r.Blocks == 0 {
		return nil
	}
	return KeyMetrics{
		MetricPropMedianMs: r.MedianMs,
		MetricPropMeanMs:   r.MeanMs,
		MetricPropP95Ms:    r.P95Ms,
		MetricPropP99Ms:    r.P99Ms,
	}
}

// KeyMetrics extracts the Table III block-partition shares. The fork
// rate is the share of blocks that did not make the main chain. The
// recognized-uncle share is protocol-conditional: protocols without
// references contribute no entry rather than a structural zero.
func (r *ForksResult) KeyMetrics() KeyMetrics {
	if r == nil || r.TotalBlocks == 0 {
		return nil
	}
	m := KeyMetrics{
		MetricForkRate:      1 - r.MainShare,
		MetricForkMainShare: r.MainShare,
	}
	if r.References {
		m[MetricForkUncleShare] = r.RecognizedShare
	}
	return m
}

// KeyMetrics extracts the §V reward-flow headline scalars. The uncle
// share is protocol-conditional, like the fork classifier's.
func (r *RewardsResult) KeyMetrics() KeyMetrics {
	if r == nil || r.TotalETH == 0 {
		return nil
	}
	m := KeyMetrics{
		MetricRewardTotalCoin:   r.TotalETH,
		MetricRewardWastedShare: r.WastedShare,
	}
	if r.References {
		m[MetricRewardUncleShare] = r.UncleETH / r.TotalETH
	}
	return m
}

// KeyMetrics extracts the §III-C5 one-miner-fork share of all forks.
func (r *OneMinerForksResult) KeyMetrics() KeyMetrics {
	if r == nil || r.Events == 0 {
		return nil
	}
	return KeyMetrics{MetricOneMinerForkShare: r.ShareOfAllForks}
}

// KeyMetrics extracts the Figure 6 empty-block share.
func (r *EmptyBlocksResult) KeyMetrics() KeyMetrics {
	if r == nil || r.MainBlocks == 0 {
		return nil
	}
	return KeyMetrics{MetricEmptyShare: r.EmptyShare}
}

// KeyMetrics extracts the Figure 4 headline commit time.
func (r *CommitTimeResult) KeyMetrics() KeyMetrics {
	if r == nil || r.CommittedTxs == 0 {
		return nil
	}
	return KeyMetrics{MetricCommitMedian12Sec: r.Median12Sec}
}

// KeyMetrics extracts the Figure 5 out-of-order commit share.
func (r *OrderingResult) KeyMetrics() KeyMetrics {
	if r == nil || r.CommittedTxs == 0 {
		return nil
	}
	return KeyMetrics{MetricOutOfOrderShare: r.OutOfOrderShare}
}

// KeyMetrics extracts the §III-C1 mean inter-block gap.
func (r *InterBlockResult) KeyMetrics() KeyMetrics {
	if r == nil || r.Blocks == 0 {
		return nil
	}
	return KeyMetrics{MetricInterBlockMeanSec: r.MeanSec}
}

// KeyMetrics extracts the §V wasted-power share.
func (r *ThroughputResult) KeyMetrics() KeyMetrics {
	if r == nil || r.TotalBlocks == 0 {
		return nil
	}
	return KeyMetrics{MetricSidePowerShare: r.SidePowerShare}
}
