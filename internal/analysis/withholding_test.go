package analysis

import (
	"testing"
	"time"

	"ethmeasure/internal/types"
)

func TestWithholdingDetectsBursts(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()

	// Pool 1: a 3-block sequence released as a burst (arrivals 100ms
	// apart). Pool 2: a 2-block honest sequence (arrivals 13s apart).
	for i := 0; i < 3; i++ {
		b := f.block(parent, 1, nil)
		parent = b
		f.observe("EA", time.Minute+time.Duration(i)*100*time.Millisecond, b, "block")
	}
	for i := 0; i < 2; i++ {
		b := f.block(parent, 2, nil)
		parent = b
		f.observe("EA", 5*time.Minute+time.Duration(i)*13*time.Second, b, "block")
	}

	res := Withholding(f.d)
	rows := make(map[string]WithholdingRow)
	for _, r := range res.Rows {
		rows[r.Pool] = r
	}
	attacker := rows["Ethermine"]
	if attacker.Sequences != 1 || attacker.BurstSequences != 1 {
		t.Errorf("attacker row = %+v", attacker)
	}
	if attacker.MeanIntraGapSec > 1 {
		t.Errorf("attacker intra-gap = %.2fs", attacker.MeanIntraGapSec)
	}
	honest := rows["Sparkpool"]
	if honest.Sequences != 1 || honest.BurstSequences != 0 {
		t.Errorf("honest row = %+v", honest)
	}
	if honest.MeanIntraGapSec < 10 {
		t.Errorf("honest intra-gap = %.2fs", honest.MeanIntraGapSec)
	}
}

func TestWithholdingSuspectThreshold(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	// Two burst sequences from pool 1 → suspect (≥2 sequences, >50%
	// bursts).
	for s := 0; s < 2; s++ {
		for i := 0; i < 2; i++ {
			b := f.block(parent, 1, nil)
			parent = b
			f.observe("EA", time.Duration(s)*time.Minute+time.Duration(i)*time.Second, b, "block")
		}
		// A pool-2 separator block so the sequences are distinct.
		b := f.block(parent, 2, nil)
		parent = b
		f.observe("EA", time.Duration(s)*time.Minute+30*time.Second, b, "block")
	}
	res := Withholding(f.d)
	if len(res.Suspects) != 1 || res.Suspects[0] != "Ethermine" {
		t.Errorf("suspects = %v", res.Suspects)
	}
}

func TestWithholdingNoSequences(t *testing.T) {
	f := newFixture(t)
	parent := f.reg.Genesis()
	for i := 0; i < 4; i++ {
		b := f.block(parent, types.PoolID(i%2+1), nil)
		parent = b
		f.observe("EA", time.Duration(i)*13*time.Second, b, "block")
	}
	res := Withholding(f.d)
	if len(res.Rows) != 0 || len(res.Suspects) != 0 {
		t.Errorf("alternating miners produced rows: %+v", res)
	}
}
