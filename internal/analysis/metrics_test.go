package analysis

import (
	"reflect"
	"testing"
)

func TestKeyMetricsNilSafety(t *testing.T) {
	var (
		prop   *PropagationResult
		forks  *ForksResult
		empty  *EmptyBlocksResult
		commit *CommitTimeResult
		order  *OrderingResult
		inter  *InterBlockResult
		thru   *ThroughputResult
		one    *OneMinerForksResult
	)
	for name, m := range map[string]KeyMetrics{
		"propagation": prop.KeyMetrics(),
		"forks":       forks.KeyMetrics(),
		"empty":       empty.KeyMetrics(),
		"commit":      commit.KeyMetrics(),
		"ordering":    order.KeyMetrics(),
		"interblock":  inter.KeyMetrics(),
		"throughput":  thru.KeyMetrics(),
		"oneminer":    one.KeyMetrics(),
	} {
		if m != nil {
			t.Errorf("%s: nil receiver produced metrics %v", name, m)
		}
	}
	// Zero-observation results also contribute nothing.
	if m := (&PropagationResult{}).KeyMetrics(); m != nil {
		t.Errorf("empty propagation produced %v", m)
	}
	if m := (&ForksResult{}).KeyMetrics(); m != nil {
		t.Errorf("empty forks produced %v", m)
	}
}

func TestKeyMetricsExtraction(t *testing.T) {
	prop := &PropagationResult{Blocks: 10, MedianMs: 74, MeanMs: 109, P95Ms: 211, P99Ms: 317}
	m := prop.KeyMetrics()
	want := KeyMetrics{
		MetricPropMedianMs: 74,
		MetricPropMeanMs:   109,
		MetricPropP95Ms:    211,
		MetricPropP99Ms:    317,
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("propagation metrics = %v", m)
	}

	forks := &ForksResult{References: true, TotalBlocks: 100, MainShare: 0.9281, RecognizedShare: 0.05}
	fm := forks.KeyMetrics()
	if fm[MetricForkMainShare] != 0.9281 || fm[MetricForkUncleShare] != 0.05 {
		t.Errorf("fork metrics = %v", fm)
	}
	if got := fm[MetricForkRate]; got < 0.0718 || got > 0.072 {
		t.Errorf("fork rate = %v", got)
	}

	// The recognized-uncle share is protocol-conditional: a
	// no-reference protocol contributes no entry.
	noRefs := &ForksResult{References: false, TotalBlocks: 100, MainShare: 0.95}
	if m := noRefs.KeyMetrics(); len(m) != 2 {
		t.Errorf("no-reference fork metrics = %v", m)
	} else if _, ok := m[MetricForkUncleShare]; ok {
		t.Errorf("no-reference protocol emitted %s", MetricForkUncleShare)
	}

	rewards := &RewardsResult{References: true, TotalETH: 200, UncleETH: 10, WastedShare: 0.01}
	rm := rewards.KeyMetrics()
	if rm[MetricRewardTotalCoin] != 200 || rm[MetricRewardUncleShare] != 0.05 || rm[MetricRewardWastedShare] != 0.01 {
		t.Errorf("reward metrics = %v", rm)
	}
	btc := &RewardsResult{References: false, TotalETH: 100, WastedShare: 0.02}
	if m := btc.KeyMetrics(); len(m) != 2 {
		t.Errorf("no-reference reward metrics = %v", m)
	}
	if m := (*RewardsResult)(nil).KeyMetrics(); m != nil {
		t.Errorf("nil rewards produced %v", m)
	}
}

func TestKeyMetricsMergeAndNames(t *testing.T) {
	m := make(KeyMetrics)
	m.Merge(KeyMetrics{"b": 2, "a": 1})
	m.Merge(nil) // merging nil is a no-op
	m.Merge(KeyMetrics{"c": 3, "a": 9})
	if len(m) != 3 || m["a"] != 9 {
		t.Errorf("merged = %v", m)
	}
	names := m.Names()
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Errorf("names = %v", names)
	}
}
