package analysis

import (
	"time"

	"ethmeasure/internal/stats"
)

// PropagationResult reproduces Figure 1: the distribution of block
// propagation delays, defined (paper §II) as the time difference
// between the first observation of a block at any measurement node and
// its arrival at each remaining node.
type PropagationResult struct {
	// DelaysMs holds one entry per (block, later-vantage) pair, in
	// milliseconds, as perturbed by each machine's NTP offset.
	DelaysMs *stats.Sample

	// Histogram is the PDF over [0, 500) ms the paper plots.
	Histogram *stats.Histogram

	// MedianMs, MeanMs, P95Ms, P99Ms are the headline statistics
	// (paper: 74, 109, 211, 317 ms).
	MedianMs, MeanMs, P95Ms, P99Ms float64

	// Blocks is the number of blocks observed by at least two vantages.
	Blocks int

	// InterBlockRatio is mean inter-block time / mean delay, showing
	// propagation is orders of magnitude faster than block production.
	InterBlockRatio float64
}

// BlockPropagation computes the Figure 1 analysis.
func BlockPropagation(d *Dataset) (*PropagationResult, error) {
	arrivals := d.arrivalsByBlock()
	sample := stats.NewSample(len(arrivals) * 3)
	hist, err := stats.NewHistogram(0, 500, 50)
	if err != nil {
		return nil, err
	}
	blocks := 0
	for _, a := range arrivals {
		if len(a.first) < 2 {
			continue
		}
		blocks++
		for vant, at := range a.first {
			if vant == a.minVant {
				continue
			}
			delta := at - a.minTime
			if delta < 0 {
				delta = 0
			}
			ms := float64(delta) / float64(time.Millisecond)
			sample.Add(ms)
			hist.Add(ms)
		}
	}
	res := &PropagationResult{
		DelaysMs:  sample,
		Histogram: hist,
		Blocks:    blocks,
	}
	if sample.N() > 0 {
		res.MedianMs = sample.MustQuantile(0.5)
		mean, err := sample.Mean()
		if err != nil {
			return nil, err
		}
		res.MeanMs = mean
		res.P95Ms = sample.MustQuantile(0.95)
		res.P99Ms = sample.MustQuantile(0.99)
		if res.MeanMs > 0 {
			res.InterBlockRatio = float64(d.InterBlock) / float64(time.Millisecond) / res.MeanMs
		}
	}
	return res, nil
}
