package analysis

import (
	"time"

	"ethmeasure/internal/stats"
)

// PropagationResult reproduces Figure 1: the distribution of block
// propagation delays, defined (paper §II) as the time difference
// between the first observation of a block at any measurement node and
// its arrival at each remaining node.
type PropagationResult struct {
	// DelaysMs holds one entry per (block, later-vantage) pair, in
	// milliseconds, as perturbed by each machine's NTP offset.
	DelaysMs *stats.Sample

	// Histogram is the PDF over [0, 500) ms the paper plots.
	Histogram *stats.Histogram

	// MedianMs, MeanMs, P95Ms, P99Ms are the headline statistics
	// (paper: 74, 109, 211, 317 ms).
	MedianMs, MeanMs, P95Ms, P99Ms float64

	// Blocks is the number of blocks observed by at least two vantages.
	Blocks int

	// InterBlockRatio is mean inter-block time / mean delay, showing
	// propagation is orders of magnitude faster than block production.
	InterBlockRatio float64
}

// Propagation finalizes the Figure 1 analysis from the shared arrival
// index: one pass over per-block arrivals, vantages in roster order.
func (c *Collector) Propagation() (*PropagationResult, error) {
	arrivals := c.sortedArrivals()
	sample := stats.NewSample(len(arrivals) * 3)
	hist, err := stats.NewHistogram(0, 500, 50)
	if err != nil {
		return nil, err
	}
	blocks := 0
	for _, a := range arrivals {
		if a.vantages < 2 {
			continue
		}
		blocks++
		for vi := range a.at {
			if vi == a.minVant || a.seen&(1<<uint(vi)) == 0 {
				continue
			}
			delta := a.at[vi] - a.minTime
			if delta < 0 {
				delta = 0
			}
			ms := float64(delta) / float64(time.Millisecond)
			sample.Add(ms)
			hist.Add(ms)
		}
	}
	res := &PropagationResult{
		DelaysMs:  sample,
		Histogram: hist,
		Blocks:    blocks,
	}
	if sample.N() > 0 {
		res.MedianMs = sample.MustQuantile(0.5)
		mean, err := sample.Mean()
		if err != nil {
			return nil, err
		}
		res.MeanMs = mean
		res.P95Ms = sample.MustQuantile(0.95)
		res.P99Ms = sample.MustQuantile(0.99)
		if res.MeanMs > 0 {
			res.InterBlockRatio = float64(c.ds.InterBlock) / float64(time.Millisecond) / res.MeanMs
		}
	}
	return res, nil
}

// BlockPropagation computes the Figure 1 analysis from a materialized
// dataset (batch path: replays the records through a Collector).
func BlockPropagation(d *Dataset) (*PropagationResult, error) {
	return Collect(d, "").Propagation()
}
