package analysis

import (
	"math"
	"sort"

	"ethmeasure/internal/types"
)

// PoolSequenceRow summarises the consecutive main-chain block runs of
// one pool (Figure 7).
type PoolSequenceRow struct {
	Pool       string
	PowerShare float64 // observed share of main-chain blocks
	Runs       int
	MaxRun     int
	RunCounts  map[int]int // run length -> count

	// CDF(L) = fraction of this pool's runs with length ≤ L, the series
	// Figure 7 plots on a log scale.
	CDF func(length int) float64 `json:"-"`

	// TheoreticalAtMax is the paper's estimate N·p^k of how many runs
	// of length ≥ MaxRun were expected over the observed chain
	// (§III-D: 0.259^8 · 201,086 ≈ 4 for Ethermine).
	TheoreticalAtMax float64
}

// SequencesResult reproduces Figure 7 and the §III-D security
// analysis: lengths of consecutive main-chain blocks mined by a single
// pool, the censorship window they enable, and the comparison with the
// i.i.d. theoretical expectation.
type SequencesResult struct {
	Rows       []PoolSequenceRow // descending by power share
	MainBlocks int

	// LongestRun and LongestPool identify the single longest sequence.
	LongestRun  int
	LongestPool string

	// CensorWindowSec is the longest observed censorship opportunity:
	// LongestRun × mean inter-block time, in seconds (paper: pools
	// could censor for 2-3 minutes).
	CensorWindowSec float64
}

// Sequences computes Figure 7 from the final main chain. topN bounds
// the per-pool rows (the paper plots the top 6 pools).
func Sequences(d *Dataset, topN int) *SequencesResult {
	winners := make([]types.PoolID, 0, 1024)
	for _, b := range d.Chain.MainChain() {
		if b.Miner == 0 {
			continue
		}
		winners = append(winners, b.Miner)
	}
	return SequencesFromWinners(winners, d.PoolNames, d.InterBlock.Seconds(), topN)
}

// SequencesFromWinners computes the Figure 7 analysis from an explicit
// winner sequence. The fast chain-only simulator feeds this directly
// for month-scale and whole-history runs.
func SequencesFromWinners(winners []types.PoolID, poolNames []string, interBlockSec float64, topN int) *SequencesResult {
	res := &SequencesResult{MainBlocks: len(winners)}
	type agg struct {
		blocks    int
		runs      int
		maxRun    int
		runCounts map[int]int
	}
	byPool := make(map[types.PoolID]*agg)
	get := func(id types.PoolID) *agg {
		a, ok := byPool[id]
		if !ok {
			a = &agg{runCounts: make(map[int]int, 8)}
			byPool[id] = a
		}
		return a
	}

	for i := 0; i < len(winners); {
		j := i
		for j < len(winners) && winners[j] == winners[i] {
			j++
		}
		runLen := j - i
		a := get(winners[i])
		a.blocks += runLen
		a.runs++
		a.runCounts[runLen]++
		if runLen > a.maxRun {
			a.maxRun = runLen
		}
		if runLen > res.LongestRun {
			res.LongestRun = runLen
			res.LongestPool = poolNameOf(poolNames, winners[i])
		}
		i = j
	}
	res.CensorWindowSec = float64(res.LongestRun) * interBlockSec

	ids := make([]types.PoolID, 0, len(byPool))
	for id := range byPool {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if byPool[ids[i]].blocks != byPool[ids[j]].blocks {
			return byPool[ids[i]].blocks > byPool[ids[j]].blocks
		}
		return ids[i] < ids[j]
	})
	if topN > 0 && len(ids) > topN {
		ids = ids[:topN]
	}
	for _, id := range ids {
		a := byPool[id]
		share := 0.0
		if len(winners) > 0 {
			share = float64(a.blocks) / float64(len(winners))
		}
		counts := a.runCounts
		runs := a.runs
		row := PoolSequenceRow{
			Pool:       poolNameOf(poolNames, id),
			PowerShare: share,
			Runs:       runs,
			MaxRun:     a.maxRun,
			RunCounts:  counts,
			CDF: func(length int) float64 {
				if runs == 0 {
					return 0
				}
				c := 0
				for l, n := range counts {
					if l <= length {
						c += n
					}
				}
				return float64(c) / float64(runs)
			},
			TheoreticalAtMax: ExpectedSequences(share, a.maxRun, len(winners)),
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func poolNameOf(names []string, id types.PoolID) string {
	i := int(id) - 1
	if i < 0 || i >= len(names) {
		return types.PoolID(id).String()
	}
	return names[i]
}

// ExpectedSequences is the paper's §III-D estimate of how many
// k-block runs a pool with power share p should produce over n blocks:
// n·p^k (e.g. 0.259^8 · 201,086 ≈ 4 for Ethermine's 8-block runs).
func ExpectedSequences(p float64, k, n int) float64 {
	if p <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	return float64(n) * math.Pow(p, float64(k))
}

// HistoricalSequenceCounts counts runs of length ≥ each threshold in a
// winner sequence — the whole-blockchain scan of §III-D, which found
// 102, 41, 4 and 1 sequences of ≥10, ≥11, ≥12 and ≥14 blocks over the
// chain's full history.
func HistoricalSequenceCounts(winners []types.PoolID, thresholds []int) map[int]int {
	counts := make(map[int]int, len(thresholds))
	for i := 0; i < len(winners); {
		j := i
		for j < len(winners) && winners[j] == winners[i] {
			j++
		}
		runLen := j - i
		for _, t := range thresholds {
			if runLen >= t {
				counts[t]++
			}
		}
		i = j
	}
	return counts
}
