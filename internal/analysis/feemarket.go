package analysis

import (
	"ethmeasure/internal/stats"
	"ethmeasure/internal/types"
)

// FeeBandRow summarises inclusion latency for one gas-price band.
type FeeBandRow struct {
	Label    string
	MinPrice uint64
	MaxPrice uint64 // inclusive upper bound; 0 = unbounded

	Txs          int
	InclusionP50 float64 // seconds
	InclusionP90 float64
}

// FeeMarketResult relates gas price to inclusion delay: the fee-market
// mechanism behind the paper's commit-time observations — miners select
// by price, so cheap transactions wait longer. The paper aggregates
// over all transactions; this drill-down exposes the mechanism.
type FeeMarketResult struct {
	Bands []FeeBandRow

	// MedianTrendDecreasing reports whether the inclusion median falls
	// as the fee band rises (the expected fee-market signature).
	MedianTrendDecreasing bool
}

// defaultFeeBands partitions the workload's price range: the filler
// band (1-3), the market floor, and escalating market tiers.
var defaultFeeBands = []FeeBandRow{
	{Label: "reservoir (1-3)", MinPrice: 1, MaxPrice: 3},
	{Label: "low (4-14)", MinPrice: 4, MaxPrice: 14},
	{Label: "market (15-39)", MinPrice: 15, MaxPrice: 39},
	{Label: "premium (40+)", MinPrice: 40, MaxPrice: 0},
}

// FeeMarket finalizes inclusion delay per gas-price band from the
// shared transaction arrival index. priceOf maps a transaction hash to
// its gas price (return 0, false when unknown).
func (c *Collector) FeeMarket(priceOf func(types.Hash) (uint64, bool)) *FeeMarketResult {
	idx := c.mainIndex()

	samples := make([]*stats.Sample, len(defaultFeeBands))
	for i := range samples {
		samples[i] = stats.NewSample(256)
	}
	for _, a := range c.txList {
		price, ok := priceOf(a.hash)
		if !ok {
			continue
		}
		block, ok := idx.txToBlock[a.hash]
		if !ok {
			continue
		}
		inclAt, ok := c.blockFirstSeen(block.Hash)
		if !ok {
			continue
		}
		for i, band := range defaultFeeBands {
			if price < band.MinPrice {
				continue
			}
			if band.MaxPrice != 0 && price > band.MaxPrice {
				continue
			}
			samples[i].Add(secondsSince(a.minTime, inclAt))
			break
		}
	}

	res := &FeeMarketResult{}
	var medians []float64
	for i, band := range defaultFeeBands {
		row := band
		row.Txs = samples[i].N()
		if row.Txs > 0 {
			row.InclusionP50 = samples[i].MustQuantile(0.5)
			row.InclusionP90 = samples[i].MustQuantile(0.9)
			medians = append(medians, row.InclusionP50)
		}
		res.Bands = append(res.Bands, row)
	}
	// Expected signature: medians fall (weakly) as fee bands rise.
	res.MedianTrendDecreasing = len(medians) >= 2 && medians[0] >= medians[len(medians)-1]
	return res
}

// FeeMarket computes inclusion delay per gas-price band from a
// materialized dataset.
func FeeMarket(d *Dataset, priceOf func(types.Hash) (uint64, bool)) *FeeMarketResult {
	return Collect(d, "").FeeMarket(priceOf)
}
