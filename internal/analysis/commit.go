package analysis

import (
	"sort"
	"time"

	"ethmeasure/internal/stats"
	"ethmeasure/internal/types"
)

// ConfirmationLevels are the block-confirmation depths of Figure 4:
// inclusion plus 3, 12 (Ethereum's default finality rule), 15 and 36
// confirmations.
var ConfirmationLevels = []int{3, 12, 15, 36}

// CommitTimeResult reproduces Figure 4: time from first observation of
// a transaction to its inclusion in a main-chain block, and to that
// block receiving k confirmations.
type CommitTimeResult struct {
	// InclusionSec is the distribution of first-observation→inclusion
	// delays in seconds.
	InclusionSec *stats.Sample

	// ConfirmSec maps confirmation depth k to the distribution of
	// first-observation→k-th-confirmation delays.
	ConfirmSec map[int]*stats.Sample

	// CommittedTxs is the number of transactions included in the main
	// chain and observed by at least one vantage.
	CommittedTxs int

	// Median12Sec is the headline number the paper tracks across
	// studies (189 s in 2019, down from 200 s in 2017).
	Median12Sec float64
}

// Commit finalizes Figure 4 from the shared transaction arrival index
// and the main-chain index. A transaction contributes to the
// k-confirmation curve only if the chain grew at least k blocks past
// its including block before the run ended (no right-censored points).
func (c *Collector) Commit() *CommitTimeResult {
	idx := c.mainIndex()

	res := &CommitTimeResult{
		InclusionSec: stats.NewSample(len(c.txList)),
		ConfirmSec:   make(map[int]*stats.Sample, len(ConfirmationLevels)),
	}
	for _, k := range ConfirmationLevels {
		res.ConfirmSec[k] = stats.NewSample(len(c.txList))
	}
	var headNumber uint64
	if len(idx.main) > 0 {
		headNumber = idx.main[len(idx.main)-1].Number
	}

	for _, a := range c.txList {
		block, ok := idx.txToBlock[a.hash]
		if !ok {
			continue // never committed
		}
		inclAt, ok := c.blockFirstSeen(block.Hash)
		if !ok {
			continue // including block never observed (shouldn't happen)
		}
		res.CommittedTxs++
		res.InclusionSec.Add(secondsSince(a.minTime, inclAt))
		for _, k := range ConfirmationLevels {
			confHeight := block.Number + uint64(k)
			if confHeight > headNumber {
				continue
			}
			confBlock, ok := idx.byHeight[confHeight]
			if !ok {
				continue
			}
			confAt, ok := c.blockFirstSeen(confBlock.Hash)
			if !ok {
				continue
			}
			res.ConfirmSec[k].Add(secondsSince(a.minTime, confAt))
		}
	}
	res.Median12Sec = res.ConfirmSec[12].MustQuantile(0.5)
	return res
}

// CommitTimes computes Figure 4 from a materialized dataset.
func CommitTimes(d *Dataset) *CommitTimeResult {
	return Collect(d, "").Commit()
}

func secondsSince(from, to time.Duration) float64 {
	delta := to - from
	if delta < 0 {
		delta = 0 // NTP offsets can produce tiny negative readings
	}
	return delta.Seconds()
}

// OrderingResult reproduces Figure 5 and the §III-C2 out-of-order
// statistics: commit delay CDFs split by whether the transaction was
// received in nonce order.
type OrderingResult struct {
	InOrderSec    *stats.Sample
	OutOfOrderSec *stats.Sample

	CommittedTxs    int
	OutOfOrderTxs   int
	OutOfOrderShare float64 // paper: 11.54% (up from 6.18% in 2017)

	// Headline quantiles (paper: OOO p50 < 192 s, p90 < 325 s;
	// in-order p50 < 189 s, p90 < 292 s).
	InOrderP50, InOrderP90       float64
	OutOfOrderP50, OutOfOrderP90 float64
}

// Ordering finalizes Figure 5. A committed transaction is out-of-order
// when it was first observed before some same-sender transaction with
// a lower nonce (paper §III-C2). The shared index already holds each
// transaction's sender, nonce and global first observation in stream
// order, so this is a pass over unique transactions, not raw records.
func (c *Collector) Ordering() *OrderingResult {
	idx := c.mainIndex()

	// Commit delay runs to the 12th confirmation block (the paper's
	// 189 s / 192 s medians use the default commit rule).
	const commitDepth = 12
	var headNumber uint64
	if len(idx.main) > 0 {
		headNumber = idx.main[len(idx.main)-1].Number
	}
	type txObs struct {
		nonce  uint64
		seenAt time.Duration
		commit time.Duration
	}
	bySender := make(map[types.AccountID][]txObs)
	senderOrder := make([]types.AccountID, 0, 64) // first-appearance order
	for _, a := range c.txList {
		block, ok := idx.txToBlock[a.hash]
		if !ok {
			continue
		}
		confHeight := block.Number + commitDepth
		if confHeight > headNumber {
			continue // not committed before the run ended
		}
		confBlock, ok := idx.byHeight[confHeight]
		if !ok {
			continue
		}
		commitAt, ok := c.blockFirstSeen(confBlock.Hash)
		if !ok {
			continue
		}
		if _, ok := bySender[a.sender]; !ok {
			senderOrder = append(senderOrder, a.sender)
		}
		bySender[a.sender] = append(bySender[a.sender], txObs{
			nonce:  a.nonce,
			seenAt: a.minTime,
			commit: commitAt,
		})
	}

	res := &OrderingResult{
		InOrderSec:    stats.NewSample(1024),
		OutOfOrderSec: stats.NewSample(256),
	}
	for _, sender := range senderOrder {
		txs := bySender[sender]
		sort.Slice(txs, func(i, j int) bool { return txs[i].nonce < txs[j].nonce })
		// A tx is out-of-order if some lower-nonce tx was seen later.
		maxSeen := time.Duration(-1 << 62)
		for _, tx := range txs {
			res.CommittedTxs++
			delay := secondsSince(tx.seenAt, tx.commit)
			if tx.seenAt < maxSeen {
				res.OutOfOrderTxs++
				res.OutOfOrderSec.Add(delay)
			} else {
				res.InOrderSec.Add(delay)
			}
			if tx.seenAt > maxSeen {
				maxSeen = tx.seenAt
			}
		}
	}
	if res.CommittedTxs > 0 {
		res.OutOfOrderShare = float64(res.OutOfOrderTxs) / float64(res.CommittedTxs)
	}
	res.InOrderP50 = res.InOrderSec.MustQuantile(0.5)
	res.InOrderP90 = res.InOrderSec.MustQuantile(0.9)
	res.OutOfOrderP50 = res.OutOfOrderSec.MustQuantile(0.5)
	res.OutOfOrderP90 = res.OutOfOrderSec.MustQuantile(0.9)
	return res
}

// TransactionOrdering computes Figure 5 from a materialized dataset.
func TransactionOrdering(d *Dataset) *OrderingResult {
	return Collect(d, "").Ordering()
}
