package analysis

import (
	"sort"
	"time"

	"ethmeasure/internal/types"
)

// BurstWindow is the observation window within which consecutive-height
// same-miner blocks count as "announced all together". The paper's
// §III-D forensic argument: Sparkpool's 9-block sequences showed
// average inter-block spacing, so they were honest luck rather than a
// withholding attack; a real attack releases its private chain in a
// burst.
const BurstWindow = 3 * time.Second

// WithholdingRow summarises one pool's publication timing.
type WithholdingRow struct {
	Pool string

	// Sequences of length ≥2 mined consecutively by this pool.
	Sequences int

	// BurstSequences is how many of those arrived within BurstWindow
	// per hop — the withholding signature.
	BurstSequences int

	// MeanIntraGapSec is the mean observed gap between consecutive
	// blocks of this pool's sequences. Honest sequences show ~the
	// network inter-block time; bursts show ~propagation delay.
	MeanIntraGapSec float64
}

// WithholdingResult is the §III-D publication-timing forensic.
type WithholdingResult struct {
	Rows []WithholdingRow // pools with at least one sequence, by name

	// Suspects lists pools whose sequences are predominantly bursts.
	Suspects []string
}

// Withholding finalizes the §III-D forensic: arrival timing of
// same-miner consecutive main-chain blocks, with first-observation
// times served by the shared arrival index.
func (c *Collector) Withholding() *WithholdingResult {
	main := c.ds.Chain.MainChain()

	type agg struct {
		sequences int
		bursts    int
		gapSum    float64
		gaps      int
	}
	byPool := make(map[types.PoolID]*agg)

	for i := 1; i < len(main); {
		if main[i].Miner == 0 || main[i].Miner != main[i-1].Miner {
			i++
			continue
		}
		// A run of ≥2 consecutive blocks by one miner starts at i-1.
		miner := main[i].Miner
		j := i
		for j < len(main) && main[j].Miner == miner {
			j++
		}
		a, ok := byPool[miner]
		if !ok {
			a = &agg{}
			byPool[miner] = a
		}
		a.sequences++
		burst := true
		for k := i; k < j; k++ {
			prev, okPrev := c.blockFirstSeen(main[k-1].Hash)
			cur, okCur := c.blockFirstSeen(main[k].Hash)
			if !okPrev || !okCur {
				burst = false
				continue
			}
			gap := cur - prev
			if gap < 0 {
				gap = 0
			}
			a.gapSum += gap.Seconds()
			a.gaps++
			if gap > BurstWindow {
				burst = false
			}
		}
		if burst {
			a.bursts++
		}
		i = j
	}

	res := &WithholdingResult{}
	ids := make([]types.PoolID, 0, len(byPool))
	for id := range byPool {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := byPool[id]
		row := WithholdingRow{
			Pool:           c.ds.PoolName(id),
			Sequences:      a.sequences,
			BurstSequences: a.bursts,
		}
		if a.gaps > 0 {
			row.MeanIntraGapSec = a.gapSum / float64(a.gaps)
		}
		res.Rows = append(res.Rows, row)
		// Predominantly-burst sequences flag an attacker; an honest
		// pool's sequences arrive at mining pace.
		if a.sequences >= 2 && float64(a.bursts) > 0.5*float64(a.sequences) {
			res.Suspects = append(res.Suspects, row.Pool)
		}
	}
	return res
}

// Withholding computes the §III-D forensic from a materialized dataset.
func Withholding(d *Dataset) *WithholdingResult {
	return Collect(d, "").Withholding()
}
